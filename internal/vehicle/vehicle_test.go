package vehicle

import (
	"math"
	"testing"

	"repro/internal/lattice"
	"repro/internal/sensor"
	"repro/internal/transport"
)

func profile(id int) Profile {
	return Profile{
		ID:            id,
		Equipped:      sensor.MaskAll,
		Desired:       sensor.MaskAll,
		PrivacyWeight: 1,
		Beta:          3,
		Tau:           0.15,
	}
}

func TestProfileValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"bad equipped", func(p *Profile) { p.Equipped = sensor.Mask(0x80) }},
		{"bad desired", func(p *Profile) { p.Desired = sensor.Mask(0x80) }},
		{"negative privacy", func(p *Profile) { p.PrivacyWeight = -1 }},
		{"negative beta", func(p *Profile) { p.Beta = -1 }},
		{"zero tau", func(p *Profile) { p.Tau = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := profile(1)
			tt.mutate(&p)
			if p.Validate() == nil {
				t.Error("want validation error")
			}
		})
	}
	good := profile(1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestNewAgentAndDecision(t *testing.T) {
	a, err := NewAgent(profile(1), lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d := a.Decision()
	if d < 1 || d > 8 {
		t.Errorf("initial decision %d out of range", d)
	}
	if err := a.SetDecision(3); err != nil {
		t.Fatal(err)
	}
	if a.Decision() != 3 {
		t.Error("SetDecision did not apply")
	}
	if err := a.SetDecision(0); err == nil {
		t.Error("decision 0 must be rejected")
	}
	bad := profile(1)
	bad.Tau = 0
	if _, err := NewAgent(bad, lattice.PaperPayoffs(), 1); err == nil {
		t.Error("invalid profile must be rejected")
	}
}

func TestFitnessShape(t *testing.T) {
	a, err := NewAgent(profile(1), lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	shares := []float64{0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125}
	q, err := a.Fitness(0.8, shares)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 8 {
		t.Fatalf("fitness has %d entries", len(q))
	}
	// Decision 8 has zero utility and zero cost.
	if q[7] != 0 {
		t.Errorf("q8 = %f, want 0", q[7])
	}
	// Raising x weakly increases all fitness values.
	q2, err := a.Fitness(1.0, shares)
	if err != nil {
		t.Fatal(err)
	}
	for k := range q {
		if q2[k] < q[k]-1e-12 {
			t.Errorf("fitness %d decreased with x", k+1)
		}
	}
	if _, err := a.Fitness(0.5, shares[:3]); err == nil {
		t.Error("short shares must error")
	}
}

// TestFitnessDesiredAttenuation: a vehicle that only desires radar gains no
// utility from camera-only shares.
func TestFitnessDesiredAttenuation(t *testing.T) {
	p := profile(1)
	p.Desired = sensor.MaskOf(sensor.Radar)
	a, err := NewAgent(p, lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Population shares all camera-only (decision 5).
	shares := make([]float64, 8)
	shares[4] = 1
	q, err := a.Fitness(1.0, shares)
	if err != nil {
		t.Fatal(err)
	}
	// Decision 1 can access decision 5's camera share, but the vehicle does
	// not desire camera: utility contribution must be zero, so q1 = -w*g1.
	if math.Abs(q[0]-(-1.0)) > 1e-9 {
		t.Errorf("q1 = %f, want -1 (pure privacy cost)", q[0])
	}
}

// TestPrivacyWeightShiftsChoice: a highly privacy-sensitive agent picks
// low-sharing decisions far more often.
func TestPrivacyWeightShiftsChoice(t *testing.T) {
	shares := []float64{0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125}
	count := func(w float64) int {
		p := profile(1)
		p.PrivacyWeight = w
		a, err := NewAgent(p, lattice.PaperPayoffs(), 99)
		if err != nil {
			t.Fatal(err)
		}
		high := 0
		for trial := 0; trial < 400; trial++ {
			if err := a.Revise(0.9, shares, 1); err != nil {
				t.Fatal(err)
			}
			if a.Decision() <= 4 { // shares two or more modalities
				high++
			}
		}
		return high
	}
	tolerant := count(0.1)
	sensitive := count(5.0)
	if sensitive >= tolerant {
		t.Errorf("privacy-sensitive agent chose high-sharing %d times vs tolerant %d", sensitive, tolerant)
	}
}

func TestReviseValidation(t *testing.T) {
	a, err := NewAgent(profile(1), lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	shares := make([]float64, 8)
	shares[0] = 1
	if err := a.Revise(0.5, shares, -0.1); err == nil {
		t.Error("negative mu must error")
	}
	if err := a.Revise(0.5, shares, 1.1); err == nil {
		t.Error("mu > 1 must error")
	}
	// mu = 0 never revises.
	if err := a.SetDecision(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Revise(0.5, shares, 0); err != nil {
			t.Fatal(err)
		}
	}
	if a.Decision() != 2 {
		t.Error("mu=0 must never change the decision")
	}
}

func TestBuildUpload(t *testing.T) {
	p := profile(4)
	p.Equipped = sensor.MaskOf(sensor.Camera, sensor.Radar) // no lidar on board
	a, err := NewAgent(p, lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetDecision(1); err != nil { // share everything it has
		t.Fatal(err)
	}
	up := a.BuildUpload(5)
	if up.Vehicle != 4 || up.Round != 5 || up.Decision != 1 {
		t.Errorf("upload header = %+v", up)
	}
	if len(up.Items) != 2 {
		t.Fatalf("upload items = %v, want camera+radar", up.Items)
	}
	for _, item := range up.Items {
		if item.Owner != 4 {
			t.Error("item owner mismatch")
		}
		if item.Modality == sensor.LiDAR {
			t.Error("vehicle uploaded a modality it does not have")
		}
	}
	// Decision 8 shares nothing.
	if err := a.SetDecision(8); err != nil {
		t.Fatal(err)
	}
	if got := a.BuildUpload(6); len(got.Items) != 0 {
		t.Errorf("decision 8 upload = %v", got.Items)
	}
	// Sequence numbers strictly increase.
	if err := a.SetDecision(1); err != nil {
		t.Fatal(err)
	}
	u1 := a.BuildUpload(7)
	u2 := a.BuildUpload(8)
	if u2.Items[0].Seq <= u1.Items[len(u1.Items)-1].Seq {
		t.Error("sequence numbers must increase")
	}
}

func TestAbsorbDelivery(t *testing.T) {
	p := profile(1)
	p.Desired = sensor.MaskOf(sensor.Radar)
	a, err := NewAgent(p, lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	d := transport.Delivery{
		Round: 1,
		Items: []transport.Item{
			{Owner: 2, Modality: sensor.Radar, Seq: 1},
			{Owner: 2, Modality: sensor.Camera, Seq: 2}, // undesired
		},
	}
	if err := a.AbsorbDelivery(d, sensor.TableIII()); err != nil {
		t.Fatal(err)
	}
	if a.ReceivedItems != 2 {
		t.Errorf("ReceivedItems = %d", a.ReceivedItems)
	}
	// Only radar counts: Table III sum contribution 7.
	if math.Abs(a.ReceivedUtility-7) > 1e-12 {
		t.Errorf("ReceivedUtility = %f, want 7", a.ReceivedUtility)
	}
}
