package vehicle

import (
	"testing"
	"time"

	"repro/internal/lattice"
	"repro/internal/sensor"
	"repro/internal/transport"
)

// TestRunWithReconnectReregisters: when the edge drops the session, the
// client redials and re-registers with a fresh Hello, keeping its agent
// state, and exits cleanly once Stop closes.
func TestRunWithReconnectReregisters(t *testing.T) {
	agent, err := NewAgent(profile(7), lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.SetDecision(1); err != nil {
		t.Fatal(err)
	}

	serverConns := make(chan transport.Conn, 4)
	dials := 0
	d := &transport.Dialer{
		Dial: func() (transport.Conn, error) {
			dials++
			a, b := transport.Pipe()
			serverConns <- b
			return a, nil
		},
		Seed:  1,
		Sleep: func(time.Duration) {},
	}

	stop := make(chan struct{})
	client := &Client{
		Agent:           agent,
		Mu:              0, // decision stays put across sessions
		Cap:             sensor.TableIII(),
		RegisterTimeout: 2 * time.Second,
		Stop:            stop,
	}
	done := make(chan error, 1)
	go func() { done <- client.RunWithReconnect(d) }()

	expectHello := func(conn transport.Conn) {
		t.Helper()
		m, err := conn.Recv()
		if err != nil {
			t.Fatalf("waiting for hello: %v", err)
		}
		var hello transport.Hello
		if err := transport.Decode(m, transport.KindHello, &hello); err != nil {
			t.Fatal(err)
		}
		if hello.Vehicle != 7 {
			t.Fatalf("hello from vehicle %d, want 7", hello.Vehicle)
		}
		ack, err := transport.Encode(transport.KindAck, transport.Ack{})
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(ack); err != nil {
			t.Fatal(err)
		}
	}

	// Session 1: register, then the server drops the conn.
	s1 := <-serverConns
	expectHello(s1)
	_ = s1.Close()

	// Session 2: the client re-registered on its own; drive one policy round
	// to prove the new session is live.
	s2 := <-serverConns
	expectHello(s2)
	pol, err := transport.Encode(transport.KindPolicy, transport.Policy{
		Round: 0, X: 0.9, Shares: []float64{1, 0, 0, 0, 0, 0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Send(pol); err != nil {
		t.Fatal(err)
	}
	m, err := s2.Recv()
	if err != nil {
		t.Fatalf("waiting for upload: %v", err)
	}
	var up transport.Upload
	if err := transport.Decode(m, transport.KindUpload, &up); err != nil {
		t.Fatal(err)
	}
	if up.Vehicle != 7 || up.Round != 0 || up.Decision != 1 {
		t.Errorf("upload after reconnect = %+v", up)
	}

	close(stop)
	_ = s2.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("RunWithReconnect = %v, want nil after Stop", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RunWithReconnect did not return after Stop")
	}
	if dials < 2 {
		t.Errorf("dialed %d times, want at least 2 (one reconnect)", dials)
	}
}

// TestRunWithReconnectRetriesRejection: a stale-session registration
// rejection is treated as transient and retried instead of failing the
// vehicle.
func TestRunWithReconnectRetriesRejection(t *testing.T) {
	agent, err := NewAgent(profile(4), lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	serverConns := make(chan transport.Conn, 4)
	d := &transport.Dialer{
		Dial: func() (transport.Conn, error) {
			a, b := transport.Pipe()
			serverConns <- b
			return a, nil
		},
		Seed:  1,
		Sleep: func(time.Duration) {},
	}
	stop := make(chan struct{})
	client := &Client{Agent: agent, Mu: 0.5, RegisterTimeout: 2 * time.Second, Stop: stop}
	done := make(chan error, 1)
	go func() { done <- client.RunWithReconnect(d) }()

	// Session 1: reject the registration (ghost of a dead session).
	s1 := <-serverConns
	if _, err := s1.Recv(); err != nil {
		t.Fatal(err)
	}
	nack, err := transport.Encode(transport.KindAck, transport.Ack{Err: "vehicle 4 already registered"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Send(nack); err != nil {
		t.Fatal(err)
	}

	// Session 2: the client tried again; accept it and stop.
	s2 := <-serverConns
	if _, err := s2.Recv(); err != nil {
		t.Fatal(err)
	}
	ack, err := transport.Encode(transport.KindAck, transport.Ack{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Send(ack); err != nil {
		t.Fatal(err)
	}
	close(stop)
	_ = s2.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("RunWithReconnect = %v, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RunWithReconnect did not return after Stop")
	}
}
