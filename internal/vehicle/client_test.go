package vehicle

import (
	"errors"
	"reflect"

	"repro/internal/obs"
	"strings"
	"sync"
	"testing"

	"repro/internal/lattice"
	"repro/internal/sensor"
	"repro/internal/transport"
)

// scriptServer runs a minimal edge-side script over one half of a Pipe.
func scriptServer(t *testing.T, conn transport.Conn, script func(conn transport.Conn) error) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer conn.Close()
		if err := script(conn); err != nil {
			t.Errorf("script server: %v", err)
		}
	}()
	return &wg
}

func recvKind(conn transport.Conn, kind transport.Kind) (transport.Message, error) {
	m, err := conn.Recv()
	if err != nil {
		return m, err
	}
	if m.Kind != kind {
		return m, errors.New("unexpected kind " + string(m.Kind))
	}
	return m, nil
}

func ackOK(conn transport.Conn) error {
	m, err := transport.Encode(transport.KindAck, transport.Ack{})
	if err != nil {
		return err
	}
	return conn.Send(m)
}

func TestClientFullRound(t *testing.T) {
	clientConn, serverConn := transport.Pipe()
	agent, err := NewAgent(profile(7), lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.SetDecision(1); err != nil {
		t.Fatal(err)
	}

	var gotUpload transport.Upload
	wg := scriptServer(t, serverConn, func(conn transport.Conn) error {
		// Registration.
		if _, err := recvKind(conn, transport.KindHello); err != nil {
			return err
		}
		if err := ackOK(conn); err != nil {
			return err
		}
		// One policy round.
		shares := []float64{1, 0, 0, 0, 0, 0, 0, 0}
		pol, err := transport.Encode(transport.KindPolicy, transport.Policy{Round: 1, X: 0.9, Shares: shares})
		if err != nil {
			return err
		}
		if err := conn.Send(pol); err != nil {
			return err
		}
		m, err := recvKind(conn, transport.KindUpload)
		if err != nil {
			return err
		}
		if err := transport.Decode(m, transport.KindUpload, &gotUpload); err != nil {
			return err
		}
		if err := ackOK(conn); err != nil {
			return err
		}
		// Delivery.
		del, err := transport.Encode(transport.KindDelivery, transport.Delivery{
			Round: 1,
			Items: []transport.Item{{Owner: 2, Modality: sensor.Radar, Seq: 1}},
		})
		if err != nil {
			return err
		}
		return conn.Send(del)
	})

	client := &Client{Agent: agent, Mu: 0} // mu=0: decision stays at P1
	if err := client.Run(clientConn); err != nil {
		t.Fatalf("client: %v", err)
	}
	wg.Wait()

	if gotUpload.Vehicle != 7 || gotUpload.Round != 1 {
		t.Errorf("upload header %+v", gotUpload)
	}
	if gotUpload.Decision != 1 || len(gotUpload.Items) != 3 {
		t.Errorf("upload should share all three modalities under P1: %+v", gotUpload)
	}
	if agent.ReceivedItems != 1 {
		t.Errorf("agent absorbed %d items, want 1", agent.ReceivedItems)
	}
}

func TestClientRejectedRegistration(t *testing.T) {
	clientConn, serverConn := transport.Pipe()
	agent, err := NewAgent(profile(9), lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	wg := scriptServer(t, serverConn, func(conn transport.Conn) error {
		if _, err := recvKind(conn, transport.KindHello); err != nil {
			return err
		}
		m, err := transport.Encode(transport.KindAck, transport.Ack{Err: "vehicle 9 already registered"})
		if err != nil {
			return err
		}
		return conn.Send(m)
	})
	client := &Client{Agent: agent, Mu: 0.5}
	err = client.Run(clientConn)
	if err == nil || !strings.Contains(err.Error(), "registration rejected") {
		t.Errorf("want registration rejection, got %v", err)
	}
	wg.Wait()
}

func TestClientServerErrorAck(t *testing.T) {
	clientConn, serverConn := transport.Pipe()
	agent, err := NewAgent(profile(3), lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	wg := scriptServer(t, serverConn, func(conn transport.Conn) error {
		if _, err := recvKind(conn, transport.KindHello); err != nil {
			return err
		}
		if err := ackOK(conn); err != nil {
			return err
		}
		// Immediately reject whatever the client does next with an error
		// ack (no policy first — simulates a misbehaving server).
		m, err := transport.Encode(transport.KindAck, transport.Ack{Err: "round closed"})
		if err != nil {
			return err
		}
		return conn.Send(m)
	})
	client := &Client{Agent: agent, Mu: 0.5}
	err = client.Run(clientConn)
	if err == nil || !strings.Contains(err.Error(), "round closed") {
		t.Errorf("want server rejection surfaced, got %v", err)
	}
	wg.Wait()
}

func TestClientCleanShutdown(t *testing.T) {
	clientConn, serverConn := transport.Pipe()
	agent, err := NewAgent(profile(4), lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	wg := scriptServer(t, serverConn, func(conn transport.Conn) error {
		if _, err := recvKind(conn, transport.KindHello); err != nil {
			return err
		}
		return ackOK(conn) // then close (deferred)
	})
	client := &Client{Agent: agent, Mu: 0.5}
	if err := client.Run(clientConn); err != nil {
		t.Errorf("clean close should return nil, got %v", err)
	}
	wg.Wait()
}

func TestClientNilAgent(t *testing.T) {
	c := &Client{}
	a, _ := transport.Pipe()
	if err := c.Run(a); err == nil {
		t.Error("nil agent must error")
	}
}

// TestClientIdempotentUnderDuplicates: a duplicated Policy broadcast re-sends
// the cached upload (same item sequence numbers, no second revision or
// shared-cost charge), a stale reordered Policy is dropped, and a duplicated
// Delivery is not double-counted.
func TestClientIdempotentUnderDuplicates(t *testing.T) {
	clientConn, serverConn := transport.Pipe()
	agent, err := NewAgent(profile(7), lattice.PaperPayoffs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.SetDecision(1); err != nil {
		t.Fatal(err)
	}

	var uploads []transport.Upload
	shares := []float64{1, 0, 0, 0, 0, 0, 0, 0}
	sendPolicy := func(conn transport.Conn, round int) error {
		pol, err := transport.Encode(transport.KindPolicy, transport.Policy{Round: round, X: 0.9, Shares: shares})
		if err != nil {
			return err
		}
		return conn.Send(pol)
	}
	sendDelivery := func(conn transport.Conn, round int) error {
		del, err := transport.Encode(transport.KindDelivery, transport.Delivery{
			Round: round,
			Items: []transport.Item{{Owner: 2, Modality: sensor.Radar, Seq: 1}},
		})
		if err != nil {
			return err
		}
		return conn.Send(del)
	}
	wg := scriptServer(t, serverConn, func(conn transport.Conn) error {
		if _, err := recvKind(conn, transport.KindHello); err != nil {
			return err
		}
		if err := ackOK(conn); err != nil {
			return err
		}
		// Round 1's policy, duplicated: both trigger an upload, the second
		// from the cache.
		for i := 0; i < 2; i++ {
			if err := sendPolicy(conn, 1); err != nil {
				return err
			}
			m, err := recvKind(conn, transport.KindUpload)
			if err != nil {
				return err
			}
			var up transport.Upload
			if err := transport.Decode(m, transport.KindUpload, &up); err != nil {
				return err
			}
			uploads = append(uploads, up)
			if err := ackOK(conn); err != nil {
				return err
			}
		}
		// A stale round-0 policy produces no upload; the duplicated delivery
		// that follows is absorbed once. Round 2 afterwards proves the loop
		// is still in sync (a stray upload would break the kind sequence).
		if err := sendPolicy(conn, 0); err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			if err := sendDelivery(conn, 1); err != nil {
				return err
			}
		}
		if err := sendPolicy(conn, 2); err != nil {
			return err
		}
		if _, err := recvKind(conn, transport.KindUpload); err != nil {
			return err
		}
		return ackOK(conn)
	})

	client := &Client{Agent: agent, Mu: 0, Obs: obs.New()}
	if err := client.Run(clientConn); err != nil {
		t.Fatalf("client: %v", err)
	}
	wg.Wait()

	if len(uploads) != 2 {
		t.Fatalf("got %d uploads for the duplicated round, want 2", len(uploads))
	}
	if !reflect.DeepEqual(uploads[0], uploads[1]) {
		t.Errorf("re-sent upload differs from the original:\n first %+v\nsecond %+v", uploads[0], uploads[1])
	}
	// One charge per distinct round (1 and 2), not per broadcast.
	wantCost := 2 * agent.Profile.PrivacyWeight * lattice.PaperPayoffs().Cost[0]
	if agent.SharedCost != wantCost {
		t.Errorf("SharedCost = %v, want %v (charged once per round)", agent.SharedCost, wantCost)
	}
	if agent.ReceivedItems != 1 {
		t.Errorf("agent absorbed %d items, want 1 (duplicate delivery dropped)", agent.ReceivedItems)
	}
	if got := client.Obs.Counter("vehicle_duplicate_frames_total", "").Value(); got != 3 {
		t.Errorf("vehicle_duplicate_frames_total = %v, want 3", got)
	}
}
