package vehicle

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
	"repro/internal/sensor"
	"repro/internal/transport"
)

// ErrRejected is returned (wrapped) when the edge server refuses the
// client's registration. A reconnecting client treats it as transient: the
// server may still hold the ghost of a dropped session.
var ErrRejected = errors.New("vehicle: registration rejected")

// Client drives an Agent against an edge-server connection: it registers
// with Hello, then for every Policy broadcast it revises the agent's
// decision (step ③), uploads the shared data (step ④), and absorbs the
// Delivery (step ⑤). It runs until the connection closes.
type Client struct {
	Agent *Agent
	// Mu is the per-round revision probability passed to Agent.Revise.
	Mu float64
	// Cap is the capability table used to value received data.
	Cap *sensor.CapabilityTable
	// RegisterTimeout bounds the wait for the registration ack (0 = wait
	// forever). On a lossy link the ack can vanish; the timeout lets
	// RunWithReconnect retry instead of wedging.
	RegisterTimeout time.Duration
	// Stop, when non-nil and closed, makes RunWithReconnect return nil
	// after the current session instead of redialing.
	Stop <-chan struct{}
	// Obs, when non-nil, is the observer the client reports through
	// (vehicle_sessions_total, vehicle_reconnects_total). Typically one
	// observer is shared by a whole fleet, so the counters are joint.
	Obs *obs.Observer
}

// register performs the Hello handshake on conn. On a lossy link the ack can
// vanish while a round's policy broadcast still arrives (the edge registers
// the vehicle before acking); such a message proves the session is live, so
// it is returned for the main loop to process instead of failing the
// handshake.
func (c *Client) register(conn transport.Conn) (*transport.Message, error) {
	hello, err := transport.Encode(transport.KindHello, transport.Hello{Vehicle: c.Agent.Profile.ID})
	if err != nil {
		return nil, err
	}
	if err := conn.Send(hello); err != nil {
		return nil, fmt.Errorf("vehicle %d: sending hello: %w", c.Agent.Profile.ID, err)
	}
	m, err := transport.RecvTimeout(conn, c.RegisterTimeout)
	if err != nil {
		return nil, fmt.Errorf("vehicle %d: waiting for registration ack: %w", c.Agent.Profile.ID, err)
	}
	if m.Kind != transport.KindAck {
		return &m, nil // ack lost in transit; the session is live anyway
	}
	var ack transport.Ack
	if err := transport.Decode(m, transport.KindAck, &ack); err != nil {
		return nil, err
	}
	if ack.Err != "" {
		return nil, fmt.Errorf("vehicle %d: %w: %s", c.Agent.Profile.ID, ErrRejected, ack.Err)
	}
	return nil, nil
}

// Run executes the client loop. It returns nil when the connection closes
// normally (io.EOF) and an error on protocol violations.
func (c *Client) Run(conn transport.Conn) error {
	if c.Agent == nil {
		return fmt.Errorf("vehicle: client has no agent")
	}
	if c.Cap == nil {
		c.Cap = sensor.TableIII()
	}
	pending, err := c.register(conn)
	if err != nil {
		return err
	}
	if pending != nil {
		if err := c.handleMessage(conn, *pending); err != nil {
			return err
		}
	}

	for {
		m, err := conn.Recv()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("vehicle %d: receive: %w", c.Agent.Profile.ID, err)
		}
		if err := c.handleMessage(conn, m); err != nil {
			return err
		}
	}
}

// handleMessage dispatches one server message in the client loop.
func (c *Client) handleMessage(conn transport.Conn, m transport.Message) error {
	switch m.Kind {
	case transport.KindPolicy:
		var pol transport.Policy
		if err := transport.Decode(m, transport.KindPolicy, &pol); err != nil {
			return err
		}
		if len(pol.Shares) > 0 {
			if err := c.Agent.Revise(pol.X, pol.Shares, c.Mu); err != nil {
				return err
			}
		}
		up := c.Agent.BuildUpload(pol.Round)
		msg, err := transport.Encode(transport.KindUpload, up)
		if err != nil {
			return err
		}
		if err := conn.Send(msg); err != nil {
			return fmt.Errorf("vehicle %d: sending upload: %w", c.Agent.Profile.ID, err)
		}
	case transport.KindDelivery:
		var del transport.Delivery
		if err := transport.Decode(m, transport.KindDelivery, &del); err != nil {
			return err
		}
		if err := c.Agent.AbsorbDelivery(del, c.Cap); err != nil {
			return err
		}
	case transport.KindAck:
		var a transport.Ack
		if err := transport.Decode(m, transport.KindAck, &a); err != nil {
			return err
		}
		if a.Err != "" {
			return fmt.Errorf("vehicle %d: server rejected message: %s", c.Agent.Profile.ID, a.Err)
		}
	default:
		return fmt.Errorf("vehicle %d: unexpected message kind %s", c.Agent.Profile.ID, m.Kind)
	}
	return nil
}

// stopped reports whether the client's Stop channel is closed.
func (c *Client) stopped() bool {
	if c.Stop == nil {
		return false
	}
	select {
	case <-c.Stop:
		return true
	default:
		return false
	}
}

// RunWithReconnect keeps the vehicle's session alive across connection
// drops: it dials through d (with d's backoff schedule), runs the client
// loop, and redials — re-registering with a fresh Hello — whenever the
// session ends with a clean EOF, a connection-level failure, or a stale
// registration rejection. The agent's decision state survives reconnects.
// It returns nil when Stop is closed, and an error when the dialer
// exhausts its attempts or the session hits a protocol violation.
func (c *Client) RunWithReconnect(d *transport.Dialer) error {
	if c.Agent == nil {
		return fmt.Errorf("vehicle: client has no agent")
	}
	sessions := c.Obs.Counter("vehicle_sessions_total", "vehicle client sessions dialed (first connects plus reconnects)")
	reconnects := c.Obs.Counter("vehicle_reconnects_total", "vehicle client redials after a dropped session")
	for session := 0; ; session++ {
		if c.stopped() {
			return nil
		}
		conn, err := d.DialRetry()
		if err == nil {
			sessions.Inc()
			if session > 0 {
				reconnects.Inc()
			}
		}
		if err != nil {
			if c.stopped() {
				return nil
			}
			return fmt.Errorf("vehicle %d: reconnect: %w", c.Agent.Profile.ID, err)
		}
		err = c.Run(conn)
		_ = conn.Close()
		switch {
		case err == nil:
			// The server closed the session; redial unless stopping.
		case errors.Is(err, ErrRejected):
			// The server still holds a ghost of the dropped session.
		case transport.IsConnError(err):
			// The link died mid-session.
		default:
			return err
		}
		if c.stopped() {
			return nil
		}
		// Pace the redial so a flapping server cannot spin the client.
		if pause := d.Backoff(0); d.Sleep != nil {
			d.Sleep(pause)
		} else {
			time.Sleep(pause)
		}
	}
}
