package vehicle

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/sensor"
	"repro/internal/transport"
)

// Client drives an Agent against an edge-server connection: it registers
// with Hello, then for every Policy broadcast it revises the agent's
// decision (step ③), uploads the shared data (step ④), and absorbs the
// Delivery (step ⑤). It runs until the connection closes.
type Client struct {
	Agent *Agent
	// Mu is the per-round revision probability passed to Agent.Revise.
	Mu float64
	// Cap is the capability table used to value received data.
	Cap *sensor.CapabilityTable
}

// Run executes the client loop. It returns nil when the connection closes
// normally (io.EOF) and an error on protocol violations.
func (c *Client) Run(conn transport.Conn) error {
	if c.Agent == nil {
		return fmt.Errorf("vehicle: client has no agent")
	}
	if c.Cap == nil {
		c.Cap = sensor.TableIII()
	}
	hello, err := transport.Encode(transport.KindHello, transport.Hello{Vehicle: c.Agent.Profile.ID})
	if err != nil {
		return err
	}
	if err := conn.Send(hello); err != nil {
		return fmt.Errorf("vehicle %d: sending hello: %w", c.Agent.Profile.ID, err)
	}
	ackMsg, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("vehicle %d: waiting for registration ack: %w", c.Agent.Profile.ID, err)
	}
	var ack transport.Ack
	if err := transport.Decode(ackMsg, transport.KindAck, &ack); err != nil {
		return err
	}
	if ack.Err != "" {
		return fmt.Errorf("vehicle %d: registration rejected: %s", c.Agent.Profile.ID, ack.Err)
	}

	for {
		m, err := conn.Recv()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("vehicle %d: receive: %w", c.Agent.Profile.ID, err)
		}
		switch m.Kind {
		case transport.KindPolicy:
			var pol transport.Policy
			if err := transport.Decode(m, transport.KindPolicy, &pol); err != nil {
				return err
			}
			if len(pol.Shares) > 0 {
				if err := c.Agent.Revise(pol.X, pol.Shares, c.Mu); err != nil {
					return err
				}
			}
			up := c.Agent.BuildUpload(pol.Round)
			msg, err := transport.Encode(transport.KindUpload, up)
			if err != nil {
				return err
			}
			if err := conn.Send(msg); err != nil {
				return fmt.Errorf("vehicle %d: sending upload: %w", c.Agent.Profile.ID, err)
			}
		case transport.KindDelivery:
			var del transport.Delivery
			if err := transport.Decode(m, transport.KindDelivery, &del); err != nil {
				return err
			}
			if err := c.Agent.AbsorbDelivery(del, c.Cap); err != nil {
				return err
			}
		case transport.KindAck:
			var a transport.Ack
			if err := transport.Decode(m, transport.KindAck, &a); err != nil {
				return err
			}
			if a.Err != "" {
				return fmt.Errorf("vehicle %d: server rejected message: %s", c.Agent.Profile.ID, a.Err)
			}
		default:
			return fmt.Errorf("vehicle %d: unexpected message kind %s", c.Agent.Profile.ID, m.Kind)
		}
	}
}
