package vehicle

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/sensor"
	"repro/internal/transport"
	"repro/internal/transport/session"
)

// ErrRejected is returned (wrapped) when the edge server refuses the
// client's registration. A reconnecting client treats it as transient: the
// server may still hold the ghost of a dropped session.
var ErrRejected = errors.New("vehicle: registration rejected")

// Client drives an Agent against an edge-server connection: it registers
// with Hello, then for every Policy broadcast it revises the agent's
// decision (step ③), uploads the shared data (step ④), and absorbs the
// Delivery (step ⑤). It runs until the connection closes.
type Client struct {
	Agent *Agent
	// Mu is the per-round revision probability passed to Agent.Revise.
	Mu float64
	// Cap is the capability table used to value received data.
	Cap *sensor.CapabilityTable
	// RegisterTimeout bounds the wait for the registration ack (0 = wait
	// forever). On a lossy link the ack can vanish; the timeout lets
	// RunWithReconnect retry instead of wedging.
	RegisterTimeout time.Duration
	// Stop, when non-nil and closed, makes RunWithReconnect return nil
	// after the current session instead of redialing.
	Stop <-chan struct{}
	// Obs, when non-nil, is the observer the client reports through
	// (vehicle_sessions_total, vehicle_reconnects_total). Typically one
	// observer is shared by a whole fleet, so the counters are joint.
	Obs *obs.Observer
}

// register performs the Hello handshake on sess. On a lossy link the ack can
// vanish while a round's policy broadcast still arrives (the edge registers
// the vehicle before acking); the session layer returns such a message for
// the main loop to process instead of failing the handshake.
func (c *Client) register(sess *session.Session) (*transport.Message, error) {
	pending, err := sess.Register(c.Agent.Profile.ID, c.RegisterTimeout)
	var rej *session.RejectedError
	switch {
	case err == nil:
		return pending, nil
	case errors.As(err, &rej):
		return nil, fmt.Errorf("vehicle %d: %w: %s", c.Agent.Profile.ID, ErrRejected, rej.Reason)
	default:
		return nil, fmt.Errorf("vehicle %d: %w", c.Agent.Profile.ID, err)
	}
}

// Run executes the client loop. It returns nil when the connection closes
// normally (io.EOF) and an error on protocol violations.
func (c *Client) Run(conn transport.Conn) error {
	if c.Agent == nil {
		return fmt.Errorf("vehicle: client has no agent")
	}
	if c.Cap == nil {
		c.Cap = sensor.TableIII()
	}
	sess := session.Wrap(conn)
	pending, err := c.register(sess)
	if err != nil {
		return err
	}
	handlers := c.handlers(sess)
	if pending != nil {
		if h, ok := handlers[pending.Kind]; ok {
			if err := h(*pending); err != nil {
				return err
			}
		} else {
			return fmt.Errorf("vehicle %d: unexpected message kind %s", c.Agent.Profile.ID, pending.Kind)
		}
	}
	return sess.Serve(handlers, func(m transport.Message) error {
		return fmt.Errorf("vehicle %d: unexpected message kind %s", c.Agent.Profile.ID, m.Kind)
	})
}

// handlers builds the client's dispatch table for the session read loop.
// Application is idempotent per session: a duplicated or replayed Policy
// broadcast re-sends the round's cached upload instead of revising the
// decision and growing the shared-cost ledger twice, and a duplicated
// Delivery is dropped rather than double-counted into the world value.
func (c *Client) handlers(sess *session.Session) map[transport.Kind]session.Handler {
	duplicates := c.Obs.Counter("vehicle_duplicate_frames_total", "duplicated policy/delivery frames absorbed idempotently")
	policyRound := -1
	var cachedUpload transport.Upload
	deliveryRound := -1
	return map[transport.Kind]session.Handler{
		transport.KindPolicy: func(m transport.Message) error {
			var pol transport.Policy
			if err := transport.Decode(m, transport.KindPolicy, &pol); err != nil {
				return err
			}
			if policyRound >= 0 && pol.Round <= policyRound {
				duplicates.Inc()
				if pol.Round < policyRound {
					return nil // stale reordered broadcast; its upload already went out
				}
				if err := sess.Send(transport.KindUpload, cachedUpload); err != nil {
					return fmt.Errorf("vehicle %d: re-sending upload: %w", c.Agent.Profile.ID, err)
				}
				return nil
			}
			if len(pol.Shares) > 0 {
				if err := c.Agent.Revise(pol.X, pol.Shares, c.Mu); err != nil {
					return err
				}
			}
			policyRound = pol.Round
			cachedUpload = c.Agent.BuildUpload(pol.Round)
			if err := sess.Send(transport.KindUpload, cachedUpload); err != nil {
				return fmt.Errorf("vehicle %d: sending upload: %w", c.Agent.Profile.ID, err)
			}
			return nil
		},
		transport.KindDelivery: func(m transport.Message) error {
			var del transport.Delivery
			if err := transport.Decode(m, transport.KindDelivery, &del); err != nil {
				return err
			}
			if deliveryRound >= 0 && del.Round <= deliveryRound {
				duplicates.Inc()
				return nil
			}
			deliveryRound = del.Round
			return c.Agent.AbsorbDelivery(del, c.Cap)
		},
		transport.KindAck: func(m transport.Message) error {
			var a transport.Ack
			if err := transport.Decode(m, transport.KindAck, &a); err != nil {
				return err
			}
			if a.Err != "" {
				return fmt.Errorf("vehicle %d: server rejected message: %s", c.Agent.Profile.ID, a.Err)
			}
			return nil
		},
	}
}

// stopped reports whether the client's Stop channel is closed.
func (c *Client) stopped() bool {
	if c.Stop == nil {
		return false
	}
	select {
	case <-c.Stop:
		return true
	default:
		return false
	}
}

// RunWithReconnect keeps the vehicle's session alive across connection
// drops: it dials through d (with d's backoff schedule), runs the client
// loop, and redials — re-registering with a fresh Hello — whenever the
// session ends with a clean EOF, a connection-level failure, or a stale
// registration rejection. The agent's decision state survives reconnects.
// It returns nil when Stop is closed, and an error when the dialer
// exhausts its attempts or the session hits a protocol violation.
func (c *Client) RunWithReconnect(d *transport.Dialer) error {
	if c.Agent == nil {
		return fmt.Errorf("vehicle: client has no agent")
	}
	sessions := c.Obs.Counter("vehicle_sessions_total", "vehicle client sessions dialed (first connects plus reconnects)")
	reconnects := c.Obs.Counter("vehicle_reconnects_total", "vehicle client redials after a dropped session")
	rejected := 0 // consecutive sessions ending in a registration rejection
	for session := 0; ; session++ {
		if c.stopped() {
			return nil
		}
		conn, err := d.DialRetry()
		if err == nil {
			sessions.Inc()
			if session > 0 {
				reconnects.Inc()
			}
		}
		if err != nil {
			if c.stopped() {
				return nil
			}
			return fmt.Errorf("vehicle %d: reconnect: %w", c.Agent.Profile.ID, err)
		}
		err = c.Run(conn)
		_ = conn.Close()
		switch {
		case err == nil:
			// The server closed the session; redial unless stopping.
			rejected = 0
		case errors.Is(err, ErrRejected):
			// The server still holds a ghost of the dropped session. One
			// rejection clears quickly; repeated ones mean the server is
			// slow to notice the dead session (e.g. mid-recovery), so each
			// escalates the redial pause along the dialer's schedule.
			rejected++
		case transport.IsConnError(err):
			// The link died mid-session.
			rejected = 0
		default:
			return err
		}
		if c.stopped() {
			return nil
		}
		// Pace the redial so a flapping server cannot spin the client.
		if pause := d.Backoff(rejected); d.Sleep != nil {
			d.Sleep(pause)
		} else {
			time.Sleep(pause)
		}
	}
}
