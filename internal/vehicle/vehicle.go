// Package vehicle implements the vehicle-side agent of the cooperative
// perception system: heterogeneous preferences (privacy weight, desired and
// equipped sensor sets), the smoothed-best-response decision rule whose
// population mean field is the game-theoretic model of internal/game, upload
// construction under the chosen decision, and the utility accounting of
// received data.
package vehicle

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/lattice"
	"repro/internal/sensor"
	"repro/internal/transport"
)

// Profile is a vehicle's static configuration.
type Profile struct {
	// ID identifies the vehicle.
	ID int
	// Equipped is the sensor set S_a the vehicle collects.
	Equipped sensor.Mask
	// Desired is the data set D_a the vehicle wants from others.
	Desired sensor.Mask
	// PrivacyWeight scales the privacy cost g in the vehicle's fitness
	// (heterogeneity across passengers' privacy preferences); 1 is the
	// population nominal value.
	PrivacyWeight float64
	// Beta is the vehicle's utility coefficient (the region's beta, possibly
	// perturbed per vehicle).
	Beta float64
	// Tau is the logit choice temperature.
	Tau float64
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if !p.Equipped.Valid() || !p.Desired.Valid() {
		return fmt.Errorf("vehicle %d: invalid sensor masks", p.ID)
	}
	if p.PrivacyWeight < 0 {
		return fmt.Errorf("vehicle %d: negative privacy weight", p.ID)
	}
	if p.Beta < 0 {
		return fmt.Errorf("vehicle %d: negative beta", p.ID)
	}
	if p.Tau <= 0 {
		return fmt.Errorf("vehicle %d: non-positive temperature", p.ID)
	}
	return nil
}

// Agent is a vehicle's decision-making state.
type Agent struct {
	Profile  Profile
	payoffs  *lattice.Payoffs
	rng      *rand.Rand
	decision lattice.Decision
	seq      int
	// Received accumulates the utility of delivered data (for reporting).
	ReceivedUtility float64
	ReceivedItems   int
	// SharedCost accumulates the privacy cost the vehicle incurred by
	// uploading (its weight times g of each round's decision).
	SharedCost float64
}

// NewAgent builds an agent. The initial decision is drawn uniformly.
func NewAgent(p Profile, payoffs *lattice.Payoffs, seed int64) (*Agent, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	return &Agent{
		Profile:  p,
		payoffs:  payoffs,
		rng:      rng,
		decision: lattice.Decision(1 + rng.Intn(payoffs.K())),
	}, nil
}

// Decision returns the agent's current decision (1-based).
func (a *Agent) Decision() lattice.Decision { return a.decision }

// SetDecision overrides the current decision (used by tests and warm
// starts).
func (a *Agent) SetDecision(d lattice.Decision) error {
	if d < 1 || int(d) > a.payoffs.K() {
		return fmt.Errorf("vehicle %d: decision %d out of range", a.Profile.ID, d)
	}
	a.decision = d
	return nil
}

// Fitness estimates the vehicle-level fitness of each decision given the
// policy (sharing ratio x and the cell's decision distribution shares):
// the per-vehicle analogue of Eq. 4 with the agent's own privacy weight,
//
//	q_k = beta * x * sum_{l in Acc(k)} shares[l] * f_l - w * g_k.
//
// Only desired modalities count toward the utility term: f_l is attenuated
// by the fraction of decision l's shared modalities the agent desires.
func (a *Agent) Fitness(x float64, shares []float64) ([]float64, error) {
	if len(shares) != a.payoffs.K() {
		return nil, fmt.Errorf("vehicle %d: shares has %d entries, want %d", a.Profile.ID, len(shares), a.payoffs.K())
	}
	lat := a.payoffs.Lattice()
	out := make([]float64, a.payoffs.K())
	for k := 1; k <= a.payoffs.K(); k++ {
		utility := 0.0
		for l := 1; l <= a.payoffs.K(); l++ {
			if !lat.CanAccess(lattice.Decision(k), lattice.Decision(l)) {
				continue
			}
			share := lat.MustShare(lattice.Decision(l))
			frac := desiredFraction(share, a.Profile.Desired)
			utility += shares[l-1] * a.payoffs.Utility[l-1] * frac
		}
		out[k-1] = a.Profile.Beta*x*utility - a.Profile.PrivacyWeight*a.payoffs.Cost[k-1]
	}
	return out, nil
}

// desiredFraction returns |share ∩ desired| / |share| (1 for empty shares,
// since nothing undesired is received either).
func desiredFraction(share, desired sensor.Mask) float64 {
	n := share.Count()
	if n == 0 {
		return 1
	}
	return float64(share.Intersect(desired).Count()) / float64(n)
}

// Revise draws a new decision from the logit distribution over the current
// fitness estimates. With probability 1-mu the agent keeps its decision
// (the revision-opportunity model matching game.LogitDynamics).
func (a *Agent) Revise(x float64, shares []float64, mu float64) error {
	if mu < 0 || mu > 1 {
		return fmt.Errorf("vehicle %d: revision probability %f outside [0,1]", a.Profile.ID, mu)
	}
	if a.rng.Float64() >= mu {
		return nil
	}
	q, err := a.Fitness(x, shares)
	if err != nil {
		return err
	}
	probs := make([]float64, len(q))
	softmax(q, a.Profile.Tau, probs)
	r := a.rng.Float64()
	cum := 0.0
	for k, p := range probs {
		cum += p
		if r <= cum {
			a.decision = lattice.Decision(k + 1)
			return nil
		}
	}
	a.decision = lattice.Decision(len(probs))
	return nil
}

func softmax(q []float64, tau float64, out []float64) {
	maxQ := math.Inf(-1)
	for _, v := range q {
		if v > maxQ {
			maxQ = v
		}
	}
	total := 0.0
	for k, v := range q {
		e := math.Exp((v - maxQ) / tau)
		out[k] = e
		total += e
	}
	for k := range out {
		out[k] /= total
	}
}

// BuildUpload constructs the step-④ message for the current round: one item
// per modality in S_a ∩ P^{k_a}.
func (a *Agent) BuildUpload(round int) transport.Upload {
	lat := a.payoffs.Lattice()
	share := lat.MustShare(a.decision).Intersect(a.Profile.Equipped)
	var items []transport.Item
	for _, t := range share.Types() {
		a.seq++
		items = append(items, transport.Item{Owner: a.Profile.ID, Modality: t, Seq: a.seq})
	}
	a.SharedCost += a.Profile.PrivacyWeight * a.payoffs.Cost[a.decision-1]
	return transport.Upload{
		Vehicle:  a.Profile.ID,
		Round:    round,
		Decision: int(a.decision),
		Items:    items,
	}
}

// AbsorbDelivery accounts the utility of a step-⑤ delivery: each received
// desired modality contributes its Table III share of utility; undesired
// items contribute nothing (Property 3.1(a)).
func (a *Agent) AbsorbDelivery(d transport.Delivery, cap *sensor.CapabilityTable) error {
	for _, item := range d.Items {
		a.ReceivedItems++
		if !a.Profile.Desired.Has(item.Modality) {
			continue
		}
		u, err := cap.SumContribution(item.Modality)
		if err != nil {
			return fmt.Errorf("vehicle %d: absorbing delivery: %w", a.Profile.ID, err)
		}
		a.ReceivedUtility += u
	}
	return nil
}
