package optimize

import (
	"fmt"
	"math"
)

// Projected-subgradient feasibility checking (the paper's Section IV-B
// lower-bound machinery, citing [24]): given box-constrained variables and a
// list of smooth-ish constraints c_j(z) <= 0, minimize the maximum violation
//
//	V(z) = max_j c_j(z)
//
// by subgradient steps projected onto the box; the problem is declared
// feasible when V drops to (numerically) zero. Subgradients are evaluated by
// forward finite differences of the active constraint, which is exact enough
// for the quadratic constraints of Eq. (20)/(21).

// Constraint is one inequality c(z) <= 0.
type Constraint func(z []float64) float64

// Problem is a box-constrained feasibility problem.
type Problem struct {
	// Lower and Upper bound each variable; they must have equal length.
	Lower, Upper []float64
	// Constraints are the inequalities c_j(z) <= 0.
	Constraints []Constraint
}

// Options tunes the solver.
type Options struct {
	// MaxIters bounds subgradient iterations (default 2000).
	MaxIters int
	// Tol is the violation threshold under which the problem is declared
	// feasible (default 1e-6).
	Tol float64
	// Step0 is the initial step size of the diminishing-step rule
	// step = Step0 / sqrt(iter) (default 0.5).
	Step0 float64
	// FDEps is the finite-difference epsilon (default 1e-6).
	FDEps float64
}

func (o *Options) fill() {
	if o.MaxIters <= 0 {
		o.MaxIters = 2000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.Step0 <= 0 {
		o.Step0 = 0.5
	}
	if o.FDEps <= 0 {
		o.FDEps = 1e-6
	}
}

// Result reports the solver outcome.
type Result struct {
	Feasible  bool
	Z         []float64 // best point found
	Violation float64   // V at Z
	Iters     int
}

// Validate checks the problem shape.
func (p *Problem) Validate() error {
	if len(p.Lower) != len(p.Upper) {
		return fmt.Errorf("optimize: bounds length mismatch %d vs %d", len(p.Lower), len(p.Upper))
	}
	if len(p.Lower) == 0 {
		return fmt.Errorf("optimize: problem has no variables")
	}
	for i := range p.Lower {
		if p.Lower[i] > p.Upper[i] {
			return fmt.Errorf("optimize: variable %d has empty box [%f,%f]", i, p.Lower[i], p.Upper[i])
		}
		if math.IsNaN(p.Lower[i]) || math.IsNaN(p.Upper[i]) {
			return fmt.Errorf("optimize: variable %d has NaN bounds", i)
		}
	}
	if len(p.Constraints) == 0 {
		return fmt.Errorf("optimize: problem has no constraints")
	}
	return nil
}

// violation returns V(z) and the index of the most violated constraint.
func (p *Problem) violation(z []float64) (float64, int) {
	worst, arg := math.Inf(-1), -1
	for j, c := range p.Constraints {
		if v := c(z); v > worst {
			worst, arg = v, j
		}
	}
	return worst, arg
}

func (p *Problem) project(z []float64) {
	for i := range z {
		if z[i] < p.Lower[i] {
			z[i] = p.Lower[i]
		}
		if z[i] > p.Upper[i] {
			z[i] = p.Upper[i]
		}
	}
}

// Solve runs projected subgradient descent on the max violation, starting
// from the box midpoint.
func (p *Problem) Solve(opts Options) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	opts.fill()
	n := len(p.Lower)
	z := make([]float64, n)
	for i := range z {
		z[i] = (p.Lower[i] + p.Upper[i]) / 2
	}

	best := append([]float64(nil), z...)
	bestV, _ := p.violation(z)
	grad := make([]float64, n)

	for iter := 1; iter <= opts.MaxIters; iter++ {
		v, j := p.violation(z)
		if v < bestV {
			bestV = v
			copy(best, z)
		}
		if bestV <= opts.Tol {
			return Result{Feasible: true, Z: best, Violation: bestV, Iters: iter}, nil
		}
		// Finite-difference subgradient of the active constraint.
		c := p.Constraints[j]
		base := c(z)
		norm := 0.0
		for i := range z {
			h := opts.FDEps * math.Max(1, math.Abs(z[i]))
			orig := z[i]
			z[i] = orig + h
			grad[i] = (c(z) - base) / h
			z[i] = orig
			norm += grad[i] * grad[i]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-15 {
			// Flat active constraint: nothing to descend along.
			break
		}
		step := opts.Step0 / math.Sqrt(float64(iter))
		for i := range z {
			z[i] -= step * grad[i] / norm
		}
		p.project(z)
	}
	v, _ := p.violation(best)
	return Result{Feasible: v <= opts.Tol, Z: best, Violation: v, Iters: opts.MaxIters}, nil
}
