// Package optimize provides the numeric primitives behind the policy
// optimizer: closed-interval algebra on [0,1] (used by FDS to solve the
// convergence-case conditions for the sharing ratio analytically) and a
// projected-subgradient feasibility solver (used by the relaxed lower-bound
// problem of Eq. 22).
package optimize

import (
	"fmt"
	"math"
	"sort"
)

// Interval is a closed interval [Lo, Hi]. An interval with Lo > Hi is empty.
type Interval struct {
	Lo, Hi float64
}

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Lo: math.Max(iv.Lo, other.Lo), Hi: math.Min(iv.Hi, other.Hi)}
}

// Width returns the length of the interval (0 for empty ones).
func (iv Interval) Width() float64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Clamp returns the point of the interval nearest to x. Calling Clamp on an
// empty interval is a bug; it returns NaN to make the misuse loud.
func (iv Interval) Clamp(x float64) float64 {
	if iv.Empty() {
		return math.NaN()
	}
	return math.Max(iv.Lo, math.Min(iv.Hi, x))
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	if iv.Empty() {
		return "∅"
	}
	return fmt.Sprintf("[%.4f,%.4f]", iv.Lo, iv.Hi)
}

// Unit is the interval [0, 1].
func Unit() Interval { return Interval{Lo: 0, Hi: 1} }

// EmptyInterval returns a canonical empty interval.
func EmptyInterval() Interval { return Interval{Lo: 1, Hi: 0} }

// SolveAffineGE returns {x in [0,1] : a + b*x >= 0} as an interval.
func SolveAffineGE(a, b float64) Interval {
	const eps = 1e-12
	switch {
	case math.Abs(b) <= eps:
		if a >= -eps {
			return Unit()
		}
		return EmptyInterval()
	case b > 0:
		return Interval{Lo: math.Max(0, -a/b), Hi: 1}.Intersect(Unit())
	default:
		return Interval{Lo: 0, Hi: math.Min(1, -a/b)}.Intersect(Unit())
	}
}

// SolveAffineLE returns {x in [0,1] : a + b*x <= 0} as an interval.
func SolveAffineLE(a, b float64) Interval {
	return SolveAffineGE(-a, -b)
}

// Set is a union of disjoint, sorted, non-empty intervals within [0,1].
// The zero Set is the empty set.
type Set struct {
	ivs []Interval
}

// NewSet builds a Set from arbitrary intervals (they are cleaned, sorted,
// and merged).
func NewSet(ivs ...Interval) Set {
	var kept []Interval
	for _, iv := range ivs {
		iv = iv.Intersect(Unit())
		if !iv.Empty() {
			kept = append(kept, iv)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Lo < kept[j].Lo })
	var merged []Interval
	for _, iv := range kept {
		if n := len(merged); n > 0 && iv.Lo <= merged[n-1].Hi+1e-12 {
			if iv.Hi > merged[n-1].Hi {
				merged[n-1].Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	return Set{ivs: merged}
}

// FullSet returns the set {[0,1]}.
func FullSet() Set { return NewSet(Unit()) }

// Empty reports whether the set contains no points.
func (s Set) Empty() bool { return len(s.ivs) == 0 }

// Intervals returns the disjoint intervals of the set in ascending order.
func (s Set) Intervals() []Interval { return append([]Interval(nil), s.ivs...) }

// Contains reports membership.
func (s Set) Contains(x float64) bool {
	for _, iv := range s.ivs {
		if iv.Contains(x) {
			return true
		}
	}
	return false
}

// Union returns the union of two sets.
func (s Set) Union(other Set) Set {
	return NewSet(append(s.Intervals(), other.ivs...)...)
}

// Intersect returns the intersection of two sets.
func (s Set) Intersect(other Set) Set {
	var out []Interval
	for _, a := range s.ivs {
		for _, b := range other.ivs {
			if c := a.Intersect(b); !c.Empty() {
				out = append(out, c)
			}
		}
	}
	return NewSet(out...)
}

// Nearest returns the point of the set closest to x. ok is false when the
// set is empty.
func (s Set) Nearest(x float64) (nearest float64, ok bool) {
	if s.Empty() {
		return 0, false
	}
	best, bestD := 0.0, math.Inf(1)
	for _, iv := range s.ivs {
		c := iv.Clamp(x)
		if d := math.Abs(c - x); d < bestD {
			bestD, best = d, c
		}
	}
	return best, true
}

// Min returns the smallest point of the set. ok is false when empty.
func (s Set) Min() (float64, bool) {
	if s.Empty() {
		return 0, false
	}
	return s.ivs[0].Lo, true
}

// String implements fmt.Stringer.
func (s Set) String() string {
	if s.Empty() {
		return "∅"
	}
	out := ""
	for i, iv := range s.ivs {
		if i > 0 {
			out += "∪"
		}
		out += iv.String()
	}
	return out
}
