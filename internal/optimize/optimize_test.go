package optimize

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 0.2, Hi: 0.6}
	if iv.Empty() {
		t.Error("non-degenerate interval reported empty")
	}
	if !iv.Contains(0.2) || !iv.Contains(0.6) || iv.Contains(0.61) {
		t.Error("Contains wrong at endpoints")
	}
	if math.Abs(iv.Width()-0.4) > 1e-12 {
		t.Errorf("Width = %f", iv.Width())
	}
	if got := iv.Clamp(0.9); got != 0.6 {
		t.Errorf("Clamp(0.9) = %f", got)
	}
	if got := iv.Clamp(0.4); got != 0.4 {
		t.Errorf("Clamp(0.4) = %f", got)
	}
	e := EmptyInterval()
	if !e.Empty() || e.Width() != 0 {
		t.Error("EmptyInterval not empty")
	}
	if !math.IsNaN(e.Clamp(0.5)) {
		t.Error("Clamp on empty must be NaN")
	}
	if e.String() != "∅" {
		t.Errorf("empty string = %q", e.String())
	}
	inter := iv.Intersect(Interval{Lo: 0.5, Hi: 1})
	if inter.Lo != 0.5 || inter.Hi != 0.6 {
		t.Errorf("Intersect = %v", inter)
	}
	if !iv.Intersect(Interval{Lo: 0.7, Hi: 1}).Empty() {
		t.Error("disjoint intersect should be empty")
	}
}

func TestSolveAffine(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		want Interval
	}{
		{"positive slope", -0.5, 1, Interval{Lo: 0.5, Hi: 1}},
		{"negative slope", 0.5, -1, Interval{Lo: 0, Hi: 0.5}},
		{"always true", 1, 0, Unit()},
		{"never true", -1, 0, EmptyInterval()},
		{"root outside right", -2, 1, EmptyInterval()},
		{"root outside left", 1, 1, Unit()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := SolveAffineGE(tt.a, tt.b)
			if got.Empty() != tt.want.Empty() {
				t.Fatalf("SolveAffineGE(%f,%f) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if !got.Empty() && (math.Abs(got.Lo-tt.want.Lo) > 1e-12 || math.Abs(got.Hi-tt.want.Hi) > 1e-12) {
				t.Errorf("SolveAffineGE(%f,%f) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

// TestSolveAffineProperty: x in solution iff a + b*x >= 0 (within eps), for
// random coefficients and sample points.
func TestSolveAffineProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 5)
		b = math.Mod(b, 5)
		ge := SolveAffineGE(a, b)
		le := SolveAffineLE(a, b)
		for _, x := range []float64{0, 0.1, 0.33, 0.5, 0.77, 1} {
			v := a + b*x
			if v > 1e-9 && !ge.Contains(x) {
				return false
			}
			if v < -1e-9 && ge.Contains(x) {
				return false
			}
			if v < -1e-9 && !le.Contains(x) {
				return false
			}
			if v > 1e-9 && le.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet(Interval{0.1, 0.3}, Interval{0.2, 0.5}, Interval{0.7, 0.9})
	ivs := s.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("overlapping intervals not merged: %v", s)
	}
	if ivs[0].Lo != 0.1 || ivs[0].Hi != 0.5 {
		t.Errorf("merged interval = %v", ivs[0])
	}
	if !s.Contains(0.4) || s.Contains(0.6) || !s.Contains(0.8) {
		t.Error("Set.Contains wrong")
	}

	u := s.Union(NewSet(Interval{0.5, 0.7}))
	if len(u.Intervals()) != 1 {
		t.Errorf("bridge union should merge to one interval: %v", u)
	}

	i := s.Intersect(NewSet(Interval{0.25, 0.8}))
	want := NewSet(Interval{0.25, 0.5}, Interval{0.7, 0.8})
	gotIvs, wantIvs := i.Intervals(), want.Intervals()
	if len(gotIvs) != len(wantIvs) {
		t.Fatalf("Intersect = %v, want %v", i, want)
	}
	for k := range gotIvs {
		if math.Abs(gotIvs[k].Lo-wantIvs[k].Lo) > 1e-12 || math.Abs(gotIvs[k].Hi-wantIvs[k].Hi) > 1e-12 {
			t.Errorf("Intersect = %v, want %v", i, want)
		}
	}

	if !NewSet().Empty() {
		t.Error("NewSet() should be empty")
	}
	if NewSet(EmptyInterval()).Empty() != true {
		t.Error("set of empty interval is empty")
	}
	if FullSet().Empty() || !FullSet().Contains(0.5) {
		t.Error("FullSet wrong")
	}
	if s.String() == "" || NewSet().String() != "∅" {
		t.Error("String wrong")
	}
}

func TestSetNearestAndMin(t *testing.T) {
	s := NewSet(Interval{0.2, 0.3}, Interval{0.7, 0.8})
	tests := []struct {
		x, want float64
	}{
		{0.0, 0.2},
		{0.25, 0.25},
		{0.49, 0.3}, // closer to 0.3 than to 0.7
		{0.55, 0.7}, // closer to 0.7
		{1.0, 0.8},
	}
	for _, tt := range tests {
		got, ok := s.Nearest(tt.x)
		if !ok || math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Nearest(%f) = %f,%v want %f", tt.x, got, ok, tt.want)
		}
	}
	if _, ok := NewSet().Nearest(0.5); ok {
		t.Error("Nearest on empty set must report !ok")
	}
	mn, ok := s.Min()
	if !ok || mn != 0.2 {
		t.Errorf("Min = %f,%v", mn, ok)
	}
	if _, ok := NewSet().Min(); ok {
		t.Error("Min on empty set must report !ok")
	}
}

func TestSetIntersectEmptyAbsorbs(t *testing.T) {
	s := NewSet(Interval{0.2, 0.4})
	if !s.Intersect(NewSet()).Empty() {
		t.Error("intersect with empty must be empty")
	}
	if !NewSet().Union(NewSet()).Empty() {
		t.Error("union of empties must be empty")
	}
}

func TestProblemValidate(t *testing.T) {
	ok := &Problem{
		Lower:       []float64{0},
		Upper:       []float64{1},
		Constraints: []Constraint{func(z []float64) float64 { return z[0] - 1 }},
	}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Problem{
		{Lower: []float64{0}, Upper: []float64{1, 2}, Constraints: ok.Constraints},
		{Lower: nil, Upper: nil, Constraints: ok.Constraints},
		{Lower: []float64{1}, Upper: []float64{0}, Constraints: ok.Constraints},
		{Lower: []float64{math.NaN()}, Upper: []float64{1}, Constraints: ok.Constraints},
		{Lower: []float64{0}, Upper: []float64{1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d passed validation", i)
		}
	}
}

// TestSolveFeasibleLinear: box [0,1]^2, constraints forcing z near a corner.
func TestSolveFeasibleLinear(t *testing.T) {
	p := &Problem{
		Lower: []float64{0, 0},
		Upper: []float64{1, 1},
		Constraints: []Constraint{
			func(z []float64) float64 { return 0.8 - z[0] },        // z0 >= 0.8
			func(z []float64) float64 { return z[1] - 0.2 },        // z1 <= 0.2
			func(z []float64) float64 { return z[0] + z[1] - 1.5 }, // slack
		},
	}
	res, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("feasible problem reported infeasible: violation %g at %v", res.Violation, res.Z)
	}
	if res.Z[0] < 0.8-1e-3 || res.Z[1] > 0.2+1e-3 {
		t.Errorf("solution %v violates constraints", res.Z)
	}
}

// TestSolveInfeasible: contradictory constraints.
func TestSolveInfeasible(t *testing.T) {
	p := &Problem{
		Lower: []float64{0},
		Upper: []float64{1},
		Constraints: []Constraint{
			func(z []float64) float64 { return 0.8 - z[0] }, // z >= 0.8
			func(z []float64) float64 { return z[0] - 0.2 }, // z <= 0.2
		},
	}
	res, err := p.Solve(Options{MaxIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Errorf("infeasible problem reported feasible at %v", res.Z)
	}
	// Best violation of the contradiction is 0.3 (at z=0.5).
	if res.Violation < 0.3-1e-6 {
		t.Errorf("violation %f below theoretical minimum 0.3", res.Violation)
	}
}

// TestSolveQuadratic: a disc constraint intersected with the box.
func TestSolveQuadratic(t *testing.T) {
	p := &Problem{
		Lower: []float64{-1, -1},
		Upper: []float64{1, 1},
		Constraints: []Constraint{
			// Inside a disc of radius 0.5 centered at (0.6, 0.6).
			func(z []float64) float64 {
				dx, dy := z[0]-0.6, z[1]-0.6
				return dx*dx + dy*dy - 0.25
			},
			// And above the line x + y >= 1.
			func(z []float64) float64 { return 1 - z[0] - z[1] },
		},
	}
	res, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("feasible quadratic problem reported infeasible: violation %g", res.Violation)
	}
	dx, dy := res.Z[0]-0.6, res.Z[1]-0.6
	if dx*dx+dy*dy > 0.25+1e-3 {
		t.Errorf("solution %v outside disc", res.Z)
	}
}

func TestSolveInvalidProblem(t *testing.T) {
	p := &Problem{}
	if _, err := p.Solve(Options{}); err == nil {
		t.Error("invalid problem must error")
	}
}
