package cloud

import (
	"fmt"
	"time"

	"repro/internal/transport"
)

// leaseEntry tracks one edge's membership lease. The timer fires at expiry
// and evicts the edge from the barrier quorum; a renewal pushes expiry out
// and re-arms it.
type leaseEntry struct {
	expiry time.Time
	timer  *time.Timer
	live   bool
}

// RenewLease registers or renews an edge server's membership lease: for ttl
// the edge counts toward every round barrier's quorum. When the lease
// lapses the edge is evicted — pending barriers then complete as soon as
// all remaining live edges have reported, instead of waiting out the round
// deadline — and the next renewal re-admits it. The first renewal switches
// the server from the all-regions barrier to the lease-defined quorum;
// deployments that never send heartbeats keep the original behavior.
func (s *Server) RenewLease(edgeID int, ttl time.Duration) error {
	if edgeID < 0 || edgeID >= s.m {
		return fmt.Errorf("cloud: lease from unknown edge %d", edgeID)
	}
	if ttl <= 0 {
		return fmt.Errorf("cloud: lease TTL %v must be positive", ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return transport.ErrClosed
	default:
	}
	s.leasing = true
	e := s.leases[edgeID]
	if e == nil {
		e = &leaseEntry{live: true}
		s.leases[edgeID] = e
		id := edgeID
		e.timer = time.AfterFunc(ttl, func() { s.expireLease(id) })
	} else {
		if !e.live {
			s.logfLocked("cloud: edge %d re-admitted to quorum", edgeID)
		}
		e.live = true
		e.timer.Reset(ttl)
	}
	e.expiry = time.Now().Add(ttl)
	s.metrics.leaseRenewals.Inc()
	s.metrics.leasesLive.Set(float64(s.liveLeasesLocked()))
	return nil
}

// LiveLeases returns the ids of edges currently holding a live lease.
func (s *Server) LiveLeases() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ids []int
	for id, e := range s.leases {
		if e.live {
			ids = append(ids, id)
		}
	}
	return ids
}

// expireLease runs when an edge's lease timer fires: unless the lease was
// renewed while the callback waited on the lock, the edge is evicted from
// the quorum and every pending barrier is re-checked — the healthy regions
// may now complete without waiting for the round deadline.
func (s *Server) expireLease(edgeID int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return
	default:
	}
	e := s.leases[edgeID]
	if e == nil || !e.live {
		return
	}
	if remaining := time.Until(e.expiry); remaining > 0 {
		// Renewed between the timer firing and this callback taking the
		// lock: re-arm for the true expiry.
		e.timer.Reset(remaining)
		return
	}
	e.live = false
	s.metrics.leaseEvictions.Inc()
	s.metrics.leasesLive.Set(float64(s.liveLeasesLocked()))
	s.logfLocked("cloud: lease of edge %d expired, evicting from quorum", edgeID)
	// Complete the most advanced barrier the shrunken quorum now satisfies;
	// its completion sweeps the stale ones.
	if best, rb := s.eng.Best(func(_ int, b *Barrier) bool { return s.quorumMetLocked(b) }); best >= 0 {
		s.completeRoundLocked(best, rb, rb.Size() < s.m)
	}
}

// liveLeasesLocked counts live leases. Called with s.mu held.
func (s *Server) liveLeasesLocked() int {
	n := 0
	for _, e := range s.leases {
		if e.live {
			n++
		}
	}
	return n
}

// quorumMetLocked reports whether rb can complete: every region reported,
// or — once leases are in use — every edge holding a live lease reported.
// An edge reporting without a lease still counts toward its own barrier; it
// just cannot be waited on after its lease lapses. Called with s.mu held.
func (s *Server) quorumMetLocked(rb *Barrier) bool {
	if rb.Size() >= s.m {
		return true
	}
	if !s.leasing || rb.Size() == 0 {
		return false
	}
	for id, e := range s.leases {
		if !e.live {
			continue
		}
		if _, ok := rb.Censuses[id]; !ok {
			return false
		}
	}
	return true
}
