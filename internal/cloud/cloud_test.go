package cloud

import (
	"sync"
	"testing"

	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/policy"
	"repro/internal/transport"
)

// lineGraph is a 2-region test graph.
type lineGraph struct{}

func (lineGraph) M() int { return 2 }
func (lineGraph) Gamma(i, j int) float64 {
	if i == j {
		return 0.8
	}
	return 0.2
}
func (lineGraph) Neighbors(i int) []int {
	if i == 0 {
		return []int{1}
	}
	return []int{0}
}

func testFDS(t *testing.T) (*policy.FDS, *game.Model) {
	t.Helper()
	m, err := game.NewModel(lattice.PaperPayoffs(), lineGraph{}, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Steer toward "mostly full sharing" in both regions.
	target := []float64{0.7, 0, 0, 0, 0, 0, 0, 0}
	field, err := policy.NewUniformField(2, target, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Leave the other decisions unconstrained so the field is reachable.
	for i := 0; i < 2; i++ {
		for k := 1; k < 8; k++ {
			field.P[i][k].Lo, field.P[i][k].Hi = 0, 1
		}
	}
	fds, err := policy.NewFDS(m, field, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return fds, m
}

func TestNewServerValidation(t *testing.T) {
	fds, _ := testFDS(t)
	if _, err := NewServer(nil, game.NewUniformState(2, 8, 0.5)); err == nil {
		t.Error("nil controller must error")
	}
	if _, err := NewServer(fds, nil); err == nil {
		t.Error("nil state must error")
	}
	bad := game.NewUniformState(2, 8, 0.5)
	bad.X[0] = 2
	if _, err := NewServer(fds, bad); err == nil {
		t.Error("invalid state must error")
	}
}

func TestSubmitBarrier(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	census := func(edge int, counts []int) transport.Census {
		return transport.Census{Edge: edge, Round: 1, Counts: counts}
	}
	// Region 0 census: everyone on decision 1; region 1: everyone on 8.
	c0 := make([]int, 8)
	c0[0] = 10
	c1 := make([]int, 8)
	c1[7] = 10

	var wg sync.WaitGroup
	wg.Add(1)
	var x0 float64
	var err0 error
	go func() {
		defer wg.Done()
		x0, err0 = srv.Submit(census(0, c0))
	}()
	x1, err := srv.Submit(census(1, c1))
	wg.Wait()
	if err != nil || err0 != nil {
		t.Fatalf("submit errors: %v, %v", err, err0)
	}
	if x0 < 0 || x0 > 1 || x1 < 0 || x1 > 1 {
		t.Errorf("ratios out of range: %f, %f", x0, x1)
	}

	// The cloud state now reflects the censuses.
	st := srv.State()
	if st.P[0][0] != 1 || st.P[1][7] != 1 {
		t.Errorf("state = %v / %v", st.P[0], st.P[1])
	}
	if _, err := srv.Submit(transport.Census{Edge: 5, Round: 1}); err == nil {
		t.Error("unknown edge must error")
	}
}

func TestServeOverInproc(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewInprocNetwork()
	l, err := net.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	report := func(edgeID int) float64 {
		conn, err := net.Dial("cloud")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		counts := make([]int, 8)
		counts[0] = 5
		counts[7] = 5
		m, err := transport.Encode(transport.KindCensus, transport.Census{Edge: edgeID, Round: 0, Counts: counts})
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(m); err != nil {
			t.Fatal(err)
		}
		reply, err := conn.Recv()
		if err != nil {
			t.Fatal(err)
		}
		var r transport.Ratio
		if err := transport.Decode(reply, transport.KindRatio, &r); err != nil {
			t.Fatal(err)
		}
		if r.Round != 1 {
			t.Errorf("ratio round = %d, want 1", r.Round)
		}
		return r.X
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var xA float64
	go func() {
		defer wg.Done()
		xA = report(0)
	}()
	xB := report(1)
	wg.Wait()
	if xA < 0 || xA > 1 || xB < 0 || xB > 1 {
		t.Errorf("ratios %f, %f out of range", xA, xB)
	}
}

func TestCloseUnblocksSubmit(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := srv.Submit(transport.Census{Edge: 0, Round: 9, Counts: make([]int, 8)})
		done <- err
	}()
	srv.Close()
	if err := <-done; err == nil {
		t.Error("Submit should fail when the server closes mid-barrier")
	}
}

func TestConverged(t *testing.T) {
	fds, _ := testFDS(t)
	state := game.NewUniformState(2, 8, 0.5)
	srv, err := NewServer(fds, state)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Converged() {
		t.Error("uniform state should not satisfy the 70% target")
	}
}
