package cloud

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/game"
	"repro/internal/transport"
)

// srvCounter reads one counter out of the server's registry snapshot — the
// registry is the only stats surface; assert against the consensus_* series
// by name.
func srvCounter(s *Server, name string) int {
	for _, p := range s.Registry().Snapshot() {
		if p.Name == name && len(p.Labels) == 0 {
			return int(p.Value)
		}
	}
	return 0
}

// TestDegradedBarrier: with a round deadline set, a barrier missing one
// region completes on time with last-known shares for the silent region,
// and a late census for the completed round is answered immediately.
func TestDegradedBarrier(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetRoundDeadline(50 * time.Millisecond)

	c0 := make([]int, 8)
	c0[0] = 10
	start := time.Now()
	x, err := srv.Submit(transport.Census{Edge: 0, Round: 0, Counts: c0})
	if err != nil {
		t.Fatalf("degraded submit: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("submit blocked %v despite the 50ms deadline", elapsed)
	}
	if x < 0 || x > 1 {
		t.Errorf("ratio %f out of range", x)
	}
	completed := srvCounter(srv, "consensus_rounds_total")
	degraded := srvCounter(srv, "consensus_degraded_rounds_total")
	if completed != 1 || degraded != 1 {
		t.Errorf("rounds=%d degraded=%d, want 1 completed, 1 degraded", completed, degraded)
	}

	// Region 0's census was applied; the silent region kept its last-known
	// (uniform) shares.
	state := srv.State()
	if state.P[0][0] != 1 {
		t.Errorf("region 0 shares = %v, want census applied", state.P[0])
	}
	for k, p := range state.P[1] {
		if math.Abs(p-0.125) > 1e-12 {
			t.Errorf("region 1 decision %d share = %f, want last-known 0.125", k+1, p)
		}
	}

	// The late edge catches up immediately with the current ratio.
	c1 := make([]int, 8)
	c1[7] = 10
	x1, err := srv.Submit(transport.Census{Edge: 1, Round: 0, Counts: c1})
	if err != nil {
		t.Fatalf("late submit: %v", err)
	}
	if x1 < 0 || x1 > 1 {
		t.Errorf("late ratio %f out of range", x1)
	}
	if got := srvCounter(srv, "consensus_late_censuses_total"); got != 1 {
		t.Errorf("consensus_late_censuses_total = %d, want 1", got)
	}
}

// TestRoundAbandonedEviction: a stale half-filled barrier is evicted — its
// waiter fails with ErrRoundAbandoned — when a newer round completes first.
func TestRoundAbandonedEviction(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	counts := make([]int, 8)
	counts[0] = 10

	stale := make(chan error, 1)
	go func() {
		_, err := srv.Submit(transport.Census{Edge: 0, Round: 0, Counts: counts})
		stale <- err
	}()
	// Wait until the round-0 barrier exists so the eviction has a target.
	for {
		srv.mu.Lock()
		_, ok := srv.eng.Barrier(0)
		srv.mu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Both edges complete round 1; round 0 can never fill now.
	var wg sync.WaitGroup
	for edge := 0; edge < 2; edge++ {
		edge := edge
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.Submit(transport.Census{Edge: edge, Round: 1, Counts: counts}); err != nil {
				t.Errorf("round 1 edge %d: %v", edge, err)
			}
		}()
	}
	wg.Wait()

	select {
	case err := <-stale:
		if !errors.Is(err, ErrRoundAbandoned) {
			t.Errorf("stale waiter got %v, want ErrRoundAbandoned", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stale round-0 waiter was never released")
	}
	if got := srvCounter(srv, "consensus_abandoned_rounds_total"); got != 1 {
		t.Errorf("consensus_abandoned_rounds_total = %d, want 1", got)
	}
}

// TestDecodeFailuresCounted: a malformed frame is dropped and counted; the
// connection survives and still serves the next valid census.
func TestDecodeFailuresCounted(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetRoundDeadline(50 * time.Millisecond)
	var logged int
	srv.SetLogf(func(string, ...interface{}) { logged++ })

	net := transport.NewInprocNetwork()
	l, err := net.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	conn, err := net.Dial("cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	bad, err := transport.Encode(transport.KindPolicy, transport.Policy{Round: 0, X: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(bad); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	counts[0] = 5
	good, err := transport.Encode(transport.KindCensus, transport.Census{Edge: 0, Round: 0, Counts: counts})
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(good); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var r transport.Ratio
	if err := transport.Decode(reply, transport.KindRatio, &r); err != nil {
		t.Fatal(err)
	}
	if r.Round != 1 {
		t.Errorf("reply round = %d, want 1", r.Round)
	}
	if got := srvCounter(srv, "consensus_decode_failures_total"); got != 1 {
		t.Errorf("consensus_decode_failures_total = %d, want 1", got)
	}
	if logged == 0 {
		t.Error("dropped frame was not logged")
	}
}
