package cloud

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/game"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/transport"
	"repro/internal/transport/session"
)

// ErrFutureRound is returned by Submit for a census whose round is further
// ahead of the latest completed round than the configured skew bound.
// Accepting it would let a clock-skewed (or malicious) edge allocate
// barriers arbitrarily far ahead and grow s.rounds without limit.
var ErrFutureRound = errors.New("cloud: census round beyond skew bound")

// defaultMaxRoundSkew bounds how far ahead of the latest completed round a
// census may be before Submit rejects it with ErrFutureRound.
const defaultMaxRoundSkew = 1024

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// lagEntry is one completed round buffered in the fixed-lag fusion window:
// the fold inputs (census set, degraded flag) plus a snapshot of the game
// state and FDS controller memory from just before the round was applied.
// Rewinding to preState/preFDS and re-folding censuses reproduces the
// round's effect exactly; the snapshots of later entries are recomputed
// during replay, so the window is always internally consistent.
type lagEntry struct {
	round    int
	preState *game.State
	preFDS   policy.FDSMemory
	censuses map[int][]int
	degraded bool
}

// correctionSend is one ratio-correction frame bound for an edge session,
// collected under the server lock and pushed after it is released.
type correctionSend struct {
	sess *session.Session
	rc   transport.RatioCorrection
}

// SetFixedLag sets the fixed-lag fusion window to the last n completed
// rounds (0, the default, disables rewinding: late censuses are answered
// from the current state as before). A census arriving for a round still in
// the window rewinds the fold to that round's pre-state, re-applies the
// round with the late census merged in, and re-propagates through every
// buffered round after it — so the published ratio field ends bit-identical
// to what a lossless network would have produced. Call before Open and
// Serve: shrinking a live window discards its oldest entries.
func (s *Server) SetFixedLag(n int) {
	if n < 0 {
		n = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lag = n
	s.trimWindowLocked()
	s.metrics.lagDepth.Set(float64(len(s.window)))
}

// FixedLag returns the configured window length (0 = disabled).
func (s *Server) FixedLag() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lag
}

// SetMaxRoundSkew bounds how far ahead of the latest completed round a
// census may be (default 1024). Zero or negative disables the check.
func (s *Server) SetMaxRoundSkew(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxSkew = n
}

// StateHash returns a CRC-32C over the canonical JSON encoding of the
// current game state. encoding/json round-trips float64 exactly and map-free
// state marshals deterministically, so two coordinators hold bit-identical
// ratio fields if and only if their hashes match. The same value is exported
// as the consensus_state_hash gauge (exact: every uint32 fits a float64).
func (s *Server) StateHash() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stateHashLocked()
}

func (s *Server) stateHashLocked() uint32 { return s.fold.Hash() }

// pushWindowLocked buffers a round about to be applied: the snapshots are
// taken from the *current* (pre-fold) state. Called with s.mu held, before
// applyRoundLocked.
func (s *Server) pushWindowLocked(round int, censuses map[int][]int, degraded bool) {
	s.window = append(s.window, &lagEntry{
		round:    round,
		preState: s.fold.State().Clone(),
		preFDS:   s.fold.Memory(),
		censuses: censuses,
		degraded: degraded,
	})
	s.trimWindowLocked()
	s.metrics.lagDepth.Set(float64(len(s.window)))
}

// trimWindowLocked drops entries older than the lag allows, clearing the
// vacated slots so the backing array does not pin dead snapshots.
func (s *Server) trimWindowLocked() {
	if len(s.window) <= s.lag {
		return
	}
	n := copy(s.window, s.window[len(s.window)-s.lag:])
	for i := n; i < len(s.window); i++ {
		s.window[i] = nil
	}
	s.window = s.window[:n]
}

// windowIndexLocked returns the window index holding round, or -1.
func (s *Server) windowIndexLocked(round int) int {
	for i, e := range s.window {
		if e.round == round {
			return i
		}
	}
	return -1
}

// refoldLocked rewinds the fold to window entry idx's pre-state and
// re-propagates through every buffered round from there, refreshing each
// entry's snapshots along the way. The fold itself is Fold.Apply — the
// exact code live rounds run — so a replayed history is bit-identical to
// one where the censuses had arrived on time. Called with s.mu held.
func (s *Server) refoldLocked(idx int) error {
	e := s.window[idx]
	s.fold.SetState(e.preState.Clone())
	if err := s.fold.SetMemory(e.preFDS); err != nil {
		return err
	}
	for _, entry := range s.window[idx:] {
		entry.preState = s.fold.State().Clone()
		entry.preFDS = s.fold.Memory()
		if err := s.fold.Apply(entry.censuses); err != nil {
			return fmt.Errorf("re-folding round %d: %w", entry.round, err)
		}
	}
	return nil
}

// handleLateLocked resolves a census for an already-completed round through
// the lag window. It returns handled=false when the round is outside the
// window (lag disabled, round too old, or round abandoned without ever
// completing) — the caller then falls back to the degraded
// answer-from-current-state path. When the census is a byte-identical
// duplicate of what the round already folded, it is absorbed without a
// rewind. Otherwise the fold rewinds, the census is merged last-write-wins,
// subsequent rounds re-propagate, and the corrected round is re-journaled;
// rewound=true tells the caller to collect correction frames (once per
// submission, even when a batch rewinds several times) and push them after
// unlocking. Called with s.mu held.
func (s *Server) handleLateLocked(census transport.Census) (handled, rewound bool, err error) {
	if s.lag <= 0 {
		return false, false, nil
	}
	idx := s.windowIndexLocked(census.Round)
	if idx < 0 {
		return false, false, nil
	}
	e := s.window[idx]
	if prev, ok := e.censuses[census.Edge]; ok && equalCounts(prev, census.Counts) {
		s.metrics.duplicates.Inc()
		return true, false, nil
	}
	span := s.obsv.Span("consensus_rewind",
		obs.A("round", census.Round), obs.A("edge", census.Edge))
	e.censuses[census.Edge] = census.Counts
	if err := s.refoldLocked(idx); err != nil {
		span.End(obs.A("error", err.Error()))
		return true, false, err
	}
	replayed := len(s.window) - idx
	s.correctionSeq++
	s.metrics.rewinds.Inc()
	s.metrics.replayed.Add(int64(replayed))
	s.metrics.stateHash.Set(float64(s.stateHashLocked()))
	s.persistCorrectedLocked(e)
	s.logfLocked("cloud: rewound round %d for edge %d, re-folded %d rounds (correction seq %d)",
		census.Round, census.Edge, replayed, s.correctionSeq)
	span.End(obs.A("replayed", replayed), obs.A("seq", s.correctionSeq))
	return true, true, nil
}

// collectCorrectionsLocked builds one ratio-correction frame per connected
// edge not in exclude (the submitters, whose census replies already carry
// the corrected ratios). Called with s.mu held.
func (s *Server) collectCorrectionsLocked(exclude ...int) []correctionSend {
	if len(s.edgeSess) == 0 {
		return nil
	}
	skip := make(map[int]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	out := make([]correctionSend, 0, len(s.edgeSess))
	for i, sess := range s.edgeSess {
		if skip[i] || i < 0 || i >= s.m {
			continue
		}
		out = append(out, correctionSend{
			sess: sess,
			rc: transport.RatioCorrection{
				Edge:  i,
				Round: s.eng.Latest(),
				Seq:   s.correctionSeq,
				X:     s.fold.X(i),
			},
		})
	}
	s.metrics.corrections.Add(int64(len(out)))
	return out
}

// sendCorrections pushes collected correction frames asynchronously. Send
// failures are expected (the edge may have hung up); the monotonic Seq makes
// redelivery on the next rewind harmless.
func (s *Server) sendCorrections(corrections []correctionSend) {
	for _, c := range corrections {
		c := c
		go func() { _ = c.sess.Send(transport.KindRatioCorrection, c.rc) }()
	}
}

// registerEdgeSess remembers the session an edge reports censuses on, so
// rewinds can push ratio corrections to it.
func (s *Server) registerEdgeSess(edge int, sess *session.Session) {
	if edge < 0 || edge >= s.m {
		return
	}
	s.mu.Lock()
	s.edgeSess[edge] = sess
	s.mu.Unlock()
}

// dropEdgeSess forgets every edge registration pointing at sess (the conn
// closed; a reconnecting edge re-registers with its next census).
func (s *Server) dropEdgeSess(sess *session.Session) {
	s.mu.Lock()
	for edge, es := range s.edgeSess {
		if es == sess {
			delete(s.edgeSess, edge)
		}
	}
	s.mu.Unlock()
}

// equalCounts reports whether two census count vectors are identical.
func equalCounts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
