package cloud

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/game"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/transport"
)

// metricValue reads one counter or gauge out of a registry snapshot.
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, p := range reg.Snapshot() {
		if p.Name == name {
			return p.Value
		}
	}
	t.Fatalf("metric %s not in registry snapshot", name)
	return 0
}

// runFullRound drives both regions through one barrier round.
func runFullRound(t *testing.T, srv *Server, round int, counts0, counts1 []int) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	var err0 error
	go func() {
		defer wg.Done()
		_, err0 = srv.Submit(transport.Census{Edge: 0, Round: round, Counts: counts0})
	}()
	_, err1 := srv.Submit(transport.Census{Edge: 1, Round: round, Counts: counts1})
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("round %d submit errors: %v / %v", round, err0, err1)
	}
}

func testCounts(k0, k1, n int) ([]int, []int) {
	c0 := make([]int, 8)
	c0[k0] = n
	c1 := make([]int, 8)
	c1[k1] = n
	return c0, c1
}

// A kill -9'd coordinator restarted from its state directory must resume at
// latest+1 with a bit-identical game state — including a checkpoint whose
// last round completed degraded — and answer late censuses for recovered
// rounds from the recovered state instead of erroring.
func TestRecoveryResumesBitIdentical(t *testing.T) {
	dir := t.TempDir()
	fds1, _ := testFDS(t)
	srv1, err := NewServer(fds1, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.Open(dir); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if n := metricValue(t, srv1.Registry(), "durable_recoveries_total"); n != 0 {
		t.Fatalf("fresh state dir counted %v recoveries", n)
	}

	c0, c1 := testCounts(0, 7, 10)
	for round := 0; round < 3; round++ {
		runFullRound(t, srv1, round, c0, c1)
	}
	// Round 3 completes degraded: only region 0 reports, the deadline fires.
	srv1.SetRoundDeadline(30 * time.Millisecond)
	if _, err := srv1.Submit(transport.Census{Edge: 0, Round: 3, Counts: c0}); err != nil {
		t.Fatalf("degraded round: %v", err)
	}

	preState := srv1.State()
	preLatest := srv1.Latest()
	if preLatest != 3 {
		t.Fatalf("latest before crash = %d, want 3", preLatest)
	}
	srv1.Close() // kill -9: no drain, no final checkpoint

	fds2, _ := testFDS(t)
	srv2, err := NewServer(fds2, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := srv2.Open(dir); err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	if got := srv2.Latest(); got != preLatest {
		t.Fatalf("recovered latest = %d, want %d", got, preLatest)
	}
	if !reflect.DeepEqual(srv2.State(), preState) {
		t.Fatalf("recovered state differs:\n got %+v\nwant %+v", srv2.State(), preState)
	}
	reg := srv2.Registry()
	if n := metricValue(t, reg, "durable_recoveries_total"); n < 1 {
		t.Fatalf("durable_recoveries_total = %v, want >= 1", n)
	}
	if n := metricValue(t, reg, "journal_replay_records_total"); n != 4 {
		t.Fatalf("journal_replay_records_total = %v, want 4", n)
	}

	// A late census for a recovered round gets the recovered ratio.
	lateX, err := srv2.Submit(transport.Census{Edge: 1, Round: 2, Counts: c1})
	if err != nil {
		t.Fatalf("late census during recovery: %v", err)
	}
	if lateX != preState.X[1] {
		t.Fatalf("late census ratio = %v, want recovered %v", lateX, preState.X[1])
	}

	// The next barrier is latest+1 and the trajectory continues: one more
	// full round on the recovered server matches the same round run on an
	// uninterrupted twin.
	runFullRound(t, srv2, preLatest+1, c0, c1)
	if got := srv2.Latest(); got != preLatest+1 {
		t.Fatalf("latest after resumed round = %d, want %d", got, preLatest+1)
	}

	fds3, _ := testFDS(t)
	twin, err := NewServer(fds3, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	for round := 0; round < 3; round++ {
		runFullRound(t, twin, round, c0, c1)
	}
	twin.SetRoundDeadline(30 * time.Millisecond)
	if _, err := twin.Submit(transport.Census{Edge: 0, Round: 3, Counts: c0}); err != nil {
		t.Fatal(err)
	}
	twin.SetRoundDeadline(0)
	runFullRound(t, twin, 4, c0, c1)
	if !reflect.DeepEqual(srv2.State(), twin.State()) {
		t.Fatalf("post-recovery trajectory diverged from uninterrupted run:\n got %+v\nwant %+v",
			srv2.State(), twin.State())
	}
}

// A crash between checkpoint rename and journal truncate leaves records the
// checkpoint already covers; recovery must skip them instead of applying
// them twice.
func TestRecoverySkipsCheckpointedJournalRecords(t *testing.T) {
	dir := t.TempDir()

	// Build the crash artifact directly: a checkpoint at round 2 plus a
	// journal still holding rounds 1-3.
	store, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckptState := game.NewUniformState(2, 8, 0.5)
	ckptState.X[0], ckptState.X[1] = 0.25, 0.75
	snap, err := durable.EncodeCheckpoint(durable.Checkpoint{
		Round: 2,
		State: ckptState,
		FDS:   policy.FDSMemory{LastShortfall: []float64{0.1, 0.2}, StallRounds: []int{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	c0, c1 := testCounts(0, 7, 10)
	for round := 1; round <= 3; round++ {
		rec, err := durable.EncodeRound(durable.RoundRecord{
			Round:    round,
			Censuses: map[int][]int{0: c0, 1: c1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	store.Close()

	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Open(dir); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := srv.Latest(); got != 3 {
		t.Fatalf("latest = %d, want 3 (checkpoint round 2 + replayed round 3)", got)
	}
	if n := metricValue(t, srv.Registry(), "journal_replay_records_total"); n != 1 {
		t.Fatalf("journal_replay_records_total = %v, want 1 (rounds 1-2 skipped)", n)
	}
}

// Compaction must not change what recovery reconstructs — only how much
// journal it reads.
func TestCompactionPreservesRecovery(t *testing.T) {
	dir := t.TempDir()
	fds1, _ := testFDS(t)
	srv1, err := NewServer(fds1, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	srv1.SetCompactEvery(2)
	if err := srv1.Open(dir); err != nil {
		t.Fatal(err)
	}
	c0, c1 := testCounts(1, 6, 7)
	for round := 0; round < 5; round++ {
		runFullRound(t, srv1, round, c0, c1)
	}
	preState := srv1.State()
	if n := metricValue(t, srv1.Registry(), "checkpoint_bytes"); n <= 0 {
		t.Fatalf("checkpoint_bytes = %v after compaction, want > 0", n)
	}
	srv1.Close()

	fds2, _ := testFDS(t)
	srv2, err := NewServer(fds2, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := srv2.Open(dir); err != nil {
		t.Fatal(err)
	}
	if got := srv2.Latest(); got != 4 {
		t.Fatalf("latest = %d, want 4", got)
	}
	if !reflect.DeepEqual(srv2.State(), preState) {
		t.Fatalf("state after compacted recovery differs")
	}
	// Rounds 0-3 were folded into the checkpoint; only round 4 replays.
	if n := metricValue(t, srv2.Registry(), "journal_replay_records_total"); n != 1 {
		t.Fatalf("journal_replay_records_total = %v, want 1", n)
	}
}

// Drain completes the pending barrier degraded, checkpoints, and leaves a
// state directory that reopens with an empty journal.
func TestDrainCompletesPendingAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	fds1, _ := testFDS(t)
	srv1, err := NewServer(fds1, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.Open(dir); err != nil {
		t.Fatal(err)
	}
	c0, c1 := testCounts(0, 7, 10)
	runFullRound(t, srv1, 0, c0, c1)

	// Leave round 1 half-filled, then drain.
	pending := make(chan error, 1)
	go func() {
		_, err := srv1.Submit(transport.Census{Edge: 0, Round: 1, Counts: c0})
		pending <- err
	}()
	waitFor(t, func() bool {
		srv1.mu.Lock()
		defer srv1.mu.Unlock()
		return srv1.eng.Pending() == 1
	})
	if err := srv1.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := <-pending; err != nil {
		t.Fatalf("pending submit during drain: %v", err)
	}
	if got := srv1.Latest(); got != 1 {
		t.Fatalf("latest after drain = %d, want 1", got)
	}
	drained := srv1.State()

	store, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.JournalSize() != 0 {
		t.Fatalf("journal not truncated by drain checkpoint: %d bytes", store.JournalSize())
	}
	store.Close()

	fds2, _ := testFDS(t)
	srv2, err := NewServer(fds2, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := srv2.Open(dir); err != nil {
		t.Fatal(err)
	}
	if got := srv2.Latest(); got != 1 {
		t.Fatalf("reopened latest = %d, want 1", got)
	}
	if !reflect.DeepEqual(srv2.State(), drained) {
		t.Fatalf("reopened state differs from drained state")
	}
}

func TestSubmitRejectsMalformedCounts(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, counts := range [][]int{nil, make([]int, 3), make([]int, 9)} {
		_, err := srv.Submit(transport.Census{Edge: 0, Round: 0, Counts: counts})
		if !errors.Is(err, ErrBadCensus) {
			t.Fatalf("Submit with %d counts = %v, want ErrBadCensus", len(counts), err)
		}
	}
	if got := srvCounter(srv, "consensus_decode_failures_total"); got != 3 {
		t.Fatalf("consensus_decode_failures_total = %d, want 3", got)
	}
	// Unknown edges still fail with the unknown-edge error, not ErrBadCensus.
	if _, err := srv.Submit(transport.Census{Edge: 5, Round: 0}); errors.Is(err, ErrBadCensus) || err == nil {
		t.Fatalf("unknown edge error = %v", err)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// A crash inside the lag window must not lose the window: the restarted
// server recovers the corrected (post-rewind) history bit-identically and
// can still rewind the rounds that were buffered when the process died.
func TestRecoveryPreservesRewindWindow(t *testing.T) {
	c0, c1 := testCounts(0, 7, 10)

	// Lossless reference for the full five-round trajectory.
	fdsRef, _ := testFDS(t)
	ref, err := NewServer(fdsRef, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for round := 0; round < 5; round++ {
		runFullRound(t, ref, round, c0, c1)
	}

	dir := t.TempDir()
	fds1, _ := testFDS(t)
	srv1, err := NewServer(fds1, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	srv1.SetFixedLag(8)
	srv1.SetCompactEvery(2) // exercise the retained-window checkpoint path
	if err := srv1.Open(dir); err != nil {
		t.Fatal(err)
	}
	runFullRound(t, srv1, 0, c0, c1)
	// Round 1 completes degraded, then region 1's census arrives late and
	// rewinds it — the corrected round is journaled.
	srv1.SetRoundDeadline(20 * time.Millisecond)
	if _, err := srv1.Submit(transport.Census{Edge: 0, Round: 1, Counts: c0}); err != nil {
		t.Fatal(err)
	}
	srv1.SetRoundDeadline(0)
	if _, err := srv1.Submit(transport.Census{Edge: 1, Round: 1, Counts: c1}); err != nil {
		t.Fatal(err)
	}
	runFullRound(t, srv1, 2, c0, c1)
	preHash := srv1.StateHash()
	preState := srv1.State()
	srv1.Close() // kill -9: no Drain, no final checkpoint

	fds2, _ := testFDS(t)
	srv2, err := NewServer(fds2, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	srv2.SetFixedLag(8)
	if err := srv2.Open(dir); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := srv2.Latest(); got != 2 {
		t.Fatalf("recovered latest = %d, want 2", got)
	}
	if srv2.StateHash() != preHash {
		t.Fatalf("recovered hash %08x != pre-crash %08x", srv2.StateHash(), preHash)
	}
	if !reflect.DeepEqual(srv2.State(), preState) {
		t.Fatalf("recovered state differs from pre-crash corrected state")
	}

	// The window survived the crash: a straggler for round 2 — buffered
	// before the crash — still rewinds on the restarted server.
	srv2.SetRoundDeadline(20 * time.Millisecond)
	if _, err := srv2.Submit(transport.Census{Edge: 0, Round: 3, Counts: c0}); err != nil {
		t.Fatal(err)
	}
	srv2.SetRoundDeadline(0)
	if _, err := srv2.Submit(transport.Census{Edge: 1, Round: 3, Counts: c1}); err != nil {
		t.Fatal(err)
	}
	runFullRound(t, srv2, 4, c0, c1)
	if n := metricValue(t, srv2.Registry(), "consensus_rewinds_total"); n != 1 {
		t.Fatalf("consensus_rewinds_total after restart = %v, want 1", n)
	}
	if srv2.StateHash() != ref.StateHash() {
		t.Fatalf("final hash %08x != lossless reference %08x", srv2.StateHash(), ref.StateHash())
	}
	if !reflect.DeepEqual(srv2.State(), ref.State()) {
		t.Fatalf("final state differs from lossless reference:\n got %+v\nwant %+v", srv2.State(), ref.State())
	}

	// A third incarnation recovers the twice-corrected history too.
	srv2.Close()
	fds3, _ := testFDS(t)
	srv3, err := NewServer(fds3, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Close()
	srv3.SetFixedLag(8)
	if err := srv3.Open(dir); err != nil {
		t.Fatalf("reopen after rewind: %v", err)
	}
	if srv3.StateHash() != ref.StateHash() {
		t.Fatalf("re-recovered hash %08x != reference %08x", srv3.StateHash(), ref.StateHash())
	}
}
