package cloud

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/game"
	"repro/internal/transport"
)

// newLagServer builds a test server with a fixed-lag window.
func newLagServer(t *testing.T, lag int) *Server {
	t.Helper()
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if lag > 0 {
		srv.SetFixedLag(lag)
	}
	return srv
}

// degradedRound completes one round with only region 0 reporting, via the
// round deadline.
func degradedRound(t *testing.T, srv *Server, round int, counts []int) {
	t.Helper()
	srv.SetRoundDeadline(20 * time.Millisecond)
	if _, err := srv.Submit(transport.Census{Edge: 0, Round: round, Counts: counts}); err != nil {
		t.Fatalf("degraded round %d: %v", round, err)
	}
	srv.SetRoundDeadline(0)
}

// A late census inside the lag window must rewind the fold and re-propagate
// so the state — and the ratio answered to the late edge — are bit-identical
// to a lossless run.
func TestFixedLagRewindBitIdentical(t *testing.T) {
	c0, c1 := testCounts(0, 7, 10)

	// Lossless baseline: all three rounds complete with both censuses.
	base := newLagServer(t, 0)
	defer base.Close()
	var afterRound1 *game.State
	for round := 0; round < 3; round++ {
		runFullRound(t, base, round, c0, c1)
		if round == 1 {
			afterRound1 = base.State()
		}
	}

	// Faulted run: region 1's round-1 census is late, arriving only after
	// round 1 completed degraded.
	srv := newLagServer(t, 8)
	defer srv.Close()
	runFullRound(t, srv, 0, c0, c1)
	degradedRound(t, srv, 1, c0)
	lateX, err := srv.Submit(transport.Census{Edge: 1, Round: 1, Counts: c1})
	if err != nil {
		t.Fatalf("late census: %v", err)
	}
	if lateX != afterRound1.X[1] {
		t.Fatalf("late answer = %v, want corrected %v", lateX, afterRound1.X[1])
	}
	runFullRound(t, srv, 2, c0, c1)

	if !reflect.DeepEqual(srv.State(), base.State()) {
		t.Fatalf("rewound state differs from lossless baseline:\n got %+v\nwant %+v", srv.State(), base.State())
	}
	if srv.StateHash() != base.StateHash() {
		t.Fatalf("state hash %08x != baseline %08x", srv.StateHash(), base.StateHash())
	}
	reg := srv.Registry()
	if n := metricValue(t, reg, "consensus_rewinds_total"); n != 1 {
		t.Errorf("consensus_rewinds_total = %v, want 1", n)
	}
	if n := metricValue(t, reg, "consensus_replayed_rounds_total"); n != 1 {
		t.Errorf("consensus_replayed_rounds_total = %v, want 1 (round 1 was the newest entry)", n)
	}
	if n := metricValue(t, reg, "consensus_state_hash"); uint32(n) != base.StateHash() {
		t.Errorf("consensus_state_hash gauge = %v, want %v", uint32(n), base.StateHash())
	}
}

// Several late censuses arriving out of order must still converge to the
// lossless fold: each rewind re-propagates through every buffered round
// after it.
func TestFixedLagRewindOutOfOrder(t *testing.T) {
	c0, c1 := testCounts(0, 7, 10)

	base := newLagServer(t, 0)
	defer base.Close()
	for round := 0; round < 4; round++ {
		runFullRound(t, base, round, c0, c1)
	}

	srv := newLagServer(t, 8)
	defer srv.Close()
	runFullRound(t, srv, 0, c0, c1)
	degradedRound(t, srv, 1, c0)
	degradedRound(t, srv, 2, c0)
	runFullRound(t, srv, 3, c0, c1)
	// Region 1's stragglers arrive newest-first.
	for _, round := range []int{2, 1} {
		if _, err := srv.Submit(transport.Census{Edge: 1, Round: round, Counts: c1}); err != nil {
			t.Fatalf("late census round %d: %v", round, err)
		}
	}

	if srv.StateHash() != base.StateHash() {
		t.Fatalf("state hash %08x != baseline %08x after out-of-order rewinds", srv.StateHash(), base.StateHash())
	}
	if !reflect.DeepEqual(srv.State(), base.State()) {
		t.Fatalf("rewound state differs from baseline:\n got %+v\nwant %+v", srv.State(), base.State())
	}
	reg := srv.Registry()
	if n := metricValue(t, reg, "consensus_rewinds_total"); n != 2 {
		t.Errorf("consensus_rewinds_total = %v, want 2", n)
	}
	// Rewinding round 2 re-folds rounds 2 and 3; rewinding round 1 re-folds
	// 1, 2, and 3.
	if n := metricValue(t, reg, "consensus_replayed_rounds_total"); n != 5 {
		t.Errorf("consensus_replayed_rounds_total = %v, want 5", n)
	}
}

// A byte-identical duplicate of a census the round already folded must be
// absorbed without a rewind or any state change.
func TestFixedLagDuplicateAbsorbed(t *testing.T) {
	c0, c1 := testCounts(0, 7, 10)
	srv := newLagServer(t, 8)
	defer srv.Close()
	runFullRound(t, srv, 0, c0, c1)
	runFullRound(t, srv, 1, c0, c1)

	before := srv.StateHash()
	x, err := srv.Submit(transport.Census{Edge: 1, Round: 1, Counts: append([]int(nil), c1...)})
	if err != nil {
		t.Fatalf("duplicate census: %v", err)
	}
	if x != srv.State().X[1] {
		t.Errorf("duplicate answered %v, want current %v", x, srv.State().X[1])
	}
	if srv.StateHash() != before {
		t.Error("duplicate census changed the state")
	}
	reg := srv.Registry()
	if n := metricValue(t, reg, "consensus_duplicate_censuses_total"); n != 1 {
		t.Errorf("consensus_duplicate_censuses_total = %v, want 1", n)
	}
	if n := metricValue(t, reg, "consensus_rewinds_total"); n != 0 {
		t.Errorf("consensus_rewinds_total = %v, want 0", n)
	}
}

// A late census for a round older than the window keeps the degraded
// answer-from-current-state path and is counted against the lag budget.
func TestFixedLagBeyondWindowCounted(t *testing.T) {
	c0, c1 := testCounts(0, 7, 10)
	srv := newLagServer(t, 2)
	defer srv.Close()
	for round := 0; round < 4; round++ {
		runFullRound(t, srv, round, c0, c1)
	}
	// Window now holds rounds 2 and 3; round 0 is beyond it.
	alt := make([]int, 8)
	alt[3] = 10
	before := srv.StateHash()
	x, err := srv.Submit(transport.Census{Edge: 1, Round: 0, Counts: alt})
	if err != nil {
		t.Fatalf("beyond-lag census: %v", err)
	}
	if x != srv.State().X[1] {
		t.Errorf("beyond-lag answered %v, want current %v", x, srv.State().X[1])
	}
	if srv.StateHash() != before {
		t.Error("beyond-lag census changed the state")
	}
	reg := srv.Registry()
	if n := metricValue(t, reg, "consensus_censuses_beyond_lag_total"); n != 1 {
		t.Errorf("consensus_censuses_beyond_lag_total = %v, want 1", n)
	}
	if n := metricValue(t, reg, "consensus_lag_window_depth"); n != 2 {
		t.Errorf("consensus_lag_window_depth = %v, want 2", n)
	}
	if n := metricValue(t, reg, "consensus_rewinds_total"); n != 0 {
		t.Errorf("consensus_rewinds_total = %v, want 0", n)
	}
}

// A re-submitted census inside a pending barrier (CloudLink redial) must be
// last-write-wins under the barrier lock and counted as a duplicate.
func TestPendingBarrierDuplicateLastWriteWins(t *testing.T) {
	srv := newLagServer(t, 0)
	defer srv.Close()
	first := make([]int, 8)
	first[0] = 10
	second := make([]int, 8)
	second[7] = 10

	// hasCensus reports whether round 0's pending barrier holds counts for
	// region 0 matching want.
	hasCensus := func(want []int) func() bool {
		return func() bool {
			srv.mu.Lock()
			defer srv.mu.Unlock()
			rb, ok := srv.eng.Barrier(0)
			if !ok {
				return false
			}
			got, ok := rb.Censuses[0]
			return ok && equalCounts(got, want)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, counts := range [][]int{first, second} {
		wg.Add(1)
		go func(i int, counts []int) {
			defer wg.Done()
			_, errs[i] = srv.Submit(transport.Census{Edge: 0, Round: 0, Counts: counts})
		}(i, counts)
		// Sequence the two submissions so the re-submit is the last write.
		waitFor(t, hasCensus(counts))
	}
	if n := metricValue(t, srv.Registry(), "consensus_duplicate_censuses_total"); n != 1 {
		t.Errorf("consensus_duplicate_censuses_total = %v, want 1", n)
	}
	if _, err := srv.Submit(transport.Census{Edge: 1, Round: 0, Counts: second}); err != nil {
		t.Fatalf("completing census: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// The fold must have used the last write for region 0 (all weight on
	// decision 8, not decision 1).
	state := srv.State()
	if state.P[0][7] != 1 || state.P[0][0] != 0 {
		t.Errorf("region 0 folded %v, want last-write shares on decision 8", state.P[0])
	}
}

// Censuses absurdly far ahead of the latest round must be rejected with the
// typed error instead of allocating a barrier.
func TestSubmitRejectsFutureRound(t *testing.T) {
	c0, c1 := testCounts(0, 7, 10)
	srv := newLagServer(t, 0)
	defer srv.Close()
	srv.SetMaxRoundSkew(4)
	runFullRound(t, srv, 0, c0, c1)

	_, err := srv.Submit(transport.Census{Edge: 0, Round: 100, Counts: c0})
	if !errors.Is(err, ErrFutureRound) {
		t.Fatalf("Submit(round 100) = %v, want ErrFutureRound", err)
	}
	if n := metricValue(t, srv.Registry(), "consensus_future_censuses_total"); n != 1 {
		t.Errorf("consensus_future_censuses_total = %v, want 1", n)
	}
	// A round at the bound is still accepted.
	done := make(chan error, 1)
	go func() {
		_, err := srv.Submit(transport.Census{Edge: 0, Round: 4, Counts: c0})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("Submit(round 4) returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
		// Still blocked on the barrier: the census was accepted.
	}
	if _, err := srv.Submit(transport.Census{Edge: 1, Round: 4, Counts: c1}); err != nil {
		t.Fatalf("completing round 4: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Submit(round 4): %v", err)
	}
}
