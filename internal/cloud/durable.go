package cloud

import (
	"fmt"

	"repro/internal/durable"
)

// defaultCompactEvery is how many journaled rounds accumulate before the
// journal is folded into a fresh checkpoint.
const defaultCompactEvery = 32

// SetCompactEvery tunes how many journaled rounds trigger a snapshot
// compaction (default 32; 0 or negative disables compaction, the journal
// then grows until Drain).
func (s *Server) SetCompactEvery(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactEvery = n
}

// Open attaches a durable state directory to the server and recovers any
// state a previous process left there: the checkpoint is loaded, the
// journal's round records are replayed onto it through the same fold the
// live rounds use (bit-identical, since the JSON payloads round-trip
// float64 exactly), and the coordinator resumes at Latest()+1. Late
// censuses for recovered rounds are re-answered from the recovered state.
// Call after Instrument and before Serve; recovery is visible as
// durable_recoveries_total and journal_replay_records_total.
func (s *Server) Open(stateDir string) error {
	store, err := durable.Open(stateDir)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store != nil {
		store.Close()
		return fmt.Errorf("cloud: state directory already open (%s)", s.store.Dir())
	}
	recovered := false
	snap, ok, err := store.LoadSnapshot()
	if err != nil {
		store.Close()
		return err
	}
	if ok {
		cp, err := durable.DecodeCheckpoint(snap)
		if err != nil {
			store.Close()
			return err
		}
		cpK := 0
		if len(cp.State.P) > 0 {
			cpK = len(cp.State.P[0])
		}
		if len(cp.State.P) != s.m || cpK != s.k {
			store.Close()
			return fmt.Errorf("cloud: checkpoint in %s has %dx%d state, server configured for %dx%d",
				stateDir, len(cp.State.P), cpK, s.m, s.k)
		}
		if len(cp.FDS.LastShortfall) > 0 {
			if err := s.fold.SetMemory(cp.FDS); err != nil {
				store.Close()
				return fmt.Errorf("cloud: checkpoint in %s: %w", stateDir, err)
			}
		}
		s.fold.SetState(cp.State)
		s.eng.SetLatest(cp.Round)
		s.correctionSeq = cp.CorrectionSeq
		for h, mark := range cp.DigestWatermarks {
			s.digestMark[h] = mark
		}
		s.metrics.checkpointSize.Set(float64(len(snap)))
		recovered = true
	}
	replayed := 0
	_, err = store.Replay(func(payload []byte) error {
		rec, err := durable.DecodeRound(payload)
		if err != nil {
			return err
		}
		if rec.Corrected {
			// A fixed-lag rewind re-journaled this round with a late census
			// merged in: supersede the earlier fold and re-propagate, so the
			// recovered history is the corrected one.
			if idx := s.windowIndexLocked(rec.Round); idx >= 0 {
				e := s.window[idx]
				e.censuses = rec.Censuses
				e.degraded = rec.Degraded
				if err := s.refoldLocked(idx); err != nil {
					return fmt.Errorf("replaying corrected round %d: %w", rec.Round, err)
				}
				s.correctionSeq++
				replayed++
				return nil
			}
			if rec.Round <= s.eng.Latest() {
				// The corrected fold is already inside the checkpoint (or the
				// window shrank across restarts); nothing to redo.
				return nil
			}
			// No earlier fold of this round survives: apply it as a fresh
			// record below.
		}
		if rec.Round <= s.eng.Latest() {
			// Already covered by the checkpoint: a crash between snapshot
			// rename and journal truncate leaves such records behind.
			return nil
		}
		if s.lag > 0 {
			s.pushWindowLocked(rec.Round, rec.Censuses, rec.Degraded)
		}
		if err := s.fold.Apply(rec.Censuses); err != nil {
			return fmt.Errorf("replaying round %d: %w", rec.Round, err)
		}
		s.eng.SetLatest(rec.Round)
		replayed++
		return nil
	})
	if err != nil {
		store.Close()
		return fmt.Errorf("cloud: journal in %s: %w", stateDir, err)
	}
	if replayed > 0 {
		s.metrics.replayRecords.Add(int64(replayed))
		recovered = true
	}
	if recovered {
		s.metrics.recoveries.Inc()
		s.metrics.latestRound.Set(float64(s.eng.Latest()))
		s.metrics.stateHash.Set(float64(s.stateHashLocked()))
		s.logfLocked("cloud: recovered state through round %d from %s (%d journal records replayed)",
			s.eng.Latest(), stateDir, replayed)
	}
	s.store = store
	s.sinceCompact = replayed
	return nil
}

// persistRoundLocked journals one applied round — the append fsyncs before
// the round's waiters observe the new state, so a ratio acked to an edge is
// always recoverable — and folds the journal into a checkpoint every
// compactEvery rounds. Persistence failures are counted and logged but do
// not fail the round: the coordinator keeps serving from memory. Called
// with s.mu held; no-op without an open store.
func (s *Server) persistRoundLocked(round int, rb *Barrier, degraded bool) {
	if s.store == nil {
		return
	}
	payload, err := durable.EncodeRound(durable.RoundRecord{Round: round, Degraded: degraded, Censuses: rb.Censuses})
	if err == nil {
		err = s.store.Append(payload)
	}
	if err != nil {
		s.metrics.journalErrors.Inc()
		s.logfLocked("cloud: journaling round %d: %v", round, err)
		return
	}
	s.sinceCompact++
	if s.compactEvery > 0 && s.sinceCompact >= s.compactEvery {
		if err := s.checkpointLocked(); err != nil {
			s.metrics.journalErrors.Inc()
			s.logfLocked("cloud: compacting after round %d: %v", round, err)
		}
	}
}

// persistCorrectedLocked re-journals a window entry whose fold a rewind just
// superseded, marked Corrected so recovery replays the corrected history.
// Failures are counted and logged but do not fail the rewind, matching
// persistRoundLocked. Called with s.mu held; no-op without an open store.
func (s *Server) persistCorrectedLocked(e *lagEntry) {
	if s.store == nil {
		return
	}
	payload, err := durable.EncodeRound(durable.RoundRecord{
		Round:     e.round,
		Degraded:  e.degraded,
		Censuses:  e.censuses,
		Corrected: true,
	})
	if err == nil {
		err = s.store.Append(payload)
	}
	if err != nil {
		s.metrics.journalErrors.Inc()
		s.logfLocked("cloud: journaling corrected round %d: %v", e.round, err)
	}
}

// checkpointLocked folds the durable state into an atomic checkpoint.
// Without a lag window the checkpoint captures the current state and the
// journal truncates empty. With buffered rounds, the checkpoint instead
// captures the state *before* the oldest window entry and the window's
// round records are retained in the journal — rewinding inside the window
// must stay possible across a restart, and a checkpoint of the current
// state would make the buffered rounds unrecoverable. Called with s.mu
// held.
func (s *Server) checkpointLocked() error {
	cp := durable.Checkpoint{
		Round:         s.eng.Latest(),
		State:         s.fold.State(),
		FDS:           s.fold.Memory(),
		CorrectionSeq: s.correctionSeq,
	}
	if len(s.digestMark) > 0 {
		cp.DigestWatermarks = make(map[int]int, len(s.digestMark))
		for h, mark := range s.digestMark {
			cp.DigestWatermarks[h] = mark
		}
	}
	var retained [][]byte
	if s.lag > 0 && len(s.window) > 0 {
		w0 := s.window[0]
		cp.Round = w0.round - 1
		cp.State = w0.preState
		cp.FDS = w0.preFDS
		for _, e := range s.window {
			rec, err := durable.EncodeRound(durable.RoundRecord{
				Round:    e.round,
				Degraded: e.degraded,
				Censuses: e.censuses,
			})
			if err != nil {
				return err
			}
			retained = append(retained, rec)
		}
	}
	payload, err := durable.EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	var n int
	if retained == nil {
		n, err = s.store.Compact(payload)
	} else {
		n, err = s.store.CompactRetain(payload, retained)
	}
	if err != nil {
		return err
	}
	s.metrics.checkpointSize.Set(float64(n))
	s.sinceCompact = 0
	return nil
}

// Drain shuts the coordinator down gracefully: the most advanced pending
// barrier completes in degraded mode with whatever censuses it holds (its
// completion abandons the stale ones), a final checkpoint is written, and
// the server closes. The returned error reports checkpoint failure only —
// the shutdown itself always proceeds.
func (s *Server) Drain() error {
	var err error
	s.mu.Lock()
	if best, rb := s.eng.Best(nil); best >= 0 {
		s.logfLocked("cloud: draining: completing round %d with %d/%d regions", best, rb.Size(), s.m)
		s.completeRoundLocked(best, rb, rb.Size() < s.m)
	}
	if s.store != nil {
		err = s.checkpointLocked()
	}
	s.mu.Unlock()
	s.Close()
	return err
}
