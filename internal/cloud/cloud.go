// Package cloud implements the cloud-server role of Fig. 1 (step S1): it
// collects the per-region decision censuses from the edge servers (step ①),
// rebuilds the game state, runs one FDS round to optimize the sharing
// ratios, and answers each edge server with its region's new ratio
// (step ②).
package cloud

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/edge"
	"repro/internal/game"
	"repro/internal/policy"
	"repro/internal/transport"
)

// Server is the networked cloud coordinator. Edge servers connect, send one
// Census per round, and receive the next round's Ratio once every region
// has reported — a barrier per round, matching the paper's synchronized
// policy updates.
type Server struct {
	fds   *policy.FDS
	state *game.State

	mu     sync.Mutex
	rounds map[int]*roundBarrier
	m      int
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

type roundBarrier struct {
	censuses map[int][]int
	done     chan struct{}
	err      error
}

// NewServer builds a cloud server steering toward the FDS controller's
// desired field, starting from the given state (typically uniform
// distributions at an initial ratio).
func NewServer(f *policy.FDS, initial *game.State) (*Server, error) {
	if f == nil || initial == nil {
		return nil, fmt.Errorf("cloud: controller and state must be non-nil")
	}
	if err := initial.Validate(); err != nil {
		return nil, fmt.Errorf("cloud: initial state: %w", err)
	}
	return &Server{
		fds:    f,
		state:  initial.Clone(),
		rounds: make(map[int]*roundBarrier),
		m:      len(initial.P),
		closed: make(chan struct{}),
	}, nil
}

// State returns a snapshot of the cloud's current view of the game state.
func (s *Server) State() *game.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.Clone()
}

// Converged reports whether the current state satisfies the desired field.
func (s *Server) Converged() bool {
	ok, _ := s.fds.Field().Converged(s.State())
	return ok
}

// Serve accepts edge-server connections until the listener fails or the
// server closes. Run in a goroutine.
func (s *Server) Serve(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Close shuts the server down; pending barriers fail.
func (s *Server) Close() {
	s.once.Do(func() {
		close(s.closed)
		s.mu.Lock()
		for _, rb := range s.rounds {
			select {
			case <-rb.done:
			default:
				rb.err = transport.ErrClosed
				close(rb.done)
			}
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

func (s *Server) handleConn(conn transport.Conn) {
	defer conn.Close()
	for {
		m, err := conn.Recv()
		if errors.Is(err, io.EOF) || err != nil {
			return
		}
		var census transport.Census
		if err := transport.Decode(m, transport.KindCensus, &census); err != nil {
			continue
		}
		x, err := s.Submit(census)
		if err != nil {
			// Closing: nothing sensible to answer.
			return
		}
		reply, err := transport.Encode(transport.KindRatio, transport.Ratio{Round: census.Round + 1, X: x})
		if err != nil {
			return
		}
		if err := conn.Send(reply); err != nil {
			return
		}
	}
}

// Submit records one region's census for a round and blocks until every
// region has reported, then returns the region's next sharing ratio. It is
// the transport-independent core of the coordinator (the in-process
// simulator calls it directly).
func (s *Server) Submit(census transport.Census) (float64, error) {
	if census.Edge < 0 || census.Edge >= s.m {
		return 0, fmt.Errorf("cloud: census from unknown edge %d", census.Edge)
	}
	s.mu.Lock()
	rb, ok := s.rounds[census.Round]
	if !ok {
		rb = &roundBarrier{
			censuses: make(map[int][]int, s.m),
			done:     make(chan struct{}),
		}
		s.rounds[census.Round] = rb
	}
	rb.censuses[census.Edge] = census.Counts
	if len(rb.censuses) == s.m {
		s.applyRoundLocked(rb)
		close(rb.done)
		delete(s.rounds, census.Round)
	}
	s.mu.Unlock()

	select {
	case <-rb.done:
		if rb.err != nil {
			return 0, rb.err
		}
		s.mu.Lock()
		x := s.state.X[census.Edge]
		s.mu.Unlock()
		return x, nil
	case <-s.closed:
		return 0, transport.ErrClosed
	}
}

// applyRoundLocked folds the censuses into the state and runs one FDS
// update. Called with s.mu held.
func (s *Server) applyRoundLocked(rb *roundBarrier) {
	for i, counts := range rb.censuses {
		shares := edge.Shares(counts)
		if len(shares) == len(s.state.P[i]) {
			copy(s.state.P[i], shares)
		}
	}
	if _, err := s.fds.UpdateRatios(s.state); err != nil {
		rb.err = fmt.Errorf("cloud: FDS update: %w", err)
	}
}
