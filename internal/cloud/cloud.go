// Package cloud implements the cloud-server role of Fig. 1 (step S1): it
// collects the per-region decision censuses from the edge servers (step ①),
// rebuilds the game state, runs one FDS round to optimize the sharing
// ratios, and answers each edge server with its region's new ratio
// (step ②).
package cloud

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/game"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/transport"
	"repro/internal/transport/session"
)

// ErrRoundAbandoned is returned by Submit when a round's barrier was
// evicted because a newer round completed before the barrier filled — the
// submitting edge fell behind a partition or restart and should move on to
// the cloud's current round.
var ErrRoundAbandoned = errors.New("cloud: round abandoned")

// ErrBadCensus is returned by Submit for a census whose shape does not
// match the configured lattice: its Counts length differs from the number
// of decisions K, so folding it into the state would silently drop it.
var ErrBadCensus = errors.New("cloud: malformed census")

// Server is the networked cloud coordinator. Edge servers connect, send one
// Census per round, and receive the next round's Ratio once every region
// has reported — a barrier per round, matching the paper's synchronized
// policy updates. With a round deadline set, a barrier that does not fill
// in time completes in degraded mode: the FDS update runs with the
// last-known shares for the missing regions, so one dead edge cannot stall
// the rest of the system.
type Server struct {
	fold *Fold

	mu            sync.Mutex
	eng           *Engine // round barriers + completed-round watermark
	m             int
	k             int // decisions per census
	roundDeadline time.Duration
	logf          func(format string, args ...interface{})
	obsv          *obs.Observer
	metrics       serverMetrics
	conns         map[transport.Conn]struct{}
	closed        chan struct{}
	once          sync.Once
	wg            sync.WaitGroup

	// Durability (nil store = in-memory only; see Open).
	store        *durable.Store
	compactEvery int
	sinceCompact int

	// Membership leases (see RenewLease). leasing stays false until the
	// first lease is granted, preserving the all-regions barrier for
	// deployments that never send heartbeats.
	leases  map[int]*leaseEntry
	leasing bool

	// Fixed-lag fusion (see SetFixedLag). window holds the last lag
	// completed rounds in round order; correctionSeq totally orders the
	// ratio corrections rewinds publish; edgeSess maps each edge to the
	// session its censuses arrive on, the channel corrections go back out.
	lag           int
	window        []*lagEntry
	correctionSeq int64
	maxSkew       int
	edgeSess      map[int]*session.Session

	// Digest reconciliation (see SubmitDigest). digestSeen tracks, per
	// pending round, which neighborhoods have reported it; a round folds
	// once every neighborhood has. digestMark[h] is neighborhood h's
	// monotonic escalation watermark: every digest round below it has
	// already been adopted, so a re-sent backlog — an old leader retrying
	// after a lost ack, or a failed-over successor draining the same
	// journal-reconstructed rounds — folds idempotently instead of leaning
	// on the rewind window. Persisted in the checkpoint.
	digestSeen map[int]map[int]bool
	digestMark map[int]int
}

// serverMetrics are the coordinator's registry-backed instruments (see the
// naming convention in package obs).
type serverMetrics struct {
	rounds         *obs.Counter   // consensus_rounds_total
	degraded       *obs.Counter   // consensus_degraded_rounds_total
	abandoned      *obs.Counter   // consensus_abandoned_rounds_total
	late           *obs.Counter   // consensus_late_censuses_total
	decodeFailures *obs.Counter   // consensus_decode_failures_total
	latestRound    *obs.Gauge     // consensus_round_latest
	roundDuration  *obs.Histogram // consensus_round_duration_seconds
	recoveries     *obs.Counter   // durable_recoveries_total
	replayRecords  *obs.Counter   // journal_replay_records_total
	journalErrors  *obs.Counter   // durable_journal_errors_total
	checkpointSize *obs.Gauge     // checkpoint_bytes
	leaseRenewals  *obs.Counter   // lease_renewals_total
	leaseEvictions *obs.Counter   // lease_evictions_total
	leasesLive     *obs.Gauge     // cloud_leases_live
	rewinds        *obs.Counter   // consensus_rewinds_total
	replayed       *obs.Counter   // consensus_replayed_rounds_total
	beyondLag      *obs.Counter   // consensus_censuses_beyond_lag_total
	duplicates     *obs.Counter   // consensus_duplicate_censuses_total
	future         *obs.Counter   // consensus_future_censuses_total
	corrections    *obs.Counter   // consensus_ratio_corrections_total
	lagDepth       *obs.Gauge     // consensus_lag_window_depth
	stateHash      *obs.Gauge     // consensus_state_hash
	digests        *obs.Counter   // consensus_digests_total
	digestRounds   *obs.Counter   // consensus_digest_rounds_total
	digestSkipped  *obs.Counter   // consensus_digest_rounds_skipped_total
}

func newServerMetrics(o *obs.Observer) serverMetrics {
	return serverMetrics{
		rounds:         o.Counter("consensus_rounds_total", "consensus rounds whose FDS update ran (degraded or not)"),
		degraded:       o.Counter("consensus_degraded_rounds_total", "rounds completed by the deadline with at least one region missing"),
		abandoned:      o.Counter("consensus_abandoned_rounds_total", "stale round barriers evicted when a newer round completed first"),
		late:           o.Counter("consensus_late_censuses_total", "censuses for already-completed rounds, answered with the current ratio"),
		decodeFailures: o.Counter("consensus_decode_failures_total", "malformed frames dropped by connection handlers"),
		latestRound:    o.Gauge("consensus_round_latest", "highest completed consensus round (-1 before the first)"),
		roundDuration:  o.Histogram("consensus_round_duration_seconds", "first census to barrier completion", nil),
		recoveries:     o.Counter("durable_recoveries_total", "coordinator state recoveries from a state directory"),
		replayRecords:  o.Counter("journal_replay_records_total", "journal round records replayed during recovery"),
		journalErrors:  o.Counter("durable_journal_errors_total", "journal appends or checkpoints that failed (state kept in memory)"),
		checkpointSize: o.Gauge("checkpoint_bytes", "size of the last checkpoint written or recovered"),
		leaseRenewals:  o.Counter("lease_renewals_total", "edge membership lease registrations and renewals"),
		leaseEvictions: o.Counter("lease_evictions_total", "edges evicted from the barrier quorum by lease expiry"),
		leasesLive:     o.Gauge("cloud_leases_live", "edges currently holding a live membership lease"),
		rewinds:        o.Counter("consensus_rewinds_total", "fixed-lag rewinds triggered by late censuses inside the window"),
		replayed:       o.Counter("consensus_replayed_rounds_total", "rounds re-folded during fixed-lag rewinds"),
		beyondLag:      o.Counter("consensus_censuses_beyond_lag_total", "late censuses outside the lag window, answered from current state"),
		duplicates:     o.Counter("consensus_duplicate_censuses_total", "duplicate censuses absorbed without changing a round's fold"),
		future:         o.Counter("consensus_future_censuses_total", "censuses rejected for exceeding the round skew bound"),
		corrections:    o.Counter("consensus_ratio_corrections_total", "ratio-correction frames published after rewinds"),
		lagDepth:       o.Gauge("consensus_lag_window_depth", "completed rounds currently buffered in the fixed-lag window"),
		stateHash:      o.Gauge("consensus_state_hash", "CRC-32C of the canonical JSON game state (bit-identity check)"),
		digests:        o.Counter("consensus_digests_total", "gossip digests reconciled from neighborhood leaders"),
		digestRounds:   o.Counter("consensus_digest_rounds_total", "rounds carried by reconciled gossip digests"),
		digestSkipped:  o.Counter("consensus_digest_rounds_skipped_total", "digest rounds below a neighborhood's escalation watermark, adopted idempotently"),
	}
}

// NewServer builds a cloud server steering toward the FDS controller's
// desired field, starting from the given state (typically uniform
// distributions at an initial ratio).
func NewServer(f *policy.FDS, initial *game.State) (*Server, error) {
	fold, err := NewFold(f, initial)
	if err != nil {
		return nil, err
	}
	o := obs.New()
	s := &Server{
		fold:         fold,
		eng:          NewEngine(),
		m:            fold.Regions(),
		k:            fold.Decisions(),
		obsv:         o,
		metrics:      newServerMetrics(o),
		conns:        make(map[transport.Conn]struct{}),
		closed:       make(chan struct{}),
		compactEvery: defaultCompactEvery,
		leases:       make(map[int]*leaseEntry),
		maxSkew:      defaultMaxRoundSkew,
		edgeSess:     make(map[int]*session.Session),
		digestSeen:   make(map[int]map[int]bool),
		digestMark:   make(map[int]int),
	}
	s.metrics.latestRound.Set(-1)
	s.metrics.stateHash.Set(float64(s.stateHashLocked()))
	return s, nil
}

// Latest returns the highest completed round (-1 before the first). After
// Open recovered a state directory, this is the round recovery resumed
// from: the next barrier to complete is Latest()+1.
func (s *Server) Latest() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Latest()
}

// Instrument re-points the server's metrics and round spans at the given
// observer, so several components can report through one registry (cpnode's
// /metrics endpoint). Call before Serve; counters already accumulated on the
// default private registry are not carried over.
func (s *Server) Instrument(o *obs.Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obsv = o
	s.metrics = newServerMetrics(o)
	s.metrics.latestRound.Set(float64(s.eng.Latest()))
	s.metrics.lagDepth.Set(float64(len(s.window)))
	s.metrics.stateHash.Set(float64(s.stateHashLocked()))
}

// Registry returns the registry behind the server's metrics (the private
// default unless Instrument installed a shared one).
func (s *Server) Registry() *obs.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.obsv.Registry()
}

// SetRoundDeadline bounds every round barrier: a round whose censuses have
// not all arrived within d of the first one completes in degraded mode
// with last-known shares for the missing regions. Zero (the default)
// restores the unbounded barrier.
func (s *Server) SetRoundDeadline(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.roundDeadline = d
}

// SetLogf installs a logger for dropped frames and degraded rounds
// (default: silent, counters only).
func (s *Server) SetLogf(logf func(format string, args ...interface{})) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logf = logf
}

// logfLocked logs through the installed logger. Called with s.mu held.
func (s *Server) logfLocked(format string, args ...interface{}) {
	if s.logf != nil {
		s.logf(format, args...)
	}
}

// State returns a snapshot of the cloud's current view of the game state.
func (s *Server) State() *game.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fold.State().Clone()
}

// Converged reports whether the current state satisfies the desired field.
func (s *Server) Converged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fold.Converged()
}

// Serve accepts edge-server connections until the listener is torn down or
// the server closes. Transient accept failures — injected faults and real
// ones alike — are retried with bounded backoff (see transport.AcceptLoop),
// so a flaky listener cannot permanently kill the coordinator. Run in a
// goroutine.
func (s *Server) Serve(l transport.Listener) {
	transport.AcceptLoop(l, s.closed, func(conn transport.Conn) {
		s.mu.Lock()
		select {
		case <-s.closed:
			s.mu.Unlock()
			conn.Close()
			return
		default:
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	})
}

// Close shuts the server down without flushing a final checkpoint — the
// crash path; see Drain for the graceful one. Pending barriers fail, open
// connections close, lease timers stop, and the durable store (already
// fsynced through the last completed round) is released.
func (s *Server) Close() {
	s.once.Do(func() {
		close(s.closed)
		s.mu.Lock()
		for _, a := range s.eng.FailAll(transport.ErrClosed) {
			a.Barrier.Span.End(obs.A("closed", true))
		}
		for _, e := range s.leases {
			if e.timer != nil {
				e.timer.Stop()
			}
		}
		for conn := range s.conns {
			conn.Close()
		}
		s.conns = make(map[transport.Conn]struct{})
		if s.store != nil {
			_ = s.store.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

func (s *Server) handleConn(conn transport.Conn) {
	sess := session.Wrap(conn)
	defer sess.Close()
	defer s.dropEdgeSess(sess)
	// dropFrame counts and logs a malformed frame without killing the
	// connection: the edge's next census must still be servable.
	dropFrame := func(err error) error {
		s.mu.Lock()
		s.metrics.decodeFailures.Inc()
		s.logfLocked("cloud: dropping malformed frame: %v", err)
		s.mu.Unlock()
		return nil
	}
	_ = sess.Serve(map[transport.Kind]session.Handler{
		transport.KindCensus: func(m transport.Message) error {
			var census transport.Census
			if err := transport.Decode(m, transport.KindCensus, &census); err != nil {
				return dropFrame(err)
			}
			s.registerEdgeSess(census.Edge, sess)
			x, err := s.Submit(census)
			switch {
			case err == nil:
			case errors.Is(err, ErrRoundAbandoned):
				// The edge fell behind; answer with the region's current
				// ratio so it can catch up instead of hanging.
				s.mu.Lock()
				x = s.fold.X(census.Edge)
				s.mu.Unlock()
			case errors.Is(err, transport.ErrClosed):
				return err
			default:
				// Bad census (e.g. unknown edge): reject it, keep the conn.
				_ = sess.Ack(err)
				return nil
			}
			return sess.Send(transport.KindRatio, transport.Ratio{Round: census.Round + 1, X: x})
		},
		transport.KindCensusBatch: func(m transport.Message) error {
			var batch transport.CensusBatch
			if err := transport.Decode(m, transport.KindCensusBatch, &batch); err != nil {
				return dropFrame(err)
			}
			for _, c := range batch.Censuses {
				s.registerEdgeSess(c.Edge, sess)
			}
			reply, err := s.SubmitBatch(batch)
			switch {
			case err == nil:
			case errors.Is(err, ErrRoundAbandoned):
				// The shard fell behind; answer with the regions' current
				// ratios so it can catch up instead of hanging.
				s.mu.Lock()
				reply = s.ratioBatchLocked(batch)
				s.mu.Unlock()
			case errors.Is(err, transport.ErrClosed):
				return err
			default:
				_ = sess.Ack(err)
				return nil
			}
			return sess.Send(transport.KindRatioBatch, reply)
		},
		transport.KindDigest: func(m transport.Message) error {
			var d transport.Digest
			if err := transport.Decode(m, transport.KindDigest, &d); err != nil {
				return dropFrame(err)
			}
			reply, err := s.SubmitDigest(d)
			switch {
			case err == nil:
			case errors.Is(err, transport.ErrClosed):
				return err
			default:
				// Bad digest (malformed census, skew bound): reject it, keep
				// the conn for the leader's next attempt.
				_ = sess.Ack(err)
				return nil
			}
			return sess.Send(transport.KindRatioBatch, reply)
		},
		transport.KindLease: func(m transport.Message) error {
			var lease transport.Lease
			if err := transport.Decode(m, transport.KindLease, &lease); err != nil {
				return dropFrame(err)
			}
			err := s.RenewLease(lease.Edge, time.Duration(lease.TTLMillis)*time.Millisecond)
			if errors.Is(err, transport.ErrClosed) {
				return err
			}
			return sess.Ack(err)
		},
	}, func(m transport.Message) error {
		return dropFrame(fmt.Errorf("expected %s message, got %s", transport.KindCensus, m.Kind))
	})
}

// Submit records one region's census for a round and blocks until every
// region has reported — or, with a round deadline set, until the deadline
// completes the barrier in degraded mode — then returns the region's next
// sharing ratio. A census for an already-completed round returns the
// region's current ratio immediately, so a reconnecting edge catches up
// without blocking. It is the transport-independent core of the
// coordinator (the in-process simulator calls it directly).
func (s *Server) Submit(census transport.Census) (float64, error) {
	if census.Edge < 0 || census.Edge >= s.m {
		return 0, fmt.Errorf("cloud: census from unknown edge %d", census.Edge)
	}
	if len(census.Counts) != s.k {
		s.mu.Lock()
		s.metrics.decodeFailures.Inc()
		s.logfLocked("cloud: rejecting census from edge %d with %d counts (lattice has %d decisions)",
			census.Edge, len(census.Counts), s.k)
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: edge %d sent %d counts, lattice has %d decisions",
			ErrBadCensus, census.Edge, len(census.Counts), s.k)
	}
	s.mu.Lock()
	if census.Round <= s.eng.Latest() {
		// The round already completed (possibly degraded, without this
		// region). Inside the lag window the fold rewinds and re-propagates
		// so the answer — and every subsequent published ratio — matches
		// what a lossless network would have produced; beyond it the census
		// is folded away and answered from the current state, the degraded
		// legacy path.
		s.metrics.late.Inc()
		handled, rewound, err := s.handleLateLocked(census)
		if err != nil {
			s.mu.Unlock()
			return 0, err
		}
		if !handled && s.lag > 0 {
			s.metrics.beyondLag.Inc()
		}
		var corrections []correctionSend
		if rewound {
			corrections = s.collectCorrectionsLocked(census.Edge)
		}
		x := s.fold.X(census.Edge)
		s.mu.Unlock()
		s.sendCorrections(corrections)
		return x, nil
	}
	if s.maxSkew > 0 && census.Round > s.eng.Latest()+s.maxSkew {
		s.metrics.future.Inc()
		s.logfLocked("cloud: rejecting census from edge %d for round %d (latest %d, skew bound %d)",
			census.Edge, census.Round, s.eng.Latest(), s.maxSkew)
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: round %d is beyond latest %d + skew %d",
			ErrFutureRound, census.Round, s.eng.Latest(), s.maxSkew)
	}
	rb, ok := s.eng.Barrier(census.Round)
	if !ok {
		span := s.obsv.Span("consensus_round", obs.A("round", census.Round))
		rb = s.eng.Open(census.Round, span, s.roundDeadline, s.expireRound)
	}
	rb.Span.Event("census", obs.A("edge", census.Edge))
	if rb.Add(census.Edge, census.Counts) {
		// A CloudLink redial re-submits the census it never got an answer
		// for; last write wins under the one barrier lock.
		s.metrics.duplicates.Inc()
	}
	if s.quorumMetLocked(rb) {
		s.completeRoundLocked(census.Round, rb, rb.Size() < s.m)
	}
	s.mu.Unlock()

	select {
	case <-rb.Done:
		if rb.Err != nil {
			return 0, rb.Err
		}
		s.mu.Lock()
		x := s.fold.X(census.Edge)
		s.mu.Unlock()
		return x, nil
	case <-s.closed:
		return 0, transport.ErrClosed
	}
}

// expireRound completes a still-pending round in degraded mode when its
// deadline fires.
func (s *Server) expireRound(round int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rb, ok := s.eng.Barrier(round)
	if !ok {
		return
	}
	select {
	case <-rb.Done:
		return
	default:
	}
	s.completeRoundLocked(round, rb, true)
}

// completeRoundLocked applies the round, releases its waiters, and evicts
// any stale barriers the completion leaves behind (an edge that died
// mid-round must not leak its half-filled barrier). Called with s.mu held.
func (s *Server) completeRoundLocked(round int, rb *Barrier, degraded bool) {
	if s.lag > 0 {
		// Snapshot the pre-fold state so a late census can rewind this round.
		s.pushWindowLocked(round, rb.Censuses, degraded)
	}
	rb.Err = s.fold.Apply(rb.Censuses)
	s.metrics.stateHash.Set(float64(s.stateHashLocked()))
	// Advance the watermark before journaling: a compaction inside persist
	// snapshots Latest() as the checkpoint round, and the state it captures
	// already includes this round's fold.
	if round > s.eng.Latest() {
		s.eng.SetLatest(round)
	}
	// Journal before releasing the waiters: a ratio answered to an edge must
	// never be lost to a crash the edge did not see.
	s.persistRoundLocked(round, rb, degraded)
	abandoned := s.eng.Complete(round, rb, degraded)
	s.metrics.rounds.Inc()
	s.metrics.latestRound.Set(float64(s.eng.Latest()))
	s.metrics.roundDuration.Observe(time.Since(rb.Opened).Seconds())
	if degraded {
		s.metrics.degraded.Inc()
		s.logfLocked("cloud: round %d completed degraded with %d/%d regions", round, rb.Size(), s.m)
	}
	rb.Span.End(obs.A("degraded", degraded), obs.A("regions", rb.Size()), obs.A("of", s.m))
	for _, a := range abandoned {
		s.metrics.abandoned.Inc()
		a.Barrier.Span.End(obs.A("abandoned", true), obs.A("superseded_by", round))
	}
}
