package cloud

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/transport"
)

// SubmitBatch records a whole region group's censuses for one round in a
// single call — the aggregation tier's entry point for shard coordinators
// and multiplexing load generators. All censuses must carry the batch's
// round; any malformed census rejects the whole batch before anything is
// folded, so a batch is applied atomically or not at all. The call blocks
// like Submit until the round's barrier completes, then answers every
// batched region's next ratio in one RatioBatch. A batch for an
// already-completed round is resolved census-by-census through the lag
// window (rewinds and re-folds exactly as late single censuses do, with
// correction frames for non-batch edges pushed afterward) and answered from
// the resulting state, so a shard forwarding stragglers keeps the global
// fold bit-identical to a lossless network.
func (s *Server) SubmitBatch(batch transport.CensusBatch) (transport.RatioBatch, error) {
	if len(batch.Censuses) == 0 {
		return transport.RatioBatch{}, fmt.Errorf("cloud: empty census batch from shard %d", batch.Shard)
	}
	for _, c := range batch.Censuses {
		if c.Round != batch.Round {
			return transport.RatioBatch{}, fmt.Errorf("cloud: batch for round %d carries a census for round %d (edge %d)",
				batch.Round, c.Round, c.Edge)
		}
		if c.Edge < 0 || c.Edge >= s.m {
			return transport.RatioBatch{}, fmt.Errorf("cloud: census from unknown edge %d", c.Edge)
		}
		if len(c.Counts) != s.k {
			s.mu.Lock()
			s.metrics.decodeFailures.Inc()
			s.logfLocked("cloud: rejecting batch from shard %d: edge %d sent %d counts (lattice has %d decisions)",
				batch.Shard, c.Edge, len(c.Counts), s.k)
			s.mu.Unlock()
			return transport.RatioBatch{}, fmt.Errorf("%w: edge %d sent %d counts, lattice has %d decisions",
				ErrBadCensus, c.Edge, len(c.Counts), s.k)
		}
	}

	s.mu.Lock()
	if batch.Round <= s.eng.Latest() {
		// The round already completed without (some of) this batch. Resolve
		// each census through the lag window; corrections go to every edge
		// outside the batch, since the reply below carries the batch edges'
		// corrected ratios already.
		rewound := false
		for _, c := range batch.Censuses {
			s.metrics.late.Inc()
			handled, rw, err := s.handleLateLocked(c)
			if err != nil {
				s.mu.Unlock()
				return transport.RatioBatch{}, err
			}
			if !handled && s.lag > 0 {
				s.metrics.beyondLag.Inc()
			}
			rewound = rewound || rw
		}
		var corrections []correctionSend
		if rewound {
			exclude := make([]int, len(batch.Censuses))
			for i, c := range batch.Censuses {
				exclude[i] = c.Edge
			}
			corrections = s.collectCorrectionsLocked(exclude...)
		}
		reply := s.ratioBatchLocked(batch)
		s.mu.Unlock()
		s.sendCorrections(corrections)
		return reply, nil
	}
	if s.maxSkew > 0 && batch.Round > s.eng.Latest()+s.maxSkew {
		s.metrics.future.Inc()
		s.logfLocked("cloud: rejecting batch from shard %d for round %d (latest %d, skew bound %d)",
			batch.Shard, batch.Round, s.eng.Latest(), s.maxSkew)
		s.mu.Unlock()
		return transport.RatioBatch{}, fmt.Errorf("%w: round %d is beyond latest %d + skew %d",
			ErrFutureRound, batch.Round, s.eng.Latest(), s.maxSkew)
	}
	rb, ok := s.eng.Barrier(batch.Round)
	if !ok {
		span := s.obsv.Span("consensus_round", obs.A("round", batch.Round))
		rb = s.eng.Open(batch.Round, span, s.roundDeadline, s.expireRound)
	}
	rb.Span.Event("census_batch", obs.A("shard", batch.Shard), obs.A("edges", len(batch.Censuses)))
	for _, c := range batch.Censuses {
		if rb.Add(c.Edge, c.Counts) {
			// A shard re-forwards the batch it never got an answer for (its
			// own redial loop); last write wins under the one barrier lock.
			s.metrics.duplicates.Inc()
		}
	}
	if s.quorumMetLocked(rb) {
		s.completeRoundLocked(batch.Round, rb, rb.Size() < s.m)
	}
	s.mu.Unlock()

	select {
	case <-rb.Done:
		if rb.Err != nil {
			return transport.RatioBatch{}, rb.Err
		}
		s.mu.Lock()
		reply := s.ratioBatchLocked(batch)
		s.mu.Unlock()
		return reply, nil
	case <-s.closed:
		return transport.RatioBatch{}, transport.ErrClosed
	}
}

// ratioBatchLocked answers batch with each batched region's current sharing
// ratio under the step-② reply convention (Round = batch round + 1). Called
// with s.mu held.
func (s *Server) ratioBatchLocked(batch transport.CensusBatch) transport.RatioBatch {
	reply := transport.RatioBatch{
		Round: batch.Round + 1,
		Edges: make([]int, len(batch.Censuses)),
		X:     make([]float64, len(batch.Censuses)),
	}
	for i, c := range batch.Censuses {
		reply.Edges[i] = c.Edge
		reply.X[i] = s.fold.X(c.Edge)
	}
	return reply
}
