package cloud

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/transport"
)

// SubmitDigest reconciles one neighborhood's compacted round history into
// the control-plane fold. Each digest round carries the full census set the
// neighborhood folded locally; rounds the cloud already completed go
// through the fixed-lag late path (byte-identical duplicates — the normal
// case, since every neighborhood folds the same members' censuses its
// digest reports — are absorbed; genuinely late censuses rewind and merge),
// while new rounds accumulate on the round barrier until every neighborhood
// (d.Of of them) has reported, then fold in round order. SubmitDigest never
// blocks on a barrier: the reply is the cloud's *current* view of the
// members' ratios, which gossip nodes record for observability only — the
// digest stream is the data plane's history, not a policy round-trip.
//
// Rounds inside one digest must be ascending; neighborhoods escalate their
// backlog in order, so cross-neighborhood completion is ascending too.
func (s *Server) SubmitDigest(d transport.Digest) (transport.RatioBatch, error) {
	if d.Of <= 0 {
		return transport.RatioBatch{}, fmt.Errorf("cloud: digest from neighborhood %d of %d", d.Neighborhood, d.Of)
	}
	if d.Neighborhood < 0 || d.Neighborhood >= d.Of {
		return transport.RatioBatch{}, fmt.Errorf("cloud: digest from neighborhood %d outside 0..%d", d.Neighborhood, d.Of-1)
	}
	if len(d.Rounds) == 0 {
		return transport.RatioBatch{}, fmt.Errorf("cloud: empty digest from neighborhood %d", d.Neighborhood)
	}
	last := -1
	for _, dr := range d.Rounds {
		if dr.Round <= last {
			return transport.RatioBatch{}, fmt.Errorf("cloud: digest rounds out of order (%d after %d)", dr.Round, last)
		}
		last = dr.Round
		for _, c := range dr.Censuses {
			if c.Edge < 0 || c.Edge >= s.m {
				return transport.RatioBatch{}, fmt.Errorf("cloud: digest census from unknown edge %d", c.Edge)
			}
			if len(c.Counts) != s.k {
				return transport.RatioBatch{}, fmt.Errorf("%w: digest edge %d sent %d counts, lattice has %d decisions",
					ErrBadCensus, c.Edge, len(c.Counts), s.k)
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics.digests.Inc()
	var firstErr error
	for _, dr := range d.Rounds {
		s.metrics.digestRounds.Inc()
		if dr.Round < s.digestMark[d.Neighborhood] {
			// This neighborhood already escalated the round — the same
			// leader retrying a lost ack, or a failed-over successor
			// draining the backlog its journal reconstructed. Idempotent
			// adoption: skip without disturbing the rewind window, so the
			// re-sent copy folds bit-identically to having never arrived.
			s.metrics.digestSkipped.Inc()
			continue
		}
		if dr.Round <= s.eng.Latest() {
			// Re-escalation after a lost ack, or another neighborhood's copy
			// of a round this one already completed: the rewind window
			// absorbs duplicates and merges genuinely late censuses.
			for _, c := range dr.Censuses {
				cc := c
				cc.Round = dr.Round
				s.metrics.late.Inc()
				if _, _, err := s.handleLateLocked(cc); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			continue
		}
		if s.maxSkew > 0 && dr.Round > s.eng.Latest()+s.maxSkew {
			s.metrics.future.Inc()
			return transport.RatioBatch{}, fmt.Errorf("%w: digest round %d is beyond latest %d + skew %d",
				ErrFutureRound, dr.Round, s.eng.Latest(), s.maxSkew)
		}
		rb, ok := s.eng.Barrier(dr.Round)
		if !ok {
			span := s.obsv.Span("consensus_round", obs.A("round", dr.Round))
			rb = s.eng.Open(dr.Round, span, 0, nil)
		}
		for _, c := range dr.Censuses {
			if rb.Add(c.Edge, c.Counts) {
				s.metrics.duplicates.Inc()
			}
		}
		seen := s.digestSeen[dr.Round]
		if seen == nil {
			seen = make(map[int]bool)
			s.digestSeen[dr.Round] = seen
		}
		seen[d.Neighborhood] = true
		if len(seen) >= d.Of {
			s.completeRoundLocked(dr.Round, rb, rb.Size() < s.m)
		}
	}
	for round := range s.digestSeen {
		if round <= s.eng.Latest() {
			delete(s.digestSeen, round)
		}
	}
	if firstErr != nil {
		return transport.RatioBatch{}, firstErr
	}
	// Advance the neighborhood's watermark past everything this digest
	// carried: the rounds are either folded, pending on the digest barrier,
	// or absorbed by the rewind window, and the ack below tells the leader
	// to drop them — any future copy must be treated as a duplicate. The
	// reply Round stays last+1 even when every round was skipped, since the
	// escalation exchange identifies its answer by that number.
	if last+1 > s.digestMark[d.Neighborhood] {
		s.digestMark[d.Neighborhood] = last + 1
	}
	reply := transport.RatioBatch{
		Round: last + 1,
		Edges: append([]int(nil), d.Members...),
		X:     make([]float64, len(d.Members)),
	}
	for i, e := range d.Members {
		if e >= 0 && e < s.m {
			reply.X[i] = s.fold.X(e)
		}
	}
	return reply, nil
}
