package cloud

import (
	"reflect"
	"testing"

	"repro/internal/game"
	"repro/internal/transport"
)

// testDigest builds a single-neighborhood digest over both regions covering
// rounds lo..hi inclusive, with the same census pair in every round.
func testDigest(lo, hi int, c0, c1 []int) transport.Digest {
	d := transport.Digest{Neighborhood: 0, Of: 1, Members: []int{0, 1}}
	for r := lo; r <= hi; r++ {
		d.Rounds = append(d.Rounds, transport.DigestRound{
			Round:    r,
			Censuses: []transport.Census{{Edge: 0, Counts: c0}, {Edge: 1, Counts: c1}},
		})
	}
	return d
}

// A digest re-sent after a lost ack — or a failed-over successor draining
// the backlog its journal reconstructed — must be adopted idempotently:
// every round below the neighborhood's watermark is acked without touching
// the fold, so the retry is indistinguishable from having never happened.
func TestDigestIdempotentAdoption(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c0, c1 := testCounts(0, 7, 10)
	first := testDigest(0, 2, c0, c1)
	reply, err := srv.SubmitDigest(first)
	if err != nil {
		t.Fatalf("first digest: %v", err)
	}
	if reply.Round != 3 {
		t.Fatalf("first reply round = %d, want 3", reply.Round)
	}
	if got := srv.Latest(); got != 2 {
		t.Fatalf("latest after first digest = %d, want 2", got)
	}
	preState := srv.State()

	// The exact same digest again: every round skipped, state untouched,
	// but the reply still identifies itself as the answer to last+1.
	reply, err = srv.SubmitDigest(first)
	if err != nil {
		t.Fatalf("retried digest: %v", err)
	}
	if reply.Round != 3 {
		t.Fatalf("retried reply round = %d, want 3", reply.Round)
	}
	if n := metricValue(t, srv.Registry(), "consensus_digest_rounds_skipped_total"); n != 3 {
		t.Fatalf("consensus_digest_rounds_skipped_total = %v, want 3", n)
	}
	if !reflect.DeepEqual(srv.State(), preState) {
		t.Fatalf("retried digest disturbed the fold:\n got %+v\nwant %+v", srv.State(), preState)
	}

	// A partially overlapping digest — the successor's backlog reaches back
	// before the watermark — skips the covered prefix and folds the rest.
	if _, err := srv.SubmitDigest(testDigest(1, 3, c0, c1)); err != nil {
		t.Fatalf("overlapping digest: %v", err)
	}
	if n := metricValue(t, srv.Registry(), "consensus_digest_rounds_skipped_total"); n != 5 {
		t.Fatalf("consensus_digest_rounds_skipped_total = %v, want 5", n)
	}
	if got := srv.Latest(); got != 3 {
		t.Fatalf("latest after overlapping digest = %d, want 3", got)
	}
}

// The per-neighborhood watermark is part of the durable checkpoint: a
// kill -9'd control plane restarted from its state directory still treats
// the old leader's re-escalation as a duplicate instead of re-folding it.
func TestDigestWatermarkSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	fds1, _ := testFDS(t)
	srv1, err := NewServer(fds1, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.Open(dir); err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv1.SetCompactEvery(1)

	c0, c1 := testCounts(0, 7, 10)
	if _, err := srv1.SubmitDigest(testDigest(0, 2, c0, c1)); err != nil {
		t.Fatalf("first digest: %v", err)
	}
	// Round 3's completion checkpoints with the first digest's watermark
	// (3) already advanced; the crash below loses nothing before it.
	if _, err := srv1.SubmitDigest(testDigest(3, 3, c0, c1)); err != nil {
		t.Fatalf("second digest: %v", err)
	}
	preState := srv1.State()
	srv1.Close() // kill -9: no drain, no final checkpoint

	fds2, _ := testFDS(t)
	srv2, err := NewServer(fds2, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if err := srv2.Open(dir); err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	if !reflect.DeepEqual(srv2.State(), preState) {
		t.Fatalf("recovered state differs:\n got %+v\nwant %+v", srv2.State(), preState)
	}

	// The old leader re-escalates its whole backlog: every round is below
	// the recovered watermark, so the fold stays bit-identical.
	reply, err := srv2.SubmitDigest(testDigest(0, 2, c0, c1))
	if err != nil {
		t.Fatalf("re-escalation after restart: %v", err)
	}
	if reply.Round != 3 {
		t.Fatalf("re-escalation reply round = %d, want 3", reply.Round)
	}
	if n := metricValue(t, srv2.Registry(), "consensus_digest_rounds_skipped_total"); n != 3 {
		t.Fatalf("consensus_digest_rounds_skipped_total = %v, want 3", n)
	}
	if !reflect.DeepEqual(srv2.State(), preState) {
		t.Fatalf("re-escalation disturbed the recovered fold:\n got %+v\nwant %+v", srv2.State(), preState)
	}
}
