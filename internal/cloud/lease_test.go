package cloud

import (
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/game"
	"repro/internal/transport"
	"repro/internal/transport/session"
)

func TestRenewLeaseValidation(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.RenewLease(5, time.Second); err == nil {
		t.Error("lease for unknown edge accepted")
	}
	if err := srv.RenewLease(0, 0); err == nil {
		t.Error("lease with zero TTL accepted")
	}
	if err := srv.RenewLease(0, time.Second); err != nil {
		t.Errorf("valid lease rejected: %v", err)
	}
}

// An evicted edge must stop blocking the barrier: the healthy region's
// round completes (degraded) as soon as the dead edge's lease lapses, long
// before the round deadline backstop would fire.
func TestLeaseEvictionUnblocksBarrier(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetRoundDeadline(30 * time.Second) // backstop far beyond the test

	if err := srv.RenewLease(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.RenewLease(1, 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	c0, _ := testCounts(0, 7, 10)
	start := time.Now()
	x, err := srv.Submit(transport.Census{Edge: 0, Round: 0, Counts: c0})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if x < 0 || x > 1 {
		t.Fatalf("ratio %v out of range", x)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("barrier took %v: eviction did not shrink the quorum", elapsed)
	}
	reg := srv.Registry()
	if n := metricValue(t, reg, "lease_evictions_total"); n != 1 {
		t.Fatalf("lease_evictions_total = %v, want 1", n)
	}
	if n := metricValue(t, reg, "consensus_degraded_rounds_total"); n != 1 {
		t.Fatalf("degraded rounds = %v, want 1 (completed without region 1)", n)
	}
	if live := srv.LiveLeases(); len(live) != 1 || live[0] != 0 {
		t.Fatalf("live leases = %v, want [0]", live)
	}
}

// A renewal after eviction re-admits the edge: the next barrier waits for
// it again.
func TestLeaseReadmission(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := srv.RenewLease(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.RenewLease(1, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(srv.LiveLeases()) == 1 })

	if err := srv.RenewLease(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	live := srv.LiveLeases()
	sort.Ints(live)
	if len(live) != 2 {
		t.Fatalf("live leases after re-admission = %v, want both", live)
	}

	// With both edges live again the barrier must wait for both.
	c0, c1 := testCounts(0, 7, 10)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := srv.Submit(transport.Census{Edge: 0, Round: 0, Counts: c0}); err != nil {
			t.Errorf("edge 0 submit: %v", err)
		}
	}()
	select {
	case <-done:
		t.Fatal("barrier completed without the re-admitted edge")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := srv.Submit(transport.Census{Edge: 1, Round: 0, Counts: c1}); err != nil {
		t.Fatalf("edge 1 submit: %v", err)
	}
	<-done
}

// Lease renewal over the wire: KindLease frames are acked by the
// connection handler, refusals carry the reason back, and the quorum
// reflects the renewal.
func TestLeaseOverInproc(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewInprocNetwork()
	l, err := net.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	conn, err := net.Dial("cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := session.RenewLease(conn, 1, time.Minute, time.Second); err != nil {
		t.Fatalf("RenewLease over wire: %v", err)
	}
	if live := srv.LiveLeases(); len(live) != 1 || live[0] != 1 {
		t.Fatalf("live leases = %v, want [1]", live)
	}

	err = session.RenewLease(conn, 99, time.Minute, time.Second)
	var rej *session.RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("lease for unknown edge = %v, want *RejectedError", err)
	}
}
