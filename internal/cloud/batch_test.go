package cloud

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/game"
	"repro/internal/transport"
)

// TestSubmitBatchEquivalentToSubmits: one SubmitBatch carrying every
// region's census folds to exactly the state individual Submits produce —
// the bit-identity contract the aggregation tier rests on.
func TestSubmitBatchEquivalentToSubmits(t *testing.T) {
	c0 := make([]int, 8)
	c0[0] = 7
	c0[1] = 3
	c1 := make([]int, 8)
	c1[0] = 2
	c1[7] = 8

	fdsA, _ := testFDS(t)
	srvA, err := NewServer(fdsA, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	var wg sync.WaitGroup
	xs := make([]float64, 2)
	for i, counts := range [][]int{c0, c1} {
		i, counts := i, counts
		wg.Add(1)
		go func() {
			defer wg.Done()
			x, err := srvA.Submit(transport.Census{Edge: i, Round: 0, Counts: counts})
			if err != nil {
				t.Errorf("Submit edge %d: %v", i, err)
			}
			xs[i] = x
		}()
	}
	wg.Wait()

	fdsB, _ := testFDS(t)
	srvB, err := NewServer(fdsB, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	reply, err := srvB.SubmitBatch(transport.CensusBatch{Shard: 0, Round: 0, Censuses: []transport.Census{
		{Edge: 0, Round: 0, Counts: c0},
		{Edge: 1, Round: 0, Counts: c1},
	}})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if reply.Round != 1 {
		t.Errorf("reply round = %d, want 1", reply.Round)
	}
	if len(reply.Edges) != 2 || len(reply.X) != 2 {
		t.Fatalf("reply shape = %d edges, %d ratios, want 2/2", len(reply.Edges), len(reply.X))
	}
	for i := range reply.Edges {
		if reply.X[i] != xs[reply.Edges[i]] {
			t.Errorf("edge %d ratio = %v, want %v from individual submits", reply.Edges[i], reply.X[i], xs[reply.Edges[i]])
		}
	}
	if srvA.StateHash() != srvB.StateHash() {
		t.Errorf("state hash %08x (submits) != %08x (batch)", srvA.StateHash(), srvB.StateHash())
	}
}

// TestSubmitBatchValidation: a malformed batch is rejected whole, before
// any census is folded.
func TestSubmitBatchValidation(t *testing.T) {
	fds, _ := testFDS(t)
	srv, err := NewServer(fds, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	good := transport.Census{Edge: 0, Round: 0, Counts: make([]int, 8)}

	if _, err := srv.SubmitBatch(transport.CensusBatch{Round: 0}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := srv.SubmitBatch(transport.CensusBatch{Round: 0, Censuses: []transport.Census{
		good, {Edge: 1, Round: 2, Counts: make([]int, 8)},
	}}); err == nil {
		t.Error("mixed-round batch accepted")
	}
	if _, err := srv.SubmitBatch(transport.CensusBatch{Round: 0, Censuses: []transport.Census{
		good, {Edge: 5, Round: 0, Counts: make([]int, 8)},
	}}); err == nil {
		t.Error("unknown-edge batch accepted")
	}
	if _, err := srv.SubmitBatch(transport.CensusBatch{Round: 0, Censuses: []transport.Census{
		good, {Edge: 1, Round: 0, Counts: make([]int, 3)},
	}}); !errors.Is(err, ErrBadCensus) {
		t.Errorf("short-counts batch error = %v, want ErrBadCensus", err)
	}
	// Nothing folded: the server is still on round -1.
	if srv.Latest() != -1 {
		t.Errorf("Latest = %d after rejected batches, want -1", srv.Latest())
	}
}

// TestSubmitBatchLateRewind: a batch arriving after its round completed
// degraded is rewound through the lag window, leaving the fold bit-identical
// to a run where it arrived on time.
func TestSubmitBatchLateRewind(t *testing.T) {
	c0 := make([]int, 8)
	c0[0] = 9
	c0[3] = 1
	c1 := make([]int, 8)
	c1[0] = 4
	c1[6] = 6
	r1 := [][]int{make([]int, 8), make([]int, 8)}
	r1[0][0] = 10
	r1[1][0] = 8
	r1[1][1] = 2
	r2 := [][]int{make([]int, 8), make([]int, 8)}
	r2[0][0] = 6
	r2[0][2] = 4
	r2[1][0] = 10
	batch := func(round int, censuses ...transport.Census) transport.CensusBatch {
		return transport.CensusBatch{Round: round, Censuses: censuses}
	}
	full := func(round int, counts [][]int) transport.CensusBatch {
		return batch(round,
			transport.Census{Edge: 0, Round: round, Counts: counts[0]},
			transport.Census{Edge: 1, Round: round, Counts: counts[1]})
	}

	// Lossless baseline: both regions report every round.
	fdsA, _ := testFDS(t)
	srvA, err := NewServer(fdsA, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	for round, counts := range [][][]int{{c0, c1}, r1, r2} {
		if _, err := srvA.SubmitBatch(full(round, counts)); err != nil {
			t.Fatal(err)
		}
	}

	// Lossy run: edge 1's round-1 census arrives after round 1 completed
	// degraded; round 2 then folds on top of the corrected history.
	fdsB, _ := testFDS(t)
	srvB, err := NewServer(fdsB, game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	srvB.SetFixedLag(8)
	srvB.SetRoundDeadline(30 * time.Millisecond)
	if _, err := srvB.SubmitBatch(full(0, [][]int{c0, c1})); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.SubmitBatch(batch(1,
		transport.Census{Edge: 0, Round: 1, Counts: r1[0]})); err != nil {
		t.Fatal(err)
	}
	if srvB.StateHash() == srvA.StateHash() {
		t.Fatal("hashes match before the straggler arrived — test is vacuous")
	}
	reply, err := srvB.SubmitBatch(batch(1,
		transport.Census{Edge: 1, Round: 1, Counts: r1[1]}))
	if err != nil {
		t.Fatalf("late batch: %v", err)
	}
	if reply.Round != 2 {
		t.Errorf("late reply round = %d, want 2", reply.Round)
	}
	if _, err := srvB.SubmitBatch(full(2, r2)); err != nil {
		t.Fatal(err)
	}
	if srvB.StateHash() != srvA.StateHash() {
		t.Errorf("state hash %08x (rewound) != %08x (lossless)", srvB.StateHash(), srvA.StateHash())
	}
	if got := srvCounter(srvB, "consensus_late_censuses_total"); got != 1 {
		t.Errorf("consensus_late_censuses_total = %d, want 1", got)
	}
}
