package cloud

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Engine is the transport-independent round-barrier core shared by the
// aggregation tier (Server) and the shard coordinators (internal/shard): one
// Barrier per pending round, a completion deadline per barrier, and the
// eviction sweep that abandons stale barriers once a newer round completes.
// The engine holds no fold state and does no locking of its own — the owner
// serializes every call under its own mutex — so the same machinery drives
// both the global FDS fold and a shard's forward-and-wait round.
type Engine struct {
	rounds map[int]*Barrier
	latest int // highest completed round (-1 before the first)
}

// Barrier collects one pending round's censuses until its quorum fills or
// its deadline expires. Waiters block on Done; after it closes, Err reports
// abandonment or shutdown (nil means the round completed and the owner's
// post-round state is current). All fields are guarded by the owner's mutex
// except Done, which is safe to receive on anywhere.
type Barrier struct {
	Censuses map[int][]int
	Done     chan struct{}
	Err      error
	Degraded bool
	Opened   time.Time
	Span     *obs.Span
	timer    *time.Timer
}

// Add records one member's census on the barrier, last write wins. It
// reports whether the member had already reported (a re-submitted census
// after a redial, worth a duplicate counter tick).
func (b *Barrier) Add(member int, counts []int) (dup bool) {
	_, dup = b.Censuses[member]
	b.Censuses[member] = counts
	return dup
}

// Size returns how many members have reported.
func (b *Barrier) Size() int { return len(b.Censuses) }

// Abandoned pairs an evicted barrier with the round it was waiting on, so
// the owner can tick its metrics and end its span outside the engine.
type Abandoned struct {
	Round   int
	Barrier *Barrier
}

// NewEngine returns an empty engine with no completed rounds.
func NewEngine() *Engine {
	return &Engine{rounds: make(map[int]*Barrier), latest: -1}
}

// Latest returns the highest completed round (-1 before the first).
func (e *Engine) Latest() int { return e.latest }

// SetLatest fast-forwards the completed-round watermark (recovery replay).
func (e *Engine) SetLatest(round int) { e.latest = round }

// Barrier returns the pending barrier for round, if any.
func (e *Engine) Barrier(round int) (*Barrier, bool) {
	b, ok := e.rounds[round]
	return b, ok
}

// Pending returns the number of rounds currently holding a barrier.
func (e *Engine) Pending() int { return len(e.rounds) }

// Open creates the barrier for round and, with a positive deadline, arms a
// timer that calls expire(round) when it fires. The expire callback runs on
// the timer goroutine: it must take the owner's lock, re-look the barrier up,
// and check Done before acting (the round may have completed in the window).
func (e *Engine) Open(round int, span *obs.Span, deadline time.Duration, expire func(round int)) *Barrier {
	b := &Barrier{
		Censuses: make(map[int][]int),
		Done:     make(chan struct{}),
		Opened:   time.Now(),
		Span:     span,
	}
	e.rounds[round] = b
	if deadline > 0 && expire != nil {
		b.timer = time.AfterFunc(deadline, func() { expire(round) })
	}
	return b
}

// Best returns the most advanced pending round whose barrier satisfies ok
// (nil accepts any), or (-1, nil) when none does.
func (e *Engine) Best(ok func(round int, b *Barrier) bool) (int, *Barrier) {
	best := -1
	for round, b := range e.rounds {
		if round > best && (ok == nil || ok(round, b)) {
			best = round
		}
	}
	if best < 0 {
		return -1, nil
	}
	return best, e.rounds[best]
}

// Complete finishes round: the watermark advances, b's waiters release, and
// every pending barrier the new watermark strands (round <= latest) is
// evicted with ErrRoundAbandoned. The owner must have folded/persisted the
// round's effect before calling — waiters read the post-round state the
// moment Done closes. Evicted barriers are returned for metrics and spans.
func (e *Engine) Complete(round int, b *Barrier, degraded bool) []Abandoned {
	if b.timer != nil {
		b.timer.Stop()
	}
	b.Degraded = degraded
	if round > e.latest {
		e.latest = round
	}
	close(b.Done)
	delete(e.rounds, round)
	var evicted []Abandoned
	for r, old := range e.rounds {
		if r > e.latest {
			continue
		}
		if old.timer != nil {
			old.timer.Stop()
		}
		old.Err = fmt.Errorf("%w: round %d superseded by round %d", ErrRoundAbandoned, r, round)
		close(old.Done)
		delete(e.rounds, r)
		evicted = append(evicted, Abandoned{Round: r, Barrier: old})
	}
	return evicted
}

// Fail fails round's pending barrier with err without advancing the
// watermark (a shard's upstream forward failed; the submitting edges will
// redial and re-open the round). No-op if the round has no barrier.
func (e *Engine) Fail(round int, err error) {
	b, ok := e.rounds[round]
	if !ok {
		return
	}
	if b.timer != nil {
		b.timer.Stop()
	}
	b.Err = err
	close(b.Done)
	delete(e.rounds, round)
}

// FailAll fails every pending barrier with err (shutdown) and returns them
// for the owner to end their spans.
func (e *Engine) FailAll(err error) []Abandoned {
	var failed []Abandoned
	for round, b := range e.rounds {
		if b.timer != nil {
			b.timer.Stop()
		}
		b.Err = err
		close(b.Done)
		delete(e.rounds, round)
		failed = append(failed, Abandoned{Round: round, Barrier: b})
	}
	return failed
}
