package cloud

import (
	"encoding/json"
	"fmt"
	"hash/crc32"

	"repro/internal/edge"
	"repro/internal/game"
	"repro/internal/policy"
)

// Fold is the transport-independent consensus fold core: a game state, the
// FDS controller shaping it, and the CRC-32C witness over the canonical
// state encoding. It is the piece of the coordinator that turns a round's
// census set into the next ratio field — extracted from Server so both
// consensus tiers drive the exact same code: the cloud folds globally, and
// every gossip node (internal/gossip) folds its neighborhood's rounds
// locally. Two folds fed the same census sequence hold bit-identical states,
// which is what makes edge-local rounds reconcilable with the control plane
// after a partition. The fold does no locking; the owner serializes calls.
type Fold struct {
	fds   *policy.FDS
	state *game.State
}

// NewFold validates the initial state and returns a fold over a private
// clone of it.
func NewFold(f *policy.FDS, initial *game.State) (*Fold, error) {
	if f == nil || initial == nil {
		return nil, fmt.Errorf("cloud: controller and state must be non-nil")
	}
	if err := initial.Validate(); err != nil {
		return nil, fmt.Errorf("cloud: initial state: %w", err)
	}
	if len(initial.P) == 0 {
		return nil, fmt.Errorf("cloud: initial state has no regions")
	}
	return &Fold{fds: f, state: initial.Clone()}, nil
}

// Regions returns the number of regions in the folded state.
func (f *Fold) Regions() int { return len(f.state.P) }

// Decisions returns the lattice size K censuses must match.
func (f *Fold) Decisions() int { return len(f.state.P[0]) }

// Apply folds one round's censuses into the state and runs one FDS update.
// Regions missing from a degraded round — and empty censuses from edges
// with no registered vehicles — keep their last-known shares.
func (f *Fold) Apply(censuses map[int][]int) error {
	for i, counts := range censuses {
		total := 0
		for _, c := range counts {
			total += c
		}
		if total == 0 {
			continue
		}
		shares := edge.Shares(counts)
		if i >= 0 && i < len(f.state.P) && len(shares) == len(f.state.P[i]) {
			copy(f.state.P[i], shares)
		}
	}
	if _, err := f.fds.UpdateRatios(f.state); err != nil {
		return fmt.Errorf("cloud: FDS update: %w", err)
	}
	return nil
}

// Hash returns a CRC-32C over the canonical JSON encoding of the state.
// encoding/json round-trips float64 exactly and map-free state marshals
// deterministically, so two folds hold bit-identical ratio fields if and
// only if their hashes match.
func (f *Fold) Hash() uint32 {
	b, err := json.Marshal(f.state)
	if err != nil {
		return 0
	}
	return crc32.Checksum(b, castagnoli)
}

// X returns region edge's current sharing ratio.
func (f *Fold) X(edge int) float64 { return f.state.X[edge] }

// State returns the live state. The caller must hold whatever lock
// serializes the fold and must not mutate it outside Apply/SetState.
func (f *Fold) State() *game.State { return f.state }

// SetState replaces the live state, taking ownership of st (recovery and
// rewind both install snapshots they already own).
func (f *Fold) SetState(st *game.State) { f.state = st }

// Memory snapshots the FDS controller's cross-round memory.
func (f *Fold) Memory() policy.FDSMemory { return f.fds.Memory() }

// SetMemory restores the FDS controller's cross-round memory.
func (f *Fold) SetMemory(mem policy.FDSMemory) error { return f.fds.SetMemory(mem) }

// Converged reports whether the current state satisfies the desired field.
func (f *Fold) Converged() bool {
	ok, _ := f.fds.Field().Converged(f.state.Clone())
	return ok
}
