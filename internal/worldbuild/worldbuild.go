// Package worldbuild constructs the simulation substrate as a staged,
// parallel, cacheable pipeline. World construction is modeled as a DAG of
// named stages
//
//	network ─┬─▶ betweenness ────────────┐ (BC)
//	         └─▶ trace ─▶ match ─▶ density┘ (TD)
//	                        │                │
//	                        │         coefficients ─▶ clustering ─┬─▶ beta ─┐
//	                        │                                     ├─▶ stats │
//	                        └────────────▶ regiongraph ◀──────────┘         │
//	                                            └────────▶ model ◀──────────┘
//	voronoi (independent)
//
// Stages whose dependencies are satisfied run concurrently (betweenness and
// the trace→match chain overlap), the hot inner loops (Brandes accumulation,
// per-vehicle trace generation, per-fix map matching, per-window densities)
// run on worker pools sized by Config.Workers, and every stage output is
// memoized in a content-addressed artifact cache keyed by a hash of exactly
// the configuration subtree the stage consumes. Building the BC and TD
// variants of the same world through one Pipeline therefore computes the
// network, trace, matching, and density artifacts once and shares them.
//
// Determinism is a hard requirement: for a fixed configuration and seed the
// assembled world is bit-identical for every Workers value. Each parallel
// substrate guarantees worker-count invariance on its own (fixed-block merges
// in roadnet, per-vehicle RNG substreams in trace, slot-addressed matching
// and window merges), and the pipeline only composes pure stage functions, so
// scheduling cannot leak into the result.
package worldbuild

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/geo"
	"repro/internal/lattice"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// CoeffSource selects how road-segment utility coefficients are computed
// (Step 1 of the paper's analysis).
type CoeffSource int

// Coefficient sources.
const (
	// CoeffBC uses travel-time betweenness centrality (Eq. 2).
	CoeffBC CoeffSource = iota + 1
	// CoeffTD uses average traffic density (Eq. 3).
	CoeffTD
)

// String implements fmt.Stringer.
func (c CoeffSource) String() string {
	switch c {
	case CoeffBC:
		return "BC"
	case CoeffTD:
		return "TD"
	default:
		return fmt.Sprintf("CoeffSource(%d)", int(c))
	}
}

// Config parameterizes world construction. sim.WorldConfig aliases this type.
type Config struct {
	// Net configures the synthetic road network.
	Net roadnet.GenConfig
	// Trace configures the synthetic vehicle fleet.
	Trace trace.GenConfig
	// Regions is M, the number of Algorithm-1 regions (paper: 20).
	Regions int
	// Source selects BC or TD coefficients.
	Source CoeffSource
	// BetaMean rescales the region coefficients so their mean equals this
	// value; the game's utility coefficient scale. Zero keeps raw values.
	BetaMean float64
	// EdgeServers is the number of evenly deployed edge servers (paper:
	// 100, a 10x10 grid).
	EdgeServers int
	// MatchRadiusMeters bounds map matching (fixes farther than this from
	// any segment stay unmatched).
	MatchRadiusMeters float64
	// GreedyClustering selects the global-greedy Algorithm-1 variant
	// (cluster.ClusterGreedy) instead of the paper's round-robin growth;
	// it yields markedly lower within-region coefficient variance on
	// spatially coherent fields.
	GreedyClustering bool
	// Workers bounds the worker pools of every parallel stage (0 means
	// runtime.NumCPU()). Workers never affects the built world — parallel
	// output is bit-identical to sequential — so it is excluded from every
	// artifact-cache key.
	Workers int
}

// Validate checks the structural configuration fields. Substrate
// configurations (Net, Trace) are validated by their own generators.
func (c Config) Validate() error {
	if c.Regions < 1 {
		return fmt.Errorf("worldbuild: need at least one region, got %d", c.Regions)
	}
	if c.Source != CoeffBC && c.Source != CoeffTD {
		return fmt.Errorf("worldbuild: unknown coefficient source %d", int(c.Source))
	}
	if c.EdgeServers < 1 {
		return fmt.Errorf("worldbuild: need at least one edge server, got %d", c.EdgeServers)
	}
	return nil
}

// traceNorm returns the trace configuration with every output-neutral field
// zeroed, for use in cache keys: two configs that differ only in Workers
// produce the identical trace and must share artifacts.
func (c Config) traceNorm() trace.GenConfig {
	t := c.Trace
	t.Workers = 0
	return t
}

// Result is the assembled simulation substrate. sim.World wraps it.
type Result struct {
	Config     Config
	Net        *roadnet.Network
	Trace      *trace.Set // map-matched
	Weights    []float64  // per-segment utility coefficients (BC or TD)
	Assignment *cluster.Assignment
	Graph      *cluster.RegionGraph
	Beta       []float64 // per-region utility coefficients (scaled)
	Payoffs    *lattice.Payoffs
	Model      *game.Model
	Voronoi    *geo.Voronoi // edge-server cells
	// RegionStats holds the per-region coefficient statistics (Fig. 8(c)).
	RegionStats []cluster.RegionStats
	// AvgWithinStd is the average within-region coefficient standard
	// deviation the paper reports (17.08 for BC, 30.31 for TD).
	AvgWithinStd float64
}

// gridDim factors n into the most-square rows x cols grid with rows*cols >= n.
func gridDim(n int) (rows, cols int) {
	rows = 1
	for rows*rows < n {
		rows++
	}
	cols = (n + rows - 1) / rows
	return rows, cols
}
