package worldbuild

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/geo"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// densityWindow is the TD averaging window (paper: 10-minute windows over
// one day). It is part of the density stage's cache key.
const densityWindow = 10 * time.Minute

// Pipeline executes the staged world build against a shared artifact cache.
// A Pipeline is safe for concurrent Build calls; worlds built through the
// same Pipeline share every artifact whose config subtree matches.
type Pipeline struct {
	cache *Cache
}

// NewPipeline returns a pipeline over the given cache (nil for a fresh one).
func NewPipeline(cache *Cache) *Pipeline {
	if cache == nil {
		cache = NewCache()
	}
	return &Pipeline{cache: cache}
}

// Cache returns the pipeline's artifact cache.
func (p *Pipeline) Cache() *Cache { return p.cache }

// stageDef is one node of the build DAG.
type stageDef struct {
	// deps names the stages whose artifacts run consumes; they are resolved
	// concurrently. May depend on the config (coefficients pulls betweenness
	// for BC but density for TD, so the unused expensive branch never runs).
	deps func(c *Config) []string
	// key hashes exactly the configuration subtree the stage's output
	// depends on. Workers never appears: it cannot change the output.
	key func(c *Config) Key
	// run computes the artifact from the resolved dependency artifacts.
	run func(b *build, dep map[string]interface{}) (interface{}, error)
}

// statsArtifact bundles the clustering statistics stage output.
type statsArtifact struct {
	Stats        []cluster.RegionStats
	AvgWithinStd float64
}

// modelArtifact bundles the game-model stage output.
type modelArtifact struct {
	Payoffs *lattice.Payoffs
	Model   *game.Model
}

// coeffKeyParts returns the config subtree that determines the utility
// coefficients: BC depends only on the network, TD additionally on the trace
// and the matching radius.
func coeffKeyParts(c *Config) []interface{} {
	if c.Source == CoeffBC {
		return []interface{}{c.Net, int(c.Source)}
	}
	return []interface{}{c.Net, c.traceNorm(), c.MatchRadiusMeters, int(c.Source)}
}

// stages is the world-build DAG. Stage names are stable identifiers: they
// appear in cache keys, cache statistics, and DESIGN.md.
var stages = map[string]stageDef{
	"network": {
		deps: func(*Config) []string { return nil },
		key:  func(c *Config) Key { return stageKey("network", c.Net) },
		run: func(b *build, _ map[string]interface{}) (interface{}, error) {
			return roadnet.Generate(b.cfg.Net)
		},
	},
	"betweenness": {
		deps: func(*Config) []string { return []string{"network"} },
		key:  func(c *Config) Key { return stageKey("betweenness", c.Net) },
		run: func(b *build, dep map[string]interface{}) (interface{}, error) {
			net := dep["network"].(*roadnet.Network)
			return net.TravelTimeBetweennessWorkers(b.cfg.Workers), nil
		},
	},
	"trace": {
		deps: func(*Config) []string { return []string{"network"} },
		key:  func(c *Config) Key { return stageKey("trace", c.Net, c.traceNorm()) },
		run: func(b *build, dep map[string]interface{}) (interface{}, error) {
			net := dep["network"].(*roadnet.Network)
			tcfg := b.cfg.Trace
			tcfg.Workers = b.cfg.Workers
			ts, err := trace.Generate(net, tcfg)
			if err != nil {
				return nil, err
			}
			ts.Fixes() // settle sort order before the artifact is shared
			return ts, nil
		},
	},
	"match": {
		deps: func(*Config) []string { return []string{"network", "trace"} },
		key: func(c *Config) Key {
			return stageKey("match", c.Net, c.traceNorm(), c.MatchRadiusMeters)
		},
		run: func(b *build, dep map[string]interface{}) (interface{}, error) {
			net := dep["network"].(*roadnet.Network)
			raw := dep["trace"].(*trace.Set)
			matched, err := trace.MatchToNetworkWorkers(raw, net, b.cfg.Net.Box, b.cfg.MatchRadiusMeters, b.cfg.Workers)
			if err != nil {
				return nil, err
			}
			matched.Fixes() // settle sort order before the artifact is shared
			return matched, nil
		},
	},
	"density": {
		deps: func(*Config) []string { return []string{"network", "match"} },
		key: func(c *Config) Key {
			return stageKey("density", c.Net, c.traceNorm(), c.MatchRadiusMeters, densityWindow.String())
		},
		run: func(b *build, dep map[string]interface{}) (interface{}, error) {
			net := dep["network"].(*roadnet.Network)
			matched := dep["match"].(*trace.Set)
			return trace.AverageDensityWorkers(matched, net.NumSegments(), densityWindow, b.cfg.Workers)
		},
	},
	"coefficients": {
		deps: func(c *Config) []string {
			if c.Source == CoeffBC {
				return []string{"betweenness"}
			}
			return []string{"density"}
		},
		key: func(c *Config) Key { return stageKey("coefficients", coeffKeyParts(c)...) },
		run: func(b *build, dep map[string]interface{}) (interface{}, error) {
			if b.cfg.Source == CoeffBC {
				return dep["betweenness"].([]float64), nil
			}
			return dep["density"].([]float64), nil
		},
	},
	"clustering": {
		deps: func(*Config) []string { return []string{"network", "coefficients"} },
		key: func(c *Config) Key {
			parts := append(coeffKeyParts(c), c.Regions, c.GreedyClustering)
			return stageKey("clustering", parts...)
		},
		run: func(b *build, dep map[string]interface{}) (interface{}, error) {
			net := dep["network"].(*roadnet.Network)
			weights := dep["coefficients"].([]float64)
			clusterFn := cluster.Cluster
			if b.cfg.GreedyClustering {
				clusterFn = cluster.ClusterGreedy
			}
			return clusterFn(net, weights, b.cfg.Regions)
		},
	},
	"regiongraph": {
		deps: func(*Config) []string { return []string{"network", "clustering", "match"} },
		key: func(c *Config) Key {
			return stageKey("regiongraph", c.Net, c.traceNorm(), c.MatchRadiusMeters,
				int(c.Source), c.Regions, c.GreedyClustering)
		},
		run: func(b *build, dep map[string]interface{}) (interface{}, error) {
			net := dep["network"].(*roadnet.Network)
			assignment := dep["clustering"].(*cluster.Assignment)
			matched := dep["match"].(*trace.Set)
			graph, err := cluster.BuildRegionGraphFromTrace(assignment, matched)
			if err != nil {
				// Sparse traces may have no transitions; fall back to road
				// adjacency.
				graph, err = cluster.BuildRegionGraphFromAdjacency(assignment, net)
			}
			return graph, err
		},
	},
	"beta": {
		deps: func(*Config) []string { return []string{"clustering", "coefficients"} },
		key: func(c *Config) Key {
			parts := append(coeffKeyParts(c), c.Regions, c.GreedyClustering, c.BetaMean)
			return stageKey("beta", parts...)
		},
		run: func(b *build, dep map[string]interface{}) (interface{}, error) {
			assignment := dep["clustering"].(*cluster.Assignment)
			weights := dep["coefficients"].([]float64)
			beta, err := cluster.RegionCoefficients(assignment, weights)
			if err != nil {
				return nil, err
			}
			if b.cfg.BetaMean > 0 {
				mean := 0.0
				for _, v := range beta {
					mean += v
				}
				mean /= float64(len(beta))
				if mean > 0 {
					for i := range beta {
						beta[i] = beta[i] / mean * b.cfg.BetaMean
					}
				} else {
					for i := range beta {
						beta[i] = b.cfg.BetaMean
					}
				}
			}
			return beta, nil
		},
	},
	"stats": {
		deps: func(*Config) []string { return []string{"clustering", "coefficients"} },
		key: func(c *Config) Key {
			parts := append(coeffKeyParts(c), c.Regions, c.GreedyClustering)
			return stageKey("stats", parts...)
		},
		run: func(_ *build, dep map[string]interface{}) (interface{}, error) {
			assignment := dep["clustering"].(*cluster.Assignment)
			weights := dep["coefficients"].([]float64)
			stats, avgStd, err := cluster.Stats(assignment, weights)
			if err != nil {
				return nil, err
			}
			return statsArtifact{Stats: stats, AvgWithinStd: avgStd}, nil
		},
	},
	"model": {
		deps: func(*Config) []string { return []string{"regiongraph", "beta"} },
		key: func(c *Config) Key {
			return stageKey("model", c.Net, c.traceNorm(), c.MatchRadiusMeters,
				int(c.Source), c.Regions, c.GreedyClustering, c.BetaMean)
		},
		run: func(_ *build, dep map[string]interface{}) (interface{}, error) {
			graph := dep["regiongraph"].(*cluster.RegionGraph)
			beta := dep["beta"].([]float64)
			payoffs := lattice.PaperPayoffs()
			model, err := game.NewModel(payoffs, graph, beta)
			if err != nil {
				return nil, err
			}
			return modelArtifact{Payoffs: payoffs, Model: model}, nil
		},
	},
	"voronoi": {
		deps: func(*Config) []string { return nil },
		key:  func(c *Config) Key { return stageKey("voronoi", c.Net.Box, c.EdgeServers) },
		run: func(b *build, _ map[string]interface{}) (interface{}, error) {
			sites := b.cfg.Net.Box.GridPoints(gridDim(b.cfg.EdgeServers))
			return geo.NewVoronoi(b.cfg.Net.Box, sites)
		},
	},
}

// build is the per-Build resolution state: one future per stage, so every
// stage is resolved (and its cache counters touched) at most once per build.
type build struct {
	p   *Pipeline
	cfg Config

	mu   sync.Mutex
	futs map[string]*future
}

type future struct {
	done chan struct{}
	val  interface{}
	err  error
}

// start launches the stage's resolution (once) and returns its future.
func (b *build) start(name string) *future {
	b.mu.Lock()
	f := b.futs[name]
	if f == nil {
		f = &future{done: make(chan struct{})}
		b.futs[name] = f
		go b.runStage(name, f)
	}
	b.mu.Unlock()
	return f
}

// get resolves one stage, blocking until its artifact is available.
func (b *build) get(name string) (interface{}, error) {
	f := b.start(name)
	<-f.done
	return f.val, f.err
}

func (b *build) runStage(name string, f *future) {
	defer close(f.done)
	def, ok := stages[name]
	if !ok {
		f.err = fmt.Errorf("worldbuild: unknown stage %q (bug)", name)
		return
	}
	o := b.p.cache.observer()
	span := o.Span("worldbuild_stage", obs.A("stage", name))
	start := time.Now()
	var hit bool
	f.val, f.err, hit = b.p.cache.getOrCompute(name, def.key(&b.cfg), func() (interface{}, error) {
		// Dependencies are only resolved on a cache miss, and concurrently,
		// so independent branches (betweenness vs. trace→match) overlap.
		depNames := def.deps(&b.cfg)
		futs := make([]*future, len(depNames))
		for i, dn := range depNames {
			futs[i] = b.start(dn)
		}
		dep := make(map[string]interface{}, len(depNames))
		for i, dn := range depNames {
			<-futs[i].done
			if futs[i].err != nil {
				return nil, futs[i].err
			}
			dep[dn] = futs[i].val
		}
		out, err := def.run(b, dep)
		if err != nil {
			return nil, fmt.Errorf("worldbuild: stage %s: %w", name, err)
		}
		return out, nil
	})
	o.Histogram("worldbuild_stage_duration_seconds",
		"stage resolve walltime, cache hits included", nil).
		Observe(time.Since(start).Seconds())
	attrs := []obs.Attr{obs.A("cached", hit)}
	if f.err != nil {
		attrs = append(attrs, obs.A("error", f.err.Error()))
	}
	span.End(attrs...)
}

// Build runs the pipeline for one configuration and assembles the substrate.
// Workers defaults to runtime.NumCPU(); the result is bit-identical for
// every worker count.
func (p *Pipeline) Build(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	b := &build{p: p, cfg: cfg, futs: make(map[string]*future)}

	// Demand the three terminal stages concurrently; they pull the rest of
	// the DAG in dependency order.
	for _, terminal := range []string{"model", "stats", "voronoi"} {
		b.start(terminal)
	}

	artifact := make(map[string]interface{})
	for _, name := range []string{"network", "match", "coefficients", "clustering",
		"regiongraph", "beta", "stats", "model", "voronoi"} {
		v, err := b.get(name)
		if err != nil {
			return nil, err
		}
		artifact[name] = v
	}

	ma := artifact["model"].(modelArtifact)
	sa := artifact["stats"].(statsArtifact)
	return &Result{
		Config:       cfg,
		Net:          artifact["network"].(*roadnet.Network),
		Trace:        artifact["match"].(*trace.Set),
		Weights:      artifact["coefficients"].([]float64),
		Assignment:   artifact["clustering"].(*cluster.Assignment),
		Graph:        artifact["regiongraph"].(*cluster.RegionGraph),
		Beta:         artifact["beta"].([]float64),
		Payoffs:      ma.Payoffs,
		Model:        ma.Model,
		Voronoi:      artifact["voronoi"].(*geo.Voronoi),
		RegionStats:  sa.Stats,
		AvgWithinStd: sa.AvgWithinStd,
	}, nil
}
