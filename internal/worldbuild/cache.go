package worldbuild

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"
)

// Key is a content address: the SHA-256 of a stage name plus the
// configuration subtree that stage consumes. Two builds whose subtrees match
// share the stage's artifact regardless of any other configuration field.
type Key [sha256.Size]byte

// stageKey hashes a stage name and its key parts into a content address.
// Parts are JSON-encoded; every configuration type reaching here is plain
// exported data, so encoding cannot fail for well-formed configs.
func stageKey(stage string, parts ...interface{}) Key {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00", stage)
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			panic(fmt.Sprintf("worldbuild: encoding %s key part %T: %v", stage, p, err))
		}
	}
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// StageStats counts cache activity for one stage.
type StageStats struct {
	// Executions is the number of times the stage function actually ran.
	Executions int
	// Hits is the number of lookups served from the cache (including waits
	// on an in-flight computation of the same key).
	Hits int
}

// Cache is a content-addressed artifact store shared by every build that
// goes through one Pipeline. Lookups of an in-flight key wait for the single
// running computation instead of duplicating it, so even concurrent builds
// of the BC and TD worlds generate the road network and trace exactly once.
// Failed computations are not cached. All methods are safe for concurrent
// use.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*cacheEntry
	stats   map[string]*StageStats
}

type cacheEntry struct {
	done chan struct{}
	val  interface{}
	err  error
}

// NewCache returns an empty artifact cache.
func NewCache() *Cache {
	return &Cache{
		entries: make(map[Key]*cacheEntry),
		stats:   make(map[string]*StageStats),
	}
}

// getOrCompute returns the artifact stored under key, computing it with fn
// exactly once per key across all concurrent callers.
func (c *Cache) getOrCompute(stage string, key Key, fn func() (interface{}, error)) (interface{}, error) {
	c.mu.Lock()
	st := c.stats[stage]
	if st == nil {
		st = &StageStats{}
		c.stats[stage] = st
	}
	if e, ok := c.entries[key]; ok {
		st.Hits++
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	st.Executions++
	c.mu.Unlock()

	e.val, e.err = fn()
	if e.err != nil {
		// Failures are not cached: a later build with the same key retries.
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// Stats returns a snapshot of the per-stage execution and hit counters.
func (c *Cache) Stats() map[string]StageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]StageStats, len(c.stats))
	for name, st := range c.stats {
		out[name] = *st
	}
	return out
}

// Len returns the number of cached artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
