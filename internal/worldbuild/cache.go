package worldbuild

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Key is a content address: the SHA-256 of a stage name plus the
// configuration subtree that stage consumes. Two builds whose subtrees match
// share the stage's artifact regardless of any other configuration field.
type Key [sha256.Size]byte

// stageKey hashes a stage name and its key parts into a content address.
// Parts are JSON-encoded; every configuration type reaching here is plain
// exported data, so encoding cannot fail for well-formed configs.
func stageKey(stage string, parts ...interface{}) Key {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00", stage)
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			panic(fmt.Sprintf("worldbuild: encoding %s key part %T: %v", stage, p, err))
		}
	}
	var k Key
	copy(k[:], h.Sum(nil))
	return k
}

// Cache is a content-addressed artifact store shared by every build that
// goes through one Pipeline. Lookups of an in-flight key wait for the single
// running computation instead of duplicating it, so even concurrent builds
// of the BC and TD worlds generate the road network and trace exactly once.
// Failed computations are not cached. All methods are safe for concurrent
// use.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*cacheEntry
	obsv    *obs.Observer
	exec    *obs.CounterVec // worldbuild_stage_executions_total{stage}
	hits    *obs.CounterVec // worldbuild_stage_hits_total{stage}
}

type cacheEntry struct {
	done chan struct{}
	val  interface{}
	err  error
}

// NewCache returns an empty artifact cache reporting through a private
// registry (see Instrument for sharing one).
func NewCache() *Cache {
	c := &Cache{entries: make(map[Key]*cacheEntry)}
	c.bindLocked(obs.New())
	return c
}

// bindLocked points the cache's instruments at o. Called with c.mu held (or
// before the cache is shared).
func (c *Cache) bindLocked(o *obs.Observer) {
	c.obsv = o
	c.exec = o.CounterVec("worldbuild_stage_executions_total", "stage functions actually run (cache misses)", "stage")
	c.hits = o.CounterVec("worldbuild_stage_hits_total", "stage lookups served from the artifact cache", "stage")
}

// Instrument re-points the cache's per-stage counters (and the pipeline
// spans of every Pipeline over this cache) at the given observer. Call
// before building; counts already accumulated are not carried over.
func (c *Cache) Instrument(o *obs.Observer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bindLocked(o)
}

// observer returns the cache's current observer.
func (c *Cache) observer() *obs.Observer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.obsv
}

// getOrCompute returns the artifact stored under key, computing it with fn
// exactly once per key across all concurrent callers. hit reports whether
// the lookup was served from the cache (including waits on an in-flight
// computation of the same key).
func (c *Cache) getOrCompute(stage string, key Key, fn func() (interface{}, error)) (val interface{}, err error, hit bool) {
	c.mu.Lock()
	exec, hits := c.exec, c.hits
	if e, ok := c.entries[key]; ok {
		hits.With(stage).Inc()
		c.mu.Unlock()
		<-e.done
		return e.val, e.err, true
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	exec.With(stage).Inc()
	c.mu.Unlock()

	e.val, e.err = fn()
	if e.err != nil {
		// Failures are not cached: a later build with the same key retries.
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err, false
}

// Len returns the number of cached artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
