package worldbuild

import (
	"testing"
	"time"

	"repro/internal/roadnet"
	"repro/internal/trace"
)

// tinyConfig is a fast laptop-scale configuration for pipeline tests.
func tinyConfig(src CoeffSource) Config {
	net := roadnet.DefaultGenConfig()
	net.Rows, net.Cols = 8, 9
	tr := trace.DefaultGenConfig()
	tr.Taxis, tr.Transit = 20, 10
	tr.Duration = 90 * time.Minute
	tr.Start = tr.Start.Add(6 * time.Hour)
	return Config{
		Net:               net,
		Trace:             tr,
		Regions:           4,
		Source:            src,
		BetaMean:          4.0,
		EdgeServers:       9,
		MatchRadiusMeters: 400,
	}
}

// stageCounter reads one stage-labeled worldbuild_* counter from the cache's
// registry snapshot — the only stats surface; a stage never touched has no
// series and reads 0.
func stageCounter(c *Cache, name, stage string) int {
	for _, p := range c.observer().Registry().Snapshot() {
		if p.Name != name {
			continue
		}
		for _, l := range p.Labels {
			if l.Name == "stage" && l.Value == stage {
				return int(p.Value)
			}
		}
	}
	return 0
}

func stageExecutions(c *Cache, stage string) int {
	return stageCounter(c, "worldbuild_stage_executions_total", stage)
}

func stageHits(c *Cache, stage string) int {
	return stageCounter(c, "worldbuild_stage_hits_total", stage)
}

func totalExecutions(c *Cache) int {
	n := 0
	for _, p := range c.observer().Registry().Snapshot() {
		if p.Name == "worldbuild_stage_executions_total" {
			n += int(p.Value)
		}
	}
	return n
}

func mustBuild(t *testing.T, p *Pipeline, cfg Config) *Result {
	t.Helper()
	res, err := p.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBuildAssemblesCompleteWorld(t *testing.T) {
	res := mustBuild(t, NewPipeline(nil), tinyConfig(CoeffBC))
	if res.Net.NumSegments() == 0 {
		t.Fatal("no segments")
	}
	if len(res.Weights) != res.Net.NumSegments() {
		t.Fatal("weights length mismatch")
	}
	if res.Assignment.M != 4 || res.Model.M() != 4 {
		t.Fatalf("M = %d / %d, want 4", res.Assignment.M, res.Model.M())
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Trace.NumFixes() == 0 {
		t.Fatal("no trace fixes")
	}
	if len(res.RegionStats) != 4 {
		t.Fatalf("region stats = %d entries", len(res.RegionStats))
	}
	if res.Voronoi == nil || res.Payoffs == nil {
		t.Fatal("missing voronoi/payoffs artifacts")
	}
}

// TestPairSharesSubstrate is the headline cache property: building the BC and
// TD variants of the same world through one pipeline must execute the
// network, trace, match, and density stages exactly once.
func TestPairSharesSubstrate(t *testing.T) {
	p := NewPipeline(nil)
	bc := mustBuild(t, p, tinyConfig(CoeffBC))
	td := mustBuild(t, p, tinyConfig(CoeffTD))

	if bc.Net != td.Net {
		t.Error("BC and TD worlds must share the network artifact")
	}
	if bc.Trace != td.Trace {
		t.Error("BC and TD worlds must share the matched-trace artifact")
	}

	for _, stage := range []string{"network", "trace", "match", "density", "betweenness", "voronoi"} {
		if got := stageExecutions(p.Cache(), stage); got != 1 {
			t.Errorf("stage %s executed %d times, want exactly 1", stage, got)
		}
	}
	// Source-dependent stages run once per world.
	for _, stage := range []string{"coefficients", "clustering", "regiongraph", "beta", "stats", "model"} {
		if got := stageExecutions(p.Cache(), stage); got != 2 {
			t.Errorf("stage %s executed %d times, want 2 (one per source)", stage, got)
		}
	}
	if stageHits(p.Cache(), "network") == 0 {
		t.Error("TD build should have hit the cached network")
	}
}

// TestBCWorldSkipsDensity: demand-driven resolution must not run the TD-only
// branch for a BC world, nor the BC-only branch for a TD world.
func TestDemandDrivenBranches(t *testing.T) {
	p := NewPipeline(nil)
	mustBuild(t, p, tinyConfig(CoeffBC))
	if got := stageExecutions(p.Cache(), "density") + stageHits(p.Cache(), "density"); got != 0 {
		t.Errorf("BC build touched the density stage %d times", got)
	}

	p2 := NewPipeline(nil)
	mustBuild(t, p2, tinyConfig(CoeffTD))
	if got := stageExecutions(p2.Cache(), "betweenness") + stageHits(p2.Cache(), "betweenness"); got != 0 {
		t.Errorf("TD build touched the betweenness stage %d times", got)
	}
}

// TestKeySubtreeInvalidation: changing a downstream knob (Regions) must reuse
// every upstream artifact; changing an upstream knob (network seed) must
// rebuild from the network down.
func TestKeySubtreeInvalidation(t *testing.T) {
	p := NewPipeline(nil)
	mustBuild(t, p, tinyConfig(CoeffBC))

	cfg := tinyConfig(CoeffBC)
	cfg.Regions = 5
	mustBuild(t, p, cfg)
	for _, stage := range []string{"network", "trace", "match", "betweenness", "coefficients"} {
		if got := stageExecutions(p.Cache(), stage); got != 1 {
			t.Errorf("after Regions change, stage %s executed %d times, want 1", stage, got)
		}
	}
	if got := stageExecutions(p.Cache(), "clustering"); got != 2 {
		t.Errorf("after Regions change, clustering executed %d times, want 2", got)
	}

	cfg = tinyConfig(CoeffBC)
	cfg.Net.Seed = 99
	mustBuild(t, p, cfg)
	if got := stageExecutions(p.Cache(), "network"); got != 2 {
		t.Errorf("after network seed change, network executed %d times, want 2", got)
	}
}

// TestWorkersExcludedFromKeys: a build that differs only in Workers must be a
// full cache hit — Workers cannot change any artifact.
func TestWorkersExcludedFromKeys(t *testing.T) {
	p := NewPipeline(nil)
	cfg := tinyConfig(CoeffBC)
	cfg.Workers = 1
	mustBuild(t, p, cfg)
	execBefore := totalExecutions(p.Cache())

	cfg.Workers = 4
	mustBuild(t, p, cfg)
	if got := totalExecutions(p.Cache()); got != execBefore {
		t.Errorf("Workers change triggered %d new stage executions", got-execBefore)
	}
}

// TestConcurrentPairBuild: concurrent builds of both sources through one
// pipeline must singleflight the shared artifacts, not duplicate them.
func TestConcurrentPairBuild(t *testing.T) {
	p := NewPipeline(nil)
	type out struct {
		res *Result
		err error
	}
	ch := make(chan out, 2)
	for _, src := range []CoeffSource{CoeffBC, CoeffTD} {
		go func(src CoeffSource) {
			res, err := p.Build(tinyConfig(src))
			ch <- out{res, err}
		}(src)
	}
	var results []*Result
	for i := 0; i < 2; i++ {
		o := <-ch
		if o.err != nil {
			t.Fatal(o.err)
		}
		results = append(results, o.res)
	}
	if results[0].Net != results[1].Net {
		t.Error("concurrent builds must share the network artifact")
	}
	for _, stage := range []string{"network", "trace", "match"} {
		if got := stageExecutions(p.Cache(), stage); got != 1 {
			t.Errorf("stage %s executed %d times under concurrency, want 1", stage, got)
		}
	}
}

func TestValidation(t *testing.T) {
	p := NewPipeline(nil)
	cfg := tinyConfig(CoeffBC)
	cfg.Regions = 0
	if _, err := p.Build(cfg); err == nil {
		t.Error("zero regions must error")
	}
	cfg = tinyConfig(CoeffBC)
	cfg.Source = 0
	if _, err := p.Build(cfg); err == nil {
		t.Error("unknown source must error")
	}
	cfg = tinyConfig(CoeffBC)
	cfg.EdgeServers = 0
	if _, err := p.Build(cfg); err == nil {
		t.Error("zero edge servers must error")
	}
}

// TestFailedStageNotCached: a failing build must not poison the cache; fixing
// the config reruns the failed stage.
func TestFailedStageNotCached(t *testing.T) {
	p := NewPipeline(nil)
	cfg := tinyConfig(CoeffBC)
	cfg.Trace.Duration = 0 // trace stage fails validation
	if _, err := p.Build(cfg); err == nil {
		t.Fatal("invalid trace config must fail the build")
	}
	cfg.Trace.Duration = 90 * time.Minute
	if _, err := p.Build(cfg); err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
}

func TestCoeffSourceString(t *testing.T) {
	if CoeffBC.String() != "BC" || CoeffTD.String() != "TD" {
		t.Error("source strings wrong")
	}
	if CoeffSource(9).String() == "" {
		t.Error("unknown source string empty")
	}
}

func TestStageKeyStability(t *testing.T) {
	cfg := tinyConfig(CoeffBC)
	a := stages["network"].key(&cfg)
	b := stages["network"].key(&cfg)
	if a != b {
		t.Error("same config must hash to the same key")
	}
	cfg.Net.Seed++
	if c := stages["network"].key(&cfg); c == a {
		t.Error("different config must hash to a different key")
	}
}
