// Package gossip implements the edge-local consensus data plane: the edges
// of one neighborhood run the consensus rounds among themselves — exchanging
// census frames peer-to-peer over the session layer and folding a local game
// state through the same cloud.Fold core the global coordinator uses — and
// only escalate a compacted Digest frame to the cloud every K rounds. The
// cloud becomes a slow control plane: it reconciles the digests through its
// fixed-lag rewind window and answers with its current view of the members'
// ratios, which the node records for observability but never adopts into
// policy. The policy ratio an edge serves its vehicles is always the local
// fold's — that makes the census stream independent of cloud connectivity,
// so a run that loses the cloud for part of its life produces a bit-identical
// control-plane state after the backlog drains on heal.
//
// Each node journals every completed local round (and the escalation
// watermark) through internal/durable, so a killed node recovers its fold
// bit-identically and the neighborhood leader re-escalates exactly the
// rounds the cloud has not acknowledged.
//
// With Config.FailoverTTL set, leadership survives the leader too: the
// leader heartbeats the neighborhood every TTL/3, every member mirrors the
// escalation backlog, and a member that hears nothing for a full TTL
// advances the leadership epoch — promoting the rendezvous-ring successor
// (members[epoch mod len(members)]), which drains the dead leader's
// unescalated rounds to the cloud in round order. The cloud's per-
// neighborhood digest watermark adopts re-sent rounds idempotently, so a
// restarted old leader (which rejoins tentatively and is demoted by the
// successor's higher-epoch beat) can never double-fold history.
package gossip

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/session"
)

// ErrClosed is returned by LocalRound after Close.
var ErrClosed = errors.New("gossip: node closed")

// defaultCompactEvery matches the cloud coordinator's journal compaction
// cadence for nodes that are not their neighborhood's leader (the leader
// compacts on acknowledged escalations instead, since its journal doubles
// as the escalation backlog).
const defaultCompactEvery = 32

// Config assembles a Node. Members must include Edge; the member with the
// smallest id is the neighborhood's leader and the only escalator.
type Config struct {
	// Edge is this node's region id.
	Edge int
	// Members are the region ids of every edge in the neighborhood,
	// including Edge.
	Members []int
	// Neighborhood is this neighborhood's index, 0 <= Neighborhood < Of.
	Neighborhood int
	// Of is the total number of neighborhoods reporting to the cloud.
	Of int
	// EscalateEvery is K: the leader escalates a digest after every K-th
	// completed local round (<=1 escalates every round).
	EscalateEvery int
	// Deadline bounds each local round barrier: a round whose member
	// censuses have not all arrived within Deadline of the first completes
	// in degraded mode (0 = wait forever; a dead peer then stalls the
	// neighborhood).
	Deadline time.Duration
	// FailoverTTL enables leader failover: the leader heartbeats the
	// neighborhood every FailoverTTL/3 and a member that hears nothing for
	// a full TTL advances the leadership epoch, promoting the ring
	// successor (members[epoch mod len(members)]). Every member then
	// retains the escalation backlog so a promoted successor can drain the
	// rounds the dead leader never escalated. 0 disables failover: the
	// smallest member id leads forever (the pre-failover behavior).
	FailoverTTL time.Duration
	// MaxBacklog caps the retained escalation backlog: when more than
	// MaxBacklog completed rounds await cloud acknowledgment the oldest
	// are shed (counted by gossip_backlog_dropped_total) and permanently
	// forgone — a bounded-memory trade that breaks control-plane hash
	// equality for the shed rounds. 0 = unbounded.
	MaxBacklog int
	// ReplyTimeout bounds each peer ack and cloud digest reply wait
	// (0 = forever).
	ReplyTimeout time.Duration
	// Fold is the shared consensus fold core (required). The node takes
	// ownership and serializes access.
	Fold *cloud.Fold
	// PeerDial dials the gossip listener of another member (required).
	PeerDial func(member int) (transport.Conn, error)
	// CloudDial dials the cloud control plane for digest escalation
	// (required for the leader; a fresh connection is dialed per
	// escalation so partitions fail fast and heal cleanly).
	CloudDial func() (transport.Conn, error)
	// Logf, when non-nil, logs degraded rounds, escalation failures, and
	// recovery summaries.
	Logf func(format string, args ...interface{})
}

// Node is one edge's gossip consensus participant.
type Node struct {
	cfg      Config
	members  []int // sorted copy
	failover bool  // cfg.FailoverTTL > 0

	mu        sync.Mutex
	leader    bool // this node leads the current epoch
	epoch     int  // leadership epoch; leader = members[epoch mod len(members)]
	tentative bool // recovered self-leader holding off until a quiet TTL passes
	lastBeat  time.Time
	eng       *cloud.Engine
	fold      *cloud.Fold
	k         int                   // decisions per census
	escalated int                   // next round the leader will escalate (rounds below are acked)
	pending   []durable.RoundRecord // unacked rounds, ascending (every member retains them under failover)
	peers     map[int]*peerLink
	store     *durable.Store
	sinceComp int
	cloudX    float64 // latest cloud-published ratio for Edge (observability)
	cloudSeen bool
	obsv      *obs.Observer
	metrics   nodeMetrics

	conns    map[transport.Conn]struct{}
	closed   chan struct{}
	once     sync.Once
	beatOnce sync.Once
	wg       sync.WaitGroup
}

// nodeMetrics are the node's registry-backed instruments. Counters are
// unlabeled — several nodes instrumented into one registry sum naturally —
// while per-node gauges carry an edge label so they do not clobber each
// other.
type nodeMetrics struct {
	localRounds  *obs.Counter // gossip_local_rounds_total
	degraded     *obs.Counter // gossip_degraded_rounds_total
	peerCensuses *obs.Counter // gossip_peer_censuses_total
	late         *obs.Counter // gossip_late_peer_censuses_total
	duplicates   *obs.Counter // gossip_duplicate_censuses_total
	peerSends    *obs.Counter // gossip_peer_sends_total
	sendFailures *obs.Counter // gossip_peer_send_failures_total
	escalations  *obs.Counter // gossip_digest_escalations_total
	escFailures  *obs.Counter // gossip_escalation_failures_total
	cloudUpdates *obs.Counter // gossip_cloud_ratio_updates_total
	journalErrs  *obs.Counter // gossip_journal_errors_total
	recoveries   *obs.Counter // gossip_recoveries_total
	replayed     *obs.Counter // gossip_replay_records_total
	failovers    *obs.Counter // gossip_failovers_total
	beatsSent    *obs.Counter // gossip_hood_beats_sent_total
	beatsRecv    *obs.Counter // gossip_hood_beats_received_total
	beatFailures *obs.Counter // gossip_hood_beat_failures_total
	backlogDrop  *obs.Counter // gossip_backlog_dropped_total
	latestRound  *obs.Gauge   // gossip_round_latest{edge}
	pendingGauge *obs.Gauge   // gossip_pending_rounds{edge}
	backlogGauge *obs.Gauge   // gossip_escalation_backlog{edge}
	stateHash    *obs.Gauge   // gossip_state_hash{edge}
}

func newNodeMetrics(o *obs.Observer, edge int) nodeMetrics {
	e := strconv.Itoa(edge)
	r := o.Registry()
	return nodeMetrics{
		localRounds:  o.Counter("gossip_local_rounds_total", "local consensus rounds folded by gossip nodes (degraded or not)"),
		degraded:     o.Counter("gossip_degraded_rounds_total", "local rounds completed by the deadline with at least one member missing"),
		peerCensuses: o.Counter("gossip_peer_censuses_total", "censuses received from neighborhood peers"),
		late:         o.Counter("gossip_late_peer_censuses_total", "peer censuses for already-completed local rounds, absorbed"),
		duplicates:   o.Counter("gossip_duplicate_censuses_total", "duplicate peer censuses absorbed without changing a round's fold"),
		peerSends:    o.Counter("gossip_peer_sends_total", "censuses broadcast to neighborhood peers (including re-sends)"),
		sendFailures: o.Counter("gossip_peer_send_failures_total", "peer census broadcasts abandoned after redial attempts"),
		escalations:  o.Counter("gossip_digest_escalations_total", "digests the cloud control plane acknowledged"),
		escFailures:  o.Counter("gossip_escalation_failures_total", "digest escalations that failed (cloud unreachable or rejecting)"),
		cloudUpdates: o.Counter("gossip_cloud_ratio_updates_total", "ratio views adopted from cloud digest replies (observability only)"),
		journalErrs:  o.Counter("gossip_journal_errors_total", "gossip journal appends or checkpoints that failed (state kept in memory)"),
		recoveries:   o.Counter("gossip_recoveries_total", "gossip node state recoveries from a state directory"),
		replayed:     o.Counter("gossip_replay_records_total", "journal round records replayed during gossip recovery"),
		failovers:    o.Counter("gossip_failovers_total", "leadership promotions after a leader's heartbeats went quiet for a full TTL"),
		beatsSent:    o.Counter("gossip_hood_beats_sent_total", "leader liveness heartbeats sent to neighborhood peers"),
		beatsRecv:    o.Counter("gossip_hood_beats_received_total", "leader liveness heartbeats received (stale epochs included)"),
		beatFailures: o.Counter("gossip_hood_beat_failures_total", "heartbeat sends abandoned after redial attempts"),
		backlogDrop:  o.Counter("gossip_backlog_dropped_total", "oldest backlog rounds shed by the max-backlog cap (permanently unescalated)"),
		latestRound:  r.GaugeVec("gossip_round_latest", "highest completed local round (-1 before the first)", "edge").With(e),
		pendingGauge: r.GaugeVec("gossip_pending_rounds", "completed local rounds awaiting cloud acknowledgment", "edge").With(e),
		backlogGauge: r.GaugeVec("gossip_escalation_backlog", "completed rounds retained for digest escalation (with failover every member mirrors the leader's backlog)", "edge").With(e),
		stateHash:    r.GaugeVec("gossip_state_hash", "CRC-32C of the node's canonical JSON game state", "edge").With(e),
	}
}

// NewNode validates cfg and returns an idle node. Call Serve with the
// node's gossip listener, then drive rounds with LocalRound.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Fold == nil {
		return nil, fmt.Errorf("gossip: config needs a fold")
	}
	if cfg.PeerDial == nil {
		return nil, fmt.Errorf("gossip: config needs a peer dialer")
	}
	if len(cfg.Members) == 0 {
		return nil, fmt.Errorf("gossip: neighborhood has no members")
	}
	members := append([]int(nil), cfg.Members...)
	sort.Ints(members)
	self := false
	for _, m := range members {
		if m == cfg.Edge {
			self = true
		}
		if m < 0 || m >= cfg.Fold.Regions() {
			return nil, fmt.Errorf("gossip: member %d outside the %d-region state", m, cfg.Fold.Regions())
		}
	}
	if !self {
		return nil, fmt.Errorf("gossip: edge %d is not in its own neighborhood %v", cfg.Edge, members)
	}
	if cfg.EscalateEvery <= 0 {
		cfg.EscalateEvery = 1
	}
	o := obs.New()
	n := &Node{
		cfg:      cfg,
		members:  members,
		failover: cfg.FailoverTTL > 0,
		leader:   members[0] == cfg.Edge,
		eng:      cloud.NewEngine(),
		fold:     cfg.Fold,
		k:        cfg.Fold.Decisions(),
		peers:    make(map[int]*peerLink),
		obsv:     o,
		metrics:  newNodeMetrics(o, cfg.Edge),
		conns:    make(map[transport.Conn]struct{}),
		closed:   make(chan struct{}),
	}
	for _, m := range members {
		if m == cfg.Edge {
			continue
		}
		member := m
		n.peers[m] = &peerLink{
			member: m,
			// A short dial schedule: a dead peer must cost less than the
			// round deadline, not the transport default's two-second cap.
			dialer: &transport.Dialer{
				Dial:        func() (transport.Conn, error) { return cfg.PeerDial(member) },
				MaxAttempts: 4,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
			},
		}
	}
	n.metrics.latestRound.Set(-1)
	n.metrics.stateHash.Set(float64(n.fold.Hash()))
	return n, nil
}

// Instrument re-points the node's metrics at the given observer so several
// nodes (and the cloud) report through one registry. Call before Serve.
func (n *Node) Instrument(o *obs.Observer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.obsv = o
	n.metrics = newNodeMetrics(o, n.cfg.Edge)
	n.metrics.latestRound.Set(float64(n.eng.Latest()))
	n.metrics.pendingGauge.Set(float64(len(n.pending)))
	n.metrics.backlogGauge.Set(float64(len(n.pending)))
	n.metrics.stateHash.Set(float64(n.fold.Hash()))
}

// Leader reports whether this node escalates the neighborhood's digests.
// With failover enabled leadership is epoch-based and can move; a recovered
// self-leader that is still tentatively waiting out its first TTL reports
// false.
func (n *Node) Leader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader && !n.tentative
}

// Epoch returns the node's current leadership epoch (always 0 without
// failover). The epoch's leader is members[epoch mod len(members)].
func (n *Node) Epoch() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// leaderAt returns the member id leading the given epoch.
func (n *Node) leaderAt(epoch int) int {
	return n.members[epoch%len(n.members)]
}

// Latest returns the highest completed local round (-1 before the first).
func (n *Node) Latest() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng.Latest()
}

// StateHash returns the CRC-32C witness over the node's local fold state.
func (n *Node) StateHash() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fold.Hash()
}

// X returns the local fold's current sharing ratio for this node's region —
// the policy the edge serves its vehicles, regardless of cloud connectivity.
func (n *Node) X() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fold.X(n.cfg.Edge)
}

// CloudRatio returns the cloud's last published view of this region's ratio
// and whether any digest reply has been adopted yet. Observability only:
// the local fold's X drives policy.
func (n *Node) CloudRatio() (float64, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cloudX, n.cloudSeen
}

// Pending returns how many completed rounds await cloud acknowledgment.
// Without failover only the leader retains a backlog; with failover every
// member mirrors it so a promoted successor can drain the rounds the dead
// leader never escalated.
func (n *Node) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending)
}

func (n *Node) logf(format string, args ...interface{}) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// Serve accepts peer connections on the node's gossip listener until the
// listener is torn down or the node closes. Run in a goroutine. With
// failover enabled, serving also starts the node's liveness loop: the
// leader heartbeats the neighborhood and followers watch for the beats to
// go quiet.
func (n *Node) Serve(l transport.Listener) {
	if n.failover {
		n.beatOnce.Do(func() {
			n.mu.Lock()
			n.lastBeat = time.Now()
			n.mu.Unlock()
			n.wg.Add(1)
			go n.failoverLoop()
		})
	}
	transport.AcceptLoop(l, n.closed, func(conn transport.Conn) {
		n.mu.Lock()
		select {
		case <-n.closed:
			n.mu.Unlock()
			conn.Close()
			return
		default:
		}
		n.conns[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go func() {
			defer n.wg.Done()
			n.handleConn(conn)
			n.mu.Lock()
			delete(n.conns, conn)
			n.mu.Unlock()
		}()
	})
}

func (n *Node) handleConn(conn transport.Conn) {
	sess := session.Wrap(conn)
	defer sess.Close()
	_ = sess.Serve(map[transport.Kind]session.Handler{
		transport.KindCensus: func(m transport.Message) error {
			var census transport.Census
			if err := transport.Decode(m, transport.KindCensus, &census); err != nil {
				return sess.Ack(err)
			}
			return sess.Ack(n.SubmitPeer(census))
		},
		transport.KindHoodBeat: func(m transport.Message) error {
			var beat transport.HoodBeat
			if err := transport.Decode(m, transport.KindHoodBeat, &beat); err != nil {
				return sess.Ack(err)
			}
			return sess.Ack(n.submitBeat(beat))
		},
	}, func(m transport.Message) error {
		return sess.Ack(fmt.Errorf("gossip: unexpected %s frame on peer link", m.Kind))
	})
}

// submitBeat absorbs one leader heartbeat. Every well-formed beat is acked
// — including stale-epoch ones, so a demoted leader's in-flight beats drain
// cleanly — but only beats at or above the node's epoch move state: a
// higher epoch is adopted (demoting this node if it thought it led) and the
// expiry clock rewinds. The beat's escalation watermark prunes the mirrored
// backlog: rounds the leader's digests already acked need no successor.
func (n *Node) submitBeat(beat transport.HoodBeat) error {
	if beat.Hood != n.cfg.Neighborhood {
		return fmt.Errorf("gossip: beat for neighborhood %d on edge %d of neighborhood %d",
			beat.Hood, n.cfg.Edge, n.cfg.Neighborhood)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.metrics.beatsRecv.Inc()
	if !n.failover || beat.Epoch < n.epoch || beat.Leader == n.cfg.Edge {
		return nil // stale (or echoed) beat: receipt is all the sender needs
	}
	if beat.Leader != n.leaderAt(beat.Epoch) {
		return fmt.Errorf("gossip: beat claims leader %d for epoch %d, ring says %d",
			beat.Leader, beat.Epoch, n.leaderAt(beat.Epoch))
	}
	if beat.Epoch > n.epoch {
		n.epoch = beat.Epoch
		if n.leader {
			n.leader = false
			n.tentative = false
			n.logf("gossip: edge %d: demoted by epoch %d beat from leader %d",
				n.cfg.Edge, beat.Epoch, beat.Leader)
		}
	}
	n.lastBeat = time.Now()
	if beat.Escalated > n.escalated {
		n.escalated = beat.Escalated
		n.prunePendingLocked()
	}
	return nil
}

// prunePendingLocked drops backlog rounds below the escalation watermark
// and refreshes the backlog gauges. Called with n.mu held.
func (n *Node) prunePendingLocked() {
	keep := n.pending[:0]
	for _, rec := range n.pending {
		if rec.Round >= n.escalated {
			keep = append(keep, rec)
		}
	}
	n.pending = keep
	n.metrics.pendingGauge.Set(float64(len(n.pending)))
	n.metrics.backlogGauge.Set(float64(len(n.pending)))
}

// failoverLoop is the node's liveness clock, ticking at a third of the
// failover TTL. A leading node broadcasts a heartbeat each tick; a
// following node that has heard nothing for a full TTL advances the epoch
// and promotes itself when the ring says it is next, draining the mirrored
// backlog to the cloud. A recovered self-leader stays tentative for one
// quiet TTL first, so a successor elected while it was down can demote it
// before it escalates anything.
func (n *Node) failoverLoop() {
	defer n.wg.Done()
	interval := n.cfg.FailoverTTL / 3
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-ticker.C:
			n.tickFailover()
		}
	}
}

func (n *Node) tickFailover() {
	n.mu.Lock()
	if n.leader && !n.tentative {
		beat := transport.HoodBeat{
			Hood:      n.cfg.Neighborhood,
			Epoch:     n.epoch,
			Leader:    n.cfg.Edge,
			Escalated: n.escalated,
			TTLMillis: n.cfg.FailoverTTL.Milliseconds(),
		}
		n.mu.Unlock()
		n.broadcastBeat(beat)
		return
	}
	if time.Since(n.lastBeat) < n.cfg.FailoverTTL {
		n.mu.Unlock()
		return
	}
	if n.tentative {
		// A full TTL passed with no higher-epoch beat: the recovered
		// leadership claim stands. (If a successor promoted concurrently its
		// next beat carries a higher epoch and demotes us; the cloud's digest
		// watermark absorbs anything both of us escalate meanwhile.)
		n.tentative = false
		epoch := n.epoch
		n.mu.Unlock()
		n.logf("gossip: edge %d: confirmed leadership of epoch %d after a quiet TTL", n.cfg.Edge, epoch)
		return
	}
	n.epoch++
	n.lastBeat = time.Now()
	if n.leaderAt(n.epoch) != n.cfg.Edge {
		// Someone else's turn: wait a fresh TTL for the successor's first
		// beat before advancing again (it may also be dead).
		n.leader = false
		n.mu.Unlock()
		return
	}
	n.leader = true
	n.tentative = false
	n.metrics.failovers.Inc()
	backlog := len(n.pending)
	epoch := n.epoch
	n.mu.Unlock()
	n.logf("gossip: edge %d: promoted to leader of epoch %d (%d rounds backlogged)",
		n.cfg.Edge, epoch, backlog)
	if backlog > 0 {
		// Drain the dead leader's unescalated rounds immediately — the
		// takeover half of the failover contract. A partitioned cloud fails
		// the dial fast; the backlog stays for the next K boundary or Flush.
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			select {
			case <-n.closed:
				return
			default:
			}
			_ = n.escalate()
		}()
	}
}

// broadcastBeat sends one heartbeat to every peer, concurrently. Beats are
// best-effort: an unreachable peer just counts a failure and learns the
// epoch from the next beat that lands.
func (n *Node) broadcastBeat(beat transport.HoodBeat) {
	var wg sync.WaitGroup
	for _, pl := range n.peers {
		wg.Add(1)
		go func(pl *peerLink) {
			defer wg.Done()
			n.metrics.beatsSent.Inc()
			if err := pl.sendBeat(beat, n.cfg.ReplyTimeout); err != nil {
				n.metrics.beatFailures.Inc()
			}
		}(pl)
	}
	wg.Wait()
}

// SubmitPeer folds one peer's census into the pending local round. Unlike
// the cloud's Submit it never blocks: the peer only needs receipt, not the
// round's outcome — each member folds the round itself once its own barrier
// fills.
func (n *Node) SubmitPeer(census transport.Census) error {
	if !n.isMember(census.Edge) {
		return fmt.Errorf("gossip: census from edge %d outside neighborhood %v", census.Edge, n.members)
	}
	if len(census.Counts) != n.k {
		return fmt.Errorf("gossip: census from edge %d has %d counts, lattice has %d decisions",
			census.Edge, len(census.Counts), n.k)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.metrics.peerCensuses.Inc()
	if census.Round <= n.eng.Latest() {
		// The local round already completed (degraded, or this is a re-send
		// after a redial). The fold moved on; receipt is all the peer needs.
		n.metrics.late.Inc()
		return nil
	}
	rb, ok := n.eng.Barrier(census.Round)
	if !ok {
		span := n.obsv.Span("gossip_round", obs.A("round", census.Round), obs.A("edge", n.cfg.Edge))
		rb = n.eng.Open(census.Round, span, n.cfg.Deadline, n.expireRound)
	}
	if rb.Add(census.Edge, census.Counts) {
		n.metrics.duplicates.Inc()
	}
	if rb.Size() == len(n.members) {
		n.completeLocalLocked(census.Round, rb, false)
	}
	return nil
}

func (n *Node) isMember(edge int) bool {
	for _, m := range n.members {
		if m == edge {
			return true
		}
	}
	return false
}

// expireRound completes a still-pending local round in degraded mode when
// its deadline fires (a dead or partitioned member).
func (n *Node) expireRound(round int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	rb, ok := n.eng.Barrier(round)
	if !ok {
		return
	}
	select {
	case <-rb.Done:
		return
	default:
	}
	n.completeLocalLocked(round, rb, true)
}

// LocalRound runs this node's part of one local consensus round: it adds its
// own census to the round barrier, broadcasts the census to every peer, and
// blocks until the barrier fills (or its deadline degrades it), returning
// the region's next sharing ratio from the local fold. A census for an
// already-completed round returns the current ratio immediately.
func (n *Node) LocalRound(round int, counts []int) (float64, error) {
	if len(counts) != n.k {
		return 0, fmt.Errorf("gossip: edge %d census has %d counts, lattice has %d decisions",
			n.cfg.Edge, len(counts), n.k)
	}
	n.mu.Lock()
	if round <= n.eng.Latest() {
		// Completed while this node was down or behind; serve the current
		// policy so the caller catches up to Latest()+1.
		x := n.fold.X(n.cfg.Edge)
		n.mu.Unlock()
		return x, nil
	}
	rb, ok := n.eng.Barrier(round)
	if !ok {
		span := n.obsv.Span("gossip_round", obs.A("round", round), obs.A("edge", n.cfg.Edge))
		rb = n.eng.Open(round, span, n.cfg.Deadline, n.expireRound)
	}
	if rb.Add(n.cfg.Edge, counts) {
		n.metrics.duplicates.Inc()
	}
	if rb.Size() == len(n.members) {
		n.completeLocalLocked(round, rb, false)
	}
	n.mu.Unlock()

	// Broadcast outside the lock: peer barriers fill from these sends the
	// way ours fills from theirs. Sends run concurrently per peer; each
	// link serializes its own rounds, so per-peer order is preserved.
	var sendWG sync.WaitGroup
	for _, pl := range n.peers {
		sendWG.Add(1)
		go func(pl *peerLink) {
			defer sendWG.Done()
			n.metrics.peerSends.Inc()
			if err := pl.send(n.cfg.Edge, round, counts, n.cfg.ReplyTimeout); err != nil {
				n.metrics.sendFailures.Inc()
				n.logf("gossip: edge %d: census to peer %d round %d: %v", n.cfg.Edge, pl.member, round, err)
			}
		}(pl)
	}
	sendWG.Wait()

	select {
	case <-rb.Done:
		if rb.Err != nil {
			return 0, rb.Err
		}
	case <-n.closed:
		return 0, ErrClosed
	}

	n.mu.Lock()
	x := n.fold.X(n.cfg.Edge)
	boundary := n.leader && !n.tentative && (round+1)%n.cfg.EscalateEvery == 0 && len(n.pending) > 0
	n.mu.Unlock()
	if boundary {
		n.escalate()
	}
	return x, nil
}

// completeLocalLocked folds the round, journals it, and releases its
// waiters. The journal append fsyncs before Done closes, so a ratio served
// to a vehicle is always recoverable — the same write discipline as the
// cloud coordinator. Called with n.mu held.
func (n *Node) completeLocalLocked(round int, rb *cloud.Barrier, degraded bool) {
	rb.Err = n.fold.Apply(rb.Censuses)
	rec := durable.RoundRecord{Round: round, Degraded: degraded, Censuses: rb.Censuses}
	n.persistRoundLocked(rec)
	if n.leader || n.failover {
		// With failover every member mirrors the backlog: a follower promoted
		// after the leader dies must hold the rounds the leader never
		// escalated. Without failover only the leader keeps it.
		n.pending = append(n.pending, rec)
		if n.cfg.MaxBacklog > 0 && len(n.pending) > n.cfg.MaxBacklog {
			shed := len(n.pending) - n.cfg.MaxBacklog
			n.pending = append(n.pending[:0], n.pending[shed:]...)
			// The shed rounds are permanently forgone; moving the watermark
			// past them keeps recovery and beat pruning consistent with that.
			n.escalated = n.pending[0].Round
			n.metrics.backlogDrop.Add(int64(shed))
			n.logf("gossip: edge %d: backlog cap %d shed %d oldest rounds (next escalation starts at %d)",
				n.cfg.Edge, n.cfg.MaxBacklog, shed, n.escalated)
		}
	} else {
		n.escalated = round + 1
	}
	if round > n.eng.Latest() {
		n.eng.SetLatest(round)
	}
	abandoned := n.eng.Complete(round, rb, degraded)
	n.metrics.localRounds.Inc()
	n.metrics.latestRound.Set(float64(n.eng.Latest()))
	n.metrics.pendingGauge.Set(float64(len(n.pending)))
	n.metrics.backlogGauge.Set(float64(len(n.pending)))
	n.metrics.stateHash.Set(float64(n.fold.Hash()))
	if degraded {
		n.metrics.degraded.Inc()
		n.logf("gossip: edge %d: round %d completed degraded with %d/%d members",
			n.cfg.Edge, round, rb.Size(), len(n.members))
	}
	rb.Span.End(obs.A("degraded", degraded), obs.A("members", rb.Size()), obs.A("of", len(n.members)))
	for _, a := range abandoned {
		a.Barrier.Span.End(obs.A("abandoned", true), obs.A("superseded_by", round))
	}
}

// Flush escalates every pending round immediately, regardless of the K
// boundary — the graceful shutdown path, so the control plane holds the
// complete history before the node exits. No-op on nodes not currently
// leading and when nothing is pending.
func (n *Node) Flush() error {
	n.mu.Lock()
	todo := len(n.pending) > 0
	lead := n.leader && !n.tentative
	n.mu.Unlock()
	if !lead || !todo {
		return nil
	}
	return n.escalate()
}

// escalate sends one Digest carrying every pending round to the cloud and,
// on acknowledgment, advances the escalation watermark and compacts the
// journal. A fresh connection is dialed per escalation: a partitioned cloud
// fails the dial fast, the backlog is kept, and the next K boundary (or
// Flush) retries. Runs on the caller's goroutine, never under n.mu.
func (n *Node) escalate() error {
	if n.cfg.CloudDial == nil {
		return fmt.Errorf("gossip: edge %d: no cloud dialer", n.cfg.Edge)
	}
	n.mu.Lock()
	if len(n.pending) == 0 || !n.leader || n.tentative {
		// A demotion can land between the boundary check and here; the new
		// leader owns the backlog now.
		n.mu.Unlock()
		return nil
	}
	d := transport.Digest{
		Neighborhood: n.cfg.Neighborhood,
		Of:           n.cfg.Of,
		Members:      append([]int(nil), n.members...),
		Rounds:       make([]transport.DigestRound, 0, len(n.pending)),
	}
	for _, rec := range n.pending {
		dr := transport.DigestRound{Round: rec.Round, Degraded: rec.Degraded}
		for _, m := range n.members {
			if counts, ok := rec.Censuses[m]; ok {
				dr.Censuses = append(dr.Censuses, transport.Census{Edge: m, Round: rec.Round, Counts: counts})
			}
		}
		d.Rounds = append(d.Rounds, dr)
	}
	last := d.Rounds[len(d.Rounds)-1].Round
	n.mu.Unlock()

	conn, err := n.cfg.CloudDial()
	if err != nil {
		n.metrics.escFailures.Inc()
		n.logf("gossip: edge %d: dialing cloud for digest through round %d: %v", n.cfg.Edge, last, err)
		return err
	}
	reply, err := session.EscalateDigest(conn, d, n.cfg.ReplyTimeout)
	conn.Close()
	if err != nil {
		n.metrics.escFailures.Inc()
		n.logf("gossip: edge %d: escalating digest through round %d: %v", n.cfg.Edge, last, err)
		return err
	}

	n.mu.Lock()
	for i, e := range reply.Edges {
		if e == n.cfg.Edge && i < len(reply.X) {
			n.cloudX = reply.X[i]
			n.cloudSeen = true
			n.metrics.cloudUpdates.Inc()
		}
	}
	// Drop exactly the rounds this digest carried; rounds completed while
	// the escalation was in flight stay pending for the next boundary. The
	// watermark only ever advances: a slow ack racing a larger concurrent
	// escalation must not rewind it.
	keep := n.pending[:0]
	for _, rec := range n.pending {
		if rec.Round > last {
			keep = append(keep, rec)
		}
	}
	n.pending = keep
	if last+1 > n.escalated {
		n.escalated = last + 1
	}
	n.metrics.escalations.Inc()
	n.metrics.pendingGauge.Set(float64(len(n.pending)))
	n.metrics.backlogGauge.Set(float64(len(n.pending)))
	if n.store != nil {
		if err := n.checkpointLocked(); err != nil {
			n.metrics.journalErrs.Inc()
			n.logf("gossip: edge %d: compacting after escalation through round %d: %v", n.cfg.Edge, last, err)
		}
	}
	n.mu.Unlock()
	return nil
}

// Close shuts the node down: pending barriers fail, peer links and inbound
// connections close. It does not Flush; callers wanting the backlog on the
// cloud call Flush first.
func (n *Node) Close() {
	n.once.Do(func() {
		close(n.closed)
		n.mu.Lock()
		for _, a := range n.eng.FailAll(ErrClosed) {
			a.Barrier.Span.End(obs.A("closed", true))
		}
		for conn := range n.conns {
			conn.Close()
		}
		n.conns = make(map[transport.Conn]struct{})
		for _, pl := range n.peers {
			pl.close()
		}
		if n.store != nil {
			_ = n.store.Close()
			n.store = nil
		}
		n.mu.Unlock()
	})
	n.wg.Wait()
}

// peerLink maintains one lazily-dialed connection to a neighborhood peer,
// re-dialing and re-sending across connection failures (the CloudLink
// discipline, without the ratio reply).
type peerLink struct {
	member int
	dialer *transport.Dialer

	mu   sync.Mutex
	conn transport.Conn
}

func (p *peerLink) send(edge, round int, counts []int, timeout time.Duration) error {
	return p.exchange(func(conn transport.Conn) error {
		return session.GossipCensus(conn, edge, round, counts, timeout)
	})
}

func (p *peerLink) sendBeat(beat transport.HoodBeat, timeout time.Duration) error {
	return p.exchange(func(conn transport.Conn) error {
		return session.SendHoodBeat(conn, beat, timeout)
	})
}

// exchange runs one acked frame exchange over the link, re-dialing and
// re-sending across connection failures.
func (p *peerLink) exchange(fn func(transport.Conn) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if p.conn == nil {
			conn, err := p.dialer.DialRetry()
			if err != nil {
				return err // the dialer already retried with backoff
			}
			p.conn = conn
		}
		err := fn(p.conn)
		if err == nil {
			return nil
		}
		p.conn.Close()
		p.conn = nil
		if !transport.IsConnError(err) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("gossip: exchange with peer %d failed after 3 attempts: %w", p.member, lastErr)
}

func (p *peerLink) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}
