package gossip

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/policy"
	"repro/internal/transport"
)

// meshGraph is an m-region test graph with uniform coupling.
type meshGraph struct{ m int }

func (g meshGraph) M() int { return g.m }
func (g meshGraph) Gamma(i, j int) float64 {
	if i == j {
		return 0.8
	}
	return 0.2 / float64(g.m-1)
}
func (g meshGraph) Neighbors(i int) []int {
	var ns []int
	for j := 0; j < g.m; j++ {
		if j != i {
			ns = append(ns, j)
		}
	}
	return ns
}

// testFold builds one independent fold over an m-region uniform state —
// every node (and the cloud's server fixture) gets its own so the test
// mirrors the real deployment, where bit-identity must emerge from the
// census stream alone.
func testFold(t *testing.T, m int) *cloud.Fold {
	t.Helper()
	model, err := game.NewModel(lattice.PaperPayoffs(), meshGraph{m: m}, uniformN(m, 3))
	if err != nil {
		t.Fatal(err)
	}
	target := make([]float64, 8)
	target[0] = 0.7
	field, err := policy.NewUniformField(m, target, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for k := 1; k < 8; k++ {
			field.P[i][k].Lo, field.P[i][k].Hi = 0, 1
		}
	}
	fds, err := policy.NewFDS(model, field, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	fold, err := cloud.NewFold(fds, game.NewUniformState(m, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	return fold
}

func uniformN(m int, v float64) []float64 {
	ns := make([]float64, m)
	for i := range ns {
		ns[i] = v
	}
	return ns
}

func testCloud(t *testing.T, m int) *cloud.Server {
	t.Helper()
	model, err := game.NewModel(lattice.PaperPayoffs(), meshGraph{m: m}, uniformN(m, 3))
	if err != nil {
		t.Fatal(err)
	}
	target := make([]float64, 8)
	target[0] = 0.7
	field, err := policy.NewUniformField(m, target, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for k := 1; k < 8; k++ {
			field.P[i][k].Lo, field.P[i][k].Hi = 0, 1
		}
	}
	fds, err := policy.NewFDS(model, field, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := cloud.NewServer(fds, game.NewUniformState(m, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// counts returns a deterministic census for (edge, round).
func counts(edge, round int) []int {
	c := make([]int, 8)
	for k := range c {
		c[k] = 1 + (edge+round+k)%5
	}
	return c
}

// hood spins up one neighborhood of gossip nodes over an in-process network
// with a live cloud, returning the nodes and a teardown func. cloudGate,
// when non-nil, is consulted per cloud dial (false = partitioned).
func hood(t *testing.T, m, escalateEvery int, cloudGate *atomic.Bool) ([]*Node, *cloud.Server, func()) {
	t.Helper()
	return hoodCfg(t, m, escalateEvery, cloudGate, nil)
}

// hoodCfg is hood with a config hook applied to every node before NewNode.
func hoodCfg(t *testing.T, m, escalateEvery int, cloudGate *atomic.Bool, mutate func(*Config)) ([]*Node, *cloud.Server, func()) {
	t.Helper()
	netw := transport.NewInprocNetwork()
	srv := testCloud(t, m)
	cl, err := netw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(cl)

	members := make([]int, m)
	for i := range members {
		members[i] = i
	}
	nodes := make([]*Node, m)
	var listeners []transport.Listener
	for i := 0; i < m; i++ {
		l, err := netw.Listen(fmt.Sprintf("gossip-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, l)
		cfg := Config{
			Edge:          i,
			Members:       members,
			Neighborhood:  0,
			Of:            1,
			EscalateEvery: escalateEvery,
			Deadline:      2 * time.Second,
			ReplyTimeout:  5 * time.Second,
			Fold:          testFold(t, m),
			PeerDial: func(member int) (transport.Conn, error) {
				return netw.Dial(fmt.Sprintf("gossip-%d", member))
			},
			CloudDial: func() (transport.Conn, error) {
				if cloudGate != nil && !cloudGate.Load() {
					return nil, fmt.Errorf("cloud partitioned away")
				}
				return netw.Dial("cloud")
			},
		}
		if mutate != nil {
			mutate(&cfg)
		}
		node, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		go node.Serve(l)
	}
	return nodes, srv, func() {
		for _, n := range nodes {
			n.Close()
		}
		for _, l := range listeners {
			l.Close()
		}
		srv.Close()
		cl.Close()
	}
}

// driveRound runs one lockstep round across all live nodes.
func driveRound(t *testing.T, nodes []*Node, round int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(nodes))
	for i, n := range nodes {
		if n == nil {
			continue
		}
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			_, errs[i] = n.LocalRound(round, counts(i, round))
		}(i, n)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("round %d edge %d: %v", round, i, err)
		}
	}
}

func TestNeighborhoodsCoverAllRegions(t *testing.T) {
	for _, tc := range []struct{ m, n int }{{1, 1}, {4, 2}, {9, 3}, {5, 8}} {
		hoods, err := Neighborhoods(tc.m, tc.n)
		if err != nil {
			t.Fatalf("Neighborhoods(%d,%d): %v", tc.m, tc.n, err)
		}
		seen := make(map[int]bool)
		for h, members := range hoods {
			if len(members) == 0 {
				t.Errorf("Neighborhoods(%d,%d): hood %d empty", tc.m, tc.n, h)
			}
			for _, r := range members {
				if seen[r] {
					t.Errorf("Neighborhoods(%d,%d): region %d assigned twice", tc.m, tc.n, r)
				}
				seen[r] = true
			}
		}
		if len(seen) != tc.m {
			t.Errorf("Neighborhoods(%d,%d): covered %d regions, want %d", tc.m, tc.n, len(seen), tc.m)
		}
		again, err := Neighborhoods(tc.m, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		for h := range hoods {
			if fmt.Sprint(hoods[h]) != fmt.Sprint(again[h]) {
				t.Errorf("Neighborhoods(%d,%d) not deterministic", tc.m, tc.n)
			}
		}
	}
}

// TestLocalRoundsConvergeAndEscalate is the happy path: every node folds the
// same rounds to bit-identical states, and the leader's digests drive the
// cloud to the same state.
func TestLocalRoundsConvergeAndEscalate(t *testing.T) {
	nodes, srv, teardown := hood(t, 3, 2, nil)
	defer teardown()

	const rounds = 6
	for r := 0; r < rounds; r++ {
		driveRound(t, nodes, r)
	}
	for i, n := range nodes {
		if got := n.Latest(); got != rounds-1 {
			t.Errorf("edge %d latest = %d, want %d", i, got, rounds-1)
		}
		if n.StateHash() != nodes[0].StateHash() {
			t.Errorf("edge %d state hash %08x != edge 0 %08x", i, n.StateHash(), nodes[0].StateHash())
		}
	}
	if err := nodes[0].Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := srv.Latest(); got != rounds-1 {
		t.Errorf("cloud latest = %d, want %d", got, rounds-1)
	}
	if srv.StateHash() != nodes[0].StateHash() {
		t.Errorf("cloud state hash %08x != local %08x", srv.StateHash(), nodes[0].StateHash())
	}
	if x, ok := nodes[0].CloudRatio(); !ok || x <= 0 {
		t.Errorf("leader adopted no cloud ratio view (x=%v ok=%v)", x, ok)
	}
	if nodes[1].Leader() || !nodes[0].Leader() {
		t.Error("leader must be the smallest member id")
	}
}

// TestPartitionHealBitIdentical proves the determinism claim at package
// level: a run whose cloud is unreachable for the middle half of its rounds
// reconciles, on heal, to the exact control-plane hash of an always-
// connected run.
func TestPartitionHealBitIdentical(t *testing.T) {
	run := func(partition bool) (uint32, uint32) {
		var gate atomic.Bool
		gate.Store(true)
		nodes, srv, teardown := hood(t, 3, 2, &gate)
		defer teardown()
		const rounds = 8
		for r := 0; r < rounds; r++ {
			if partition {
				gate.Store(!(r >= 2 && r < 6))
			}
			driveRound(t, nodes, r)
		}
		gate.Store(true)
		if err := nodes[0].Flush(); err != nil {
			t.Fatalf("final flush: %v", err)
		}
		return srv.StateHash(), nodes[0].StateHash()
	}
	cloudA, localA := run(false)
	cloudB, localB := run(true)
	if cloudA != cloudB {
		t.Errorf("partitioned cloud hash %08x != connected %08x", cloudB, cloudA)
	}
	if localA != localB {
		t.Errorf("partitioned local hash %08x != connected %08x", localB, localA)
	}
	if cloudA != localA {
		t.Errorf("cloud hash %08x != local hash %08x", cloudA, localA)
	}
}

// TestPartitionKeepsLocalRoundsRunning checks the edge-autonomy claim: with
// the cloud gone, local rounds (and their policy output) keep advancing,
// and escalation failures are what accumulate instead.
func TestPartitionKeepsLocalRoundsRunning(t *testing.T) {
	var gate atomic.Bool // starts false: cloud partitioned from round 0
	nodes, srv, teardown := hood(t, 2, 1, &gate)
	defer teardown()
	for r := 0; r < 4; r++ {
		driveRound(t, nodes, r)
	}
	if got := nodes[0].Latest(); got != 3 {
		t.Errorf("local rounds stalled at %d during partition, want 3", got)
	}
	if got := srv.Latest(); got != -1 {
		t.Errorf("cloud advanced to %d during partition, want -1", got)
	}
	if nodes[0].Pending() != 4 {
		t.Errorf("leader pending = %d, want 4", nodes[0].Pending())
	}
	gate.Store(true)
	if err := nodes[0].Flush(); err != nil {
		t.Fatalf("Flush after heal: %v", err)
	}
	if got := srv.Latest(); got != 3 {
		t.Errorf("cloud latest after heal = %d, want 3", got)
	}
	if nodes[0].Pending() != 0 {
		t.Errorf("leader pending after heal = %d, want 0", nodes[0].Pending())
	}
}

// TestDegradedLocalRounds checks that a dead member degrades rounds via the
// deadline instead of stalling the neighborhood.
func TestDegradedLocalRounds(t *testing.T) {
	netw := transport.NewInprocNetwork()
	members := []int{0, 1, 2}
	var nodes []*Node
	// Member 2 never comes up: no listener, no rounds.
	for i := 0; i < 2; i++ {
		l, err := netw.Listen(fmt.Sprintf("gossip-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		node, err := NewNode(Config{
			Edge: i, Members: members, Neighborhood: 0, Of: 1,
			EscalateEvery: 100, // never escalate in this test
			Deadline:      400 * time.Millisecond,
			ReplyTimeout:  time.Second,
			Fold:          testFold(t, 3),
			PeerDial: func(member int) (transport.Conn, error) {
				return netw.Dial(fmt.Sprintf("gossip-%d", member))
			},
			CloudDial: func() (transport.Conn, error) { return nil, fmt.Errorf("no cloud") },
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		nodes = append(nodes, node)
		go node.Serve(l)
	}
	driveRound(t, nodes, 0)
	driveRound(t, nodes, 1)
	if nodes[0].StateHash() != nodes[1].StateHash() {
		t.Errorf("degraded folds diverged: %08x vs %08x", nodes[0].StateHash(), nodes[1].StateHash())
	}
	if got := nodes[0].Latest(); got != 1 {
		t.Errorf("latest = %d, want 1", got)
	}
}

// TestRecoveryRebuildsFoldAndBacklog kills the leader after some rounds and
// reopens its journal: the fold hash must match a survivor bit-for-bit and
// the unacked backlog must re-escalate on Flush.
func TestRecoveryRebuildsFoldAndBacklog(t *testing.T) {
	var gate atomic.Bool // cloud partitioned: backlog accumulates
	netw := transport.NewInprocNetwork()
	srv := testCloud(t, 2)
	defer srv.Close()
	cl, err := netw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	go srv.Serve(cl)

	members := []int{0, 1}
	dirs := []string{t.TempDir(), t.TempDir()}
	mk := func(i int) (*Node, transport.Listener) {
		l, err := netw.Listen(fmt.Sprintf("gossip-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(Config{
			Edge: i, Members: members, Neighborhood: 0, Of: 1,
			EscalateEvery: 3,
			Deadline:      2 * time.Second,
			ReplyTimeout:  2 * time.Second,
			Fold:          testFold(t, 2),
			PeerDial: func(member int) (transport.Conn, error) {
				return netw.Dial(fmt.Sprintf("gossip-%d", member))
			},
			CloudDial: func() (transport.Conn, error) {
				if !gate.Load() {
					return nil, fmt.Errorf("cloud partitioned away")
				}
				return netw.Dial("cloud")
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Open(dirs[i]); err != nil {
			t.Fatal(err)
		}
		go node.Serve(l)
		return node, l
	}
	n0, l0 := mk(0)
	n1, l1 := mk(1)
	defer n1.Close()
	defer l1.Close()
	for r := 0; r < 5; r++ {
		driveRound(t, []*Node{n0, n1}, r)
	}
	wantHash := n1.StateHash()
	if n0.Pending() != 5 {
		t.Fatalf("leader pending = %d, want 5", n0.Pending())
	}

	// Kill -9: Close without Flush, reopen from the journal.
	n0.Close()
	l0.Close()
	n0, l0 = mk(0)
	defer n0.Close()
	defer l0.Close()
	if got := n0.StateHash(); got != wantHash {
		t.Fatalf("recovered hash %08x != survivor %08x", got, wantHash)
	}
	if got := n0.Latest(); got != 4 {
		t.Fatalf("recovered latest = %d, want 4", got)
	}
	if got := n0.Pending(); got != 5 {
		t.Fatalf("recovered pending = %d, want 5", got)
	}
	gate.Store(true)
	if err := n0.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := srv.Latest(); got != 4 {
		t.Errorf("cloud latest = %d, want 4", got)
	}
	if srv.StateHash() != wantHash {
		t.Errorf("cloud hash %08x != local %08x", srv.StateHash(), wantHash)
	}
}

// waitFor polls cond until it holds or the timeout fails the test.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFailoverPromotesSuccessor checks the liveness half of failover: when
// the leader dies silently, the ring successor promotes itself within the
// TTL, the epoch propagates, and the survivors keep folding identically.
func TestFailoverPromotesSuccessor(t *testing.T) {
	var gate atomic.Bool // cloud partitioned throughout
	nodes, _, teardown := hoodCfg(t, 3, 100, &gate, func(c *Config) {
		c.FailoverTTL = 100 * time.Millisecond
		c.Deadline = 500 * time.Millisecond
	})
	defer teardown()
	driveRound(t, nodes, 0)
	driveRound(t, nodes, 1)
	if !nodes[0].Leader() || nodes[1].Leader() {
		t.Fatal("epoch 0 leadership should sit on the smallest member")
	}
	if nodes[1].Pending() != 2 || nodes[2].Pending() != 2 {
		t.Errorf("followers must mirror the backlog under failover: pending = %d,%d, want 2,2",
			nodes[1].Pending(), nodes[2].Pending())
	}

	nodes[0].Close() // kill -9: no Flush, beats just stop
	waitFor(t, 5*time.Second, "successor promotion", func() bool { return nodes[1].Leader() })
	if got := nodes[1].Epoch(); got != 1 {
		t.Errorf("successor epoch = %d, want 1", got)
	}
	if got := nodes[1].metrics.failovers.Value(); got != 1 {
		t.Errorf("gossip_failovers_total = %d, want 1", got)
	}
	waitFor(t, 5*time.Second, "epoch propagation to the third member", func() bool {
		return nodes[2].Epoch() == 1 && !nodes[2].Leader()
	})

	// Rounds keep completing (degraded by the dead member's deadline) and
	// the survivors' folds stay bit-identical.
	driveRound(t, []*Node{nil, nodes[1], nodes[2]}, 2)
	if nodes[1].StateHash() != nodes[2].StateHash() {
		t.Errorf("survivor folds diverged: %08x vs %08x", nodes[1].StateHash(), nodes[2].StateHash())
	}
	if nodes[1].Latest() != 2 {
		t.Errorf("rounds stalled after failover: latest = %d, want 2", nodes[1].Latest())
	}
}

// TestBacklogCapShedsOldest checks the bounded-backlog satellite: with the
// cloud partitioned, a capped leader sheds its oldest unacked rounds
// (counting them) and later escalates only what it kept — the cloud still
// folds the surviving tail.
func TestBacklogCapShedsOldest(t *testing.T) {
	var gate atomic.Bool // cloud partitioned: the backlog grows
	nodes, srv, teardown := hoodCfg(t, 2, 100, &gate, func(c *Config) {
		c.MaxBacklog = 3
	})
	defer teardown()
	for r := 0; r < 6; r++ {
		driveRound(t, nodes, r)
	}
	if got := nodes[0].Pending(); got != 3 {
		t.Errorf("leader pending = %d, want capped at 3", got)
	}
	if got := nodes[0].metrics.backlogDrop.Value(); got != 3 {
		t.Errorf("gossip_backlog_dropped_total = %d, want 3", got)
	}
	if got := nodes[1].Pending(); got != 0 {
		t.Errorf("non-failover follower pending = %d, want 0", got)
	}
	gate.Store(true)
	if err := nodes[0].Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := srv.Latest(); got != 5 {
		t.Errorf("cloud latest = %d, want 5 (shed rounds are forgone, the kept tail still folds)", got)
	}
}

// TestGossipLeaderFailoverGolden is the acceptance bar for leader failover:
// a run whose leader is kill -9'd mid-partition — successor takeover,
// journal-backed backlog handoff, and the old leader restarting from its
// journal as a demoted follower — must produce cloud and local state hashes
// bit-identical to an always-healthy lossless run.
func TestGossipLeaderFailoverGolden(t *testing.T) {
	const (
		m      = 3
		rounds = 8
		ttl    = 150 * time.Millisecond
	)
	run := func(kill bool) (uint32, uint32) {
		var gate atomic.Bool
		gate.Store(true)
		netw := transport.NewInprocNetwork()
		srv := testCloud(t, m)
		defer srv.Close()
		cl, err := netw.Listen("cloud")
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		go srv.Serve(cl)

		members := []int{0, 1, 2}
		dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
		nodes := make([]*Node, m)
		listeners := make([]transport.Listener, m)
		mk := func(i int) {
			l, err := netw.Listen(fmt.Sprintf("gossip-%d", i))
			if err != nil {
				t.Fatal(err)
			}
			node, err := NewNode(Config{
				Edge: i, Members: members, Neighborhood: 0, Of: 1,
				EscalateEvery: 2,
				Deadline:      2 * time.Second,
				ReplyTimeout:  2 * time.Second,
				FailoverTTL:   ttl,
				Fold:          testFold(t, m),
				PeerDial: func(member int) (transport.Conn, error) {
					return netw.Dial(fmt.Sprintf("gossip-%d", member))
				},
				CloudDial: func() (transport.Conn, error) {
					if !gate.Load() {
						return nil, fmt.Errorf("cloud partitioned away")
					}
					return netw.Dial("cloud")
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := node.Open(dirs[i]); err != nil {
				t.Fatal(err)
			}
			go node.Serve(l)
			nodes[i], listeners[i] = node, l
		}
		for i := 0; i < m; i++ {
			mk(i)
		}
		defer func() {
			for _, n := range nodes {
				n.Close()
			}
			for _, l := range listeners {
				l.Close()
			}
		}()

		// Rounds 0-1 connected (the boundary escalation acks them), rounds
		// 2-5 partitioned from the cloud, rounds 6-7 healed.
		for r := 0; r < 4; r++ {
			gate.Store(r < 2)
			driveRound(t, nodes, r)
		}
		if kill {
			// kill -9 the leader mid-partition: no Flush, its journal is all
			// that survives. The successor must promote and inherit the
			// backlog its own journal-backed history mirrors.
			nodes[0].Close()
			listeners[0].Close()
			waitFor(t, 10*time.Second, "successor promotion", func() bool { return nodes[1].Leader() })
			// Restart the killed leader from its journal: it recovers its
			// fold, rejoins tentatively, and the successor's higher-epoch
			// beat demotes it to follower before it escalates anything.
			mk(0)
			waitFor(t, 10*time.Second, "old leader demotion", func() bool {
				return nodes[0].Epoch() >= 1 && !nodes[0].Leader()
			})
		}
		for r := 4; r < rounds; r++ {
			gate.Store(r >= 6)
			driveRound(t, nodes, r)
		}
		gate.Store(true)
		for _, n := range nodes {
			if err := n.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}
		}
		if kill {
			if nodes[0].Leader() {
				t.Error("restarted old leader still claims leadership")
			}
			if !nodes[1].Leader() {
				t.Error("successor lost leadership after the old leader rejoined")
			}
		}
		for i := 1; i < m; i++ {
			if nodes[i].StateHash() != nodes[0].StateHash() {
				t.Errorf("edge %d local hash %08x != edge 0 %08x", i, nodes[i].StateHash(), nodes[0].StateHash())
			}
		}
		if got := srv.Latest(); got != rounds-1 {
			t.Errorf("cloud latest = %d, want %d", got, rounds-1)
		}
		return srv.StateHash(), nodes[0].StateHash()
	}
	cloudA, localA := run(false)
	cloudB, localB := run(true)
	if cloudB != cloudA {
		t.Errorf("leader-killed cloud hash %08x != lossless %08x", cloudB, cloudA)
	}
	if localB != localA {
		t.Errorf("leader-killed local hash %08x != lossless %08x", localB, localA)
	}
	if cloudA != localA {
		t.Errorf("cloud hash %08x != local hash %08x", cloudA, localA)
	}
}
