package gossip

import (
	"fmt"
	"sort"

	"repro/internal/shard"
)

// Neighborhoods partitions regions 0..m-1 into n gossip neighborhoods using
// the same rendezvous ring the shard tier uses for region assignment, so
// neighborhood membership is a pure function of (m, n): every node — and the
// cloud handing out membership through the lease layer — computes the same
// table with no coordination. The returned slice has one sorted member list
// per neighborhood; every neighborhood is non-empty (n is clamped to m).
func Neighborhoods(m, n int) ([][]int, error) {
	if m <= 0 {
		return nil, fmt.Errorf("gossip: need at least one region, got %d", m)
	}
	if n <= 0 {
		n = 1
	}
	if n > m {
		n = m
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("hood-%d", i)
	}
	ring, err := shard.NewRing(names)
	if err != nil {
		return nil, err
	}
	index := make(map[string]int, n)
	for i, name := range names {
		index[name] = i
	}
	hoods := make([][]int, n)
	for region := 0; region < m; region++ {
		h := index[ring.Owner(region)]
		hoods[h] = append(hoods[h], region)
	}
	// Rendezvous hashing can leave a neighborhood empty for small m; fold
	// empties away by stealing from the largest so every returned
	// neighborhood can run rounds.
	for h := range hoods {
		if len(hoods[h]) > 0 {
			continue
		}
		big := 0
		for j := range hoods {
			if len(hoods[j]) > len(hoods[big]) {
				big = j
			}
		}
		if len(hoods[big]) <= 1 {
			return nil, fmt.Errorf("gossip: cannot fill %d neighborhoods from %d regions", n, m)
		}
		last := hoods[big][len(hoods[big])-1]
		hoods[big] = hoods[big][:len(hoods[big])-1]
		hoods[h] = append(hoods[h], last)
	}
	for h := range hoods {
		sort.Ints(hoods[h])
	}
	return hoods, nil
}

// HoodOf returns the neighborhood index owning region in the table
// Neighborhoods returned, or -1 when the region is in none.
func HoodOf(hoods [][]int, region int) int {
	for h, members := range hoods {
		for _, m := range members {
			if m == region {
				return h
			}
		}
	}
	return -1
}
