package gossip

import (
	"fmt"

	"repro/internal/durable"
)

// Open attaches a durable state directory to the node and recovers any
// state a previous process left there: the checkpoint restores the fold and
// the escalation watermark, the journal's round records replay onto it
// through the same fold the live rounds use (bit-identical), and the leader
// rebuilds its unacked backlog from the records above the watermark. Call
// before Serve; the node resumes at Latest()+1.
func (n *Node) Open(stateDir string) error {
	store, err := durable.Open(stateDir)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.store != nil {
		store.Close()
		return fmt.Errorf("gossip: state directory already open (%s)", n.store.Dir())
	}
	fromCheckpoint := false
	snap, ok, err := store.LoadSnapshot()
	if err != nil {
		store.Close()
		return err
	}
	if ok {
		cp, err := durable.DecodeCheckpoint(snap)
		if err != nil {
			store.Close()
			return err
		}
		cpK := 0
		if len(cp.State.P) > 0 {
			cpK = len(cp.State.P[0])
		}
		if len(cp.State.P) != n.fold.Regions() || cpK != n.k {
			store.Close()
			return fmt.Errorf("gossip: checkpoint in %s has %dx%d state, node configured for %dx%d",
				stateDir, len(cp.State.P), cpK, n.fold.Regions(), n.k)
		}
		if len(cp.FDS.LastShortfall) > 0 {
			if err := n.fold.SetMemory(cp.FDS); err != nil {
				store.Close()
				return fmt.Errorf("gossip: checkpoint in %s: %w", stateDir, err)
			}
		}
		n.fold.SetState(cp.State)
		n.eng.SetLatest(cp.Round)
		n.escalated = cp.Escalated
		if n.failover {
			n.epoch = cp.Epoch
			n.leader = n.leaderAt(n.epoch) == n.cfg.Edge
		}
		fromCheckpoint = true
	}
	retain := n.leader || n.failover
	replayed := 0
	_, err = store.Replay(func(payload []byte) error {
		rec, err := durable.DecodeRound(payload)
		if err != nil {
			return err
		}
		if rec.Round <= n.eng.Latest() && fromCheckpoint {
			// The fold effect is already inside the checkpoint — either a
			// record a crash between snapshot rename and journal truncate
			// left behind, or an unacked round the leader's compaction
			// retained. The latter still rebuilds the escalation backlog;
			// re-applying it would double-fold.
			if retain && rec.Round >= n.escalated {
				n.pending = append(n.pending, rec)
			}
			return nil
		}
		if err := n.fold.Apply(rec.Censuses); err != nil {
			return fmt.Errorf("replaying round %d: %w", rec.Round, err)
		}
		n.eng.SetLatest(rec.Round)
		if retain && rec.Round >= n.escalated {
			n.pending = append(n.pending, rec)
		} else if !retain {
			n.escalated = rec.Round + 1
		}
		replayed++
		return nil
	})
	if err != nil {
		store.Close()
		return fmt.Errorf("gossip: journal in %s: %w", stateDir, err)
	}
	if replayed > 0 {
		n.metrics.replayed.Add(int64(replayed))
	}
	if n.failover && n.leader && (fromCheckpoint || replayed > 0) {
		// A recovered leadership claim is tentative: the neighborhood may
		// have promoted a successor while this process was dead, and its
		// higher-epoch beat must win before this node escalates anything.
		// Only a quiet TTL confirms the claim. A genuinely fresh node (empty
		// state directory) skips the hold-off — there is no prior state a
		// successor could be draining.
		n.tentative = true
	}
	if fromCheckpoint || replayed > 0 || len(n.pending) > 0 {
		n.metrics.recoveries.Inc()
		n.metrics.latestRound.Set(float64(n.eng.Latest()))
		n.metrics.pendingGauge.Set(float64(len(n.pending)))
		n.metrics.backlogGauge.Set(float64(len(n.pending)))
		n.metrics.stateHash.Set(float64(n.fold.Hash()))
		n.logf("gossip: edge %d: recovered state through round %d from %s (%d journal records replayed, %d pending escalation)",
			n.cfg.Edge, n.eng.Latest(), stateDir, replayed, len(n.pending))
	}
	n.store = store
	n.sinceComp = replayed
	return nil
}

// persistRoundLocked journals one completed local round. The append fsyncs
// before the round's waiters release; failures are counted and logged but
// do not fail the round — the node keeps serving from memory. Non-leader
// nodes compact by count (their journal only serves their own recovery);
// the leader compacts on acknowledged escalations instead, because its
// journal doubles as the unacked-digest backlog. Called with n.mu held;
// no-op without an open store.
func (n *Node) persistRoundLocked(rec durable.RoundRecord) {
	if n.store == nil {
		return
	}
	payload, err := durable.EncodeRound(rec)
	if err == nil {
		err = n.store.Append(payload)
	}
	if err != nil {
		n.metrics.journalErrs.Inc()
		n.logf("gossip: edge %d: journaling round %d: %v", n.cfg.Edge, rec.Round, err)
		return
	}
	n.sinceComp++
	if !n.leader && n.sinceComp >= defaultCompactEvery {
		if err := n.checkpointLocked(); err != nil {
			n.metrics.journalErrs.Inc()
			n.logf("gossip: edge %d: compacting after round %d: %v", n.cfg.Edge, rec.Round, err)
		}
	}
}

// checkpointLocked folds the node's durable state into an atomic snapshot,
// retaining the round records still awaiting cloud acknowledgment so a
// restarted leader re-escalates exactly the unacked backlog. Called with
// n.mu held.
func (n *Node) checkpointLocked() error {
	cp := durable.Checkpoint{
		Round:     n.eng.Latest(),
		State:     n.fold.State(),
		FDS:       n.fold.Memory(),
		Escalated: n.escalated,
		Epoch:     n.epoch,
	}
	payload, err := durable.EncodeCheckpoint(cp)
	if err != nil {
		return err
	}
	var retained [][]byte
	for _, rec := range n.pending {
		b, err := durable.EncodeRound(rec)
		if err != nil {
			return err
		}
		retained = append(retained, b)
	}
	if retained == nil {
		_, err = n.store.Compact(payload)
	} else {
		_, err = n.store.CompactRetain(payload, retained)
	}
	if err != nil {
		return err
	}
	n.sinceComp = 0
	return nil
}
