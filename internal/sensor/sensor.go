// Package sensor models the three on-board sensor modalities of the paper —
// camera, LiDAR, and radar — together with the 11-factor perception
// capability matrix of Table III and the privacy-sensitivity ranking used to
// derive the per-decision utility and privacy cost of Table II.
package sensor

import "fmt"

// Type identifies a sensor modality. Types are bit flags so a set of
// modalities fits in one word (see Mask).
type Type uint8

// Sensor modalities.
const (
	Camera Type = 1 << iota
	LiDAR
	Radar
)

// AllTypes lists the modalities in canonical order.
func AllTypes() []Type { return []Type{Camera, LiDAR, Radar} }

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Camera:
		return "camera"
	case LiDAR:
		return "lidar"
	case Radar:
		return "radar"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Mask is a set of sensor modalities (a subset of {Camera, LiDAR, Radar}).
// The zero Mask is the empty set.
type Mask uint8

// MaskAll is the full set Ω = {camera, lidar, radar}.
const MaskAll = Mask(Camera | LiDAR | Radar)

// MaskOf builds a mask from modalities.
func MaskOf(types ...Type) Mask {
	var m Mask
	for _, t := range types {
		m |= Mask(t)
	}
	return m
}

// Has reports whether the mask contains modality t.
func (m Mask) Has(t Type) bool { return m&Mask(t) != 0 }

// SubsetOf reports whether m ⊆ other.
func (m Mask) SubsetOf(other Mask) bool { return m&other == m }

// ProperSubsetOf reports whether m ⊊ other.
func (m Mask) ProperSubsetOf(other Mask) bool { return m != other && m.SubsetOf(other) }

// Union returns m ∪ other.
func (m Mask) Union(other Mask) Mask { return m | other }

// Intersect returns m ∩ other.
func (m Mask) Intersect(other Mask) Mask { return m & other }

// Count returns the number of modalities in the mask.
func (m Mask) Count() int {
	n := 0
	for _, t := range AllTypes() {
		if m.Has(t) {
			n++
		}
	}
	return n
}

// Types returns the modalities in the mask in canonical order.
func (m Mask) Types() []Type {
	var out []Type
	for _, t := range AllTypes() {
		if m.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

// String implements fmt.Stringer, e.g. "{camera,lidar}".
func (m Mask) String() string {
	if m == 0 {
		return "{}"
	}
	s := "{"
	for i, t := range m.Types() {
		if i > 0 {
			s += ","
		}
		s += t.String()
	}
	return s + "}"
}

// Valid reports whether the mask contains only known modalities.
func (m Mask) Valid() bool { return m.SubsetOf(MaskAll) }
