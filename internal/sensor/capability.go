package sensor

import "fmt"

// Factor is one of the 11 perception factors of Table III.
type Factor int

// The 11 perception factors, in the paper's row order.
const (
	FactorRange Factor = iota
	FactorResolution
	FactorDistanceAccuracy
	FactorVelocity
	FactorColorPerception
	FactorObjectDetection
	FactorObjectClassification
	FactorLaneDetection
	FactorObstacleEdgeDetection
	FactorIllumination
	FactorWeather
	numFactors
)

// NumFactors is the number of perception factors in Table III.
const NumFactors = int(numFactors)

// String implements fmt.Stringer.
func (f Factor) String() string {
	names := [...]string{
		"range",
		"resolution",
		"distance accuracy",
		"velocity",
		"color perception",
		"object detection",
		"object classification",
		"lane detection",
		"obstacle edge detection",
		"illumination conditions",
		"weather conditions",
	}
	if f < 0 || int(f) >= len(names) {
		return fmt.Sprintf("Factor(%d)", int(f))
	}
	return names[f]
}

// Contribution levels: "competently" = 1, "reasonably well" = 0.5,
// "doesn't operate well" = 0 (Table III quantization).
const (
	LevelCompetent  = 1.0
	LevelReasonable = 0.5
	LevelPoor       = 0.0
)

// CapabilityTable holds the per-sensor contribution to each perception
// factor: Table III of the paper.
type CapabilityTable struct {
	camera [NumFactors]float64
	lidar  [NumFactors]float64
	radar  [NumFactors]float64
}

// TableIII returns the capability matrix exactly as printed in the paper.
func TableIII() *CapabilityTable {
	return &CapabilityTable{
		//       Range Resol Dist Vel Color ObjDet ObjCls Lane Edge Illum Weather
		camera: [NumFactors]float64{0.5, 1, 0.5, 0.5, 1, 0.5, 1, 1, 1, 0, 0},
		lidar:  [NumFactors]float64{0.5, 0.5, 1, 0, 0, 1, 0.5, 0, 1, 1, 0.5},
		radar:  [NumFactors]float64{1, 0, 1, 1, 0, 1, 1, 0, 0, 1, 1},
	}
}

// Contribution returns the contribution of sensor t to factor f.
func (c *CapabilityTable) Contribution(t Type, f Factor) (float64, error) {
	if f < 0 || f >= numFactors {
		return 0, fmt.Errorf("sensor: factor %d out of range [0,%d)", f, NumFactors)
	}
	switch t {
	case Camera:
		return c.camera[f], nil
	case LiDAR:
		return c.lidar[f], nil
	case Radar:
		return c.radar[f], nil
	default:
		return 0, fmt.Errorf("sensor: unknown sensor type %v", t)
	}
}

// SumContribution returns the sensor's total contribution across the 11
// factors (the "Sum contribution" row of Table III: camera 7, LiDAR 6,
// radar 7).
func (c *CapabilityTable) SumContribution(t Type) (float64, error) {
	total := 0.0
	for f := Factor(0); f < numFactors; f++ {
		v, err := c.Contribution(t, f)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// MaskUtility returns the raw (unnormalized) utility of sharing the sensor
// set m: the sum contribution of its modalities across the 11 factors, the
// paper's Table II utility column. For example, {camera, lidar} yields 13.
func (c *CapabilityTable) MaskUtility(m Mask) (float64, error) {
	if !m.Valid() {
		return 0, fmt.Errorf("sensor: invalid mask %#x", uint8(m))
	}
	total := 0.0
	for _, t := range m.Types() {
		v, err := c.SumContribution(t)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// PrivacyWeights holds the per-modality privacy sensitivity: the paper ranks
// camera "highest sensitive" (1.0), LiDAR "moderate" (0.5), radar "least"
// (0.1).
type PrivacyWeights struct {
	Camera, LiDAR, Radar float64
}

// PaperPrivacyWeights returns the Table II privacy quantization.
func PaperPrivacyWeights() PrivacyWeights {
	return PrivacyWeights{Camera: 1.0, LiDAR: 0.5, Radar: 0.1}
}

// Validate checks the weights are non-negative.
func (w PrivacyWeights) Validate() error {
	if w.Camera < 0 || w.LiDAR < 0 || w.Radar < 0 {
		return fmt.Errorf("sensor: privacy weights must be non-negative: %+v", w)
	}
	return nil
}

// MaskCost returns the raw (unnormalized) privacy cost of sharing the sensor
// set m: the sum of its modalities' weights (Table II cost column). For
// example, {camera, lidar} yields 1.5.
func (w PrivacyWeights) MaskCost(m Mask) (float64, error) {
	if !m.Valid() {
		return 0, fmt.Errorf("sensor: invalid mask %#x", uint8(m))
	}
	total := 0.0
	if m.Has(Camera) {
		total += w.Camera
	}
	if m.Has(LiDAR) {
		total += w.LiDAR
	}
	if m.Has(Radar) {
		total += w.Radar
	}
	return total, nil
}
