package sensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	tests := []struct {
		typ  Type
		want string
	}{
		{Camera, "camera"},
		{LiDAR, "lidar"},
		{Radar, "radar"},
		{Type(0), "Type(0)"},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("Type.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestMaskOperations(t *testing.T) {
	cl := MaskOf(Camera, LiDAR)
	if !cl.Has(Camera) || !cl.Has(LiDAR) || cl.Has(Radar) {
		t.Error("MaskOf membership wrong")
	}
	if cl.Count() != 2 {
		t.Errorf("Count = %d, want 2", cl.Count())
	}
	if !MaskOf(Camera).SubsetOf(cl) {
		t.Error("{camera} should be subset of {camera,lidar}")
	}
	if !MaskOf(Camera).ProperSubsetOf(cl) {
		t.Error("{camera} should be proper subset of {camera,lidar}")
	}
	if cl.ProperSubsetOf(cl) {
		t.Error("a set is not a proper subset of itself")
	}
	if cl.Union(MaskOf(Radar)) != MaskAll {
		t.Error("union wrong")
	}
	if cl.Intersect(MaskOf(LiDAR, Radar)) != MaskOf(LiDAR) {
		t.Error("intersection wrong")
	}
	if Mask(0).String() != "{}" {
		t.Errorf("empty mask string = %q", Mask(0).String())
	}
	if cl.String() != "{camera,lidar}" {
		t.Errorf("mask string = %q", cl.String())
	}
	if !MaskAll.Valid() || Mask(0x80).Valid() {
		t.Error("validity checks wrong")
	}
	types := MaskOf(Radar, Camera).Types()
	if len(types) != 2 || types[0] != Camera || types[1] != Radar {
		t.Errorf("Types() = %v, want canonical order [camera radar]", types)
	}
}

func TestMaskSubsetProperties(t *testing.T) {
	f := func(a, b uint8) bool {
		ma, mb := Mask(a)&MaskAll, Mask(b)&MaskAll
		inter := ma.Intersect(mb)
		union := ma.Union(mb)
		return inter.SubsetOf(ma) && inter.SubsetOf(mb) &&
			ma.SubsetOf(union) && mb.SubsetOf(union) &&
			union.Count()+inter.Count() == ma.Count()+mb.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTableIIISums verifies the "Sum contribution" row: camera 7, LiDAR 6,
// radar 7.
func TestTableIIISums(t *testing.T) {
	c := TableIII()
	tests := []struct {
		typ  Type
		want float64
	}{
		{Camera, 7},
		{LiDAR, 6},
		{Radar, 7},
	}
	for _, tt := range tests {
		got, err := c.SumContribution(tt.typ)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("SumContribution(%v) = %f, want %f", tt.typ, got, tt.want)
		}
	}
}

// TestTableIIISpotValues checks individual cells against the printed table.
func TestTableIIISpotValues(t *testing.T) {
	c := TableIII()
	tests := []struct {
		typ    Type
		factor Factor
		want   float64
	}{
		{Camera, FactorRange, LevelReasonable},
		{Radar, FactorRange, LevelCompetent},
		{Camera, FactorResolution, LevelCompetent},
		{Radar, FactorResolution, LevelPoor},
		{LiDAR, FactorDistanceAccuracy, LevelCompetent},
		{Camera, FactorColorPerception, LevelCompetent},
		{LiDAR, FactorColorPerception, LevelPoor},
		{Camera, FactorLaneDetection, LevelCompetent},
		{Radar, FactorLaneDetection, LevelPoor},
		{LiDAR, FactorWeather, LevelReasonable},
		{Radar, FactorWeather, LevelCompetent},
		{Camera, FactorIllumination, LevelPoor},
	}
	for _, tt := range tests {
		got, err := c.Contribution(tt.typ, tt.factor)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Contribution(%v, %v) = %f, want %f", tt.typ, tt.factor, got, tt.want)
		}
	}
}

func TestContributionErrors(t *testing.T) {
	c := TableIII()
	if _, err := c.Contribution(Camera, Factor(-1)); err == nil {
		t.Error("negative factor must error")
	}
	if _, err := c.Contribution(Camera, Factor(11)); err == nil {
		t.Error("factor 11 must error")
	}
	if _, err := c.Contribution(Type(0), FactorRange); err == nil {
		t.Error("unknown sensor must error")
	}
	if _, err := c.MaskUtility(Mask(0x80)); err == nil {
		t.Error("invalid mask must error")
	}
}

func TestMaskUtility(t *testing.T) {
	c := TableIII()
	tests := []struct {
		mask Mask
		want float64
	}{
		{MaskAll, 20},
		{MaskOf(Camera, LiDAR), 13},
		{MaskOf(Camera, Radar), 14},
		{MaskOf(LiDAR, Radar), 13},
		{MaskOf(Camera), 7},
		{MaskOf(LiDAR), 6},
		{MaskOf(Radar), 7},
		{Mask(0), 0},
	}
	for _, tt := range tests {
		got, err := c.MaskUtility(tt.mask)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("MaskUtility(%v) = %f, want %f", tt.mask, got, tt.want)
		}
	}
}

func TestPrivacyCosts(t *testing.T) {
	w := PaperPrivacyWeights()
	tests := []struct {
		mask Mask
		want float64
	}{
		{MaskAll, 1.6},
		{MaskOf(Camera, LiDAR), 1.5},
		{MaskOf(Camera, Radar), 1.1},
		{MaskOf(LiDAR, Radar), 0.6},
		{MaskOf(Camera), 1.0},
		{MaskOf(LiDAR), 0.5},
		{MaskOf(Radar), 0.1},
		{Mask(0), 0},
	}
	for _, tt := range tests {
		got, err := w.MaskCost(tt.mask)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("MaskCost(%v) = %f, want %f", tt.mask, got, tt.want)
		}
	}
	if _, err := w.MaskCost(Mask(0x80)); err == nil {
		t.Error("invalid mask must error")
	}
	bad := PrivacyWeights{Camera: -0.5}
	if bad.Validate() == nil {
		t.Error("negative weight must fail validation")
	}
}

func TestFactorString(t *testing.T) {
	if FactorRange.String() != "range" {
		t.Errorf("FactorRange = %q", FactorRange.String())
	}
	if FactorWeather.String() != "weather conditions" {
		t.Errorf("FactorWeather = %q", FactorWeather.String())
	}
	if Factor(99).String() != "Factor(99)" {
		t.Errorf("unknown factor = %q", Factor(99).String())
	}
}
