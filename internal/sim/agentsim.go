package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/edge"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/sensor"
	"repro/internal/transport"
	"repro/internal/vehicle"
)

// AgentSimConfig parameterizes the agent-based distributed simulation: one
// edge server per region, a population of heterogeneous vehicle agents per
// region, and the cloud coordinator running FDS — all exchanging real
// messages over the in-process transport.
type AgentSimConfig struct {
	// VehiclesPerRegion is the population size per region (default 40).
	VehiclesPerRegion int
	// Rounds bounds the simulation (default 200).
	Rounds int
	// Mu and Tau parameterize the agents' revision rule (defaults 0.5,
	// 0.15).
	Mu, Tau float64
	// X0 is the initial sharing ratio (default 0.5).
	X0 float64
	// Lambda is the FDS ratio step limit (default 0.1).
	Lambda float64
	// PrivacyWeightStd is the standard deviation of the per-vehicle privacy
	// weight around 1 (heterogeneity; default 0.2, clipped at 0).
	PrivacyWeightStd float64
	// Field is the desired decision field the cloud steers toward
	// (required).
	Field *policy.Field
	// InitialShares, when non-nil, gives per-region decision distributions
	// the agents' initial decisions are sampled from (matching a
	// macroscopic start state); nil draws uniformly.
	InitialShares [][]float64
	// EdgeShare, when non-zero, enables edge-side perception: every edge
	// server contributes road-side items of these modalities each round
	// (the paper's future-work direction; see internal/edge/perception.go).
	EdgeShare sensor.Mask
	// Seed drives all randomness.
	Seed int64
	// RoundTimeout bounds each edge round (default 5s).
	RoundTimeout time.Duration
	// Fault, when non-nil, wraps every vehicle connection in the seeded
	// fault injector (drops, duplicates, delays, forced disconnects) and
	// runs the vehicle clients with reconnect + re-registration, so the
	// simulation exercises the runtime's degraded paths.
	Fault *transport.FaultConfig
	// Codec, when non-empty ("json" or "binary"), serializes every
	// in-process message through that wire codec instead of passing typed
	// values, so the simulation exercises the real encode/decode path.
	Codec string
	// Obs, when non-nil, is the shared observer every component of the run
	// (cloud, edges, fault injector, vehicle clients, FDS) reports through,
	// so one registry carries the whole system's series. Nil keeps each
	// component on its private registry.
	Obs *obs.Observer
}

func (c *AgentSimConfig) fill() {
	if c.VehiclesPerRegion <= 0 {
		c.VehiclesPerRegion = 40
	}
	if c.Rounds <= 0 {
		c.Rounds = 200
	}
	if c.Mu <= 0 {
		c.Mu = 0.5
	}
	if c.Tau <= 0 {
		c.Tau = 0.15
	}
	if c.X0 == 0 {
		c.X0 = 0.5
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.1
	}
	if c.PrivacyWeightStd < 0 {
		c.PrivacyWeightStd = 0
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 5 * time.Second
	}
}

// AgentSimResult reports an agent-based run.
type AgentSimResult struct {
	// SharesTrace[t][i][k] is region i's observed decision distribution at
	// round t.
	SharesTrace [][][]float64
	// RatioTrace[t][i] is region i's sharing ratio during round t.
	RatioTrace [][]float64
	// Converged reports whether the cloud's view satisfied the field.
	Converged bool
	// Rounds actually executed.
	Rounds int
	// TotalDeliveredItems counts step-⑤ items across the run.
	TotalDeliveredItems int
	// TotalReceivedUtility sums the Table III value of desired delivered
	// data across all vehicles.
	TotalReceivedUtility float64
	// TotalSharedCost sums the privacy cost vehicles incurred by uploading.
	TotalSharedCost float64
}

// sampleDecision draws a 1-based decision index from a distribution.
func sampleDecision(rng *rand.Rand, shares []float64) (lattice.Decision, error) {
	if len(shares) == 0 {
		return 0, fmt.Errorf("sim: empty initial share vector")
	}
	r := rng.Float64()
	cum := 0.0
	for k, p := range shares {
		cum += p
		if r <= cum {
			return lattice.Decision(k + 1), nil
		}
	}
	return lattice.Decision(len(shares)), nil
}

// RunAgentSim executes the distributed agent-based simulation.
func (w *World) RunAgentSim(cfg AgentSimConfig) (*AgentSimResult, error) {
	cfg.fill()
	if cfg.Field == nil {
		return nil, fmt.Errorf("sim: agent simulation requires a desired field")
	}
	m := w.Model.M()

	// The cloud is wired through the shared scenario.NodeConfig layer — the
	// same constructor cpnode, cmd/loadgen, and cmd/scenario use. Round
	// deadline 0 keeps the in-process barrier waiting for every region.
	nc, err := scenario.New(scenario.RoleCloud,
		scenario.WithModel(w.Model),
		scenario.WithField(cfg.Field),
		scenario.Lambda(cfg.Lambda),
		scenario.X0(cfg.X0),
		scenario.RoundDeadline(0),
		scenario.WithObs(cfg.Obs),
	)
	if err != nil {
		return nil, err
	}
	cloudSrv, _, err := nc.NewCloud()
	if err != nil {
		return nil, err
	}
	defer cloudSrv.Close()

	net := transport.NewInprocNetwork()
	if cfg.Codec != "" {
		codec, err := transport.CodecByName(cfg.Codec)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		net.SetCodec(codec)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var fault *transport.Fault
	if cfg.Fault != nil {
		fc := *cfg.Fault
		if fc.Seed == 0 {
			fc.Seed = cfg.Seed
		}
		fault = transport.NewFault(fc)
		if cfg.Obs != nil {
			fault.Instrument(cfg.Obs)
		}
	}
	stop := make(chan struct{})

	edges := make([]*edge.Server, m)
	listeners := make([]transport.Listener, m)
	for i := 0; i < m; i++ {
		l, err := net.Listen(fmt.Sprintf("edge-%d", i))
		if err != nil {
			return nil, err
		}
		listeners[i] = l
		edges[i] = edge.NewServer(i, w.Payoffs.Lattice(), rng.Int63())
		if cfg.Obs != nil {
			edges[i].Instrument(cfg.Obs)
		}
		if cfg.EdgeShare != 0 {
			if err := edges[i].EnablePerception(cfg.EdgeShare); err != nil {
				return nil, err
			}
		}
		go edges[i].Serve(l)
	}
	teardown := func() {
		close(stop)
		for _, l := range listeners {
			_ = l.Close()
		}
		for _, e := range edges {
			e.Close()
		}
	}
	torndown := false
	defer func() {
		if !torndown {
			teardown()
		}
	}()

	dialEdge := func(i int) (transport.Conn, error) {
		c, err := net.Dial(fmt.Sprintf("edge-%d", i))
		if err != nil {
			return nil, err
		}
		if fault != nil {
			c = fault.WrapConn(c)
		}
		return c, nil
	}

	// Launch vehicle agents.
	var clientWG sync.WaitGroup
	clientErr := make(chan error, m*cfg.VehiclesPerRegion)
	agents := make([][]*vehicle.Agent, m)
	nextID := 1
	for i := 0; i < m; i++ {
		agents[i] = make([]*vehicle.Agent, cfg.VehiclesPerRegion)
		for v := 0; v < cfg.VehiclesPerRegion; v++ {
			weight := 1 + rng.NormFloat64()*cfg.PrivacyWeightStd
			if weight < 0 {
				weight = 0
			}
			prof := vehicle.Profile{
				ID:            nextID,
				Equipped:      sensor.MaskAll,
				Desired:       sensor.MaskAll,
				PrivacyWeight: weight,
				Beta:          w.Beta[i],
				Tau:           cfg.Tau,
			}
			nextID++
			a, err := vehicle.NewAgent(prof, w.Payoffs, rng.Int63())
			if err != nil {
				return nil, err
			}
			if cfg.InitialShares != nil {
				d, err := sampleDecision(rng, cfg.InitialShares[i])
				if err != nil {
					return nil, err
				}
				if err := a.SetDecision(d); err != nil {
					return nil, err
				}
			}
			agents[i][v] = a
			client := &vehicle.Client{Agent: a, Mu: cfg.Mu, Cap: sensor.TableIII(), Stop: stop, Obs: cfg.Obs}
			if fault != nil {
				// Lossy links: bound the registration wait and heal
				// dropped sessions by redialing.
				client.RegisterTimeout = 250 * time.Millisecond
				region := i
				dialer := &transport.Dialer{
					Dial:        func() (transport.Conn, error) { return dialEdge(region) },
					MaxAttempts: 20,
					BaseDelay:   2 * time.Millisecond,
					MaxDelay:    50 * time.Millisecond,
					Seed:        cfg.Seed + int64(prof.ID),
				}
				clientWG.Add(1)
				go func() {
					defer clientWG.Done()
					if err := client.RunWithReconnect(dialer); err != nil {
						clientErr <- err
					}
				}()
				continue
			}
			conn, err := dialEdge(i)
			if err != nil {
				return nil, err
			}
			clientWG.Add(1)
			go func() {
				defer clientWG.Done()
				if err := client.Run(conn); err != nil {
					clientErr <- err
				}
			}()
		}
	}

	// Wait for registrations.
	deadline := time.Now().Add(cfg.RoundTimeout)
	for _, e := range edges {
		for e.NumVehicles() < cfg.VehiclesPerRegion {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("sim: only %d/%d vehicles registered at edge %d",
					e.NumVehicles(), cfg.VehiclesPerRegion, e.ID)
			}
			time.Sleep(time.Millisecond)
		}
	}

	res := &AgentSimResult{}
	x := make([]float64, m)
	for i := range x {
		x[i] = cfg.X0
	}

	for t := 0; t < cfg.Rounds; t++ {
		res.RatioTrace = append(res.RatioTrace, append([]float64(nil), x...))

		// Run every edge's round concurrently.
		censuses := make([][]int, m)
		errs := make([]error, m)
		var wg sync.WaitGroup
		for i := 0; i < m; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				censuses[i], errs[i] = edges[i].RunRound(t, x[i], cfg.RoundTimeout)
			}()
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("sim: edge %d round %d: %w", i, t, err)
			}
		}

		shares := make([][]float64, m)
		for i := 0; i < m; i++ {
			shares[i] = edge.Shares(censuses[i])
		}
		res.SharesTrace = append(res.SharesTrace, shares)
		res.Rounds = t + 1

		// Report to the cloud (concurrently: the cloud barriers per round).
		var reportWG sync.WaitGroup
		newX := make([]float64, m)
		reportErrs := make([]error, m)
		for i := 0; i < m; i++ {
			i := i
			reportWG.Add(1)
			go func() {
				defer reportWG.Done()
				newX[i], reportErrs[i] = cloudSrv.Submit(transport.Census{
					Edge:   i,
					Round:  t,
					Counts: censuses[i],
				})
			}()
		}
		reportWG.Wait()
		for i, err := range reportErrs {
			if err != nil {
				return nil, fmt.Errorf("sim: cloud report for edge %d: %w", i, err)
			}
		}
		x = newX

		if cloudSrv.Converged() {
			res.Converged = true
			break
		}
	}

	// Tear down clients before reading agent state: the client goroutines
	// own the agents until their connections close.
	teardown()
	torndown = true
	clientWG.Wait()

	for i := range agents {
		for _, a := range agents[i] {
			res.TotalDeliveredItems += a.ReceivedItems
			res.TotalReceivedUtility += a.ReceivedUtility
			res.TotalSharedCost += a.SharedCost
		}
	}
	select {
	case err := <-clientErr:
		return nil, fmt.Errorf("sim: vehicle client: %w", err)
	default:
	}
	return res, nil
}
