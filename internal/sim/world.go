// Package sim assembles the full end-to-end reproduction pipeline: synthetic
// Futian-like world construction (road network → utility coefficients →
// Algorithm-1 clustering → region graph → game model), the macroscopic
// FDS shaping runs used by Figs. 9 and 10, and the agent-based distributed
// simulation (cloud + edge servers + vehicle agents over the in-process
// transport) used for the micro/macro consistency experiment.
//
// World construction itself is delegated to internal/worldbuild: a staged,
// parallel pipeline with a content-addressed artifact cache. BuildWorld is
// the one-shot entry point; NewWorldBuilder shares the cache across builds
// so e.g. the BC- and TD-coefficient worlds of one experiment run reuse the
// same road network, trace, and map-matching artifacts.
package sim

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/geo"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/roadnet"
	"repro/internal/trace"
	"repro/internal/worldbuild"
)

// CoeffSource selects how road-segment utility coefficients are computed
// (Step 1 of the paper's analysis).
type CoeffSource = worldbuild.CoeffSource

// Coefficient sources.
const (
	// CoeffBC uses travel-time betweenness centrality (Eq. 2).
	CoeffBC = worldbuild.CoeffBC
	// CoeffTD uses average traffic density (Eq. 3).
	CoeffTD = worldbuild.CoeffTD
)

// WorldConfig parameterizes world construction. It aliases worldbuild.Config;
// see that type for field documentation, including the Workers option that
// bounds the build's worker pools without affecting the result.
type WorldConfig = worldbuild.Config

// DefaultWorldConfig returns the laptop-scale configuration used by tests
// and the experiment harness. The full paper-scale run (5,000+ segments,
// hundreds of vehicles, 20 regions) is selected by cmd/repro -scale full.
func DefaultWorldConfig() WorldConfig {
	net := roadnet.DefaultGenConfig()
	net.Rows, net.Cols = 16, 18
	tr := trace.DefaultGenConfig()
	tr.Taxis, tr.Transit = 60, 40
	tr.Duration = 4 * time.Hour
	tr.Start = tr.Start.Add(6 * time.Hour) // cover the morning peak
	return WorldConfig{
		Net:               net,
		Trace:             tr,
		Regions:           8,
		Source:            CoeffBC,
		BetaMean:          4.0,
		EdgeServers:       100,
		MatchRadiusMeters: 400,
	}
}

// PaperWorldConfig returns the full-scale configuration matching the
// paper's setup: a Futian-scale network, 20 regions, 100 edge servers and a
// one-day trace.
func PaperWorldConfig() WorldConfig {
	cfg := DefaultWorldConfig()
	cfg.Net = roadnet.DefaultGenConfig()
	cfg.Trace = trace.DefaultGenConfig()
	cfg.Regions = 20
	return cfg
}

// World is the assembled simulation substrate.
type World struct {
	Config     WorldConfig
	Net        *roadnet.Network
	Trace      *trace.Set // map-matched
	Weights    []float64  // per-segment utility coefficients (BC or TD)
	Assignment *cluster.Assignment
	Graph      *cluster.RegionGraph
	Beta       []float64 // per-region utility coefficients (scaled)
	Payoffs    *lattice.Payoffs
	Model      *game.Model
	Voronoi    *geo.Voronoi // edge-server cells
	// RegionStats holds the per-region coefficient statistics (Fig. 8(c)).
	RegionStats []cluster.RegionStats
	// AvgWithinStd is the average within-region coefficient standard
	// deviation the paper reports (17.08 for BC, 30.31 for TD).
	AvgWithinStd float64
}

// WorldBuilder builds worlds through one shared artifact cache: every stage
// output (road network, Brandes centrality, trace, map matching, densities,
// clustering, ...) is memoized under a content hash of the configuration
// subtree it depends on, so successive builds recompute only what changed.
// Safe for concurrent Build calls.
type WorldBuilder struct {
	pipe *worldbuild.Pipeline
}

// NewWorldBuilder returns a builder with a fresh artifact cache.
func NewWorldBuilder() *WorldBuilder {
	return &WorldBuilder{pipe: worldbuild.NewPipeline(nil)}
}

// Instrument re-points the builder's cache counters
// (worldbuild_stage_executions_total, worldbuild_stage_hits_total) and
// per-stage build spans at the given observer. Call before Build.
func (b *WorldBuilder) Instrument(o *obs.Observer) {
	b.pipe.Cache().Instrument(o)
}

// Build runs the staged world-build pipeline. The result is bit-identical
// for every cfg.Workers value (0 means runtime.NumCPU()).
func (b *WorldBuilder) Build(cfg WorldConfig) (*World, error) {
	res, err := b.pipe.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return &World{
		Config:       res.Config,
		Net:          res.Net,
		Trace:        res.Trace,
		Weights:      res.Weights,
		Assignment:   res.Assignment,
		Graph:        res.Graph,
		Beta:         res.Beta,
		Payoffs:      res.Payoffs,
		Model:        res.Model,
		Voronoi:      res.Voronoi,
		RegionStats:  res.RegionStats,
		AvgWithinStd: res.AvgWithinStd,
	}, nil
}

// BuildWorld runs the full substrate pipeline with a fresh artifact cache.
// Use a WorldBuilder to share artifacts across related builds.
func BuildWorld(cfg WorldConfig) (*World, error) {
	return NewWorldBuilder().Build(cfg)
}

// gridDim factors n into the most-square rows x cols grid with rows*cols >= n.
func gridDim(n int) (rows, cols int) {
	rows = 1
	for rows*rows < n {
		rows++
	}
	cols = (n + rows - 1) / rows
	return rows, cols
}
