// Package sim assembles the full end-to-end reproduction pipeline: synthetic
// Futian-like world construction (road network → utility coefficients →
// Algorithm-1 clustering → region graph → game model), the macroscopic
// FDS shaping runs used by Figs. 9 and 10, and the agent-based distributed
// simulation (cloud + edge servers + vehicle agents over the in-process
// transport) used for the micro/macro consistency experiment.
package sim

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/game"
	"repro/internal/geo"
	"repro/internal/lattice"
	"repro/internal/roadnet"
	"repro/internal/trace"
)

// CoeffSource selects how road-segment utility coefficients are computed
// (Step 1 of the paper's analysis).
type CoeffSource int

// Coefficient sources.
const (
	// CoeffBC uses travel-time betweenness centrality (Eq. 2).
	CoeffBC CoeffSource = iota + 1
	// CoeffTD uses average traffic density (Eq. 3).
	CoeffTD
)

// String implements fmt.Stringer.
func (c CoeffSource) String() string {
	switch c {
	case CoeffBC:
		return "BC"
	case CoeffTD:
		return "TD"
	default:
		return fmt.Sprintf("CoeffSource(%d)", int(c))
	}
}

// WorldConfig parameterizes world construction.
type WorldConfig struct {
	// Net configures the synthetic road network.
	Net roadnet.GenConfig
	// Trace configures the synthetic vehicle fleet.
	Trace trace.GenConfig
	// Regions is M, the number of Algorithm-1 regions (paper: 20).
	Regions int
	// Source selects BC or TD coefficients.
	Source CoeffSource
	// BetaMean rescales the region coefficients so their mean equals this
	// value; the game's utility coefficient scale. Zero keeps raw values.
	BetaMean float64
	// EdgeServers is the number of evenly deployed edge servers (paper:
	// 100, a 10x10 grid).
	EdgeServers int
	// MatchRadiusMeters bounds map matching (fixes farther than this from
	// any segment stay unmatched).
	MatchRadiusMeters float64
	// GreedyClustering selects the global-greedy Algorithm-1 variant
	// (cluster.ClusterGreedy) instead of the paper's round-robin growth;
	// it yields markedly lower within-region coefficient variance on
	// spatially coherent fields.
	GreedyClustering bool
}

// DefaultWorldConfig returns the laptop-scale configuration used by tests
// and the experiment harness. The full paper-scale run (5,000+ segments,
// hundreds of vehicles, 20 regions) is selected by cmd/repro -scale full.
func DefaultWorldConfig() WorldConfig {
	net := roadnet.DefaultGenConfig()
	net.Rows, net.Cols = 16, 18
	tr := trace.DefaultGenConfig()
	tr.Taxis, tr.Transit = 60, 40
	tr.Duration = 4 * time.Hour
	tr.Start = tr.Start.Add(6 * time.Hour) // cover the morning peak
	return WorldConfig{
		Net:               net,
		Trace:             tr,
		Regions:           8,
		Source:            CoeffBC,
		BetaMean:          4.0,
		EdgeServers:       100,
		MatchRadiusMeters: 400,
	}
}

// PaperWorldConfig returns the full-scale configuration matching the
// paper's setup: a Futian-scale network, 20 regions, 100 edge servers and a
// one-day trace.
func PaperWorldConfig() WorldConfig {
	cfg := DefaultWorldConfig()
	cfg.Net = roadnet.DefaultGenConfig()
	cfg.Trace = trace.DefaultGenConfig()
	cfg.Regions = 20
	return cfg
}

// World is the assembled simulation substrate.
type World struct {
	Config     WorldConfig
	Net        *roadnet.Network
	Trace      *trace.Set // map-matched
	Weights    []float64  // per-segment utility coefficients (BC or TD)
	Assignment *cluster.Assignment
	Graph      *cluster.RegionGraph
	Beta       []float64 // per-region utility coefficients (scaled)
	Payoffs    *lattice.Payoffs
	Model      *game.Model
	Voronoi    *geo.Voronoi // edge-server cells
	// RegionStats holds the per-region coefficient statistics (Fig. 8(c)).
	RegionStats []cluster.RegionStats
	// AvgWithinStd is the average within-region coefficient standard
	// deviation the paper reports (17.08 for BC, 30.31 for TD).
	AvgWithinStd float64
}

// BuildWorld runs the full substrate pipeline.
func BuildWorld(cfg WorldConfig) (*World, error) {
	if cfg.Regions < 1 {
		return nil, fmt.Errorf("sim: need at least one region, got %d", cfg.Regions)
	}
	if cfg.Source != CoeffBC && cfg.Source != CoeffTD {
		return nil, fmt.Errorf("sim: unknown coefficient source %d", int(cfg.Source))
	}
	if cfg.EdgeServers < 1 {
		return nil, fmt.Errorf("sim: need at least one edge server, got %d", cfg.EdgeServers)
	}

	net, err := roadnet.Generate(cfg.Net)
	if err != nil {
		return nil, fmt.Errorf("sim: generating road network: %w", err)
	}

	raw, err := trace.Generate(net, cfg.Trace)
	if err != nil {
		return nil, fmt.Errorf("sim: generating trace: %w", err)
	}
	matched, err := trace.MatchToNetwork(raw, net, cfg.Net.Box, cfg.MatchRadiusMeters)
	if err != nil {
		return nil, fmt.Errorf("sim: map matching: %w", err)
	}

	var weights []float64
	switch cfg.Source {
	case CoeffBC:
		weights = net.TravelTimeBetweenness()
	case CoeffTD:
		weights, err = trace.AverageDensity(matched, net.NumSegments(), 10*time.Minute)
		if err != nil {
			return nil, fmt.Errorf("sim: computing traffic density: %w", err)
		}
	}

	clusterFn := cluster.Cluster
	if cfg.GreedyClustering {
		clusterFn = cluster.ClusterGreedy
	}
	assignment, err := clusterFn(net, weights, cfg.Regions)
	if err != nil {
		return nil, fmt.Errorf("sim: clustering: %w", err)
	}
	graph, err := cluster.BuildRegionGraphFromTrace(assignment, matched)
	if err != nil {
		// Sparse traces may have no transitions; fall back to road
		// adjacency.
		graph, err = cluster.BuildRegionGraphFromAdjacency(assignment, net)
		if err != nil {
			return nil, fmt.Errorf("sim: building region graph: %w", err)
		}
	}

	beta, err := cluster.RegionCoefficients(assignment, weights)
	if err != nil {
		return nil, fmt.Errorf("sim: region coefficients: %w", err)
	}
	if cfg.BetaMean > 0 {
		mean := 0.0
		for _, b := range beta {
			mean += b
		}
		mean /= float64(len(beta))
		if mean > 0 {
			for i := range beta {
				beta[i] = beta[i] / mean * cfg.BetaMean
			}
		} else {
			for i := range beta {
				beta[i] = cfg.BetaMean
			}
		}
	}

	stats, avgStd, err := cluster.Stats(assignment, weights)
	if err != nil {
		return nil, fmt.Errorf("sim: region stats: %w", err)
	}

	payoffs := lattice.PaperPayoffs()
	model, err := game.NewModel(payoffs, graph, beta)
	if err != nil {
		return nil, fmt.Errorf("sim: building game model: %w", err)
	}

	sites := cfg.Net.Box.GridPoints(gridDim(cfg.EdgeServers))
	vor, err := geo.NewVoronoi(cfg.Net.Box, sites)
	if err != nil {
		return nil, fmt.Errorf("sim: building edge-server cells: %w", err)
	}

	return &World{
		Config:       cfg,
		Net:          net,
		Trace:        matched,
		Weights:      weights,
		Assignment:   assignment,
		Graph:        graph,
		Beta:         beta,
		Payoffs:      payoffs,
		Model:        model,
		Voronoi:      vor,
		RegionStats:  stats,
		AvgWithinStd: avgStd,
	}, nil
}

// gridDim factors n into the most-square rows x cols grid with rows*cols >= n.
func gridDim(n int) (rows, cols int) {
	rows = 1
	for rows*rows < n {
		rows++
	}
	cols = (n + rows - 1) / rows
	return rows, cols
}
