package sim

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/edge"
	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sensor"
	"repro/internal/transport"
	"repro/internal/vehicle"
)

// counterValue reads one counter's value out of a registry snapshot.
func counterValue(points []obs.Point, name string) (float64, bool) {
	for _, p := range points {
		if p.Name == name && len(p.Labels) == 0 {
			return p.Value, true
		}
	}
	return 0, false
}

// chaosGraph is a 2-region graph with dominant intra-region frequency.
type chaosGraph struct{}

func (chaosGraph) M() int { return 2 }
func (chaosGraph) Gamma(i, j int) float64 {
	if i == j {
		return 0.9
	}
	return 0.1
}
func (chaosGraph) Neighbors(i int) []int {
	if i == 0 {
		return []int{1}
	}
	return []int{0}
}

// TestChaosPipelineConverges runs the full cloud/edge/vehicle pipeline over
// faulty links — 10% message drops, 1–20ms injected delays on every vehicle
// connection, and periodic forced disconnects on the cloud links — kills one
// edge server mid-run and restarts it, and requires the system to still
// converge to the FDS desired field. The cloud's round deadline keeps the
// healthy region progressing (degraded rounds) while the other is down.
func TestChaosPipelineConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes several seconds")
	}
	const (
		regions       = 2
		perRegion     = 16
		maxRounds     = 60
		beta          = 4.0
		tau           = 0.25
		mu            = 0.5
		lambda        = 0.1
		x0            = 0.3
		targetX       = 0.85
		fieldEps      = 0.2
		roundDeadline = 400 * time.Millisecond
		roundTimeout  = 150 * time.Millisecond
		killAtRound   = 6
		outage        = 600 * time.Millisecond // > roundDeadline: forces degraded rounds
	)

	payoffs := lattice.PaperPayoffs()
	model, err := game.NewModel(payoffs, chaosGraph{}, []float64{beta, beta})
	if err != nil {
		t.Fatal(err)
	}

	// Desired field: the regime reachable from x0 by adiabatic continuation
	// to the target ratio (same construction as cmd/cpnode's cloud role).
	dyn, err := game.NewLogitDynamics(model, tau, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	probe := game.NewUniformState(regions, model.K(), x0)
	for ramping := true; ramping; {
		ramping = false
		for i := range probe.X {
			if probe.X[i]+lambda < targetX {
				probe.X[i] += lambda
				ramping = true
			} else {
				probe.X[i] = targetX
			}
		}
		if err := dyn.Step(probe); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dyn.Equilibrium(probe, 1e-9, 20000); err != nil {
		t.Fatal(err)
	}
	field, err := FieldFromState(probe, fieldEps)
	if err != nil {
		t.Fatal(err)
	}
	fds, err := policy.NewFDS(model, field, lambda)
	if err != nil {
		t.Fatal(err)
	}
	// One shared observer across the cloud, edges, vehicle fault injector,
	// cloud links, and vehicle clients: the assertions at the end read the
	// whole system's health from a single registry snapshot. The cloud-link
	// injector gets its own registry so its transport_fault_* series stay
	// distinct from the vehicle-link injector's.
	o := obs.New()
	cloudSrv, err := cloud.NewServer(fds, game.NewUniformState(regions, model.K(), x0))
	if err != nil {
		t.Fatal(err)
	}
	cloudSrv.Instrument(o)
	cloudSrv.SetRoundDeadline(roundDeadline)
	defer cloudSrv.Close()

	net := transport.NewInprocNetwork()
	cloudL, err := net.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	go cloudSrv.Serve(cloudL)
	defer cloudL.Close()

	// Vehicle links: drops and delays on both directions (dial side and
	// edge listener side). Cloud links: periodic forced disconnects.
	vehFault := transport.NewFault(transport.FaultConfig{
		Seed:     42,
		DropProb: 0.1,
		MinDelay: time.Millisecond,
		MaxDelay: 20 * time.Millisecond,
	})
	vehFault.Instrument(o)
	// Each Report passes ~2 messages, so every cloud link is force-dropped
	// every ~4 rounds and must redial + re-submit.
	linkFault := transport.NewFault(transport.FaultConfig{Seed: 7, DisconnectAfter: 8})
	linkObs := obs.New()
	linkFault.Instrument(linkObs)

	stop := make(chan struct{})
	var stopOnce sync.Once
	closeStop := func() { stopOnce.Do(func() { close(stop) }) }

	listeners := make([]transport.Listener, regions)
	servers := make([]*edge.Server, regions)
	startEdge := func(i int, seed int64) error {
		l, err := net.Listen(fmt.Sprintf("edge-%d", i))
		if err != nil {
			return err
		}
		listeners[i] = vehFault.WrapListener(l)
		servers[i] = edge.NewServer(i, payoffs.Lattice(), seed)
		servers[i].Instrument(o)
		go servers[i].Serve(listeners[i])
		return nil
	}
	for i := 0; i < regions; i++ {
		if err := startEdge(i, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Teardown order matters: stop the clients' reconnect loops, then kill
	// the listeners and servers so blocked clients unblock, then wait for
	// the client goroutines. Runs on both the success and t.Fatal paths.
	var clientWG sync.WaitGroup
	teardown := func() {
		closeStop()
		for _, l := range listeners {
			_ = l.Close()
		}
		for _, s := range servers {
			s.Close()
		}
		clientWG.Wait()
	}
	defer teardown()

	newLink := func(i int) *edge.CloudLink {
		return &edge.CloudLink{
			Edge: i,
			Dialer: &transport.Dialer{
				Dial: func() (transport.Conn, error) {
					c, err := net.Dial("cloud")
					if err != nil {
						return nil, err
					}
					return linkFault.WrapConn(c), nil
				},
				MaxAttempts: 10,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(1000 + i),
			},
			ReplyTimeout: time.Second,
			Obs:          o,
		}
	}

	// Vehicle fleets: reconnecting clients over faulty links.
	clientErr := make(chan error, regions*perRegion)
	nextID := 1
	for i := 0; i < regions; i++ {
		region := i
		for v := 0; v < perRegion; v++ {
			prof := vehicle.Profile{
				ID:            nextID,
				Equipped:      sensor.MaskAll,
				Desired:       sensor.MaskAll,
				PrivacyWeight: 1,
				Beta:          beta,
				Tau:           tau,
			}
			nextID++
			agent, err := vehicle.NewAgent(prof, payoffs, int64(5000+prof.ID))
			if err != nil {
				t.Fatal(err)
			}
			client := &vehicle.Client{
				Agent:           agent,
				Mu:              mu,
				Cap:             sensor.TableIII(),
				RegisterTimeout: 250 * time.Millisecond,
				Stop:            stop,
				Obs:             o,
			}
			dialer := &transport.Dialer{
				Dial: func() (transport.Conn, error) {
					c, err := net.Dial(fmt.Sprintf("edge-%d", region))
					if err != nil {
						return nil, err
					}
					return vehFault.WrapConn(c), nil
				},
				MaxAttempts: 60, // patient: must outlast the edge-1 outage
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(7000 + prof.ID),
			}
			clientWG.Add(1)
			go func() {
				defer clientWG.Done()
				if err := client.RunWithReconnect(dialer); err != nil {
					clientErr <- err
				}
			}()
		}
	}

	waitRegistered := func(i int) error {
		deadline := time.Now().Add(10 * time.Second)
		for servers[i].NumVehicles() < perRegion {
			if time.Now().After(deadline) {
				return fmt.Errorf("edge %d: only %d/%d vehicles registered",
					i, servers[i].NumVehicles(), perRegion)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}

	var converged atomic.Bool
	var killed atomic.Bool
	driver := func(i int) error {
		if err := waitRegistered(i); err != nil {
			return err
		}
		link := newLink(i)
		defer func() { _ = link.Close() }()
		x := float64(x0)
		for round := 0; round < maxRounds; round++ {
			if converged.Load() {
				return nil
			}
			census, err := servers[i].RunRound(round, x, roundTimeout)
			if err != nil {
				return fmt.Errorf("edge %d round %d: %w", i, round, err)
			}
			next, err := link.Report(round, census)
			if err != nil {
				// Degraded round: cloud unreachable; keep the current ratio.
				continue
			}
			x = next
			if cloudSrv.Converged() {
				converged.Store(true)
				return nil
			}

			// Mid-run chaos: kill edge 1 entirely — listener, server, cloud
			// link — leave it dark long enough for the cloud's deadline to
			// fire, then restart it and let the vehicles re-register.
			if i == 1 && round == killAtRound {
				killed.Store(true)
				_ = link.Close()
				_ = listeners[1].Close()
				servers[1].Close()
				time.Sleep(outage)
				if err := startEdge(1, 999); err != nil {
					return fmt.Errorf("restarting edge 1: %w", err)
				}
				if err := waitRegistered(1); err != nil {
					return fmt.Errorf("after restart: %w", err)
				}
				link = newLink(1)
			}
		}
		return nil
	}

	errs := make([]error, regions)
	var wg sync.WaitGroup
	for i := 0; i < regions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = driver(i)
		}()
	}
	wg.Wait()
	teardown()

	var clientFailures []error
	for {
		select {
		case err := <-clientErr:
			clientFailures = append(clientFailures, err)
			continue
		default:
		}
		break
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("driver %d: %v (client errors: %v)", i, err, clientFailures)
		}
	}
	if len(clientFailures) > 0 {
		t.Fatalf("vehicle clients failed: %v", clientFailures)
	}

	if !killed.Load() {
		t.Fatal("edge 1 was never killed — chaos script did not run")
	}
	if !converged.Load() {
		t.Fatalf("run did not converge to the desired field within %d rounds (cloud state: %+v)",
			maxRounds, cloudSrv.State().P)
	}
	// The whole system's health signals — cloud degradation, vehicle-link
	// faults, redials, reconnects — must be visible through the one shared
	// registry snapshot.
	snap := o.Registry().Snapshot()
	for _, want := range []struct {
		name string
		min  float64
	}{
		{"consensus_rounds_total", 1},
		{"consensus_degraded_rounds_total", 1},
		{"transport_fault_dropped_total", 1},
		{"transport_fault_delayed_total", 1},
		{"edge_cloud_redials_total", 1},
		{"vehicle_reconnects_total", 1},
	} {
		v, ok := counterValue(snap, want.name)
		if !ok {
			t.Errorf("registry snapshot is missing %s", want.name)
			continue
		}
		if v < want.min {
			t.Errorf("%s = %v, want >= %v", want.name, v, want.min)
		}
	}
	// The cloud-link injector reports on its own registry, so its forced
	// disconnects are distinguishable from the vehicle-link series above.
	disconnects, _ := counterValue(linkObs.Registry().Snapshot(), "transport_fault_disconnects_total")
	if disconnects == 0 {
		t.Error("cloud-link fault injection never disconnected")
	}
	degraded, _ := counterValue(snap, "consensus_degraded_rounds_total")
	dropped, _ := counterValue(snap, "transport_fault_dropped_total")
	delayed, _ := counterValue(snap, "transport_fault_delayed_total")
	t.Logf("chaos run: degraded=%v, vehicle faults dropped=%v delayed=%v, link disconnects=%v",
		degraded, dropped, delayed, disconnects)
}

// TestMixedCodecConsensusRound: one binary-codec edge and one JSON-codec
// edge report to the same cloud over real TCP and complete full consensus
// rounds (census → barrier → FDS → next-round ratio). Version negotiation
// is per connection — the dialer declares, the acceptor adopts — so mixed
// fleets interoperate during a rolling codec upgrade.
func TestMixedCodecConsensusRound(t *testing.T) {
	const regions = 2
	payoffs := lattice.PaperPayoffs()
	model, err := game.NewModel(payoffs, chaosGraph{}, []float64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	k := model.K()
	fds, err := policy.NewFDS(model, policy.NewFreeField(regions, k), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cloudSrv, err := cloud.NewServer(fds, game.NewUniformState(regions, k, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer cloudSrv.Close()

	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go cloudSrv.Serve(l)

	codecs := [regions]struct {
		name string
		opts []transport.TCPOption
	}{
		{"binary", []transport.TCPOption{transport.WithCodec(transport.Binary)}},
		{"json", nil}, // dialer default
	}
	var conns [regions]transport.Conn
	var links [regions]*edge.CloudLink
	for i := range links {
		i := i
		links[i] = &edge.CloudLink{
			Edge: i,
			Dialer: &transport.Dialer{
				Dial: func() (transport.Conn, error) {
					c, err := transport.DialTCP(l.Addr(), codecs[i].opts...)
					if err == nil {
						conns[i] = c
					}
					return c, err
				},
				MaxAttempts: 3,
				BaseDelay:   time.Millisecond,
				MaxDelay:    10 * time.Millisecond,
				Seed:        int64(i + 1),
			},
			ReplyTimeout: 5 * time.Second,
		}
		defer links[i].Close()
	}

	for round := 0; round < 3; round++ {
		var next [regions]float64
		var errs [regions]error
		var wg sync.WaitGroup
		for i := range links {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				counts := make([]int, k)
				counts[0] = 8 - i
				counts[1] = 2 + i
				next[i], errs[i] = links[i].Report(round, counts)
			}()
		}
		wg.Wait()
		for i := range errs {
			if errs[i] != nil {
				t.Fatalf("%s edge, round %d: %v", codecs[i].name, round, errs[i])
			}
			if next[i] < 0 || next[i] > 1 {
				t.Errorf("%s edge, round %d: ratio = %v out of [0,1]", codecs[i].name, round, next[i])
			}
		}
	}

	// Each link really negotiated its declared codec on the shared cloud.
	for i, c := range conns {
		if c == nil {
			t.Fatalf("edge %d never dialed", i)
		}
		if got := transport.CodecOf(c); got != codecs[i].name {
			t.Errorf("edge %d codec = %q, want %q", i, got, codecs[i].name)
		}
	}
}

// TestRunAgentSimWithFaults: the packaged agent simulation survives a lossy
// transport when configured with a FaultConfig (drops, delays, reconnecting
// clients) and still completes its rounds. Codec forces every in-process
// message through the binary wire codec, so the serialization path runs
// under fault injection too.
func TestRunAgentSimWithFaults(t *testing.T) {
	w := buildTinyWorld(t, CoeffBC)
	opts := MacroOptions{}
	start, err := w.EquilibriumAt(0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	target, err := w.EquilibriumFrom(start, 0.85, 0.1, opts)
	if err != nil {
		t.Fatal(err)
	}
	field, err := FieldFromState(target, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.RunAgentSim(AgentSimConfig{
		VehiclesPerRegion: 10,
		Rounds:            5,
		Field:             field,
		Seed:              11,
		X0:                0.5,
		InitialShares:     start.P,
		RoundTimeout:      300 * time.Millisecond,
		Codec:             "binary",
		Fault: &transport.FaultConfig{
			DropProb: 0.05,
			MinDelay: time.Millisecond,
			MaxDelay: 5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 {
		t.Errorf("completed %d rounds, want 5", res.Rounds)
	}
}

// TestChaosCloudCrashRestartRecovers runs the full pipeline with durability
// and membership leases enabled, kill -9s the cloud mid-run (listener and
// server torn down with no drain), restarts it from the same state
// directory, and later kills edge 1 with its heartbeat so the lease-based
// quorum — not the round-deadline backstop alone — unblocks the healthy
// region. The restarted cloud must resume bit-identical to the killed one
// and the whole system must still converge to the FDS desired field.
func TestChaosCloudCrashRestartRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes several seconds")
	}
	const (
		regions         = 2
		perRegion       = 12
		maxRounds       = 80
		beta            = 4.0
		tau             = 0.25
		mu              = 0.5
		lambda          = 0.1
		x0              = 0.3
		targetX         = 0.85
		fieldEps        = 0.2
		roundDeadline   = 400 * time.Millisecond
		roundTimeout    = 150 * time.Millisecond
		leaseTTL        = 300 * time.Millisecond
		leaseInterval   = 100 * time.Millisecond
		cloudKillLatest = 3                      // kill the cloud once it has applied this many rounds
		edgeKillRound   = 9                      // kill edge 1 after the cloud is back
		outage          = 600 * time.Millisecond // > leaseTTL: forces an eviction
	)

	payoffs := lattice.PaperPayoffs()
	model, err := game.NewModel(payoffs, chaosGraph{}, []float64{beta, beta})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := game.NewLogitDynamics(model, tau, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	probe := game.NewUniformState(regions, model.K(), x0)
	for ramping := true; ramping; {
		ramping = false
		for i := range probe.X {
			if probe.X[i]+lambda < targetX {
				probe.X[i] += lambda
				ramping = true
			} else {
				probe.X[i] = targetX
			}
		}
		if err := dyn.Step(probe); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dyn.Equilibrium(probe, 1e-9, 20000); err != nil {
		t.Fatal(err)
	}
	field, err := FieldFromState(probe, fieldEps)
	if err != nil {
		t.Fatal(err)
	}

	o := obs.New()
	stateDir := t.TempDir()
	newCloud := func() (*cloud.Server, error) {
		// The FDS controller is stateful, so every incarnation gets a fresh
		// one; Open restores its memory from the checkpoint.
		fds, err := policy.NewFDS(model, field, lambda)
		if err != nil {
			return nil, err
		}
		srv, err := cloud.NewServer(fds, game.NewUniformState(regions, model.K(), x0))
		if err != nil {
			return nil, err
		}
		srv.Instrument(o)
		srv.SetRoundDeadline(roundDeadline)
		if err := srv.Open(stateDir); err != nil {
			srv.Close()
			return nil, err
		}
		return srv, nil
	}

	net := transport.NewInprocNetwork()
	var cloudMu sync.Mutex
	var curCloud *cloud.Server
	var curCloudL transport.Listener
	startCloud := func() error {
		srv, err := newCloud()
		if err != nil {
			return err
		}
		l, err := net.Listen("cloud")
		if err != nil {
			srv.Close()
			return err
		}
		go srv.Serve(l)
		cloudMu.Lock()
		curCloud, curCloudL = srv, l
		cloudMu.Unlock()
		return nil
	}
	getCloud := func() *cloud.Server {
		cloudMu.Lock()
		defer cloudMu.Unlock()
		return curCloud
	}
	if err := startCloud(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cloudMu.Lock()
		l, srv := curCloudL, curCloud
		cloudMu.Unlock()
		_ = l.Close()
		srv.Close()
	}()

	stop := make(chan struct{})
	var stopOnce sync.Once
	closeStop := func() { stopOnce.Do(func() { close(stop) }) }

	// Heartbeats: one per edge on a dedicated connection, individually
	// stoppable so the edge-1 kill takes its lease down with it.
	var hbWG sync.WaitGroup
	hbStop := make([]chan struct{}, regions)
	startHeartbeat := func(i int) {
		hbStop[i] = make(chan struct{})
		hb := &edge.Heartbeat{
			Edge: i,
			Dialer: &transport.Dialer{
				Dial:        func() (transport.Conn, error) { return net.Dial("cloud") },
				MaxAttempts: 5,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(300 + i),
			},
			TTL:      leaseTTL,
			Interval: leaseInterval,
			Obs:      o,
		}
		ch := hbStop[i]
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			hb.Run(ch)
		}()
	}

	listeners := make([]transport.Listener, regions)
	servers := make([]*edge.Server, regions)
	startEdge := func(i int, seed int64) error {
		l, err := net.Listen(fmt.Sprintf("edge-%d", i))
		if err != nil {
			return err
		}
		listeners[i] = l
		servers[i] = edge.NewServer(i, payoffs.Lattice(), seed)
		servers[i].Instrument(o)
		go servers[i].Serve(listeners[i])
		startHeartbeat(i)
		return nil
	}
	for i := 0; i < regions; i++ {
		if err := startEdge(i, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	var clientWG sync.WaitGroup
	teardown := func() {
		closeStop()
		for _, ch := range hbStop {
			select {
			case <-ch:
			default:
				close(ch)
			}
		}
		for _, l := range listeners {
			_ = l.Close()
		}
		for _, s := range servers {
			s.Close()
		}
		clientWG.Wait()
		hbWG.Wait()
	}
	defer teardown()

	newLink := func(i int) *edge.CloudLink {
		return &edge.CloudLink{
			Edge: i,
			Dialer: &transport.Dialer{
				Dial:        func() (transport.Conn, error) { return net.Dial("cloud") },
				MaxAttempts: 10,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(1000 + i),
			},
			ReplyTimeout: time.Second,
			Obs:          o,
		}
	}

	clientErr := make(chan error, regions*perRegion)
	nextID := 1
	for i := 0; i < regions; i++ {
		region := i
		for v := 0; v < perRegion; v++ {
			prof := vehicle.Profile{
				ID:            nextID,
				Equipped:      sensor.MaskAll,
				Desired:       sensor.MaskAll,
				PrivacyWeight: 1,
				Beta:          beta,
				Tau:           tau,
			}
			nextID++
			agent, err := vehicle.NewAgent(prof, payoffs, int64(5000+prof.ID))
			if err != nil {
				t.Fatal(err)
			}
			client := &vehicle.Client{
				Agent:           agent,
				Mu:              mu,
				Cap:             sensor.TableIII(),
				RegisterTimeout: 250 * time.Millisecond,
				Stop:            stop,
				Obs:             o,
			}
			dialer := &transport.Dialer{
				Dial:        func() (transport.Conn, error) { return net.Dial(fmt.Sprintf("edge-%d", region)) },
				MaxAttempts: 60,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(7000 + prof.ID),
			}
			clientWG.Add(1)
			go func() {
				defer clientWG.Done()
				if err := client.RunWithReconnect(dialer); err != nil {
					clientErr <- err
				}
			}()
		}
	}

	waitRegistered := func(i int) error {
		deadline := time.Now().Add(10 * time.Second)
		for servers[i].NumVehicles() < perRegion {
			if time.Now().After(deadline) {
				return fmt.Errorf("edge %d: only %d/%d vehicles registered",
					i, servers[i].NumVehicles(), perRegion)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}

	// The killer: once the cloud has applied cloudKillLatest rounds, tear it
	// down with no drain — the moral equivalent of kill -9 — and bring up a
	// fresh incarnation from the same state directory. The recovered server
	// must resume exactly where the corpse stopped.
	killerErr := make(chan error, 1)
	var cloudKilled atomic.Bool
	go func() {
		for getCloud().Latest() < cloudKillLatest {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		cloudMu.Lock()
		old, oldL := curCloud, curCloudL
		cloudMu.Unlock()
		_ = oldL.Close()
		old.Close()
		preLatest := old.Latest()
		preState := old.State()
		if err := startCloud(); err != nil {
			killerErr <- fmt.Errorf("restarting cloud: %w", err)
			return
		}
		srv := getCloud()
		if srv.Latest() != preLatest {
			killerErr <- fmt.Errorf("recovered latest = %d, killed server had %d", srv.Latest(), preLatest)
			return
		}
		if !reflect.DeepEqual(srv.State(), preState) {
			killerErr <- fmt.Errorf("recovered state differs from the killed server's")
			return
		}
		cloudKilled.Store(true)
	}()

	var converged atomic.Bool
	var edgeKilled atomic.Bool
	driver := func(i int) error {
		if err := waitRegistered(i); err != nil {
			return err
		}
		link := newLink(i)
		defer func() { _ = link.Close() }()
		x := float64(x0)
		for round := 0; round < maxRounds; round++ {
			if converged.Load() {
				return nil
			}
			census, err := servers[i].RunRound(round, x, roundTimeout)
			if err != nil {
				return fmt.Errorf("edge %d round %d: %w", i, round, err)
			}
			next, err := link.Report(round, census)
			if err != nil {
				// Cloud unreachable (possibly mid-restart): keep the ratio.
				continue
			}
			x = next
			// Fault-free in-proc rounds are fast enough to converge before
			// the chaos script fires; keep driving until both kills have
			// happened so convergence is demonstrated on the survivor.
			if cloudKilled.Load() && edgeKilled.Load() && getCloud().Converged() {
				converged.Store(true)
				return nil
			}

			// Edge chaos, after the cloud is back: kill edge 1 and its
			// heartbeat, stay dark past the lease TTL so the cloud evicts
			// it, then restart and re-lease.
			if i == 1 && round >= edgeKillRound && cloudKilled.Load() && !edgeKilled.Load() {
				// Only kill once the restarted cloud holds this edge's lease,
				// otherwise there is nothing to evict and the test would pass
				// vacuously through the round-deadline backstop.
				leased := func() bool {
					for _, id := range getCloud().LiveLeases() {
						if id == 1 {
							return true
						}
					}
					return false
				}
				for deadline := time.Now().Add(5 * time.Second); !leased(); {
					if time.Now().After(deadline) {
						return fmt.Errorf("edge 1 never re-leased on the restarted cloud")
					}
					time.Sleep(5 * time.Millisecond)
				}
				edgeKilled.Store(true)
				close(hbStop[1])
				_ = link.Close()
				_ = listeners[1].Close()
				servers[1].Close()
				time.Sleep(outage)
				if err := startEdge(1, 999); err != nil {
					return fmt.Errorf("restarting edge 1: %w", err)
				}
				if err := waitRegistered(1); err != nil {
					return fmt.Errorf("after restart: %w", err)
				}
				link = newLink(1)
			}
		}
		return nil
	}

	errs := make([]error, regions)
	var wg sync.WaitGroup
	for i := 0; i < regions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = driver(i)
		}()
	}
	wg.Wait()
	teardown()

	select {
	case err := <-killerErr:
		t.Fatal(err)
	default:
	}
	var clientFailures []error
	for {
		select {
		case err := <-clientErr:
			clientFailures = append(clientFailures, err)
			continue
		default:
		}
		break
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("driver %d: %v (client errors: %v)", i, err, clientFailures)
		}
	}
	if len(clientFailures) > 0 {
		t.Fatalf("vehicle clients failed: %v", clientFailures)
	}
	if !cloudKilled.Load() {
		t.Fatal("the cloud was never killed — chaos script did not run")
	}
	if !edgeKilled.Load() {
		t.Fatal("edge 1 was never killed — chaos script did not run")
	}
	if !converged.Load() {
		t.Fatalf("run did not converge to the desired field within %d rounds (cloud state: %+v)",
			maxRounds, getCloud().State().P)
	}

	// The FDS trajectory demonstrably continued from the checkpoint
	// (bit-identical resume is asserted by the killer); the registry must
	// carry the durability and membership series for the whole run.
	snap := o.Registry().Snapshot()
	for _, want := range []struct {
		name string
		min  float64
	}{
		{"durable_recoveries_total", 1},
		{"journal_replay_records_total", 1},
		{"lease_evictions_total", 1},
		{"lease_renewals_total", 1},
		{"edge_lease_renewals_total", 1},
		{"consensus_rounds_total", float64(cloudKillLatest)},
		{"consensus_degraded_rounds_total", 1},
		{"vehicle_reconnects_total", 1},
	} {
		v, ok := counterValue(snap, want.name)
		if !ok {
			t.Errorf("registry snapshot is missing %s", want.name)
			continue
		}
		if v < want.min {
			t.Errorf("%s = %v, want >= %v", want.name, v, want.min)
		}
	}
	rounds, _ := counterValue(snap, "consensus_rounds_total")
	degradedRounds, _ := counterValue(snap, "consensus_degraded_rounds_total")
	t.Logf("crash-restart chaos: latest=%d, rounds=%v, degraded=%v", getCloud().Latest(), rounds, degradedRounds)
}

// TestTCPCrashRestartResumesFromCheckpoint is the wire-level recovery
// check: a cloud over real TCP is killed after a few rounds and a fresh
// process-equivalent (new server, new port, same state directory) must
// resume at the same round with a bit-identical state, answer a late
// census from the recovered ratios, and complete the next round.
func TestTCPCrashRestartResumesFromCheckpoint(t *testing.T) {
	const regions = 2
	payoffs := lattice.PaperPayoffs()
	model, err := game.NewModel(payoffs, chaosGraph{}, []float64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	k := model.K()
	stateDir := t.TempDir()
	newCloud := func() (*cloud.Server, error) {
		fds, err := policy.NewFDS(model, policy.NewFreeField(regions, k), 0.1)
		if err != nil {
			return nil, err
		}
		srv, err := cloud.NewServer(fds, game.NewUniformState(regions, k, 0.5))
		if err != nil {
			return nil, err
		}
		if err := srv.Open(stateDir); err != nil {
			srv.Close()
			return nil, err
		}
		return srv, nil
	}

	srv1, err := newCloud()
	if err != nil {
		t.Fatal(err)
	}
	l1, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv1.Serve(l1)

	var addr atomic.Value
	addr.Store(l1.Addr())
	newLink := func(i int) *edge.CloudLink {
		return &edge.CloudLink{
			Edge: i,
			Dialer: &transport.Dialer{
				Dial:        func() (transport.Conn, error) { return transport.DialTCP(addr.Load().(string)) },
				MaxAttempts: 8,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    100 * time.Millisecond,
				Seed:        int64(i + 1),
			},
			ReplyTimeout: 5 * time.Second,
		}
	}
	links := [regions]*edge.CloudLink{newLink(0), newLink(1)}
	defer func() {
		for _, l := range links {
			_ = l.Close()
		}
	}()
	counts := func(i int) []int {
		c := make([]int, k)
		c[0] = 7 - i
		c[1] = 3 + i
		return c
	}
	runRound := func(round int) error {
		var wg sync.WaitGroup
		errs := make([]error, regions)
		for i := range links {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, errs[i] = links[i].Report(round, counts(i))
			}()
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("edge %d round %d: %w", i, round, err)
			}
		}
		return nil
	}
	for round := 0; round < 3; round++ {
		if err := runRound(round); err != nil {
			t.Fatal(err)
		}
	}
	preLatest := srv1.Latest()
	preState := srv1.State()
	if preLatest != 2 {
		t.Fatalf("latest after 3 rounds = %d, want 2", preLatest)
	}

	// kill -9: listener and server die with no drain.
	_ = l1.Close()
	srv1.Close()

	srv2, err := newCloud()
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if srv2.Latest() != preLatest {
		t.Fatalf("recovered latest = %d, want %d", srv2.Latest(), preLatest)
	}
	if !reflect.DeepEqual(srv2.State(), preState) {
		t.Fatalf("recovered state differs:\n got %+v\nwant %+v", srv2.State(), preState)
	}
	snap := srv2.Registry().Snapshot()
	if v, _ := counterValue(snap, "durable_recoveries_total"); v != 1 {
		t.Errorf("durable_recoveries_total = %v, want 1", v)
	}
	if v, _ := counterValue(snap, "journal_replay_records_total"); v != 3 {
		t.Errorf("journal_replay_records_total = %v, want 3", v)
	}

	l2, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	addr.Store(l2.Addr())
	go srv2.Serve(l2)

	// A late census for an already-applied round is answered from the
	// recovered state, not re-barriered.
	x, err := links[0].Report(1, counts(0))
	if err != nil {
		t.Fatalf("late census after recovery: %v", err)
	}
	if want := preState.X[0]; x != want {
		t.Errorf("late census ratio = %v, want recovered %v", x, want)
	}

	// And consensus continues: the next round completes on the new server.
	if err := runRound(preLatest + 1); err != nil {
		t.Fatal(err)
	}
	if srv2.Latest() != preLatest+1 {
		t.Errorf("latest after resumed round = %d, want %d", srv2.Latest(), preLatest+1)
	}
}
