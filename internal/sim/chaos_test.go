package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/edge"
	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/sensor"
	"repro/internal/transport"
	"repro/internal/vehicle"
)

// counterValue reads one counter's value out of a registry snapshot.
func counterValue(points []obs.Point, name string) (float64, bool) {
	for _, p := range points {
		if p.Name == name && len(p.Labels) == 0 {
			return p.Value, true
		}
	}
	return 0, false
}

// chaosGraph is a 2-region graph with dominant intra-region frequency.
type chaosGraph struct{}

func (chaosGraph) M() int { return 2 }
func (chaosGraph) Gamma(i, j int) float64 {
	if i == j {
		return 0.9
	}
	return 0.1
}
func (chaosGraph) Neighbors(i int) []int {
	if i == 0 {
		return []int{1}
	}
	return []int{0}
}

// TestChaosPipelineConverges runs the full cloud/edge/vehicle pipeline over
// faulty links — 10% message drops, 1–20ms injected delays on every vehicle
// connection, and periodic forced disconnects on the cloud links — kills one
// edge server mid-run and restarts it, and requires the system to still
// converge to the FDS desired field. The cloud's round deadline keeps the
// healthy region progressing (degraded rounds) while the other is down.
func TestChaosPipelineConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes several seconds")
	}
	const (
		regions       = 2
		perRegion     = 16
		maxRounds     = 60
		beta          = 4.0
		tau           = 0.25
		mu            = 0.5
		lambda        = 0.1
		x0            = 0.3
		targetX       = 0.85
		fieldEps      = 0.2
		roundDeadline = 400 * time.Millisecond
		roundTimeout  = 150 * time.Millisecond
		killAtRound   = 6
		outage        = 600 * time.Millisecond // > roundDeadline: forces degraded rounds
	)

	payoffs := lattice.PaperPayoffs()
	model, err := game.NewModel(payoffs, chaosGraph{}, []float64{beta, beta})
	if err != nil {
		t.Fatal(err)
	}

	// Desired field: the regime reachable from x0 by adiabatic continuation
	// to the target ratio (same construction as cmd/cpnode's cloud role).
	dyn, err := game.NewLogitDynamics(model, tau, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	probe := game.NewUniformState(regions, model.K(), x0)
	for ramping := true; ramping; {
		ramping = false
		for i := range probe.X {
			if probe.X[i]+lambda < targetX {
				probe.X[i] += lambda
				ramping = true
			} else {
				probe.X[i] = targetX
			}
		}
		if err := dyn.Step(probe); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := dyn.Equilibrium(probe, 1e-9, 20000); err != nil {
		t.Fatal(err)
	}
	field, err := FieldFromState(probe, fieldEps)
	if err != nil {
		t.Fatal(err)
	}
	fds, err := policy.NewFDS(model, field, lambda)
	if err != nil {
		t.Fatal(err)
	}
	// One shared observer across the cloud, edges, vehicle fault injector,
	// cloud links, and vehicle clients: the assertions at the end read the
	// whole system's health from a single registry snapshot. The cloud-link
	// injector keeps its private registry so its Stats stay distinct from
	// the vehicle-link injector's.
	o := obs.New()
	cloudSrv, err := cloud.NewServer(fds, game.NewUniformState(regions, model.K(), x0))
	if err != nil {
		t.Fatal(err)
	}
	cloudSrv.Instrument(o)
	cloudSrv.SetRoundDeadline(roundDeadline)
	defer cloudSrv.Close()

	net := transport.NewInprocNetwork()
	cloudL, err := net.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	go cloudSrv.Serve(cloudL)
	defer cloudL.Close()

	// Vehicle links: drops and delays on both directions (dial side and
	// edge listener side). Cloud links: periodic forced disconnects.
	vehFault := transport.NewFault(transport.FaultConfig{
		Seed:     42,
		DropProb: 0.1,
		MinDelay: time.Millisecond,
		MaxDelay: 20 * time.Millisecond,
	})
	vehFault.Instrument(o)
	// Each Report passes ~2 messages, so every cloud link is force-dropped
	// every ~4 rounds and must redial + re-submit.
	linkFault := transport.NewFault(transport.FaultConfig{Seed: 7, DisconnectAfter: 8})

	stop := make(chan struct{})
	var stopOnce sync.Once
	closeStop := func() { stopOnce.Do(func() { close(stop) }) }

	listeners := make([]transport.Listener, regions)
	servers := make([]*edge.Server, regions)
	startEdge := func(i int, seed int64) error {
		l, err := net.Listen(fmt.Sprintf("edge-%d", i))
		if err != nil {
			return err
		}
		listeners[i] = vehFault.WrapListener(l)
		servers[i] = edge.NewServer(i, payoffs.Lattice(), seed)
		servers[i].Instrument(o)
		go servers[i].Serve(listeners[i])
		return nil
	}
	for i := 0; i < regions; i++ {
		if err := startEdge(i, int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Teardown order matters: stop the clients' reconnect loops, then kill
	// the listeners and servers so blocked clients unblock, then wait for
	// the client goroutines. Runs on both the success and t.Fatal paths.
	var clientWG sync.WaitGroup
	teardown := func() {
		closeStop()
		for _, l := range listeners {
			_ = l.Close()
		}
		for _, s := range servers {
			s.Close()
		}
		clientWG.Wait()
	}
	defer teardown()

	newLink := func(i int) *edge.CloudLink {
		return &edge.CloudLink{
			Edge: i,
			Dialer: &transport.Dialer{
				Dial: func() (transport.Conn, error) {
					c, err := net.Dial("cloud")
					if err != nil {
						return nil, err
					}
					return linkFault.WrapConn(c), nil
				},
				MaxAttempts: 10,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(1000 + i),
			},
			ReplyTimeout: time.Second,
			Obs:          o,
		}
	}

	// Vehicle fleets: reconnecting clients over faulty links.
	clientErr := make(chan error, regions*perRegion)
	nextID := 1
	for i := 0; i < regions; i++ {
		region := i
		for v := 0; v < perRegion; v++ {
			prof := vehicle.Profile{
				ID:            nextID,
				Equipped:      sensor.MaskAll,
				Desired:       sensor.MaskAll,
				PrivacyWeight: 1,
				Beta:          beta,
				Tau:           tau,
			}
			nextID++
			agent, err := vehicle.NewAgent(prof, payoffs, int64(5000+prof.ID))
			if err != nil {
				t.Fatal(err)
			}
			client := &vehicle.Client{
				Agent:           agent,
				Mu:              mu,
				Cap:             sensor.TableIII(),
				RegisterTimeout: 250 * time.Millisecond,
				Stop:            stop,
				Obs:             o,
			}
			dialer := &transport.Dialer{
				Dial: func() (transport.Conn, error) {
					c, err := net.Dial(fmt.Sprintf("edge-%d", region))
					if err != nil {
						return nil, err
					}
					return vehFault.WrapConn(c), nil
				},
				MaxAttempts: 60, // patient: must outlast the edge-1 outage
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(7000 + prof.ID),
			}
			clientWG.Add(1)
			go func() {
				defer clientWG.Done()
				if err := client.RunWithReconnect(dialer); err != nil {
					clientErr <- err
				}
			}()
		}
	}

	waitRegistered := func(i int) error {
		deadline := time.Now().Add(10 * time.Second)
		for servers[i].NumVehicles() < perRegion {
			if time.Now().After(deadline) {
				return fmt.Errorf("edge %d: only %d/%d vehicles registered",
					i, servers[i].NumVehicles(), perRegion)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}

	var converged atomic.Bool
	var killed atomic.Bool
	driver := func(i int) error {
		if err := waitRegistered(i); err != nil {
			return err
		}
		link := newLink(i)
		defer func() { _ = link.Close() }()
		x := float64(x0)
		for round := 0; round < maxRounds; round++ {
			if converged.Load() {
				return nil
			}
			census, err := servers[i].RunRound(round, x, roundTimeout)
			if err != nil {
				return fmt.Errorf("edge %d round %d: %w", i, round, err)
			}
			next, err := link.Report(round, census)
			if err != nil {
				// Degraded round: cloud unreachable; keep the current ratio.
				continue
			}
			x = next
			if cloudSrv.Converged() {
				converged.Store(true)
				return nil
			}

			// Mid-run chaos: kill edge 1 entirely — listener, server, cloud
			// link — leave it dark long enough for the cloud's deadline to
			// fire, then restart it and let the vehicles re-register.
			if i == 1 && round == killAtRound {
				killed.Store(true)
				_ = link.Close()
				_ = listeners[1].Close()
				servers[1].Close()
				time.Sleep(outage)
				if err := startEdge(1, 999); err != nil {
					return fmt.Errorf("restarting edge 1: %w", err)
				}
				if err := waitRegistered(1); err != nil {
					return fmt.Errorf("after restart: %w", err)
				}
				link = newLink(1)
			}
		}
		return nil
	}

	errs := make([]error, regions)
	var wg sync.WaitGroup
	for i := 0; i < regions; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = driver(i)
		}()
	}
	wg.Wait()
	teardown()

	var clientFailures []error
	for {
		select {
		case err := <-clientErr:
			clientFailures = append(clientFailures, err)
			continue
		default:
		}
		break
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("driver %d: %v (client errors: %v)", i, err, clientFailures)
		}
	}
	if len(clientFailures) > 0 {
		t.Fatalf("vehicle clients failed: %v", clientFailures)
	}

	if !killed.Load() {
		t.Fatal("edge 1 was never killed — chaos script did not run")
	}
	if !converged.Load() {
		t.Fatalf("run did not converge to the desired field within %d rounds (cloud state: %+v)",
			maxRounds, cloudSrv.State().P)
	}
	stats := cloudSrv.Stats()
	if stats.DegradedRounds < 1 {
		t.Errorf("cloud stats = %+v, want at least one degraded round while edge 1 was down", stats)
	}
	vf := vehFault.Stats()
	if vf.Dropped == 0 || vf.Delayed == 0 {
		t.Errorf("vehicle fault injection idle: %+v", vf)
	}
	if lf := linkFault.Stats(); lf.Disconnects == 0 {
		t.Errorf("cloud-link fault injection never disconnected: %+v", lf)
	}

	// The same health signals must be visible through the shared registry:
	// one snapshot carries the whole system's series.
	snap := o.Registry().Snapshot()
	for _, want := range []struct {
		name string
		min  float64
	}{
		{"consensus_rounds_total", 1},
		{"consensus_degraded_rounds_total", 1},
		{"transport_fault_dropped_total", 1},
		{"transport_fault_delayed_total", 1},
		{"edge_cloud_redials_total", 1},
		{"vehicle_reconnects_total", 1},
	} {
		v, ok := counterValue(snap, want.name)
		if !ok {
			t.Errorf("registry snapshot is missing %s", want.name)
			continue
		}
		if v < want.min {
			t.Errorf("%s = %v, want >= %v", want.name, v, want.min)
		}
	}
	// The deprecated typed views must agree with the registry they read from.
	if degraded, _ := counterValue(snap, "consensus_degraded_rounds_total"); int(degraded) != stats.DegradedRounds {
		t.Errorf("Stats().DegradedRounds = %d, registry says %v", stats.DegradedRounds, degraded)
	}
	if dropped, _ := counterValue(snap, "transport_fault_dropped_total"); int64(dropped) != vf.Dropped {
		t.Errorf("Stats().Dropped = %d, registry says %v", vf.Dropped, dropped)
	}
	t.Logf("chaos run: cloud %+v, vehicle faults %+v, link faults %+v, degraded=%d",
		stats, vf, linkFault.Stats(), stats.DegradedRounds)
}

// TestMixedCodecConsensusRound: one binary-codec edge and one JSON-codec
// edge report to the same cloud over real TCP and complete full consensus
// rounds (census → barrier → FDS → next-round ratio). Version negotiation
// is per connection — the dialer declares, the acceptor adopts — so mixed
// fleets interoperate during a rolling codec upgrade.
func TestMixedCodecConsensusRound(t *testing.T) {
	const regions = 2
	payoffs := lattice.PaperPayoffs()
	model, err := game.NewModel(payoffs, chaosGraph{}, []float64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	k := model.K()
	fds, err := policy.NewFDS(model, policy.NewFreeField(regions, k), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cloudSrv, err := cloud.NewServer(fds, game.NewUniformState(regions, k, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer cloudSrv.Close()

	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go cloudSrv.Serve(l)

	codecs := [regions]struct {
		name string
		opts []transport.TCPOption
	}{
		{"binary", []transport.TCPOption{transport.WithCodec(transport.Binary)}},
		{"json", nil}, // dialer default
	}
	var conns [regions]transport.Conn
	var links [regions]*edge.CloudLink
	for i := range links {
		i := i
		links[i] = &edge.CloudLink{
			Edge: i,
			Dialer: &transport.Dialer{
				Dial: func() (transport.Conn, error) {
					c, err := transport.DialTCP(l.Addr(), codecs[i].opts...)
					if err == nil {
						conns[i] = c
					}
					return c, err
				},
				MaxAttempts: 3,
				BaseDelay:   time.Millisecond,
				MaxDelay:    10 * time.Millisecond,
				Seed:        int64(i + 1),
			},
			ReplyTimeout: 5 * time.Second,
		}
		defer links[i].Close()
	}

	for round := 0; round < 3; round++ {
		var next [regions]float64
		var errs [regions]error
		var wg sync.WaitGroup
		for i := range links {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				counts := make([]int, k)
				counts[0] = 8 - i
				counts[1] = 2 + i
				next[i], errs[i] = links[i].Report(round, counts)
			}()
		}
		wg.Wait()
		for i := range errs {
			if errs[i] != nil {
				t.Fatalf("%s edge, round %d: %v", codecs[i].name, round, errs[i])
			}
			if next[i] < 0 || next[i] > 1 {
				t.Errorf("%s edge, round %d: ratio = %v out of [0,1]", codecs[i].name, round, next[i])
			}
		}
	}

	// Each link really negotiated its declared codec on the shared cloud.
	for i, c := range conns {
		if c == nil {
			t.Fatalf("edge %d never dialed", i)
		}
		if got := transport.CodecOf(c); got != codecs[i].name {
			t.Errorf("edge %d codec = %q, want %q", i, got, codecs[i].name)
		}
	}
}

// TestRunAgentSimWithFaults: the packaged agent simulation survives a lossy
// transport when configured with a FaultConfig (drops, delays, reconnecting
// clients) and still completes its rounds. Codec forces every in-process
// message through the binary wire codec, so the serialization path runs
// under fault injection too.
func TestRunAgentSimWithFaults(t *testing.T) {
	w := buildTinyWorld(t, CoeffBC)
	opts := MacroOptions{}
	start, err := w.EquilibriumAt(0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	target, err := w.EquilibriumFrom(start, 0.85, 0.1, opts)
	if err != nil {
		t.Fatal(err)
	}
	field, err := FieldFromState(target, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.RunAgentSim(AgentSimConfig{
		VehiclesPerRegion: 10,
		Rounds:            5,
		Field:             field,
		Seed:              11,
		X0:                0.5,
		InitialShares:     start.P,
		RoundTimeout:      300 * time.Millisecond,
		Codec:             "binary",
		Fault: &transport.FaultConfig{
			DropProb: 0.05,
			MinDelay: time.Millisecond,
			MaxDelay: 5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 5 {
		t.Errorf("completed %d rounds, want 5", res.Rounds)
	}
}
