package sim

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/policy"
)

// DynamicKind selects the decision dynamic for macroscopic runs.
type DynamicKind int

// Dynamics.
const (
	// DynReplicator is the paper's replicator dynamics (Eq. 5).
	DynReplicator DynamicKind = iota + 1
	// DynLogit is the smoothed-best-response dynamic (mean field of the
	// vehicle agents).
	DynLogit
)

// MacroOptions tunes a macroscopic run.
type MacroOptions struct {
	// Dynamic selects the decision dynamic (default DynLogit).
	Dynamic DynamicKind
	// Eta is the replicator step size (default 1).
	Eta float64
	// Tau and Mu parameterize the logit dynamic (defaults 0.15, 0.5).
	Tau, Mu float64
	// X0 is the initial sharing ratio in every region (default 0.5).
	X0 float64
	// Lambda is the FDS per-round ratio step limit (default 0.1).
	Lambda float64
	// MaxRounds bounds the run (default 500).
	MaxRounds int
}

func (o *MacroOptions) fill() {
	if o.Dynamic == 0 {
		o.Dynamic = DynLogit
	}
	if o.Eta <= 0 {
		o.Eta = 1
	}
	if o.Tau <= 0 {
		o.Tau = 0.15
	}
	if o.Mu <= 0 {
		o.Mu = 0.5
	}
	if o.X0 == 0 {
		o.X0 = 0.5
	}
	if o.Lambda <= 0 {
		o.Lambda = 0.1
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 500
	}
}

// NewStepper builds the selected dynamic over the world's model.
func (w *World) NewStepper(opts MacroOptions) (game.Stepper, error) {
	opts.fill()
	switch opts.Dynamic {
	case DynReplicator:
		return game.NewDynamics(w.Model, opts.Eta)
	case DynLogit:
		return game.NewLogitDynamics(w.Model, opts.Tau, opts.Mu)
	default:
		return nil, fmt.Errorf("sim: unknown dynamic %d", int(opts.Dynamic))
	}
}

// EquilibriumAt runs the logit dynamic at a fixed sharing ratio until it
// settles and returns the resulting state. This is how reachable desired
// decision fields are constructed for the experiments: the field the paper
// prescribes for a weather condition corresponds to the equilibrium of some
// reference ratio.
func (w *World) EquilibriumAt(x float64, opts MacroOptions) (*game.State, error) {
	opts.fill()
	d, err := game.NewLogitDynamics(w.Model, opts.Tau, opts.Mu)
	if err != nil {
		return nil, err
	}
	s := game.NewUniformState(w.Model.M(), w.Model.K(), x)
	if _, err := d.Equilibrium(s, 1e-9, 20000); err != nil {
		return nil, fmt.Errorf("sim: equilibrium at x=%f: %w", x, err)
	}
	return s, nil
}

// EquilibriumFrom performs adiabatic continuation: starting from an
// existing population state, it ramps every region's sharing ratio toward
// xTarget by at most lambda per round (the same constraint FDS operates
// under, Eq. 13) while the dynamics run, then equilibrates at the target
// ratio. The result is the attractor actually reachable from the given
// start — the decision game has multiple stable equilibria (e.g. a
// {lidar,radar}-coordination trap next to the full-sharing regime), so the
// branch depends on the path, and experiment targets must be taken from
// the reachable branch.
func (w *World) EquilibriumFrom(start *game.State, xTarget, lambda float64, opts MacroOptions) (*game.State, error) {
	opts.fill()
	if xTarget < 0 || xTarget > 1 {
		return nil, fmt.Errorf("sim: target ratio %f outside [0,1]", xTarget)
	}
	if lambda <= 0 || lambda > 1 {
		return nil, fmt.Errorf("sim: lambda %f outside (0,1]", lambda)
	}
	d, err := game.NewLogitDynamics(w.Model, opts.Tau, opts.Mu)
	if err != nil {
		return nil, err
	}
	s := start.Clone()
	for ramping := true; ramping; {
		ramping = false
		for i := range s.X {
			diff := xTarget - s.X[i]
			switch {
			case diff > lambda:
				s.X[i] += lambda
				ramping = true
			case diff < -lambda:
				s.X[i] -= lambda
				ramping = true
			default:
				s.X[i] = xTarget
			}
		}
		if err := d.Step(s); err != nil {
			return nil, err
		}
	}
	if _, err := d.Equilibrium(s, 1e-9, 20000); err != nil {
		return nil, fmt.Errorf("sim: equilibrating at x=%f: %w", xTarget, err)
	}
	return s, nil
}

// FieldFromState builds a desired field equal to the state's distributions
// with tolerance eps — per region, so heterogeneous regions get their own
// targets.
func FieldFromState(s *game.State, eps float64) (*policy.Field, error) {
	if len(s.P) == 0 {
		return nil, fmt.Errorf("sim: empty state")
	}
	f := policy.NewFreeField(len(s.P), len(s.P[0]))
	for i, row := range s.P {
		for k, v := range row {
			lo := v - eps
			if lo < 0 {
				lo = 0
			}
			hi := v + eps
			if hi > 1 {
				hi = 1
			}
			f.P[i][k].Lo, f.P[i][k].Hi = lo, hi
		}
	}
	return f, nil
}

// MacroResult packages a macroscopic run.
type MacroResult struct {
	Shape *policy.ShapeResult
	// LowerBound is the analytic lower bound on the convergence time from
	// the same start (0 when not computed).
	LowerBound int
	// LowerBoundCapped reports whether the bound search hit its budget.
	LowerBoundCapped bool
}

// RunFDS executes a full FDS shaping run from the given start state toward
// field, and computes the analytic lower bound from the same start.
func (w *World) RunFDS(start *game.State, field *policy.Field, opts MacroOptions) (*MacroResult, error) {
	opts.fill()
	fds, err := policy.NewFDS(w.Model, field, opts.Lambda)
	if err != nil {
		return nil, err
	}
	stepper, err := w.NewStepper(opts)
	if err != nil {
		return nil, err
	}
	// Pick the bound matching the dynamic: the Prop. 4.1 envelope governs
	// the replicator, the revision-rate envelope governs the logit dynamic.
	var (
		lb     int
		capped bool
	)
	switch opts.Dynamic {
	case DynLogit:
		lb, capped, err = policy.RevisionLowerBound(w.Model, field, start, opts.Mu, opts.Tau, opts.Lambda, opts.MaxRounds)
	default:
		lb, capped, err = policy.AnalyticLowerBound(w.Model, field, start, opts.Lambda, opts.MaxRounds)
	}
	if err != nil {
		return nil, err
	}
	shape, err := fds.Shape(stepper, start, opts.MaxRounds)
	if err != nil {
		return nil, err
	}
	return &MacroResult{Shape: shape, LowerBound: lb, LowerBoundCapped: capped}, nil
}

// RunFixed executes the fixed-ratio baseline from the given start state.
func (w *World) RunFixed(start *game.State, field *policy.Field, opts MacroOptions) (*policy.ShapeResult, error) {
	opts.fill()
	stepper, err := w.NewStepper(opts)
	if err != nil {
		return nil, err
	}
	return policy.RunFixedRatio(stepper, start, field, opts.MaxRounds)
}
