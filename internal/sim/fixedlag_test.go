package sim

import (
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/edge"
	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/transport"
)

// fixedLagFDS builds a fresh deterministic controller; each run gets its own
// so controller memory never leaks between the baseline and the faulted run.
func fixedLagFDS(t *testing.T) *policy.FDS {
	t.Helper()
	m, err := game.NewModel(lattice.PaperPayoffs(), chaosGraph{}, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	target := []float64{0.7, 0, 0, 0, 0, 0, 0, 0}
	field, err := policy.NewUniformField(2, target, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for k := 1; k < 8; k++ {
			field.P[i][k].Lo, field.P[i][k].Hi = 0, 1
		}
	}
	fds, err := policy.NewFDS(m, field, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return fds
}

// fixedLagCounts is the scripted census for one (region, round): an
// open-loop deterministic function, so the lossless and faulted runs feed
// the cloud byte-identical inputs regardless of message timing.
func fixedLagCounts(region, round int) []int {
	counts := make([]int, 8)
	for k := range counts {
		counts[k] = 1 + (region*31+round*7+k*3)%5
	}
	return counts
}

// runFixedLagLossless folds every scripted census through full barriers —
// the zero-fault golden trajectory.
func runFixedLagLossless(t *testing.T, rounds int) (*game.State, uint32) {
	t.Helper()
	srv, err := cloud.NewServer(fixedLagFDS(t), game.NewUniformState(2, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = srv.Submit(transport.Census{Edge: i, Round: round, Counts: fixedLagCounts(i, round)})
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("lossless region %d round %d: %v", i, round, err)
			}
		}
	}
	return srv.State(), srv.StateHash()
}

// scrapeMetric fetches /metrics from addr and returns the named series value.
func scrapeMetric(t *testing.T, addr, name string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scraping metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in scrape", name)
	return 0
}

// TestFixedLagDeterminism drives the census pipeline through a fault
// injector that delays, reorders, and duplicates frames — but never drops
// them — with every straggler landing inside the cloud's fixed-lag window.
// The published ratio field must come out bit-identical (same CRC-32C golden
// hash) to the zero-fault run, on both the in-proc and TCP transports, with
// at least one actual rewind proving the machinery engaged. The hash is also
// asserted through a live /metrics scrape, the same way the CI chaos job
// reads it.
func TestFixedLagDeterminism(t *testing.T) {
	const (
		rounds        = 14
		lag           = 16 // > max lateness in rounds: every straggler is rewindable
		roundDeadline = 15 * time.Millisecond
	)
	goldenState, goldenHash := runFixedLagLossless(t, rounds)

	transports := []struct {
		name   string
		listen func(t *testing.T) (transport.Listener, func() (transport.Conn, error))
	}{
		{"inproc", func(t *testing.T) (transport.Listener, func() (transport.Conn, error)) {
			net := transport.NewInprocNetwork()
			l, err := net.Listen("cloud")
			if err != nil {
				t.Fatal(err)
			}
			return l, func() (transport.Conn, error) { return net.Dial("cloud") }
		}},
		{"tcp", func(t *testing.T) (transport.Listener, func() (transport.Conn, error)) {
			l, err := transport.ListenTCP("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addr := l.Addr()
			return l, func() (transport.Conn, error) { return transport.DialTCP(addr) }
		}},
	}
	for _, tc := range transports {
		t.Run(tc.name, func(t *testing.T) {
			o := obs.New()
			srv, err := cloud.NewServer(fixedLagFDS(t), game.NewUniformState(2, 8, 0.5))
			if err != nil {
				t.Fatal(err)
			}
			srv.SetFixedLag(lag)
			srv.Instrument(o)
			srv.SetRoundDeadline(roundDeadline)
			defer srv.Close()

			listener, dial := tc.listen(t)
			defer listener.Close()
			go srv.Serve(listener)

			httpSrv, err := obs.Serve("127.0.0.1:0", o)
			if err != nil {
				t.Fatal(err)
			}
			defer httpSrv.Close()

			// Delays up to ~3x the round deadline force degraded rounds whose
			// stragglers arrive mid-window; duplicated frames exercise the
			// dedup paths. No drops: every census eventually arrives.
			fault := transport.NewFault(transport.FaultConfig{
				Seed:     23,
				DupProb:  0.25,
				MinDelay: time.Millisecond,
				MaxDelay: 40 * time.Millisecond,
			})

			links := make([]*edge.CloudLink, 2)
			errs := make([]error, 2)
			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				links[i] = &edge.CloudLink{
					Edge: i,
					Dialer: &transport.Dialer{
						Dial: func() (transport.Conn, error) {
							c, err := dial()
							if err != nil {
								return nil, err
							}
							return fault.WrapConn(c), nil
						},
						MaxAttempts: 10,
						BaseDelay:   2 * time.Millisecond,
						MaxDelay:    50 * time.Millisecond,
						Seed:        int64(1000 + i),
					},
					ReplyTimeout: 3 * time.Second,
					Obs:          o,
				}
				defer links[i].Close()
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for round := 0; round < rounds; round++ {
						if _, err := links[i].Report(round, fixedLagCounts(i, round)); err != nil {
							errs[i] = fmt.Errorf("region %d round %d: %w", i, round, err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}

			// Stragglers may still be in flight (delayed duplicates); the run
			// has settled once the fold matches the golden hash.
			deadline := time.Now().Add(5 * time.Second)
			for srv.StateHash() != goldenHash && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if got := srv.StateHash(); got != goldenHash {
				t.Fatalf("state hash %08x, want golden %08x", got, goldenHash)
			}
			if !reflect.DeepEqual(srv.State(), goldenState) {
				t.Fatalf("ratio field differs from lossless run:\n got %+v\nwant %+v", srv.State(), goldenState)
			}

			snap := o.Registry().Snapshot()
			rewinds, _ := counterValue(snap, "consensus_rewinds_total")
			if rewinds < 1 {
				t.Errorf("consensus_rewinds_total = %v, want >= 1 (fault schedule produced no late censuses)", rewinds)
			}
			if corrections, _ := counterValue(snap, "consensus_ratio_corrections_total"); corrections < rewinds {
				t.Errorf("consensus_ratio_corrections_total = %v, want >= rewinds (%v)", corrections, rewinds)
			}
			if beyond, _ := counterValue(snap, "consensus_censuses_beyond_lag_total"); beyond != 0 {
				t.Errorf("consensus_censuses_beyond_lag_total = %v, want 0 (window must cover all stragglers)", beyond)
			}

			// The same verdict must be readable off the wire, as the CI chaos
			// job asserts it.
			if got := scrapeMetric(t, httpSrv.Addr(), "consensus_state_hash"); uint32(got) != goldenHash {
				t.Errorf("/metrics consensus_state_hash = %v, want %v", uint32(got), goldenHash)
			}
			if got := scrapeMetric(t, httpSrv.Addr(), "consensus_rewinds_total"); got != rewinds {
				t.Errorf("/metrics consensus_rewinds_total = %v, want %v", got, rewinds)
			}
		})
	}
}
