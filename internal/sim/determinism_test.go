package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"
)

// worldHash digests every artifact whose bits could be perturbed by a
// parallel build: road segments, per-segment coefficients, matched trace
// fixes, the region assignment, and the per-region beta vector. Two worlds
// with equal hashes are bit-identical in everything downstream experiments
// consume.
func worldHash(w *World) [sha256.Size]byte {
	h := sha256.New()
	put := func(v interface{}) {
		binary.Write(h, binary.LittleEndian, v)
	}
	putF := func(f float64) { put(math.Float64bits(f)) }

	for _, seg := range w.Net.Segments() {
		put(int64(seg.ID))
		putF(seg.Midpoint.Lat)
		putF(seg.Midpoint.Lon)
		putF(seg.LengthMeters)
		put(int64(seg.Class))
	}
	for _, c := range w.Weights {
		putF(c)
	}
	for _, fx := range w.Trace.Fixes() {
		put(int64(fx.Vehicle))
		put(fx.Time.UnixNano())
		putF(fx.Position.Lat)
		putF(fx.Position.Lon)
		putF(fx.SpeedMPS)
		put(int64(fx.Segment))
	}
	put(int64(w.Assignment.M))
	for _, r := range w.Assignment.Region {
		put(int64(r))
	}
	for _, s := range w.Assignment.Seeds {
		put(int64(s))
	}
	for _, b := range w.Beta {
		putF(b)
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

func determinismConfig(src CoeffSource, seed int64) WorldConfig {
	cfg := DefaultWorldConfig()
	cfg.Net.Rows, cfg.Net.Cols = 9, 10
	cfg.Net.Seed = seed
	cfg.Trace.Taxis, cfg.Trace.Transit = 24, 12
	cfg.Trace.Duration = 2 * time.Hour
	cfg.Trace.Seed = seed + 1
	cfg.Regions = 5
	cfg.Source = src
	return cfg
}

// TestBuildWorldDeterminism is the golden-hash gate for the parallel build
// pipeline: for the same seed, a build with Workers=1 and a build with
// Workers=NumCPU must produce bit-identical worlds. Run under -race this
// also exercises the worker pools for data races.
func TestBuildWorldDeterminism(t *testing.T) {
	par := runtime.NumCPU()
	if par < 2 {
		par = 2 // still exercises the pool machinery
	}
	for _, src := range []CoeffSource{CoeffBC, CoeffTD} {
		for _, seed := range []int64{1, 42, 20220710} {
			t.Run(fmt.Sprintf("%v/seed%d", src, seed), func(t *testing.T) {
				cfg := determinismConfig(src, seed)
				cfg.Workers = 1
				seq, err := BuildWorld(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Workers = par
				con, err := BuildWorld(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if worldHash(seq) != worldHash(con) {
					t.Errorf("Workers=1 and Workers=%d worlds differ for seed %d", par, seed)
				}
			})
		}
	}
}

// TestWorldHashSensitivity guards the hash itself: different seeds must hash
// differently, or the determinism test would pass vacuously.
func TestWorldHashSensitivity(t *testing.T) {
	a, err := BuildWorld(determinismConfig(CoeffBC, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWorld(determinismConfig(CoeffBC, 2))
	if err != nil {
		t.Fatal(err)
	}
	if worldHash(a) == worldHash(b) {
		t.Error("different seeds produced the same world hash")
	}
}
