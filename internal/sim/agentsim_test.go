package sim

import (
	"testing"

	"repro/internal/sensor"
)

// TestEquilibriumFromValidation covers the continuation helper's input
// checks.
func TestEquilibriumFromValidation(t *testing.T) {
	w := buildTinyWorld(t, CoeffBC)
	start, err := w.EquilibriumAt(0.5, MacroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.EquilibriumFrom(start, 1.5, 0.1, MacroOptions{}); err == nil {
		t.Error("ratio out of range must error")
	}
	if _, err := w.EquilibriumFrom(start, 0.8, 0, MacroOptions{}); err == nil {
		t.Error("zero lambda must error")
	}
	if _, err := w.EquilibriumFrom(start, 0.8, 1.5, MacroOptions{}); err == nil {
		t.Error("lambda > 1 must error")
	}
	// Continuation to the current ratio is a no-op plus equilibration.
	eq, err := w.EquilibriumFrom(start, 0.5, 0.1, MacroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eq.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRunAgentSimWithEdgePerception: enabling road-side perception strictly
// increases delivered items for the same seed and budget.
func TestRunAgentSimWithEdgePerception(t *testing.T) {
	w := buildTinyWorld(t, CoeffBC)
	opts := MacroOptions{}
	start, err := w.EquilibriumAt(0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	target, err := w.EquilibriumFrom(start, 0.85, 0.1, opts)
	if err != nil {
		t.Fatal(err)
	}
	field, err := FieldFromState(target, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	run := func(edgeShare sensor.Mask) int {
		res, err := w.RunAgentSim(AgentSimConfig{
			VehiclesPerRegion: 25,
			Rounds:            25,
			Field:             field,
			Seed:              11,
			X0:                0.5,
			InitialShares:     start.P,
			EdgeShare:         edgeShare,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalDeliveredItems
	}
	without := run(0)
	with := run(sensor.MaskOf(sensor.Radar, sensor.LiDAR))
	if with <= without {
		t.Errorf("edge perception should add deliveries: %d with vs %d without", with, without)
	}
}

// TestRunAgentSimDeterministicSeed: identical configs yield identical
// decision traces despite the concurrent runtime (all randomness is seeded
// and the protocol is round-synchronized).
func TestRunAgentSimDeterministicSeed(t *testing.T) {
	w := buildTinyWorld(t, CoeffBC)
	opts := MacroOptions{}
	start, err := w.EquilibriumAt(0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	target, err := w.EquilibriumFrom(start, 0.85, 0.1, opts)
	if err != nil {
		t.Fatal(err)
	}
	field, err := FieldFromState(target, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	cfg := AgentSimConfig{
		VehiclesPerRegion: 20,
		Rounds:            10,
		Field:             field,
		Seed:              5,
		X0:                0.5,
		InitialShares:     start.P,
	}
	a, err := w.RunAgentSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.RunAgentSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SharesTrace) != len(b.SharesTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.SharesTrace), len(b.SharesTrace))
	}
	for tIdx := range a.SharesTrace {
		for i := range a.SharesTrace[tIdx] {
			for k := range a.SharesTrace[tIdx][i] {
				if a.SharesTrace[tIdx][i][k] != b.SharesTrace[tIdx][i][k] {
					t.Fatalf("round %d region %d decision %d: %f vs %f",
						tIdx, i, k+1, a.SharesTrace[tIdx][i][k], b.SharesTrace[tIdx][i][k])
				}
			}
		}
	}
}
