package sim

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/edge"
	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/shard"
	"repro/internal/transport"
)

// shardedRegions is the sharded golden run's region count: enough for a
// 4-shard ring to give every coordinator a non-trivial group (the 16x4
// assignment is pinned by the golden table test in internal/shard).
const shardedRegions = 16

// ringGraph couples shardedRegions regions in a cycle, so every region
// interacts across whatever shard boundary the hash ring draws — the fold
// is genuinely global and any shard-local shortcut would change the hash.
type ringGraph struct{}

func (ringGraph) M() int { return shardedRegions }
func (ringGraph) Gamma(i, j int) float64 {
	if i == j {
		return 0.6
	}
	d := i - j
	if d < 0 {
		d = -d
	}
	if d == 1 || d == shardedRegions-1 {
		return 0.2
	}
	return 0
}
func (ringGraph) Neighbors(i int) []int {
	return []int{(i + shardedRegions - 1) % shardedRegions, (i + 1) % shardedRegions}
}

// shardedFDS builds a fresh controller over the ring graph per run.
func shardedFDS(t *testing.T) *policy.FDS {
	t.Helper()
	masses := make([]float64, shardedRegions)
	for i := range masses {
		masses[i] = 3
	}
	m, err := game.NewModel(lattice.PaperPayoffs(), ringGraph{}, masses)
	if err != nil {
		t.Fatal(err)
	}
	target := []float64{0.7, 0, 0, 0, 0, 0, 0, 0}
	field, err := policy.NewUniformField(shardedRegions, target, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shardedRegions; i++ {
		for k := 1; k < 8; k++ {
			field.P[i][k].Lo, field.P[i][k].Hi = 0, 1
		}
	}
	fds, err := policy.NewFDS(m, field, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return fds
}

// runShardedLossless folds every scripted census through full single-server
// barriers — the golden trajectory the sharded topology must reproduce.
func runShardedLossless(t *testing.T, rounds int) (*game.State, uint32) {
	t.Helper()
	srv, err := cloud.NewServer(shardedFDS(t), game.NewUniformState(shardedRegions, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make([]error, shardedRegions)
		for i := 0; i < shardedRegions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = srv.Submit(transport.Census{Edge: i, Round: round, Counts: fixedLagCounts(i, round)})
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("lossless region %d round %d: %v", i, round, err)
			}
		}
	}
	return srv.State(), srv.StateHash()
}

// listenTCPRetry binds addr, retrying briefly (a just-closed listener's
// port may take a moment to release).
func listenTCPRetry(t *testing.T, addr string) transport.Listener {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		l, err := transport.ListenTCP(addr)
		if err == nil {
			return l
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startShard builds a coordinator for the table's group i, opens its state
// dir, and serves it on l. The upstream link injects faults via wrap.
func startShard(t *testing.T, id int, table *shard.Table, aggAddr, stateDir string,
	l transport.Listener, wrap func(transport.Conn) transport.Conn) *shard.Coordinator {
	t.Helper()
	upstream := &edge.BatchLink{
		Shard: id,
		Dialer: &transport.Dialer{
			Dial: func() (transport.Conn, error) {
				c, err := transport.DialTCP(aggAddr)
				if err != nil {
					return nil, err
				}
				return wrap(c), nil
			},
			MaxAttempts: 20,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			Seed:        int64(500 + id),
		},
		ReplyTimeout: 3 * time.Second,
		Attempts:     10,
	}
	c, err := shard.NewCoordinator(shard.Config{
		ID:       id,
		Regions:  table.Regions(id),
		K:        8,
		Deadline: 25 * time.Millisecond,
		Upstream: upstream,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Open(stateDir); err != nil {
		t.Fatal(err)
	}
	go c.Serve(l)
	return c
}

// TestShardedGoldenHash runs the full 4-shard topology over real TCP — 8
// edge links reporting to their ring-assigned shard coordinators, shards
// batching each round upstream, the aggregator folding globally — through a
// fault injector that delays and duplicates frames, and kills/restarts one
// coordinator mid-run. The published ratio field must end bit-identical
// (same CRC-32C consensus_state_hash) to the lossless single-server run,
// with the restarted shard proving recovery via durable_recoveries_total.
func TestShardedGoldenHash(t *testing.T) {
	const (
		shards        = 4
		rounds        = 12
		lag           = rounds + 2 // every straggler, however late, is rewindable
		crashAfter    = 5         // aggregator round that triggers the shard kill
		roundDeadline = 60 * time.Millisecond
	)
	goldenState, goldenHash := runShardedLossless(t, rounds)

	o := obs.New()
	agg, err := cloud.NewServer(shardedFDS(t), game.NewUniformState(shardedRegions, 8, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	agg.SetFixedLag(lag)
	agg.Instrument(o)
	// The aggregator's deadline completes rounds only some shards reported
	// into (a killed shard's batch arrives late and rewinds instead).
	agg.SetRoundDeadline(roundDeadline)
	defer agg.Close()
	aggL, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer aggL.Close()
	go agg.Serve(aggL)

	fault := transport.NewFault(transport.FaultConfig{
		Seed:     23,
		DupProb:  0.25,
		MinDelay: time.Millisecond,
		MaxDelay: 40 * time.Millisecond,
	})

	ring, err := shard.NewRing(shard.Names(shards))
	if err != nil {
		t.Fatal(err)
	}
	table, err := shard.BuildTable(ring, shardedRegions)
	if err != nil {
		t.Fatal(err)
	}

	coords := make([]*shard.Coordinator, shards)
	listeners := make([]transport.Listener, shards)
	addrs := make([]string, shards)
	dirs := make([]string, shards)
	for i := 0; i < shards; i++ {
		l, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		addrs[i] = l.Addr()
		dirs[i] = t.TempDir()
		coords[i] = startShard(t, i, table, aggL.Addr(), dirs[i], l, fault.WrapConn)
	}
	defer func() {
		for _, c := range coords {
			c.Close()
		}
	}()

	// 8 edge links, each reporting its scripted censuses to the shard the
	// ring assigned its region, through the same fault injector.
	errs := make([]error, shardedRegions)
	var wg sync.WaitGroup
	for i := 0; i < shardedRegions; i++ {
		owner, err := table.Owner(i)
		if err != nil {
			t.Fatal(err)
		}
		addr := addrs[owner]
		link := &edge.CloudLink{
			Edge: i,
			Dialer: &transport.Dialer{
				Dial: func() (transport.Conn, error) {
					c, err := transport.DialTCP(addr)
					if err != nil {
						return nil, err
					}
					return fault.WrapConn(c), nil
				},
				MaxAttempts: 30,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(1000 + i),
			},
			ReplyTimeout: 3 * time.Second,
			Attempts:     20,
		}
		defer link.Close()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				if _, err := link.Report(round, fixedLagCounts(i, round)); err != nil {
					errs[i] = fmt.Errorf("region %d round %d: %w", i, round, err)
					return
				}
			}
		}(i)
	}

	// Kill one coordinator once the aggregator passes crashAfter, then
	// restart it on the same address from its state directory. Its edges
	// redial through the gap; its recovered watermark keeps re-submitted
	// censuses on the late path.
	const victim = 2
	crashDeadline := time.Now().Add(10 * time.Second)
	for agg.Latest() < crashAfter && time.Now().Before(crashDeadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if agg.Latest() < crashAfter {
		t.Fatalf("aggregator stalled before round %d (latest %d)", crashAfter, agg.Latest())
	}
	coords[victim].Close()
	listeners[victim].Close()
	listeners[victim] = listenTCPRetry(t, addrs[victim])
	coords[victim] = startShard(t, victim, table, aggL.Addr(), dirs[victim], listeners[victim], fault.WrapConn)
	if n := metricValue(t, coords[victim].Registry(), "durable_recoveries_total"); n < 1 {
		t.Errorf("restarted shard durable_recoveries_total = %v, want >= 1", n)
	}

	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Delayed duplicates and late shard forwards may still be in flight; the
	// run has settled once the fold matches the golden hash.
	deadline := time.Now().Add(10 * time.Second)
	for agg.StateHash() != goldenHash && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := agg.StateHash(); got != goldenHash {
		t.Fatalf("sharded state hash %08x, want single-server golden %08x", got, goldenHash)
	}
	if !reflect.DeepEqual(agg.State(), goldenState) {
		t.Fatalf("sharded ratio field differs from lossless run:\n got %+v\nwant %+v", agg.State(), goldenState)
	}

	snap := o.Registry().Snapshot()
	if rewinds, _ := counterValue(snap, "consensus_rewinds_total"); rewinds < 1 {
		t.Errorf("consensus_rewinds_total = %v, want >= 1 (no degraded round ever healed)", rewinds)
	}
	if beyond, _ := counterValue(snap, "consensus_censuses_beyond_lag_total"); beyond != 0 {
		t.Errorf("consensus_censuses_beyond_lag_total = %v, want 0 (lag window must cover the crash gap)", beyond)
	}
}

// metricValue reads one series out of a registry snapshot.
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	for _, p := range reg.Snapshot() {
		if p.Name == name {
			return p.Value
		}
	}
	t.Fatalf("metric %s not in registry snapshot", name)
	return 0
}
