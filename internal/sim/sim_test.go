package sim

import (
	"math"
	"testing"
	"time"

	"repro/internal/game"
)

func tinyWorldConfig() WorldConfig {
	cfg := DefaultWorldConfig()
	cfg.Net.Rows, cfg.Net.Cols = 8, 9
	cfg.Trace.Taxis, cfg.Trace.Transit = 20, 10
	cfg.Trace.Duration = 90 * time.Minute
	cfg.Regions = 4
	cfg.EdgeServers = 9
	return cfg
}

func buildTinyWorld(t *testing.T, src CoeffSource) *World {
	t.Helper()
	cfg := tinyWorldConfig()
	cfg.Source = src
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildWorldBC(t *testing.T) {
	w := buildTinyWorld(t, CoeffBC)
	if w.Net.NumSegments() == 0 {
		t.Fatal("no segments")
	}
	if len(w.Weights) != w.Net.NumSegments() {
		t.Fatal("weights length mismatch")
	}
	if w.Assignment.M != 4 {
		t.Fatalf("M = %d", w.Assignment.M)
	}
	if err := w.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Model.M() != 4 || w.Model.K() != 8 {
		t.Fatalf("model %dx%d", w.Model.M(), w.Model.K())
	}
	// Beta normalized to mean 4.
	mean := 0.0
	for _, b := range w.Beta {
		mean += b
	}
	mean /= float64(len(w.Beta))
	if math.Abs(mean-4.0) > 1e-9 {
		t.Errorf("beta mean = %f, want 4", mean)
	}
	if w.Voronoi.NumCells() < tinyWorldConfig().EdgeServers {
		t.Errorf("voronoi cells = %d", w.Voronoi.NumCells())
	}
	if len(w.RegionStats) != 4 {
		t.Errorf("region stats = %d entries", len(w.RegionStats))
	}
}

func TestBuildWorldTD(t *testing.T) {
	w := buildTinyWorld(t, CoeffTD)
	nonzero := 0
	for _, v := range w.Weights {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("TD weights all zero; trace produced no density")
	}
	if w.AvgWithinStd < 0 {
		t.Error("negative within-region std")
	}
}

func TestBuildWorldValidation(t *testing.T) {
	cfg := tinyWorldConfig()
	cfg.Regions = 0
	if _, err := BuildWorld(cfg); err == nil {
		t.Error("zero regions must error")
	}
	cfg = tinyWorldConfig()
	cfg.Source = 0
	if _, err := BuildWorld(cfg); err == nil {
		t.Error("unknown source must error")
	}
	cfg = tinyWorldConfig()
	cfg.EdgeServers = 0
	if _, err := BuildWorld(cfg); err == nil {
		t.Error("zero edge servers must error")
	}
}

// TestGreedyClusteringOption: the greedy variant builds a valid world and
// never increases the within-region coefficient dispersion relative to the
// round-robin original.
func TestGreedyClusteringOption(t *testing.T) {
	cfg := tinyWorldConfig()
	base, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.GreedyClustering = true
	greedy, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := greedy.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if greedy.AvgWithinStd > base.AvgWithinStd*1.01 {
		t.Errorf("greedy clustering std %.6f should not exceed round-robin %.6f",
			greedy.AvgWithinStd, base.AvgWithinStd)
	}
}

func TestCoeffSourceString(t *testing.T) {
	if CoeffBC.String() != "BC" || CoeffTD.String() != "TD" {
		t.Error("source strings wrong")
	}
	if CoeffSource(9).String() == "" {
		t.Error("unknown source string empty")
	}
}

func TestGridDim(t *testing.T) {
	tests := []struct {
		n, rows, cols int
	}{
		{100, 10, 10},
		{9, 3, 3},
		{10, 4, 3},
		{1, 1, 1},
	}
	for _, tt := range tests {
		r, c := gridDim(tt.n)
		if r != tt.rows || c != tt.cols {
			t.Errorf("gridDim(%d) = %d,%d want %d,%d", tt.n, r, c, tt.rows, tt.cols)
		}
		if r*c < tt.n {
			t.Errorf("gridDim(%d) too small", tt.n)
		}
	}
}

func TestEquilibriumAndFieldFromState(t *testing.T) {
	w := buildTinyWorld(t, CoeffBC)
	eq, err := w.EquilibriumAt(0.8, MacroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eq.Validate(); err != nil {
		t.Fatal(err)
	}
	field, err := FieldFromState(eq, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := field.Converged(eq); !ok {
		t.Error("state must satisfy its own field")
	}
	if _, err := FieldFromState(&game.State{}, 0.03); err == nil {
		t.Error("empty state must error")
	}
}

// TestRunFDSEndToEnd: the macroscopic closed loop over a real multi-region
// world — build the target from the x=0.85 equilibrium, start at the
// x=0.15 equilibrium, and let FDS steer.
func TestRunFDSEndToEnd(t *testing.T) {
	w := buildTinyWorld(t, CoeffBC)
	opts := MacroOptions{MaxRounds: 800}

	start, err := w.EquilibriumAt(0.15, opts)
	if err != nil {
		t.Fatal(err)
	}
	target, err := w.EquilibriumFrom(start, 0.85, 0.1, opts)
	if err != nil {
		t.Fatal(err)
	}
	field, err := FieldFromState(target, 0.04)
	if err != nil {
		t.Fatal(err)
	}

	res, err := w.RunFDS(start, field, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shape.Converged {
		t.Fatalf("FDS failed to converge: shortfall %f after %d rounds",
			res.Shape.Shortfall, res.Shape.Rounds)
	}
	if res.LowerBound > res.Shape.Rounds {
		t.Errorf("lower bound %d exceeds achieved %d", res.LowerBound, res.Shape.Rounds)
	}

	// Fixed-ratio baseline from the same start does not converge.
	start2, err := w.EquilibriumAt(0.15, opts)
	if err != nil {
		t.Fatal(err)
	}
	base, err := w.RunFixed(start2, field, MacroOptions{MaxRounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	if base.Converged {
		t.Error("fixed low ratio should not reach the high-sharing field")
	}
}

// TestRunAgentSimMatchesMacro: the distributed agent-based system steers to
// the same field the macroscopic model does, and its final distribution is
// close to the cloud's mean-field prediction.
func TestRunAgentSimMatchesMacro(t *testing.T) {
	w := buildTinyWorld(t, CoeffBC)
	opts := MacroOptions{}
	start, err := w.EquilibriumAt(0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	target, err := w.EquilibriumFrom(start, 0.85, 0.1, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Finite-population noise needs a loose tolerance.
	field, err := FieldFromState(target, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.RunAgentSim(AgentSimConfig{
		VehiclesPerRegion: 60,
		Rounds:            120,
		Field:             field,
		Seed:              7,
		X0:                0.5,
		PrivacyWeightStd:  0, // homogeneous agents = exact mean field
		InitialShares:     start.P,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Fatal("simulation ran zero rounds")
	}
	if !res.Converged {
		final := res.SharesTrace[len(res.SharesTrace)-1]
		t.Fatalf("agent sim did not converge in %d rounds; final region-0 shares %v (target %v)",
			res.Rounds, final[0], target.P[0])
	}
	if res.TotalDeliveredItems == 0 {
		t.Error("no data was ever delivered — the data plane did not run")
	}
	// Ratios stayed in range and respected Lambda.
	for tIdx := 1; tIdx < len(res.RatioTrace); tIdx++ {
		for i := range res.RatioTrace[tIdx] {
			dx := math.Abs(res.RatioTrace[tIdx][i] - res.RatioTrace[tIdx-1][i])
			if dx > 0.1+1e-9 {
				t.Fatalf("round %d region %d ratio jumped %f", tIdx, i, dx)
			}
		}
	}
}

func TestRunAgentSimValidation(t *testing.T) {
	w := buildTinyWorld(t, CoeffBC)
	if _, err := w.RunAgentSim(AgentSimConfig{}); err == nil {
		t.Error("missing field must error")
	}
}
