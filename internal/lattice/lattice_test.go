package lattice

import (
	"math"
	"testing"

	"repro/internal/sensor"
)

// TestPaperEnumeration verifies the lattice reproduces the paper's P1..P8
// listing exactly.
func TestPaperEnumeration(t *testing.T) {
	l := NewPaper()
	if l.K() != 8 {
		t.Fatalf("K = %d, want 8", l.K())
	}
	want := []sensor.Mask{
		sensor.MaskOf(sensor.Camera, sensor.LiDAR, sensor.Radar), // P1
		sensor.MaskOf(sensor.Camera, sensor.LiDAR),               // P2
		sensor.MaskOf(sensor.Camera, sensor.Radar),               // P3
		sensor.MaskOf(sensor.LiDAR, sensor.Radar),                // P4
		sensor.MaskOf(sensor.Camera),                             // P5
		sensor.MaskOf(sensor.LiDAR),                              // P6
		sensor.MaskOf(sensor.Radar),                              // P7
		0,                                                        // P8
	}
	for k, m := range want {
		got, err := l.Share(Decision(k + 1))
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Errorf("P%d = %v, want %v", k+1, got, m)
		}
	}
	if l.Top() != 1 || l.Bottom() != 8 {
		t.Errorf("Top/Bottom = %d/%d, want 1/8", l.Top(), l.Bottom())
	}
}

func TestDecisionOfRoundTrip(t *testing.T) {
	l := NewPaper()
	for k := Decision(1); int(k) <= l.K(); k++ {
		m := l.MustShare(k)
		got, err := l.DecisionOf(m)
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Errorf("DecisionOf(Share(%d)) = %d", k, got)
		}
	}
	if _, err := l.DecisionOf(sensor.Mask(0xF0)); err == nil {
		t.Error("unknown mask must error")
	}
}

func TestShareErrors(t *testing.T) {
	l := NewPaper()
	if _, err := l.Share(0); err == nil {
		t.Error("decision 0 must error")
	}
	if _, err := l.Share(9); err == nil {
		t.Error("decision 9 must error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustShare(0) must panic")
		}
	}()
	l.MustShare(0)
}

// TestPrecedesMatchesSubset: k ⪯ l iff P^l ⊆ P^k, over all pairs.
func TestPrecedesMatchesSubset(t *testing.T) {
	l := NewPaper()
	for k := Decision(1); k <= 8; k++ {
		for j := Decision(1); j <= 8; j++ {
			want := l.MustShare(j).SubsetOf(l.MustShare(k))
			if got := l.Precedes(k, j); got != want {
				t.Errorf("Precedes(%d,%d) = %v, want %v", k, j, got, want)
			}
			wantStrict := want && k != j
			if got := l.StrictlyPrecedes(k, j); got != wantStrict {
				t.Errorf("StrictlyPrecedes(%d,%d) = %v, want %v", k, j, got, wantStrict)
			}
		}
	}
	if l.Precedes(0, 1) || l.Precedes(1, 99) {
		t.Error("invalid decisions must not precede anything")
	}
}

// TestAccessibilityRule spot-checks the policy semantics: the all-sharing
// decision accesses everyone; the empty decision accesses only other empty
// sharers; {camera} cannot access {lidar}.
func TestAccessibilityRule(t *testing.T) {
	l := NewPaper()
	if got := l.Accessible(1); len(got) != 8 {
		t.Errorf("P1 accesses %d decisions, want all 8", len(got))
	}
	got := l.Accessible(8)
	if len(got) != 1 || got[0] != 8 {
		t.Errorf("P8 accesses %v, want [8]", got)
	}
	if l.CanAccess(5, 6) {
		t.Error("{camera} must not access {lidar} shares")
	}
	if !l.CanAccess(2, 6) {
		t.Error("{camera,lidar} must access {lidar} shares")
	}
	if !l.CanAccess(4, 8) {
		t.Error("every decision accesses empty shares")
	}
	// Accessibility count equals 2^|P^k|: all subsets of what you share.
	for k := Decision(1); k <= 8; k++ {
		want := 1 << l.MustShare(k).Count()
		if got := len(l.Accessible(k)); got != want {
			t.Errorf("|Accessible(%d)| = %d, want %d", k, got, want)
		}
	}
}

// TestDAGStructure verifies Fig. 2: immediate successors remove exactly one
// modality, immediate predecessors add exactly one.
func TestDAGStructure(t *testing.T) {
	l := NewPaper()
	wantSuccessors := map[Decision][]Decision{
		1: {2, 3, 4},
		2: {5, 6},
		3: {5, 7},
		4: {6, 7},
		5: {8},
		6: {8},
		7: {8},
		8: nil,
	}
	for k, want := range wantSuccessors {
		got := l.Successors(k)
		if len(got) != len(want) {
			t.Errorf("Successors(%d) = %v, want %v", k, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Successors(%d) = %v, want %v", k, got, want)
				break
			}
		}
	}
	wantPredecessors := map[Decision][]Decision{
		1: nil,
		8: {5, 6, 7},
		5: {2, 3},
		4: {1},
	}
	for k, want := range wantPredecessors {
		got := l.Predecessors(k)
		if len(got) != len(want) {
			t.Errorf("Predecessors(%d) = %v, want %v", k, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Predecessors(%d) = %v, want %v", k, got, want)
				break
			}
		}
	}
	if got := l.Successors(0); got != nil {
		t.Errorf("Successors(0) = %v, want nil", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("empty universe must error")
	}
	if _, err := New(sensor.Mask(0x80)); err == nil {
		t.Error("invalid universe must error")
	}
	l, err := New(sensor.MaskOf(sensor.LiDAR, sensor.Radar))
	if err != nil {
		t.Fatal(err)
	}
	if l.K() != 4 {
		t.Errorf("2-modality lattice has %d decisions, want 4", l.K())
	}
	if l.MustShare(l.Top()) != sensor.MaskOf(sensor.LiDAR, sensor.Radar) {
		t.Error("top of sub-lattice must be its universe")
	}
	if l.MustShare(l.Bottom()) != 0 {
		t.Error("bottom must be empty")
	}
}

// TestTableII verifies the derived payoffs against the paper's Table II
// numbers exactly.
func TestTableII(t *testing.T) {
	p := PaperPayoffs()
	wantUtility := []float64{20, 13, 14, 13, 7, 6, 7, 0}
	wantCost := []float64{1.6, 1.5, 1.1, 0.6, 1.0, 0.5, 0.1, 0}
	for i := range wantUtility {
		if math.Abs(p.RawUtility[i]-wantUtility[i]) > 1e-12 {
			t.Errorf("Table II utility P%d = %f, want %f", i+1, p.RawUtility[i], wantUtility[i])
		}
		if math.Abs(p.RawCost[i]-wantCost[i]) > 1e-12 {
			t.Errorf("Table II cost P%d = %f, want %f", i+1, p.RawCost[i], wantCost[i])
		}
	}
	// Normalized values: divide by maxima 20 and 1.6.
	for i := range wantUtility {
		if math.Abs(p.Utility[i]-wantUtility[i]/20) > 1e-12 {
			t.Errorf("normalized f_%d = %f, want %f", i+1, p.Utility[i], wantUtility[i]/20)
		}
		if math.Abs(p.Cost[i]-wantCost[i]/1.6) > 1e-12 {
			t.Errorf("normalized g_%d = %f, want %f", i+1, p.Cost[i], wantCost[i]/1.6)
		}
	}
	if err := p.Validate(); err != nil {
		t.Errorf("paper payoffs must validate: %v", err)
	}
}

func TestPayoffAccessors(t *testing.T) {
	p := PaperPayoffs()
	if p.K() != 8 {
		t.Fatalf("K = %d", p.K())
	}
	f1, err := p.F(1)
	if err != nil || f1 != 1 {
		t.Errorf("F(1) = %f, %v; want 1", f1, err)
	}
	g1, err := p.G(1)
	if err != nil || g1 != 1 {
		t.Errorf("G(1) = %f, %v; want 1", g1, err)
	}
	if _, err := p.F(0); err == nil {
		t.Error("F(0) must error")
	}
	if _, err := p.G(9); err == nil {
		t.Error("G(9) must error")
	}
	if p.Lattice() == nil {
		t.Error("Lattice() must not be nil")
	}
}

// TestDerivePayoffsCustomWeights exercises derivation with non-paper
// weights and checks scaling invariance of the normalized values.
func TestDerivePayoffsCustomWeights(t *testing.T) {
	l := NewPaper()
	w := sensor.PrivacyWeights{Camera: 2.0, LiDAR: 1.0, Radar: 0.2}
	p, err := DerivePayoffs(l, sensor.TableIII(), w)
	if err != nil {
		t.Fatal(err)
	}
	// Doubling all weights must leave normalized costs unchanged.
	w2 := sensor.PrivacyWeights{Camera: 4.0, LiDAR: 2.0, Radar: 0.4}
	p2, err := DerivePayoffs(l, sensor.TableIII(), w2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Cost {
		if math.Abs(p.Cost[i]-p2.Cost[i]) > 1e-12 {
			t.Errorf("normalized cost %d not scale-invariant: %f vs %f", i, p.Cost[i], p2.Cost[i])
		}
	}
	bad := sensor.PrivacyWeights{Camera: -1}
	if _, err := DerivePayoffs(l, sensor.TableIII(), bad); err == nil {
		t.Error("negative weights must be rejected")
	}
}
