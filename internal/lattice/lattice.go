// Package lattice implements the paper's lattice-based data-sharing policy:
// the decision space of "which sensor modalities to share", the
// predecessor/successor partial order over decisions (Fig. 2's DAG), and the
// accessibility rule that couples sharing generosity to collection rights.
//
// Convention (Section III of the paper): decision l is a *successor* of
// decision k, written k ≺ l, iff P^l ⊊ P^k — predecessors share strictly
// more. Decision 1 shares everything (P¹ = Ω) and decision K shares nothing
// (P^K = ∅). Under the policy, a vehicle with decision k may access (with
// probability x) the data shared by a vehicle with decision l iff P^l ⊆ P^k:
// you can read from those who share no more than you do.
package lattice

import (
	"fmt"
	"sort"

	"repro/internal/sensor"
)

// Decision indexes a data-sharing decision, 1-based as in the paper
// (P¹ … P^K).
type Decision int

// Lattice is the decision space over a universe of sensor modalities.
// Decisions are all subsets of the universe ordered so that decision 1 is
// the full set and decision K the empty set, with set size decreasing —
// reproducing the paper's P¹..P⁸ numbering for the 3-modality universe.
type Lattice struct {
	universe sensor.Mask
	shares   []sensor.Mask // shares[k-1] = P^k
	index    map[sensor.Mask]Decision
}

// New builds the lattice of all subsets of the given universe.
func New(universe sensor.Mask) (*Lattice, error) {
	if !universe.Valid() {
		return nil, fmt.Errorf("lattice: invalid universe mask %#x", uint8(universe))
	}
	if universe == 0 {
		return nil, fmt.Errorf("lattice: universe must contain at least one modality")
	}
	types := universe.Types()
	n := len(types)
	subsets := make([]sensor.Mask, 0, 1<<n)
	for bits := 0; bits < 1<<n; bits++ {
		var m sensor.Mask
		for i, t := range types {
			if bits&(1<<i) != 0 {
				m |= sensor.MaskOf(t)
			}
		}
		subsets = append(subsets, m)
	}
	// Order: decreasing cardinality; ties broken to reproduce the paper's
	// P1..P8 listing (camera-first within equal sizes, which for the full
	// universe yields {C,L,R}, {C,L}, {C,R}, {L,R}, {C}, {L}, {R}, {}).
	sort.SliceStable(subsets, func(i, j int) bool {
		ci, cj := subsets[i].Count(), subsets[j].Count()
		if ci != cj {
			return ci > cj
		}
		return subsetRank(subsets[i]) < subsetRank(subsets[j])
	})
	l := &Lattice{
		universe: universe,
		shares:   subsets,
		index:    make(map[sensor.Mask]Decision, len(subsets)),
	}
	for i, m := range subsets {
		l.index[m] = Decision(i + 1)
	}
	return l, nil
}

// subsetRank orders equal-cardinality masks camera-first, as the paper's
// enumeration does: lower rank sorts earlier. It treats the mask's bits with
// camera as most significant.
func subsetRank(m sensor.Mask) int {
	rank := 0
	if m.Has(sensor.Camera) {
		rank -= 4
	}
	if m.Has(sensor.LiDAR) {
		rank -= 2
	}
	if m.Has(sensor.Radar) {
		rank--
	}
	return rank
}

// NewPaper builds the 8-decision lattice over the full {camera,lidar,radar}
// universe used throughout the paper.
func NewPaper() *Lattice {
	l, err := New(sensor.MaskAll)
	if err != nil {
		// The full universe is always valid.
		panic(fmt.Sprintf("lattice: internal error: %v", err))
	}
	return l
}

// K returns the number of decisions.
func (l *Lattice) K() int { return len(l.shares) }

// Universe returns the modality universe Ω.
func (l *Lattice) Universe() sensor.Mask { return l.universe }

// Share returns P^k, the set of modalities shared under decision k.
func (l *Lattice) Share(k Decision) (sensor.Mask, error) {
	if k < 1 || int(k) > len(l.shares) {
		return 0, fmt.Errorf("lattice: decision %d out of range [1,%d]", k, len(l.shares))
	}
	return l.shares[k-1], nil
}

// MustShare is Share for callers with known-valid decisions; it panics on a
// bad decision index.
func (l *Lattice) MustShare(k Decision) sensor.Mask {
	m, err := l.Share(k)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// DecisionOf returns the decision whose share set equals m.
func (l *Lattice) DecisionOf(m sensor.Mask) (Decision, error) {
	d, ok := l.index[m]
	if !ok {
		return 0, fmt.Errorf("lattice: mask %v is not a decision over universe %v", m, l.universe)
	}
	return d, nil
}

// Precedes reports k ⪯ l: P^l ⊆ P^k (k shares at least as much as l).
// Invalid decisions report false.
func (l *Lattice) Precedes(k, j Decision) bool {
	mk, err := l.Share(k)
	if err != nil {
		return false
	}
	mj, err := l.Share(j)
	if err != nil {
		return false
	}
	return mj.SubsetOf(mk)
}

// StrictlyPrecedes reports k ≺ l: P^l ⊊ P^k.
func (l *Lattice) StrictlyPrecedes(k, j Decision) bool {
	return k != j && l.Precedes(k, j)
}

// CanAccess reports whether a vehicle with decision receiver may access the
// data shared by a vehicle with decision sharer under the lattice policy
// (before the sharing-ratio coin flip): P^sharer ⊆ P^receiver.
func (l *Lattice) CanAccess(receiver, sharer Decision) bool {
	return l.Precedes(receiver, sharer)
}

// Accessible returns all decisions whose shared data a vehicle with decision
// k may access, i.e. {l : P^l ⊆ P^k}, in ascending decision order. The set
// always includes k itself and the empty decision.
func (l *Lattice) Accessible(k Decision) []Decision {
	var out []Decision
	for j := Decision(1); int(j) <= len(l.shares); j++ {
		if l.CanAccess(k, j) {
			out = append(out, j)
		}
	}
	return out
}

// Successors returns the immediate successors of k in Fig. 2's DAG: the
// decisions whose share set removes exactly one modality from P^k.
func (l *Lattice) Successors(k Decision) []Decision {
	mk, err := l.Share(k)
	if err != nil {
		return nil
	}
	var out []Decision
	for _, t := range mk.Types() {
		smaller := mk &^ sensor.MaskOf(t)
		if d, ok := l.index[smaller]; ok {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Predecessors returns the immediate predecessors of k: decisions whose
// share set adds exactly one modality to P^k.
func (l *Lattice) Predecessors(k Decision) []Decision {
	mk, err := l.Share(k)
	if err != nil {
		return nil
	}
	var out []Decision
	for _, t := range l.universe.Types() {
		if mk.Has(t) {
			continue
		}
		larger := mk | sensor.MaskOf(t)
		if d, ok := l.index[larger]; ok {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Top returns the all-sharing decision (P¹ = Ω).
func (l *Lattice) Top() Decision { return 1 }

// Bottom returns the nothing-sharing decision (P^K = ∅).
func (l *Lattice) Bottom() Decision { return Decision(len(l.shares)) }
