package lattice

import (
	"fmt"

	"repro/internal/sensor"
)

// Payoffs holds, per decision k, the utility value f_k of the data set P^k
// and the privacy cost g_k of sharing P^k — the two columns of Table II —
// in both raw and normalized form. The paper normalizes both utility and
// privacy cost to [0, 1] before running the game.
type Payoffs struct {
	lat *Lattice
	// RawUtility[k-1] and RawCost[k-1] are the Table II values.
	RawUtility []float64
	RawCost    []float64
	// Utility[k-1] = f_k and Cost[k-1] = g_k, normalized to [0, 1] by the
	// respective maxima.
	Utility []float64
	Cost    []float64
}

// DerivePayoffs computes Table II from the capability matrix (Table III) and
// the privacy weights, then normalizes. This is the exact derivation the
// paper describes: a decision's utility is the sum contribution of its
// shared modalities to the 11 perception factors, and its privacy cost is
// the sum of its modalities' sensitivity weights.
func DerivePayoffs(l *Lattice, cap *sensor.CapabilityTable, w sensor.PrivacyWeights) (*Payoffs, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := &Payoffs{
		lat:        l,
		RawUtility: make([]float64, l.K()),
		RawCost:    make([]float64, l.K()),
		Utility:    make([]float64, l.K()),
		Cost:       make([]float64, l.K()),
	}
	maxU, maxC := 0.0, 0.0
	for k := Decision(1); int(k) <= l.K(); k++ {
		m := l.MustShare(k)
		u, err := cap.MaskUtility(m)
		if err != nil {
			return nil, fmt.Errorf("lattice: deriving utility of decision %d: %w", k, err)
		}
		c, err := w.MaskCost(m)
		if err != nil {
			return nil, fmt.Errorf("lattice: deriving cost of decision %d: %w", k, err)
		}
		p.RawUtility[k-1] = u
		p.RawCost[k-1] = c
		if u > maxU {
			maxU = u
		}
		if c > maxC {
			maxC = c
		}
	}
	for i := range p.Utility {
		if maxU > 0 {
			p.Utility[i] = p.RawUtility[i] / maxU
		}
		if maxC > 0 {
			p.Cost[i] = p.RawCost[i] / maxC
		}
	}
	return p, nil
}

// PaperPayoffs derives Table II with the paper's exact inputs: the Table III
// capability matrix and privacy weights camera=1.0, lidar=0.5, radar=0.1.
func PaperPayoffs() *Payoffs {
	p, err := DerivePayoffs(NewPaper(), sensor.TableIII(), sensor.PaperPrivacyWeights())
	if err != nil {
		// The paper inputs are static and always valid.
		panic(fmt.Sprintf("lattice: internal error: %v", err))
	}
	return p
}

// K returns the number of decisions.
func (p *Payoffs) K() int { return len(p.Utility) }

// Lattice returns the decision lattice the payoffs are defined over.
func (p *Payoffs) Lattice() *Lattice { return p.lat }

// F returns f_k, the normalized utility value of decision k's shared data.
func (p *Payoffs) F(k Decision) (float64, error) {
	if k < 1 || int(k) > len(p.Utility) {
		return 0, fmt.Errorf("lattice: decision %d out of range [1,%d]", k, len(p.Utility))
	}
	return p.Utility[k-1], nil
}

// G returns g_k, the normalized privacy cost of decision k.
func (p *Payoffs) G(k Decision) (float64, error) {
	if k < 1 || int(k) > len(p.Cost) {
		return 0, fmt.Errorf("lattice: decision %d out of range [1,%d]", k, len(p.Cost))
	}
	return p.Cost[k-1], nil
}

// Validate checks the structural properties the game relies on:
// monotonicity of utility and cost along the lattice order (sharing more
// never has lower raw utility or lower raw cost), f over [0,1], g over
// [0,1], and f_Bottom = g_Bottom = 0.
func (p *Payoffs) Validate() error {
	l := p.lat
	for k := Decision(1); int(k) <= l.K(); k++ {
		fk := p.Utility[k-1]
		gk := p.Cost[k-1]
		if fk < 0 || fk > 1 || gk < 0 || gk > 1 {
			return fmt.Errorf("lattice: decision %d payoffs (%f, %f) outside [0,1]", k, fk, gk)
		}
		for _, j := range l.Successors(k) {
			if p.RawUtility[j-1] > p.RawUtility[k-1] {
				return fmt.Errorf("lattice: utility not monotone: f_%d=%f > f_%d=%f", j, p.RawUtility[j-1], k, p.RawUtility[k-1])
			}
			if p.RawCost[j-1] > p.RawCost[k-1] {
				return fmt.Errorf("lattice: cost not monotone: g_%d=%f > g_%d=%f", j, p.RawCost[j-1], k, p.RawCost[k-1])
			}
		}
	}
	bottom := l.Bottom()
	if p.Utility[bottom-1] != 0 || p.Cost[bottom-1] != 0 {
		return fmt.Errorf("lattice: empty decision must have zero utility and cost")
	}
	return nil
}
