// Package roadnet models the road network of the target area as a graph of
// road segments, and provides the analyses the paper's Step 1 requires:
// betweenness centrality (Eq. 2) and shortest paths, plus a synthetic
// "Futian-like" network generator standing in for the OpenStreetMap extract.
//
// Following the paper's segment-level analysis, the graph's vertices are road
// segments (each with a representative midpoint location) and edges connect
// segments that share an intersection. Betweenness centrality of a segment u
// counts the fraction of shortest segment-to-segment paths passing through u,
// matching Eq. (2).
package roadnet

import (
	"fmt"
	"sort"

	"repro/internal/geo"
)

// SegmentID identifies a road segment within a Network.
type SegmentID int

// Segment is one road segment: the unit of the paper's Step 1 analysis.
type Segment struct {
	ID SegmentID
	// Midpoint is the representative location of the segment, used for
	// Voronoi assignment, clustering adjacency, and rendering.
	Midpoint geo.Point
	// LengthMeters is the travel length of the segment.
	LengthMeters float64
	// Class is the road class (arterial roads attract more traffic in the
	// synthetic demand model).
	Class RoadClass
}

// RoadClass distinguishes major and minor roads in the synthetic network.
type RoadClass int

// Road classes, from most to least important.
const (
	ClassArterial RoadClass = iota + 1
	ClassCollector
	ClassLocal
)

// String implements fmt.Stringer.
func (c RoadClass) String() string {
	switch c {
	case ClassArterial:
		return "arterial"
	case ClassCollector:
		return "collector"
	case ClassLocal:
		return "local"
	default:
		return fmt.Sprintf("RoadClass(%d)", int(c))
	}
}

// Network is an undirected graph over road segments. The zero value is an
// empty network ready for AddSegment/AddAdjacency.
type Network struct {
	segments []Segment
	adj      [][]SegmentID
}

// NumSegments returns the number of segments in the network.
func (n *Network) NumSegments() int { return len(n.segments) }

// Segment returns the segment with the given id.
// It panics if id is out of range, mirroring slice indexing.
func (n *Network) Segment(id SegmentID) Segment { return n.segments[id] }

// Segments returns a copy of all segments.
func (n *Network) Segments() []Segment {
	return append([]Segment(nil), n.segments...)
}

// AddSegment adds a segment and returns its id. The caller-provided ID field
// is overwritten with the assigned id.
func (n *Network) AddSegment(s Segment) SegmentID {
	id := SegmentID(len(n.segments))
	s.ID = id
	n.segments = append(n.segments, s)
	n.adj = append(n.adj, nil)
	return id
}

// AddAdjacency records that segments a and b meet at an intersection.
// It is idempotent and ignores self-loops. It returns an error if either id
// is out of range.
func (n *Network) AddAdjacency(a, b SegmentID) error {
	if a < 0 || int(a) >= len(n.segments) || b < 0 || int(b) >= len(n.segments) {
		return fmt.Errorf("roadnet: adjacency %d-%d out of range [0,%d)", a, b, len(n.segments))
	}
	if a == b {
		return nil
	}
	if !containsID(n.adj[a], b) {
		n.adj[a] = append(n.adj[a], b)
	}
	if !containsID(n.adj[b], a) {
		n.adj[b] = append(n.adj[b], a)
	}
	return nil
}

func containsID(s []SegmentID, id SegmentID) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}

// Neighbors returns the ids of segments adjacent to id. The returned slice
// must not be modified.
func (n *Network) Neighbors(id SegmentID) []SegmentID { return n.adj[id] }

// Degree returns the number of neighbors of id.
func (n *Network) Degree(id SegmentID) int { return len(n.adj[id]) }

// NumAdjacencies returns the number of undirected adjacencies.
func (n *Network) NumAdjacencies() int {
	total := 0
	for _, a := range n.adj {
		total += len(a)
	}
	return total / 2
}

// Midpoints returns the midpoint of every segment, indexed by SegmentID.
func (n *Network) Midpoints() []geo.Point {
	pts := make([]geo.Point, len(n.segments))
	for i, s := range n.segments {
		pts[i] = s.Midpoint
	}
	return pts
}

// Connected reports whether the network is a single connected component.
// An empty network is vacuously connected.
func (n *Network) Connected() bool {
	if len(n.segments) == 0 {
		return true
	}
	return len(n.ComponentOf(0)) == len(n.segments)
}

// ComponentOf returns the ids of all segments reachable from start
// (including start), in BFS order.
func (n *Network) ComponentOf(start SegmentID) []SegmentID {
	if start < 0 || int(start) >= len(n.segments) {
		return nil
	}
	seen := make([]bool, len(n.segments))
	queue := []SegmentID{start}
	seen[start] = true
	var order []SegmentID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range n.adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return order
}

// Components returns all connected components, largest first.
func (n *Network) Components() [][]SegmentID {
	seen := make([]bool, len(n.segments))
	var comps [][]SegmentID
	for i := range n.segments {
		if seen[i] {
			continue
		}
		comp := n.ComponentOf(SegmentID(i))
		for _, id := range comp {
			seen[id] = true
		}
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// BFSDistances returns hop distances from start to every segment; -1 marks
// unreachable segments.
func (n *Network) BFSDistances(start SegmentID) []int {
	dist := make([]int, len(n.segments))
	for i := range dist {
		dist[i] = -1
	}
	if start < 0 || int(start) >= len(n.segments) {
		return dist
	}
	dist[start] = 0
	queue := []SegmentID{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range n.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns a minimum-hop path from src to dst (inclusive), or nil
// if none exists.
func (n *Network) ShortestPath(src, dst SegmentID) []SegmentID {
	if src < 0 || int(src) >= len(n.segments) || dst < 0 || int(dst) >= len(n.segments) {
		return nil
	}
	if src == dst {
		return []SegmentID{src}
	}
	prev := make([]SegmentID, len(n.segments))
	for i := range prev {
		prev[i] = -1
	}
	seen := make([]bool, len(n.segments))
	seen[src] = true
	queue := []SegmentID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		for _, v := range n.adj[u] {
			if !seen[v] {
				seen[v] = true
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	if !seen[dst] {
		return nil
	}
	var rev []SegmentID
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if rev[0] != src {
		return nil
	}
	return rev
}
