package roadnet

// Betweenness centrality (BC) of road segments, Eq. (2) of the paper:
//
//	BC_i = 1/((N-1)(N-2)) * sum_{j != k != i} eta_{j,k}(u_i) / eta_{j,k}
//
// where eta_{j,k} is the number of shortest paths between segments u_j and
// u_k and eta_{j,k}(u_i) the number of those passing through u_i. Computed
// with Brandes' algorithm (unweighted, BFS variant), O(V*E).

// BetweennessCentrality returns the normalized betweenness centrality of
// every segment, indexed by SegmentID. Endpoints are excluded (standard
// vertex betweenness), matching Eq. (2)'s j != i != k restriction, and values
// are normalized by (N-1)(N-2) — the number of ordered source/target pairs
// excluding i — so results lie in [0, 1]. Sources are processed on all CPUs;
// use BetweennessCentralityWorkers to bound the pool.
func (n *Network) BetweennessCentrality() []float64 {
	return n.BetweennessCentralityWorkers(0)
}

// BetweennessCentralityWorkers is BetweennessCentrality with an explicit
// worker-pool size (0 means runtime.NumCPU()). The result is bit-identical
// for every worker count; see parallel.go for the block-merge scheme.
func (n *Network) BetweennessCentralityWorkers(workers int) []float64 {
	nv := len(n.segments)
	if nv < 3 {
		return make([]float64, nv)
	}

	bc := accumulateBlocked(nv, workers, func() func(src int, acc []float64) {
		// Brandes' accumulation with per-worker scratch buffers.
		var (
			stack = make([]SegmentID, 0, nv)
			preds = make([][]SegmentID, nv)
			sigma = make([]float64, nv)
			dist  = make([]int, nv)
			delta = make([]float64, nv)
			queue = make([]SegmentID, 0, nv)
		)
		return func(s int, acc []float64) {
			stack = stack[:0]
			queue = queue[:0]
			for i := 0; i < nv; i++ {
				sigma[i] = 0
				dist[i] = -1
				delta[i] = 0
				preds[i] = preds[i][:0]
			}

			src := SegmentID(s)
			sigma[src] = 1
			dist[src] = 0
			queue = append(queue, src)

			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				stack = append(stack, v)
				for _, w := range n.adj[v] {
					if dist[w] < 0 {
						dist[w] = dist[v] + 1
						queue = append(queue, w)
					}
					if dist[w] == dist[v]+1 {
						sigma[w] += sigma[v]
						preds[w] = append(preds[w], v)
					}
				}
			}

			// Back-propagation of dependencies.
			for i := len(stack) - 1; i >= 0; i-- {
				w := stack[i]
				for _, v := range preds[w] {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
				if w != src {
					acc[w] += delta[w]
				}
			}
		}
	})

	// The accumulation above counts each unordered pair twice (once per
	// direction); Eq. (2) sums over ordered pairs, so no halving. Normalize
	// by (N-1)(N-2).
	norm := 1.0 / (float64(nv-1) * float64(nv-2))
	for i := range bc {
		bc[i] *= norm
	}
	return bc
}

// CountShortestPaths returns eta_{src,dst}: the number of distinct
// minimum-hop paths between src and dst. Intended for testing BC against the
// definitional formula on small graphs; it runs one BFS per call.
func (n *Network) CountShortestPaths(src, dst SegmentID) int {
	nv := len(n.segments)
	if src < 0 || int(src) >= nv || dst < 0 || int(dst) >= nv {
		return 0
	}
	if src == dst {
		return 1
	}
	sigma := make([]int, nv)
	dist := make([]int, nv)
	for i := range dist {
		dist[i] = -1
	}
	sigma[src] = 1
	dist[src] = 0
	queue := []SegmentID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range n.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
			if dist[w] == dist[v]+1 {
				sigma[w] += sigma[v]
			}
		}
	}
	return sigma[dst]
}

// CountShortestPathsThrough returns eta_{src,dst}(mid): the number of
// minimum-hop src-dst paths passing through mid (mid interior, per Eq. (2)).
// Returns 0 when mid equals src or dst.
func (n *Network) CountShortestPathsThrough(src, dst, mid SegmentID) int {
	if mid == src || mid == dst {
		return 0
	}
	total := n.CountShortestPaths(src, dst)
	if total == 0 {
		return 0
	}
	dSrc := n.BFSDistances(src)
	dDst := n.BFSDistances(dst)
	if dSrc[mid] < 0 || dDst[mid] < 0 || dSrc[dst] < 0 {
		return 0
	}
	if dSrc[mid]+dDst[mid] != dSrc[dst] {
		return 0
	}
	return n.CountShortestPaths(src, mid) * n.CountShortestPaths(mid, dst)
}
