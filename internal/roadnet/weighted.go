package roadnet

import (
	"container/heap"
	"fmt"
	"math"
)

// Travel-time weighted betweenness centrality. The unweighted BC of Eq. (2)
// treats every segment transition as one hop, which on a regular lattice
// spreads centrality uniformly. Real road-network BC analyses (and the
// paper's Fig. 7(b) heat map, where arterials dominate) use travel-time
// shortest paths: arterials are faster, so shortest paths concentrate on
// them. We therefore provide a weighted Brandes variant using per-segment
// traversal times; Eq. (2)'s normalization is unchanged.

// Design speeds per road class in meters/second (used for travel-time
// weights and by the trace generator's route timing).
const (
	SpeedArterialMPS  = 16.7 // ~60 km/h
	SpeedCollectorMPS = 11.1 // ~40 km/h
	SpeedLocalMPS     = 6.9  // ~25 km/h
)

// SpeedMPS returns the design speed for a road class in meters/second.
func SpeedMPS(c RoadClass) float64 {
	switch c {
	case ClassArterial:
		return SpeedArterialMPS
	case ClassCollector:
		return SpeedCollectorMPS
	default:
		return SpeedLocalMPS
	}
}

// TravelTimeSeconds returns the time to traverse the segment at its design
// speed.
func (s Segment) TravelTimeSeconds() float64 {
	return s.LengthMeters / SpeedMPS(s.Class)
}

// TravelTimes returns every segment's traversal time, indexed by SegmentID.
func (n *Network) TravelTimes() []float64 {
	out := make([]float64, len(n.segments))
	for i, s := range n.segments {
		out[i] = s.TravelTimeSeconds()
	}
	return out
}

// WeightedBetweennessCentrality computes betweenness centrality where the
// shortest path between two segments minimizes the sum of per-segment costs
// along the path (a vertex-weighted shortest path; the endpoints' own costs
// are common to all paths and do not affect the argmin). cost must have one
// strictly positive entry per segment (zero costs would make shortest-path
// counting ill-defined). Results are normalized by (N-1)(N-2) as in Eq. (2).
func (n *Network) WeightedBetweennessCentrality(cost []float64) ([]float64, error) {
	return n.WeightedBetweennessCentralityWorkers(cost, 0)
}

// WeightedBetweennessCentralityWorkers is WeightedBetweennessCentrality with
// an explicit worker-pool size (0 means runtime.NumCPU()). The result is
// bit-identical for every worker count; see parallel.go for the block-merge
// scheme.
func (n *Network) WeightedBetweennessCentralityWorkers(cost []float64, workers int) ([]float64, error) {
	nv := len(n.segments)
	if len(cost) != nv {
		return nil, fmt.Errorf("roadnet: cost has %d entries, want %d", len(cost), nv)
	}
	for i, c := range cost {
		if !(c > 0) || math.IsInf(c, 1) {
			return nil, fmt.Errorf("roadnet: cost[%d] = %v must be positive and finite", i, c)
		}
	}
	if nv < 3 {
		return make([]float64, nv), nil
	}

	const eps = 1e-9

	bc := accumulateBlocked(nv, workers, func() func(src int, acc []float64) {
		var (
			stack = make([]SegmentID, 0, nv)
			preds = make([][]SegmentID, nv)
			sigma = make([]float64, nv)
			dist  = make([]float64, nv)
			delta = make([]float64, nv)
		)
		return func(s int, acc []float64) {
			stack = stack[:0]
			for i := 0; i < nv; i++ {
				sigma[i] = 0
				dist[i] = math.Inf(1)
				delta[i] = 0
				preds[i] = preds[i][:0]
			}
			src := SegmentID(s)
			sigma[src] = 1
			dist[src] = 0

			pq := &distHeap{}
			heap.Init(pq)
			heap.Push(pq, distEntry{id: src, d: 0})
			settled := make([]bool, nv)

			for pq.Len() > 0 {
				e := heap.Pop(pq).(distEntry)
				v := e.id
				if settled[v] {
					continue
				}
				settled[v] = true
				stack = append(stack, v)
				for _, w := range n.adj[v] {
					// Entering segment w costs w's traversal time.
					nd := dist[v] + cost[w]
					switch {
					case nd < dist[w]-eps:
						dist[w] = nd
						sigma[w] = sigma[v]
						preds[w] = append(preds[w][:0], v)
						heap.Push(pq, distEntry{id: w, d: nd})
					case math.Abs(nd-dist[w]) <= eps && !settled[w]:
						sigma[w] += sigma[v]
						preds[w] = append(preds[w], v)
					}
				}
			}

			for i := len(stack) - 1; i >= 0; i-- {
				w := stack[i]
				for _, v := range preds[w] {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
				if w != src {
					acc[w] += delta[w]
				}
			}
		}
	})

	norm := 1.0 / (float64(nv-1) * float64(nv-2))
	for i := range bc {
		bc[i] *= norm
	}
	return bc, nil
}

// TravelTimeBetweenness is WeightedBetweennessCentrality with the segments'
// design travel times as costs. This is the BC variant used for the Fig. 7/8
// reproduction.
func (n *Network) TravelTimeBetweenness() []float64 {
	return n.TravelTimeBetweennessWorkers(0)
}

// TravelTimeBetweennessWorkers is TravelTimeBetweenness with an explicit
// worker-pool size (0 means runtime.NumCPU()).
func (n *Network) TravelTimeBetweennessWorkers(workers int) []float64 {
	bc, err := n.WeightedBetweennessCentralityWorkers(n.TravelTimes(), workers)
	if err != nil {
		// TravelTimes always matches the segment count and is non-negative.
		panic(fmt.Sprintf("roadnet: internal error: %v", err))
	}
	return bc
}

type distEntry struct {
	id SegmentID
	d  float64
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
