package roadnet

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"repro/internal/geo"
)

func smallGenConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 12, 14
	return cfg
}

func TestGenerateProducesConnectedNetwork(t *testing.T) {
	net, err := Generate(smallGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !net.Connected() {
		t.Fatal("generated network must be connected")
	}
	if net.NumSegments() < 200 {
		t.Errorf("generated only %d segments", net.NumSegments())
	}
	box := geo.FutianBBox()
	for _, s := range net.Segments() {
		if !box.Contains(s.Midpoint) {
			t.Fatalf("segment %d midpoint %v outside box", s.ID, s.Midpoint)
		}
		if s.LengthMeters <= 0 {
			t.Fatalf("segment %d has non-positive length", s.ID)
		}
		if s.Class < ClassArterial || s.Class > ClassLocal {
			t.Fatalf("segment %d has invalid class %v", s.ID, s.Class)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSegments() != b.NumSegments() || a.NumAdjacencies() != b.NumAdjacencies() {
		t.Fatalf("same seed produced different networks: %d/%d vs %d/%d segments/adjacencies",
			a.NumSegments(), a.NumAdjacencies(), b.NumSegments(), b.NumAdjacencies())
	}
	for i := 0; i < a.NumSegments(); i++ {
		if a.Segment(SegmentID(i)).Midpoint != b.Segment(SegmentID(i)).Midpoint {
			t.Fatalf("segment %d midpoints differ", i)
		}
	}
}

func TestGenerateSeedChangesNetwork(t *testing.T) {
	cfg := smallGenConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := a.NumSegments() == b.NumSegments()
	if same {
		identical := true
		for i := 0; i < a.NumSegments(); i++ {
			if a.Segment(SegmentID(i)).Midpoint != b.Segment(SegmentID(i)).Midpoint {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical networks")
		}
	}
}

func TestGenerateFutianScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	net, err := Generate(DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports Futian has ~5,000-6,000 discrete locations.
	if net.NumSegments() < 5000 || net.NumSegments() > 7000 {
		t.Errorf("Futian-scale network has %d segments, want 5000-7000", net.NumSegments())
	}
	if !net.Connected() {
		t.Error("Futian-scale network must be connected")
	}
}

func TestGenerateArterialsCarryHigherBC(t *testing.T) {
	net, err := Generate(smallGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	bc := net.TravelTimeBetweenness()
	var arterial, local []float64
	for _, s := range net.Segments() {
		switch s.Class {
		case ClassArterial:
			arterial = append(arterial, bc[s.ID])
		case ClassLocal:
			local = append(local, bc[s.ID])
		}
	}
	if len(arterial) == 0 || len(local) == 0 {
		t.Fatal("expected both arterial and local segments")
	}
	if med(arterial) <= med(local) {
		t.Errorf("median arterial BC %.6f should exceed median local BC %.6f",
			med(arterial), med(local))
	}
}

func med(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*GenConfig)
	}{
		{"tiny grid", func(c *GenConfig) { c.Rows = 1 }},
		{"bad arterial spacing", func(c *GenConfig) { c.ArterialEvery = 1 }},
		{"negative removal", func(c *GenConfig) { c.RemoveLocalFrac = -0.1 }},
		{"full removal", func(c *GenConfig) { c.RemoveLocalFrac = 1.0 }},
		{"jitter too large", func(c *GenConfig) { c.Jitter = 0.6 }},
		{"invalid box", func(c *GenConfig) { c.Box = geo.BBox{MinLat: 1, MaxLat: 0, MinLon: 0, MaxLon: 1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultGenConfig()
			tt.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Error("want validation error, got nil")
			}
		})
	}
}

func TestNetworkRoundTrip(t *testing.T) {
	net, err := Generate(smallGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSegments() != net.NumSegments() {
		t.Fatalf("round trip lost segments: %d vs %d", got.NumSegments(), net.NumSegments())
	}
	if got.NumAdjacencies() != net.NumAdjacencies() {
		t.Fatalf("round trip lost adjacencies: %d vs %d", got.NumAdjacencies(), net.NumAdjacencies())
	}
	for i := 0; i < net.NumSegments(); i++ {
		a, b := net.Segment(SegmentID(i)), got.Segment(SegmentID(i))
		if a.Class != b.Class {
			t.Fatalf("segment %d class mismatch", i)
		}
		if geo.Equirectangular(a.Midpoint, b.Midpoint) > 0.02 {
			t.Fatalf("segment %d midpoint drifted", i)
		}
	}
}

func TestReadRejectsMalformedInput(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"unknown record", "X 1 2\n"},
		{"short segment", "S 0 22.5\n"},
		{"out of order id", "S 1 22.5 114.0 100 3\n"},
		{"bad lat", "S 0 abc 114.0 100 3\n"},
		{"invalid coordinate", "S 0 95.0 114.0 100 3\n"},
		{"adjacency before segments", "A 0 1\n"},
		{"short adjacency", "S 0 22.5 114.0 100 3\nA 0\n"},
		{"bad adjacency id", "S 0 22.5 114.0 100 3\nA 0 x\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.input)); err == nil {
				t.Errorf("Read(%q) should fail", tt.input)
			}
		})
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	input := "# header\n\nS 0 22.5 114.0 100 1\n  \nS 1 22.51 114.0 100 2\nA 0 1\n"
	net, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if net.NumSegments() != 2 || net.NumAdjacencies() != 1 {
		t.Errorf("got %d segments %d adjacencies, want 2 and 1", net.NumSegments(), net.NumAdjacencies())
	}
	if net.Segment(0).Class != ClassArterial {
		t.Errorf("segment 0 class = %v, want arterial", net.Segment(0).Class)
	}
}

func TestRoadClassString(t *testing.T) {
	tests := []struct {
		c    RoadClass
		want string
	}{
		{ClassArterial, "arterial"},
		{ClassCollector, "collector"},
		{ClassLocal, "local"},
		{RoadClass(42), "RoadClass(42)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("RoadClass(%d).String() = %q, want %q", int(tt.c), got, tt.want)
		}
	}
}
