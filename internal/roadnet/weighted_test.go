package roadnet

import (
	"math"
	"testing"
)

func TestSpeedMPS(t *testing.T) {
	if SpeedMPS(ClassArterial) <= SpeedMPS(ClassCollector) {
		t.Error("arterial must be faster than collector")
	}
	if SpeedMPS(ClassCollector) <= SpeedMPS(ClassLocal) {
		t.Error("collector must be faster than local")
	}
	if SpeedMPS(RoadClass(99)) != SpeedLocalMPS {
		t.Error("unknown class defaults to local speed")
	}
}

func TestTravelTime(t *testing.T) {
	s := Segment{LengthMeters: 167, Class: ClassArterial}
	if got := s.TravelTimeSeconds(); math.Abs(got-10) > 1e-9 {
		t.Errorf("TravelTimeSeconds = %f, want 10", got)
	}
}

// TestWeightedBCMatchesUnweightedOnUniformCosts: with equal costs, weighted
// BC must coincide with the hop-based Brandes result.
func TestWeightedBCMatchesUnweightedOnUniformCosts(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 6, 7
	net, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	unweighted := net.BetweennessCentrality()
	uniform := make([]float64, net.NumSegments())
	for i := range uniform {
		uniform[i] = 1
	}
	weighted, err := net.WeightedBetweennessCentrality(uniform)
	if err != nil {
		t.Fatal(err)
	}
	for i := range unweighted {
		if math.Abs(unweighted[i]-weighted[i]) > 1e-9 {
			t.Fatalf("BC[%d]: unweighted %f != weighted-uniform %f", i, unweighted[i], weighted[i])
		}
	}
}

// TestWeightedBCRoutesAroundSlowVertex: in a 4-cycle where one of the two
// middle vertices is expensive, all traffic between the opposite endpoints
// must flow through the cheap vertex.
func TestWeightedBCRoutesAroundSlowVertex(t *testing.T) {
	net := &Network{}
	for i := 0; i < 4; i++ {
		net.AddSegment(Segment{})
	}
	// 0 - 1 - 2 and 0 - 3 - 2.
	for _, e := range [][2]SegmentID{{0, 1}, {1, 2}, {0, 3}, {3, 2}} {
		if err := net.AddAdjacency(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	cost := []float64{1, 1, 1, 10} // vertex 3 is slow
	bc, err := net.WeightedBetweennessCentrality(cost)
	if err != nil {
		t.Fatal(err)
	}
	if bc[1] <= bc[3] {
		t.Errorf("fast vertex BC %f must exceed slow vertex BC %f", bc[1], bc[3])
	}
	if bc[3] != 0 {
		t.Errorf("slow vertex should carry no shortest paths, BC = %f", bc[3])
	}
	// 0<->2 in both directions pass through 1: 2 ordered pairs out of
	// (N-1)(N-2) = 6.
	want := 2.0 / 6.0
	if math.Abs(bc[1]-want) > 1e-9 {
		t.Errorf("BC[1] = %f, want %f", bc[1], want)
	}
}

// TestWeightedBCSplitsTies: two equal-cost parallel middle vertices each
// carry half of the paths between the endpoints.
func TestWeightedBCSplitsTies(t *testing.T) {
	net := &Network{}
	for i := 0; i < 4; i++ {
		net.AddSegment(Segment{})
	}
	for _, e := range [][2]SegmentID{{0, 1}, {1, 2}, {0, 3}, {3, 2}} {
		if err := net.AddAdjacency(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	cost := []float64{1, 2, 1, 2}
	bc, err := net.WeightedBetweennessCentrality(cost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bc[1]-bc[3]) > 1e-9 {
		t.Errorf("tied vertices must split evenly: %f vs %f", bc[1], bc[3])
	}
	want := 1.0 / 6.0 // each carries 1/2 of 2 ordered pairs, normalized by 6
	if math.Abs(bc[1]-want) > 1e-9 {
		t.Errorf("BC[1] = %f, want %f", bc[1], want)
	}
}

func TestWeightedBCValidation(t *testing.T) {
	net := pathGraph(t, 3)
	if _, err := net.WeightedBetweennessCentrality([]float64{1, 1}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := net.WeightedBetweennessCentrality([]float64{1, 0, 1}); err == nil {
		t.Error("zero cost must error")
	}
	if _, err := net.WeightedBetweennessCentrality([]float64{1, -1, 1}); err == nil {
		t.Error("negative cost must error")
	}
	if _, err := net.WeightedBetweennessCentrality([]float64{1, math.NaN(), 1}); err == nil {
		t.Error("NaN cost must error")
	}
	if _, err := net.WeightedBetweennessCentrality([]float64{1, math.Inf(1), 1}); err == nil {
		t.Error("infinite cost must error")
	}
}

func TestWeightedBCTinyGraphs(t *testing.T) {
	net := pathGraph(t, 2)
	bc, err := net.WeightedBetweennessCentrality([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range bc {
		if v != 0 {
			t.Errorf("BC[%d] = %f on a 2-vertex graph, want 0", i, v)
		}
	}
}
