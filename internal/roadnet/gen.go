package roadnet

import (
	"fmt"
	"math/rand"

	"repro/internal/geo"
)

// GenConfig parameterizes the synthetic Futian-like road network generator.
// The generator stands in for the paper's OpenStreetMap extract of Futian
// district (see DESIGN.md §1): it produces a connected street lattice with an
// arterial hierarchy inside the target bounding box, so that betweenness
// centrality and traffic density concentrate on arterials exactly as in the
// paper's Fig. 7 heat maps.
type GenConfig struct {
	// Box is the target area; defaults to geo.FutianBBox().
	Box geo.BBox
	// Rows and Cols are the number of east-west and north-south street
	// lines. The paper reports Futian has roughly 5,000-6,000 discrete
	// locations; Rows=52, Cols=62 yields ~6,300 segments before removal.
	Rows, Cols int
	// ArterialEvery marks every k-th street line as arterial (class 1);
	// lines halfway between arterials are collectors (class 2); the rest are
	// local roads (class 3).
	ArterialEvery int
	// RemoveLocalFrac removes this fraction of local-road segments to break
	// up the perfect lattice (removal never disconnects the network).
	RemoveLocalFrac float64
	// Jitter displaces intersections by up to this fraction of the cell
	// size, so midpoints are not perfectly collinear.
	Jitter float64
	// Seed drives all randomness; the same seed yields the same network.
	Seed int64
}

// DefaultGenConfig returns the configuration used by the paper reproduction:
// a Futian-scale network with ~6k segments.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Box:             geo.FutianBBox(),
		Rows:            52,
		Cols:            62,
		ArterialEvery:   8,
		RemoveLocalFrac: 0.12,
		Jitter:          0.25,
		Seed:            1,
	}
}

// Validate checks the configuration for usability.
func (c GenConfig) Validate() error {
	if !c.Box.Valid() {
		return fmt.Errorf("roadnet: invalid bounding box")
	}
	if c.Rows < 2 || c.Cols < 2 {
		return fmt.Errorf("roadnet: need at least a 2x2 intersection grid, got %dx%d", c.Rows, c.Cols)
	}
	if c.ArterialEvery < 2 {
		return fmt.Errorf("roadnet: ArterialEvery must be >= 2, got %d", c.ArterialEvery)
	}
	if c.RemoveLocalFrac < 0 || c.RemoveLocalFrac >= 1 {
		return fmt.Errorf("roadnet: RemoveLocalFrac must be in [0,1), got %f", c.RemoveLocalFrac)
	}
	if c.Jitter < 0 || c.Jitter > 0.45 {
		return fmt.Errorf("roadnet: Jitter must be in [0,0.45], got %f", c.Jitter)
	}
	return nil
}

// Generate builds the synthetic network. The result is always connected.
func Generate(cfg GenConfig) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// 1. Intersection grid with jitter.
	dLat := (cfg.Box.MaxLat - cfg.Box.MinLat) / float64(cfg.Rows-1)
	dLon := (cfg.Box.MaxLon - cfg.Box.MinLon) / float64(cfg.Cols-1)
	nodes := make([]geo.Point, cfg.Rows*cfg.Cols)
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			jLat := (rng.Float64()*2 - 1) * cfg.Jitter * dLat
			jLon := (rng.Float64()*2 - 1) * cfg.Jitter * dLon
			nodes[r*cfg.Cols+c] = cfg.Box.Clamp(geo.Point{
				Lat: cfg.Box.MinLat + float64(r)*dLat + jLat,
				Lon: cfg.Box.MinLon + float64(c)*dLon + jLon,
			})
		}
	}

	// Arterials sit mid-cycle (offset ArterialEvery/2) so they never land
	// on the grid boundary, where betweenness is structurally depressed;
	// collectors take the cycle start.
	lineClass := func(index int) RoadClass {
		switch {
		case index%cfg.ArterialEvery == cfg.ArterialEvery/2:
			return ClassArterial
		case index%cfg.ArterialEvery == 0:
			return ClassCollector
		default:
			return ClassLocal
		}
	}

	// 2. Lattice edges become road segments. Track, per intersection, the
	// segments incident to it so segment adjacency can be derived.
	var protos []protoSeg
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			at := r*cfg.Cols + c
			if c+1 < cfg.Cols { // east-west street along row r
				protos = append(protos, protoSeg{a: at, b: at + 1, class: lineClass(r)})
			}
			if r+1 < cfg.Rows { // north-south street along column c
				protos = append(protos, protoSeg{a: at, b: at + cfg.Cols, class: lineClass(c)})
			}
		}
	}

	// 3. Remove a fraction of local segments, keeping connectivity. Build
	// incrementally: start with non-local segments (they form a connected
	// arterial/collector skeleton only if spacing divides the grid; to be
	// safe we re-add removed segments until connected).
	keep := make([]bool, len(protos))
	for i, p := range protos {
		if p.class != ClassLocal {
			keep[i] = true
			continue
		}
		keep[i] = rng.Float64() >= cfg.RemoveLocalFrac
	}

	build := func() *Network {
		net := &Network{}
		// incident[i] = segment ids touching intersection i.
		incident := make([][]SegmentID, len(nodes))
		for i, p := range protos {
			if !keep[i] {
				continue
			}
			id := net.AddSegment(Segment{
				Midpoint:     geo.Midpoint(nodes[p.a], nodes[p.b]),
				LengthMeters: geo.Equirectangular(nodes[p.a], nodes[p.b]),
				Class:        p.class,
			})
			incident[p.a] = append(incident[p.a], id)
			incident[p.b] = append(incident[p.b], id)
		}
		for _, segs := range incident {
			for i := 0; i < len(segs); i++ {
				for j := i + 1; j < len(segs); j++ {
					// Errors impossible: ids come from AddSegment.
					_ = net.AddAdjacency(segs[i], segs[j])
				}
			}
		}
		return net
	}

	// 4. Connectivity repair on the intersection graph: while the kept edge
	// set leaves the intersection graph disconnected, re-add removed
	// segments that bridge distinct components. The full lattice is
	// connected, so this terminates.
	for pass := 0; ; pass++ {
		comp := intersectionComponents(len(nodes), protos, keep)
		if comp.count <= 1 {
			break
		}
		if pass > len(protos) {
			return nil, fmt.Errorf("roadnet: connectivity repair did not converge (bug)")
		}
		for i, p := range protos {
			if !keep[i] && comp.id[p.a] != comp.id[p.b] {
				keep[i] = true
			}
		}
	}

	net := build()
	if !net.Connected() {
		return nil, fmt.Errorf("roadnet: generator produced a disconnected network (bug)")
	}
	return net, nil
}

// protoSeg is a candidate road segment between two intersections, used
// during generation before the Network is materialized.
type protoSeg struct {
	a, b  int // intersection indices
	class RoadClass
}

// componentLabels labels each intersection with its connected-component id.
type componentLabels struct {
	id    []int
	count int
}

// intersectionComponents computes connected components of the intersection
// graph induced by the kept proto-segments.
func intersectionComponents(numNodes int, protos []protoSeg, keep []bool) componentLabels {
	adj := make([][]int, numNodes)
	for i, p := range protos {
		if !keep[i] {
			continue
		}
		adj[p.a] = append(adj[p.a], p.b)
		adj[p.b] = append(adj[p.b], p.a)
	}
	labels := componentLabels{id: make([]int, numNodes)}
	for i := range labels.id {
		labels.id[i] = -1
	}
	for start := 0; start < numNodes; start++ {
		if labels.id[start] >= 0 {
			continue
		}
		labels.id[start] = labels.count
		queue := []int{start}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if labels.id[v] < 0 {
					labels.id[v] = labels.count
					queue = append(queue, v)
				}
			}
		}
		labels.count++
	}
	return labels
}
