package roadnet

// Parallel Brandes drivers. Both betweenness variants are embarrassingly
// parallel over sources, but naive per-worker accumulation would make the
// floating-point summation order — and therefore the last bits of the result —
// depend on the worker count. The world-build pipeline requires bit-identical
// output for any Workers setting, so accumulation is organised around
// fixed-size source blocks instead:
//
//   - sources are partitioned into contiguous blocks of betweennessBlockSize,
//     independent of the worker count;
//   - each block accumulates its sources' dependency contributions, in source
//     order, into the block's own accumulator;
//   - after all blocks finish, block accumulators are folded into the result
//     in ascending block order.
//
// The grouping (and thus every floating-point rounding decision) is a function
// of the source count alone, so Workers=1 and Workers=N produce identical
// bits. Workers only decides how many goroutines pull blocks from the shared
// queue; each goroutine reuses one set of per-source scratch buffers.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// betweennessBlockSize is the number of Brandes sources accumulated into one
// block accumulator. It is a constant (not derived from the worker count) so
// the merge order is deterministic; see the file comment.
const betweennessBlockSize = 32

// resolveWorkers maps the conventional "0 or negative means all CPUs" worker
// setting onto a concrete goroutine count.
func resolveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.NumCPU()
	}
	return workers
}

// accumulateBlocked runs perSource (obtained once per worker from newRunner,
// so workers can carry scratch state) for every source in [0, nv) and returns
// the block-ordered sum of the per-block accumulators, each of length nv.
func accumulateBlocked(nv, workers int, newRunner func() func(src int, acc []float64)) []float64 {
	nBlocks := (nv + betweennessBlockSize - 1) / betweennessBlockSize
	workers = resolveWorkers(workers)
	if workers > nBlocks {
		workers = nBlocks
	}
	accs := make([][]float64, nBlocks)
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := newRunner()
			for {
				blk := int(atomic.AddInt64(&next, 1) - 1)
				if blk >= nBlocks {
					return
				}
				lo := blk * betweennessBlockSize
				hi := lo + betweennessBlockSize
				if hi > nv {
					hi = nv
				}
				acc := make([]float64, nv)
				for s := lo; s < hi; s++ {
					run(s, acc)
				}
				accs[blk] = acc
			}
		}()
	}
	wg.Wait()

	out := make([]float64, nv)
	for _, acc := range accs {
		for i, v := range acc {
			out[i] += v
		}
	}
	return out
}
