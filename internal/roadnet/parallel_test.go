package roadnet

import (
	"testing"
)

// genParallelTestNet builds a network large enough to span many accumulation
// blocks (nv >> betweennessBlockSize) so the block-merge path is exercised.
func genParallelTestNet(t *testing.T) *Network {
	t.Helper()
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 14, 15
	net, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestBetweennessWorkerCountInvariance: every worker count must yield the
// exact same bits, for both the BFS and the Dijkstra variant. This is the
// contract the world-build pipeline's determinism guarantee rests on.
func TestBetweennessWorkerCountInvariance(t *testing.T) {
	net := genParallelTestNet(t)
	if net.NumSegments() <= 2*betweennessBlockSize {
		t.Fatalf("test network too small (%d segments) to cross block boundaries", net.NumSegments())
	}

	refBFS := net.BetweennessCentralityWorkers(1)
	refW := net.TravelTimeBetweennessWorkers(1)
	for _, workers := range []int{2, 3, 7, 0} {
		gotBFS := net.BetweennessCentralityWorkers(workers)
		for i := range refBFS {
			if gotBFS[i] != refBFS[i] {
				t.Fatalf("workers=%d: unweighted bc[%d] = %v, want %v (bit-exact)",
					workers, i, gotBFS[i], refBFS[i])
			}
		}
		gotW := net.TravelTimeBetweennessWorkers(workers)
		for i := range refW {
			if gotW[i] != refW[i] {
				t.Fatalf("workers=%d: weighted bc[%d] = %v, want %v (bit-exact)",
					workers, i, gotW[i], refW[i])
			}
		}
	}
}

func TestResolveWorkers(t *testing.T) {
	if resolveWorkers(0) < 1 || resolveWorkers(-3) < 1 {
		t.Error("non-positive workers must resolve to at least one")
	}
	if resolveWorkers(5) != 5 {
		t.Error("positive workers must pass through")
	}
}
