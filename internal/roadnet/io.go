package roadnet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geo"
)

// The network text format is line-oriented:
//
//	S <id> <lat> <lon> <length_m> <class>
//	A <id1> <id2>
//
// Segment lines must appear before any adjacency that references them, and
// ids must be dense, in order, starting at 0 (the order AddSegment assigns).
// Lines starting with '#' and blank lines are ignored.

// Write serializes the network to w in the text format.
func Write(w io.Writer, n *Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# roadnet v1: %d segments, %d adjacencies\n", n.NumSegments(), n.NumAdjacencies())
	for _, s := range n.Segments() {
		fmt.Fprintf(bw, "S %d %.7f %.7f %.2f %d\n", s.ID, s.Midpoint.Lat, s.Midpoint.Lon, s.LengthMeters, int(s.Class))
	}
	for i := 0; i < n.NumSegments(); i++ {
		for _, j := range n.Neighbors(SegmentID(i)) {
			if j > SegmentID(i) {
				fmt.Fprintf(bw, "A %d %d\n", i, j)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("roadnet: writing network: %w", err)
	}
	return nil
}

// Read parses a network from r in the text format.
func Read(r io.Reader) (*Network, error) {
	net := &Network{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "S":
			if len(fields) != 6 {
				return nil, fmt.Errorf("roadnet: line %d: segment record needs 6 fields, got %d", lineNo, len(fields))
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad segment id: %w", lineNo, err)
			}
			if id != net.NumSegments() {
				return nil, fmt.Errorf("roadnet: line %d: segment id %d out of order (want %d)", lineNo, id, net.NumSegments())
			}
			lat, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad latitude: %w", lineNo, err)
			}
			lon, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad longitude: %w", lineNo, err)
			}
			length, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad length: %w", lineNo, err)
			}
			class, err := strconv.Atoi(fields[5])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad class: %w", lineNo, err)
			}
			p := geo.Point{Lat: lat, Lon: lon}
			if !p.Valid() {
				return nil, fmt.Errorf("roadnet: line %d: invalid coordinate %v", lineNo, p)
			}
			net.AddSegment(Segment{Midpoint: p, LengthMeters: length, Class: RoadClass(class)})
		case "A":
			if len(fields) != 3 {
				return nil, fmt.Errorf("roadnet: line %d: adjacency record needs 3 fields, got %d", lineNo, len(fields))
			}
			a, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad adjacency id: %w", lineNo, err)
			}
			b, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("roadnet: line %d: bad adjacency id: %w", lineNo, err)
			}
			if err := net.AddAdjacency(SegmentID(a), SegmentID(b)); err != nil {
				return nil, fmt.Errorf("roadnet: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("roadnet: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("roadnet: reading network: %w", err)
	}
	return net, nil
}
