package roadnet

import (
	"math"
	"testing"

	"repro/internal/geo"
)

// pathGraph builds a simple path 0-1-2-...-(n-1).
func pathGraph(t *testing.T, n int) *Network {
	t.Helper()
	net := &Network{}
	for i := 0; i < n; i++ {
		net.AddSegment(Segment{
			Midpoint:     geo.Point{Lat: 22.5 + float64(i)*0.001, Lon: 114.0},
			LengthMeters: 100,
			Class:        ClassLocal,
		})
	}
	for i := 0; i+1 < n; i++ {
		if err := net.AddAdjacency(SegmentID(i), SegmentID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestNetworkBasics(t *testing.T) {
	net := pathGraph(t, 5)
	if net.NumSegments() != 5 {
		t.Fatalf("NumSegments = %d, want 5", net.NumSegments())
	}
	if net.NumAdjacencies() != 4 {
		t.Fatalf("NumAdjacencies = %d, want 4", net.NumAdjacencies())
	}
	if net.Degree(0) != 1 || net.Degree(2) != 2 {
		t.Errorf("degrees: end=%d mid=%d, want 1 and 2", net.Degree(0), net.Degree(2))
	}
	if !net.Connected() {
		t.Error("path graph must be connected")
	}
	// Idempotent adjacency, self-loop ignored.
	if err := net.AddAdjacency(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.AddAdjacency(3, 3); err != nil {
		t.Fatal(err)
	}
	if net.NumAdjacencies() != 4 {
		t.Errorf("NumAdjacencies after duplicates = %d, want 4", net.NumAdjacencies())
	}
	if err := net.AddAdjacency(0, 99); err == nil {
		t.Error("out-of-range adjacency must error")
	}
	if got := net.Segment(2).ID; got != 2 {
		t.Errorf("Segment(2).ID = %d", got)
	}
}

func TestEmptyNetwork(t *testing.T) {
	net := &Network{}
	if !net.Connected() {
		t.Error("empty network is vacuously connected")
	}
	if got := net.Components(); got != nil {
		t.Errorf("Components of empty network = %v, want nil", got)
	}
	bc := net.BetweennessCentrality()
	if len(bc) != 0 {
		t.Errorf("BC of empty network has %d entries", len(bc))
	}
}

func TestComponents(t *testing.T) {
	net := pathGraph(t, 6)
	// Cut the middle by building two disjoint paths instead.
	net2 := &Network{}
	for i := 0; i < 6; i++ {
		net2.AddSegment(Segment{Midpoint: geo.Point{Lat: 22.5, Lon: 114.0}})
	}
	for _, e := range [][2]SegmentID{{0, 1}, {1, 2}, {3, 4}} {
		if err := net2.AddAdjacency(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	comps := net2.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3 (sizes 3,2,1)", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Errorf("component sizes %d,%d,%d want 3,2,1", len(comps[0]), len(comps[1]), len(comps[2]))
	}
	if net2.Connected() {
		t.Error("disconnected graph reported connected")
	}
	_ = net // silence unused in case of refactor
}

func TestBFSDistancesAndShortestPath(t *testing.T) {
	net := pathGraph(t, 7)
	dist := net.BFSDistances(0)
	for i, d := range dist {
		if d != i {
			t.Errorf("dist[%d] = %d, want %d", i, d, i)
		}
	}
	path := net.ShortestPath(1, 5)
	want := []SegmentID{1, 2, 3, 4, 5}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
	if p := net.ShortestPath(3, 3); len(p) != 1 || p[0] != 3 {
		t.Errorf("trivial path = %v", p)
	}
	if p := net.ShortestPath(-1, 3); p != nil {
		t.Errorf("invalid src should return nil, got %v", p)
	}

	// Unreachable: disconnected pair.
	net2 := &Network{}
	net2.AddSegment(Segment{})
	net2.AddSegment(Segment{})
	if p := net2.ShortestPath(0, 1); p != nil {
		t.Errorf("unreachable path should be nil, got %v", p)
	}
	d := net2.BFSDistances(0)
	if d[1] != -1 {
		t.Errorf("unreachable distance = %d, want -1", d[1])
	}
}

// TestBetweennessPathGraph checks BC against the closed form for a path:
// for vertex i in a path of n vertices, the number of ordered pairs (j,k)
// whose unique shortest path passes through i is 2*i*(n-1-i).
func TestBetweennessPathGraph(t *testing.T) {
	n := 9
	net := pathGraph(t, n)
	bc := net.BetweennessCentrality()
	norm := float64(n-1) * float64(n-2)
	for i := 0; i < n; i++ {
		want := 2 * float64(i) * float64(n-1-i) / norm
		if math.Abs(bc[i]-want) > 1e-12 {
			t.Errorf("BC[%d] = %f, want %f", i, bc[i], want)
		}
	}
}

// TestBetweennessStarGraph: in a star with c leaves, the hub carries all
// leaf-to-leaf shortest paths: c*(c-1) ordered pairs; leaves carry none.
func TestBetweennessStarGraph(t *testing.T) {
	leaves := 6
	net := &Network{}
	hub := net.AddSegment(Segment{})
	for i := 0; i < leaves; i++ {
		leaf := net.AddSegment(Segment{})
		if err := net.AddAdjacency(hub, leaf); err != nil {
			t.Fatal(err)
		}
	}
	bc := net.BetweennessCentrality()
	nv := leaves + 1
	norm := float64(nv-1) * float64(nv-2)
	wantHub := float64(leaves*(leaves-1)) / norm
	if math.Abs(bc[hub]-wantHub) > 1e-12 {
		t.Errorf("hub BC = %f, want %f", bc[hub], wantHub)
	}
	for i := 1; i < nv; i++ {
		if bc[i] != 0 {
			t.Errorf("leaf %d BC = %f, want 0", i, bc[i])
		}
	}
}

// TestBetweennessCycleGraph: all vertices of a cycle are symmetric, so all
// BC values must be equal, and for even n each vertex lies on a known share.
func TestBetweennessCycleGraph(t *testing.T) {
	n := 8
	net := &Network{}
	for i := 0; i < n; i++ {
		net.AddSegment(Segment{})
	}
	for i := 0; i < n; i++ {
		if err := net.AddAdjacency(SegmentID(i), SegmentID((i+1)%n)); err != nil {
			t.Fatal(err)
		}
	}
	bc := net.BetweennessCentrality()
	for i := 1; i < n; i++ {
		if math.Abs(bc[i]-bc[0]) > 1e-12 {
			t.Fatalf("cycle BC not uniform: bc[0]=%f bc[%d]=%f", bc[0], i, bc[i])
		}
	}
	if bc[0] <= 0 {
		t.Errorf("cycle BC must be positive, got %f", bc[0])
	}
}

// TestBetweennessAgainstDefinition verifies Brandes against the definitional
// Eq. (2) computation using CountShortestPathsThrough on a small irregular
// graph.
func TestBetweennessAgainstDefinition(t *testing.T) {
	// Build a 3x3 grid-of-segments graph plus one diagonal chord.
	net := &Network{}
	for i := 0; i < 9; i++ {
		net.AddSegment(Segment{})
	}
	edges := [][2]SegmentID{
		{0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}, {7, 8},
		{0, 3}, {3, 6}, {1, 4}, {4, 7}, {2, 5}, {5, 8},
		{0, 4}, // chord
	}
	for _, e := range edges {
		if err := net.AddAdjacency(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	got := net.BetweennessCentrality()
	nv := net.NumSegments()
	norm := float64(nv-1) * float64(nv-2)
	for i := 0; i < nv; i++ {
		sum := 0.0
		for j := 0; j < nv; j++ {
			for k := 0; k < nv; k++ {
				if j == k || j == i || k == i {
					continue
				}
				total := net.CountShortestPaths(SegmentID(j), SegmentID(k))
				if total == 0 {
					continue
				}
				through := net.CountShortestPathsThrough(SegmentID(j), SegmentID(k), SegmentID(i))
				sum += float64(through) / float64(total)
			}
		}
		want := sum / norm
		if math.Abs(got[i]-want) > 1e-9 {
			t.Errorf("BC[%d] = %f, definitional = %f", i, got[i], want)
		}
	}
}

func TestCountShortestPaths(t *testing.T) {
	// 4-cycle: two shortest paths between opposite corners.
	net := &Network{}
	for i := 0; i < 4; i++ {
		net.AddSegment(Segment{})
	}
	for _, e := range [][2]SegmentID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := net.AddAdjacency(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := net.CountShortestPaths(0, 2); got != 2 {
		t.Errorf("eta(0,2) = %d, want 2", got)
	}
	if got := net.CountShortestPaths(0, 0); got != 1 {
		t.Errorf("eta(0,0) = %d, want 1", got)
	}
	if got := net.CountShortestPathsThrough(0, 2, 1); got != 1 {
		t.Errorf("eta(0,2 | through 1) = %d, want 1", got)
	}
	if got := net.CountShortestPathsThrough(0, 2, 0); got != 0 {
		t.Errorf("endpoint must not count, got %d", got)
	}
}
