package game

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Replicator dynamics (Eq. 5): each decision's share grows at a per-capita
// rate equal to its fitness advantage over the region average,
//
//	delta p_{i,k} / p_{i,k} = q_{i,k} - qbar_i.
//
// The discrete map p' = p * (1 + eta * (q - qbar)) uses a step size eta to
// keep the map well-defined when fitness differences are large (eta = 1
// reproduces the paper's round-per-update reading). Shares are clipped at
// zero and renormalized, and a small mutation floor can be enabled so that
// extinct decisions may re-enter when the environment changes - the
// standard replicator-mutator regularization, needed because the paper's
// policy shaping re-targets distributions after decisions may have gone
// extinct.

// Dynamics advances the decision distributions of all regions by rounds.
type Dynamics struct {
	model *Model
	// Eta is the replicator step size (default 1).
	Eta float64
	// MutationFloor is the minimum share kept alive per decision (default
	// 0: pure replicator).
	MutationFloor float64
	// scratch buffers
	q    []float64
	next [][]float64

	steps *obs.Counter // replicator_steps_total; nil until Instrument
}

// NewDynamics builds a Dynamics over the model with the given step size.
func NewDynamics(m *Model, eta float64) (*Dynamics, error) {
	if eta <= 0 {
		return nil, fmt.Errorf("game: step size eta must be positive, got %f", eta)
	}
	d := &Dynamics{
		model: m,
		Eta:   eta,
		q:     make([]float64, m.K()),
		next:  make([][]float64, m.M()),
	}
	for i := range d.next {
		d.next[i] = make([]float64, m.K())
	}
	return d, nil
}

// Model returns the underlying game model.
func (d *Dynamics) Model() *Model { return d.model }

// Instrument makes the dynamics count iterations on the given observer
// (replicator_steps_total, one increment per Step across all regions).
// Uninstrumented dynamics pay only a nil-check per Step.
func (d *Dynamics) Instrument(o *obs.Observer) {
	d.steps = o.Counter("replicator_steps_total", "replicator-dynamics rounds advanced")
}

// Step advances the state by one round in place: all regions update
// synchronously from the round-t distributions, matching the paper's
// per-round policy/data-sharing cycle.
func (d *Dynamics) Step(s *State) error {
	m := d.model
	for i := 0; i < m.M(); i++ {
		if err := m.Fitness(s, i, d.q); err != nil {
			return err
		}
		p := s.P[i]
		qbar := MeanFitness(p, d.q)
		nxt := d.next[i]
		for k := range p {
			growth := 1 + d.Eta*(d.q[k]-qbar)
			if growth < 0 {
				growth = 0
			}
			nxt[k] = p[k] * growth
			if nxt[k] < d.MutationFloor {
				nxt[k] = d.MutationFloor
			}
		}
		Normalize(nxt)
	}
	for i := range s.P {
		copy(s.P[i], d.next[i])
	}
	d.steps.Inc()
	return nil
}

// Run advances the state by n rounds and returns the trajectory of region
// region's distribution (n+1 snapshots including the initial state).
func (d *Dynamics) Run(s *State, n, region int) ([][]float64, error) {
	if region < 0 || region >= d.model.M() {
		return nil, fmt.Errorf("game: region %d out of range", region)
	}
	traj := make([][]float64, 0, n+1)
	traj = append(traj, append([]float64(nil), s.P[region]...))
	for t := 0; t < n; t++ {
		if err := d.Step(s); err != nil {
			return nil, err
		}
		traj = append(traj, append([]float64(nil), s.P[region]...))
	}
	return traj, nil
}

// MaxChange returns the largest absolute per-decision share change between
// two consecutive distribution snapshots of the same region.
func MaxChange(prev, cur [][]float64) float64 {
	worst := 0.0
	for i := range prev {
		for k := range prev[i] {
			if d := math.Abs(cur[i][k] - prev[i][k]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
