package game

import (
	"math"
	"testing"
)

func TestNewLogitDynamicsValidation(t *testing.T) {
	m := singleRegionModel(t, 1)
	if _, err := NewLogitDynamics(m, 0, 0.5); err == nil {
		t.Error("zero tau must error")
	}
	if _, err := NewLogitDynamics(m, 0.1, 0); err == nil {
		t.Error("zero mu must error")
	}
	if _, err := NewLogitDynamics(m, 0.1, 1.5); err == nil {
		t.Error("mu > 1 must error")
	}
}

func TestSoftmax(t *testing.T) {
	out := make([]float64, 3)
	Softmax([]float64{1, 1, 1}, 1, out)
	for _, v := range out {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Errorf("uniform q must give uniform softmax, got %v", out)
		}
	}
	// Low temperature concentrates on the max.
	Softmax([]float64{0, 1, 0.5}, 0.01, out)
	if out[1] < 0.999 {
		t.Errorf("low-tau softmax = %v, want concentration on index 1", out)
	}
	// Large q values must not overflow.
	Softmax([]float64{1e8, 1e8 + 1}, 1, out[:2])
	if math.IsNaN(out[0]) || out[1] < out[0] {
		t.Errorf("softmax unstable for large inputs: %v", out[:2])
	}
}

func TestLogitStepPreservesSimplex(t *testing.T) {
	m := twoRegionModel(t, 3)
	d, err := NewLogitDynamics(m, 0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniformState(2, 8, 0.5)
	for round := 0; round < 100; round++ {
		if err := d.Step(s); err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestLogitInteriorFixedPoint: unlike the replicator, logit keeps every
// decision at positive share, and the equilibrium is interior.
func TestLogitInteriorFixedPoint(t *testing.T) {
	m := singleRegionModel(t, 4)
	d, err := NewLogitDynamics(m, 0.15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniformState(1, 8, 0.9)
	rounds, err := d.Equilibrium(s, 1e-9, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if rounds >= 5000 {
		t.Fatal("logit dynamic did not equilibrate")
	}
	for k, v := range s.P[0] {
		if v <= 0 {
			t.Errorf("decision %d has non-positive share %g at logit equilibrium", k+1, v)
		}
	}
}

// TestLogitEquilibriumMovesWithRatio: raising x shifts mass toward generous
// decisions — the monotone response FDS exploits.
func TestLogitEquilibriumMovesWithRatio(t *testing.T) {
	m := singleRegionModel(t, 4)
	share1 := func(x float64) float64 {
		d, err := NewLogitDynamics(m, 0.15, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		s := NewUniformState(1, 8, x)
		if _, err := d.Equilibrium(s, 1e-10, 5000); err != nil {
			t.Fatal(err)
		}
		return s.P[0][0]
	}
	lo, hi := share1(0.1), share1(1.0)
	if hi <= lo {
		t.Errorf("P1 equilibrium share must grow with x: x=0.1 -> %f, x=1.0 -> %f", lo, hi)
	}
}

func TestLogitEquilibriumValidation(t *testing.T) {
	m := singleRegionModel(t, 1)
	d, err := NewLogitDynamics(m, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniformState(1, 8, 0.5)
	if _, err := d.Equilibrium(s, 0, 10); err == nil {
		t.Error("zero tol must error")
	}
}

// TestSteppersImplementInterface is a compile-time check plus a smoke test
// that both dynamics can drive the same state type.
func TestSteppersImplementInterface(t *testing.T) {
	m := singleRegionModel(t, 2)
	var steppers []Stepper
	rd, err := NewDynamics(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLogitDynamics(m, 0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	steppers = append(steppers, rd, ld)
	for _, st := range steppers {
		s := NewUniformState(1, 8, 0.5)
		if err := st.Step(s); err != nil {
			t.Fatal(err)
		}
		if st.Model() != m {
			t.Error("Model() mismatch")
		}
	}
}
