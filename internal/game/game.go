// Package game implements the paper's evolutionary-game analysis of
// vehicles' data-sharing decisions (Section IV-A): the group fitness of each
// decision under the lattice-based policy (Eq. 4), the discrete replicator
// dynamics of the decision distribution (Eq. 5), the alpha1/alpha2
// linearization used by the policy optimizer, and the classification of a
// (region, decision) pair into the paper's convergence Cases 1, 2, 3a, 3b
// and 4 (Eqs. 6-10).
//
// Terminology: region i holds a decision distribution p_i over K decisions
// (the proportion of vehicles taking each decision), a utility coefficient
// beta_i, and a sharing ratio x_i set by the policy. Regions interact along
// the auxiliary region graph with data-sharing frequencies gamma.
package game

import (
	"fmt"
	"math"

	"repro/internal/lattice"
)

// Stepper is any decision dynamic that advances the game state one round
// (replicator Dynamics and LogitDynamics both satisfy it).
type Stepper interface {
	// Model returns the game model the dynamic runs over.
	Model() *Model
	// Step advances the state one round in place.
	Step(s *State) error
}

// Graph abstracts the auxiliary region graph the model runs on
// (cluster.RegionGraph satisfies it).
type Graph interface {
	// M returns the number of regions.
	M() int
	// Gamma returns the data-sharing frequency gamma_{i,j}; Gamma(i,i) is
	// the intra-region frequency.
	Gamma(i, j int) float64
	// Neighbors returns the regions adjacent to i, excluding i.
	Neighbors(i int) []int
}

// Model bundles the static inputs of the game: the decision payoffs, the
// region graph, and the per-region utility coefficients beta.
type Model struct {
	payoffs *lattice.Payoffs
	graph   Graph
	beta    []float64
	// access[k] lists the decisions whose shared data decision k+1 may
	// access (l such that P^l is a subset of P^k), precomputed.
	access [][]int
}

// NewModel validates and assembles a model. beta must have one non-negative
// entry per region.
func NewModel(p *lattice.Payoffs, g Graph, beta []float64) (*Model, error) {
	if p == nil || g == nil {
		return nil, fmt.Errorf("game: payoffs and graph must be non-nil")
	}
	if len(beta) != g.M() {
		return nil, fmt.Errorf("game: beta has %d entries, want %d regions", len(beta), g.M())
	}
	for i, b := range beta {
		if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("game: beta[%d] = %v must be finite and non-negative", i, b)
		}
	}
	l := p.Lattice()
	access := make([][]int, p.K())
	for k := 1; k <= p.K(); k++ {
		for _, d := range l.Accessible(lattice.Decision(k)) {
			access[k-1] = append(access[k-1], int(d)-1)
		}
	}
	return &Model{
		payoffs: p,
		graph:   g,
		beta:    append([]float64(nil), beta...),
		access:  access,
	}, nil
}

// K returns the number of decisions.
func (m *Model) K() int { return m.payoffs.K() }

// M returns the number of regions.
func (m *Model) M() int { return m.graph.M() }

// Beta returns beta_i.
func (m *Model) Beta(i int) float64 { return m.beta[i] }

// Payoffs returns the decision payoffs.
func (m *Model) Payoffs() *lattice.Payoffs { return m.payoffs }

// Graph returns the region graph.
func (m *Model) Graph() Graph { return m.graph }

// AccessibleValue returns sum_{l in Acc(k)} p[l] * f_l: the expected utility
// value per contact available to a vehicle with decision k facing decision
// distribution p. k is 0-based here and throughout the numeric core.
func (m *Model) AccessibleValue(k int, p []float64) float64 {
	total := 0.0
	for _, l := range m.access[k] {
		total += p[l] * m.payoffs.Utility[l]
	}
	return total
}

// State is the dynamic state of the game: one decision distribution per
// region and the current sharing-ratio vector.
type State struct {
	// P[i][k] is the proportion of vehicles in region i taking decision k+1.
	P [][]float64
	// X[i] is the sharing ratio of region i.
	X []float64
}

// NewUniformState returns a state with uniform decision distributions and
// all sharing ratios set to x0.
func NewUniformState(mRegions, k int, x0 float64) *State {
	s := &State{
		P: make([][]float64, mRegions),
		X: make([]float64, mRegions),
	}
	for i := range s.P {
		s.P[i] = make([]float64, k)
		for j := range s.P[i] {
			s.P[i][j] = 1 / float64(k)
		}
		s.X[i] = x0
	}
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	out := &State{
		P: make([][]float64, len(s.P)),
		X: append([]float64(nil), s.X...),
	}
	for i := range s.P {
		out.P[i] = append([]float64(nil), s.P[i]...)
	}
	return out
}

// Validate checks simplex and ratio invariants.
func (s *State) Validate() error {
	if len(s.P) != len(s.X) {
		return fmt.Errorf("game: state has %d distributions but %d ratios", len(s.P), len(s.X))
	}
	for i, p := range s.P {
		if err := ValidateSimplex(p); err != nil {
			return fmt.Errorf("game: region %d: %w", i, err)
		}
		if s.X[i] < 0 || s.X[i] > 1 || math.IsNaN(s.X[i]) {
			return fmt.Errorf("game: region %d: sharing ratio %f outside [0,1]", i, s.X[i])
		}
	}
	return nil
}

// ValidateSimplex checks that p is a probability distribution.
func ValidateSimplex(p []float64) error {
	total := 0.0
	for k, v := range p {
		if v < -1e-9 || math.IsNaN(v) {
			return fmt.Errorf("entry %d = %v is negative or NaN", k, v)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-6 {
		return fmt.Errorf("distribution sums to %v, want 1", total)
	}
	return nil
}

// Normalize clips tiny negatives and rescales p to sum to 1 in place.
// A distribution that collapses to all-zeros becomes uniform.
func Normalize(p []float64) {
	total := 0.0
	for k, v := range p {
		if v < 0 {
			p[k] = 0
			v = 0
		}
		total += v
	}
	if total <= 0 {
		for k := range p {
			p[k] = 1 / float64(len(p))
		}
		return
	}
	for k := range p {
		p[k] /= total
	}
}

// Fitness computes q_{i,k} for every decision k in region i (Eq. 4):
//
//	q_{i,k} = beta_i * x_i * gamma_{i,i} * sum_{l in Acc(k)} p_{i,l} f_l
//	        + beta_i * sum_{j in N_i} x_j * gamma_{j,i} * sum_{l in Acc(k)} p_{j,l} f_l
//	        - g_k
//
// The result is written into out, which must have length K.
func (m *Model) Fitness(s *State, i int, out []float64) error {
	if i < 0 || i >= m.M() {
		return fmt.Errorf("game: region %d out of range [0,%d)", i, m.M())
	}
	if len(out) != m.K() {
		return fmt.Errorf("game: out has %d entries, want %d", len(out), m.K())
	}
	bi := m.beta[i]
	inner := bi * s.X[i] * m.graph.Gamma(i, i)
	for k := 0; k < m.K(); k++ {
		q := inner * m.AccessibleValue(k, s.P[i])
		for _, j := range m.graph.Neighbors(i) {
			q += bi * s.X[j] * m.graph.Gamma(j, i) * m.AccessibleValue(k, s.P[j])
		}
		out[k] = q - m.payoffs.Cost[k]
	}
	return nil
}

// MeanFitness returns q-bar_i = sum_k p_{i,k} q_{i,k} given precomputed
// fitness values.
func MeanFitness(p, q []float64) float64 {
	total := 0.0
	for k := range p {
		total += p[k] * q[k]
	}
	return total
}

// Welfare summarizes the population's objective terms at a state: the
// paper's "healthy cooperation environment" is exactly high utility at low
// privacy cost.
type Welfare struct {
	// Utility is the population-average perception utility term of Eq. 4
	// (the beta-weighted accessible data value).
	Utility float64
	// PrivacyCost is the population-average privacy cost g.
	PrivacyCost float64
	// Fitness is Utility - PrivacyCost, the average Eq. 4 fitness.
	Fitness float64
}

// Welfare computes the region-averaged welfare of a state.
func (m *Model) Welfare(s *State) (Welfare, error) {
	var w Welfare
	q := make([]float64, m.K())
	for i := 0; i < m.M(); i++ {
		if err := m.Fitness(s, i, q); err != nil {
			return Welfare{}, err
		}
		for k, p := range s.P[i] {
			w.Fitness += p * q[k]
			w.PrivacyCost += p * m.payoffs.Cost[k]
			w.Utility += p * (q[k] + m.payoffs.Cost[k])
		}
	}
	n := float64(m.M())
	w.Utility /= n
	w.PrivacyCost /= n
	w.Fitness /= n
	return w, nil
}
