package game

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAffine(t *testing.T) {
	f := Affine{A: 1, B: 2}
	if f.At(0.5) != 2 {
		t.Errorf("At(0.5) = %f", f.At(0.5))
	}
	g := f.Add(Affine{A: -1, B: 1})
	if g.A != 0 || g.B != 3 {
		t.Errorf("Add = %+v", g)
	}
	h := f.Scale(2)
	if h.A != 2 || h.B != 4 {
		t.Errorf("Scale = %+v", h)
	}
}

// TestLinearizeAffineInX: evaluating the coefficients at two x values and
// interpolating must agree with direct evaluation — i.e. the coefficients
// really are affine in x_i.
func TestLinearizeAffineInX(t *testing.T) {
	m := twoRegionModel(t, 3.0)
	s := NewUniformState(2, 8, 0.4)
	s.P[0][0] = 0.4
	s.P[0][3] = 0.25
	s.P[0][6] = 0.2
	s.P[0][7] = 0.15
	for _, k := range []int{1, 2, 4, 5} {
		s.P[0][k] = 0
	}
	coeffs, err := m.Linearize(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range coeffs {
		for _, x := range []float64{0, 0.25, 0.5, 1} {
			a1 := c.Alpha1At(x)
			wantA1 := c.Alpha1.A + c.Alpha1.B*x
			if math.Abs(a1-wantA1) > 1e-12 {
				t.Errorf("decision %d alpha1 at %f: %f vs %f", k+1, x, a1, wantA1)
			}
		}
	}
}

// TestLinearizeAlpha1MatchesNegativeFitness: by construction alpha1 =
// g_k - inner(x_i) - A_k = -q_{i,k}, so alpha1 evaluated at the state's own
// x must equal the negated Eq. 4 fitness.
func TestLinearizeAlpha1MatchesNegativeFitness(t *testing.T) {
	m := twoRegionModel(t, 2.5)
	s := NewUniformState(2, 8, 0.6)
	s.P[1][0] = 0.7
	s.P[1][7] = 0.3
	for k := 1; k < 7; k++ {
		s.P[1][k] = 0
	}
	coeffs, err := m.Linearize(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, 8)
	if err := m.Fitness(s, 0, q); err != nil {
		t.Fatal(err)
	}
	for k := range coeffs {
		if got, want := coeffs[k].Alpha1At(s.X[0]), -q[k]; math.Abs(got-want) > 1e-9 {
			t.Errorf("alpha1[%d](x) = %f, want -q = %f", k+1, got, want)
		}
	}
}

// TestLinearizedGrowthTracksReplicator: for the paper's decomposition the
// linearized growth rate alpha1*p + alpha2 should approximate the exact
// replicator growth rate q_k - qbar. The decomposition carries an extra
// cross term (see linearize.go), so we verify agreement in *sign* for
// clearly non-neutral decisions, which is what the FDS controller relies
// on.
func TestLinearizedGrowthTracksReplicator(t *testing.T) {
	m := singleRegionModel(t, 4.0)
	for _, x := range []float64{0.1, 0.5, 0.9} {
		s := NewUniformState(1, 8, x)
		coeffs, err := m.Linearize(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		q := make([]float64, 8)
		if err := m.Fitness(s, 0, q); err != nil {
			t.Fatal(err)
		}
		qbar := MeanFitness(s.P[0], q)
		for k := range coeffs {
			exact := q[k] - qbar
			linear := coeffs[k].GrowthRateAt(x, s.P[0][k])
			if math.Abs(exact) < 0.05 {
				continue // neutral decisions: sign is noise
			}
			if exact*linear < 0 {
				t.Errorf("x=%.1f decision %d: exact growth %f and linearized %f disagree in sign",
					x, k+1, exact, linear)
			}
		}
	}
}

func TestLinearizeBadRegion(t *testing.T) {
	m := singleRegionModel(t, 1)
	s := NewUniformState(1, 8, 0.5)
	if _, err := m.Linearize(s, 1); err == nil {
		t.Error("out-of-range region must error")
	}
}

func TestInterRegionGainSingleRegionIsZero(t *testing.T) {
	m := singleRegionModel(t, 2)
	s := NewUniformState(1, 8, 0.5)
	for k := 0; k < 8; k++ {
		if g := m.InterRegionGain(s, 0, k); g != 0 {
			t.Errorf("single region inter gain[%d] = %f, want 0", k, g)
		}
	}
}

// TestInterRegionGainScalesWithNeighborRatio: doubling a neighbour's x
// doubles the gain.
func TestInterRegionGainScalesWithNeighborRatio(t *testing.T) {
	m := twoRegionModel(t, 2)
	s := NewUniformState(2, 8, 0.5)
	s.X[1] = 0.3
	g1 := m.InterRegionGain(s, 0, 0)
	s.X[1] = 0.6
	g2 := m.InterRegionGain(s, 0, 0)
	if math.Abs(g2-2*g1) > 1e-12 {
		t.Errorf("gain did not scale linearly: %f -> %f", g1, g2)
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		name           string
		alpha1, alpha2 float64
		p              float64
		wantCase       Case
		wantLimit      float64
	}{
		{"case1 both positive", 1, 1, 0.5, CaseToOne, 1},
		{"case1 boundary", -0.5, 0.5, 0.5, CaseToOne, 1},
		{"case2 both negative", -1, -1, 0.5, CaseToZero, 0},
		{"case2 boundary", 0.5, -0.5, 0.5, CaseToZero, 0},
		{"case3a above rest", 2, -0.5, 0.5, CaseUnstableUp, 1},
		{"case3b below rest", 2, -0.5, 0.1, CaseUnstableDown, 0},
		{"case4 ESS", -2, 0.5, 0.9, CaseESS, 0.25},
		{"zero everything", 0, 0, 0.5, CaseToOne, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Classify(tt.alpha1, tt.alpha2, tt.p)
			if got.Case != tt.wantCase {
				t.Errorf("case = %v, want %v", got.Case, tt.wantCase)
			}
			if math.Abs(got.Limit-tt.wantLimit) > 1e-12 {
				t.Errorf("limit = %f, want %f", got.Limit, tt.wantLimit)
			}
		})
	}
}

// TestClassifyRestPointConsistency: whenever a rest point is reported it
// must lie in [0,1] and satisfy alpha1*p* + alpha2 = 0.
func TestClassifyRestPointConsistency(t *testing.T) {
	f := func(a1, a2, p float64) bool {
		a1 = math.Mod(a1, 10)
		a2 = math.Mod(a2, 10)
		p = math.Abs(math.Mod(p, 1))
		c := Classify(a1, a2, p)
		if math.IsNaN(c.RestPoint) {
			return true
		}
		if c.RestPoint < -1e-9 || c.RestPoint > 1+1e-9 {
			return false
		}
		return math.Abs(a1*c.RestPoint+a2) < 1e-6*(1+math.Abs(a2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestClassifyPredictsReplicatorLimit: integrate the pure 1-D dynamics
// dp/dt = p(1-p)(...)-free form p' = p + eta*p*(a1*p + a2) and check the
// trajectory approaches the predicted limit.
func TestClassifyPredictsReplicatorLimit(t *testing.T) {
	cases := []struct {
		a1, a2, p0 float64
	}{
		{1, 0.5, 0.3},    // -> 1
		{-1, -0.5, 0.7},  // -> 0
		{2, -0.5, 0.6},   // unstable at 0.25, start above -> 1
		{2, -0.5, 0.1},   // start below -> 0
		{-2, 0.5, 0.9},   // ESS at 0.25
		{-2, 0.5, 0.05},  // ESS at 0.25 from below
		{-0.5, 0.5, 0.5}, // boundary case1 -> 1
	}
	for _, tc := range cases {
		c := Classify(tc.a1, tc.a2, tc.p0)
		p := tc.p0
		eta := 0.05
		for i := 0; i < 20000; i++ {
			p += eta * p * (tc.a1*p + tc.a2)
			if p < 0 {
				p = 0
			}
			if p > 1 {
				p = 1
			}
		}
		if math.Abs(p-c.Limit) > 0.02 {
			t.Errorf("a1=%f a2=%f p0=%f: trajectory reached %f, classifier predicted %f (%v)",
				tc.a1, tc.a2, tc.p0, p, c.Limit, c.Case)
		}
	}
}

func TestClassifyRegion(t *testing.T) {
	m := singleRegionModel(t, 4.0)
	s := NewUniformState(1, 8, 1.0)
	cls, err := m.ClassifyRegion(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls) != 8 {
		t.Fatalf("got %d classifications", len(cls))
	}
	// The bottom decision P8 has q = 0; with generous sharing most others
	// have positive fitness, so P8 should not be classified as ->1.
	if cls[7].Case == CaseToOne {
		t.Errorf("P8 classified as ->1 under x=1: %+v", cls[7])
	}
	if _, err := m.ClassifyRegion(s, 3); err == nil {
		t.Error("bad region must error")
	}
}

func TestCaseString(t *testing.T) {
	for _, c := range []Case{CaseToOne, CaseToZero, CaseUnstableUp, CaseUnstableDown, CaseESS} {
		if c.String() == "" {
			t.Errorf("empty string for case %d", int(c))
		}
	}
	if Case(99).String() != "Case(99)" {
		t.Errorf("unknown case string = %q", Case(99).String())
	}
}
