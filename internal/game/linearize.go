package game

import "fmt"

// The alpha1/alpha2 linearization (Section IV-A, Eq. 5's decomposition).
// For a fixed region i and decision k, with the neighbour distributions and
// ratios frozen at the current round, the paper rewrites the per-capita
// growth rate of p_{i,k} as
//
//	delta p / p  =  alpha1 * p  +  alpha2,
//
// where, writing c = beta_i * gamma_{i,i}, A_k for the inter-region gain
// alpha(p_{N_i,k}, x_{N_i}) and S1_k = sum_{l in Acc(k)} p_{i,l} f_l:
//
//	alpha1 = g_k - x_i*c*S1_k - A_k
//	alpha2 = A_k + x_i*c*(S1_k - S2_k) + sum_{l != k} g_l p_{i,l} - g_k
//	       - sum_{l != k} p_{i,l} A_l
//	S2_k   = sum_{l != k} p_{i,l} * sum_{l_a in Acc(l), l_a != k} p_{i,l_a} f_{l_a}
//
// Both alpha1 and alpha2 are affine in x_i, which is what lets the FDS
// policy optimizer solve the case conditions for x_i analytically.

// Affine is a + b*x.
type Affine struct {
	A, B float64
}

// At evaluates the affine form at x.
func (f Affine) At(x float64) float64 { return f.A + f.B*x }

// Add returns the sum of two affine forms.
func (f Affine) Add(g Affine) Affine { return Affine{A: f.A + g.A, B: f.B + g.B} }

// Scale returns c * f.
func (f Affine) Scale(c float64) Affine { return Affine{A: c * f.A, B: c * f.B} }

// LinearCoeffs holds alpha1 and alpha2 for one (region, decision) pair as
// affine functions of that region's own sharing ratio x_i.
type LinearCoeffs struct {
	Alpha1 Affine
	Alpha2 Affine
}

// Alpha1At and Alpha2At evaluate the coefficients at a given x_i.
func (c LinearCoeffs) Alpha1At(x float64) float64 { return c.Alpha1.At(x) }

// Alpha2At evaluates alpha2 at x.
func (c LinearCoeffs) Alpha2At(x float64) float64 { return c.Alpha2.At(x) }

// GrowthRateAt returns alpha1*p + alpha2 evaluated at sharing ratio x and
// share p: the linearized per-capita growth rate.
func (c LinearCoeffs) GrowthRateAt(x, p float64) float64 {
	return c.Alpha1At(x)*p + c.Alpha2At(x)
}

// InterRegionGain computes A_k = alpha(p_{N_i,k}, x_{N_i}): the fitness gain
// decision k in region i receives from neighbour regions (Eq. 4's
// inter-region term), which is independent of x_i.
func (m *Model) InterRegionGain(s *State, i, k int) float64 {
	total := 0.0
	for _, j := range m.graph.Neighbors(i) {
		total += s.X[j] * m.graph.Gamma(j, i) * m.AccessibleValue(k, s.P[j])
	}
	return m.beta[i] * total
}

// Linearize computes the alpha1/alpha2 coefficients of every decision in
// region i as affine functions of x_i, freezing all other quantities at the
// current state.
func (m *Model) Linearize(s *State, i int) ([]LinearCoeffs, error) {
	if i < 0 || i >= m.M() {
		return nil, fmt.Errorf("game: region %d out of range [0,%d)", i, m.M())
	}
	k := m.K()
	p := s.P[i]
	c := m.beta[i] * m.graph.Gamma(i, i)

	// Precompute A_l for all decisions and S1_l.
	interGain := make([]float64, k)
	s1 := make([]float64, k)
	for l := 0; l < k; l++ {
		interGain[l] = m.InterRegionGain(s, i, l)
		s1[l] = m.AccessibleValue(l, p)
	}

	out := make([]LinearCoeffs, k)
	for kk := 0; kk < k; kk++ {
		gk := m.payoffs.Cost[kk]

		// S2_k = sum_{l != k} p_l * sum_{l_a in Acc(l), l_a != k} p_{l_a} f_{l_a}.
		s2 := 0.0
		for l := 0; l < k; l++ {
			if l == kk {
				continue
			}
			innerSum := s1[l]
			if m.accessContains(l, kk) {
				innerSum -= p[kk] * m.payoffs.Utility[kk]
			}
			s2 += p[l] * innerSum
		}

		sumOtherCost := 0.0
		sumOtherGain := 0.0
		for l := 0; l < k; l++ {
			if l == kk {
				continue
			}
			sumOtherCost += m.payoffs.Cost[l] * p[l]
			sumOtherGain += p[l] * interGain[l]
		}

		out[kk] = LinearCoeffs{
			Alpha1: Affine{
				A: gk - interGain[kk],
				B: -c * s1[kk],
			},
			Alpha2: Affine{
				A: interGain[kk] + sumOtherCost - gk - sumOtherGain,
				B: c * (s1[kk] - s2),
			},
		}
	}
	return out, nil
}

// accessContains reports whether decision l (0-based) can access decision
// k's (0-based) shared data.
func (m *Model) accessContains(l, k int) bool {
	for _, a := range m.access[l] {
		if a == k {
			return true
		}
	}
	return false
}
