package game

import (
	"fmt"
	"math"
)

// LogitDynamics is the smoothed-best-response (logit / quantal-response)
// dynamic: each round a fraction Mu of each region's population revises its
// decision, choosing decision k with probability proportional to
// exp(q_k / Tau). It is the exact mean field of the vehicle-level choice
// rule implemented in internal/vehicle, and — unlike the pure replicator —
// it has interior fixed points that move continuously with the sharing
// ratio, which is what makes mixed desired fields such as the paper's
// {65%, 25%, 5%, 5%} reachable by tuning x. As Tau -> 0 it approaches best
// response; large Tau approaches uniform mixing.
type LogitDynamics struct {
	model *Model
	// Tau is the choice temperature (> 0).
	Tau float64
	// Mu is the per-round revision fraction in (0, 1].
	Mu float64

	q    []float64
	next [][]float64
}

// NewLogitDynamics builds the dynamic.
func NewLogitDynamics(m *Model, tau, mu float64) (*LogitDynamics, error) {
	if tau <= 0 {
		return nil, fmt.Errorf("game: temperature tau must be positive, got %f", tau)
	}
	if mu <= 0 || mu > 1 {
		return nil, fmt.Errorf("game: revision fraction mu must be in (0,1], got %f", mu)
	}
	d := &LogitDynamics{
		model: m,
		Tau:   tau,
		Mu:    mu,
		q:     make([]float64, m.K()),
		next:  make([][]float64, m.M()),
	}
	for i := range d.next {
		d.next[i] = make([]float64, m.K())
	}
	return d, nil
}

// Model returns the underlying game model.
func (d *LogitDynamics) Model() *Model { return d.model }

// Step advances all regions one round synchronously.
func (d *LogitDynamics) Step(s *State) error {
	m := d.model
	for i := 0; i < m.M(); i++ {
		if err := m.Fitness(s, i, d.q); err != nil {
			return err
		}
		Softmax(d.q, d.Tau, d.next[i])
		p := s.P[i]
		for k := range p {
			d.next[i][k] = (1-d.Mu)*p[k] + d.Mu*d.next[i][k]
		}
	}
	for i := range s.P {
		copy(s.P[i], d.next[i])
	}
	return nil
}

// Softmax writes softmax(q/tau) into out (numerically stable).
func Softmax(q []float64, tau float64, out []float64) {
	maxQ := math.Inf(-1)
	for _, v := range q {
		if v > maxQ {
			maxQ = v
		}
	}
	total := 0.0
	for k, v := range q {
		e := math.Exp((v - maxQ) / tau)
		out[k] = e
		total += e
	}
	for k := range out {
		out[k] /= total
	}
}

// Equilibrium iterates the dynamic at fixed sharing ratios until the
// distribution change falls below tol or maxRounds is hit, returning the
// number of rounds taken. The state is updated in place.
func (d *LogitDynamics) Equilibrium(s *State, tol float64, maxRounds int) (int, error) {
	if tol <= 0 {
		return 0, fmt.Errorf("game: tol must be positive, got %f", tol)
	}
	prev := make([][]float64, len(s.P))
	for i := range s.P {
		prev[i] = make([]float64, len(s.P[i]))
	}
	for t := 1; t <= maxRounds; t++ {
		for i := range s.P {
			copy(prev[i], s.P[i])
		}
		if err := d.Step(s); err != nil {
			return t, err
		}
		if MaxChange(prev, s.P) < tol {
			return t, nil
		}
	}
	return maxRounds, nil
}
