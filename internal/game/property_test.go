package game

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lattice"
)

// randomSimplex fills p with a random distribution.
func randomSimplex(rng *rand.Rand, p []float64) {
	total := 0.0
	for k := range p {
		p[k] = rng.ExpFloat64()
		total += p[k]
	}
	for k := range p {
		p[k] /= total
	}
}

// TestFitnessLinearInBeta: Eq. 4's utility term scales linearly with the
// region coefficient, so q(beta) + g must be proportional to beta.
func TestFitnessLinearInBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pay := lattice.PaperPayoffs()
	for trial := 0; trial < 20; trial++ {
		b := 0.5 + rng.Float64()*5
		m1, err := NewModel(pay, fullGraph{m: 1, selfW: 1}, []float64{b})
		if err != nil {
			t.Fatal(err)
		}
		m2, err := NewModel(pay, fullGraph{m: 1, selfW: 1}, []float64{2 * b})
		if err != nil {
			t.Fatal(err)
		}
		s := NewUniformState(1, 8, rng.Float64())
		randomSimplex(rng, s.P[0])
		q1 := make([]float64, 8)
		q2 := make([]float64, 8)
		if err := m1.Fitness(s, 0, q1); err != nil {
			t.Fatal(err)
		}
		if err := m2.Fitness(s, 0, q2); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 8; k++ {
			u1 := q1[k] + pay.Cost[k]
			u2 := q2[k] + pay.Cost[k]
			if math.Abs(u2-2*u1) > 1e-9 {
				t.Fatalf("utility term not linear in beta: %f vs 2*%f", u2, u1)
			}
		}
	}
}

// TestReplicatorInvariantToFitnessShift: adding a constant to every
// decision's fitness leaves the replicator update unchanged (q - qbar is
// shift-invariant). We verify through the public API by checking that the
// bottom decision's zero payoff anchors the dynamics: scaling all g by the
// same amount as adding utility... instead, directly verify the identity
// q_k - qbar is shift-invariant on random vectors.
func TestReplicatorShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(10)
		p := make([]float64, k)
		randomSimplex(rng, p)
		q := make([]float64, k)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		c := rng.NormFloat64() * 10
		qbar := MeanFitness(p, q)
		shifted := make([]float64, k)
		for i := range q {
			shifted[i] = q[i] + c
		}
		qbarShifted := MeanFitness(p, shifted)
		for i := range q {
			a := q[i] - qbar
			b := shifted[i] - qbarShifted
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("growth rate not shift invariant: %f vs %f", a, b)
			}
		}
	}
}

// TestReplicatorMassConservation: across many random states and steps the
// simplex is preserved exactly (post-normalization) and no share goes
// negative.
func TestReplicatorMassConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := twoRegionModel(t, 5)
	d, err := NewDynamics(m, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		s := NewUniformState(2, 8, rng.Float64())
		for i := range s.P {
			randomSimplex(rng, s.P[i])
		}
		for step := 0; step < 20; step++ {
			if err := d.Step(s); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestLogitMassConservation: the same invariant for the logit dynamic.
func TestLogitMassConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := twoRegionModel(t, 5)
	d, err := NewLogitDynamics(m, 0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		s := NewUniformState(2, 8, rng.Float64())
		for i := range s.P {
			randomSimplex(rng, s.P[i])
		}
		for step := 0; step < 20; step++ {
			if err := d.Step(s); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestDominatedDecisionShrinks: under the replicator, a strictly dominated
// decision's share never grows. P2 = {camera,lidar} is dominated by P1 at
// full sharing? Not in general — construct directly: with x = 0 every
// decision's utility term is 0 except inter-region (none here), so fitness
// is -g_k; the replicator must monotonically favor lower-cost decisions.
func TestZeroRatioFavorsLowCost(t *testing.T) {
	m := singleRegionModel(t, 5)
	d, err := NewDynamics(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniformState(1, 8, 0)
	prev8 := s.P[0][7] // P8 has g=0: the unique maximizer at x=0
	prev1 := s.P[0][0] // P1 has g=1: the unique minimizer
	for step := 0; step < 100; step++ {
		if err := d.Step(s); err != nil {
			t.Fatal(err)
		}
		if s.P[0][7] < prev8-1e-12 {
			t.Fatalf("step %d: cost-free share shrank %f -> %f", step, prev8, s.P[0][7])
		}
		if s.P[0][0] > prev1+1e-12 {
			t.Fatalf("step %d: max-cost share grew %f -> %f", step, prev1, s.P[0][0])
		}
		prev8, prev1 = s.P[0][7], s.P[0][0]
	}
	if s.P[0][7] < 0.95 {
		t.Errorf("at x=0 the free decision should absorb the population, got %f", s.P[0][7])
	}
}

// TestLatticePartialOrder: Precedes is reflexive, antisymmetric, and
// transitive over all decision pairs/triples.
func TestLatticePartialOrder(t *testing.T) {
	l := lattice.NewPaper()
	k := l.K()
	for a := 1; a <= k; a++ {
		if !l.Precedes(lattice.Decision(a), lattice.Decision(a)) {
			t.Fatalf("not reflexive at %d", a)
		}
		for b := 1; b <= k; b++ {
			ab := l.Precedes(lattice.Decision(a), lattice.Decision(b))
			ba := l.Precedes(lattice.Decision(b), lattice.Decision(a))
			if ab && ba && a != b {
				t.Fatalf("antisymmetry violated at %d,%d", a, b)
			}
			for c := 1; c <= k; c++ {
				bc := l.Precedes(lattice.Decision(b), lattice.Decision(c))
				ac := l.Precedes(lattice.Decision(a), lattice.Decision(c))
				if ab && bc && !ac {
					t.Fatalf("transitivity violated at %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

// TestAccessibleDownwardClosed: if a decision can access l's data and m
// shares a subset of l, it can access m's data too.
func TestAccessibleDownwardClosed(t *testing.T) {
	l := lattice.NewPaper()
	k := l.K()
	for a := 1; a <= k; a++ {
		for b := 1; b <= k; b++ {
			if !l.CanAccess(lattice.Decision(a), lattice.Decision(b)) {
				continue
			}
			for c := 1; c <= k; c++ {
				if l.MustShare(lattice.Decision(c)).SubsetOf(l.MustShare(lattice.Decision(b))) {
					if !l.CanAccess(lattice.Decision(a), lattice.Decision(c)) {
						t.Fatalf("access not downward closed: %d accesses %d but not %d", a, b, c)
					}
				}
			}
		}
	}
}
