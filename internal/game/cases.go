package game

import (
	"fmt"
	"math"
)

// Convergence-case classification (Eqs. 6-10). For the linearized 1-D
// dynamics dp/dt = p*(alpha1*p + alpha2) on p in [0,1]:
//
//   - Case 1  (alpha1+alpha2 >= 0, alpha2 >= 0): growth is non-negative on
//     the whole interval; p converges to 1.
//   - Case 2  (alpha1+alpha2 <= 0, alpha2 <= 0): p converges to 0.
//   - Case 3  (alpha1+alpha2 >= 0, alpha2 <= 0): alpha1 > 0 and the interior
//     rest point p* = -alpha2/alpha1 is unstable. Above p* the share flows
//     to 1 (Case 3a), below it to 0 (Case 3b).
//   - Case 4  (alpha1+alpha2 <= 0, alpha2 >= 0): alpha1 < 0 and p* is a
//     stable interior rest point - the evolutionarily stable strategy (ESS);
//     p converges to p*.
//
// NOTE (see DESIGN.md §3): the paper's printed Eqs. (8)-(9) label the Case-3
// sub-cases opposite to their own FDS usage (Algorithm 2 pairs X_3a with
// targets containing 1). We implement the mathematically consistent version,
// which matches the FDS pseudo-code.

// Case identifies the convergence behaviour of one (region, decision) share.
type Case int

// Convergence cases.
const (
	// CaseToOne: converges to 1 regardless of the current share (Case 1).
	CaseToOne Case = iota + 1
	// CaseToZero: converges to 0 regardless of the current share (Case 2).
	CaseToZero
	// CaseUnstableUp: unstable rest point below the current share; flows to
	// 1 (Case 3a).
	CaseUnstableUp
	// CaseUnstableDown: unstable rest point above the current share; flows
	// to 0 (Case 3b).
	CaseUnstableDown
	// CaseESS: stable interior rest point; converges to -alpha2/alpha1
	// (Case 4).
	CaseESS
)

// String implements fmt.Stringer.
func (c Case) String() string {
	switch c {
	case CaseToOne:
		return "case1(->1)"
	case CaseToZero:
		return "case2(->0)"
	case CaseUnstableUp:
		return "case3a(->1)"
	case CaseUnstableDown:
		return "case3b(->0)"
	case CaseESS:
		return "case4(ESS)"
	default:
		return fmt.Sprintf("Case(%d)", int(c))
	}
}

// Classification is the result of classifying one share's dynamics.
type Classification struct {
	Case Case
	// Limit is the predicted limit of the share under the frozen
	// linearization: 0, 1, or the interior rest point.
	Limit float64
	// RestPoint is -alpha2/alpha1 when an interior rest point exists
	// (Cases 3 and 4); NaN otherwise.
	RestPoint float64
}

// Classify determines the convergence case of a share currently at p under
// coefficients alpha1, alpha2.
func Classify(alpha1, alpha2, p float64) Classification {
	sum := alpha1 + alpha2
	switch {
	case sum >= 0 && alpha2 >= 0:
		return Classification{Case: CaseToOne, Limit: 1, RestPoint: math.NaN()}
	case sum <= 0 && alpha2 <= 0:
		return Classification{Case: CaseToZero, Limit: 0, RestPoint: math.NaN()}
	case sum >= 0 && alpha2 <= 0:
		// alpha1 >= -alpha2 >= 0; alpha1 == 0 only if alpha2 == 0 too,
		// which the first branch catches.
		rest := -alpha2 / alpha1
		if p >= rest {
			return Classification{Case: CaseUnstableUp, Limit: 1, RestPoint: rest}
		}
		return Classification{Case: CaseUnstableDown, Limit: 0, RestPoint: rest}
	default:
		// sum <= 0 && alpha2 >= 0: alpha1 <= -alpha2 <= 0 and alpha1 < 0.
		rest := -alpha2 / alpha1
		return Classification{Case: CaseESS, Limit: rest, RestPoint: rest}
	}
}

// ClassifyRegion classifies every decision share of region i at the current
// state, using the frozen linearization at the region's current x_i.
func (m *Model) ClassifyRegion(s *State, i int) ([]Classification, error) {
	coeffs, err := m.Linearize(s, i)
	if err != nil {
		return nil, err
	}
	out := make([]Classification, m.K())
	for k := range coeffs {
		a1 := coeffs[k].Alpha1At(s.X[i])
		a2 := coeffs[k].Alpha2At(s.X[i])
		out[k] = Classify(a1, a2, s.P[i][k])
	}
	return out, nil
}
