package game

import (
	"math"
	"testing"

	"repro/internal/lattice"
)

// fullGraph is a tiny test Graph: m regions, all pairs adjacent, uniform
// gamma with intra-region weight selfW and the rest split evenly.
type fullGraph struct {
	m     int
	selfW float64
}

func (g fullGraph) M() int { return g.m }
func (g fullGraph) Gamma(i, j int) float64 {
	if i < 0 || i >= g.m || j < 0 || j >= g.m {
		return 0
	}
	if i == j {
		return g.selfW
	}
	if g.m == 1 {
		return 0
	}
	return (1 - g.selfW) / float64(g.m-1)
}
func (g fullGraph) Neighbors(i int) []int {
	var out []int
	for j := 0; j < g.m; j++ {
		if j != i {
			out = append(out, j)
		}
	}
	return out
}

func singleRegionModel(t *testing.T, beta float64) *Model {
	t.Helper()
	m, err := NewModel(lattice.PaperPayoffs(), fullGraph{m: 1, selfW: 1}, []float64{beta})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func twoRegionModel(t *testing.T, beta float64) *Model {
	t.Helper()
	m, err := NewModel(lattice.PaperPayoffs(), fullGraph{m: 2, selfW: 0.8}, []float64{beta, beta})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	p := lattice.PaperPayoffs()
	if _, err := NewModel(nil, fullGraph{m: 1, selfW: 1}, []float64{1}); err == nil {
		t.Error("nil payoffs must error")
	}
	if _, err := NewModel(p, nil, []float64{1}); err == nil {
		t.Error("nil graph must error")
	}
	if _, err := NewModel(p, fullGraph{m: 2, selfW: 1}, []float64{1}); err == nil {
		t.Error("beta length mismatch must error")
	}
	if _, err := NewModel(p, fullGraph{m: 1, selfW: 1}, []float64{-1}); err == nil {
		t.Error("negative beta must error")
	}
	if _, err := NewModel(p, fullGraph{m: 1, selfW: 1}, []float64{math.NaN()}); err == nil {
		t.Error("NaN beta must error")
	}
}

func TestStateHelpers(t *testing.T) {
	s := NewUniformState(2, 8, 0.5)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.P[0][0] = 0.9
	if s.P[0][0] == 0.9 {
		t.Error("Clone must deep-copy")
	}
	s.X[0] = 1.5
	if err := s.Validate(); err == nil {
		t.Error("ratio > 1 must fail validation")
	}
	s.X[0] = 0.5
	s.P[0][0] = -0.5
	if err := s.Validate(); err == nil {
		t.Error("negative share must fail validation")
	}
}

func TestNormalize(t *testing.T) {
	p := []float64{2, 1, 1}
	Normalize(p)
	if math.Abs(p[0]-0.5) > 1e-12 {
		t.Errorf("Normalize = %v", p)
	}
	q := []float64{-1, -2}
	Normalize(q)
	if q[0] != 0.5 || q[1] != 0.5 {
		t.Errorf("all-negative normalizes to uniform, got %v", q)
	}
	r := []float64{-0.1, 1.1}
	Normalize(r)
	if r[0] != 0 || math.Abs(r[1]-1) > 1e-12 {
		t.Errorf("negative clipped: %v", r)
	}
}

// TestAccessibleValue: for the paper lattice, decision 8 (share nothing)
// accesses only decision 8 whose f is 0; decision 1 accesses everything.
func TestAccessibleValue(t *testing.T) {
	m := singleRegionModel(t, 1)
	p := []float64{0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125, 0.125}
	if v := m.AccessibleValue(7, p); v != 0 {
		t.Errorf("bottom decision accessible value = %f, want 0", v)
	}
	full := m.AccessibleValue(0, p)
	wantFull := 0.0
	for k := 0; k < 8; k++ {
		wantFull += p[k] * m.Payoffs().Utility[k]
	}
	if math.Abs(full-wantFull) > 1e-12 {
		t.Errorf("top decision accessible value = %f, want %f", full, wantFull)
	}
	// {camera} (decision 5, index 4) accesses {camera} and {} only.
	v5 := m.AccessibleValue(4, p)
	want5 := p[4]*m.Payoffs().Utility[4] + p[7]*m.Payoffs().Utility[7]
	if math.Abs(v5-want5) > 1e-12 {
		t.Errorf("decision 5 accessible value = %f, want %f", v5, want5)
	}
}

// TestFitnessEquation verifies Eq. 4 by direct recomputation in a 2-region
// setting.
func TestFitnessEquation(t *testing.T) {
	m := twoRegionModel(t, 3.0)
	s := NewUniformState(2, 8, 0.6)
	s.X[1] = 0.3
	s.P[1][0] = 0.5
	s.P[1][7] = 0.5
	for k := 1; k < 7; k++ {
		s.P[1][k] = 0
	}

	q := make([]float64, 8)
	if err := m.Fitness(s, 0, q); err != nil {
		t.Fatal(err)
	}
	g := m.Graph()
	for k := 0; k < 8; k++ {
		want := 3.0*s.X[0]*g.Gamma(0, 0)*m.AccessibleValue(k, s.P[0]) +
			3.0*s.X[1]*g.Gamma(1, 0)*m.AccessibleValue(k, s.P[1]) -
			m.Payoffs().Cost[k]
		if math.Abs(q[k]-want) > 1e-12 {
			t.Errorf("q[%d] = %f, want %f", k, q[k], want)
		}
	}

	if err := m.Fitness(s, 5, q); err == nil {
		t.Error("out-of-range region must error")
	}
	if err := m.Fitness(s, 0, q[:3]); err == nil {
		t.Error("short out must error")
	}
}

// TestFitnessMonotoneInSharingRatio: raising x weakly increases every
// decision's fitness (utility term scales with x, cost unchanged).
func TestFitnessMonotoneInSharingRatio(t *testing.T) {
	m := singleRegionModel(t, 2.0)
	s := NewUniformState(1, 8, 0.2)
	qLow := make([]float64, 8)
	if err := m.Fitness(s, 0, qLow); err != nil {
		t.Fatal(err)
	}
	s.X[0] = 0.9
	qHigh := make([]float64, 8)
	if err := m.Fitness(s, 0, qHigh); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if qHigh[k] < qLow[k]-1e-12 {
			t.Errorf("fitness of decision %d decreased with x: %f -> %f", k+1, qLow[k], qHigh[k])
		}
	}
	// And strictly so for the top decision.
	if qHigh[0] <= qLow[0] {
		t.Error("top decision fitness should strictly increase with x")
	}
}

func TestReplicatorPreservesSimplex(t *testing.T) {
	m := twoRegionModel(t, 3.0)
	d, err := NewDynamics(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniformState(2, 8, 0.7)
	for round := 0; round < 200; round++ {
		if err := d.Step(s); err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestReplicatorExtinctStaysExtinct: pure replicator cannot resurrect a
// zero share.
func TestReplicatorExtinctStaysExtinct(t *testing.T) {
	m := singleRegionModel(t, 3.0)
	d, err := NewDynamics(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniformState(1, 8, 1)
	s.P[0][2] = 0
	Normalize(s.P[0])
	for round := 0; round < 50; round++ {
		if err := d.Step(s); err != nil {
			t.Fatal(err)
		}
		if s.P[0][2] != 0 {
			t.Fatalf("extinct decision resurrected at round %d: %f", round, s.P[0][2])
		}
	}
}

// TestMutationFloorKeepsDecisionsAlive: with a floor, every share stays at
// or above it.
func TestMutationFloorKeepsDecisionsAlive(t *testing.T) {
	m := singleRegionModel(t, 3.0)
	d, err := NewDynamics(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.MutationFloor = 1e-4
	s := NewUniformState(1, 8, 1)
	for round := 0; round < 100; round++ {
		if err := d.Step(s); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range s.P[0] {
		if v < 1e-4/2 {
			t.Errorf("decision %d fell below floor: %g", k+1, v)
		}
	}
}

// TestHighSharingFavorsGenerousDecisions: with x = 1 and a strong utility
// coefficient, the full-sharing decision P1 should end up dominant — the
// paper's Fig. 10 (x=1.0) regime.
func TestHighSharingFavorsGenerousDecisions(t *testing.T) {
	m := singleRegionModel(t, 4.0)
	d, err := NewDynamics(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniformState(1, 8, 1.0)
	for round := 0; round < 400; round++ {
		if err := d.Step(s); err != nil {
			t.Fatal(err)
		}
	}
	if s.P[0][0] < 0.5 {
		t.Errorf("P1 share = %f after convergence at x=1, want > 0.5 (distribution %v)", s.P[0][0], s.P[0])
	}
}

// TestLowSharingFavorsWithholding: with x = 0.05 the utility term vanishes
// and low-cost decisions (P7 radar-only, P8 nothing) dominate — Fig. 10
// (x=0.2) regime.
func TestLowSharingFavorsWithholding(t *testing.T) {
	m := singleRegionModel(t, 4.0)
	d, err := NewDynamics(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniformState(1, 8, 0.05)
	for round := 0; round < 400; round++ {
		if err := d.Step(s); err != nil {
			t.Fatal(err)
		}
	}
	low := s.P[0][6] + s.P[0][7] // P7 + P8
	if low < 0.5 {
		t.Errorf("P7+P8 share = %f at x=0.05, want > 0.5 (distribution %v)", low, s.P[0])
	}
}

func TestDynamicsValidation(t *testing.T) {
	m := singleRegionModel(t, 1)
	if _, err := NewDynamics(m, 0); err == nil {
		t.Error("zero eta must error")
	}
	if _, err := NewDynamics(m, -1); err == nil {
		t.Error("negative eta must error")
	}
}

func TestRunTrajectory(t *testing.T) {
	m := singleRegionModel(t, 3.0)
	d, err := NewDynamics(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewUniformState(1, 8, 0.8)
	traj, err := d.Run(s, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 11 {
		t.Fatalf("trajectory has %d snapshots, want 11", len(traj))
	}
	for _, snap := range traj {
		if err := ValidateSimplex(snap); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Run(s, 5, 9); err == nil {
		t.Error("bad region must error")
	}
}

func TestMaxChange(t *testing.T) {
	a := [][]float64{{0.5, 0.5}, {1, 0}}
	b := [][]float64{{0.4, 0.6}, {0.7, 0.3}}
	if got := MaxChange(a, b); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("MaxChange = %f, want 0.3", got)
	}
}
