package experiments

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/lattice"
	"repro/internal/metrics"
	"repro/internal/sensor"
)

// Table3Result is the reproduced capability matrix (Table III).
type Table3Result struct {
	Rows [][]string
	// Sums are the per-sensor total contributions (paper: 7, 6, 7).
	Sums map[sensor.Type]float64
}

// Table3 reproduces Table III from the capability model.
func Table3() (*Table3Result, error) {
	cap := sensor.TableIII()
	res := &Table3Result{Sums: make(map[sensor.Type]float64)}
	res.Rows = append(res.Rows, []string{"Factor", "Camera", "LiDAR", "Radar"})
	for f := 0; f < sensor.NumFactors; f++ {
		row := []string{sensor.Factor(f).String()}
		for _, t := range sensor.AllTypes() {
			v, err := cap.Contribution(t, sensor.Factor(f))
			if err != nil {
				return nil, err
			}
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		res.Rows = append(res.Rows, row)
	}
	sumRow := []string{"Sum contribution"}
	for _, t := range sensor.AllTypes() {
		s, err := cap.SumContribution(t)
		if err != nil {
			return nil, err
		}
		res.Sums[t] = s
		sumRow = append(sumRow, strconv.FormatFloat(s, 'g', -1, 64))
	}
	res.Rows = append(res.Rows, sumRow)
	return res, nil
}

// Render prints the table.
func (r *Table3Result) Render(w io.Writer) error {
	header(w, "Table III — utility contribution of different sensors")
	if err := metrics.Table(w, r.Rows); err != nil {
		return err
	}
	note(w, "paper sums: camera 7, lidar 6, radar 7 — reproduced %v/%v/%v",
		r.Sums[sensor.Camera], r.Sums[sensor.LiDAR], r.Sums[sensor.Radar])
	return nil
}

// Table2Result is the reproduced Table II with the paper's reference values
// and the element-wise match.
type Table2Result struct {
	Payoffs *lattice.Payoffs
	// PaperUtility and PaperCost are the printed Table II columns.
	PaperUtility, PaperCost []float64
	// MaxUtilityErr and MaxCostErr are the largest absolute deviations from
	// the paper values (expected 0: the derivation is exact).
	MaxUtilityErr, MaxCostErr float64
}

// Table2 derives Table II (per-decision utility and privacy cost) from
// Table III and the privacy ranking, and compares against the printed
// values.
func Table2() *Table2Result {
	res := &Table2Result{
		Payoffs:      lattice.PaperPayoffs(),
		PaperUtility: []float64{20, 13, 14, 13, 7, 6, 7, 0},
		PaperCost:    []float64{1.6, 1.5, 1.1, 0.6, 1.0, 0.5, 0.1, 0},
	}
	for k := 0; k < res.Payoffs.K(); k++ {
		if d := math.Abs(res.Payoffs.RawUtility[k] - res.PaperUtility[k]); d > res.MaxUtilityErr {
			res.MaxUtilityErr = d
		}
		if d := math.Abs(res.Payoffs.RawCost[k] - res.PaperCost[k]); d > res.MaxCostErr {
			res.MaxCostErr = d
		}
	}
	return res
}

// Render prints the table with paper-vs-derived columns.
func (r *Table2Result) Render(w io.Writer) error {
	header(w, "Table II — per-decision utility and privacy cost")
	lat := r.Payoffs.Lattice()
	rows := [][]string{{"Decision", "Shares", "Utility(paper)", "Utility(derived)", "Cost(paper)", "Cost(derived)", "f_k", "g_k"}}
	for k := 1; k <= r.Payoffs.K(); k++ {
		rows = append(rows, []string{
			fmt.Sprintf("P%d", k),
			lat.MustShare(lattice.Decision(k)).String(),
			metrics.FormatFloat(r.PaperUtility[k-1]),
			metrics.FormatFloat(r.Payoffs.RawUtility[k-1]),
			metrics.FormatFloat(r.PaperCost[k-1]),
			metrics.FormatFloat(r.Payoffs.RawCost[k-1]),
			metrics.FormatFloat(r.Payoffs.Utility[k-1]),
			metrics.FormatFloat(r.Payoffs.Cost[k-1]),
		})
	}
	if err := metrics.Table(w, rows); err != nil {
		return err
	}
	note(w, "max |derived - paper|: utility %g, cost %g (exact reproduction expected)",
		r.MaxUtilityErr, r.MaxCostErr)
	return nil
}
