package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sensor"
	"repro/internal/sim"
)

// stageCounter reads one stage-labeled worldbuild_* counter from a registry
// snapshot; a stage never touched has no series and reads 0.
func stageCounter(snap []obs.Point, name, stage string) int {
	for _, p := range snap {
		if p.Name != name {
			continue
		}
		for _, l := range p.Labels {
			if l.Name == "stage" && l.Value == stage {
				return int(p.Value)
			}
		}
	}
	return 0
}

// testWorlds builds a pair of very small worlds for experiment tests.
func testWorlds(t *testing.T) (*sim.World, *sim.World) {
	t.Helper()
	mk := func(src sim.CoeffSource) *sim.World {
		cfg := sim.DefaultWorldConfig()
		cfg.Net.Rows, cfg.Net.Cols = 8, 9
		cfg.Trace.Taxis, cfg.Trace.Transit = 25, 15
		cfg.Trace.Duration = 2 * time.Hour
		cfg.Regions = 4
		cfg.EdgeServers = 16
		cfg.Source = src
		w, err := sim.BuildWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	return mk(sim.CoeffBC), mk(sim.CoeffTD)
}

func TestScaleString(t *testing.T) {
	if ScaleSmall.String() != "small" || ScaleFull.String() != "full" {
		t.Error("scale strings wrong")
	}
	if Scale(9).String() == "" {
		t.Error("unknown scale string")
	}
}

func TestWorldConfigByScale(t *testing.T) {
	small := WorldConfig(ScaleSmall, sim.CoeffBC)
	full := WorldConfig(ScaleFull, sim.CoeffTD)
	if small.Source != sim.CoeffBC || full.Source != sim.CoeffTD {
		t.Error("source not applied")
	}
	if full.Regions <= small.Regions {
		t.Error("full scale should have more regions")
	}
}

func TestTable3(t *testing.T) {
	res, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sums[sensor.Camera] != 7 || res.Sums[sensor.LiDAR] != 6 || res.Sums[sensor.Radar] != 7 {
		t.Errorf("sums = %v", res.Sums)
	}
	// 1 header + 11 factors + 1 sum row.
	if len(res.Rows) != 13 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lane detection") {
		t.Error("render missing factor names")
	}
}

func TestTable2ExactReproduction(t *testing.T) {
	res := Table2()
	if res.MaxUtilityErr != 0 || res.MaxCostErr != 0 {
		t.Errorf("Table II not exact: utility err %g, cost err %g", res.MaxUtilityErr, res.MaxCostErr)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"P1", "P8", "{camera,lidar,radar}", "1.6"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig7(t *testing.T) {
	bc, _ := testWorlds(t)
	res, err := Fig7(bc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Vehicles != 40 {
		t.Errorf("vehicles = %d", res.Vehicles)
	}
	if res.Fixes == 0 {
		t.Error("no fixes")
	}
	if !res.BCArterialTop {
		t.Error("BC should concentrate on arterials")
	}
	if !res.TDArterialTop {
		t.Error("TD should concentrate on arterials")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "edge servers") {
		t.Error("render incomplete")
	}
}

func TestFig8(t *testing.T) {
	bc, td := testWorlds(t)
	res, err := Fig8(bc, td)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regions != 4 {
		t.Errorf("regions = %d", res.Regions)
	}
	if len(res.BC.Stats) != 4 || len(res.TD.Stats) != 4 {
		t.Error("per-region stats missing")
	}
	if res.BC.Edges == 0 {
		t.Error("region graph has no edges")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "within-region std") {
		t.Error("render incomplete")
	}
}

func TestFig9SmallSweep(t *testing.T) {
	bc, td := testWorlds(t)
	cfg := Fig9Config{
		EpsValues: []float64{0.02, 0.05},
		Opts:      sim.MacroOptions{MaxRounds: 1500},
	}
	res, err := Fig9(bc, td, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sources) != 2 {
		t.Fatalf("sources = %d", len(res.Sources))
	}
	for _, src := range res.Sources {
		if len(src.Points) != 2 {
			t.Fatalf("%s points = %d", src.Name, len(src.Points))
		}
		for _, p := range src.Points {
			if !p.Converged {
				t.Errorf("%s eps=%.2f did not converge (%d rounds)", src.Name, p.Eps, p.FDSRounds)
			}
			if p.Converged && p.LowerBound > p.FDSRounds {
				t.Errorf("%s eps=%.2f bound %d > achieved %d", src.Name, p.Eps, p.LowerBound, p.FDSRounds)
			}
		}
	}
	if !res.MonotoneNonIncreasing {
		t.Error("convergence time should not increase with eps")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig10(t *testing.T) {
	bc, _ := testWorlds(t)
	res, err := Fig10(bc, Fig10Config{Opts: sim.MacroOptions{MaxRounds: 400}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.LowSharingWinsAtLowX {
		t.Errorf("x=0.2 final = %v; want P7+P8 majority", res.FixedLow.Final)
	}
	if !res.FullSharingWinsAtHighX {
		t.Errorf("x=1.0 final = %v; want P1+P5 majority", res.FixedHigh.Final)
	}
	if !res.FDSConverged {
		t.Error("FDS run should converge to the desired field")
	}
	if res.FixedLow.Converged || res.FixedHigh.Converged {
		t.Error("fixed baselines should not reach the desired field")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FDS") {
		t.Error("render incomplete")
	}
}

func TestLambdaAblation(t *testing.T) {
	bc, _ := testWorlds(t)
	res, err := LambdaAblation(bc, []float64{0.05, 0.2}, sim.MacroOptions{MaxRounds: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if !p.Converged {
			t.Errorf("lambda %.2f did not converge", p.Lambda)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestMicroMacro(t *testing.T) {
	bc, _ := testWorlds(t)
	res, err := MicroMacro(bc, []int{12, 48}, sim.MacroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Rounds == 0 {
			t.Error("agent sim executed no rounds")
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWorldsSharedSubstrate(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping default-scale world build in -short mode")
	}
	b := sim.NewWorldBuilder()
	o := obs.New()
	b.Instrument(o)
	bc, td, err := WorldsWith(b, ScaleSmall, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Net != td.Net {
		t.Error("BC and TD worlds must share the same network artifact")
	}
	if bc.Trace != td.Trace {
		t.Error("BC and TD worlds must share the matched-trace artifact")
	}
	// The whole point of building the pair through one cache: the expensive
	// shared stages run exactly once, and the TD build hits them.
	snap := o.Registry().Snapshot()
	for _, stage := range []string{"network", "trace", "match"} {
		if got := stageCounter(snap, "worldbuild_stage_executions_total", stage); got != 1 {
			t.Errorf("stage %s executed %d times for the BC+TD pair, want 1", stage, got)
		}
	}
	// The TD build must be served from cache for the shared substrate. (It
	// hits network and match directly; trace records no hit because its only
	// consumer, match, never misses.)
	for _, stage := range []string{"network", "match"} {
		if stageCounter(snap, "worldbuild_stage_hits_total", stage) == 0 {
			t.Errorf("stage %s recorded no cache hits for the TD build", stage)
		}
	}
	// density is demanded only by the TD branch, so it also runs once.
	if got := stageCounter(snap, "worldbuild_stage_executions_total", "density"); got != 1 {
		t.Errorf("density executed %d times, want 1", got)
	}
}
