package experiments

import (
	"fmt"
	"io"

	"repro/internal/game"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Welfare experiment: the paper's stated objective is "to minimize
// vehicles' information disclosure without compromising their perception
// accuracy". This experiment measures both objective terms — the
// population-average perception utility and privacy cost of Eq. 4 — for
// three policies from the same start: a low fixed ratio (private but
// blind), full sharing (accurate but exposed), and FDS steering to a
// moderate desired field. A healthy cooperation environment shows up as
// FDS sitting between the extremes: most of the utility at a fraction of
// the exposure.

// WelfarePoint is one policy's outcome.
type WelfarePoint struct {
	Name        string
	Utility     float64
	PrivacyCost float64
	Fitness     float64
	Converged   bool
	Rounds      int
}

// WelfareResult is the comparison.
type WelfareResult struct {
	Points []WelfarePoint
	// FDSBalances: FDS achieves at least half of the full-sharing utility
	// at no more than 85% of its privacy cost.
	FDSBalances bool
}

// WelfareConfig tunes the experiment.
type WelfareConfig struct {
	LowX, HighX, TargetX float64
	Eps                  float64
	Opts                 sim.MacroOptions
}

func (c *WelfareConfig) fill() {
	if c.LowX == 0 {
		c.LowX = 0.1
	}
	if c.HighX == 0 {
		c.HighX = 1.0
	}
	if c.TargetX == 0 {
		c.TargetX = 0.6
	}
	if c.Eps == 0 {
		c.Eps = 0.05
	}
	if c.Opts.MaxRounds == 0 {
		c.Opts.MaxRounds = 600
	}
	if c.Opts.X0 == 0 {
		c.Opts.X0 = 0.4
	}
}

// WelfareComparison runs the three policies.
func WelfareComparison(w *sim.World, cfg WelfareConfig) (*WelfareResult, error) {
	cfg.fill()
	start := game.NewUniformState(w.Model.M(), w.Model.K(), cfg.Opts.X0)

	lambda := cfg.Opts.Lambda
	if lambda == 0 {
		lambda = 0.1
	}
	targetEq, err := w.EquilibriumFrom(start, cfg.TargetX, lambda, cfg.Opts)
	if err != nil {
		return nil, err
	}
	field, err := sim.FieldFromState(targetEq, cfg.Eps)
	if err != nil {
		return nil, err
	}

	endState := func(run *policy.ShapeResult) *game.State {
		return &game.State{
			P: run.Trajectory[len(run.Trajectory)-1],
			X: run.RatioTrace[len(run.RatioTrace)-1],
		}
	}
	measure := func(name string, run *policy.ShapeResult) (WelfarePoint, error) {
		wf, err := w.Model.Welfare(endState(run))
		if err != nil {
			return WelfarePoint{}, err
		}
		return WelfarePoint{
			Name:        name,
			Utility:     wf.Utility,
			PrivacyCost: wf.PrivacyCost,
			Fitness:     wf.Fitness,
			Converged:   run.Converged,
			Rounds:      run.Rounds,
		}, nil
	}

	res := &WelfareResult{}
	for _, fixed := range []struct {
		name string
		x    float64
	}{
		{fmt.Sprintf("fixed x=%.1f", cfg.LowX), cfg.LowX},
		{fmt.Sprintf("fixed x=%.1f", cfg.HighX), cfg.HighX},
	} {
		s := start.Clone()
		for i := range s.X {
			s.X[i] = fixed.x
		}
		run, err := w.RunFixed(s, field, cfg.Opts)
		if err != nil {
			return nil, err
		}
		pt, err := measure(fixed.name, run)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}

	fdsRun, err := w.RunFDS(start.Clone(), field, cfg.Opts)
	if err != nil {
		return nil, err
	}
	pt, err := measure("FDS", fdsRun.Shape)
	if err != nil {
		return nil, err
	}
	res.Points = append(res.Points, pt)

	low, high, fds := res.Points[0], res.Points[1], res.Points[2]
	_ = low
	if high.Utility > 0 && high.PrivacyCost > 0 {
		res.FDSBalances = fds.Utility >= 0.5*high.Utility && fds.PrivacyCost <= 0.85*high.PrivacyCost
	}
	return res, nil
}

// Render prints the comparison.
func (r *WelfareResult) Render(w io.Writer) error {
	header(w, "Welfare — perception utility vs privacy exposure (paper objective)")
	rows := [][]string{{"policy", "avg utility", "avg privacy cost", "avg fitness", "converged", "rounds"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Name,
			metrics.FormatFloat(p.Utility),
			metrics.FormatFloat(p.PrivacyCost),
			metrics.FormatFloat(p.Fitness),
			fmt.Sprintf("%v", p.Converged),
			fmt.Sprintf("%d", p.Rounds),
		})
	}
	if err := metrics.Table(w, rows); err != nil {
		return err
	}
	note(w, "FDS keeps >=50%% of full-sharing utility at <=85%% of its exposure: %v", r.FDSBalances)
	return nil
}
