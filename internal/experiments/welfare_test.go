package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestWelfareComparison(t *testing.T) {
	bc, _ := testWorlds(t)
	res, err := WelfareComparison(bc, WelfareConfig{Opts: sim.MacroOptions{MaxRounds: 400}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	low, high, fds := res.Points[0], res.Points[1], res.Points[2]

	// The structural ordering the paper's motivation implies.
	if high.Utility <= low.Utility {
		t.Errorf("full sharing utility %.3f should exceed low sharing %.3f", high.Utility, low.Utility)
	}
	if high.PrivacyCost <= low.PrivacyCost {
		t.Errorf("full sharing exposure %.3f should exceed low sharing %.3f", high.PrivacyCost, low.PrivacyCost)
	}
	if !fds.Converged {
		t.Error("FDS should converge to the moderate field")
	}
	if fds.Utility <= low.Utility {
		t.Errorf("FDS utility %.3f should beat the privacy-only baseline %.3f", fds.Utility, low.Utility)
	}
	if fds.PrivacyCost >= high.PrivacyCost {
		t.Errorf("FDS exposure %.3f should undercut full sharing %.3f", fds.PrivacyCost, high.PrivacyCost)
	}

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "privacy cost") {
		t.Error("render incomplete")
	}
}

// TestModelWelfareConsistency: Welfare's fitness must equal utility minus
// privacy cost.
func TestModelWelfareConsistency(t *testing.T) {
	bc, _ := testWorlds(t)
	s, err := bc.EquilibriumAt(0.7, sim.MacroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := bc.Model.Welfare(s)
	if err != nil {
		t.Fatal(err)
	}
	if diff := w.Fitness - (w.Utility - w.PrivacyCost); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("fitness %.6f != utility %.6f - cost %.6f", w.Fitness, w.Utility, w.PrivacyCost)
	}
	if w.PrivacyCost < 0 || w.Utility < 0 {
		t.Error("welfare terms must be non-negative")
	}
}
