package experiments

import (
	"fmt"
	"io"

	"repro/internal/game"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Fig10Result reproduces Fig. 10: the evolution of the decision-share
// population in a focal region under (1) a fixed low sharing ratio, (2) a
// fixed full sharing ratio, (3) FDS steering toward a desired field, plus
// (4) the per-round share deltas of the FDS run, which exhibit the paper's
// fast-start / long-tail profile.
type Fig10Result struct {
	Region int
	// Panels in paper order.
	FixedLow, FixedHigh, FDS Fig10Panel
	// Deltas[t] is the max per-round share change of the FDS run.
	Deltas []float64
	// LowSharingWinsAtLowX: at the low ratio, the low-sharing decisions
	// (P7+P8) dominate (paper: 87% + 13%).
	LowSharingWinsAtLowX bool
	// FullSharingWinsAtHighX: at x = 1, generous decisions (P1 + one-off
	// decisions like P5) dominate (paper: 76% + 24%).
	FullSharingWinsAtHighX bool
	// FDSConverged: FDS reached the desired field where neither fixed
	// ratio did.
	FDSConverged bool
	// FastThenLongTail: the mean delta of the first phase exceeds the mean
	// delta of the tail (paper: fast in the first ~8 rounds, long tail
	// after).
	FastThenLongTail bool
}

// Fig10Panel is one trajectory panel: per-decision share series for the
// focal region.
type Fig10Panel struct {
	Name      string
	X         float64 // fixed ratio (NaN-like 0 for FDS; see FinalX)
	Series    []metrics.Series
	Final     []float64
	FinalX    float64
	Converged bool
	Rounds    int
}

// Fig10Config tunes the experiment.
type Fig10Config struct {
	// LowX and HighX are the fixed baseline ratios (paper: 0.2 and 1.0).
	LowX, HighX float64
	// TargetX defines the desired field (its reachable equilibrium).
	TargetX float64
	// Eps is the field tolerance.
	Eps float64
	// Region is the focal region to plot.
	Region int
	// Opts are the macroscopic run options.
	Opts sim.MacroOptions
}

func (c *Fig10Config) fill() {
	if c.LowX == 0 {
		// The paper uses x = 0.2; the low-sharing basin boundary scales
		// inversely with the utility-coefficient calibration, and under our
		// BetaMean normalization it sits near x ~ 0.15, so the default low
		// regime is 0.1 (see EXPERIMENTS.md).
		c.LowX = 0.1
	}
	if c.HighX == 0 {
		c.HighX = 1.0
	}
	if c.TargetX == 0 {
		c.TargetX = 0.75
	}
	if c.Eps == 0 {
		c.Eps = 0.03
	}
	if c.Opts.MaxRounds == 0 {
		c.Opts.MaxRounds = 400
	}
	if c.Opts.X0 == 0 {
		c.Opts.X0 = 0.5
	}
}

// Fig10 runs the three trajectories on one world.
func Fig10(w *sim.World, cfg Fig10Config) (*Fig10Result, error) {
	cfg.fill()
	if cfg.Region < 0 || cfg.Region >= w.Model.M() {
		return nil, fmt.Errorf("experiments: region %d out of range", cfg.Region)
	}
	res := &Fig10Result{Region: cfg.Region}

	// The paper's Fig. 10 starts from a mixed population and watches it
	// flow under each regime, so the starting state is the uniform mix (not
	// a pre-equilibrated one, which would already sit in some basin).
	start := game.NewUniformState(w.Model.M(), w.Model.K(), cfg.Opts.X0)
	lambda := cfg.Opts.Lambda
	if lambda == 0 {
		lambda = 0.1
	}
	targetEq, err := w.EquilibriumFrom(start, cfg.TargetX, lambda, cfg.Opts)
	if err != nil {
		return nil, err
	}
	field, err := sim.FieldFromState(targetEq, cfg.Eps)
	if err != nil {
		return nil, err
	}

	runFixed := func(name string, x float64) (Fig10Panel, error) {
		s := start.Clone()
		for i := range s.X {
			s.X[i] = x
		}
		run, err := w.RunFixed(s, field, cfg.Opts)
		if err != nil {
			return Fig10Panel{}, err
		}
		return panelFromShape(name, x, run, cfg.Region), nil
	}
	res.FixedLow, err = runFixed(fmt.Sprintf("fixed x=%.1f", cfg.LowX), cfg.LowX)
	if err != nil {
		return nil, err
	}
	res.FixedHigh, err = runFixed(fmt.Sprintf("fixed x=%.1f", cfg.HighX), cfg.HighX)
	if err != nil {
		return nil, err
	}

	fdsRun, err := w.RunFDS(start.Clone(), field, cfg.Opts)
	if err != nil {
		return nil, err
	}
	res.FDS = panelFromShape("FDS", 0, fdsRun.Shape, cfg.Region)
	res.FDSConverged = fdsRun.Shape.Converged

	// Per-round max deltas of the FDS run (Fig. 10's fourth panel).
	traj := fdsRun.Shape.Trajectory
	for t := 1; t < len(traj); t++ {
		res.Deltas = append(res.Deltas, maxDelta(traj[t-1][cfg.Region], traj[t][cfg.Region]))
	}
	res.FastThenLongTail = fastThenLongTail(res.Deltas)

	// Paper's qualitative claims.
	low := res.FixedLow.Final
	res.LowSharingWinsAtLowX = low[6]+low[7] > 0.5 // P7 + P8
	high := res.FixedHigh.Final
	res.FullSharingWinsAtHighX = high[0]+high[4] > 0.5 // P1 + P5
	return res, nil
}

func panelFromShape(name string, x float64, run *policy.ShapeResult, region int) Fig10Panel {
	p := Fig10Panel{Name: name, X: x, Converged: run.Converged, Rounds: run.Rounds}
	if len(run.Trajectory) == 0 {
		return p
	}
	k := len(run.Trajectory[0][region])
	p.Series = make([]metrics.Series, k)
	for d := 0; d < k; d++ {
		p.Series[d].Name = fmt.Sprintf("p%d", d+1)
	}
	for _, snap := range run.Trajectory {
		for d, v := range snap[region] {
			p.Series[d].Append(v)
		}
	}
	p.Final = append([]float64(nil), run.Trajectory[len(run.Trajectory)-1][region]...)
	p.FinalX = run.RatioTrace[len(run.RatioTrace)-1][region]
	return p
}

func maxDelta(prev, cur []float64) float64 {
	worst := 0.0
	for k := range prev {
		d := cur[k] - prev[k]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// fastThenLongTail checks that the first quarter of the run moves faster on
// average than the last half.
func fastThenLongTail(deltas []float64) bool {
	if len(deltas) < 8 {
		return false
	}
	head := deltas[:len(deltas)/4]
	tail := deltas[len(deltas)/2:]
	return mean(head) > mean(tail)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range xs {
		total += v
	}
	return total / float64(len(xs))
}

// Render prints all four panels.
func (r *Fig10Result) Render(w io.Writer) error {
	header(w, fmt.Sprintf("Fig. 10 — decision-share evolution (region %d)", r.Region))
	for _, panel := range []Fig10Panel{r.FixedLow, r.FixedHigh, r.FDS} {
		fmt.Fprintf(w, "%s (converged=%v after %d rounds, final x=%.2f):\n",
			panel.Name, panel.Converged, panel.Rounds, panel.FinalX)
		// Plot only decisions that ever exceed 5% to keep the chart legible.
		var visible []metrics.Series
		for _, s := range panel.Series {
			for _, v := range s.Values {
				if v > 0.05 {
					visible = append(visible, s)
					break
				}
			}
		}
		if err := metrics.Render(w, metrics.Lines(visible...), metrics.WithSize(64, 10)); err != nil {
			return err
		}
		rows := [][]string{{"decision", "final share"}}
		for d, v := range panel.Final {
			if v > 0.01 {
				rows = append(rows, []string{fmt.Sprintf("P%d", d+1), metrics.FormatFloat(v)})
			}
		}
		if err := metrics.Render(w, metrics.Rows(rows)); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "per-round max share delta of the FDS run:")
	delta := metrics.NewSeries("delta", metrics.WithValues(r.Deltas...))
	if err := metrics.Render(w, metrics.Lines(*delta), metrics.WithSize(64, 8)); err != nil {
		return err
	}

	note(w, "paper: x=0.2 converges to low-sharing decisions (P7 87%%, P8 13%%) — reproduced: %v (P7+P8=%.2f)",
		r.LowSharingWinsAtLowX, r.FixedLow.Final[6]+r.FixedLow.Final[7])
	note(w, "paper: x=1.0 converges to generous decisions (P1 76%%, P5 24%%) — reproduced: %v (P1+P5=%.2f)",
		r.FullSharingWinsAtHighX, r.FixedHigh.Final[0]+r.FixedHigh.Final[4])
	note(w, "paper: only FDS reaches the desired field — reproduced: %v", r.FDSConverged)
	note(w, "paper: fast convergence first, long tail after — reproduced: %v", r.FastThenLongTail)
	return nil
}
