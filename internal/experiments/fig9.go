package experiments

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Fig9Point is one bar of Fig. 9: the FDS convergence time for a tolerance
// eps, together with the lower bound and the resulting approximation ratio.
type Fig9Point struct {
	Eps        float64
	FDSRounds  int
	Converged  bool
	LowerBound int
	LBCapped   bool
	Ratio      float64
}

// Fig9Result reproduces Fig. 9(a)/(b): convergence time of FDS as the
// acceptable error eps grows from 0.01 to 0.05, for BC- and TD-derived
// utility coefficients, against the lower bound of the relaxed problem.
type Fig9Result struct {
	Sources []Fig9Source
	// MonotoneNonIncreasing reports the paper's headline: convergence time
	// shrinks as eps loosens (checked per source).
	MonotoneNonIncreasing bool
	// MaxRatio is the worst approximation ratio over converged points
	// (paper: 1.15 for BC, 1.08 for TD).
	MaxRatio float64
}

// Fig9Source is one coefficient source's sweep.
type Fig9Source struct {
	Name   string
	Points []Fig9Point
}

// Fig9Config tunes the experiment.
type Fig9Config struct {
	// EpsValues to sweep (default 0.01..0.05).
	EpsValues []float64
	// StartX and TargetX are the initial and desired sharing regimes.
	StartX, TargetX float64
	// Opts are the macroscopic run options.
	Opts sim.MacroOptions
}

func (c *Fig9Config) fill() {
	if len(c.EpsValues) == 0 {
		c.EpsValues = []float64{0.01, 0.02, 0.03, 0.04, 0.05}
	}
	if c.StartX == 0 {
		c.StartX = 0.15
	}
	if c.TargetX == 0 {
		c.TargetX = 0.8
	}
	if c.Opts.MaxRounds == 0 {
		c.Opts.MaxRounds = 2000
	}
	if c.Opts.Lambda == 0 {
		c.Opts.Lambda = 0.05
	}
}

// Fig9 runs the convergence-time sweep on both worlds.
func Fig9(bc, td *sim.World, cfg Fig9Config) (*Fig9Result, error) {
	cfg.fill()
	res := &Fig9Result{MonotoneNonIncreasing: true}
	for _, src := range []struct {
		name  string
		world *sim.World
	}{{"BC", bc}, {"TD", td}} {
		points, err := fig9Sweep(src.world, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: Fig9 %s sweep: %w", src.name, err)
		}
		res.Sources = append(res.Sources, Fig9Source{Name: src.name, Points: points})
		for i := 1; i < len(points); i++ {
			if points[i].Converged && points[i-1].Converged && points[i].FDSRounds > points[i-1].FDSRounds {
				res.MonotoneNonIncreasing = false
			}
		}
		for _, p := range points {
			if p.Converged && !p.LBCapped && p.Ratio > res.MaxRatio {
				res.MaxRatio = p.Ratio
			}
		}
	}
	return res, nil
}

// fig9Sweep runs FDS once under the tightest tolerance and then measures,
// on that single deployed trajectory, the convergence time for every eps —
// the paper's plot semantics ("the time duration that p converges to the
// interval [p* - eps, p* + eps]"), which is monotone in eps by
// construction. The lower bound is recomputed per eps.
func fig9Sweep(w *sim.World, cfg Fig9Config) ([]Fig9Point, error) {
	opts := cfg.Opts
	start, err := w.EquilibriumAt(cfg.StartX, opts)
	if err != nil {
		return nil, err
	}
	targetEq, err := w.EquilibriumFrom(start, cfg.TargetX, opts.Lambda, opts)
	if err != nil {
		return nil, err
	}

	minEps := cfg.EpsValues[0]
	for _, e := range cfg.EpsValues {
		if e < minEps {
			minEps = e
		}
	}
	refField, err := sim.FieldFromState(targetEq, minEps)
	if err != nil {
		return nil, err
	}
	run, err := w.RunFDS(start.Clone(), refField, opts)
	if err != nil {
		return nil, err
	}
	traj := run.Shape.Trajectory

	// Per-(region, decision) share series across the run.
	m, k := w.Model.M(), w.Model.K()
	series := make([][]metrics.Series, m)
	for i := 0; i < m; i++ {
		series[i] = make([]metrics.Series, k)
		for d := 0; d < k; d++ {
			for _, snap := range traj {
				series[i][d].Append(snap[i][d])
			}
		}
	}

	points := make([]Fig9Point, 0, len(cfg.EpsValues))
	for _, eps := range cfg.EpsValues {
		pt := Fig9Point{Eps: eps, Converged: true}
		for i := 0; i < m && pt.Converged; i++ {
			for d := 0; d < k; d++ {
				r, ok := series[i][d].ConvergenceRound(targetEq.P[i][d], eps)
				if !ok {
					pt.Converged = false
					pt.FDSRounds = len(traj)
					break
				}
				if r > pt.FDSRounds {
					pt.FDSRounds = r
				}
			}
		}

		field, err := sim.FieldFromState(targetEq, eps)
		if err != nil {
			return nil, err
		}
		mu, tau := opts.Mu, opts.Tau
		if mu <= 0 {
			mu = 0.5
		}
		if tau <= 0 {
			tau = 0.15
		}
		lb, capped, err := policy.RevisionLowerBound(w.Model, field, start, mu, tau, opts.Lambda, opts.MaxRounds)
		if err != nil {
			return nil, err
		}
		pt.LowerBound, pt.LBCapped = lb, capped
		if pt.Converged && !pt.LBCapped {
			pt.Ratio = metrics.ApproximationRatio(pt.FDSRounds, pt.LowerBound)
		}
		points = append(points, pt)
	}
	return points, nil
}

// Render prints the sweep.
func (r *Fig9Result) Render(w io.Writer) error {
	header(w, "Fig. 9 — convergence time of FDS vs acceptable error eps")
	for _, src := range r.Sources {
		fmt.Fprintf(w, "source %s:\n", src.Name)
		rows := [][]string{{"eps", "FDS rounds", "converged", "lower bound", "approx ratio"}}
		labels := make([]string, 0, len(src.Points))
		values := make([]float64, 0, len(src.Points))
		for _, p := range src.Points {
			ratio := "-"
			if p.Converged && !p.LBCapped {
				ratio = metrics.FormatFloat(p.Ratio)
			}
			rows = append(rows, []string{
				metrics.FormatFloat(p.Eps),
				fmt.Sprintf("%d", p.FDSRounds),
				fmt.Sprintf("%v", p.Converged),
				fmt.Sprintf("%d", p.LowerBound),
				ratio,
			})
			labels = append(labels, fmt.Sprintf("eps=%.2f", p.Eps))
			values = append(values, float64(p.FDSRounds))
		}
		if err := metrics.Table(w, rows); err != nil {
			return err
		}
		if err := metrics.BarChart(w, labels, values, 40); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	note(w, "paper: convergence time decreases as eps loosens — reproduced: %v", r.MonotoneNonIncreasing)
	note(w, "paper: approximation ratios within [1.00, 1.15] (BC) and [1.00, 1.08] (TD); measured max ratio %.2f "+
		"(our relaxation bound is evaluated on a differently calibrated instance; see EXPERIMENTS.md)", r.MaxRatio)
	return nil
}
