package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/game"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Beta-noise ablation: the paper's Section VII asks how "the approximation
// errors of utility coefficients might impact the convergence time of
// vehicles' decisions". Here the FDS controller plans with *perturbed*
// region coefficients beta_i * (1 + N(0, sigma)) while the population
// evolves under the true coefficients — exactly the model-mismatch the
// coarse-grained clustering of Step 2 introduces.

// BetaNoisePoint is one noise level's outcome.
type BetaNoisePoint struct {
	Sigma     float64
	Rounds    int
	Converged bool
	// Shortfall is the final worst distance to the field when unconverged.
	Shortfall float64
}

// BetaNoiseResult is the sweep outcome.
type BetaNoiseResult struct {
	Points []BetaNoisePoint
	// NoiseHurts reports the expected direction: the noisiest controller is
	// no faster than the exact one.
	NoiseHurts bool
}

// BetaNoise runs the sweep on one world.
func BetaNoise(w *sim.World, sigmas []float64, opts sim.MacroOptions) (*BetaNoiseResult, error) {
	if len(sigmas) == 0 {
		sigmas = []float64{0, 0.2, 0.5, 1.0}
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 1500
	}
	if opts.Lambda == 0 {
		opts.Lambda = 0.1
	}
	start, err := w.EquilibriumAt(0.15, opts)
	if err != nil {
		return nil, err
	}
	targetEq, err := w.EquilibriumFrom(start, 0.8, opts.Lambda, opts)
	if err != nil {
		return nil, err
	}
	field, err := sim.FieldFromState(targetEq, 0.04)
	if err != nil {
		return nil, err
	}

	res := &BetaNoiseResult{}
	for _, sigma := range sigmas {
		pt, err := betaNoiseRun(w, field, start, sigma, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: beta noise sigma=%.2f: %w", sigma, err)
		}
		res.Points = append(res.Points, *pt)
	}
	if n := len(res.Points); n >= 2 {
		first, last := res.Points[0], res.Points[n-1]
		res.NoiseHurts = !last.Converged || !first.Converged || last.Rounds >= first.Rounds
	}
	return res, nil
}

func betaNoiseRun(w *sim.World, field *policy.Field, start *game.State, sigma float64, opts sim.MacroOptions) (*BetaNoisePoint, error) {
	// Perturbed coefficients for the controller's model.
	rng := rand.New(rand.NewSource(4242))
	noisy := make([]float64, len(w.Beta))
	for i, b := range w.Beta {
		factor := 1 + rng.NormFloat64()*sigma
		if factor < 0.1 {
			factor = 0.1
		}
		noisy[i] = b * factor
	}
	noisyModel, err := game.NewModel(w.Payoffs, w.Graph, noisy)
	if err != nil {
		return nil, err
	}
	fds, err := policy.NewFDS(noisyModel, field, opts.Lambda)
	if err != nil {
		return nil, err
	}
	stepper, err := w.NewStepper(opts)
	if err != nil {
		return nil, err
	}

	// Manual closed loop: the controller plans on the noisy model, the
	// population steps under the true one. (FDS.Shape insists controller
	// and dynamics share a model, which is exactly the assumption this
	// ablation breaks.)
	s := start.Clone()
	pt := &BetaNoisePoint{Sigma: sigma}
	for t := 0; t < opts.MaxRounds; t++ {
		if ok, short := field.Converged(s); ok {
			pt.Converged = true
			pt.Rounds = t
			pt.Shortfall = short
			return pt, nil
		}
		if _, err := fds.UpdateRatios(s); err != nil {
			return nil, err
		}
		if err := stepper.Step(s); err != nil {
			return nil, err
		}
	}
	ok, short := field.Converged(s)
	pt.Converged = ok
	pt.Rounds = opts.MaxRounds
	pt.Shortfall = short
	return pt, nil
}

// Render prints the sweep.
func (r *BetaNoiseResult) Render(w io.Writer) error {
	header(w, "Ablation — utility-coefficient approximation error (future work §VII)")
	rows := [][]string{{"noise sigma", "FDS rounds", "converged", "final shortfall"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			metrics.FormatFloat(p.Sigma),
			fmt.Sprintf("%d", p.Rounds),
			fmt.Sprintf("%v", p.Converged),
			metrics.FormatFloat(p.Shortfall),
		})
	}
	if err := metrics.Table(w, rows); err != nil {
		return err
	}
	note(w, "controller with noisy coefficients is no faster than the exact one: %v", r.NoiseHurts)
	return nil
}
