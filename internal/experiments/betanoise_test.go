package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestBetaNoise(t *testing.T) {
	bc, _ := testWorlds(t)
	res, err := BetaNoise(bc, []float64{0, 0.5}, sim.MacroOptions{MaxRounds: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	exact := res.Points[0]
	if !exact.Converged {
		t.Error("exact-coefficient controller must converge")
	}
	if exact.Sigma != 0 {
		t.Error("first point should be the exact controller")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "noise sigma") {
		t.Error("render incomplete")
	}
}

// TestBetaNoiseSevereMismatch: a controller with wildly wrong coefficients
// still keeps the state valid (no panics, simplex preserved) even when it
// fails to converge.
func TestBetaNoiseSevereMismatch(t *testing.T) {
	bc, _ := testWorlds(t)
	res, err := BetaNoise(bc, []float64{3.0}, sim.MacroOptions{MaxRounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if p.Converged && p.Rounds == 0 {
		t.Error("severe mismatch cannot converge instantly")
	}
	if p.Shortfall < 0 {
		t.Error("negative shortfall")
	}
}
