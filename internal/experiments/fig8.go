package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Fig8Result reproduces Fig. 8: Algorithm-1 clustering of the road segments
// into M regions under BC and TD coefficients (8a, 8b), the per-region
// coefficient distributions (8c), and the region-graph summaries (8d, 8e).
type Fig8Result struct {
	Regions int
	// BC and TD carry the per-source results.
	BC, TD Fig8Source
	// TDStdHigher reports the paper's headline observation: the average
	// within-region standard deviation is higher for TD than for BC
	// (paper: 30.31 vs 17.08) because TD is time-averaged.
	TDStdHigher bool
}

// Fig8Source is one coefficient source's clustering summary.
type Fig8Source struct {
	Name string
	// Sizes are the region segment counts (node sizes in 8d/8e).
	Sizes []int
	// Stats are the per-region coefficient statistics (8c).
	Stats []RegionBar
	// AvgWithinStd is the average within-region std.
	AvgWithinStd float64
	// GlobalStd is the whole-network coefficient std (for the reduction
	// ratio).
	GlobalStd float64
	// NormAvgStd is AvgWithinStd expressed in units of the source's global
	// coefficient standard deviation, making BC and TD spreads comparable
	// (the paper reports 17.08 for BC vs 30.31 for TD on a common scale).
	NormAvgStd float64
	// TimeResolvedNormStd is the within-region std over time-resolved
	// coefficient samples in the same global-sigma units. For the static BC
	// it equals NormAvgStd; for TD the samples are the per-10-minute window
	// densities, which is where the extra dispersion the paper describes
	// comes from ("their TD at each time point might have a higher
	// difference").
	TimeResolvedNormStd float64
	// Edges is the number of inter-region edges in the auxiliary graph.
	Edges int
	// MeanGammaSelf is the average intra-region data-sharing frequency.
	MeanGammaSelf float64
}

// RegionBar is one bar of Fig. 8(c).
type RegionBar struct {
	Region     int
	Mean       float64
	P025, P975 float64
	Std        float64
}

// Fig8 summarizes the clustering of both worlds (which share network and
// trace seeds).
func Fig8(bc, td *sim.World) (*Fig8Result, error) {
	if bc.Assignment.M != td.Assignment.M {
		return nil, fmt.Errorf("experiments: BC and TD worlds disagree on M: %d vs %d",
			bc.Assignment.M, td.Assignment.M)
	}
	res := &Fig8Result{Regions: bc.Assignment.M}
	var err error
	res.BC, err = fig8Source("BC", bc)
	if err != nil {
		return nil, err
	}
	res.TD, err = fig8Source("TD", td)
	if err != nil {
		return nil, err
	}
	// The paper's comparison (17.08 BC vs 30.31 TD) contrasts the static BC
	// spread with the time-resolved TD spread on a common unit scale.
	res.TDStdHigher = res.TD.TimeResolvedNormStd > res.BC.TimeResolvedNormStd
	return res, nil
}

func fig8Source(name string, w *sim.World) (Fig8Source, error) {
	src := Fig8Source{Name: name, Sizes: w.Assignment.Sizes()}
	for _, st := range w.RegionStats {
		src.Stats = append(src.Stats, RegionBar{
			Region: st.Region,
			Mean:   st.Mean,
			P025:   st.P025,
			P975:   st.P975,
			Std:    st.Std,
		})
	}
	src.AvgWithinStd = w.AvgWithinStd
	src.GlobalStd = metrics.Summarize(w.Weights).Std
	src.Edges = w.Graph.NumEdges()
	total := 0.0
	for i := 0; i < w.Graph.M(); i++ {
		total += w.Graph.Gamma(i, i)
	}
	src.MeanGammaSelf = total / float64(w.Graph.M())

	if src.GlobalStd > 0 {
		src.NormAvgStd = src.AvgWithinStd / src.GlobalStd
	}
	src.TimeResolvedNormStd = src.NormAvgStd
	if name == "TD" {
		trStd, err := timeResolvedTDStd(w, src.GlobalStd)
		if err != nil {
			return Fig8Source{}, err
		}
		src.TimeResolvedNormStd = trStd
	}
	return src, nil
}

// timeResolvedTDStd computes the average within-region std of the
// per-window TD samples, expressed in units of the static global std.
func timeResolvedTDStd(w *sim.World, globalStd float64) (float64, error) {
	if globalStd == 0 {
		return 0, nil
	}
	windows, err := trace.WindowDensities(w.Trace, w.Net.NumSegments(), 10*time.Minute)
	if err != nil {
		return 0, fmt.Errorf("experiments: time-resolved TD: %w", err)
	}
	total := 0.0
	for i := 0; i < w.Assignment.M; i++ {
		var samples []float64
		for _, seg := range w.Assignment.Members(i) {
			for _, win := range windows {
				samples = append(samples, win[seg]/globalStd)
			}
		}
		total += metrics.Summarize(samples).Std
	}
	return total / float64(w.Assignment.M), nil
}

// Render prints the clustering summary.
func (r *Fig8Result) Render(w io.Writer) error {
	header(w, fmt.Sprintf("Fig. 8 — road segment clustering into %d regions (Algorithm 1)", r.Regions))
	for _, src := range []Fig8Source{r.BC, r.TD} {
		fmt.Fprintf(w, "source %s (8%s):\n", src.Name, map[string]string{"BC": "a", "TD": "b"}[src.Name])
		rows := [][]string{{"region", "segments", "mean", "p2.5", "p97.5", "std"}}
		for _, b := range src.Stats {
			rows = append(rows, []string{
				fmt.Sprintf("r%d", b.Region),
				fmt.Sprintf("%d", src.Sizes[b.Region]),
				metrics.FormatFloat(b.Mean),
				metrics.FormatFloat(b.P025),
				metrics.FormatFloat(b.P975),
				metrics.FormatFloat(b.Std),
			})
		}
		if err := metrics.Table(w, rows); err != nil {
			return err
		}
		note(w, "avg within-region std %.5f (global %.5f, reduction x%.2f); region graph: %d edges, mean gamma_ii %.3f",
			src.AvgWithinStd, src.GlobalStd, safeRatio(src.GlobalStd, src.AvgWithinStd), src.Edges, src.MeanGammaSelf)
		fmt.Fprintln(w)
	}
	note(w, "paper: avg within-region std 17.08 (BC) vs 30.31 (TD, time-resolved) — reproduced: %v "+
		"(global-sigma units: BC %.2f vs TD %.2f)", r.TDStdHigher, r.BC.TimeResolvedNormStd, r.TD.TimeResolvedNormStd)
	return nil
}

func safeRatio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
