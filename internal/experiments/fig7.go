package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/metrics"
	"repro/internal/roadnet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Fig7Result reproduces Fig. 7: the dataset overview — edge-server
// deployment (7a), the BC heat map (7b) and the average-TD heat map (7c),
// summarized per road class (the printable analogue of the spatial heat
// maps: arterials must dominate both).
type Fig7Result struct {
	EdgeServers   int
	CellVehicles  metrics.Summary // vehicles per Voronoi cell at peak
	Vehicles      int
	Taxis         int
	Transit       int
	Fixes         int
	BCByClass     map[roadnet.RoadClass]metrics.Summary
	TDByClass     map[roadnet.RoadClass]metrics.Summary
	BCArterialTop bool // arterial mean BC is the class maximum
	TDArterialTop bool
}

// Fig7 computes the dataset overview from the BC world (which carries both
// the trace and the network; TD is recomputed here so both heat maps come
// from the same substrate).
func Fig7(w *sim.World) (*Fig7Result, error) {
	res := &Fig7Result{
		EdgeServers: w.Voronoi.NumCells(),
		BCByClass:   make(map[roadnet.RoadClass]metrics.Summary),
		TDByClass:   make(map[roadnet.RoadClass]metrics.Summary),
	}
	res.Vehicles = w.Trace.NumVehicles()
	res.Taxis, res.Transit = w.Trace.KindCounts()
	res.Fixes = w.Trace.NumFixes()

	// Vehicles per edge-server cell in a peak 10-minute window.
	start, _, ok := w.Trace.TimeSpan()
	if !ok {
		return nil, fmt.Errorf("experiments: empty trace")
	}
	peak := start.Add(150 * time.Minute)
	window := w.Trace.Window(peak, peak.Add(10*time.Minute))
	perCell := make(map[int]map[int]struct{})
	for _, f := range window {
		cell := w.Voronoi.CellOf(f.Position)
		if perCell[cell] == nil {
			perCell[cell] = make(map[int]struct{})
		}
		perCell[cell][int(f.Vehicle)] = struct{}{}
	}
	counts := make([]float64, 0, len(perCell))
	for _, vs := range perCell {
		counts = append(counts, float64(len(vs)))
	}
	res.CellVehicles = metrics.Summarize(counts)

	bc := w.Net.TravelTimeBetweenness()
	td, err := trace.AverageDensity(w.Trace, w.Net.NumSegments(), 10*time.Minute)
	if err != nil {
		return nil, fmt.Errorf("experiments: computing TD: %w", err)
	}
	byClass := func(values []float64) map[roadnet.RoadClass]metrics.Summary {
		groups := make(map[roadnet.RoadClass][]float64)
		for _, s := range w.Net.Segments() {
			groups[s.Class] = append(groups[s.Class], values[s.ID])
		}
		out := make(map[roadnet.RoadClass]metrics.Summary, len(groups))
		for c, vs := range groups {
			out[c] = metrics.Summarize(vs)
		}
		return out
	}
	res.BCByClass = byClass(bc)
	res.TDByClass = byClass(td)
	res.BCArterialTop = classTop(res.BCByClass)
	res.TDArterialTop = classTop(res.TDByClass)
	return res, nil
}

func classTop(m map[roadnet.RoadClass]metrics.Summary) bool {
	art, ok := m[roadnet.ClassArterial]
	if !ok {
		return false
	}
	for c, s := range m {
		if c != roadnet.ClassArterial && s.Mean > art.Mean {
			return false
		}
	}
	return true
}

// Render prints the figure summary.
func (r *Fig7Result) Render(w io.Writer) error {
	header(w, "Fig. 7 — dataset: edge servers, BC and TD heat maps")
	rows := [][]string{
		{"Quantity", "Value"},
		{"edge servers (7a)", fmt.Sprintf("%d evenly deployed", r.EdgeServers)},
		{"vehicles", fmt.Sprintf("%d (%d taxi + %d transit)", r.Vehicles, r.Taxis, r.Transit)},
		{"GPS fixes", fmt.Sprintf("%d", r.Fixes)},
		{"vehicles/cell @peak", fmt.Sprintf("mean %.1f max %.0f", r.CellVehicles.Mean, r.CellVehicles.Max)},
	}
	if err := metrics.Table(w, rows); err != nil {
		return err
	}

	for _, panel := range []struct {
		name string
		data map[roadnet.RoadClass]metrics.Summary
		top  bool
	}{
		{"7(b) betweenness centrality by road class", r.BCByClass, r.BCArterialTop},
		{"7(c) average traffic density by road class", r.TDByClass, r.TDArterialTop},
	} {
		fmt.Fprintf(w, "\n%s:\n", panel.name)
		labels := []string{"arterial", "collector", "local"}
		values := []float64{
			panel.data[roadnet.ClassArterial].Mean,
			panel.data[roadnet.ClassCollector].Mean,
			panel.data[roadnet.ClassLocal].Mean,
		}
		if err := metrics.BarChart(w, labels, values, 40); err != nil {
			return err
		}
		note(w, "heat concentrates on arterials (paper heat maps): %v", panel.top)
	}
	return nil
}
