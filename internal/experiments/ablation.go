package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// LambdaPoint is one row of the Lambda ablation.
type LambdaPoint struct {
	Lambda     float64
	FDSRounds  int
	Converged  bool
	LowerBound int
}

// LambdaAblationResult sweeps the per-round ratio step limit Lambda
// (Eq. 13), the design knob FDS inherits from the problem formulation: a
// tighter Lambda smooths the policy but slows convergence.
type LambdaAblationResult struct {
	Points []LambdaPoint
	// MonotoneNonIncreasing: the loosest Lambda converges no slower than
	// the tightest (exact per-step monotonicity does not hold because
	// Lambda also perturbs the controller's path).
	MonotoneNonIncreasing bool
}

// LambdaAblation runs the sweep.
func LambdaAblation(w *sim.World, lambdas []float64, opts sim.MacroOptions) (*LambdaAblationResult, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 2000
	}
	start, err := w.EquilibriumAt(0.15, opts)
	if err != nil {
		return nil, err
	}
	res := &LambdaAblationResult{MonotoneNonIncreasing: true}
	for _, lambda := range lambdas {
		o := opts
		o.Lambda = lambda
		targetEq, err := w.EquilibriumFrom(start, 0.8, lambda, o)
		if err != nil {
			return nil, err
		}
		field, err := sim.FieldFromState(targetEq, 0.03)
		if err != nil {
			return nil, err
		}
		run, err := w.RunFDS(start.Clone(), field, o)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, LambdaPoint{
			Lambda:     lambda,
			FDSRounds:  run.Shape.Rounds,
			Converged:  run.Shape.Converged,
			LowerBound: run.LowerBound,
		})
	}
	// Lambda interacts with the controller's re-linearization, so exact
	// per-step monotonicity does not hold; the design claim is the
	// end-to-end trend: the loosest Lambda converges no slower than the
	// tightest.
	if n := len(res.Points); n >= 2 {
		first, last := res.Points[0], res.Points[n-1]
		res.MonotoneNonIncreasing = !(first.Converged && last.Converged && last.FDSRounds > first.FDSRounds)
	}
	return res, nil
}

// Render prints the ablation.
func (r *LambdaAblationResult) Render(w io.Writer) error {
	header(w, "Ablation — FDS ratio step limit Lambda (Eq. 13)")
	rows := [][]string{{"lambda", "FDS rounds", "converged", "lower bound"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			metrics.FormatFloat(p.Lambda),
			fmt.Sprintf("%d", p.FDSRounds),
			fmt.Sprintf("%v", p.Converged),
			fmt.Sprintf("%d", p.LowerBound),
		})
	}
	if err := metrics.Table(w, rows); err != nil {
		return err
	}
	note(w, "looser Lambda never slows convergence: %v", r.MonotoneNonIncreasing)
	return nil
}

// MicroMacroPoint is one population size's comparison.
type MicroMacroPoint struct {
	Vehicles int
	// L1 is the mean L1 distance between the agent-based final
	// distribution and the macroscopic mean-field prediction, averaged
	// over regions.
	L1 float64
	// Converged reports whether the agent simulation reached the field.
	Converged bool
	Rounds    int
}

// MicroMacroResult validates the mean-field construction: the distributed
// agent-based system (cloud + edge servers + logit vehicle agents over the
// in-process transport) must track the macroscopic model, with the gap
// shrinking as the population grows.
type MicroMacroResult struct {
	Points []MicroMacroPoint
	// GapShrinks: the largest population's L1 gap is below the smallest's.
	GapShrinks bool
}

// MicroMacro runs the comparison.
func MicroMacro(w *sim.World, populations []int, opts sim.MacroOptions) (*MicroMacroResult, error) {
	if len(populations) == 0 {
		populations = []int{12, 48, 120}
	}
	// A soft choice temperature keeps every region's quantal-response
	// equilibrium away from basin boundaries; at sharper temperatures the
	// interior fixed points are marginally stable and finite populations
	// can land in a different basin than the mean field — a real effect,
	// but not what this experiment measures.
	if opts.Tau == 0 {
		opts.Tau = 0.25
	}
	start, err := w.EquilibriumAt(0.5, opts)
	if err != nil {
		return nil, err
	}
	lambda := opts.Lambda
	if lambda == 0 {
		lambda = 0.1
	}
	targetEq, err := w.EquilibriumFrom(start, 0.8, lambda, opts)
	if err != nil {
		return nil, err
	}
	field, err := sim.FieldFromState(targetEq, 0.12)
	if err != nil {
		return nil, err
	}

	res := &MicroMacroResult{}
	for _, n := range populations {
		run, err := w.RunAgentSim(sim.AgentSimConfig{
			VehiclesPerRegion: n,
			Rounds:            120,
			Field:             field,
			Seed:              int64(1000 + n),
			X0:                0.5,
			PrivacyWeightStd:  0,
			InitialShares:     start.P,
			Tau:               opts.Tau,
			Mu:                opts.Mu,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: agent sim with %d vehicles: %w", n, err)
		}
		final := run.SharesTrace[len(run.SharesTrace)-1]
		l1 := 0.0
		for i := range final {
			for k := range final[i] {
				l1 += math.Abs(final[i][k] - targetEq.P[i][k])
			}
		}
		l1 /= float64(len(final))
		res.Points = append(res.Points, MicroMacroPoint{
			Vehicles:  n,
			L1:        l1,
			Converged: run.Converged,
			Rounds:    run.Rounds,
		})
	}
	if len(res.Points) >= 2 {
		res.GapShrinks = res.Points[len(res.Points)-1].L1 < res.Points[0].L1
	}
	return res, nil
}

// Render prints the comparison.
func (r *MicroMacroResult) Render(w io.Writer) error {
	header(w, "Micro/macro consistency — agent-based system vs mean field")
	rows := [][]string{{"vehicles/region", "L1 gap to mean field", "converged", "rounds"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Vehicles),
			metrics.FormatFloat(p.L1),
			fmt.Sprintf("%v", p.Converged),
			fmt.Sprintf("%d", p.Rounds),
		})
	}
	if err := metrics.Table(w, rows); err != nil {
		return err
	}
	note(w, "sampling gap shrinks with population size: %v", r.GapShrinks)
	return nil
}
