// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V) plus the ablations DESIGN.md calls out. Each
// experiment is a function that computes the result from the library's
// public surfaces and renders it as text directly comparable with the
// printed version. cmd/repro runs them from the command line; bench_test.go
// wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/sim"
)

// Scale selects the experiment size.
type Scale int

// Scales.
const (
	// ScaleSmall is the laptop-size default: a reduced network and fleet
	// that preserves every qualitative result.
	ScaleSmall Scale = iota + 1
	// ScaleFull matches the paper's setup: Futian-scale network (~6k
	// segments), 20 regions, 100 edge servers, one-day trace.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// WorldConfig returns the world configuration for a scale and coefficient
// source.
func WorldConfig(s Scale, src sim.CoeffSource) sim.WorldConfig {
	var cfg sim.WorldConfig
	switch s {
	case ScaleFull:
		cfg = sim.PaperWorldConfig()
	default:
		cfg = sim.DefaultWorldConfig()
	}
	cfg.Source = src
	return cfg
}

// Worlds builds (and caches per call) the BC- and TD-coefficient worlds for
// a scale. Both share the same network and trace seeds, so the two
// coefficient sources are computed over identical substrates, as in the
// paper.
func Worlds(s Scale) (bc, td *sim.World, err error) {
	bc, err = sim.BuildWorld(WorldConfig(s, sim.CoeffBC))
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: building BC world: %w", err)
	}
	td, err = sim.BuildWorld(WorldConfig(s, sim.CoeffTD))
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: building TD world: %w", err)
	}
	return bc, td, nil
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n\n", title)
}

// note prints an indented remark.
func note(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, "  · "+format+"\n", args...)
}

// stopwatch reports elapsed wall time for experiment logs.
func stopwatch() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}
