// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V) plus the ablations DESIGN.md calls out. Each
// experiment is a function that computes the result from the library's
// public surfaces and renders it as text directly comparable with the
// printed version. cmd/repro runs them from the command line; bench_test.go
// wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/sim"
)

// Scale selects the experiment size.
type Scale int

// Scales.
const (
	// ScaleSmall is the laptop-size default: a reduced network and fleet
	// that preserves every qualitative result.
	ScaleSmall Scale = iota + 1
	// ScaleFull matches the paper's setup: Futian-scale network (~6k
	// segments), 20 regions, 100 edge servers, one-day trace.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// WorldConfig returns the world configuration for a scale and coefficient
// source.
func WorldConfig(s Scale, src sim.CoeffSource) sim.WorldConfig {
	var cfg sim.WorldConfig
	switch s {
	case ScaleFull:
		cfg = sim.PaperWorldConfig()
	default:
		cfg = sim.DefaultWorldConfig()
	}
	cfg.Source = src
	return cfg
}

// Worlds builds the BC- and TD-coefficient worlds for a scale. Both share
// the same network and trace seeds, so the two coefficient sources are
// computed over identical substrates, as in the paper; the pair is built
// through one artifact cache so the network, trace, and map-matching stages
// execute exactly once.
func Worlds(s Scale) (bc, td *sim.World, err error) {
	return WorldsWith(sim.NewWorldBuilder(), s, 0)
}

// WorldsWith builds the BC/TD pair through a caller-owned builder, sharing
// its artifact cache with any other worlds the caller builds (e.g. across
// scales or repeated experiment invocations). workers bounds the build's
// worker pools (0 means runtime.NumCPU()) without affecting the result.
func WorldsWith(b *sim.WorldBuilder, s Scale, workers int) (bc, td *sim.World, err error) {
	cfg := WorldConfig(s, sim.CoeffBC)
	cfg.Workers = workers
	bc, err = b.Build(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: building BC world: %w", err)
	}
	cfg = WorldConfig(s, sim.CoeffTD)
	cfg.Workers = workers
	td, err = b.Build(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: building TD world: %w", err)
	}
	return bc, td, nil
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n\n", title)
}

// note prints an indented remark.
func note(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, "  · "+format+"\n", args...)
}

// stopwatch reports elapsed wall time for experiment logs.
func stopwatch() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}
