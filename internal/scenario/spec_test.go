package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestGoldenSpecsRoundTrip: every checked-in scenario parses, and the
// canonical marshalling re-parses to an equal spec — the catalog doubles as
// the format's golden corpus.
func TestGoldenSpecsRoundTrip(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".yaml" {
			continue
		}
		seen++
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			spec, err := ParseSpec(data)
			if err != nil {
				t.Fatalf("ParseSpec: %v", err)
			}
			out, err := MarshalSpec(spec)
			if err != nil {
				t.Fatalf("MarshalSpec: %v", err)
			}
			again, err := ParseSpec(out)
			if err != nil {
				t.Fatalf("ParseSpec(MarshalSpec(spec)): %v\nmarshalled:\n%s", err, out)
			}
			if !reflect.DeepEqual(spec, again) {
				t.Errorf("round trip changed the spec:\nfirst:  %+v\nsecond: %+v", spec, again)
			}
		})
	}
	if seen < 4 {
		t.Fatalf("only %d specs in %s — the golden corpus is missing", seen, dir)
	}
}

// validSpec is the smallest spec every validation case perturbs.
func validSpec() *Spec {
	return &Spec{
		Version:  SpecVersion,
		Name:     "t",
		Seed:     7,
		Rounds:   10,
		Topology: Topology{Regions: 2},
		Cohorts:  []Cohort{{Name: "taxis", Kind: KindTaxi, PerRegion: 4}},
	}
}

func TestValidSpecPasses(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
}

func TestParseRejectsUnknownField(t *testing.T) {
	_, err := ParseSpec([]byte("verion: 1\nname: typo\nrounds: 5\n"))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("unknown top-level field error = %v, want unknown-field rejection", err)
	}
	_, err = ParseSpec([]byte("version: 1\nname: typo\nrounds: 5\ncloud:\n  fixed_lagg: 8\n"))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("unknown nested field error = %v, want unknown-field rejection", err)
	}
}

func TestVersionGate(t *testing.T) {
	for _, doc := range []string{
		"version: 2\nname: future\nrounds: 5\ntopology:\n  regions: 1\ncohorts:\n  - name: a\n    kind: taxi\n    per_region: 1\n",
		// No version at all is version 0 — also rejected.
		"name: unversioned\nrounds: 5\ntopology:\n  regions: 1\ncohorts:\n  - name: a\n    kind: taxi\n    per_region: 1\n",
	} {
		_, err := ParseSpec([]byte(doc))
		if err == nil || !strings.Contains(err.Error(), "this build reads version") {
			t.Errorf("version gate error = %v, want version rejection", err)
		}
	}
}

func TestParseJSONSuperset(t *testing.T) {
	doc := `{"version": 1, "name": "json", "rounds": 3,
		"topology": {"regions": 1},
		"cloud": {"round_deadline": "150ms"},
		"cohorts": [{"name": "a", "kind": "taxi", "per_region": 2}]}`
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatalf("JSON spec rejected: %v", err)
	}
	if spec.Cloud.RoundDeadline != Duration(150*time.Millisecond) {
		t.Errorf("round_deadline = %v, want 150ms", time.Duration(spec.Cloud.RoundDeadline))
	}
}

func TestBadDurationRejected(t *testing.T) {
	doc := "version: 1\nname: d\nrounds: 5\ntopology:\n  regions: 1\ncloud:\n  round_deadline: fast\ncohorts:\n  - name: a\n    kind: taxi\n    per_region: 1\n"
	if _, err := ParseSpec([]byte(doc)); err == nil {
		t.Error("malformed duration accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	lo := func(v float64) *float64 { return &v }
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "name is required"},
		{"zero rounds", func(s *Spec) { s.Rounds = 0 }, "rounds must be >= 1"},
		{"bad network", func(s *Spec) { s.Topology.Network = "carrier-pigeon" }, "want inproc or tcp"},
		{"zero regions", func(s *Spec) { s.Topology.Regions = 0 }, "topology.regions"},
		{"bad graph", func(s *Spec) { s.Topology.Graph = "torus" }, "topology.graph"},
		{"shards exceed regions", func(s *Spec) { s.Topology.Shards = 3 }, "a shard would own no regions"},
		{"bad codec", func(s *Spec) { s.Topology.Codec = "xml" }, "topology.codec"},
		{"x0 out of range", func(s *Spec) { s.Cloud.X0 = 1.5 }, "cloud.x0"},
		{"lambda out of range", func(s *Spec) { s.Cloud.Lambda = 2 }, "cloud.lambda"},
		{"bound with both selectors", func(s *Spec) {
			s.Cloud.Field = &FieldSpec{Bounds: []BoundSpec{{Decision: 1, Sensor: "camera", Lo: lo(0.1)}}}
		}, "not both"},
		{"bound with no selector", func(s *Spec) {
			s.Cloud.Field = &FieldSpec{Bounds: []BoundSpec{{Lo: lo(0.1)}}}
		}, "one of decision or sensor is required"},
		{"bound with no side", func(s *Spec) {
			s.Cloud.Field = &FieldSpec{Bounds: []BoundSpec{{Decision: 1}}}
		}, "one of lo or hi is required"},
		{"bound lo above hi", func(s *Spec) {
			s.Cloud.Field = &FieldSpec{Bounds: []BoundSpec{{Decision: 1, Lo: lo(0.9), Hi: lo(0.1)}}}
		}, "lo 0.9 > hi 0.1"},
		{"no cohorts", func(s *Spec) { s.Cohorts = nil }, "at least one cohort"},
		{"duplicate cohort", func(s *Spec) {
			s.Cohorts = append(s.Cohorts, Cohort{Name: "taxis", Kind: KindTransit, PerRegion: 1})
		}, "duplicate cohort name"},
		{"unknown kind", func(s *Spec) { s.Cohorts[0].Kind = "hovercraft" }, "unknown cohort kind"},
		{"rsu with vehicles", func(s *Spec) {
			s.Cohorts = append(s.Cohorts, Cohort{Name: "roadside", Kind: KindRSU, PerRegion: 3})
		}, "per_region must be 0"},
		{"sensors on taxi", func(s *Spec) { s.Cohorts[0].Sensors = []string{"camera"} }, "only for rsu cohorts"},
		{"rsu-only fleet", func(s *Spec) {
			s.Cohorts = []Cohort{{Name: "roadside", Kind: KindRSU}}
		}, "nothing to census"},
		{"cohort region out of range", func(s *Spec) { s.Cohorts[0].Regions = []int{5} }, "region 5 out of 0..1"},
		{"fault prob out of range", func(s *Spec) {
			s.Cohorts[0].Fault = &FaultSpec{DropProb: 1.5}
		}, "drop_prob"},
		{"fault delay inverted", func(s *Spec) {
			s.Cohorts[0].Fault = &FaultSpec{MinDelay: Duration(time.Second), MaxDelay: Duration(time.Millisecond)}
		}, "min_delay"},
		{"unknown link", func(s *Spec) {
			s.Links = []LinkFault{{Link: "vehicle_moon"}}
		}, "want edge_cloud or shard_aggregator"},
		{"shard link without shards", func(s *Spec) {
			s.Links = []LinkFault{{Link: "shard_aggregator"}}
		}, "topology.shards > 1"},
		{"event round out of range", func(s *Spec) {
			s.Cloud.RoundDeadline = Duration(time.Second)
			s.Events = []Event{{Round: 10, Action: "outage", Target: "region:0"}}
		}, "round 10 out of 0..9"},
		{"until before round", func(s *Spec) {
			s.Cloud.RoundDeadline = Duration(time.Second)
			s.Events = []Event{{Round: 5, Until: 5, Action: "outage", Target: "region:0"}}
		}, "until 5 must be after round 5"},
		{"outage wrong target", func(s *Spec) {
			s.Cloud.RoundDeadline = Duration(time.Second)
			s.Events = []Event{{Round: 1, Action: "outage", Target: "edge:0"}}
		}, "outage targets region:N"},
		{"outage without deadline", func(s *Spec) {
			s.Events = []Event{{Round: 1, Action: "outage", Target: "region:0"}}
		}, "need cloud.round_deadline > 0"},
		{"shard kill without shards", func(s *Spec) {
			s.Cloud.RoundDeadline = Duration(time.Second)
			s.Cloud.Durable = true
			s.Events = []Event{{Round: 1, Action: "kill", Target: "shard:0"}}
		}, "shard kills need topology.shards > 1"},
		{"shard kill without durable", func(s *Spec) {
			s.Topology.Shards = 2
			s.Cloud.RoundDeadline = Duration(time.Second)
			s.Events = []Event{{Round: 1, Action: "kill", Target: "shard:0"}}
		}, "shard kills need cloud.durable"},
		{"surge unknown cohort", func(s *Spec) {
			s.Events = []Event{{Round: 1, Action: "surge", Cohort: "ghosts", Count: 5}}
		}, "surge needs cohort naming an existing cohort"},
		{"surge zero count", func(s *Spec) {
			s.Events = []Event{{Round: 1, Action: "surge", Cohort: "taxis"}}
		}, "surge count must be >= 1"},
		{"unknown action", func(s *Spec) {
			s.Events = []Event{{Round: 1, Action: "meteor"}}
		}, "unknown action"},
		{"hash-equal with deadline", func(s *Spec) {
			s.Cloud.RoundDeadline = Duration(time.Second)
			s.Verdict.RequireHashEqual = true
		}, "needs cloud.round_deadline 0"},
		{"hash-equal with cohort fault", func(s *Spec) {
			s.Cohorts[0].Fault = &FaultSpec{DupProb: 0.1}
			s.Verdict.RequireHashEqual = true
		}, "forbids cohort faults"},
		{"hash-equal with link drops", func(s *Spec) {
			s.Links = []LinkFault{{Link: "edge_cloud", Fault: FaultSpec{DropProb: 0.1}}}
			s.Verdict.RequireHashEqual = true
		}, "forbids link drops"},
		{"gossip hoods exceed regions", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{Neighborhoods: 3}
		}, "exceeds regions"},
		{"gossip with shards", func(s *Spec) {
			s.Topology.Shards = 2
			s.Topology.Gossip = &GossipSpec{}
		}, "incompatible with topology.shards"},
		{"gossip with leases", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{}
			s.Cloud.LeaseTTL = Duration(time.Second)
		}, "forbids cloud.lease_ttl"},
		{"partition without gossip", func(s *Spec) {
			s.Events = []Event{{Round: 1, Action: "partition", Target: "cloud"}}
		}, "need topology.gossip"},
		{"partition wrong target", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{}
			s.Events = []Event{{Round: 1, Action: "partition", Target: "region:0"}}
		}, `partition targets "cloud"`},
		{"gossip outage without gossip deadline", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{}
			s.Events = []Event{{Round: 1, Action: "outage", Target: "region:0"}}
		}, "need topology.gossip.deadline > 0"},
		{"gossip edge kill without durable", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{Deadline: Duration(time.Second)}
			s.Events = []Event{{Round: 1, Action: "kill", Target: "edge:1"}}
		}, "edge kills under gossip need cloud.durable"},
		{"gossip leader kill without failover", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{Deadline: Duration(time.Second)}
			s.Cloud.Durable = true
			s.Events = []Event{{Round: 1, Action: "kill", Target: "edge:0"}}
		}, "set topology.gossip.failover_ttl"},
		{"negative failover ttl", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{FailoverTTL: Duration(-time.Second)}
		}, "failover_ttl must be >= 0"},
		{"negative max backlog", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{MaxBacklog: -1}
		}, "max_backlog must be >= 0"},
		{"leader-kill without gossip", func(s *Spec) {
			s.Events = []Event{{Round: 1, Action: "leader-kill", Target: "hood:0"}}
		}, "leader-kill events need topology.gossip"},
		{"leader-kill without failover ttl", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{}
			s.Cloud.Durable = true
			s.Events = []Event{{Round: 1, Action: "leader-kill", Target: "hood:0"}}
		}, "failover_ttl > 0"},
		{"leader-kill without durable", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{FailoverTTL: Duration(time.Second)}
			s.Events = []Event{{Round: 1, Action: "leader-kill", Target: "hood:0"}}
		}, "leader-kill events need cloud.durable"},
		{"leader-kill wrong target", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{FailoverTTL: Duration(time.Second)}
			s.Cloud.Durable = true
			s.Events = []Event{{Round: 1, Action: "leader-kill", Target: "edge:0"}}
		}, "leader-kill targets hood:N"},
		{"leader-kill hood out of range", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{FailoverTTL: Duration(time.Second)}
			s.Cloud.Durable = true
			s.Events = []Event{{Round: 1, Action: "leader-kill", Target: "hood:3"}}
		}, "neighborhood 3 out of 0..0"},
		{"leader-kill single-member hood", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{Neighborhoods: 2, FailoverTTL: Duration(time.Second)}
			s.Cloud.Durable = true
			s.Events = []Event{{Round: 1, Action: "leader-kill", Target: "hood:0"}}
		}, "no successor to promote"},
		{"leader-kill with until", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{FailoverTTL: Duration(time.Second)}
			s.Cloud.Durable = true
			s.Events = []Event{{Round: 1, Until: 3, Action: "leader-kill", Target: "hood:0"}}
		}, "atomic at its round boundary"},
		{"failover floor without failover", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{}
			s.Verdict.MinGossipFailovers = 1
		}, "needs topology.gossip.failover_ttl > 0"},
		{"hash-equal with backlog cap", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{FailoverTTL: Duration(time.Second), MaxBacklog: 4}
			s.Verdict.RequireHashEqual = true
		}, "forbids topology.gossip.max_backlog"},
		{"hash-equal with gossip deadline", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{Deadline: Duration(time.Second)}
			s.Verdict.RequireHashEqual = true
		}, "needs topology.gossip.deadline 0"},
		{"partition-rounds floor without partition", func(s *Spec) {
			s.Topology.Gossip = &GossipSpec{}
			s.Verdict.MinPartitionLocalRounds = 5
		}, "needs a partition event"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("spec accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestValidateReportsAllProblems: a spec with several defects yields one
// error listing each — the single-pass-fix contract.
func TestValidateReportsAllProblems(t *testing.T) {
	s := validSpec()
	s.Name = ""
	s.Rounds = 0
	s.Topology.Regions = 0
	err := s.Validate()
	if err == nil {
		t.Fatal("triply broken spec accepted")
	}
	for _, want := range []string{"name is required", "rounds must be >= 1", "topology.regions"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error is missing %q:\n%v", want, err)
		}
	}
}

// TestLeaderKillAccepted: with failover enabled, both a plain kill of the
// neighborhood leader and the atomic leader-kill event validate — and
// leader-kill stays legal under require_hash_equal, since the handoff loses
// no census.
func TestLeaderKillAccepted(t *testing.T) {
	s := validSpec()
	s.Topology.Gossip = &GossipSpec{Deadline: Duration(time.Second), FailoverTTL: Duration(200 * time.Millisecond)}
	s.Cloud.Durable = true
	s.Events = []Event{{Round: 1, Action: "kill", Target: "edge:0", Until: 4}}
	if err := s.Validate(); err != nil {
		t.Fatalf("leader kill with failover_ttl rejected: %v", err)
	}

	s = validSpec()
	s.Topology.Gossip = &GossipSpec{FailoverTTL: Duration(200 * time.Millisecond)}
	s.Cloud.Durable = true
	s.Events = []Event{{Round: 1, Action: "leader-kill", Target: "hood:0"}}
	s.Verdict.RequireHashEqual = true
	s.Verdict.MinGossipFailovers = 1
	if err := s.Validate(); err != nil {
		t.Fatalf("leader-kill under require_hash_equal rejected: %v", err)
	}
	twin := s.LosslessTwin()
	if len(twin.Events) != 0 {
		t.Errorf("lossless twin kept %d events, want leader-kill stripped", len(twin.Events))
	}
}

// TestRequireHashEqualImpliesCompare: the implied baseline run is a fill
// rule, not a validation error.
func TestRequireHashEqualImpliesCompare(t *testing.T) {
	s := validSpec()
	s.Verdict.RequireHashEqual = true
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !s.Verdict.CompareLossless {
		t.Error("require_hash_equal did not switch compare_lossless on")
	}
}

func TestLosslessTwinStripsPerturbations(t *testing.T) {
	s := validSpec()
	s.Cloud.RoundDeadline = Duration(time.Second)
	s.Cohorts[0].Fault = &FaultSpec{DropProb: 0.1}
	s.Links = []LinkFault{{Link: "edge_cloud", Fault: FaultSpec{DropProb: 0.2}}}
	s.Events = []Event{
		{Round: 1, Action: "outage", Target: "region:0", Until: 3},
		{Round: 2, Action: "surge", Cohort: "taxis", Count: 5},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	twin := s.LosslessTwin()
	if twin.Cohorts[0].Fault != nil {
		t.Error("twin kept a cohort fault")
	}
	if len(twin.Links) != 0 {
		t.Error("twin kept link faults")
	}
	for _, e := range twin.Events {
		if e.Action != "surge" {
			t.Errorf("twin kept a %s event", e.Action)
		}
	}
	if len(twin.Events) != 1 {
		t.Errorf("twin has %d events, want the surge only", len(twin.Events))
	}
	// The original spec is untouched.
	if s.Cohorts[0].Fault == nil || len(s.Links) != 1 || len(s.Events) != 2 {
		t.Error("LosslessTwin mutated the source spec")
	}
}
