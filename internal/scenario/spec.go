package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/gossip"
	"repro/internal/lattice"
	"repro/internal/policy"
	"repro/internal/sensor"
	"repro/internal/transport"
)

// SpecVersion is the scenario format this build reads. Bump it when a
// field changes meaning; old specs are rejected, never silently
// reinterpreted.
const SpecVersion = 1

// Spec is one declarative scenario: a consensus tier topology, a fleet
// mix, fault profiles, timed events, and the verdict the run is judged by.
// Specs are versioned YAML (or JSON) documents; ParseSpec rejects unknown
// fields so a typo never silently becomes a default.
type Spec struct {
	// Version gates the format (must equal SpecVersion).
	Version int `json:"version"`
	// Name identifies the scenario in verdicts and bench series.
	Name string `json:"name"`
	// Seed drives every RNG in the run; the CLI -seed flag overrides it.
	Seed int64 `json:"seed"`
	// Rounds is the exact number of consensus rounds executed — no early
	// exit, so one spec always folds the same trajectory.
	Rounds int `json:"rounds"`

	Topology Topology    `json:"topology"`
	Cloud    CloudSpec   `json:"cloud"`
	Cohorts  []Cohort    `json:"cohorts"`
	Links    []LinkFault `json:"links"`
	Events   []Event     `json:"events"`
	Verdict  VerdictSpec `json:"verdict"`
}

// Topology fixes the tier shape and transports.
type Topology struct {
	// Network is "inproc" (default; one process, named in-memory links) or
	// "tcp" (real loopback sockets through the full wire protocol).
	Network string `json:"network"`
	// Regions is the number of regions, one edge server each.
	Regions int `json:"regions"`
	// Graph names the region coupling: "demo" (dense) or "cycle" (sparse).
	Graph string `json:"graph"`
	// Shards > 1 interposes the sharded consensus tier: a rendezvous ring
	// of shard coordinators batching censuses up to a thin aggregator.
	Shards int `json:"shards"`
	// Codec serializes messages ("json" or "binary"; empty keeps the
	// transport default).
	Codec string `json:"codec"`
	// Gossip switches the edges into the edge-local gossip data plane:
	// neighborhoods of edges run consensus rounds among themselves and
	// escalate compacted digests to the cloud, which becomes a slow control
	// plane (incompatible with shards > 1 and lease_ttl).
	Gossip *GossipSpec `json:"gossip"`
}

// GossipSpec parameterizes the edge-local gossip data plane.
type GossipSpec struct {
	// Neighborhoods partitions the regions into this many gossip
	// neighborhoods through the shard rendezvous ring, so membership is a
	// pure function of (regions, neighborhoods) (default 1).
	Neighborhoods int `json:"neighborhoods"`
	// EscalateEvery is K: each neighborhood leader escalates a digest to
	// the cloud after every K-th completed local round (default 1).
	EscalateEvery int `json:"escalate_every"`
	// Deadline bounds each local round barrier: a round missing members
	// past it completes degraded. Zero waits forever — fully deterministic,
	// but outage/kill events then need a deadline or the neighborhood
	// stalls.
	Deadline Duration `json:"deadline"`
	// FailoverTTL enables leader failover: every member tracks the leader's
	// heartbeat lease and, when it lapses for a full TTL, promotes the next
	// member in ring order and drains the escalation backlog it mirrored.
	// Zero keeps leadership static (killing a leader then loses the
	// backlog, so Validate rejects it).
	FailoverTTL Duration `json:"failover_ttl"`
	// MaxBacklog caps each member's mirrored escalation backlog; when a
	// partition outlasts the cap the oldest unacked rounds are shed (they
	// never reach the cloud, so hash-equal verdicts forbid a cap). Zero is
	// unbounded.
	MaxBacklog int `json:"max_backlog"`
}

// CloudSpec parameterizes the aggregation tier: the FDS controller, the
// desired field, and the durability/rewind machinery.
type CloudSpec struct {
	// X0 is the initial sharing ratio everywhere (default 0.3).
	X0 float64 `json:"x0"`
	// TargetX, Eps band the probe-derived desired field when no explicit
	// Field is given (defaults 0.85, 0.05).
	TargetX float64 `json:"target_x"`
	Eps     float64 `json:"eps"`
	// Lambda is the FDS per-round ratio step limit (default 0.1).
	Lambda float64 `json:"lambda"`
	// Beta is the per-region rationality coefficient (default 4).
	Beta float64 `json:"beta"`
	// FixedLag keeps this many rounds of fold state rewindable, so late or
	// reordered censuses repair the published field.
	FixedLag int `json:"fixed_lag"`
	// RoundDeadline bounds the census barrier; zero waits forever (every
	// round folds a full quorum). Specs with outage or kill events must
	// set it, or a missing region would stall the fold.
	RoundDeadline Duration `json:"round_deadline"`
	// LeaseTTL enables edge membership leases: edges heartbeat, and a
	// silent edge is evicted from the barrier quorum.
	LeaseTTL Duration `json:"lease_ttl"`
	// Durable checkpoints and journals consensus state (in a run-scoped
	// temp dir), so kill events recover instead of restarting cold.
	Durable bool `json:"durable"`
	// Field, when set, replaces the TargetX probe with explicit per-decision
	// bounds (the operator states intent, e.g. a camera floor in fog).
	Field *FieldSpec `json:"field"`
}

// FieldSpec is a declarative desired decision field: a list of bounds
// applied to every region.
type FieldSpec struct {
	Bounds []BoundSpec `json:"bounds"`
}

// BoundSpec bounds the population share of one decision (1..K) or of
// every decision sharing one sensor ("camera", "lidar", "radar"). Exactly
// one selector must be set; omitted Lo/Hi sides stay free.
type BoundSpec struct {
	Decision int      `json:"decision"`
	Sensor   string   `json:"sensor"`
	Lo       *float64 `json:"lo"`
	Hi       *float64 `json:"hi"`
}

// Cohort is one homogeneous slice of the fleet, attached to every region
// (or the listed ones).
type Cohort struct {
	// Name identifies the cohort (unique; surge events reference it).
	Name string `json:"name"`
	// Kind picks the sensor profile: "taxi" (full suite), "transit"
	// (camera+lidar buses), or "rsu" (no vehicles — the region's edge
	// contributes fixed road-side perception instead).
	Kind string `json:"kind"`
	// PerRegion is the cohort's vehicle count per region (0 for rsu).
	PerRegion int `json:"per_region"`
	// Regions restricts the cohort to these region indices (empty = all).
	Regions []int `json:"regions"`
	// Mu is the per-round revision probability (default 0.5).
	Mu float64 `json:"mu"`
	// Tau is the agents' choice temperature (default 0.25).
	Tau float64 `json:"tau"`
	// Beta overrides the cloud's rationality coefficient for this cohort.
	Beta float64 `json:"beta"`
	// PrivacyWeightStd spreads per-vehicle privacy weights around 1.
	PrivacyWeightStd float64 `json:"privacy_weight_std"`
	// Sensors, for rsu cohorts, lists the road-side modalities contributed
	// (default all).
	Sensors []string `json:"sensors"`
	// Fault injects faults on this cohort's vehicle->edge links.
	Fault *FaultSpec `json:"fault"`
}

// LinkFault injects faults on one tier link class.
type LinkFault struct {
	// Link is "edge_cloud" (census reports + corrections + heartbeats) or
	// "shard_aggregator" (batch forwarding; sharded topologies only).
	Link string `json:"link"`
	// Regions restricts edge_cloud faults to these edges (empty = all).
	Regions []int     `json:"regions"`
	Fault   FaultSpec `json:"fault"`
}

// FaultSpec mirrors transport.FaultConfig with spec-friendly durations.
type FaultSpec struct {
	// Seed, when zero, derives from the spec seed.
	Seed            int64    `json:"seed"`
	DropProb        float64  `json:"drop_prob"`
	DupProb         float64  `json:"dup_prob"`
	MinDelay        Duration `json:"min_delay"`
	MaxDelay        Duration `json:"max_delay"`
	DisconnectAfter int      `json:"disconnect_after"`
	AcceptFailProb  float64  `json:"accept_fail_prob"`
}

// Config converts the spec fault into the injector's config.
func (f *FaultSpec) Config(defaultSeed int64) *transport.FaultConfig {
	if f == nil {
		return nil
	}
	seed := f.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	return &transport.FaultConfig{
		Seed:            seed,
		DropProb:        f.DropProb,
		DupProb:         f.DupProb,
		MinDelay:        time.Duration(f.MinDelay),
		MaxDelay:        time.Duration(f.MaxDelay),
		DisconnectAfter: f.DisconnectAfter,
		AcceptFailProb:  f.AcceptFailProb,
	}
}

// Event is a timed perturbation, applied at the start of its round.
type Event struct {
	// Round the event fires on (0-based, < Rounds).
	Round int `json:"round"`
	// Action is "outage" (a region goes silent: no reports, no
	// heartbeats), "kill" (tear a component down mid-run), "surge"
	// (extra vehicles arrive), "partition" (gossip topologies: the
	// cloud becomes unreachable; edges keep folding local rounds and the
	// escalation backlog drains on heal), or "leader-kill" (gossip
	// topologies with failover_ttl: the neighborhood's current leader is
	// killed at a round boundary, the runner waits for the ring successor
	// to promote, then restarts the dead node from its journal and waits
	// for it to rejoin as a follower — no census is lost, so the action is
	// legal under require_hash_equal).
	Action string `json:"action"`
	// Target for outage is "region:N"; for kill, "edge:N" or "shard:N";
	// for partition, the literal "cloud"; for leader-kill, "hood:N".
	Target string `json:"target"`
	// Until, when > Round, ends the outage / restarts the killed component
	// at that round; zero makes it permanent.
	Until int `json:"until"`
	// Cohort names the cohort template a surge clones.
	Cohort string `json:"cohort"`
	// Count is the surge's vehicle count per region.
	Count int `json:"count"`
}

// TargetKind splits "edge:3" into ("edge", 3).
func (e *Event) TargetKind() (string, int, error) {
	kind, idx, ok := strings.Cut(e.Target, ":")
	if !ok {
		return "", 0, fmt.Errorf("target %q: want kind:index", e.Target)
	}
	n, err := strconv.Atoi(idx)
	if err != nil {
		return "", 0, fmt.Errorf("target %q: bad index: %v", e.Target, err)
	}
	return kind, n, nil
}

// VerdictSpec declares what the run must satisfy; violated expectations
// fail the verdict (cmd/scenario exits 2).
type VerdictSpec struct {
	// RequireConverged demands the final fold satisfy the desired field.
	RequireConverged bool `json:"require_converged"`
	// CompareLossless reruns the spec with faults, outages, and kills
	// stripped (surges kept) and reports the twin's hash and welfare as
	// the baseline.
	CompareLossless bool `json:"compare_lossless"`
	// RequireHashEqual demands consensus_state_hash equal the lossless
	// twin's (implies CompareLossless).
	RequireHashEqual bool `json:"require_hash_equal"`
	// MaxDegradedRounds bounds degraded (deadline-fired) rounds; nil
	// leaves them unbounded.
	MaxDegradedRounds *int `json:"max_degraded_rounds"`
	// MinRewinds demands the rewind machinery actually engaged.
	MinRewinds int `json:"min_rewinds"`
	// MinRecoveries demands at least this many durable restarts.
	MinRecoveries int `json:"min_recoveries"`
	// MinPartitionLocalRounds demands the gossip data plane completed at
	// least this many local rounds while the cloud was partitioned away —
	// the edge-autonomy witness (needs a partition event).
	MinPartitionLocalRounds int `json:"min_partition_local_rounds"`
	// MinGossipFailovers demands at least this many leadership promotions —
	// the failover witness (needs gossip with failover_ttl > 0).
	MinGossipFailovers int `json:"min_gossip_failovers"`
}

// Duration marshals as a time.ParseDuration string ("150ms", "5s").
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration: want a string like \"150ms\", got %s", b)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Cohort kinds.
const (
	KindTaxi    = "taxi"
	KindTransit = "transit"
	KindRSU     = "rsu"
)

// Masks resolves the cohort kind to (equipped, desired) sensor masks.
func (c *Cohort) Masks() (sensor.Mask, sensor.Mask, error) {
	switch c.Kind {
	case KindTaxi:
		return sensor.MaskAll, sensor.MaskAll, nil
	case KindTransit:
		return sensor.MaskOf(sensor.Camera, sensor.LiDAR), sensor.MaskAll, nil
	case KindRSU:
		mask := sensor.MaskAll
		if len(c.Sensors) > 0 {
			mask = 0
			for _, name := range c.Sensors {
				s, err := sensorByName(name)
				if err != nil {
					return 0, 0, err
				}
				mask |= sensor.MaskOf(s)
			}
		}
		return mask, 0, nil
	default:
		return 0, 0, fmt.Errorf("unknown cohort kind %q (want taxi, transit, or rsu)", c.Kind)
	}
}

func sensorByName(name string) (sensor.Type, error) {
	switch name {
	case "camera":
		return sensor.Camera, nil
	case "lidar":
		return sensor.LiDAR, nil
	case "radar":
		return sensor.Radar, nil
	default:
		return 0, fmt.Errorf("unknown sensor %q (want camera, lidar, or radar)", name)
	}
}

// CompileField turns a declarative FieldSpec into a policy field over m
// regions and the paper lattice's K decisions.
func (fs *FieldSpec) Compile(m int) (*policy.Field, error) {
	lat := lattice.NewPaper()
	k := lat.K()
	field := policy.NewFreeField(m, k)
	for bi, b := range fs.Bounds {
		var decisions []int
		switch {
		case b.Decision != 0:
			decisions = []int{b.Decision - 1}
		case b.Sensor != "":
			s, err := sensorByName(b.Sensor)
			if err != nil {
				return nil, fmt.Errorf("field bound %d: %w", bi, err)
			}
			for d := 1; d <= k; d++ {
				if lat.MustShare(lattice.Decision(d)).Has(s) {
					decisions = append(decisions, d-1)
				}
			}
		}
		for _, d := range decisions {
			for i := 0; i < m; i++ {
				if b.Lo != nil {
					field.P[i][d].Lo = *b.Lo
				}
				if b.Hi != nil {
					field.P[i][d].Hi = *b.Hi
				}
			}
		}
	}
	return field, nil
}

// fill applies spec defaults in place (called by Validate, so a parsed
// spec is always fully populated).
func (s *Spec) fill() {
	if s.Topology.Network == "" {
		s.Topology.Network = "inproc"
	}
	if s.Topology.Graph == "" {
		s.Topology.Graph = "demo"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Cloud.X0 == 0 {
		s.Cloud.X0 = 0.3
	}
	if s.Cloud.TargetX == 0 {
		s.Cloud.TargetX = 0.85
	}
	if s.Cloud.Eps == 0 {
		s.Cloud.Eps = 0.05
	}
	if s.Cloud.Lambda == 0 {
		s.Cloud.Lambda = 0.1
	}
	if s.Cloud.Beta == 0 {
		s.Cloud.Beta = 4
	}
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if c.Mu == 0 {
			c.Mu = 0.5
		}
		if c.Tau == 0 {
			c.Tau = DemoTau
		}
		if c.Beta == 0 {
			c.Beta = s.Cloud.Beta
		}
	}
	if g := s.Topology.Gossip; g != nil {
		if g.Neighborhoods == 0 {
			g.Neighborhoods = 1
		}
		if g.EscalateEvery == 0 {
			g.EscalateEvery = 1
		}
	}
	if s.Verdict.RequireHashEqual {
		s.Verdict.CompareLossless = true
	}
}

// Validate checks the spec (after applying defaults) and returns every
// problem joined into one error, so an operator fixes a bad spec in one
// pass.
func (s *Spec) Validate() error {
	s.fill()
	var errs []string
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	if s.Version != SpecVersion {
		bad("version %d: this build reads version %d", s.Version, SpecVersion)
	}
	if s.Name == "" {
		bad("name is required")
	}
	if s.Rounds < 1 {
		bad("rounds must be >= 1 (got %d)", s.Rounds)
	}

	t := &s.Topology
	if t.Network != "inproc" && t.Network != "tcp" {
		bad("topology.network %q: want inproc or tcp", t.Network)
	}
	if t.Regions < 1 {
		bad("topology.regions must be >= 1 (got %d)", t.Regions)
	}
	if _, err := GraphByName(t.Graph, max(t.Regions, 1)); err != nil {
		bad("topology.graph: %v", err)
	}
	if t.Shards < 0 {
		bad("topology.shards must be >= 0 (got %d)", t.Shards)
	}
	if t.Shards > 1 && t.Shards > t.Regions {
		bad("topology.shards %d exceeds regions %d (a shard would own no regions)", t.Shards, t.Regions)
	}
	if t.Codec != "" {
		if _, err := transport.CodecByName(t.Codec); err != nil {
			bad("topology.codec: %v", err)
		}
	}
	var hoods [][]int // gossip neighborhood table, for leader-aware checks
	if g := t.Gossip; g != nil {
		if g.Neighborhoods < 1 {
			bad("topology.gossip.neighborhoods must be >= 1 (got %d)", g.Neighborhoods)
		} else if g.Neighborhoods > t.Regions {
			bad("topology.gossip.neighborhoods %d exceeds regions %d", g.Neighborhoods, t.Regions)
		} else if t.Regions >= 1 {
			hoods, _ = gossip.Neighborhoods(t.Regions, g.Neighborhoods)
		}
		if g.EscalateEvery < 1 {
			bad("topology.gossip.escalate_every must be >= 1 (got %d)", g.EscalateEvery)
		}
		if g.Deadline < 0 {
			bad("topology.gossip.deadline must be >= 0")
		}
		if g.FailoverTTL < 0 {
			bad("topology.gossip.failover_ttl must be >= 0")
		}
		if g.MaxBacklog < 0 {
			bad("topology.gossip.max_backlog must be >= 0")
		}
		if t.Shards > 1 {
			bad("topology.gossip is incompatible with topology.shards > 1 (digests go straight to the cloud)")
		}
		if s.Cloud.LeaseTTL != 0 {
			bad("topology.gossip forbids cloud.lease_ttl: neighborhood membership is static, not leased")
		}
	}

	c := &s.Cloud
	if c.X0 < 0 || c.X0 > 1 {
		bad("cloud.x0 %v out of [0,1]", c.X0)
	}
	if c.TargetX < 0 || c.TargetX > 1 {
		bad("cloud.target_x %v out of [0,1]", c.TargetX)
	}
	if c.Eps <= 0 || c.Eps > 1 {
		bad("cloud.eps %v out of (0,1]", c.Eps)
	}
	if c.Lambda <= 0 || c.Lambda > 1 {
		bad("cloud.lambda %v out of (0,1]", c.Lambda)
	}
	if c.Beta <= 0 {
		bad("cloud.beta must be > 0 (got %v)", c.Beta)
	}
	if c.FixedLag < 0 {
		bad("cloud.fixed_lag must be >= 0 (got %d)", c.FixedLag)
	}
	if c.RoundDeadline < 0 {
		bad("cloud.round_deadline must be >= 0")
	}
	if c.LeaseTTL < 0 {
		bad("cloud.lease_ttl must be >= 0")
	}
	if c.Field != nil {
		k := lattice.NewPaper().K()
		for bi, b := range c.Field.Bounds {
			switch {
			case b.Decision != 0 && b.Sensor != "":
				bad("cloud.field.bounds[%d]: set decision or sensor, not both", bi)
			case b.Decision == 0 && b.Sensor == "":
				bad("cloud.field.bounds[%d]: one of decision or sensor is required", bi)
			case b.Decision != 0 && (b.Decision < 1 || b.Decision > k):
				bad("cloud.field.bounds[%d]: decision %d out of 1..%d", bi, b.Decision, k)
			case b.Sensor != "":
				if _, err := sensorByName(b.Sensor); err != nil {
					bad("cloud.field.bounds[%d]: %v", bi, err)
				}
			}
			if b.Lo == nil && b.Hi == nil {
				bad("cloud.field.bounds[%d]: one of lo or hi is required", bi)
			}
			if b.Lo != nil && (*b.Lo < 0 || *b.Lo > 1) {
				bad("cloud.field.bounds[%d]: lo %v out of [0,1]", bi, *b.Lo)
			}
			if b.Hi != nil && (*b.Hi < 0 || *b.Hi > 1) {
				bad("cloud.field.bounds[%d]: hi %v out of [0,1]", bi, *b.Hi)
			}
			if b.Lo != nil && b.Hi != nil && *b.Lo > *b.Hi {
				bad("cloud.field.bounds[%d]: lo %v > hi %v", bi, *b.Lo, *b.Hi)
			}
		}
	}

	if len(s.Cohorts) == 0 {
		bad("at least one cohort is required")
	}
	names := map[string]bool{}
	vehicles := 0
	for ci := range s.Cohorts {
		co := &s.Cohorts[ci]
		where := fmt.Sprintf("cohorts[%d] (%s)", ci, co.Name)
		if co.Name == "" {
			bad("cohorts[%d]: name is required", ci)
		} else if names[co.Name] {
			bad("%s: duplicate cohort name", where)
		}
		names[co.Name] = true
		if _, _, err := co.Masks(); err != nil {
			bad("%s: %v", where, err)
		}
		if co.Kind == KindRSU {
			if co.PerRegion != 0 {
				bad("%s: rsu cohorts are fixed road-side sensors; per_region must be 0 (got %d)", where, co.PerRegion)
			}
		} else {
			if co.PerRegion < 1 {
				bad("%s: per_region must be >= 1 (got %d)", where, co.PerRegion)
			}
			if len(co.Sensors) > 0 {
				bad("%s: sensors is only for rsu cohorts (%s kinds are fixed by kind)", where, co.Kind)
			}
			vehicles += co.PerRegion
		}
		if co.Mu <= 0 || co.Mu > 1 {
			bad("%s: mu %v out of (0,1]", where, co.Mu)
		}
		if co.Tau <= 0 {
			bad("%s: tau must be > 0 (got %v)", where, co.Tau)
		}
		if co.PrivacyWeightStd < 0 {
			bad("%s: privacy_weight_std must be >= 0", where)
		}
		for _, r := range co.Regions {
			if r < 0 || r >= t.Regions {
				bad("%s: region %d out of 0..%d", where, r, t.Regions-1)
			}
		}
		if err := validateFault(co.Fault); err != nil {
			bad("%s: fault: %v", where, err)
		}
	}
	if vehicles == 0 {
		bad("no cohort contributes vehicles (rsu-only fleets have nothing to census)")
	}

	for li := range s.Links {
		l := &s.Links[li]
		where := fmt.Sprintf("links[%d]", li)
		switch l.Link {
		case "edge_cloud":
		case "shard_aggregator":
			if t.Shards <= 1 {
				bad("%s: shard_aggregator faults need topology.shards > 1", where)
			}
			if len(l.Regions) > 0 {
				bad("%s: regions does not apply to shard_aggregator links", where)
			}
		default:
			bad("%s: link %q: want edge_cloud or shard_aggregator", where, l.Link)
		}
		for _, r := range l.Regions {
			if r < 0 || r >= t.Regions {
				bad("%s: region %d out of 0..%d", where, r, t.Regions-1)
			}
		}
		f := l.Fault
		if err := validateFault(&f); err != nil {
			bad("%s: fault: %v", where, err)
		}
	}

	needsDeadline := false
	for ei := range s.Events {
		e := &s.Events[ei]
		where := fmt.Sprintf("events[%d]", ei)
		if e.Round < 0 || e.Round >= s.Rounds {
			bad("%s: round %d out of 0..%d", where, e.Round, s.Rounds-1)
		}
		if e.Until != 0 && e.Until <= e.Round {
			bad("%s: until %d must be after round %d", where, e.Until, e.Round)
		}
		switch e.Action {
		case "outage":
			needsDeadline = true
			kind, n, err := e.TargetKind()
			if err != nil {
				bad("%s: %v", where, err)
			} else if kind != "region" {
				bad("%s: outage targets region:N, got %q", where, e.Target)
			} else if n < 0 || n >= t.Regions {
				bad("%s: region %d out of 0..%d", where, n, t.Regions-1)
			}
		case "kill":
			needsDeadline = true
			kind, n, err := e.TargetKind()
			if err != nil {
				bad("%s: %v", where, err)
				break
			}
			switch kind {
			case "edge":
				if n < 0 || n >= t.Regions {
					bad("%s: edge %d out of 0..%d", where, n, t.Regions-1)
				} else if t.Gossip != nil {
					if !s.Cloud.Durable {
						bad("%s: edge kills under gossip need cloud.durable (a cold node cannot resume its local fold)", where)
					}
					if h := gossip.HoodOf(hoods, n); h >= 0 && hoods[h][0] == n && t.Gossip.FailoverTTL == 0 {
						bad("%s: edge %d leads neighborhood %d and the leader carries the escalation backlog; set topology.gossip.failover_ttl so a successor takes over, or kill a non-leader", where, n, h)
					}
				}
			case "shard":
				if t.Shards <= 1 {
					bad("%s: shard kills need topology.shards > 1", where)
				} else if n < 0 || n >= t.Shards {
					bad("%s: shard %d out of 0..%d", where, n, t.Shards-1)
				}
				if !s.Cloud.Durable {
					bad("%s: shard kills need cloud.durable (a cold shard cannot rejoin the fold)", where)
				}
			default:
				bad("%s: kill targets edge:N or shard:N, got %q", where, e.Target)
			}
		case "leader-kill":
			// No deadline requirement: the kill, the successor promotion, and
			// the journal restart all complete inside one round boundary, so
			// no local round ever barriers on a dead member.
			if t.Gossip == nil {
				bad("%s: leader-kill events need topology.gossip", where)
			} else {
				if t.Gossip.FailoverTTL == 0 {
					bad("%s: leader-kill events need topology.gossip.failover_ttl > 0 (static leadership cannot promote a successor)", where)
				}
				if !s.Cloud.Durable {
					bad("%s: leader-kill events need cloud.durable (the dead leader restarts from its journal)", where)
				}
				kind, n, err := e.TargetKind()
				if err != nil {
					bad("%s: %v", where, err)
				} else if kind != "hood" {
					bad("%s: leader-kill targets hood:N, got %q", where, e.Target)
				} else if n < 0 || n >= t.Gossip.Neighborhoods {
					bad("%s: neighborhood %d out of 0..%d", where, n, t.Gossip.Neighborhoods-1)
				} else if n < len(hoods) && len(hoods[n]) < 2 {
					bad("%s: neighborhood %d has one member; there is no successor to promote", where, n)
				}
			}
			if e.Until != 0 {
				bad("%s: leader-kill is atomic at its round boundary; until does not apply", where)
			}
			if e.Cohort != "" || e.Count != 0 {
				bad("%s: cohort/count do not apply to leader-kill events", where)
			}
		case "partition":
			if t.Gossip == nil {
				bad("%s: partition events need topology.gossip (direct edges have no data plane without the cloud)", where)
			}
			if e.Target != "cloud" {
				bad("%s: partition targets \"cloud\", got %q", where, e.Target)
			}
			if e.Cohort != "" || e.Count != 0 {
				bad("%s: cohort/count do not apply to partition events", where)
			}
		case "surge":
			if e.Cohort == "" || !names[e.Cohort] {
				bad("%s: surge needs cohort naming an existing cohort (got %q)", where, e.Cohort)
			} else {
				for _, co := range s.Cohorts {
					if co.Name == e.Cohort && co.Kind == KindRSU {
						bad("%s: cannot surge an rsu cohort", where)
					}
				}
			}
			if e.Count < 1 {
				bad("%s: surge count must be >= 1 (got %d)", where, e.Count)
			}
			if e.Target != "" {
				bad("%s: target does not apply to surge events", where)
			}
		default:
			bad("%s: unknown action %q (want outage, kill, leader-kill, surge, or partition)", where, e.Action)
		}
	}
	if needsDeadline {
		if t.Gossip != nil {
			// Gossip rounds barrier at the edges, not the cloud: a silent
			// member stalls its neighborhood, not the cloud's digest fold.
			if t.Gossip.Deadline == 0 {
				bad("outage/kill events need topology.gossip.deadline > 0 (a silent member would stall its neighborhood forever)")
			}
		} else if s.Cloud.RoundDeadline == 0 {
			bad("outage/kill events need cloud.round_deadline > 0 (a silent region would stall the barrier forever)")
		}
	}

	v := &s.Verdict
	if v.MaxDegradedRounds != nil && *v.MaxDegradedRounds < 0 {
		bad("verdict.max_degraded_rounds must be >= 0")
	}
	if v.MinRewinds < 0 {
		bad("verdict.min_rewinds must be >= 0")
	}
	if v.MinRecoveries < 0 {
		bad("verdict.min_recoveries must be >= 0")
	}
	if v.MinPartitionLocalRounds < 0 {
		bad("verdict.min_partition_local_rounds must be >= 0")
	} else if v.MinPartitionLocalRounds > 0 {
		hasPartition := false
		for ei := range s.Events {
			if s.Events[ei].Action == "partition" {
				hasPartition = true
			}
		}
		if !hasPartition {
			bad("verdict.min_partition_local_rounds needs a partition event")
		}
	}
	if v.MinGossipFailovers < 0 {
		bad("verdict.min_gossip_failovers must be >= 0")
	} else if v.MinGossipFailovers > 0 && (t.Gossip == nil || t.Gossip.FailoverTTL == 0) {
		bad("verdict.min_gossip_failovers needs topology.gossip.failover_ttl > 0 (static leadership never fails over)")
	}
	if v.RequireHashEqual {
		if s.Cloud.RoundDeadline != 0 {
			bad("verdict.require_hash_equal needs cloud.round_deadline 0: degraded rounds publish a different ratio trajectory than the lossless twin")
		}
		if t.Gossip != nil && t.Gossip.Deadline != 0 {
			bad("verdict.require_hash_equal needs topology.gossip.deadline 0: a deadline-degraded local round folds a different census set than the lossless twin")
		}
		for ci := range s.Cohorts {
			if s.Cohorts[ci].Fault != nil {
				bad("verdict.require_hash_equal forbids cohort faults (cohorts[%d]): vehicle-link faults perturb the census itself", ci)
			}
		}
		for li := range s.Links {
			if s.Links[li].Fault.DropProb > 0 {
				bad("verdict.require_hash_equal forbids link drops (links[%d]): a dropped census never folds", li)
			}
		}
		for ei := range s.Events {
			// leader-kill is deliberately legal here: the handoff happens at a
			// round boundary, the successor drains the mirrored backlog, and
			// the cloud adopts re-sent digest rounds idempotently — the fold
			// trajectory is bit-identical to the lossless twin's.
			if a := s.Events[ei].Action; a == "outage" || a == "kill" {
				bad("verdict.require_hash_equal forbids %s events (events[%d])", a, ei)
			}
		}
		if t.Gossip != nil && t.Gossip.MaxBacklog > 0 {
			bad("verdict.require_hash_equal forbids topology.gossip.max_backlog: shed backlog rounds never reach the cloud")
		}
	}

	if len(errs) == 0 {
		return nil
	}
	sort.Strings(errs)
	return fmt.Errorf("scenario %q: %d problem(s):\n  - %s",
		s.Name, len(errs), strings.Join(errs, "\n  - "))
}

func validateFault(f *FaultSpec) error {
	if f == nil {
		return nil
	}
	var errs []string
	check := func(name string, p float64) {
		if p < 0 || p > 1 {
			errs = append(errs, fmt.Sprintf("%s %v out of [0,1]", name, p))
		}
	}
	check("drop_prob", f.DropProb)
	check("dup_prob", f.DupProb)
	check("accept_fail_prob", f.AcceptFailProb)
	if f.MinDelay < 0 || f.MaxDelay < 0 {
		errs = append(errs, "delays must be >= 0")
	}
	if f.MinDelay > f.MaxDelay {
		errs = append(errs, fmt.Sprintf("min_delay %v > max_delay %v",
			time.Duration(f.MinDelay), time.Duration(f.MaxDelay)))
	}
	if f.DisconnectAfter < 0 {
		errs = append(errs, "disconnect_after must be >= 0")
	}
	if len(errs) > 0 {
		return fmt.Errorf("%s", strings.Join(errs, "; "))
	}
	return nil
}
