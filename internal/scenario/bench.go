package scenario

import (
	"encoding/json"
	"fmt"
	"os"
)

// Round3 and Round6 trim bench numbers to stable precision for checked-in
// JSON.
func Round3(v float64) float64 { return float64(int(v*1e3+0.5)) / 1e3 }
func Round6(v float64) float64 { return float64(int(v*1e6+0.5)) / 1e6 }

// AppendBench merges the run's series into a scripts/bench.sh-shaped JSON
// file: {"results": [...]} with same-name entries replaced, so repeated
// runs update their own rows without clobbering other tools' series.
func AppendBench(path string, entries []map[string]interface{}) error {
	doc := map[string]interface{}{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	var results []interface{}
	if r, ok := doc["results"].([]interface{}); ok {
		results = r
	}
	for _, e := range entries {
		replaced := false
		for i, old := range results {
			if m, ok := old.(map[string]interface{}); ok && m["name"] == e["name"] {
				results[i] = e
				replaced = true
				break
			}
		}
		if !replaced {
			results = append(results, e)
		}
	}
	doc["results"] = results
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
