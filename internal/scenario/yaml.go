package scenario

// A hand-written YAML subset, because the module is dependency-free by
// policy. The subset covers what scenario specs need — block mappings and
// sequences by indentation, inline [a, b] lists, quoted and plain scalars,
// comments — and rejects everything else loudly. Decoding goes through a
// generic tree and then a strict JSON round-trip, so struct mapping,
// unknown-field rejection, and custom unmarshalers (Duration) all come
// from encoding/json; encoding walks the JSON token stream so struct
// field order is preserved and output is deterministic.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseSpec decodes a YAML (or JSON: a strict superset here) scenario
// spec, rejecting unknown fields, then validates it.
func ParseSpec(data []byte) (*Spec, error) {
	spec := &Spec{}
	if err := unmarshalYAML(data, spec); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// MarshalSpec renders the spec in canonical YAML: struct field order, two-
// space indents, no comments. Parsing its output yields an equal spec.
func MarshalSpec(s *Spec) ([]byte, error) { return marshalYAML(s) }

// unmarshalYAML decodes YAML-subset data into v via a strict JSON
// round-trip.
func unmarshalYAML(data []byte, v any) error {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var jsonBytes []byte
	if len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '[') {
		// Raw JSON documents pass straight through.
		jsonBytes = data
	} else {
		tree, err := parseYAML(data)
		if err != nil {
			return err
		}
		jsonBytes, err = json.Marshal(tree)
		if err != nil {
			return err
		}
	}
	dec := json.NewDecoder(bytes.NewReader(jsonBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // content, comment-stripped, right-trimmed
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

func (p *yamlParser) more() bool       { return p.pos < len(p.lines) }
func (p *yamlParser) cur() *yamlLine   { return &p.lines[p.pos] }
func (p *yamlParser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("scenario: yaml line %d: %s", line, fmt.Sprintf(format, args...))
}

// parseYAML parses the document into a generic tree of map[string]any,
// []any, and scalars.
func parseYAML(data []byte) (any, error) {
	p := &yamlParser{}
	for num, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \t\r")
		content := stripComment(line)
		if strings.TrimSpace(content) == "" {
			continue
		}
		indent := 0
		for indent < len(content) && content[indent] == ' ' {
			indent++
		}
		if indent < len(content) && content[indent] == '\t' {
			return nil, fmt.Errorf("scenario: yaml line %d: tab in indentation (use spaces)", num+1)
		}
		if content == "---" && len(p.lines) == 0 {
			continue // leading document marker
		}
		p.lines = append(p.lines, yamlLine{num: num + 1, indent: indent, text: content[indent:]})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("scenario: empty document")
	}
	root, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.more() {
		return nil, p.errf(p.cur().num, "unexpected content at indent %d", p.cur().indent)
	}
	return root, nil
}

// stripComment removes a trailing comment, respecting quoted strings.
func stripComment(line string) string {
	var quote byte
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			if c == quote {
				if quote == '\'' && i+1 < len(line) && line[i+1] == '\'' {
					i++ // '' escape inside single quotes
					continue
				}
				quote = 0
			} else if quote == '"' && c == '\\' {
				i++
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t'):
			return line[:i]
		}
	}
	return line
}

func (p *yamlParser) parseBlock(indent int) (any, error) {
	line := p.cur()
	if line.indent != indent {
		return nil, p.errf(line.num, "expected indent %d, got %d", indent, line.indent)
	}
	if line.text == "-" || strings.HasPrefix(line.text, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	for p.more() {
		line := p.cur()
		if line.indent < indent {
			break
		}
		if line.indent > indent {
			return nil, p.errf(line.num, "unexpected indent %d (block is at %d)", line.indent, indent)
		}
		if line.text == "-" || strings.HasPrefix(line.text, "- ") {
			return nil, p.errf(line.num, "sequence item in a mapping block")
		}
		key, rest, err := splitKey(line.text)
		if err != nil {
			return nil, p.errf(line.num, "%v", err)
		}
		if _, dup := m[key]; dup {
			return nil, p.errf(line.num, "duplicate key %q", key)
		}
		if rest != "" {
			val, err := parseScalar(rest, line.num)
			if err != nil {
				return nil, err
			}
			m[key] = val
			p.pos++
			continue
		}
		p.pos++
		if p.more() && p.cur().indent > indent {
			child, err := p.parseBlock(p.cur().indent)
			if err != nil {
				return nil, err
			}
			m[key] = child
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	out := []any{}
	for p.more() {
		line := p.cur()
		if line.indent < indent {
			break
		}
		if line.indent > indent {
			return nil, p.errf(line.num, "unexpected indent %d (sequence is at %d)", line.indent, indent)
		}
		if line.text != "-" && !strings.HasPrefix(line.text, "- ") {
			break
		}
		if line.text == "-" {
			// Item body is the following deeper block (or null).
			p.pos++
			if p.more() && p.cur().indent > indent {
				child, err := p.parseBlock(p.cur().indent)
				if err != nil {
					return nil, err
				}
				out = append(out, child)
			} else {
				out = append(out, nil)
			}
			continue
		}
		rest := strings.TrimLeft(line.text[2:], " ")
		if isMappingStart(rest) {
			// "- key: value": a mapping whose keys sit at the dash offset.
			itemIndent := indent + (len(line.text) - len(rest))
			p.lines[p.pos] = yamlLine{num: line.num, indent: itemIndent, text: rest}
			item, err := p.parseMapping(itemIndent)
			if err != nil {
				return nil, err
			}
			out = append(out, item)
			continue
		}
		val, err := parseScalar(rest, line.num)
		if err != nil {
			return nil, err
		}
		out = append(out, val)
		p.pos++
	}
	return out, nil
}

// isMappingStart reports whether a sequence item body like "key: value"
// or "key:" opens a mapping (vs. a scalar such as "127.0.0.1:7000").
func isMappingStart(s string) bool {
	i := scanScalarEnd(s, ':')
	if i < 0 {
		return false
	}
	return i+1 == len(s) || s[i+1] == ' '
}

// splitKey splits "key: rest" at the first unquoted colon.
func splitKey(text string) (string, string, error) {
	i := scanScalarEnd(text, ':')
	if i < 0 || i >= len(text) || text[i] != ':' {
		return "", "", fmt.Errorf("expected \"key: value\", got %q", text)
	}
	if i+1 < len(text) && text[i+1] != ' ' {
		return "", "", fmt.Errorf("missing space after %q:", text[:i])
	}
	rawKey := strings.TrimSpace(text[:i])
	key, err := unquoteScalar(rawKey)
	if err != nil {
		return "", "", err
	}
	ks, ok := key.(string)
	if !ok {
		ks = fmt.Sprint(key)
	}
	if ks == "" {
		return "", "", fmt.Errorf("empty key in %q", text)
	}
	return ks, strings.TrimSpace(text[i+1:]), nil
}

// scanScalarEnd returns the index of the first occurrence of stop outside
// quotes/brackets, or -1.
func scanScalarEnd(s string, stop byte) int {
	var quote byte
	depth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				if quote == '\'' && i+1 < len(s) && s[i+1] == '\'' {
					i++
					continue
				}
				quote = 0
			} else if quote == '"' && c == '\\' {
				i++
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == stop && depth == 0:
			return i
		}
	}
	return -1
}

// parseScalar parses a scalar or inline [a, b] list.
func parseScalar(text string, lineNum int) (any, error) {
	if strings.HasPrefix(text, "[") {
		if !strings.HasSuffix(text, "]") {
			return nil, fmt.Errorf("scenario: yaml line %d: unterminated inline list %q", lineNum, text)
		}
		inner := strings.TrimSpace(text[1 : len(text)-1])
		out := []any{}
		if inner == "" {
			return out, nil
		}
		for _, part := range splitInline(inner) {
			v, err := parseScalar(strings.TrimSpace(part), lineNum)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	if strings.HasPrefix(text, "{") {
		if text == "{}" {
			return map[string]any{}, nil
		}
		return nil, fmt.Errorf("scenario: yaml line %d: inline mappings are not supported (use a block)", lineNum)
	}
	v, err := unquoteScalar(text)
	if err != nil {
		return nil, fmt.Errorf("scenario: yaml line %d: %v", lineNum, err)
	}
	return v, nil
}

// splitInline splits an inline list body on top-level commas.
func splitInline(s string) []string {
	var parts []string
	start := 0
	rest := s
	for {
		i := scanScalarEnd(rest, ',')
		if i < 0 {
			parts = append(parts, s[start:])
			return parts
		}
		parts = append(parts, s[start:start+i])
		start += i + 1
		rest = s[start:]
	}
}

// unquoteScalar interprets one scalar token.
func unquoteScalar(s string) (any, error) {
	switch {
	case s == "" || s == "~" || s == "null":
		return nil, nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	}
	if s[0] == '"' {
		out, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("bad double-quoted scalar %s: %v", s, err)
		}
		return out, nil
	}
	if s[0] == '\'' {
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, fmt.Errorf("unterminated single-quoted scalar %s", s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// --- encoding ---

// marshalYAML renders v (via its JSON form, which preserves struct field
// order) as canonical YAML.
func marshalYAML(v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	node, err := readJSONNode(dec)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := writeYAMLNode(&buf, node, 0, false); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

type jsonNode struct {
	// Exactly one of these shapes is active: keys/vals (mapping, ordered),
	// seq (sequence), or scalar.
	keys   []string
	vals   []*jsonNode
	seq    []*jsonNode
	isMap  bool
	isSeq  bool
	scalar any
}

func readJSONNode(dec *json.Decoder) (*jsonNode, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			n := &jsonNode{isMap: true}
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, err
				}
				key, ok := keyTok.(string)
				if !ok {
					return nil, fmt.Errorf("scenario: non-string key %v", keyTok)
				}
				val, err := readJSONNode(dec)
				if err != nil {
					return nil, err
				}
				n.keys = append(n.keys, key)
				n.vals = append(n.vals, val)
			}
			_, err := dec.Token() // consume '}'
			return n, err
		case '[':
			n := &jsonNode{isSeq: true}
			for dec.More() {
				item, err := readJSONNode(dec)
				if err != nil {
					return nil, err
				}
				n.seq = append(n.seq, item)
			}
			_, err := dec.Token() // consume ']'
			return n, err
		}
		return nil, fmt.Errorf("scenario: unexpected delimiter %v", t)
	default:
		return &jsonNode{scalar: tok}, nil
	}
}

// writeYAMLNode emits node at the given indent. seqItem means the first
// line continues a "- " prefix already written.
func writeYAMLNode(w io.Writer, n *jsonNode, indent int, seqItem bool) error {
	pad := strings.Repeat(" ", indent)
	switch {
	case n.isMap:
		if len(n.keys) == 0 {
			_, err := fmt.Fprintf(w, "{}\n")
			return err
		}
		for i, key := range n.keys {
			prefix := pad
			if seqItem && i == 0 {
				prefix = "" // continues the "- " on the current line
			}
			val := n.vals[i]
			switch {
			case val.isMap && len(val.keys) > 0, val.isSeq && len(val.seq) > 0:
				if _, err := fmt.Fprintf(w, "%s%s:\n", prefix, key); err != nil {
					return err
				}
				if err := writeYAMLNode(w, val, indent+2, false); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(w, "%s%s: %s\n", prefix, key, scalarYAML(val)); err != nil {
					return err
				}
			}
		}
		return nil
	case n.isSeq:
		if len(n.seq) == 0 {
			_, err := fmt.Fprintf(w, "[]\n")
			return err
		}
		for _, item := range n.seq {
			if item.isMap && len(item.keys) > 0 {
				if _, err := fmt.Fprintf(w, "%s- ", pad); err != nil {
					return err
				}
				if err := writeYAMLNode(w, item, indent+2, true); err != nil {
					return err
				}
				continue
			}
			if item.isSeq && len(item.seq) > 0 {
				return fmt.Errorf("scenario: nested sequences are not emitted")
			}
			if _, err := fmt.Fprintf(w, "%s- %s\n", pad, scalarYAML(item)); err != nil {
				return err
			}
		}
		return nil
	default:
		_, err := fmt.Fprintf(w, "%s%s\n", pad, scalarYAML(n))
		return err
	}
}

// scalarYAML renders a leaf node as a YAML scalar, quoting strings that
// would otherwise reparse as something else.
func scalarYAML(n *jsonNode) string {
	if n.isMap {
		return "{}"
	}
	if n.isSeq {
		return "[]"
	}
	switch v := n.scalar.(type) {
	case nil:
		return "null"
	case bool:
		return strconv.FormatBool(v)
	case json.Number:
		return v.String()
	case string:
		if needsQuoting(v) {
			return strconv.Quote(v)
		}
		return v
	default:
		return fmt.Sprint(v)
	}
}

func needsQuoting(s string) bool {
	if s == "" || s == "null" || s == "~" || s == "true" || s == "false" {
		return true
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return true
	}
	if strings.TrimSpace(s) != s {
		return true
	}
	if strings.ContainsAny(s, ":#\"'[]{},\n") {
		return true
	}
	if s[0] == '-' || s[0] == ' ' {
		return true
	}
	return false
}
