package scenario

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cloud"
	"repro/internal/edge"
	"repro/internal/gossip"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/transport"
)

// RunOptions tune a scenario execution without editing the spec.
type RunOptions struct {
	// Seed, when non-nil, overrides the spec's seed.
	Seed *int64
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
	// StateRoot is where durable runs keep checkpoints and journals
	// (default: a fresh temp dir, removed afterward).
	StateRoot string
	// Obs, when non-nil, is the observer the run instruments (so a caller
	// can serve /metrics while the scenario is in flight). The lossless
	// twin always gets its own registry, so twin counters never pollute
	// the run's.
	Obs *obs.Observer
}

// Verdict is the machine-readable outcome of one scenario run — the
// contract cmd/scenario prints as JSON and CI asserts against.
type Verdict struct {
	Name     string `json:"name"`
	Seed     int64  `json:"seed"`
	Network  string `json:"network"`
	Regions  int    `json:"regions"`
	Shards   int    `json:"shards"`
	Vehicles int    `json:"vehicles"`
	Rounds   int    `json:"rounds"`

	// Converged reports whether the fold satisfied the desired field at
	// any round (small stochastic fleets wobble around the band, so the
	// final round alone would flap).
	Converged bool `json:"converged"`
	// ConvergedRound is the first round after which the fold satisfied the
	// desired field (-1 if it never did).
	ConvergedRound int `json:"converged_round"`
	// ConsensusStateHash is the CRC-32C witness of the published ratio
	// field, in %08x form — comparable across runs and to the
	// consensus_state_hash metric.
	ConsensusStateHash string  `json:"consensus_state_hash"`
	MeanSharingRatio   float64 `json:"mean_sharing_ratio"`

	DegradedRounds    uint64 `json:"degraded_rounds"`
	Rewinds           uint64 `json:"rewinds"`
	ReplayedRounds    uint64 `json:"replayed_rounds"`
	LateCensuses      uint64 `json:"late_censuses"`
	DuplicateCensuses uint64 `json:"duplicate_censuses"`
	Recoveries        uint64 `json:"durable_recoveries"`
	LeaseEvictions    uint64 `json:"lease_evictions"`
	FaultsInjected    uint64 `json:"faults_injected"`
	FailedReports     int    `json:"failed_reports"`

	// Gossip counters (zero unless topology.gossip is set). Recoveries
	// above already includes gossip journal recoveries.
	GossipLocalRounds        uint64 `json:"gossip_local_rounds,omitempty"`
	GossipDegradedRounds     uint64 `json:"gossip_degraded_rounds,omitempty"`
	GossipEscalations        uint64 `json:"gossip_escalations,omitempty"`
	GossipEscalationFailures uint64 `json:"gossip_escalation_failures,omitempty"`
	// GossipPartitionLocalRounds counts local rounds completed while the
	// cloud was partitioned away — the edge-autonomy witness.
	GossipPartitionLocalRounds uint64 `json:"gossip_rounds_during_partition,omitempty"`
	// GossipFailovers counts leadership promotions (leader-kill events or
	// organic lease expiries under failover_ttl).
	GossipFailovers uint64 `json:"gossip_failovers,omitempty"`
	// GossipBacklogDropped counts mirrored-backlog rounds shed past the
	// max_backlog cap.
	GossipBacklogDropped uint64 `json:"gossip_backlog_dropped,omitempty"`

	Welfare      WelfareReport `json:"welfare"`
	RoundLatency LatencyReport `json:"round_latency"`
	ElapsedMS    float64       `json:"elapsed_ms"`

	// Baseline is the lossless twin's outcome (verdict.compare_lossless).
	Baseline *BaselineReport `json:"baseline,omitempty"`

	Checks []Check `json:"checks"`
	Pass   bool    `json:"pass"`
}

// WelfareReport aggregates the fleet's realized utility and privacy cost.
type WelfareReport struct {
	ReceivedUtility float64 `json:"received_utility"`
	SharedCost      float64 `json:"shared_cost"`
	// Net is utility minus cost — the welfare the consensus bought.
	Net            float64 `json:"net"`
	DeliveredItems int     `json:"delivered_items"`
}

// LatencyReport summarizes per-round wall time at the driver.
type LatencyReport struct {
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// BaselineReport is the lossless twin summary.
type BaselineReport struct {
	ConsensusStateHash string        `json:"consensus_state_hash"`
	Converged          bool          `json:"converged"`
	Welfare            WelfareReport `json:"welfare"`
	// HashEqual reports whether the faulted run's fold came out
	// bit-identical to the twin's.
	HashEqual bool `json:"hash_equal"`
	// WelfareDelta is run minus baseline net welfare.
	WelfareDelta float64 `json:"welfare_delta"`
}

// Check is one verdict expectation's outcome.
type Check struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// Run executes the spec and returns its verdict. The error is reserved
// for infrastructure failures (bad spec, wiring errors); expectation
// failures land in Verdict.Checks with Pass=false.
func Run(spec *Spec, opts RunOptions) (*Verdict, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	seed := spec.Seed
	if opts.Seed != nil {
		seed = *opts.Seed
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	started := time.Now()
	res, err := runOnce(spec, seed, logf, opts.StateRoot, opts.Obs)
	if err != nil {
		return nil, err
	}

	v := &Verdict{
		Name:               spec.Name,
		Seed:               seed,
		Network:            spec.Topology.Network,
		Regions:            spec.Topology.Regions,
		Shards:             spec.Topology.Shards,
		Vehicles:           res.vehicles,
		Rounds:             spec.Rounds,
		Converged:          res.converged,
		ConvergedRound:     res.convergedRound,
		ConsensusStateHash: fmt.Sprintf("%08x", res.hash),
		MeanSharingRatio:   res.meanX,
		DegradedRounds:     res.counter("consensus_degraded_rounds_total"),
		Rewinds:            res.counter("consensus_rewinds_total"),
		ReplayedRounds:     res.counter("consensus_replayed_rounds_total"),
		LateCensuses:       res.counter("consensus_late_censuses_total"),
		DuplicateCensuses:  res.counter("consensus_duplicate_censuses_total"),
		Recoveries:         res.counter("durable_recoveries_total") + res.counter("gossip_recoveries_total"),
		LeaseEvictions:     res.counter("lease_evictions_total"),
		FailedReports:      res.failedReports,
		Welfare:            res.welfare,
		RoundLatency:       latencyReport(res.latencies),
	}
	v.GossipLocalRounds = res.counter("gossip_local_rounds_total")
	v.GossipDegradedRounds = res.counter("gossip_degraded_rounds_total")
	v.GossipEscalations = res.counter("gossip_digest_escalations_total")
	v.GossipEscalationFailures = res.counter("gossip_escalation_failures_total")
	v.GossipPartitionLocalRounds = res.gossipPartRounds
	v.GossipFailovers = res.counter("gossip_failovers_total")
	v.GossipBacklogDropped = res.counter("gossip_backlog_dropped_total")
	v.FaultsInjected = res.counter("transport_fault_dropped_total") +
		res.counter("transport_fault_duplicated_total") +
		res.counter("transport_fault_delayed_total") +
		res.counter("transport_fault_disconnects_total")

	if spec.Verdict.CompareLossless {
		twin := spec.LosslessTwin()
		logf("running lossless twin %q for the baseline", twin.Name)
		base, err := runOnce(twin, seed, logf, opts.StateRoot, nil)
		if err != nil {
			return nil, fmt.Errorf("lossless twin: %w", err)
		}
		v.Baseline = &BaselineReport{
			ConsensusStateHash: fmt.Sprintf("%08x", base.hash),
			Converged:          base.converged,
			Welfare:            base.welfare,
			HashEqual:          base.hash == res.hash,
			WelfareDelta:       res.welfare.Net - base.welfare.Net,
		}
	}

	v.ElapsedMS = float64(time.Since(started).Microseconds()) / 1000
	evaluateChecks(spec, v)
	return v, nil
}

// LosslessTwin strips faults, outages, and kills (keeping surges, which
// change the fleet itself) so the twin folds the unperturbed trajectory
// the faulted run is judged against.
func (s *Spec) LosslessTwin() *Spec {
	t := &Spec{}
	*t = *s
	t.Name = s.Name + "-lossless"
	t.Cohorts = append([]Cohort(nil), s.Cohorts...)
	for i := range t.Cohorts {
		t.Cohorts[i].Fault = nil
	}
	t.Links = nil
	t.Events = nil
	for _, e := range s.Events {
		if e.Action == "surge" {
			t.Events = append(t.Events, e)
		}
	}
	t.Verdict = VerdictSpec{}
	t.Cloud.RoundDeadline = 0 // full barriers: the ideal trajectory
	t.Cloud.Durable = false
	if s.Topology.Gossip != nil {
		g := *s.Topology.Gossip
		t.Topology.Gossip = &g // twin keeps the gossip data plane, unaliased
	}
	return t
}

func evaluateChecks(spec *Spec, v *Verdict) {
	vs := &spec.Verdict
	add := func(name string, ok bool, detail string) {
		v.Checks = append(v.Checks, Check{Name: name, OK: ok, Detail: detail})
	}
	if vs.RequireConverged {
		add("converged", v.Converged,
			fmt.Sprintf("converged=%v (round %d)", v.Converged, v.ConvergedRound))
	}
	if vs.RequireHashEqual {
		ok := v.Baseline != nil && v.Baseline.HashEqual
		detail := "no baseline run"
		if v.Baseline != nil {
			detail = fmt.Sprintf("run %s vs lossless %s", v.ConsensusStateHash, v.Baseline.ConsensusStateHash)
		}
		add("hash_equal_lossless", ok, detail)
	}
	if vs.MaxDegradedRounds != nil {
		add("max_degraded_rounds", v.DegradedRounds <= uint64(*vs.MaxDegradedRounds),
			fmt.Sprintf("%d degraded <= %d", v.DegradedRounds, *vs.MaxDegradedRounds))
	}
	if vs.MinRewinds > 0 {
		add("min_rewinds", v.Rewinds >= uint64(vs.MinRewinds),
			fmt.Sprintf("%d rewinds >= %d", v.Rewinds, vs.MinRewinds))
	}
	if vs.MinRecoveries > 0 {
		add("min_recoveries", v.Recoveries >= uint64(vs.MinRecoveries),
			fmt.Sprintf("%d recoveries >= %d", v.Recoveries, vs.MinRecoveries))
	}
	if vs.MinPartitionLocalRounds > 0 {
		add("min_partition_local_rounds", v.GossipPartitionLocalRounds >= uint64(vs.MinPartitionLocalRounds),
			fmt.Sprintf("%d local rounds during partition >= %d", v.GossipPartitionLocalRounds, vs.MinPartitionLocalRounds))
	}
	if vs.MinGossipFailovers > 0 {
		add("min_gossip_failovers", v.GossipFailovers >= uint64(vs.MinGossipFailovers),
			fmt.Sprintf("%d failovers >= %d", v.GossipFailovers, vs.MinGossipFailovers))
	}
	v.Pass = true
	for _, c := range v.Checks {
		if !c.OK {
			v.Pass = false
		}
	}
}

func latencyReport(lat []time.Duration) LatencyReport {
	if len(lat) == 0 {
		return LatencyReport{}
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i].Microseconds()) / 1000
	}
	return LatencyReport{P50MS: pick(0.5), P99MS: pick(0.99), MaxMS: pick(1)}
}

// --- one execution ---

type runResult struct {
	hash             uint32
	converged        bool
	convergedRound   int
	meanX            float64
	vehicles         int
	welfare          WelfareReport
	latencies        []time.Duration
	failedReports    int
	gossipPartRounds uint64
	snapshot         []obs.Point
}

func (r *runResult) counter(name string) uint64 {
	total := 0.0
	for _, p := range r.snapshot {
		if p.Name == name && p.Type == obs.TypeCounter {
			total += p.Value
		}
	}
	return uint64(total)
}

// counterNow sums a counter's live value across the registry — used by the
// driver to bracket partition windows while the run is still in flight.
func (r *runner) counterNow(name string) uint64 {
	total := 0.0
	for _, p := range r.o.Registry().Snapshot() {
		if p.Name == name && p.Type == obs.TypeCounter {
			total += p.Value
		}
	}
	return uint64(total)
}

// netw names listeners so components find each other on either transport,
// and so a restarted component can reclaim its name.
type netw struct {
	inproc *transport.InprocNetwork
	codec  string

	mu    sync.Mutex
	addrs map[string]string // tcp only: name -> current address
}

func newNetw(network, codec string) (*netw, error) {
	n := &netw{codec: codec}
	if network == "inproc" {
		n.inproc = transport.NewInprocNetwork()
		if codec != "" {
			c, err := transport.CodecByName(codec)
			if err != nil {
				return nil, err
			}
			n.inproc.SetCodec(c)
		}
		return n, nil
	}
	n.addrs = map[string]string{}
	return n, nil
}

func (n *netw) tcpOptions() ([]transport.TCPOption, error) {
	if n.codec == "" {
		return nil, nil
	}
	c, err := transport.CodecByName(n.codec)
	if err != nil {
		return nil, err
	}
	return []transport.TCPOption{transport.WithCodec(c)}, nil
}

func (n *netw) listen(name string) (transport.Listener, error) {
	if n.inproc != nil {
		return n.inproc.Listen(name)
	}
	opts, err := n.tcpOptions()
	if err != nil {
		return nil, err
	}
	l, err := transport.ListenTCP("127.0.0.1:0", opts...)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.addrs[name] = l.Addr()
	n.mu.Unlock()
	return l, nil
}

// dial resolves the name at call time, so dials started after a restart
// reach the component's new address.
func (n *netw) dial(name string) (transport.Conn, error) {
	if n.inproc != nil {
		return n.inproc.Dial(name)
	}
	n.mu.Lock()
	addr, ok := n.addrs[name]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("scenario: no listener named %q yet", name)
	}
	opts, err := n.tcpOptions()
	if err != nil {
		return nil, err
	}
	return transport.DialTCP(addr, opts...)
}

// edgeState is the driver's view of one region's edge.
type edgeState struct {
	id       int
	seed     int64
	srv      *edge.Server
	listener transport.Listener
	link     *edge.CloudLink // nil in gossip mode
	hbStop   chan struct{}   // per-life heartbeat stop (nil when no leases)
	gnode    *gossip.Node    // gossip mode: the edge's consensus participant
	gossipL  transport.Listener

	down   atomic.Bool // outage: silent toward the tier
	killed atomic.Bool

	mu         sync.Mutex
	x          float64
	corrX      float64 // latest pushed correction
	hasCorr    bool
	lastCounts []int // last completed census; re-seeds a restarted server's shares
	expected   int   // vehicles that should be registered
	percept    func(*edge.Server) error
}

// shardState is the driver's view of one shard coordinator.
type shardState struct {
	id       int
	coord    *shard.Coordinator
	upstream *edge.BatchLink
	listener transport.Listener
	stateDir string
	alive    bool
}

type runner struct {
	spec *Spec
	seed int64
	logf func(string, ...any)
	o    *obs.Observer
	net  *netw
	stop chan struct{}

	agg      *cloud.Server
	aggL     transport.Listener
	shards   []*shardState
	edges    []*edgeState
	shardTab *shard.Table

	edgeFaults  []*transport.Fault // per edge (nil entries)
	shardFault  *transport.Fault
	cohortFault map[string]*transport.Fault

	// Gossip data plane (nil/empty unless topology.gossip is set).
	gossipNC        *NodeConfig // template: model+field resolved once, cloned per edge
	hoods           [][]int     // neighborhood membership by rendezvous ring
	cloudPart       atomic.Bool // partition event in force: cloud dials fail fast
	partMark        uint64      // gossip_local_rounds_total when the partition began
	partLocalRounds uint64      // local rounds completed across partition windows

	fleetMu     sync.Mutex
	fleet       []*FleetVehicle
	clientWG    sync.WaitGroup
	nextID      int
	roundTmo    time.Duration // cloud reply wait per round
	edgeTmo     time.Duration // edge census-barrier wait per round
	failedRep   atomic.Int64
	stateDirs   string // run-scoped root for durable state
	removeState bool
}

func runOnce(spec *Spec, seed int64, logf func(string, ...any), stateRoot string, o *obs.Observer) (_ *runResult, err error) {
	if o == nil {
		o = obs.New()
	}
	r := &runner{
		spec:        spec,
		seed:        seed,
		logf:        logf,
		o:           o,
		stop:        make(chan struct{}),
		nextID:      1,
		cohortFault: map[string]*transport.Fault{},
	}
	r.roundTmo = 5 * time.Second
	if d := time.Duration(spec.Cloud.RoundDeadline); d > 0 && d*4 > r.roundTmo {
		r.roundTmo = d * 4
	}
	// With a round deadline set the cloud proceeds without stragglers, so an
	// edge gains nothing by holding its census barrier open longer than the
	// deadline: dropped vehicle reports would otherwise stall every round for
	// the full reply timeout. Without a deadline the barrier waits generously.
	r.edgeTmo = 5 * time.Second
	if d := time.Duration(spec.Cloud.RoundDeadline); d > 0 {
		r.edgeTmo = d
	}
	if spec.Cloud.Durable {
		root := stateRoot
		if root == "" {
			dir, err := os.MkdirTemp("", "scenario-"+spec.Name+"-")
			if err != nil {
				return nil, err
			}
			root = dir
			r.removeState = true
		}
		r.stateDirs = root
	}
	defer func() {
		r.teardown()
		if r.removeState {
			os.RemoveAll(r.stateDirs)
		}
	}()

	if r.net, err = newNetw(spec.Topology.Network, spec.Topology.Codec); err != nil {
		return nil, err
	}
	if err := r.buildFaults(); err != nil {
		return nil, err
	}
	if err := r.buildTier(); err != nil {
		return nil, err
	}
	if err := r.buildEdges(); err != nil {
		return nil, err
	}
	if err := r.buildFleets(); err != nil {
		return nil, err
	}
	if err := r.awaitRegistrations(10 * time.Second); err != nil {
		return nil, err
	}
	return r.drive()
}

func (r *runner) buildFaults() error {
	m := r.spec.Topology.Regions
	r.edgeFaults = make([]*transport.Fault, m)
	for li := range r.spec.Links {
		l := &r.spec.Links[li]
		cfg := l.Fault.Config(r.seed + int64(100+li))
		f := transport.NewFault(*cfg)
		f.Instrument(r.o)
		switch l.Link {
		case "edge_cloud":
			regions := l.Regions
			if len(regions) == 0 {
				regions = allRegions(m)
			}
			for _, i := range regions {
				if r.edgeFaults[i] != nil {
					return fmt.Errorf("scenario: edge %d has two edge_cloud fault profiles", i)
				}
				r.edgeFaults[i] = f
			}
		case "shard_aggregator":
			r.shardFault = f
		}
	}
	for ci := range r.spec.Cohorts {
		co := &r.spec.Cohorts[ci]
		if co.Fault == nil {
			continue
		}
		f := transport.NewFault(*co.Fault.Config(r.seed + int64(200+ci)))
		f.Instrument(r.o)
		r.cohortFault[co.Name] = f
	}
	return nil
}

func allRegions(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

// cloudConfig assembles the aggregation tier's NodeConfig from the spec.
func (r *runner) cloudConfig() (*NodeConfig, error) {
	s := r.spec
	role := RoleCloud
	if s.Topology.Shards > 1 {
		role = RoleAggregator
	}
	graph, err := GraphByName(s.Topology.Graph, s.Topology.Regions)
	if err != nil {
		return nil, err
	}
	nc := Defaults(role)
	nc.Seed = r.seed
	nc.Regions = s.Topology.Regions
	nc.Graph = graph
	nc.X0 = s.Cloud.X0
	nc.TargetX = s.Cloud.TargetX
	nc.Eps = s.Cloud.Eps
	nc.Lambda = s.Cloud.Lambda
	nc.Beta = s.Cloud.Beta
	nc.Tau = DemoTau
	nc.FixedLag = s.Cloud.FixedLag
	nc.RoundDeadline = time.Duration(s.Cloud.RoundDeadline)
	nc.Obs = r.o
	nc.Logf = func(format string, args ...any) { r.logf("cloud: "+format, args...) }
	if s.Cloud.Field != nil {
		field, err := s.Cloud.Field.Compile(s.Topology.Regions)
		if err != nil {
			return nil, err
		}
		nc.Field = field
	}
	if r.stateDirs != "" {
		nc.StateDir = r.stateDirs + "/aggregator"
	}
	return nc, nil
}

func (r *runner) buildTier() error {
	nc, err := r.cloudConfig()
	if err != nil {
		return err
	}
	srv, what, err := nc.NewCloud()
	if err != nil {
		return err
	}
	r.agg = srv
	r.logf("cloud up: %d regions, steering toward %s", r.spec.Topology.Regions, what)
	if r.aggL, err = r.net.listen("cloud"); err != nil {
		return err
	}
	go r.agg.Serve(r.aggL)

	s := r.spec
	if s.Topology.Shards > 1 {
		if r.shardTab, err = ShardTable(s.Topology.Shards, s.Topology.Regions); err != nil {
			return err
		}
		r.shards = make([]*shardState, s.Topology.Shards)
		for si := 0; si < s.Topology.Shards; si++ {
			st := &shardState{id: si}
			if r.stateDirs != "" {
				st.stateDir = fmt.Sprintf("%s/shard-%d", r.stateDirs, si)
			}
			// Rendezvous hashing can leave a shard with no regions; such a
			// shard is never dialed, so don't start it.
			if len(r.shardTab.Regions(si)) == 0 {
				r.logf("shard %d owns no regions in the %d-region ring; not started", si, s.Topology.Regions)
				r.shards[si] = st
				continue
			}
			if err := r.startShard(st); err != nil {
				return err
			}
			r.shards[si] = st
		}
	}
	return nil
}

func (r *runner) startShard(st *shardState) error {
	s := r.spec
	nc := Defaults(RoleShard)
	nc.Seed = r.seed + int64(10+st.id)
	nc.Regions = s.Topology.Regions
	nc.Shards = s.Topology.Shards
	nc.ShardID = st.id
	nc.ShardDeadline = time.Duration(s.Cloud.RoundDeadline)
	nc.StateDir = st.stateDir
	nc.Obs = r.o
	nc.Logf = func(format string, args ...any) { r.logf(fmt.Sprintf("shard %d: ", st.id)+format, args...) }
	dial := func() (transport.Conn, error) {
		c, err := r.net.dial("cloud")
		if err != nil {
			return nil, err
		}
		if r.shardFault != nil {
			c = r.shardFault.WrapConn(c)
		}
		return c, nil
	}
	coord, upstream, err := nc.NewShard(dial)
	if err != nil {
		return err
	}
	l, err := r.net.listen(fmt.Sprintf("shard-%d", st.id))
	if err != nil {
		coord.Close()
		upstream.Close()
		return err
	}
	st.coord, st.upstream, st.listener, st.alive = coord, upstream, l, true
	go coord.Serve(l)
	return nil
}

func (r *runner) stopShard(st *shardState) {
	if !st.alive {
		return
	}
	st.alive = false
	st.listener.Close()
	st.coord.Close()
	st.upstream.Close()
}

// upstreamName is the tier component edge i reports to.
func (r *runner) upstreamName(i int) string {
	if r.shardTab == nil {
		return "cloud"
	}
	owner, err := r.shardTab.Owner(i)
	if err != nil {
		return "cloud" // unreachable: validated shard/region bounds
	}
	return fmt.Sprintf("shard-%d", owner)
}

func (r *runner) buildEdges() error {
	s := r.spec
	m := s.Topology.Regions
	r.edges = make([]*edgeState, m)

	if g := s.Topology.Gossip; g != nil {
		hoods, err := gossip.Neighborhoods(m, g.Neighborhoods)
		if err != nil {
			return err
		}
		r.hoods = hoods
		graph, err := GraphByName(s.Topology.Graph, m)
		if err != nil {
			return err
		}
		nc := Defaults(RoleEdge)
		nc.Regions = m
		nc.Graph = graph
		nc.X0 = s.Cloud.X0
		nc.TargetX = s.Cloud.TargetX
		nc.Eps = s.Cloud.Eps
		nc.Lambda = s.Cloud.Lambda
		nc.Beta = s.Cloud.Beta
		nc.Tau = DemoTau
		if s.Cloud.Field != nil {
			field, err := s.Cloud.Field.Compile(m)
			if err != nil {
				return err
			}
			nc.Field = field
		}
		// Resolve the model and field once; every edge's local fold shares
		// them (the probe is the expensive part, and identical inputs would
		// just recompute the identical field per edge).
		model, err := nc.BuildModel()
		if err != nil {
			return err
		}
		field, what, err := nc.ResolveField(model)
		if err != nil {
			return err
		}
		nc.Model, nc.Field = model, field
		nc.GossipOf = len(hoods)
		nc.GossipEvery = g.EscalateEvery
		nc.GossipDeadline = time.Duration(g.Deadline)
		nc.GossipFailoverTTL = time.Duration(g.FailoverTTL)
		nc.GossipMaxBacklog = g.MaxBacklog
		r.gossipNC = nc
		r.logf("gossip data plane: %d neighborhoods over %d regions, escalate every %d rounds, steering toward %s",
			len(hoods), m, g.EscalateEvery, what)
	}

	// Union of rsu perception masks per region.
	percept := make([]func(*edge.Server) error, m)
	for ci := range s.Cohorts {
		co := &s.Cohorts[ci]
		if co.Kind != KindRSU {
			continue
		}
		mask, _, err := co.Masks()
		if err != nil {
			return err
		}
		for _, i := range cohortRegions(co, m) {
			prev := percept[i]
			percept[i] = func(e *edge.Server) error {
				if prev != nil {
					if err := prev(e); err != nil {
						return err
					}
				}
				return e.EnablePerception(mask)
			}
		}
	}

	for i := 0; i < m; i++ {
		es := &edgeState{
			id:      i,
			seed:    int64(splitmix64(uint64(r.seed)*0x9e3779b97f4a7c15 + 0xedbe + uint64(i))),
			x:       s.Cloud.X0,
			percept: percept[i],
		}
		if err := r.startEdge(es); err != nil {
			return err
		}
		r.edges[i] = es
	}
	return nil
}

// linkDial dials edge i's upstream through its fault profile; outages and
// kills make the dial fail so leases lapse while the region is silent.
func (r *runner) linkDial(es *edgeState) func() (transport.Conn, error) {
	return func() (transport.Conn, error) {
		if es.down.Load() || es.killed.Load() {
			return nil, fmt.Errorf("scenario: edge %d is offline", es.id)
		}
		c, err := r.net.dial(r.upstreamName(es.id))
		if err != nil {
			return nil, err
		}
		if f := r.edgeFaults[es.id]; f != nil {
			c = f.WrapConn(c)
		}
		return c, nil
	}
}

func (r *runner) startEdge(es *edgeState) error {
	nc := Defaults(RoleEdge)
	nc.ID = es.id
	nc.Seed = es.seed
	nc.Obs = r.o
	es.srv = nc.NewEdge()
	if es.percept != nil {
		if err := es.percept(es.srv); err != nil {
			return err
		}
	}
	es.mu.Lock()
	if es.lastCounts != nil {
		// A restart: resume the policy broadcast from the distribution the
		// dead server last published, not the uniform cold-start prior —
		// otherwise every vehicle's next revision diverges from a run that
		// never lost the server.
		es.srv.SetShares(edge.Shares(es.lastCounts))
	}
	es.mu.Unlock()
	l, err := r.net.listen(fmt.Sprintf("edge-%d", es.id))
	if err != nil {
		return err
	}
	es.listener = l
	go es.srv.Serve(l)

	if r.gossipNC != nil {
		return r.startGossip(es)
	}

	es.link = &edge.CloudLink{
		Edge: es.id,
		Dialer: &transport.Dialer{
			Dial:        r.linkDial(es),
			MaxAttempts: 10,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    100 * time.Millisecond,
			Seed:        es.seed + 1,
		},
		ReplyTimeout: r.roundTmo,
		Obs:          r.o,
		OnCorrection: func(round int, x float64) {
			es.mu.Lock()
			es.corrX, es.hasCorr = x, true
			es.mu.Unlock()
		},
	}

	if ttl := time.Duration(r.spec.Cloud.LeaseTTL); ttl > 0 {
		es.hbStop = make(chan struct{})
		hb := &edge.Heartbeat{
			Edge: es.id,
			Dialer: &transport.Dialer{
				Dial:        r.linkDial(es),
				MaxAttempts: 3,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        es.seed + 2,
			},
			TTL: ttl,
			Obs: r.o,
		}
		stop := es.hbStop
		go hb.Run(stop)
	}
	return nil
}

// startGossip attaches edge es to its neighborhood's gossip plane: a local
// fold cloned from the shared template, a listener peers dial, and a node
// that escalates digests to the cloud. Replaces the CloudLink/heartbeat
// wiring entirely — in gossip mode the edge never reports censuses direct.
func (r *runner) startGossip(es *edgeState) error {
	nc := *r.gossipNC
	nc.ID = es.id
	nc.Seed = es.seed
	nc.Obs = r.o
	nc.Logf = func(format string, args ...any) { r.logf(fmt.Sprintf("gossip %d: ", es.id)+format, args...) }
	h := gossip.HoodOf(r.hoods, es.id)
	if h < 0 {
		return fmt.Errorf("scenario: edge %d is in no gossip neighborhood", es.id)
	}
	nc.GossipHood = h
	if r.stateDirs != "" {
		nc.StateDir = fmt.Sprintf("%s/gossip-%d", r.stateDirs, es.id)
	}
	peerDial := func(member int) (transport.Conn, error) {
		// Peer links are the neighborhood LAN: outages and faults model the
		// edge→cloud uplink, not the local mesh.
		return r.net.dial(fmt.Sprintf("gossip-%d", member))
	}
	cloudDial := func() (transport.Conn, error) {
		if r.cloudPart.Load() {
			return nil, fmt.Errorf("scenario: cloud partitioned away")
		}
		if es.down.Load() || es.killed.Load() {
			return nil, fmt.Errorf("scenario: edge %d is offline", es.id)
		}
		c, err := r.net.dial("cloud")
		if err != nil {
			return nil, err
		}
		if f := r.edgeFaults[es.id]; f != nil {
			c = f.WrapConn(c)
		}
		return c, nil
	}
	gl, err := r.net.listen(fmt.Sprintf("gossip-%d", es.id))
	if err != nil {
		return err
	}
	node, _, err := nc.NewGossipNode(r.hoods[h], peerDial, cloudDial)
	if err != nil {
		gl.Close()
		return err
	}
	es.gnode, es.gossipL = node, gl
	go node.Serve(gl)
	return nil
}

func (r *runner) stopEdge(es *edgeState) {
	es.killed.Store(true)
	if es.hbStop != nil {
		close(es.hbStop)
		es.hbStop = nil
	}
	if es.link != nil {
		es.link.Close()
		es.link = nil
	}
	if es.gossipL != nil {
		es.gossipL.Close()
		es.gossipL = nil
	}
	if es.gnode != nil {
		es.gnode.Close()
		es.gnode = nil
	}
	es.listener.Close()
	es.srv.Close()
}

func cohortRegions(co *Cohort, m int) []int {
	if len(co.Regions) > 0 {
		return co.Regions
	}
	return allRegions(m)
}

func (r *runner) buildFleets() error {
	for ci := range r.spec.Cohorts {
		co := &r.spec.Cohorts[ci]
		if co.Kind == KindRSU {
			continue
		}
		if err := r.addCohortFleet(co, co.PerRegion); err != nil {
			return err
		}
	}
	return nil
}

// addCohortFleet attaches n vehicles of the cohort to each of its regions.
func (r *runner) addCohortFleet(co *Cohort, n int) error {
	m := r.spec.Topology.Regions
	equipped, desired, err := co.Masks()
	if err != nil {
		return err
	}
	fault := r.cohortFault[co.Name]
	nc := &NodeConfig{Obs: r.o}
	for _, region := range cohortRegions(co, m) {
		fs := FleetSpec{
			N:                n,
			IDBase:           r.nextID,
			Equipped:         equipped,
			Desired:          desired,
			Beta:             co.Beta,
			Tau:              co.Tau,
			Mu:               co.Mu,
			PrivacyWeightStd: co.PrivacyWeightStd,
			Seed:             r.seed,
			RegisterTimeout:  250 * time.Millisecond,
			Stop:             r.stop,
		}
		r.nextID += n
		vehicles, err := nc.NewFleet(fs)
		if err != nil {
			return err
		}
		es := r.edges[region]
		es.mu.Lock()
		es.expected += n
		es.mu.Unlock()
		for _, fv := range vehicles {
			r.fleetMu.Lock()
			r.fleet = append(r.fleet, fv)
			r.fleetMu.Unlock()
			dialer := &transport.Dialer{
				Dial: func() (transport.Conn, error) {
					c, err := r.net.dial(fmt.Sprintf("edge-%d", region))
					if err != nil {
						return nil, err
					}
					if fault != nil {
						c = fault.WrapConn(c)
					}
					return c, nil
				},
				MaxAttempts: 10000,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
				Seed:        int64(fv.Agent.Profile.ID) + 0x5eed,
			}
			client := fv.Client
			r.clientWG.Add(1)
			go func() {
				defer r.clientWG.Done()
				// Client exits (nil or error) when stop closes or the
				// dialer's patience runs out mid-kill; either way the agent's
				// welfare tallies stay readable after clientWG drains.
				_ = client.RunWithReconnect(dialer)
			}()
		}
	}
	return nil
}

func (r *runner) awaitRegistrations(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, es := range r.edges {
		es.mu.Lock()
		want := es.expected
		es.mu.Unlock()
		for es.srv.NumVehicles() < want {
			if time.Now().After(deadline) {
				return fmt.Errorf("scenario: only %d/%d vehicles registered at edge %d",
					es.srv.NumVehicles(), want, es.id)
			}
			time.Sleep(time.Millisecond)
		}
	}
	return nil
}

// timeline precomputes event triggers by round.
type timeline struct {
	outageStart  map[int][]int
	outageEnd    map[int][]int
	edgeKill     map[int][]int
	edgeRestart  map[int][]int
	shardKill    map[int][]int
	shardRestart map[int][]int
	leaderKill   map[int][]int // neighborhood indices, by round
	partStart    map[int]bool
	partEnd      map[int]bool
	surges       map[int][]Event
}

func buildTimeline(events []Event) (*timeline, error) {
	tl := &timeline{
		outageStart:  map[int][]int{},
		outageEnd:    map[int][]int{},
		edgeKill:     map[int][]int{},
		edgeRestart:  map[int][]int{},
		shardKill:    map[int][]int{},
		shardRestart: map[int][]int{},
		leaderKill:   map[int][]int{},
		partStart:    map[int]bool{},
		partEnd:      map[int]bool{},
		surges:       map[int][]Event{},
	}
	for _, e := range events {
		switch e.Action {
		case "outage":
			_, n, err := e.TargetKind()
			if err != nil {
				return nil, err
			}
			tl.outageStart[e.Round] = append(tl.outageStart[e.Round], n)
			if e.Until > 0 {
				tl.outageEnd[e.Until] = append(tl.outageEnd[e.Until], n)
			}
		case "kill":
			kind, n, err := e.TargetKind()
			if err != nil {
				return nil, err
			}
			if kind == "edge" {
				tl.edgeKill[e.Round] = append(tl.edgeKill[e.Round], n)
				if e.Until > 0 {
					tl.edgeRestart[e.Until] = append(tl.edgeRestart[e.Until], n)
				}
			} else {
				tl.shardKill[e.Round] = append(tl.shardKill[e.Round], n)
				if e.Until > 0 {
					tl.shardRestart[e.Until] = append(tl.shardRestart[e.Until], n)
				}
			}
		case "leader-kill":
			_, n, err := e.TargetKind()
			if err != nil {
				return nil, err
			}
			tl.leaderKill[e.Round] = append(tl.leaderKill[e.Round], n)
		case "partition":
			tl.partStart[e.Round] = true
			if e.Until > 0 {
				tl.partEnd[e.Until] = true
			}
		case "surge":
			tl.surges[e.Round] = append(tl.surges[e.Round], e)
		}
	}
	return tl, nil
}

func (r *runner) drive() (*runResult, error) {
	s := r.spec
	tl, err := buildTimeline(s.Events)
	if err != nil {
		return nil, err
	}
	res := &runResult{convergedRound: -1}

	for t := 0; t < s.Rounds; t++ {
		if err := r.applyEvents(tl, t); err != nil {
			return nil, err
		}

		roundStart := time.Now()
		var wg sync.WaitGroup
		for _, es := range r.edges {
			if es.down.Load() || es.killed.Load() {
				continue
			}
			es := es
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.edgeRound(es, t)
			}()
		}
		wg.Wait()
		res.latencies = append(res.latencies, time.Since(roundStart))

		if res.convergedRound < 0 && r.agg.Converged() {
			res.convergedRound = t
			r.logf("round %d: desired field satisfied", t)
		}
	}

	// The run is over. Heal any partition still in force and drain every
	// leader's escalation backlog, so the cloud's fold reflects all local
	// rounds before its hash is read — this is the reconcile-on-heal step
	// the partition verdicts compare against an always-connected run.
	if r.cloudPart.Load() {
		r.cloudPart.Store(false)
		r.partLocalRounds += r.counterNow("gossip_local_rounds_total") - r.partMark
		r.logf("end of run: cloud partition healed for reconciliation")
	}
	for _, es := range r.edges {
		if es.gnode != nil && !es.killed.Load() {
			if err := es.gnode.Flush(); err != nil {
				r.logf("gossip %d: final flush: %v", es.id, err)
			}
		}
	}
	res.gossipPartRounds = r.partLocalRounds

	// The run is over: read the fold before teardown. Converged means the
	// fold satisfied the desired field at some round — the revision
	// dynamics are stochastic, so a small fleet keeps wobbling around the
	// band after first touching it (RunAgentSim stops at that point; the
	// runner keeps going for the fixed-round trajectory).
	res.hash = r.agg.StateHash()
	res.converged = res.convergedRound >= 0 || r.agg.Converged()
	state := r.agg.State()
	for _, x := range state.X {
		res.meanX += x
	}
	res.meanX /= float64(len(state.X))
	res.failedReports = int(r.failedRep.Load())

	r.teardown()
	r.clientWG.Wait()

	r.fleetMu.Lock()
	res.vehicles = len(r.fleet)
	for _, fv := range r.fleet {
		res.welfare.ReceivedUtility += fv.Agent.ReceivedUtility
		res.welfare.SharedCost += fv.Agent.SharedCost
		res.welfare.DeliveredItems += fv.Agent.ReceivedItems
	}
	r.fleetMu.Unlock()
	res.welfare.Net = res.welfare.ReceivedUtility - res.welfare.SharedCost

	res.snapshot = r.o.Registry().Snapshot()
	return res, nil
}

// edgeRound runs one edge's vehicle round and reports the census upstream,
// adopting any pushed correction first.
func (r *runner) edgeRound(es *edgeState, t int) {
	es.mu.Lock()
	if es.hasCorr {
		es.x, es.hasCorr = es.corrX, false
	}
	x := es.x
	es.mu.Unlock()

	counts, err := es.srv.RunRound(t, x, r.edgeTmo)
	if err != nil {
		r.logf("edge %d round %d: %v", es.id, t, err)
		r.failedRep.Add(1)
		return
	}
	es.mu.Lock()
	es.lastCounts = counts
	es.mu.Unlock()
	if es.gnode != nil {
		// Gossip data plane: fold the neighborhood's censuses locally; the
		// new ratio comes from the local fold, never from the cloud, so the
		// census stream is identical whether or not the cloud is reachable.
		newX, err := es.gnode.LocalRound(t, counts)
		if err != nil {
			r.logf("gossip %d round %d: %v", es.id, t, err)
			r.failedRep.Add(1)
			return
		}
		es.mu.Lock()
		es.x = newX
		es.mu.Unlock()
		return
	}
	newX, err := es.link.Report(t, counts)
	if err != nil {
		// Upstream unreachable (kill window, exhausted retries): keep x and
		// catch up next round, like a partitioned cpnode edge.
		r.failedRep.Add(1)
		return
	}
	es.mu.Lock()
	if !es.hasCorr { // a correction racing in wins over the reply
		es.x = newX
	}
	es.mu.Unlock()
}

func (r *runner) applyEvents(tl *timeline, t int) error {
	if tl.partEnd[t] && r.cloudPart.Load() {
		r.cloudPart.Store(false)
		r.partLocalRounds += r.counterNow("gossip_local_rounds_total") - r.partMark
		r.logf("round %d: cloud partition healed", t)
	}
	if tl.partStart[t] && !r.cloudPart.Load() {
		r.cloudPart.Store(true)
		r.partMark = r.counterNow("gossip_local_rounds_total")
		r.logf("round %d: cloud partitioned away", t)
	}
	for _, region := range tl.outageEnd[t] {
		r.edges[region].down.Store(false)
		r.logf("round %d: region %d restored", t, region)
	}
	for _, region := range tl.outageStart[t] {
		r.edges[region].down.Store(true)
		r.logf("round %d: region %d outage", t, region)
	}
	for _, id := range tl.edgeRestart[t] {
		es := r.edges[id]
		es.killed.Store(false)
		if err := r.startEdge(es); err != nil {
			return fmt.Errorf("restarting edge %d: %w", id, err)
		}
		r.logf("round %d: edge %d restarted", t, id)
		r.awaitEdgeReregistration(es, 2*time.Second)
	}
	for _, id := range tl.edgeKill[t] {
		r.stopEdge(r.edges[id])
		r.logf("round %d: edge %d killed", t, id)
	}
	for _, h := range tl.leaderKill[t] {
		if err := r.killHoodLeader(h, t); err != nil {
			return err
		}
	}
	for _, id := range tl.shardRestart[t] {
		st := r.shards[id]
		if len(r.shardTab.Regions(id)) == 0 {
			continue // was never started: owns no regions
		}
		if err := r.startShard(st); err != nil {
			return fmt.Errorf("restarting shard %d: %w", id, err)
		}
		r.logf("round %d: shard %d restarted", t, id)
	}
	for _, id := range tl.shardKill[t] {
		r.stopShard(r.shards[id])
		r.logf("round %d: shard %d killed", t, id)
	}
	for _, e := range tl.surges[t] {
		for ci := range r.spec.Cohorts {
			co := &r.spec.Cohorts[ci]
			if co.Name == e.Cohort {
				if err := r.addCohortFleet(co, e.Count); err != nil {
					return fmt.Errorf("surge at round %d: %w", t, err)
				}
				r.logf("round %d: surge — %d extra %s vehicles per region", t, e.Count, co.Name)
			}
		}
		// Surged vehicles register asynchronously; give them a moment so
		// the next census sees most of them.
		r.awaitRegistrationsBrief(time.Second)
	}
	return nil
}

// killHoodLeader implements the leader-kill event: kill neighborhood h's
// current leader without warning (no flush — its unacked backlog dies with
// it), wait for the ring successor to notice the lapsed lease and promote,
// then restart the dead node from its journal and wait for it to adopt the
// successor's epoch as a follower. The whole sequence completes between
// round boundaries, so no census is lost and the fold trajectory stays
// bit-identical to an unperturbed run — the successor re-escalates the
// mirrored backlog and the cloud's per-hood watermark absorbs any overlap.
func (r *runner) killHoodLeader(h, t int) error {
	members := r.hoods[h]
	deadline := time.Now().Add(15 * time.Second)
	var victim *edgeState
	for victim == nil {
		for _, id := range members {
			es := r.edges[id]
			if es.gnode != nil && !es.killed.Load() && es.gnode.Leader() {
				victim = es
				break
			}
		}
		if victim == nil {
			if time.Now().After(deadline) {
				return fmt.Errorf("leader-kill at round %d: neighborhood %d has no confirmed leader", t, h)
			}
			time.Sleep(time.Millisecond)
		}
	}
	r.stopEdge(victim)
	r.logf("round %d: leader-kill — edge %d (neighborhood %d leader) killed", t, victim.id, h)

	var succ *edgeState
	for succ == nil {
		for _, id := range members {
			es := r.edges[id]
			if es != victim && es.gnode != nil && !es.killed.Load() && es.gnode.Leader() {
				succ = es
				break
			}
		}
		if succ == nil {
			if time.Now().After(deadline) {
				return fmt.Errorf("leader-kill at round %d: no successor promoted in neighborhood %d", t, h)
			}
			time.Sleep(time.Millisecond)
		}
	}
	succEpoch := succ.gnode.Epoch()
	r.logf("round %d: leader-kill — edge %d promoted at epoch %d", t, succ.id, succEpoch)

	victim.killed.Store(false)
	if err := r.startEdge(victim); err != nil {
		return fmt.Errorf("leader-kill at round %d: restarting edge %d: %w", t, victim.id, err)
	}
	for victim.gnode.Epoch() < succEpoch {
		if time.Now().After(deadline) {
			return fmt.Errorf("leader-kill at round %d: edge %d did not rejoin as a follower", t, victim.id)
		}
		time.Sleep(time.Millisecond)
	}
	r.logf("round %d: leader-kill — edge %d rejoined as a follower at epoch %d", t, victim.id, victim.gnode.Epoch())
	r.awaitEdgeReregistration(victim, 5*time.Second)
	return nil
}

func (r *runner) awaitEdgeReregistration(es *edgeState, timeout time.Duration) {
	es.mu.Lock()
	want := es.expected
	es.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for es.srv.NumVehicles() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

func (r *runner) awaitRegistrationsBrief(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for _, es := range r.edges {
		if es.down.Load() || es.killed.Load() {
			continue
		}
		es.mu.Lock()
		want := es.expected
		es.mu.Unlock()
		for es.srv.NumVehicles() < want && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
}

func (r *runner) teardown() {
	select {
	case <-r.stop:
		return // already torn down
	default:
	}
	close(r.stop)
	for _, es := range r.edges {
		if es != nil && !es.killed.Load() {
			r.stopEdge(es)
		}
	}
	for _, st := range r.shards {
		if st != nil {
			r.stopShard(st)
		}
	}
	if r.aggL != nil {
		r.aggL.Close()
	}
	if r.agg != nil {
		r.agg.Close()
	}
}
