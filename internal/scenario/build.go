package scenario

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/edge"
	"repro/internal/game"
	"repro/internal/gossip"
	"repro/internal/lattice"
	"repro/internal/policy"
	"repro/internal/sensor"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/vehicle"
)

// DemoTau is the choice temperature used by both the cloud's mean-field
// probe and the vehicle agents; a soft temperature keeps the demo's
// equilibria away from basin boundaries so small fleets track the mean
// field (see EXPERIMENTS.md on multistability).
const DemoTau = 0.25

// demoGraph couples every region to every other with a dominant
// intra-region frequency — the cpnode/demo topology.
type demoGraph struct{ m int }

func (g demoGraph) M() int { return g.m }
func (g demoGraph) Gamma(i, j int) float64 {
	if i == j {
		return 0.9
	}
	if g.m == 1 {
		return 0
	}
	return 0.1 / float64(g.m-1)
}
func (g demoGraph) Neighbors(i int) []int {
	var out []int
	for j := 0; j < g.m; j++ {
		if j != i {
			out = append(out, j)
		}
	}
	return out
}

// DemoGraph returns the dense all-adjacent demo region graph.
func DemoGraph(m int) game.Graph { return demoGraph{m: m} }

// cycleGraph couples the regions in a sparse cycle: enough inter-region
// coupling that the fold is global, without the O(M^2) dense graph at load
// scale (the cmd/loadgen topology).
type cycleGraph struct{ m int }

func (g cycleGraph) M() int { return g.m }
func (g cycleGraph) Gamma(i, j int) float64 {
	if i == j {
		return 0.6
	}
	if g.m == 1 {
		return 0
	}
	d := i - j
	if d < 0 {
		d = -d
	}
	if d == 1 || d == g.m-1 {
		return 0.2
	}
	return 0
}
func (g cycleGraph) Neighbors(i int) []int {
	if g.m == 1 {
		return nil
	}
	return []int{(i + g.m - 1) % g.m, (i + 1) % g.m}
}

// CycleGraph returns the sparse ring region graph used at load scale.
func CycleGraph(m int) game.Graph { return cycleGraph{m: m} }

// GraphByName resolves a spec graph name ("demo" dense, "cycle" sparse).
func GraphByName(name string, m int) (game.Graph, error) {
	switch name {
	case "", "demo":
		return DemoGraph(m), nil
	case "cycle":
		return CycleGraph(m), nil
	default:
		return nil, fmt.Errorf("scenario: unknown region graph %q (want demo or cycle)", name)
	}
}

// BuildModel resolves the game model: a prebuilt Model wins, otherwise the
// paper payoffs over the configured graph with a uniform Beta.
func (c *NodeConfig) BuildModel() (*game.Model, error) {
	if c.Model != nil {
		return c.Model, nil
	}
	g := c.Graph
	if g == nil {
		g = DemoGraph(c.Regions)
	}
	betas := make([]float64, c.Regions)
	for i := range betas {
		betas[i] = c.Beta
	}
	return game.NewModel(lattice.PaperPayoffs(), g, betas)
}

// ProbeField derives the desired decision field as the regime reachable
// from a uniform mix at targetX (adiabatic continuation under the same
// Lambda FDS uses), banded by eps. This is the field cpnode's demo cloud
// steers toward when no explicit field spec is given.
func ProbeField(model *game.Model, m int, x0, targetX, eps, lambda, tau float64) (*policy.Field, error) {
	dyn, err := game.NewLogitDynamics(model, tau, 0.5)
	if err != nil {
		return nil, err
	}
	probe := game.NewUniformState(m, model.K(), x0)
	for ramping := true; ramping; {
		ramping = false
		for i := range probe.X {
			if probe.X[i]+lambda < targetX {
				probe.X[i] += lambda
				ramping = true
			} else {
				probe.X[i] = targetX
			}
		}
		if err := dyn.Step(probe); err != nil {
			return nil, err
		}
	}
	if _, err := dyn.Equilibrium(probe, 1e-9, 20000); err != nil {
		return nil, err
	}
	field := policy.NewFreeField(m, model.K())
	for i := range probe.P {
		for k, v := range probe.P[i] {
			lo, hi := v-eps, v+eps
			if lo < 0 {
				lo = 0
			}
			if hi > 1 {
				hi = 1
			}
			field.P[i][k].Lo, field.P[i][k].Hi = lo, hi
		}
	}
	return field, nil
}

// P1BandField is the load-harness field: the all-sharing decision P1 held
// in a band around target, every other share free.
func P1BandField(m, k int, target, band float64) (*policy.Field, error) {
	tv := make([]float64, k)
	tv[0] = target
	field, err := policy.NewUniformField(m, tv, band)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		for d := 1; d < k; d++ {
			field.P[i][d].Lo, field.P[i][d].Hi = 0, 1
		}
	}
	return field, nil
}

// ResolveField resolves the desired field in priority order: a prebuilt
// Field, then a FieldPath JSON spec, then the TargetX probe. The returned
// description names the source for operator logs.
func (c *NodeConfig) ResolveField(model *game.Model) (*policy.Field, string, error) {
	m := model.M()
	if c.Field != nil {
		if c.Field.M() != m || c.Field.K() != model.K() {
			return nil, "", fmt.Errorf("scenario: field is %dx%d, want %dx%d",
				c.Field.M(), c.Field.K(), m, model.K())
		}
		return c.Field, "explicit field", nil
	}
	if c.FieldPath != "" {
		fh, err := os.Open(c.FieldPath)
		if err != nil {
			return nil, "", err
		}
		field, err := policy.ReadFieldSpec(fh)
		fh.Close()
		if err != nil {
			return nil, "", err
		}
		if field.M() != m || field.K() != model.K() {
			return nil, "", fmt.Errorf("scenario: field spec is %dx%d, want %dx%d",
				field.M(), field.K(), m, model.K())
		}
		return field, fmt.Sprintf("field spec %s", c.FieldPath), nil
	}
	field, err := ProbeField(model, m, c.X0, c.TargetX, c.Eps, c.Lambda, c.Tau)
	if err != nil {
		return nil, "", err
	}
	return field, fmt.Sprintf("the x=%.2f regime (eps %.2f)", c.TargetX, c.Eps), nil
}

// NewCloud wires the full cloud/aggregator stack — model, desired field,
// FDS controller, coordinator — and applies the round deadline, rewind
// window, logger, observer, and durable state directory. This is the one
// construction path every entry point (cpnode, loadgen, cmd/scenario, the
// agent simulation) shares. The returned description names the field
// source.
func (c *NodeConfig) NewCloud() (*cloud.Server, string, error) {
	model, err := c.BuildModel()
	if err != nil {
		return nil, "", err
	}
	field, what, err := c.ResolveField(model)
	if err != nil {
		return nil, "", err
	}
	fds, err := policy.NewFDS(model, field, c.Lambda)
	if err != nil {
		return nil, "", err
	}
	if c.Obs != nil {
		fds.Instrument(c.Obs)
	}
	srv, err := cloud.NewServer(fds, game.NewUniformState(model.M(), model.K(), c.X0))
	if err != nil {
		return nil, "", err
	}
	if c.Obs != nil {
		srv.Instrument(c.Obs)
	}
	srv.SetRoundDeadline(c.RoundDeadline)
	srv.SetFixedLag(c.FixedLag) // before Open: recovery rebuilds the rewind window
	if c.Logf != nil {
		srv.SetLogf(c.Logf)
	}
	if c.StateDir != "" {
		if err := srv.Open(c.StateDir); err != nil {
			srv.Close()
			return nil, "", err
		}
	}
	return srv, what, nil
}

// ParseGossipPeers parses an edge's "region=addr" gossip peer list
// ("1=127.0.0.1:7301,3=127.0.0.1:7303") into a map. The list names the
// *other* members of the edge's neighborhood; the edge itself is implied.
func ParseGossipPeers(s string) (map[int]string, error) {
	peers := map[int]string{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idStr, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("scenario: gossip peer %q: want region=addr", part)
		}
		id, err := strconv.Atoi(strings.TrimSpace(idStr))
		if err != nil {
			return nil, fmt.Errorf("scenario: gossip peer %q: bad region: %v", part, err)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("scenario: gossip peer %d listed twice", id)
		}
		if strings.TrimSpace(addr) == "" {
			return nil, fmt.Errorf("scenario: gossip peer %d has an empty address", id)
		}
		peers[id] = strings.TrimSpace(addr)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("scenario: gossip peer list %q names no peers", s)
	}
	return peers, nil
}

// NewGossipFold builds an edge's local fold core from the same model and
// desired field the cloud resolves, so both tiers fold one policy. The FDS
// is deliberately left uninstrumented: the gossip node's own gossip_*
// metrics cover the data plane, and per-edge FDS instruments would collide
// with the control plane's.
func (c *NodeConfig) NewGossipFold() (*cloud.Fold, string, error) {
	model, err := c.BuildModel()
	if err != nil {
		return nil, "", err
	}
	field, what, err := c.ResolveField(model)
	if err != nil {
		return nil, "", err
	}
	fds, err := policy.NewFDS(model, field, c.Lambda)
	if err != nil {
		return nil, "", err
	}
	fold, err := cloud.NewFold(fds, game.NewUniformState(model.M(), model.K(), c.X0))
	if err != nil {
		return nil, "", err
	}
	return fold, what, nil
}

// NewGossipNode wires one edge's gossip consensus participant: the local
// fold over the cloud's model and desired field, the neighborhood
// membership, and the peer/cloud dialers. members must include the edge
// itself. With a StateDir the node's journal is opened before returning, so
// a restarted edge resumes its fold and escalation backlog. The returned
// description names the field source.
func (c *NodeConfig) NewGossipNode(members []int, peerDial func(int) (transport.Conn, error), cloudDial func() (transport.Conn, error)) (*gossip.Node, string, error) {
	fold, what, err := c.NewGossipFold()
	if err != nil {
		return nil, "", err
	}
	node, err := gossip.NewNode(gossip.Config{
		Edge:          c.ID,
		Members:       members,
		Neighborhood:  c.GossipHood,
		Of:            c.GossipOf,
		EscalateEvery: c.GossipEvery,
		Deadline:      c.GossipDeadline,
		FailoverTTL:   c.GossipFailoverTTL,
		MaxBacklog:    c.GossipMaxBacklog,
		ReplyTimeout:  30 * time.Second,
		Fold:          fold,
		PeerDial:      peerDial,
		CloudDial:     cloudDial,
		Logf:          c.Logf,
	})
	if err != nil {
		return nil, "", err
	}
	if c.Obs != nil {
		node.Instrument(c.Obs)
	}
	if c.StateDir != "" {
		if err := node.Open(c.StateDir); err != nil {
			node.Close()
			return nil, "", err
		}
	}
	return node, what, nil
}

// GossipMembers resolves an edge's neighborhood member list from its parsed
// peer map (the other members) plus the edge itself, sorted.
func GossipMembers(edgeID int, peers map[int]string) []int {
	members := make([]int, 0, len(peers)+1)
	members = append(members, edgeID)
	for id := range peers {
		members = append(members, id)
	}
	sort.Ints(members)
	return members
}

// ShardTable builds the rendezvous ring over shards members and its
// region-ownership table.
func ShardTable(shards, regions int) (*shard.Table, error) {
	ring, err := shard.NewRing(shard.Names(shards))
	if err != nil {
		return nil, err
	}
	return shard.BuildTable(ring, regions)
}

// ShardRoute resolves the address an edge reports to. Unsharded (shards <=
// 1) it is the cloud address verbatim; sharded, cloudAddr lists every shard
// coordinator's address in ring order and the edge's region owner picks
// one.
func ShardRoute(cloudAddr string, shards, regions, edgeID int) (string, error) {
	addrs := strings.Split(cloudAddr, ",")
	if shards <= 1 {
		return addrs[0], nil
	}
	if len(addrs) != shards {
		return "", fmt.Errorf("scenario: cloud lists %d addresses, want one per shard (%d)", len(addrs), shards)
	}
	table, err := ShardTable(shards, regions)
	if err != nil {
		return "", err
	}
	owner, err := table.Owner(edgeID)
	if err != nil {
		return "", fmt.Errorf("scenario: routing edge %d: %w (is regions right?)", edgeID, err)
	}
	return strings.TrimSpace(addrs[owner]), nil
}

// NewShard wires one shard coordinator: the rendezvous ring assigns its
// region group, the upstream BatchLink dials the aggregation tier through
// dial (nil defaults to a TCP dial of AggregatorAddr with the node's codec
// and fault profile), and the durable state directory is opened when set.
// Close the returned link after the coordinator.
func (c *NodeConfig) NewShard(dial func() (transport.Conn, error)) (*shard.Coordinator, *edge.BatchLink, error) {
	table, err := ShardTable(c.Shards, c.Regions)
	if err != nil {
		return nil, nil, err
	}
	owned := table.Regions(c.ShardID)
	if len(owned) == 0 {
		return nil, nil, fmt.Errorf("scenario: shard %d owns no regions in a %d-region/%d-shard ring (add regions or drop shards)",
			c.ShardID, c.Regions, c.Shards)
	}
	if dial == nil {
		dial = c.DialFunc(c.AggregatorAddr, transport.WithTimeout(time.Minute))
	}
	upstream := &edge.BatchLink{
		Shard: c.ShardID,
		Dialer: &transport.Dialer{
			Dial:        dial,
			MaxAttempts: c.RetryMax,
			Seed:        c.Seed,
		},
		ReplyTimeout: 30 * time.Second,
		Obs:          c.Obs,
	}
	coord, err := shard.NewCoordinator(shard.Config{
		ID:       c.ShardID,
		Regions:  owned,
		K:        lattice.NewPaper().K(),
		Deadline: c.ShardDeadline,
		Upstream: upstream,
		Logf:     c.Logf,
	})
	if err != nil {
		upstream.Close()
		return nil, nil, err
	}
	if c.Obs != nil {
		coord.Instrument(c.Obs)
	}
	if c.StateDir != "" {
		if err := coord.Open(c.StateDir); err != nil {
			coord.Close()
			upstream.Close()
			return nil, nil, err
		}
	}
	return coord, upstream, nil
}

// NewEdge builds the edge server over the paper lattice.
func (c *NodeConfig) NewEdge() *edge.Server {
	srv := edge.NewServer(c.ID, lattice.NewPaper(), c.Seed)
	if c.Obs != nil {
		srv.Instrument(c.Obs)
	}
	return srv
}

// NewCloudLink builds the edge's census link, dialing through dial (nil
// defaults to a TCP dial of the edge's routed cloud address).
func (c *NodeConfig) NewCloudLink(dial func() (transport.Conn, error)) (*edge.CloudLink, error) {
	if dial == nil {
		addr, err := ShardRoute(c.CloudAddr, c.Shards, c.Regions, c.ID)
		if err != nil {
			return nil, err
		}
		dial = c.DialFunc(addr, transport.WithTimeout(time.Minute))
	}
	return &edge.CloudLink{
		Edge: c.ID,
		Dialer: &transport.Dialer{
			Dial:        dial,
			MaxAttempts: c.RetryMax,
			Seed:        c.Seed,
		},
		ReplyTimeout: 30 * time.Second,
		Obs:          c.Obs,
	}, nil
}

// NewHeartbeat builds the edge's membership heartbeat on its own
// connection (the census link's request/reply exchange would race with the
// lease acks). Nil dial defaults to a TCP dial of the routed cloud
// address.
func (c *NodeConfig) NewHeartbeat(dial func() (transport.Conn, error)) (*edge.Heartbeat, error) {
	if dial == nil {
		addr, err := ShardRoute(c.CloudAddr, c.Shards, c.Regions, c.ID)
		if err != nil {
			return nil, err
		}
		dial = c.DialFunc(addr)
	}
	return &edge.Heartbeat{
		Edge: c.ID,
		Dialer: &transport.Dialer{
			Dial:        dial,
			MaxAttempts: c.RetryMax,
			Seed:        c.Seed + 1,
		},
		TTL: c.LeaseTTL,
		Obs: c.Obs,
	}, nil
}

// FleetSpec describes one homogeneous vehicle cohort wired by NewFleet.
type FleetSpec struct {
	N      int
	IDBase int
	// Equipped and Desired are the cohort's sensor masks (zero = all).
	Equipped, Desired sensor.Mask
	// Beta, Tau parameterize the agents' utility and choice temperature;
	// Mu is the per-round revision probability.
	Beta, Tau, Mu float64
	// PrivacyWeightStd spreads the per-vehicle privacy weight around 1
	// (clipped at 0).
	PrivacyWeightStd float64
	// Seed drives the per-vehicle seed derivation: every vehicle's RNG is
	// a splitmix of Seed and its ID, so fleet construction order never
	// changes an agent's behavior.
	Seed int64
	// RegisterTimeout bounds each client's registration ack wait.
	RegisterTimeout time.Duration
	// Stop, when non-nil and closed, ends RunWithReconnect sessions.
	Stop <-chan struct{}
}

// FleetVehicle pairs one built agent with its client.
type FleetVehicle struct {
	Agent  *vehicle.Agent
	Client *vehicle.Client
}

// splitmix64 is the SplitMix64 finalizer, used to derive independent
// per-vehicle seeds from (fleet seed, vehicle id).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// vehicleSeed derives a vehicle's private seed.
func vehicleSeed(fleetSeed int64, id int) int64 {
	return int64(splitmix64(uint64(fleetSeed)*0x9e3779b97f4a7c15 + uint64(id)))
}

// NewFleet builds fs.N vehicle agents and clients over payoffs. Each
// vehicle's RNG seed and privacy weight derive from (fs.Seed, vehicle id)
// alone, so two runs of the same spec produce identical fleets regardless
// of construction interleaving.
func (c *NodeConfig) NewFleet(fs FleetSpec) ([]*FleetVehicle, error) {
	payoffs := lattice.PaperPayoffs()
	if fs.Equipped == 0 {
		fs.Equipped = sensor.MaskAll
	}
	if fs.Desired == 0 {
		fs.Desired = sensor.MaskAll
	}
	if fs.Beta == 0 {
		fs.Beta = c.Beta
	}
	if fs.Tau == 0 {
		fs.Tau = DemoTau
	}
	if fs.Mu == 0 {
		fs.Mu = 0.5
	}
	out := make([]*FleetVehicle, 0, fs.N)
	for v := 0; v < fs.N; v++ {
		id := fs.IDBase + v
		seed := vehicleSeed(fs.Seed, id)
		weight := 1.0
		if fs.PrivacyWeightStd > 0 {
			// A cheap deterministic spread in [1-std, 1+std]: enough
			// heterogeneity for the cohort knob without coupling the fleet
			// to a shared normal stream.
			u := float64(splitmix64(uint64(seed))%(1<<20))/float64(1<<20)*2 - 1
			weight = 1 + u*fs.PrivacyWeightStd
			if weight < 0 {
				weight = 0
			}
		}
		prof := vehicle.Profile{
			ID:            id,
			Equipped:      fs.Equipped,
			Desired:       fs.Desired,
			PrivacyWeight: weight,
			Beta:          fs.Beta,
			Tau:           fs.Tau,
		}
		agent, err := vehicle.NewAgent(prof, payoffs, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, &FleetVehicle{
			Agent: agent,
			Client: &vehicle.Client{
				Agent:           agent,
				Mu:              fs.Mu,
				Cap:             sensor.TableIII(),
				RegisterTimeout: fs.RegisterTimeout,
				Stop:            fs.Stop,
				Obs:             c.Obs,
			},
		})
	}
	return out, nil
}

// TCPOptions returns the transport options every TCP endpoint this node
// opens shares: listeners pass them to accepted conns, dialed conns
// declare the codec.
func (c *NodeConfig) TCPOptions(extra ...transport.TCPOption) ([]transport.TCPOption, error) {
	var opts []transport.TCPOption
	if c.Codec != "" {
		codec, err := transport.CodecByName(c.Codec)
		if err != nil {
			return nil, err
		}
		opts = append(opts, transport.WithCodec(codec))
	}
	if c.IOTimeout > 0 {
		opts = append(opts, transport.WithTimeout(c.IOTimeout))
	}
	return append(opts, extra...), nil
}

// NewFaultInjector builds the node's fault injector from its profile (nil
// when no faults are configured), instrumented on the node's observer.
func (c *NodeConfig) NewFaultInjector() *transport.Fault {
	if c.Fault == nil {
		return nil
	}
	fc := *c.Fault
	if fc.Seed == 0 {
		fc.Seed = c.Seed
	}
	fault := transport.NewFault(fc)
	if c.Obs != nil {
		fault.Instrument(c.Obs)
	}
	return fault
}

// DialFunc returns a dial closure for addr carrying the node's codec,
// timeout, and fault profile.
func (c *NodeConfig) DialFunc(addr string, extra ...transport.TCPOption) func() (transport.Conn, error) {
	fault := c.NewFaultInjector()
	return func() (transport.Conn, error) {
		opts, err := c.TCPOptions(extra...)
		if err != nil {
			return nil, err
		}
		conn, err := transport.DialTCP(addr, opts...)
		if err != nil {
			return nil, err
		}
		if fault != nil {
			conn = fault.WrapConn(conn)
		}
		return conn, nil
	}
}

// Listener opens the node's TCP listener, wrapped in its fault injector.
func (c *NodeConfig) Listener() (transport.Listener, error) {
	opts, err := c.TCPOptions()
	if err != nil {
		return nil, err
	}
	l, err := transport.ListenTCP(c.Listen, opts...)
	if err != nil {
		return nil, err
	}
	if fault := c.NewFaultInjector(); fault != nil {
		l = fault.WrapListener(l)
	}
	return l, nil
}
