package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
)

// TestNewRejectsForeignOptions: an option applied to a role that does not
// consume it is a construction error naming the option and the roles that
// do — the typed replacement for cpnode's silently ignored flags.
func TestNewRejectsForeignOptions(t *testing.T) {
	cases := []struct {
		name      string
		role      Role
		opt       Option
		wantRoles string
	}{
		{"fixed-lag on edge", RoleEdge, FixedLag(8), "aggregator, cloud"},
		{"rounds on cloud", RoleCloud, Rounds(10), "edge"},
		{"listen on vehicles", RoleVehicles, Listen("127.0.0.1:0"), "cloud"},
		{"edge addr on cloud", RoleCloud, EdgeAddr("127.0.0.1:7100"), "vehicles"},
		{"x0 on shard", RoleShard, X0(0.5), "aggregator, cloud"},
		{"shard-id on aggregator", RoleAggregator, ShardID(1), "shard"},
		{"state-dir on vehicles", RoleVehicles, StateDir("/tmp/x"), "shard"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.role, tc.opt)
			if err == nil {
				t.Fatalf("role %s accepted option %q", tc.role, tc.opt.Name())
			}
			msg := err.Error()
			if !strings.Contains(msg, tc.opt.Name()) {
				t.Errorf("error %v does not name the option %q", err, tc.opt.Name())
			}
			if !strings.Contains(msg, tc.wantRoles) {
				t.Errorf("error %v does not list the applicable roles (%s)", err, tc.wantRoles)
			}
		})
	}
}

func TestNewUnknownRole(t *testing.T) {
	if _, err := New(Role("satellite")); err == nil {
		t.Error("unknown role accepted")
	}
}

func TestNewAppliesOptions(t *testing.T) {
	nc, err := New(RoleCloud,
		Regions(4),
		X0(0.5),
		FixedLag(8),
		RoundDeadline(150*time.Millisecond),
		Codec("binary"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if nc.Regions != 4 || nc.X0 != 0.5 || nc.FixedLag != 8 ||
		nc.RoundDeadline != 150*time.Millisecond || nc.Codec != "binary" {
		t.Errorf("options not applied: %+v", nc)
	}
	// Untouched knobs keep the role defaults.
	if nc.Lambda != 0.1 || nc.TargetX != 0.85 {
		t.Errorf("defaults clobbered: lambda=%v target-x=%v", nc.Lambda, nc.TargetX)
	}
}

// TestDefaultsValidForEveryRole: New(role) with the role's minimum options
// must succeed — the former cpnode flag defaults are a runnable
// configuration. Only shard has a required knob (the ring size has no sane
// default).
func TestDefaultsValidForEveryRole(t *testing.T) {
	minimum := map[Role][]Option{
		RoleShard: {Shards(1)},
	}
	for _, role := range Roles() {
		if _, err := New(role, minimum[role]...); err != nil {
			t.Errorf("New(%s): %v", role, err)
		}
	}
}

func TestValidateCrossFieldErrors(t *testing.T) {
	cases := []struct {
		name string
		role Role
		opts []Option
		want string
	}{
		{"bad codec", RoleCloud, []Option{Codec("xml")}, "codec"},
		{"shard id outside ring", RoleShard, []Option{Shards(4), ShardID(5)}, "outside the ring"},
		{"zero shards", RoleShard, []Option{Shards(0)}, "shards >= 1"},
		{"zero rounds", RoleEdge, []Option{Rounds(0)}, "rounds >= 1"},
		{"empty fleet", RoleVehicles, []Option{FleetSize(0)}, "n >= 1"},
		{"negative fixed lag", RoleCloud, []Option{FixedLag(-1)}, "fixed-lag"},
		{"field and field-path", RoleCloud, []Option{FieldPath("f.json"), WithField(mustBandField(t, 2))}, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.role, tc.opts...)
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func mustBandField(t *testing.T, m int) *policy.Field {
	t.Helper()
	f, err := P1BandField(m, 8, 0.7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGraphByName(t *testing.T) {
	for _, name := range []string{"demo", "cycle"} {
		g, err := GraphByName(name, 3)
		if err != nil {
			t.Fatalf("GraphByName(%s): %v", name, err)
		}
		if g.M() != 3 {
			t.Errorf("graph %s M = %d, want 3", name, g.M())
		}
	}
	if _, err := GraphByName("torus", 3); err == nil {
		t.Error("unknown graph name accepted")
	}
}

// TestBuildCloudFromConfig: the shared constructor wires a working cloud —
// the same path cpnode, loadgen, the agent sim, and the runner all use.
func TestBuildCloudFromConfig(t *testing.T) {
	nc, err := New(RoleCloud, Regions(2), RoundDeadline(0))
	if err != nil {
		t.Fatal(err)
	}
	srv, desc, err := nc.NewCloud()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if desc == "" {
		t.Error("empty field description")
	}
	if srv.Latest() != -1 {
		t.Errorf("fresh cloud Latest = %d, want -1", srv.Latest())
	}
}
