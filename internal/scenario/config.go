// Package scenario is the declarative workload layer over the consensus
// tier: a typed node-configuration API shared by every entry point
// (cmd/cpnode, cmd/loadgen, cmd/scenario, examples, the agent simulation),
// a versioned YAML/JSON scenario spec, and a runner that compiles a spec
// into a wired tier, executes it, and emits a machine-readable verdict.
//
// The configuration API replaces the loose per-binary flag plumbing: a
// NodeConfig is built from functional options, each of which declares the
// roles it applies to, so an option set on a role that ignores it is a
// construction error instead of a silently dead knob. All tier
// constructors (game model, desired field, FDS, cloud server, shard
// coordinator, vehicle fleets) live behind NodeConfig methods, so no
// component is wired from two different flag-parsing paths.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/game"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/transport"
)

// Role names one node of the consensus tier.
type Role string

// The five cpnode roles. An aggregator is a cloud that additionally
// answers shard census batches; the distinction matters only for flag
// validation and documentation.
const (
	RoleCloud      Role = "cloud"
	RoleAggregator Role = "aggregator"
	RoleShard      Role = "shard"
	RoleEdge       Role = "edge"
	RoleVehicles   Role = "vehicles"
)

// Roles lists every valid role in display order.
func Roles() []Role {
	return []Role{RoleCloud, RoleAggregator, RoleShard, RoleEdge, RoleVehicles}
}

// NodeConfig is the typed configuration for one node of the tier. Build one
// with New (which validates option/role combinations) or fill it directly
// for programmatic callers, then use the constructor methods in build.go.
type NodeConfig struct {
	Role Role

	// Common runtime knobs.
	Listen    string // listen address (cloud, aggregator, shard, edge)
	Seed      int64
	Codec     string        // wire codec dialed links declare ("" = codec default json)
	IOTimeout time.Duration // per-op read/write deadline on TCP conns
	RetryMax  int           // max dial attempts per reconnect burst
	Fault     *transport.FaultConfig
	Obs       *obs.Observer
	Logf      func(format string, args ...interface{})

	// Cloud / aggregator.
	Regions       int
	X0            float64
	TargetX       float64
	Eps           float64
	Beta          float64
	Lambda        float64
	Tau           float64
	FieldPath     string        // declarative field JSON (overrides TargetX probe)
	Field         *policy.Field // programmatic field (overrides FieldPath)
	Model         *game.Model   // programmatic model (overrides Graph/Beta)
	Graph         game.Graph    // region graph (nil = DemoGraph(Regions))
	RoundDeadline time.Duration
	FixedLag      int
	StateDir      string

	// Shard.
	Shards         int
	ShardID        int
	AggregatorAddr string
	ShardDeadline  time.Duration

	// Edge.
	ID        int
	CloudAddr string
	Rounds    int
	Vehicles  int // registrations to wait for before starting rounds
	LeaseTTL  time.Duration

	// Edge gossip data plane (internal/gossip). A non-empty GossipPeers
	// switches the edge from direct census reports to local gossip rounds;
	// the cloud knobs above (X0, TargetX, Eps, Lambda, Beta, Graph, Field)
	// then parameterize the edge's local fold, which must resolve the same
	// policy the cloud runs.
	GossipPeers    string        // comma-separated "region=addr" peer list
	GossipListen   string        // gossip listener address
	GossipHood     int           // this neighborhood's index, 0 <= GossipHood < GossipOf
	GossipOf       int           // total neighborhoods reporting to the cloud
	GossipEvery    int           // leader escalates a digest every K-th local round
	GossipDeadline time.Duration // local round barrier deadline (0 = wait forever)
	// GossipFailoverTTL enables leader failover: heartbeat lease, ring
	// successor promotion, mirrored-backlog drain (0 = static leadership).
	GossipFailoverTTL time.Duration
	// GossipMaxBacklog caps the mirrored escalation backlog; the oldest
	// unacked rounds are shed past it (0 = unbounded).
	GossipMaxBacklog int

	// Vehicles.
	EdgeAddr string
	N        int
	IDBase   int
}

// Option is one typed configuration knob. Every option declares the roles
// that consume it; New rejects an option applied to any other role, so a
// cpnode invocation like "-role edge -fixed-lag 8" fails loudly instead of
// silently ignoring the flag.
type Option struct {
	name  string
	roles []Role
	apply func(*NodeConfig)
}

// Name returns the option's display name (the cpnode flag name).
func (o Option) Name() string { return o.name }

func mkOpt(name string, apply func(*NodeConfig), roles ...Role) Option {
	return Option{name: name, roles: roles, apply: apply}
}

var allRoles = []Role{RoleCloud, RoleAggregator, RoleShard, RoleEdge, RoleVehicles}

// tierRoles are the two roles that run the global fold.
var tierRoles = []Role{RoleCloud, RoleAggregator}

// foldRoles additionally include gossip edges, which resolve the same
// model/field/FDS locally so the edge data plane folds the policy the cloud
// control plane reconciles.
var foldRoles = []Role{RoleCloud, RoleAggregator, RoleEdge}

// Listen sets the listen address (cloud, aggregator, shard, edge).
func Listen(addr string) Option {
	return mkOpt("listen", func(c *NodeConfig) { c.Listen = addr },
		RoleCloud, RoleAggregator, RoleShard, RoleEdge)
}

// Seed sets the node's random seed (all roles).
func Seed(seed int64) Option {
	return mkOpt("seed", func(c *NodeConfig) { c.Seed = seed }, allRoles...)
}

// Codec names the wire codec dialed TCP links declare (all roles).
func Codec(name string) Option {
	return mkOpt("codec", func(c *NodeConfig) { c.Codec = name }, allRoles...)
}

// IOTimeout sets the per-operation read/write deadline on every TCP conn
// (all roles).
func IOTimeout(d time.Duration) Option {
	return mkOpt("io-timeout", func(c *NodeConfig) { c.IOTimeout = d }, allRoles...)
}

// RetryMax bounds dial attempts per reconnect burst (shard, edge, vehicles).
func RetryMax(n int) Option {
	return mkOpt("retry-max", func(c *NodeConfig) { c.RetryMax = n },
		RoleShard, RoleEdge, RoleVehicles)
}

// WithFault installs a fault-injection profile on the node's links (all
// roles).
func WithFault(fc *transport.FaultConfig) Option {
	return mkOpt("fault", func(c *NodeConfig) { c.Fault = fc }, allRoles...)
}

// WithObs routes the node's metrics through a shared observer (all roles).
func WithObs(o *obs.Observer) Option {
	return mkOpt("obs", func(c *NodeConfig) { c.Obs = o }, allRoles...)
}

// WithLogf installs a progress/failure logger (all roles).
func WithLogf(logf func(string, ...interface{})) Option {
	return mkOpt("logf", func(c *NodeConfig) { c.Logf = logf }, allRoles...)
}

// Regions sets the number of consensus regions (cloud, aggregator, shard;
// edges need it to route through the shard ring).
func Regions(m int) Option {
	return mkOpt("regions", func(c *NodeConfig) { c.Regions = m },
		RoleCloud, RoleAggregator, RoleShard, RoleEdge)
}

// X0 sets the initial sharing ratio (cloud, aggregator, gossip edges).
func X0(x float64) Option {
	return mkOpt("x0", func(c *NodeConfig) { c.X0 = x }, foldRoles...)
}

// TargetX sets the desired sharing regime the probe field is derived from
// (cloud, aggregator, gossip edges).
func TargetX(x float64) Option {
	return mkOpt("target-x", func(c *NodeConfig) { c.TargetX = x }, foldRoles...)
}

// Eps sets the desired-field tolerance band (cloud, aggregator, gossip
// edges).
func Eps(e float64) Option {
	return mkOpt("eps", func(c *NodeConfig) { c.Eps = e }, foldRoles...)
}

// Beta sets the utility coefficient (cloud, aggregator, vehicles, gossip
// edges).
func Beta(b float64) Option {
	return mkOpt("beta", func(c *NodeConfig) { c.Beta = b },
		RoleCloud, RoleAggregator, RoleVehicles, RoleEdge)
}

// Lambda sets the FDS ratio step limit (cloud, aggregator, gossip edges).
func Lambda(l float64) Option {
	return mkOpt("lambda", func(c *NodeConfig) { c.Lambda = l }, foldRoles...)
}

// Tau sets the choice temperature of the mean-field probe (cloud,
// aggregator, gossip edges).
func Tau(t float64) Option {
	return mkOpt("tau", func(c *NodeConfig) { c.Tau = t }, foldRoles...)
}

// FieldPath points at a declarative desired-field JSON spec (cloud,
// aggregator, gossip edges; overrides the TargetX probe).
func FieldPath(path string) Option {
	return mkOpt("field", func(c *NodeConfig) { c.FieldPath = path }, foldRoles...)
}

// WithField installs a prebuilt desired field (cloud, aggregator, gossip
// edges; programmatic callers).
func WithField(f *policy.Field) Option {
	return mkOpt("field-value", func(c *NodeConfig) { c.Field = f }, foldRoles...)
}

// WithModel installs a prebuilt game model (cloud, aggregator, gossip
// edges; programmatic callers — overrides Graph/Beta/Regions).
func WithModel(m *game.Model) Option {
	return mkOpt("model", func(c *NodeConfig) { c.Model = m }, foldRoles...)
}

// WithGraph installs the region coupling graph (cloud, aggregator, gossip
// edges; nil defaults to the dense demo graph).
func WithGraph(g game.Graph) Option {
	return mkOpt("graph", func(c *NodeConfig) { c.Graph = g }, foldRoles...)
}

// RoundDeadline bounds the cloud's round barrier (cloud, aggregator).
func RoundDeadline(d time.Duration) Option {
	return mkOpt("round-deadline", func(c *NodeConfig) { c.RoundDeadline = d }, tierRoles...)
}

// FixedLag sets the cloud's rewind window in rounds (cloud, aggregator).
func FixedLag(n int) Option {
	return mkOpt("fixed-lag", func(c *NodeConfig) { c.FixedLag = n }, tierRoles...)
}

// StateDir enables durable state (cloud, aggregator, shard, gossip edges'
// round journal).
func StateDir(dir string) Option {
	return mkOpt("state-dir", func(c *NodeConfig) { c.StateDir = dir },
		RoleCloud, RoleAggregator, RoleShard, RoleEdge)
}

// Shards sets the shard-ring size (shard; edges need it to route their
// region's owner).
func Shards(n int) Option {
	return mkOpt("shards", func(c *NodeConfig) { c.Shards = n },
		RoleShard, RoleEdge)
}

// ShardID sets this coordinator's index into the ring (shard).
func ShardID(id int) Option {
	return mkOpt("shard-id", func(c *NodeConfig) { c.ShardID = id }, RoleShard)
}

// AggregatorAddr points a shard at the aggregation tier (shard).
func AggregatorAddr(addr string) Option {
	return mkOpt("aggregator", func(c *NodeConfig) { c.AggregatorAddr = addr }, RoleShard)
}

// ShardDeadline bounds the shard's local round barrier (shard).
func ShardDeadline(d time.Duration) Option {
	return mkOpt("shard-deadline", func(c *NodeConfig) { c.ShardDeadline = d }, RoleShard)
}

// EdgeID sets the edge/region id (edge).
func EdgeID(id int) Option {
	return mkOpt("id", func(c *NodeConfig) { c.ID = id }, RoleEdge)
}

// CloudAddr points an edge at the cloud (or, sharded, at the comma-
// separated shard address list) (edge).
func CloudAddr(addr string) Option {
	return mkOpt("cloud", func(c *NodeConfig) { c.CloudAddr = addr }, RoleEdge)
}

// Rounds bounds the edge's round loop (edge).
func Rounds(n int) Option {
	return mkOpt("rounds", func(c *NodeConfig) { c.Rounds = n }, RoleEdge)
}

// WaitVehicles sets how many registrations an edge waits for before
// starting rounds (edge).
func WaitVehicles(n int) Option {
	return mkOpt("vehicles", func(c *NodeConfig) { c.Vehicles = n }, RoleEdge)
}

// LeaseTTL enables the edge's membership heartbeat (edge).
func LeaseTTL(d time.Duration) Option {
	return mkOpt("lease-ttl", func(c *NodeConfig) { c.LeaseTTL = d }, RoleEdge)
}

// GossipPeers switches the edge into the gossip data plane: the comma-
// separated "region=addr" list of every other member of its neighborhood
// (edge).
func GossipPeers(peers string) Option {
	return mkOpt("gossip-peers", func(c *NodeConfig) { c.GossipPeers = peers }, RoleEdge)
}

// GossipListen sets the edge's gossip listener address (edge).
func GossipListen(addr string) Option {
	return mkOpt("gossip-listen", func(c *NodeConfig) { c.GossipListen = addr }, RoleEdge)
}

// GossipHood sets the edge's neighborhood index (edge).
func GossipHood(h int) Option {
	return mkOpt("gossip-hood", func(c *NodeConfig) { c.GossipHood = h }, RoleEdge)
}

// GossipOf sets how many neighborhoods report to the cloud (edge).
func GossipOf(n int) Option {
	return mkOpt("gossip-of", func(c *NodeConfig) { c.GossipOf = n }, RoleEdge)
}

// GossipEvery sets K: the neighborhood leader escalates a digest to the
// cloud after every K-th completed local round (edge).
func GossipEvery(k int) Option {
	return mkOpt("gossip-every", func(c *NodeConfig) { c.GossipEvery = k }, RoleEdge)
}

// GossipDeadline bounds each local gossip round barrier; a round missing
// members past the deadline completes degraded (edge).
func GossipDeadline(d time.Duration) Option {
	return mkOpt("gossip-deadline", func(c *NodeConfig) { c.GossipDeadline = d }, RoleEdge)
}

// GossipFailoverTTL enables neighborhood leader failover: members track the
// leader's heartbeat lease and promote the ring successor when it lapses
// (edge; 0 keeps leadership static).
func GossipFailoverTTL(d time.Duration) Option {
	return mkOpt("gossip-failover-ttl", func(c *NodeConfig) { c.GossipFailoverTTL = d }, RoleEdge)
}

// GossipMaxBacklog caps the mirrored escalation backlog, shedding the oldest
// unacked rounds past it (edge; 0 is unbounded).
func GossipMaxBacklog(n int) Option {
	return mkOpt("gossip-max-backlog", func(c *NodeConfig) { c.GossipMaxBacklog = n }, RoleEdge)
}

// EdgeAddr points a vehicle fleet at its edge server (vehicles).
func EdgeAddr(addr string) Option {
	return mkOpt("edge", func(c *NodeConfig) { c.EdgeAddr = addr }, RoleVehicles)
}

// FleetSize sets the fleet size (vehicles).
func FleetSize(n int) Option {
	return mkOpt("n", func(c *NodeConfig) { c.N = n }, RoleVehicles)
}

// IDBase sets the first vehicle id (vehicles).
func IDBase(id int) Option {
	return mkOpt("id-base", func(c *NodeConfig) { c.IDBase = id }, RoleVehicles)
}

// rolesString renders a role list for error messages.
func rolesString(roles []Role) string {
	out := make([]string, len(roles))
	for i, r := range roles {
		out[i] = string(r)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

// New builds a NodeConfig for role from defaults plus the given options.
// An option whose declared roles do not include role is rejected with an
// error naming the option and the roles that do consume it — the typed
// replacement for cpnode's silently ignored flag combinations.
func New(role Role, opts ...Option) (*NodeConfig, error) {
	valid := false
	for _, r := range allRoles {
		if r == role {
			valid = true
			break
		}
	}
	if !valid {
		return nil, fmt.Errorf("scenario: unknown role %q (want cloud, aggregator, shard, edge, or vehicles)", role)
	}
	cfg := Defaults(role)
	for _, opt := range opts {
		ok := false
		for _, r := range opt.roles {
			if r == role {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("scenario: option %q is not used by role %q (applies to: %s)",
				opt.name, role, rolesString(opt.roles))
		}
		opt.apply(cfg)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Defaults returns the role's default configuration (the former cpnode
// flag defaults).
func Defaults(role Role) *NodeConfig {
	return &NodeConfig{
		Role:           role,
		Listen:         "127.0.0.1:0",
		Seed:           1,
		RetryMax:       8,
		Regions:        2,
		X0:             0.3,
		TargetX:        0.85,
		Eps:            0.05,
		Beta:           4.0,
		Lambda:         0.1,
		Tau:            DemoTau,
		RoundDeadline:  10 * time.Second,
		ShardDeadline:  5 * time.Second,
		CloudAddr:      "127.0.0.1:7000",
		AggregatorAddr: "127.0.0.1:7000",
		EdgeAddr:       "127.0.0.1:7100",
		GossipListen:   "127.0.0.1:0",
		GossipOf:       1,
		GossipEvery:    1,
		Rounds:         40,
		Vehicles:       20,
		N:              20,
		IDBase:         100,
	}
}

// Validate checks cross-field consistency for the configured role.
func (c *NodeConfig) Validate() error {
	if c.Codec != "" {
		if _, err := transport.CodecByName(c.Codec); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	switch c.Role {
	case RoleCloud, RoleAggregator:
		if c.Model == nil && c.Regions <= 0 {
			return fmt.Errorf("scenario: role %s needs regions >= 1, got %d", c.Role, c.Regions)
		}
		if c.FixedLag < 0 {
			return fmt.Errorf("scenario: fixed-lag must be >= 0, got %d", c.FixedLag)
		}
		if c.Field != nil && c.FieldPath != "" {
			return fmt.Errorf("scenario: field-value and field are mutually exclusive")
		}
	case RoleShard:
		if c.Shards <= 0 {
			return fmt.Errorf("scenario: role shard needs shards >= 1, got %d", c.Shards)
		}
		if c.ShardID < 0 || c.ShardID >= c.Shards {
			return fmt.Errorf("scenario: shard-id %d outside the ring of %d shards", c.ShardID, c.Shards)
		}
		if c.Regions <= 0 {
			return fmt.Errorf("scenario: role shard needs regions >= 1, got %d", c.Regions)
		}
	case RoleEdge:
		if c.Rounds <= 0 {
			return fmt.Errorf("scenario: role edge needs rounds >= 1, got %d", c.Rounds)
		}
		if c.Vehicles < 0 {
			return fmt.Errorf("scenario: role edge needs vehicles >= 0, got %d", c.Vehicles)
		}
		if c.GossipPeers != "" {
			if _, err := ParseGossipPeers(c.GossipPeers); err != nil {
				return err
			}
			if c.GossipOf < 1 {
				return fmt.Errorf("scenario: gossip-of must be >= 1, got %d", c.GossipOf)
			}
			if c.GossipHood < 0 || c.GossipHood >= c.GossipOf {
				return fmt.Errorf("scenario: gossip-hood %d outside 0..%d", c.GossipHood, c.GossipOf-1)
			}
			if c.GossipEvery < 1 {
				return fmt.Errorf("scenario: gossip-every must be >= 1, got %d", c.GossipEvery)
			}
			if c.GossipDeadline < 0 {
				return fmt.Errorf("scenario: gossip-deadline must be >= 0")
			}
			if c.GossipFailoverTTL < 0 {
				return fmt.Errorf("scenario: gossip-failover-ttl must be >= 0")
			}
			if c.GossipMaxBacklog < 0 {
				return fmt.Errorf("scenario: gossip-max-backlog must be >= 0")
			}
			if c.Shards > 1 {
				return fmt.Errorf("scenario: gossip edges report digests straight to the cloud; shards > 1 is not supported")
			}
			if c.LeaseTTL != 0 {
				return fmt.Errorf("scenario: gossip edges do not heartbeat leases; neighborhood membership is static")
			}
		}
	case RoleVehicles:
		if c.N <= 0 {
			return fmt.Errorf("scenario: role vehicles needs n >= 1, got %d", c.N)
		}
	}
	return nil
}
