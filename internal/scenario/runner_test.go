package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

func loadSpec(t *testing.T, name string) *Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "scenarios", name))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestRunBaselineSpec: the checked-in baseline executes end to end and its
// verdict passes — the smallest full-stack exercise of the runner.
func TestRunBaselineSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full scenario run in -short mode")
	}
	spec := loadSpec(t, "baseline.yaml")
	v, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Errorf("baseline verdict failed: %+v", v.Checks)
	}
	if !v.Converged {
		t.Error("baseline did not converge")
	}
	if len(v.ConsensusStateHash) != 8 || v.ConsensusStateHash == "00000000" {
		t.Errorf("consensus_state_hash = %q, want a CRC-32C witness", v.ConsensusStateHash)
	}
	if v.Welfare.DeliveredItems == 0 {
		t.Error("no perception items delivered")
	}
}

// TestRunBaselineDeterministic: the same spec and seed fold to the same
// hash — the reproducibility contract behind hash-equality verdicts.
func TestRunBaselineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full scenario run in -short mode")
	}
	spec := loadSpec(t, "baseline.yaml")
	a, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(loadSpec(t, "baseline.yaml"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.ConsensusStateHash != b.ConsensusStateHash {
		t.Errorf("hash %s != %s across identical runs", a.ConsensusStateHash, b.ConsensusStateHash)
	}
}

// TestRunLossyHashEqualsLossless: under duplication and delay (no drops, no
// deadline) the fold is bit-identical to the lossless twin — the headline
// rewind/dedup property the lossy-network spec pins in CI.
func TestRunLossyHashEqualsLossless(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full scenario run in -short mode")
	}
	spec := loadSpec(t, "lossy-network.yaml")
	if !spec.Verdict.RequireHashEqual {
		t.Fatal("lossy-network.yaml no longer requires hash equality")
	}
	v, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Errorf("lossy-network verdict failed: %+v", v.Checks)
	}
	if v.Baseline == nil || !v.Baseline.HashEqual {
		t.Errorf("faulted hash %s != lossless twin %v", v.ConsensusStateHash, v.Baseline)
	}
	if v.FaultsInjected == 0 {
		t.Error("no faults injected — the lossy run is vacuous")
	}
}

// TestRunSeedOverride: RunOptions.Seed wins over the spec seed and is
// reported in the verdict.
func TestRunSeedOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full scenario run in -short mode")
	}
	spec := loadSpec(t, "baseline.yaml")
	seed := spec.Seed + 1000
	v, err := Run(spec, RunOptions{Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if v.Seed != seed {
		t.Errorf("verdict seed = %d, want override %d", v.Seed, seed)
	}
}
