package scenario

import (
	"testing"
	"time"
)

// TestRunCloudPartitionSpec: the checked-in cloud-partition scenario — six
// regions in two gossip neighborhoods, cloud unreachable for 35% of the run
// — passes its verdict: edges kept completing local rounds during the
// partition and the healed cloud fold is bit-identical to the
// always-connected lossless twin.
func TestRunCloudPartitionSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full scenario run in -short mode")
	}
	spec := loadSpec(t, "cloud-partition.yaml")
	if !spec.Verdict.RequireHashEqual {
		t.Fatal("cloud-partition.yaml no longer requires hash equality")
	}
	v, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Errorf("cloud-partition verdict failed: %+v", v.Checks)
	}
	if v.Baseline == nil || !v.Baseline.HashEqual {
		t.Errorf("partitioned hash %s != lossless twin %v", v.ConsensusStateHash, v.Baseline)
	}
	if v.GossipPartitionLocalRounds == 0 {
		t.Error("no local rounds during the partition — edge autonomy is vacuous")
	}
	if v.GossipEscalationFailures == 0 {
		t.Error("no escalation failures — the partition never bit the control plane")
	}
}

// TestRunLeaderKillSpec: the checked-in leader-kill scenario — the hood
// leader is killed without warning mid-partition, the ring successor
// promotes and takes over the mirrored escalation backlog, and the dead
// node restarts from its journal as a follower — passes its verdict,
// including hash equality with the always-healthy lossless twin.
func TestRunLeaderKillSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full scenario run in -short mode")
	}
	spec := loadSpec(t, "leader-kill.yaml")
	if !spec.Verdict.RequireHashEqual {
		t.Fatal("leader-kill.yaml no longer requires hash equality")
	}
	v, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Pass {
		t.Errorf("leader-kill verdict failed: %+v", v.Checks)
	}
	if v.Baseline == nil || !v.Baseline.HashEqual {
		t.Errorf("leader-killed hash %s != lossless twin %v", v.ConsensusStateHash, v.Baseline)
	}
	if v.GossipFailovers == 0 {
		t.Error("no failovers — the leader kill never promoted a successor")
	}
	if v.Recoveries == 0 {
		t.Error("no recoveries — the killed leader's journal restart did not replay")
	}
}

// gossipKillSpec is a four-region, two-neighborhood gossip run (hoods {0,2}
// and {1,3}) that kills non-leader edge 3 at round 4 and restarts it from
// its journal at round 7. With partition set, the cloud is additionally
// unreachable for rounds 6..10, overlapping the restart.
func gossipKillSpec(name string, partition bool) *Spec {
	s := &Spec{
		Version: 1,
		Name:    name,
		Seed:    61,
		Rounds:  14,
		Topology: Topology{
			Network: "inproc",
			Regions: 4,
			Graph:   "demo",
			Gossip: &GossipSpec{
				Neighborhoods: 2,
				EscalateEvery: 2,
				Deadline:      Duration(500 * time.Millisecond),
			},
		},
		Cloud: CloudSpec{
			X0:       0.3,
			TargetX:  0.85,
			Eps:      0.05,
			FixedLag: 8,
			Durable:  true,
		},
		Cohorts: []Cohort{{Name: "taxis", Kind: KindTaxi, PerRegion: 6}},
		Events:  []Event{{Round: 4, Action: "kill", Target: "edge:3", Until: 7}},
	}
	if partition {
		s.Events = append(s.Events,
			Event{Round: 6, Action: "partition", Target: "cloud", Until: 11})
	}
	return s
}

// TestGossipPartitionKillGolden is the determinism witness the issue asks
// for: a run where the cloud is partitioned away mid-run — overlapping a
// non-leader edge's kill -9 and journal restart — folds the exact same
// cloud state as a run that never lost the cloud. The census stream is
// connectivity-independent (ratios come from the local folds), escalation
// backlogs drain on heal in ascending round order, so only the kill — the
// same in both runs — shapes the fold.
func TestGossipPartitionKillGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full scenario run in -short mode")
	}
	connected, err := Run(gossipKillSpec("gossip-kill-connected", false), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parted, err := Run(gossipKillSpec("gossip-kill-partitioned", true), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if parted.ConsensusStateHash != connected.ConsensusStateHash {
		t.Errorf("partitioned fold %s != always-connected fold %s",
			parted.ConsensusStateHash, connected.ConsensusStateHash)
	}
	if parted.GossipPartitionLocalRounds == 0 {
		t.Error("no local rounds completed during the partition")
	}
	if parted.GossipEscalationFailures == 0 {
		t.Error("no escalation failures — the partition never exercised the backlog")
	}
	for _, v := range []*Verdict{connected, parted} {
		if v.Recoveries == 0 {
			t.Errorf("%s: no recoveries — edge 3's journal restart did not replay", v.Name)
		}
		if v.GossipDegradedRounds == 0 {
			t.Errorf("%s: no degraded local rounds — the kill never bit the barrier", v.Name)
		}
	}
}
