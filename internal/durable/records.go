package durable

import (
	"encoding/json"
	"fmt"

	"repro/internal/game"
	"repro/internal/policy"
)

// Checkpoint is the coordinator's full durable state: the game state after
// round Round, the round number itself, and the FDS controller's cross-round
// memory. Payloads are JSON: encoding/json round-trips float64 exactly, so
// a recovered state is bit-identical to the checkpointed one.
type Checkpoint struct {
	Round int              `json:"round"`
	State *game.State      `json:"state"`
	FDS   policy.FDSMemory `json:"fds"`
	// CorrectionSeq is the fixed-lag correction counter at checkpoint time,
	// so corrections published after a restart keep increasing monotonically
	// and edges never discard them as stale.
	CorrectionSeq int64 `json:"correction_seq,omitempty"`
	// Escalated is the gossip tier's escalation watermark: the first round
	// NOT yet compacted into a cloud-acknowledged digest (every round below
	// it has been acked). A restarted gossip leader rebuilds its escalation
	// backlog from journal records at or past it. Zero-valued for the cloud
	// coordinator's own checkpoints.
	Escalated int `json:"escalated,omitempty"`
	// Epoch is the gossip tier's leadership epoch at checkpoint time (see
	// gossip failover): leader(epoch) = members[epoch mod len(members)]. A
	// restarted node resumes from the recorded epoch and lets incoming
	// hood beats correct it forward. Zero-valued for cloud checkpoints.
	Epoch int `json:"epoch,omitempty"`
	// DigestWatermarks is the cloud control plane's per-neighborhood
	// escalation watermark: for hood h, every digest round below
	// DigestWatermarks[h] has already been folded (or absorbed by the
	// rewind window), so re-sent digests — from a retrying old leader or a
	// failed-over successor draining the same backlog — are adopted
	// idempotently after a restart too. Nil for gossip-node checkpoints.
	DigestWatermarks map[int]int `json:"digest_watermarks,omitempty"`
}

// EncodeCheckpoint serializes a checkpoint payload.
func EncodeCheckpoint(cp Checkpoint) ([]byte, error) {
	if cp.State == nil {
		return nil, fmt.Errorf("durable: checkpoint state must be non-nil")
	}
	return json.Marshal(cp)
}

// DecodeCheckpoint parses and validates a checkpoint payload.
func DecodeCheckpoint(b []byte) (Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		return Checkpoint{}, fmt.Errorf("durable: decode checkpoint: %w", err)
	}
	if cp.State == nil {
		return Checkpoint{}, fmt.Errorf("durable: checkpoint has no state")
	}
	if err := cp.State.Validate(); err != nil {
		return Checkpoint{}, fmt.Errorf("durable: checkpoint state: %w", err)
	}
	return cp, nil
}

// RoundRecord journals one applied consensus round: the censuses the FDS
// update ran over (keyed by region) and whether the round completed
// degraded. Replaying the record through the same fold reproduces the
// post-round state exactly.
type RoundRecord struct {
	Round    int           `json:"round"`
	Degraded bool          `json:"degraded,omitempty"`
	Censuses map[int][]int `json:"censuses"`
	// Corrected marks a re-journaled record written after a fixed-lag rewind
	// folded a late census into an already-applied round. During replay a
	// corrected record supersedes the round's earlier censuses: recovery
	// rewinds to the round's pre-state and re-folds, reproducing the
	// corrected history rather than the arrival-order one.
	Corrected bool `json:"corrected,omitempty"`
}

// EncodeRound serializes a round record payload.
func EncodeRound(rec RoundRecord) ([]byte, error) {
	return json.Marshal(rec)
}

// DecodeRound parses a round record payload.
func DecodeRound(b []byte) (RoundRecord, error) {
	var rec RoundRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		return RoundRecord{}, fmt.Errorf("durable: decode round record: %w", err)
	}
	return rec, nil
}
