package durable

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Concurrent appenders under group commit must all come back durable: every
// record a returned Append wrote survives a reopen, in a consistent order.
func TestGroupCommitConcurrentAppendsDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.SetGroupCommit(8, time.Millisecond)

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got := replayAll(t, s2)
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
	seen := make(map[string]bool, len(got))
	for _, rec := range got {
		seen[string(rec)] = true
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if key := fmt.Sprintf("w%d-%d", w, i); !seen[key] {
				t.Fatalf("record %s missing after replay", key)
			}
		}
	}
}

// A lone append must not wait for company forever: the window timer flushes
// it. This is the latency floor of the batched mode.
func TestGroupCommitWindowFlushesLoneAppend(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	s.SetGroupCommit(1000, time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- s.Append([]byte("lonely")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lone append never flushed; window timer did not fire")
	}
}

// Compaction must drain pending group records before swapping the journal,
// so a checkpoint+retain cycle under group commit never strands an
// un-synced append.
func TestGroupCommitCompactRetainDrains(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.SetGroupCommit(4, 50*time.Millisecond)
	for i := 0; i < 4; i++ {
		if err := s.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, err := s.CompactRetain([]byte("snap"), [][]byte{[]byte("kept")}); err != nil {
		t.Fatalf("CompactRetain: %v", err)
	}
	if err := s.Append([]byte("after")); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got := replayAll(t, s2)
	if len(got) != 2 || string(got[0]) != "kept" || string(got[1]) != "after" {
		t.Fatalf("replayed %q, want [kept after]", got)
	}
	payload, ok, err := s2.LoadSnapshot()
	if err != nil || !ok || string(payload) != "snap" {
		t.Fatalf("LoadSnapshot = %q, %v, %v", payload, ok, err)
	}
}
