package durable

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// flakySync wraps the store's real journal file and fails Sync while armed,
// counting every attempt.
type flakySync struct {
	journalFile
	mu    sync.Mutex
	fail  bool
	syncs int
}

func (f *flakySync) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.fail {
		return errors.New("injected fsync failure")
	}
	return f.journalFile.Sync()
}

func (f *flakySync) setFail(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fail = v
}

// armFlakySync swaps the store's journal for a Sync-failing wrapper.
func armFlakySync(s *Store) *flakySync {
	s.mu.Lock()
	defer s.mu.Unlock()
	fj := &flakySync{journalFile: s.journal, fail: true}
	s.journal = fj
	return fj
}

// TestGroupCommitSyncFailureFailsEveryWaiter is the multi-waiter error-path
// regression: when the one fsync covering a batch of Appends fails, every
// Append in the batch must report the failure — none may claim durability —
// and the journal stays poisoned for later Appends until a compaction
// rebuilds it, at which point appends work again.
func TestGroupCommitSyncFailureFailsEveryWaiter(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	const writers = 4
	s.SetGroupCommit(writers, 50*time.Millisecond)
	fj := armFlakySync(s)

	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = s.Append([]byte(fmt.Sprintf("w%d", w)))
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err == nil {
			t.Errorf("writer %d: Append returned nil under a failed group fsync", w)
			continue
		}
		if !strings.Contains(err.Error(), "injected fsync failure") {
			t.Errorf("writer %d: error %v does not carry the fsync failure", w, err)
		}
	}

	// Even after the injected fault clears, the store must stay poisoned: a
	// later successful fsync cannot resurrect the possibly-dropped frames in
	// the middle of the file, so accepting new records would let replay
	// silently truncate them away.
	fj.setFail(false)
	if err := s.Append([]byte("after-failure")); err == nil {
		t.Fatal("Append succeeded on a poisoned journal")
	}

	// CompactRetain rebuilds the journal file from scratch (write + fsync +
	// rename), which is the one legitimate cure.
	if _, err := s.CompactRetain([]byte("snap"), [][]byte{[]byte("kept")}); err != nil {
		t.Fatalf("CompactRetain: %v", err)
	}
	if err := s.Append([]byte("after-compact")); err != nil {
		t.Fatalf("Append after compaction: %v", err)
	}
	got := replayAll(t, s)
	if len(got) != 2 || string(got[0]) != "kept" || string(got[1]) != "after-compact" {
		t.Fatalf("replayed %q, want [kept after-compact]", got)
	}
}

// TestGroupCommitSyncFailureFailsLaggingWaiter pins the subtler half of the
// contract: a waiter whose frame was written while the failing fsync was
// already in flight (so it was NOT covered by that commit) must also fail —
// its frame sits after the possibly-lost ones, so its durability is void
// even if its own fsync were to succeed.
func TestGroupCommitSyncFailureFailsLaggingWaiter(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	s.SetGroupCommit(2, 20*time.Millisecond)
	fj := armFlakySync(s)

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errCh <- s.Append([]byte(fmt.Sprintf("w%d", w)))
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err == nil {
			t.Error("an Append claimed durability while every fsync was failing")
		}
	}
	// One fsync failure is enough to poison; later appends fail without
	// touching the disk again. Wait out any flush still in flight before
	// sampling the sync count.
	for {
		s.mu.Lock()
		flushing := s.flushing
		s.mu.Unlock()
		if !flushing {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fj.mu.Lock()
	syncsAtPoison := fj.syncs
	fj.mu.Unlock()
	if syncsAtPoison == 0 {
		t.Fatal("no fsync ever ran — the batch never flushed")
	}
	if err := s.Append([]byte("poisoned")); err == nil {
		t.Fatal("Append succeeded on a poisoned journal")
	}
	fj.mu.Lock()
	syncsAfter := fj.syncs
	fj.mu.Unlock()
	if syncsAfter != syncsAtPoison {
		t.Errorf("poisoned Append still drove %d fsyncs", syncsAfter-syncsAtPoison)
	}
}

// Concurrent appenders under group commit must all come back durable: every
// record a returned Append wrote survives a reopen, in a consistent order.
func TestGroupCommitConcurrentAppendsDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.SetGroupCommit(8, time.Millisecond)

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got := replayAll(t, s2)
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
	seen := make(map[string]bool, len(got))
	for _, rec := range got {
		seen[string(rec)] = true
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if key := fmt.Sprintf("w%d-%d", w, i); !seen[key] {
				t.Fatalf("record %s missing after replay", key)
			}
		}
	}
}

// A lone append must not wait for company forever: the window timer flushes
// it. This is the latency floor of the batched mode.
func TestGroupCommitWindowFlushesLoneAppend(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	s.SetGroupCommit(1000, time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- s.Append([]byte("lonely")) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lone append never flushed; window timer did not fire")
	}
}

// Compaction must drain pending group records before swapping the journal,
// so a checkpoint+retain cycle under group commit never strands an
// un-synced append.
func TestGroupCommitCompactRetainDrains(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.SetGroupCommit(4, 50*time.Millisecond)
	for i := 0; i < 4; i++ {
		if err := s.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if _, err := s.CompactRetain([]byte("snap"), [][]byte{[]byte("kept")}); err != nil {
		t.Fatalf("CompactRetain: %v", err)
	}
	if err := s.Append([]byte("after")); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got := replayAll(t, s2)
	if len(got) != 2 || string(got[0]) != "kept" || string(got[1]) != "after" {
		t.Fatalf("replayed %q, want [kept after]", got)
	}
	payload, ok, err := s2.LoadSnapshot()
	if err != nil || !ok || string(payload) != "snap" {
		t.Fatalf("LoadSnapshot = %q, %v, %v", payload, ok, err)
	}
}
