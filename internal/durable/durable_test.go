package durable

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/game"
	"repro/internal/policy"
)

func replayAll(t *testing.T, s *Store) [][]byte {
	t.Helper()
	var out [][]byte
	n, err := s.Replay(func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(out) {
		t.Fatalf("Replay reported %d records, callback saw %d", n, len(out))
	}
	return out
}

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	for _, rec := range want {
		if err := s.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got := replayAll(t, s2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// A crash mid-append leaves a torn tail; replay must drop it, keep every
// earlier record, and let appends continue from the truncation point.
func TestTornTailTruncatedOnReplay(t *testing.T) {
	for name, tear := range map[string]func([]byte) []byte{
		"short-header":    func(b []byte) []byte { return append(b, 0x00, 0x00) },
		"short-payload":   func(b []byte) []byte { return append(b, 0, 0, 0, 100, 1, 2, 3, 4, 'x') },
		"crc-mismatch":    func(b []byte) []byte { return append(b, 0, 0, 0, 1, 0xde, 0xad, 0xbe, 0xef, 'x') },
		"absurd-length":   func(b []byte) []byte { return append(b, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0) },
		"zeroed-trailing": func(b []byte) []byte { return append(b, make([]byte, 5)...) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if err := s.Append([]byte("good")); err != nil {
				t.Fatalf("Append: %v", err)
			}
			s.Close()

			path := filepath.Join(dir, journalName)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read journal: %v", err)
			}
			goodLen := len(b)
			if err := os.WriteFile(path, tear(b), 0o644); err != nil {
				t.Fatalf("write torn journal: %v", err)
			}

			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer s2.Close()
			got := replayAll(t, s2)
			if len(got) != 1 || string(got[0]) != "good" {
				t.Fatalf("replayed %q, want just the good record", got)
			}
			if s2.JournalSize() != int64(goodLen) {
				t.Fatalf("journal size after truncation = %d, want %d", s2.JournalSize(), goodLen)
			}
			// Appends continue cleanly after the torn tail is gone.
			if err := s2.Append([]byte("after")); err != nil {
				t.Fatalf("Append after truncation: %v", err)
			}
			if got := replayAll(t, s2); len(got) != 2 || string(got[1]) != "after" {
				t.Fatalf("after re-append, replayed %q", got)
			}
		})
	}
}

func TestSnapshotAtomicWriteAndLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()

	if _, ok, err := s.LoadSnapshot(); err != nil || ok {
		t.Fatalf("LoadSnapshot on empty dir = ok=%v err=%v, want absent", ok, err)
	}
	if _, err := s.WriteSnapshot([]byte("v1")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if _, err := s.WriteSnapshot([]byte("v2")); err != nil {
		t.Fatalf("WriteSnapshot v2: %v", err)
	}
	got, ok, err := s.LoadSnapshot()
	if err != nil || !ok || string(got) != "v2" {
		t.Fatalf("LoadSnapshot = %q ok=%v err=%v, want v2", got, ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("snapshot tmp file left behind (err=%v)", err)
	}

	// A corrupt checkpoint is an error, never silently ignored.
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("garbage"), 0o644); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}
	if _, _, err := s.LoadSnapshot(); err == nil {
		t.Fatalf("LoadSnapshot accepted a corrupt checkpoint")
	}
}

func TestCompactTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		if err := s.Append([]byte{byte(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	n, err := s.Compact([]byte("state"))
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if n != frameHeader+len("state") {
		t.Fatalf("Compact size = %d, want %d", n, frameHeader+len("state"))
	}
	if s.JournalSize() != 0 {
		t.Fatalf("journal size after compact = %d, want 0", s.JournalSize())
	}
	if got := replayAll(t, s); len(got) != 0 {
		t.Fatalf("journal replayed %d records after compact, want 0", len(got))
	}
	snap, ok, err := s.LoadSnapshot()
	if err != nil || !ok || string(snap) != "state" {
		t.Fatalf("LoadSnapshot after compact = %q ok=%v err=%v", snap, ok, err)
	}
	// New appends after compaction are independent of the old journal.
	if err := s.Append([]byte("next")); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	if got := replayAll(t, s); len(got) != 1 || string(got[0]) != "next" {
		t.Fatalf("after compact+append, replayed %q", got)
	}
}

// CompactRetain swaps the journal for the retained window records
// atomically; the new journal must replay exactly those records, appends
// must continue after them, and a reopen must see the same contents.
func TestCompactRetainKeepsWindowRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append([]byte{byte(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	retained := [][]byte{[]byte("win-a"), []byte("win-b")}
	if _, err := s.CompactRetain([]byte("pre-window state"), retained); err != nil {
		t.Fatalf("CompactRetain: %v", err)
	}
	snap, ok, err := s.LoadSnapshot()
	if err != nil || !ok || string(snap) != "pre-window state" {
		t.Fatalf("LoadSnapshot = %q ok=%v err=%v", snap, ok, err)
	}
	got := replayAll(t, s)
	if len(got) != 2 || string(got[0]) != "win-a" || string(got[1]) != "win-b" {
		t.Fatalf("retained journal replayed %q", got)
	}
	// Appends continue on the swapped-in journal file.
	if err := s.Append([]byte("after")); err != nil {
		t.Fatalf("Append after CompactRetain: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got = replayAll(t, s2)
	if len(got) != 3 || string(got[2]) != "after" {
		t.Fatalf("after reopen, replayed %q", got)
	}
	// Retaining nothing degenerates to Compact.
	if _, err := s2.CompactRetain([]byte("s2"), nil); err != nil {
		t.Fatalf("CompactRetain(nil): %v", err)
	}
	if s2.JournalSize() != 0 {
		t.Fatalf("journal size = %d, want 0", s2.JournalSize())
	}
}

func TestClosedStoreFails(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.Close()
	if err := s.Append([]byte("x")); err != ErrStoreClosed {
		t.Fatalf("Append on closed store = %v, want ErrStoreClosed", err)
	}
	if _, err := s.Replay(func([]byte) error { return nil }); err != ErrStoreClosed {
		t.Fatalf("Replay on closed store = %v, want ErrStoreClosed", err)
	}
	if _, err := s.Compact([]byte("x")); err != ErrStoreClosed {
		t.Fatalf("Compact on closed store = %v, want ErrStoreClosed", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello frame")
	frame := appendFrame(nil, payload)
	got, n, ok := parseFrame(frame)
	if !ok || n != len(frame) || string(got) != string(payload) {
		t.Fatalf("parseFrame = %q n=%d ok=%v", got, n, ok)
	}
	// Flipping any byte must fail the CRC (or the length bound).
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x01
		if p, _, ok := parseFrame(mut); ok && string(p) == string(payload) && i >= frameHeader {
			t.Fatalf("flip at %d went undetected", i)
		}
	}
	// Length prefix beyond MaxRecordBytes is rejected without allocating.
	var huge [frameHeader]byte
	binary.BigEndian.PutUint32(huge[0:4], MaxRecordBytes+1)
	if _, _, ok := parseFrame(huge[:]); ok {
		t.Fatalf("oversized length accepted")
	}
}

// Checkpoint and round records must round-trip exactly — bit-identical
// floats included — since recovery correctness depends on it.
func TestTypedRecordRoundTrip(t *testing.T) {
	st := game.NewUniformState(2, 3, 0.4)
	st.P[0] = []float64{0.123456789012345, 0.5, 0.376543210987655}
	st.X[1] = 0.7071067811865476
	cp := Checkpoint{
		Round: 41,
		State: st,
		FDS:   policy.FDSMemory{LastShortfall: []float64{0.25, 1e-17}, StallRounds: []int{3, 0}},
	}
	b, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	got, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("checkpoint round-trip mismatch:\n got %+v\nwant %+v", got, cp)
	}
	if _, err := DecodeCheckpoint([]byte(`{"round":1}`)); err == nil {
		t.Fatalf("DecodeCheckpoint accepted a checkpoint without state")
	}

	rec := RoundRecord{Round: 7, Degraded: true, Censuses: map[int][]int{0: {1, 2, 3}, 1: {0, 0, 4}}}
	rb, err := EncodeRound(rec)
	if err != nil {
		t.Fatalf("EncodeRound: %v", err)
	}
	gotRec, err := DecodeRound(rb)
	if err != nil {
		t.Fatalf("DecodeRound: %v", err)
	}
	if !reflect.DeepEqual(gotRec, rec) {
		t.Fatalf("round record round-trip mismatch: got %+v want %+v", gotRec, rec)
	}
}
