// Package durable persists the cloud coordinator's consensus state across
// process death. A state directory holds two files:
//
//	checkpoint.snap — the latest full checkpoint, written atomically
//	                  (tmp file + fsync + rename + directory fsync)
//	journal.wal     — an append-only, fsync-per-append journal of the
//	                  rounds applied since that checkpoint
//
// Both files carry CRC-framed records: a 4-byte big-endian payload length,
// a 4-byte big-endian CRC-32C (Castagnoli) of the payload, then the
// payload. A crash mid-append leaves a torn tail that fails the length or
// CRC check; Replay truncates it away, so recovery always resumes from the
// last record whose fsync completed. Compact replaces the checkpoint and
// truncates the journal; a crash between those two steps only leaves
// already-checkpointed records in the journal, which the replayer must
// skip by round number.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	snapshotName = "checkpoint.snap"
	journalName  = "journal.wal"

	frameHeader = 8 // 4-byte payload length + 4-byte CRC-32C

	// MaxRecordBytes bounds a single record (16 MiB). A length prefix
	// beyond it is treated as corruption, not an allocation request.
	MaxRecordBytes = 16 << 20
)

// ErrStoreClosed is returned by operations on a closed Store.
var ErrStoreClosed = errors.New("durable: store closed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// journalFile is the slice of *os.File the journal path uses. Tests
// substitute implementations whose Sync fails on demand to exercise the
// fsync-failure poisoning below.
type journalFile interface {
	io.Closer
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
}

// Store owns one state directory. All methods are safe for concurrent use.
type Store struct {
	dir string

	mu      sync.Mutex
	journal journalFile
	size    int64 // current journal length (all complete records)

	// Group commit (see SetGroupCommit). With groupN <= 1 every Append
	// fsyncs on its own, the historical behavior. Otherwise appends write
	// their frames immediately and block on flushed until one fsync — run
	// by whichever appender trips the count threshold, or by the window
	// timer — covers them. writeSeq counts frames written into the file,
	// syncedSeq frames a completed fsync made durable.
	//
	// A failed fsync poisons the journal (flushErr): every Append batched
	// under the failed commit AND every later Append reports the failure,
	// until a Compact/CompactRetain rebuilds the journal file. The blanket
	// rule is not conservatism: after a failed fsync the kernel may mark the
	// dirty pages clean without writing them, so a later successful fsync
	// covering later frames would leave a corrupt middle that replay
	// truncates at — silently discarding records whose Append returned nil.
	groupN      int
	groupWindow time.Duration
	flushed     *sync.Cond
	flushing    bool
	writeSeq    int64
	syncedSeq   int64
	flushErr    error
	timer       *time.Timer
	timerArmed  bool
}

// Open creates the state directory if needed and opens (or creates) its
// journal. Call Replay before the first Append, so a torn tail from a
// previous crash is truncated rather than appended after.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("durable: state directory must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create state dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: stat journal: %w", err)
	}
	s := &Store{dir: dir, journal: f, size: st.Size()}
	s.flushed = sync.NewCond(&s.mu)
	return s, nil
}

// defaultGroupWindow bounds how long a lone record waits for company before
// its fsync runs anyway.
const defaultGroupWindow = 2 * time.Millisecond

// SetGroupCommit batches journal fsyncs: up to n pending Append calls share
// one fsync, flushed as soon as n records are pending or after window at
// the latest (window <= 0 uses a 2ms default). Append's durability contract
// is unchanged — it still blocks until the fsync covering its record
// completes — only the per-record fsync floor is amortized away, which is
// what lets a gossip node journal every local round without paying a disk
// round-trip per round. n <= 1 restores the historical fsync-per-append
// behavior. Safe to call only before the first Append.
func (s *Store) SetGroupCommit(n int, window time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if window <= 0 {
		window = defaultGroupWindow
	}
	s.groupN = n
	s.groupWindow = window
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// JournalSize returns the journal's current length in bytes.
func (s *Store) JournalSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// LoadSnapshot returns the checkpoint payload, or ok=false when no
// checkpoint has been written yet. A checkpoint that fails its CRC is an
// error: unlike a torn journal tail, a torn checkpoint means the atomic
// rename protocol was violated (or the disk corrupted it) and silently
// restarting from scratch would discard real state.
func (s *Store) LoadSnapshot() (payload []byte, ok bool, err error) {
	path := filepath.Join(s.dir, snapshotName)
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("durable: read snapshot: %w", err)
	}
	payload, n, frameOK := parseFrame(b)
	if !frameOK || n != len(b) {
		return nil, false, fmt.Errorf("durable: snapshot %s is corrupt", path)
	}
	return payload, true, nil
}

// Replay walks the journal's complete records in append order, passing each
// payload to fn, and truncates any torn tail left by a crash mid-append. It
// returns the number of records replayed. An error from fn aborts the walk.
func (s *Store) Replay(fn func(payload []byte) error) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return 0, ErrStoreClosed
	}
	buf := make([]byte, s.size)
	if s.size > 0 {
		if _, err := s.journal.ReadAt(buf, 0); err != nil {
			return 0, fmt.Errorf("durable: read journal: %w", err)
		}
	}
	off, replayed := 0, 0
	for off < len(buf) {
		payload, n, ok := parseFrame(buf[off:])
		if !ok {
			break // torn or corrupt tail: everything before it is good
		}
		if err := fn(payload); err != nil {
			return replayed, err
		}
		replayed++
		off += n
	}
	if int64(off) < s.size {
		if err := s.journal.Truncate(int64(off)); err != nil {
			return replayed, fmt.Errorf("durable: truncate torn tail: %w", err)
		}
		if err := s.journal.Sync(); err != nil {
			return replayed, fmt.Errorf("durable: sync journal: %w", err)
		}
		s.size = int64(off)
	}
	return replayed, nil
}

// Append frames the payload, writes it at the journal's end, and fsyncs
// before returning: once Append returns nil the record survives kill -9.
// Under SetGroupCommit the fsync may be shared with other pending appends,
// but the durability contract is the same.
func (s *Store) Append(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("durable: record of %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	frame := appendFrame(make([]byte, 0, frameHeader+len(payload)), payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return ErrStoreClosed
	}
	if s.flushErr != nil {
		return fmt.Errorf("durable: journal poisoned by earlier sync failure: %w", s.flushErr)
	}
	if _, err := s.journal.WriteAt(frame, s.size); err != nil {
		return fmt.Errorf("durable: append journal: %w", err)
	}
	if s.groupN <= 1 {
		if err := s.journal.Sync(); err != nil {
			s.flushErr = err
			return fmt.Errorf("durable: sync journal: %w", err)
		}
		s.size += int64(len(frame))
		return nil
	}
	s.size += int64(len(frame))
	s.writeSeq++
	seq := s.writeSeq
	if s.writeSeq-s.syncedSeq >= int64(s.groupN) && !s.flushing {
		s.flushLocked()
	} else {
		s.armTimerLocked()
	}
	// A waiter that already sat through one flush without being covered (it
	// wrote its frame while that fsync was in flight) leads the next flush
	// immediately: it has waited a full disk round-trip, which is all the
	// deadline was bounding. Only a first-round waiter holds out for the
	// count threshold or the window timer.
	waited := false
	for s.syncedSeq < seq {
		if s.journal == nil {
			return ErrStoreClosed
		}
		if s.flushErr != nil {
			return fmt.Errorf("durable: sync journal: %w", s.flushErr)
		}
		if !s.flushing && (waited || s.writeSeq-s.syncedSeq >= int64(s.groupN)) {
			s.flushLocked()
			continue
		}
		s.flushed.Wait()
		waited = true
	}
	if s.flushErr != nil {
		return fmt.Errorf("durable: sync journal: %w", s.flushErr)
	}
	return nil
}

// flushLocked runs one group fsync covering every record written so far.
// The lock is released for the fsync itself, so appenders keep writing
// frames (the next group) while the disk works. Called with s.mu held;
// returns with it held.
func (s *Store) flushLocked() {
	target := s.writeSeq
	s.flushing = true
	s.timerArmed = false
	j := s.journal
	s.mu.Unlock()
	err := j.Sync()
	s.mu.Lock()
	s.flushing = false
	if target > s.syncedSeq {
		s.syncedSeq = target
	}
	if err != nil && s.flushErr == nil {
		s.flushErr = err
	}
	s.flushed.Broadcast()
}

// armTimerLocked schedules the window flush for the current pending group,
// if one is not already scheduled. Called with s.mu held.
func (s *Store) armTimerLocked() {
	if s.timerArmed {
		return
	}
	s.timerArmed = true
	if s.timer == nil {
		s.timer = time.AfterFunc(s.groupWindow, s.windowFlush)
		return
	}
	s.timer.Reset(s.groupWindow)
}

// windowFlush is the timer path: flush whatever is pending when the group
// window closes, unless a count-triggered flush is already running (its
// completion wakes the waiters this timer was armed for).
func (s *Store) windowFlush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.timerArmed = false
	if s.journal == nil || s.flushing || s.flushErr != nil || s.writeSeq <= s.syncedSeq {
		return
	}
	s.flushLocked()
}

// drainLocked waits out any in-flight group flush and fsyncs any remaining
// pending records, so callers about to swap or truncate the journal never
// race a concurrent fsync or strand an un-synced append. Called with s.mu
// held.
func (s *Store) drainLocked() {
	for s.flushing {
		s.flushed.Wait()
	}
	if s.journal != nil && s.writeSeq > s.syncedSeq {
		err := s.journal.Sync()
		s.syncedSeq = s.writeSeq
		if err != nil && s.flushErr == nil {
			s.flushErr = err
		}
		s.flushed.Broadcast()
	}
}

// Compact atomically replaces the checkpoint with the given payload and
// then truncates the journal. The snapshot is made durable before the
// truncate, so a crash between the two steps loses nothing: the journal
// still holds records the new checkpoint already covers, and the replayer
// skips them by round number. Returns the checkpoint size in bytes.
func (s *Store) Compact(payload []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return 0, ErrStoreClosed
	}
	s.drainLocked()
	n, err := s.writeSnapshotLocked(payload)
	if err != nil {
		return 0, err
	}
	if err := s.journal.Truncate(0); err != nil {
		return n, fmt.Errorf("durable: truncate journal: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		return n, fmt.Errorf("durable: sync journal: %w", err)
	}
	s.size = 0
	// The checkpoint now covers everything and the journal is verifiably
	// empty, so an earlier fsync failure no longer shadows any record.
	s.flushErr = nil
	return n, nil
}

// CompactRetain atomically replaces the checkpoint with payload and
// replaces the journal's contents with the given records (instead of
// truncating it empty, as Compact does). A fixed-lag coordinator checkpoints
// the state *before* its rewind window and must keep the window's round
// records journaled, or a crash would lose the rounds the checkpoint does
// not cover.
//
// The new journal is built in a temp file (write + fsync) and renamed over
// the old one, so the swap is atomic: a crash before the rename leaves the
// old journal, whose records the replayer skips by round number or
// re-applies idempotently; a crash after it leaves exactly the retained
// records. Returns the checkpoint size in bytes.
func (s *Store) CompactRetain(payload []byte, records [][]byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return 0, ErrStoreClosed
	}
	s.drainLocked()
	n, err := s.writeSnapshotLocked(payload)
	if err != nil {
		return 0, err
	}
	var frames []byte
	for _, rec := range records {
		if len(rec) > MaxRecordBytes {
			return n, fmt.Errorf("durable: retained record of %d bytes exceeds limit %d", len(rec), MaxRecordBytes)
		}
		frames = appendFrame(frames, rec)
	}
	tmp := filepath.Join(s.dir, journalName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return n, fmt.Errorf("durable: create journal tmp: %w", err)
	}
	if len(frames) > 0 {
		if _, err := f.Write(frames); err != nil {
			f.Close()
			return n, fmt.Errorf("durable: write retained journal: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return n, fmt.Errorf("durable: sync retained journal: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, journalName)); err != nil {
		f.Close()
		return n, fmt.Errorf("durable: rename journal: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return n, err
	}
	// The old handle points at the unlinked file; swap in the new one. A
	// freshly written and fsynced journal also lifts any fsync-failure
	// poison: every retained record is durable in the new file.
	_ = s.journal.Close()
	s.journal = f
	s.size = int64(len(frames))
	s.flushErr = nil
	return n, nil
}

// WriteSnapshot atomically replaces the checkpoint without touching the
// journal. Returns the checkpoint size in bytes.
func (s *Store) WriteSnapshot(payload []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeSnapshotLocked(payload)
}

func (s *Store) writeSnapshotLocked(payload []byte) (int, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("durable: snapshot of %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	frame := appendFrame(make([]byte, 0, frameHeader+len(payload)), payload)
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("durable: create snapshot tmp: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return 0, fmt.Errorf("durable: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("durable: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("durable: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return 0, fmt.Errorf("durable: rename snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return 0, err
	}
	return len(frame), nil
}

// Close releases the journal handle. Further operations fail with
// ErrStoreClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	s.drainLocked()
	err := s.journal.Close()
	s.journal = nil
	if s.timer != nil {
		s.timer.Stop()
	}
	s.flushed.Broadcast()
	return err
}

// appendFrame appends [len][crc][payload] to dst and returns it.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// parseFrame reads one record from the front of b. ok is false when b holds
// no complete, CRC-valid record (a torn or corrupt tail).
func parseFrame(b []byte) (payload []byte, consumed int, ok bool) {
	if len(b) < frameHeader {
		return nil, 0, false
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n > MaxRecordBytes || frameHeader+int(n) > len(b) {
		return nil, 0, false
	}
	payload = b[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.BigEndian.Uint32(b[4:8]) {
		return nil, 0, false
	}
	return payload, frameHeader + int(n), true
}

// syncDir fsyncs a directory so a completed rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	return nil
}
