package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTracerRingBuffer(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		sp := tr.Start("round", A("round", i))
		sp.End()
	}
	recent := tr.Recent(0)
	if len(recent) != 3 {
		t.Fatalf("retained %d spans, want 3 (capacity)", len(recent))
	}
	// Most recent first: rounds 4, 3, 2.
	for i, want := range []int{4, 3, 2} {
		if got := recent[i].Attrs[0].Value.(int); got != want {
			t.Errorf("recent[%d] round = %v, want %d", i, got, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].ID != recent[0].ID {
		t.Errorf("Recent(2) = %d spans starting at id %d, want 2 starting at %d",
			len(got), got[0].ID, recent[0].ID)
	}
}

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("edge_round", A("edge", 1))
	sp.Attr("round", 7)
	sp.Event("uploads_complete", A("uploads", 20))
	if len(tr.Recent(0)) != 0 {
		t.Error("span visible before End")
	}
	sp.End(A("census_total", 40))
	sp.End() // second End must not double-commit
	sp.Attr("late", true)

	recent := tr.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("retained %d spans, want 1", len(recent))
	}
	d := recent[0]
	if d.Name != "edge_round" || len(d.Attrs) != 3 || len(d.Events) != 1 {
		t.Errorf("span = %+v, want name edge_round, 3 attrs, 1 event", d)
	}
	if d.DurationNS < 0 {
		t.Errorf("duration = %d, want >= 0", d.DurationNS)
	}
	if d.Events[0].Name != "uploads_complete" {
		t.Errorf("event = %+v", d.Events[0])
	}
}

func TestWriteJSON(t *testing.T) {
	tr := NewTracer(4)
	tr.Start("a").End()
	tr.Start("b").End()
	var b strings.Builder
	if err := tr.WriteJSON(&b, 0); err != nil {
		t.Fatal(err)
	}
	var spans []SpanData
	if err := json.Unmarshal([]byte(b.String()), &spans); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(spans) != 2 || spans[0].Name != "b" || spans[1].Name != "a" {
		t.Errorf("spans = %+v, want [b a]", spans)
	}
}
