package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span or event. Values should be
// small scalars (numbers, short strings, bools): they are retained in the
// ring buffer and marshaled to JSON on /debug/spans.
type Attr struct {
	Key   string      `json:"key"`
	Value interface{} `json:"value"`
}

// A returns an Attr (shorthand for literal construction at call sites).
func A(key string, value interface{}) Attr { return Attr{Key: key, Value: value} }

// Event is a point-in-time annotation inside a span.
type Event struct {
	Name string `json:"name"`
	// OffsetNS is the event time relative to the span start.
	OffsetNS int64  `json:"offset_ns"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// SpanData is the immutable record of a finished span.
type SpanData struct {
	// ID is a tracer-unique, monotonically increasing span id.
	ID   uint64 `json:"id"`
	Name string `json:"name"`
	// Start is the wall-clock start time.
	Start time.Time `json:"start"`
	// DurationNS is End-Start in nanoseconds.
	DurationNS int64   `json:"duration_ns"`
	Attrs      []Attr  `json:"attrs,omitempty"`
	Events     []Event `json:"events,omitempty"`
}

// Tracer records finished spans into a fixed-size ring buffer: the most
// recent spans win, older ones are overwritten. Starting and annotating
// spans is cheap (no allocation beyond the span itself); nothing is
// retained until End commits the span. A nil *Tracer hands out nil *Spans,
// on which every method is a no-op.
type Tracer struct {
	nextID atomic.Uint64

	mu    sync.Mutex
	ring  []SpanData
	next  int  // ring write cursor
	total int  // spans committed (caps at len(ring) for fill detection)
}

// NewTracer returns a tracer retaining the most recent capacity spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]SpanData, capacity)}
}

// Start opens a span. The span is not visible in Recent until End is
// called. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t: t,
		data: SpanData{
			ID:    t.nextID.Add(1),
			Name:  name,
			Start: time.Now(),
			Attrs: attrs,
		},
	}
}

// commit stores a finished span in the ring.
func (t *Tracer) commit(d SpanData) {
	t.mu.Lock()
	t.ring[t.next] = d
	t.next = (t.next + 1) % len(t.ring)
	if t.total < len(t.ring) {
		t.total++
	}
	t.mu.Unlock()
}

// Recent returns up to n finished spans, most recent first (n <= 0 means
// all retained). Nil-safe (returns nil).
func (t *Tracer) Recent(n int) []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.total {
		n = t.total
	}
	out := make([]SpanData, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// WriteJSON writes up to n recent spans (most recent first) as a JSON
// array. Nil-safe (writes an empty array).
func (t *Tracer) WriteJSON(w io.Writer, n int) error {
	spans := t.Recent(n)
	if spans == nil {
		spans = []SpanData{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}

// Span is an in-flight timed operation. All methods are safe for concurrent
// use and no-ops on a nil *Span.
type Span struct {
	t     *Tracer
	mu    sync.Mutex
	data  SpanData
	ended bool
}

// Attr appends an annotation to the span.
func (s *Span) Attr(key string, value interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Attrs = append(s.data.Attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// Event records a point-in-time annotation inside the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.data.Events = append(s.data.Events, Event{
			Name:     name,
			OffsetNS: int64(time.Since(s.data.Start)),
			Attrs:    attrs,
		})
	}
	s.mu.Unlock()
}

// End finishes the span and commits it to the tracer's ring buffer. Calling
// End more than once commits only the first.
func (s *Span) End(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.Attrs = append(s.data.Attrs, attrs...)
	s.data.DurationNS = int64(time.Since(s.data.Start))
	d := s.data
	s.mu.Unlock()
	s.t.commit(d)
}
