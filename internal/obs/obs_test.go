package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("consensus_rounds_total", "rounds completed")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("consensus_rounds_total", ""); again != c {
		t.Error("Counter did not get-or-create the same instrument")
	}

	g := r.Gauge("edge_vehicles", "registered vehicles")
	g.Set(10)
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Errorf("gauge = %v, want 7.5", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("worldbuild_stage_executions_total", "stage runs", "stage")
	v.With("network").Add(2)
	v.With("trace").Inc()
	v.With("network").Inc()
	if got := v.With("network").Value(); got != 3 {
		t.Errorf(`With("network") = %d, want 3`, got)
	}
	if got := v.With("trace").Value(); got != 1 {
		t.Errorf(`With("trace") = %d, want 1`, got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_round_duration_seconds", "round walltime", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Errorf("sum = %v, want 56.05", h.Sum())
	}
	points := r.Snapshot()
	if len(points) != 1 {
		t.Fatalf("snapshot has %d points, want 1", len(points))
	}
	cum := []int64{1, 3, 4, 5}
	for i, b := range points[0].Buckets {
		if b.CumulativeCount != cum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.CumulativeCount, cum[i])
		}
	}
}

func TestReregistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestWriteProm pins the exposition format: HELP/TYPE headers, label
// rendering, histogram expansion, deterministic name ordering.
func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "last by name").Add(7)
	r.CounterVec("worldbuild_stage_hits_total", "cache hits", "stage").With("net\"wo\\rk").Add(2)
	h := r.Histogram("dur_seconds", "", []float64{0.5})
	h.Observe(0.25)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE dur_seconds histogram
dur_seconds_bucket{le="0.5"} 1
dur_seconds_bucket{le="+Inf"} 2
dur_seconds_sum 2.25
dur_seconds_count 2
# HELP worldbuild_stage_hits_total cache hits
# TYPE worldbuild_stage_hits_total counter
worldbuild_stage_hits_total{stage="net\"wo\\rk"} 2
# HELP zz_total last by name
# TYPE zz_total counter
zz_total 7
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestNilSafety: every operation through a nil observer, registry, or
// instrument must be a silent no-op — this is the disabled mode components
// rely on.
func TestNilSafety(t *testing.T) {
	var o *Observer
	o.Counter("a", "").Inc()
	o.Counter("a", "").Add(3)
	o.Gauge("b", "").Set(1)
	o.Histogram("c", "", nil).Observe(2)
	o.CounterVec("d", "", "l").With("x").Inc()
	sp := o.Span("op")
	sp.Attr("k", 1)
	sp.Event("e")
	sp.End()
	if o.Registry().Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	if got := o.Counter("a", "").Value(); got != 0 {
		t.Errorf("nil counter Value = %d", got)
	}
	var b strings.Builder
	if err := o.Registry().WriteProm(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil WriteProm wrote %q, err %v", b.String(), err)
	}
	if o.Tracer().Recent(5) != nil {
		t.Error("nil tracer Recent should be nil")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "").Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h_seconds", "", nil).Observe(0.001)
				r.CounterVec("v_total", "", "l").With("x").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g", "").Value(); got != 8000 {
		t.Errorf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h_seconds", "", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
	if got := r.CounterVec("v_total", "", "l").With("x").Value(); got != 8000 {
		t.Errorf("vec counter = %d, want 8000", got)
	}
}
