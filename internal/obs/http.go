package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// NewMux returns an http.ServeMux exposing the observer:
//
//	/metrics        Prometheus text exposition of the registry
//	/debug/spans    recent finished spans as JSON (?n=K limits the count)
//	/debug/pprof/*  the standard runtime profiles
//
// A nil observer (or nil halves) serves empty documents, so the endpoint
// can be mounted unconditionally.
func NewMux(o *Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Registry().WriteProm(w)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = o.Tracer().WriteJSON(w, n)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability HTTP endpoint.
type Server struct {
	l    net.Listener
	http *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.http.Close() }

// Serve starts the observability endpoint on addr in a background
// goroutine and returns the running server. Callers that pass ":0" can
// recover the bound address from Server.Addr.
func Serve(addr string, o *Observer) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &Server{l: l, http: &http.Server{Handler: NewMux(o)}}
	go func() { _ = srv.http.Serve(l) }()
	return srv, nil
}
