// Package obs is the unified observability layer: one dependency-free
// instrumentation API shared by every tier of the system (cloud, edge,
// vehicle, transport, world build, controllers).
//
// It has two halves:
//
//   - a metrics Registry of named Counters, Gauges, and Histograms (plus
//     labeled Vec variants) with atomic hot paths, snapshots, and
//     Prometheus-style text exposition (expo.go);
//   - a span Tracer recording timed, attributed spans and events into a
//     fixed-size ring buffer, exported as JSON (span.go).
//
// Both are bundled by Observer, the handle components accept. Every type is
// nil-safe: instruments obtained from a nil Observer or Registry are nil and
// all their methods are no-ops, so a component instrumented against a nil
// observer pays only a nil check per operation (see bench_test.go; the
// disabled hot path is well under 10 ns/op). Components therefore hold their
// instruments unconditionally and never branch on "is observability on".
//
// # Metric naming convention
//
// Names are snake_case, prefixed by subsystem, suffixed by unit/kind:
//
//   - consensus_*        cloud coordinator (rounds, barriers, censuses)
//   - transport_fault_*  fault-injection layer
//   - edge_*             edge servers and their cloud links
//   - vehicle_*          vehicle clients
//   - worldbuild_*       world-build pipeline stages
//   - fds_*              the FDS controller
//   - replicator_*       replicator dynamics
//
// Counters end in _total; durations are histograms in seconds ending in
// _seconds. Label names are snake_case; high-cardinality labels (vehicle
// ids, round numbers) are forbidden — put those on spans instead.
//
// HTTP exposition (/metrics, /debug/spans, pprof) lives in http.go; cmd/cpnode
// and examples/distributed serve it behind a -metrics flag.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Observer bundles the registry and tracer a component reports through. A
// nil *Observer is a fully disabled observer: every instrument it hands out
// is nil and every operation on those is a no-op.
type Observer struct {
	reg *Registry
	tr  *Tracer
}

// New returns an enabled Observer with a fresh registry and a tracer
// retaining the most recent 256 spans.
func New() *Observer {
	return &Observer{reg: NewRegistry(), tr: NewTracer(256)}
}

// NewObserver bundles an existing registry and tracer; either may be nil to
// disable that half.
func NewObserver(reg *Registry, tr *Tracer) *Observer {
	return &Observer{reg: reg, tr: tr}
}

// Registry returns the observer's metric registry (nil when disabled).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the observer's span tracer (nil when disabled).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tr
}

// Counter returns the named counter, creating it if needed.
func (o *Observer) Counter(name, help string) *Counter {
	return o.Registry().Counter(name, help)
}

// CounterVec returns the named labeled counter family.
func (o *Observer) CounterVec(name, help string, labels ...string) *CounterVec {
	return o.Registry().CounterVec(name, help, labels...)
}

// Gauge returns the named gauge, creating it if needed.
func (o *Observer) Gauge(name, help string) *Gauge {
	return o.Registry().Gauge(name, help)
}

// Histogram returns the named histogram, creating it if needed (nil buckets
// selects DefBuckets).
func (o *Observer) Histogram(name, help string, buckets []float64) *Histogram {
	return o.Registry().Histogram(name, help, buckets)
}

// HistogramVec returns the named labeled histogram family (nil buckets
// selects DefBuckets).
func (o *Observer) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return o.Registry().HistogramVec(name, help, buckets, labels...)
}

// Span starts a span on the observer's tracer (nil when tracing disabled).
func (o *Observer) Span(name string, attrs ...Attr) *Span {
	return o.Tracer().Start(name, attrs...)
}

// MetricType distinguishes instrument kinds in snapshots and exposition.
type MetricType string

// Metric types.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Registry is a set of named instruments. Instrument lookups get-or-create
// under a lock; the instruments themselves update lock-free. All methods are
// safe for concurrent use, and all are no-ops on a nil *Registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, for stable iteration
}

// family is one registered metric name: either a single unlabeled
// instrument, or a Vec of labeled children.
type family struct {
	name   string
	help   string
	typ    MetricType
	labels []string // nil for unlabeled instruments

	single interface{} // *Counter / *Gauge / *Histogram when unlabeled
	vec    interface{} // *CounterVec / *GaugeVec when labeled

	buckets []float64 // histogram upper bounds
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family under name, creating it with mk on first use.
// Re-registering a name with a different type or label set panics: metric
// names are a global, documented interface and a collision is a bug.
func (r *Registry) lookup(name string, typ MetricType, labels []string, mk func() *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = mk()
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ || !equalStrings(f.labels, labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
			name, typ, labels, f.typ, f.labels))
	}
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.lookup(name, TypeCounter, nil, func() *family {
		return &family{name: name, help: help, typ: TypeCounter, single: &Counter{}}
	})
	return f.single.(*Counter)
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookup(name, TypeGauge, nil, func() *family {
		return &family{name: name, help: help, typ: TypeGauge, single: &Gauge{}}
	})
	return f.single.(*Gauge)
}

// DefBuckets are the default histogram bucket upper bounds (seconds),
// spanning microseconds to tens of seconds.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30,
}

// Histogram returns the named histogram, creating it if needed. A nil
// buckets slice selects DefBuckets. Buckets must be sorted ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.lookup(name, TypeHistogram, nil, func() *family {
		return &family{
			name: name, help: help, typ: TypeHistogram,
			buckets: buckets, single: newHistogram(buckets),
		}
	})
	return f.single.(*Histogram)
}

// CounterVec returns the named labeled counter family, creating it if
// needed.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	f := r.lookup(name, TypeCounter, labels, func() *family {
		return &family{
			name: name, help: help, typ: TypeCounter, labels: labels,
			vec: &CounterVec{labels: labels, children: make(map[string]*Counter)},
		}
	})
	return f.vec.(*CounterVec)
}

// GaugeVec returns the named labeled gauge family, creating it if needed.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	f := r.lookup(name, TypeGauge, labels, func() *family {
		return &family{
			name: name, help: help, typ: TypeGauge, labels: labels,
			vec: &GaugeVec{labels: labels, children: make(map[string]*Gauge)},
		}
	})
	return f.vec.(*GaugeVec)
}

// HistogramVec returns the named labeled histogram family, creating it if
// needed. A nil buckets slice selects DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.lookup(name, TypeHistogram, labels, func() *family {
		return &family{
			name: name, help: help, typ: TypeHistogram, labels: labels,
			buckets: buckets,
			vec: &HistogramVec{
				labels: labels, buckets: buckets,
				children: make(map[string]*Histogram),
			},
		}
	})
	return f.vec.(*HistogramVec)
}

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; a nil *Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters are
// monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down. The zero value is ready
// to use; a nil *Gauge discards all updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets (cumulative counts
// are produced at snapshot time). A nil *Histogram discards observations.
type Histogram struct {
	bounds []float64 // sorted upper bounds; implicit +Inf bucket appended
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤ ~15) and the scan is branch-
	// predictable, beating binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*Counter
	order    []string
}

// With returns the child counter for the given label values (one per label
// name, in declaration order), creating it if needed. Nil-safe.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := joinLabelValues(values)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: counter vec %v got %d label values", v.labels, len(values)))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[key]; !ok {
		c = &Counter{}
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return c
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct {
	labels   []string
	mu       sync.RWMutex
	children map[string]*Gauge
	order    []string
}

// With returns the child gauge for the given label values, creating it if
// needed. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	key := joinLabelValues(values)
	v.mu.RLock()
	g, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return g
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: gauge vec %v got %d label values", v.labels, len(values)))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok = v.children[key]; !ok {
		g = &Gauge{}
		v.children[key] = g
		v.order = append(v.order, key)
	}
	return g
}

// HistogramVec is a family of histograms distinguished by label values; all
// children share one bucket layout.
type HistogramVec struct {
	labels   []string
	buckets  []float64
	mu       sync.RWMutex
	children map[string]*Histogram
	order    []string
}

// With returns the child histogram for the given label values, creating it
// if needed. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := joinLabelValues(values)
	v.mu.RLock()
	h, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: histogram vec %v got %d label values", v.labels, len(values)))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.children[key]; !ok {
		h = newHistogram(v.buckets)
		v.children[key] = h
		v.order = append(v.order, key)
	}
	return h
}

// joinLabelValues builds the child map key. \xff cannot appear in sane label
// values; collisions would only merge children, never corrupt.
func joinLabelValues(values []string) string {
	return strings.Join(values, "\xff")
}

func splitLabelValues(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, "\xff")
}

// Label is one label name/value pair of a snapshot point.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Bucket is one cumulative histogram bucket of a snapshot point.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound (+Inf for the last).
	UpperBound float64 `json:"upper_bound"`
	// CumulativeCount counts observations ≤ UpperBound.
	CumulativeCount int64 `json:"cumulative_count"`
}

// Point is one sample of a registry snapshot: a single (name, labels)
// series with its current value.
type Point struct {
	Name   string     `json:"name"`
	Type   MetricType `json:"type"`
	Help   string     `json:"help,omitempty"`
	Labels []Label    `json:"labels,omitempty"`
	// Value is the counter or gauge value (counters as float for uniformity).
	Value float64 `json:"value"`
	// Count, Sum, and Buckets are set for histograms.
	Count   int64    `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns a stable-ordered copy of every series in the registry:
// families in name order, vec children in creation order. Nil-safe (empty).
func (r *Registry) Snapshot() []Point {
	var out []Point
	for _, f := range r.snapshotFamilies() {
		out = append(out, f.points...)
	}
	return out
}

// famSnap is one family's metadata plus its current samples. A labeled
// family with no children yet has metadata but zero points.
type famSnap struct {
	name   string
	help   string
	typ    MetricType
	points []Point
}

// snapshotFamilies returns every registered family in name order, including
// labeled families that have no children yet (so exposition can still
// advertise the series). Nil-safe (empty).
func (r *Registry) snapshotFamilies() []famSnap {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]famSnap, len(fams))
	for i, f := range fams {
		out[i] = famSnap{name: f.name, help: f.help, typ: f.typ, points: f.points()}
	}
	return out
}

// points renders one family's current samples.
func (f *family) points() []Point {
	base := Point{Name: f.name, Type: f.typ, Help: f.help}
	switch inst := f.single.(type) {
	case *Counter:
		p := base
		p.Value = float64(inst.Value())
		return []Point{p}
	case *Gauge:
		p := base
		p.Value = inst.Value()
		return []Point{p}
	case *Histogram:
		p := base
		p.Count = inst.Count()
		p.Sum = inst.Sum()
		cum := int64(0)
		for i := range inst.counts {
			cum += inst.counts[i].Load()
			ub := math.Inf(1)
			if i < len(inst.bounds) {
				ub = inst.bounds[i]
			}
			p.Buckets = append(p.Buckets, Bucket{UpperBound: ub, CumulativeCount: cum})
		}
		return []Point{p}
	}

	// Labeled family.
	var out []Point
	switch vec := f.vec.(type) {
	case *CounterVec:
		vec.mu.RLock()
		keys := append([]string(nil), vec.order...)
		vec.mu.RUnlock()
		for _, key := range keys {
			vec.mu.RLock()
			c := vec.children[key]
			vec.mu.RUnlock()
			p := base
			p.Labels = zipLabels(f.labels, splitLabelValues(key))
			p.Value = float64(c.Value())
			out = append(out, p)
		}
	case *GaugeVec:
		vec.mu.RLock()
		keys := append([]string(nil), vec.order...)
		vec.mu.RUnlock()
		for _, key := range keys {
			vec.mu.RLock()
			g := vec.children[key]
			vec.mu.RUnlock()
			p := base
			p.Labels = zipLabels(f.labels, splitLabelValues(key))
			p.Value = g.Value()
			out = append(out, p)
		}
	case *HistogramVec:
		vec.mu.RLock()
		keys := append([]string(nil), vec.order...)
		vec.mu.RUnlock()
		for _, key := range keys {
			vec.mu.RLock()
			h := vec.children[key]
			vec.mu.RUnlock()
			p := base
			p.Labels = zipLabels(f.labels, splitLabelValues(key))
			p.Count = h.Count()
			p.Sum = h.Sum()
			cum := int64(0)
			for i := range h.counts {
				cum += h.counts[i].Load()
				ub := math.Inf(1)
				if i < len(h.bounds) {
					ub = h.bounds[i]
				}
				p.Buckets = append(p.Buckets, Bucket{UpperBound: ub, CumulativeCount: cum})
			}
			out = append(out, p)
		}
	}
	return out
}

func zipLabels(names, values []string) []Label {
	out := make([]Label, len(names))
	for i := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		out[i] = Label{Name: names[i], Value: v}
	}
	return out
}
