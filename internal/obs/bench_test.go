package obs

import (
	"testing"
	"time"
)

// BenchmarkDisabledCounter measures the disabled hot path: a component
// instrumented against a nil observer pays one nil check per operation.
// The acceptance bar for this repo is < 10 ns/op; in practice it is ~1 ns.
func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDisabledHistogram(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("op")
		sp.End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("c_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	v := NewRegistry().CounterVec("v_total", "", "stage")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("network").Inc()
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("round")
		sp.End()
	}
}

// TestDisabledOverheadBudget is a coarse regression guard for the disabled
// path: 10M no-op increments must finish in well under a second even on a
// loaded CI machine (10 ns/op would be 0.1 s).
func TestDisabledOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	var c *Counter
	start := time.Now()
	for i := 0; i < 10_000_000; i++ {
		c.Inc()
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("10M disabled increments took %v, want well under 1s", d)
	}
}
