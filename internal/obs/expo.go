package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteProm writes the registry's current state in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers followed by
// one sample line per series, histograms expanded into cumulative _bucket
// series plus _sum and _count. Labeled families with no children yet still
// emit their headers, so every registered series name is advertised. Output
// order is deterministic: families sorted by name, labeled children in
// creation order. Nil-safe (writes nothing).
func (r *Registry) WriteProm(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, p := range f.points {
			if p.Type == TypeHistogram {
				if err := writeHistogram(w, p); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, formatLabels(p.Labels), formatValue(p.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, p Point) error {
	for _, b := range p.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatValue(b.UpperBound)
		}
		labels := append(append([]Label(nil), p.Labels...), Label{Name: "le", Value: le})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, formatLabels(labels), b.CumulativeCount); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, formatLabels(p.Labels), formatValue(p.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, formatLabels(p.Labels), p.Count)
	return err
}

// formatLabels renders {k="v",...}, empty for no labels.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trip float, integers without exponent.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}
