package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	o := New()
	o.Counter("consensus_rounds_total", "rounds").Add(3)
	o.Span("round", A("round", 0)).End()

	ts := httptest.NewServer(NewMux(o))
	defer ts.Close()

	body, ctype := get(t, ts.URL+"/metrics")
	if !strings.Contains(body, "consensus_rounds_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content-type = %q", ctype)
	}

	body, ctype = get(t, ts.URL+"/debug/spans?n=10")
	var spans []SpanData
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/debug/spans invalid JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "round" {
		t.Errorf("/debug/spans = %+v", spans)
	}
	if ctype != "application/json" {
		t.Errorf("/debug/spans content-type = %q", ctype)
	}

	if body, _ = get(t, ts.URL+"/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	o := New()
	srv, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := get(t, "http://"+srv.Addr()+"/metrics")
	_ = body // any response proves the server is up; registry is empty
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, url string) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	return string(b), resp.Header.Get("Content-Type")
}
