package core

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func tinySystem(t *testing.T) *System {
	t.Helper()
	cfg := sim.DefaultWorldConfig()
	cfg.Net.Rows, cfg.Net.Cols = 8, 9
	cfg.Trace.Taxis, cfg.Trace.Transit = 20, 10
	cfg.Trace.Duration = 90 * time.Minute
	cfg.Regions = 3
	cfg.EdgeServers = 9
	s, err := NewSystem(cfg, sim.MacroOptions{MaxRounds: 600})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	bad := sim.DefaultWorldConfig()
	bad.Regions = 0
	if _, err := NewSystem(bad, sim.MacroOptions{}); err == nil {
		t.Error("invalid config must error")
	}
	if _, err := NewSystemFromWorld(nil, sim.MacroOptions{}); err == nil {
		t.Error("nil world must error")
	}
}

func TestSystemAccessors(t *testing.T) {
	s := tinySystem(t)
	if s.Payoffs() == nil || s.Model() == nil {
		t.Fatal("accessors returned nil")
	}
	if s.Payoffs().K() != 8 {
		t.Errorf("K = %d", s.Payoffs().K())
	}
}

func TestDesiredFieldValidation(t *testing.T) {
	s := tinySystem(t)
	if _, _, err := s.DesiredFieldFromRatio(1.5, 0.03); err == nil {
		t.Error("ratio out of range must error")
	}
	if _, _, err := s.DesiredFieldFromRatio(0.5, 0); err == nil {
		t.Error("zero eps must error")
	}
}

func TestReachableFieldValidation(t *testing.T) {
	s := tinySystem(t)
	start, err := s.StartAt(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ReachableField(start, 0.5, 0); err == nil {
		t.Error("zero eps must error")
	}
	if _, _, err := s.ReachableField(start, 1.5, 0.05); err == nil {
		t.Error("ratio out of range must error")
	}
}

// TestFacadeShapeLoop exercises the whole facade: target field from a high
// sharing regime reached from a low-sharing start, shape, compare with the
// baseline.
func TestFacadeShapeLoop(t *testing.T) {
	s := tinySystem(t)
	start, err := s.StartAt(0.15)
	if err != nil {
		t.Fatal(err)
	}
	field, eq, err := s.ReachableField(start, 0.85, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := field.Converged(eq); !ok {
		t.Fatal("equilibrium must satisfy its own field")
	}
	res, err := s.Shape(start.Clone(), field)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shape.Converged {
		t.Fatalf("facade shape run did not converge (shortfall %f)", res.Shape.Shortfall)
	}
	if res.LowerBound > res.Shape.Rounds {
		t.Errorf("bound %d > achieved %d", res.LowerBound, res.Shape.Rounds)
	}

	base, err := s.Baseline(start.Clone(), field)
	if err != nil {
		t.Fatal(err)
	}
	if base.Converged {
		t.Error("baseline at the wrong ratio should not converge")
	}
}

func TestFacadeSubgradientBound(t *testing.T) {
	s := tinySystem(t)
	start, err := s.StartAt(0.15)
	if err != nil {
		t.Fatal(err)
	}
	field, _, err := s.ReachableField(start, 0.85, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	lb, capped, err := s.SubgradientLowerBound(start, field, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !capped && lb < 1 {
		t.Errorf("bound = %d for an unconverged start", lb)
	}
}

func TestFacadeDistributed(t *testing.T) {
	s := tinySystem(t)
	field, _, err := s.DesiredFieldFromRatio(0.8, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunDistributed(field, sim.AgentSimConfig{
		VehiclesPerRegion: 30,
		Rounds:            80,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 {
		t.Error("distributed run executed no rounds")
	}
}
