// Package core is the top-level facade of the cooperative-perception
// data-sharing library: it wires the substrate packages (road network,
// traces, clustering, game model) into the paper's policy loop and exposes
// the operations a downstream user needs — derive the payoff tables, build
// a world, construct desired decision fields, run FDS shaping or baselines,
// compute lower bounds, and launch the distributed agent simulation.
//
// The paper's S1/S2 cycle maps onto this package as:
//
//	S1 (policy optimization)  -> System.Shape / policy.FDS
//	S2 (policy implementation) -> System.RunDistributed / edge+vehicle
package core

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/optimize"
	"repro/internal/policy"
	"repro/internal/sim"
)

// System is an assembled cooperative-perception world plus its policy
// controller configuration.
type System struct {
	World *sim.World
	// Opts are the default macroscopic run options.
	Opts sim.MacroOptions
}

// NewSystem builds a system from a world configuration.
func NewSystem(cfg sim.WorldConfig, opts sim.MacroOptions) (*System, error) {
	w, err := sim.BuildWorld(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: building world: %w", err)
	}
	return &System{World: w, Opts: opts}, nil
}

// NewSystemFromWorld wraps an existing world.
func NewSystemFromWorld(w *sim.World, opts sim.MacroOptions) (*System, error) {
	if w == nil {
		return nil, fmt.Errorf("core: world must be non-nil")
	}
	return &System{World: w, Opts: opts}, nil
}

// Payoffs returns the Table II payoffs in use.
func (s *System) Payoffs() *lattice.Payoffs { return s.World.Payoffs }

// Model returns the game model.
func (s *System) Model() *game.Model { return s.World.Model }

// DesiredFieldFromRatio constructs a reachable desired decision field: the
// equilibrium distribution the population reaches at reference ratio x,
// widened by tolerance eps. This mirrors how the paper's per-condition
// fields (fog vs. sunny) correspond to concrete sharing regimes.
func (s *System) DesiredFieldFromRatio(x, eps float64) (*policy.Field, *game.State, error) {
	if x < 0 || x > 1 {
		return nil, nil, fmt.Errorf("core: reference ratio %f outside [0,1]", x)
	}
	if eps <= 0 || eps >= 1 {
		return nil, nil, fmt.Errorf("core: tolerance %f outside (0,1)", eps)
	}
	eq, err := s.World.EquilibriumAt(x, s.Opts)
	if err != nil {
		return nil, nil, err
	}
	field, err := sim.FieldFromState(eq, eps)
	if err != nil {
		return nil, nil, err
	}
	return field, eq, nil
}

// ReachableField is the experiment-grade variant of DesiredFieldFromRatio:
// it derives the target distribution by adiabatic continuation from the
// actual start state (ramping the ratio under the same Lambda constraint
// FDS obeys), so the target lies on the attractor branch reachable from
// that start. Use this to construct fields for shaping runs; the plain
// DesiredFieldFromRatio equilibrates from a uniform population and can land
// on a branch the dynamics cannot reach from an arbitrary start.
func (s *System) ReachableField(start *game.State, x, eps float64) (*policy.Field, *game.State, error) {
	if eps <= 0 || eps >= 1 {
		return nil, nil, fmt.Errorf("core: tolerance %f outside (0,1)", eps)
	}
	lambda := s.Opts.Lambda
	if lambda <= 0 {
		lambda = 0.1
	}
	eq, err := s.World.EquilibriumFrom(start, x, lambda, s.Opts)
	if err != nil {
		return nil, nil, err
	}
	field, err := sim.FieldFromState(eq, eps)
	if err != nil {
		return nil, nil, err
	}
	return field, eq, nil
}

// StartAt returns the population state after equilibrating at ratio x —
// the usual starting point of a shaping experiment.
func (s *System) StartAt(x float64) (*game.State, error) {
	return s.World.EquilibriumAt(x, s.Opts)
}

// Shape runs FDS from start toward field and returns the trajectory plus
// the analytic lower bound.
func (s *System) Shape(start *game.State, field *policy.Field) (*sim.MacroResult, error) {
	return s.World.RunFDS(start, field, s.Opts)
}

// Baseline runs the fixed-ratio baseline from start.
func (s *System) Baseline(start *game.State, field *policy.Field) (*policy.ShapeResult, error) {
	return s.World.RunFixed(start, field, s.Opts)
}

// SubgradientLowerBound solves the relaxed problem (Eq. 22) for the given
// instance. Use only for small region counts; the analytic bound in
// Shape's result covers the general case.
func (s *System) SubgradientLowerBound(start *game.State, field *policy.Field, maxRounds int) (int, bool, error) {
	lambda := s.Opts.Lambda
	if lambda <= 0 {
		lambda = 0.1
	}
	return policy.SubgradientLowerBound(s.World.Model, field, start, lambda, maxRounds, optimize.Options{})
}

// RunDistributed launches the agent-based cloud/edge/vehicle simulation
// steering toward field.
func (s *System) RunDistributed(field *policy.Field, cfg sim.AgentSimConfig) (*sim.AgentSimResult, error) {
	cfg.Field = field
	return s.World.RunAgentSim(cfg)
}
