// Package transport carries the cooperative-perception control and data
// plane of Fig. 1 between vehicles, edge servers, and the cloud: typed
// messages for steps ①-⑤, a length-prefixed JSON wire codec, an in-process
// transport for simulation, and a TCP transport for the distributed demo.
package transport

import (
	"encoding/json"
	"fmt"

	"repro/internal/sensor"
)

// Kind discriminates message payloads on the wire.
type Kind string

// Message kinds, following the numbered steps of Fig. 1.
const (
	// KindHello registers a vehicle with its edge server.
	KindHello Kind = "hello"
	// KindCensus reports a region's decision distribution to the cloud
	// (step ①).
	KindCensus Kind = "census"
	// KindRatio carries the optimized sharing ratio from the cloud to an
	// edge server (step ②).
	KindRatio Kind = "ratio"
	// KindPolicy forwards the policy to vehicles (step ③).
	KindPolicy Kind = "policy"
	// KindUpload carries a vehicle's shared sensor data to its edge server
	// (step ④).
	KindUpload Kind = "upload"
	// KindDelivery distributes collected sensor data back to a vehicle
	// (step ⑤).
	KindDelivery Kind = "delivery"
	// KindAck is a generic acknowledgement carrying an optional error.
	KindAck Kind = "ack"
)

// Message is the wire envelope.
type Message struct {
	Kind    Kind            `json:"kind"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Hello registers a vehicle with an edge server.
type Hello struct {
	Vehicle int `json:"vehicle"`
}

// Census is an edge server's per-round decision report to the cloud:
// Counts[k] vehicles currently take decision k+1.
type Census struct {
	Edge   int   `json:"edge"`
	Round  int   `json:"round"`
	Counts []int `json:"counts"`
}

// Ratio is the cloud's policy answer for one edge server.
type Ratio struct {
	Round int     `json:"round"`
	X     float64 `json:"x"`
}

// Policy is the policy forwarded from an edge server to its vehicles. In
// addition to the sharing ratio it carries the cell's anonymized decision
// distribution from the previous round, which vehicles use to evaluate the
// expected fitness of each decision (the micro-level analogue of Eq. 4).
type Policy struct {
	Round int     `json:"round"`
	X     float64 `json:"x"`
	// Shares[k] is the observed proportion of vehicles on decision k+1.
	Shares []float64 `json:"shares,omitempty"`
}

// Item is one shared sensor datum: the owning vehicle and the modality.
// Payloads are abstract (the simulation exercises the policy mechanics, not
// perception itself), identified by a sequence number.
type Item struct {
	Owner    int         `json:"owner"`
	Modality sensor.Type `json:"modality"`
	Seq      int         `json:"seq"`
}

// Upload is a vehicle's step-④ message: its decision index (1-based) and
// the items it shares under that decision.
type Upload struct {
	Vehicle  int    `json:"vehicle"`
	Round    int    `json:"round"`
	Decision int    `json:"decision"`
	Items    []Item `json:"items"`
}

// Delivery is the edge server's step-⑤ answer: the items the vehicle may
// access this exchange.
type Delivery struct {
	Round int    `json:"round"`
	Items []Item `json:"items"`
}

// Ack acknowledges a message; Err is empty on success.
type Ack struct {
	Err string `json:"err,omitempty"`
}

// Encode wraps a payload struct in a Message envelope.
func Encode(kind Kind, payload interface{}) (Message, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return Message{}, fmt.Errorf("transport: encoding %s payload: %w", kind, err)
	}
	return Message{Kind: kind, Payload: raw}, nil
}

// Decode unmarshals the payload into out, verifying the expected kind.
func Decode(m Message, kind Kind, out interface{}) error {
	if m.Kind != kind {
		return fmt.Errorf("transport: expected %s message, got %s", kind, m.Kind)
	}
	if err := json.Unmarshal(m.Payload, out); err != nil {
		return fmt.Errorf("transport: decoding %s payload: %w", kind, err)
	}
	return nil
}
