// Package transport carries the cooperative-perception control and data
// plane of Fig. 1 between vehicles, edge servers, and the cloud: typed
// messages for steps ①-⑤, a versioned pluggable wire codec (JSON and a
// compact binary format, negotiated per connection), an in-process
// transport for simulation, and a TCP transport for the distributed demo.
package transport

import (
	"encoding/json"
	"fmt"

	"repro/internal/sensor"
)

// Kind discriminates message payloads on the wire.
type Kind string

// Message kinds, following the numbered steps of Fig. 1.
const (
	// KindHello registers a vehicle with its edge server.
	KindHello Kind = "hello"
	// KindCensus reports a region's decision distribution to the cloud
	// (step ①).
	KindCensus Kind = "census"
	// KindRatio carries the optimized sharing ratio from the cloud to an
	// edge server (step ②).
	KindRatio Kind = "ratio"
	// KindPolicy forwards the policy to vehicles (step ③).
	KindPolicy Kind = "policy"
	// KindUpload carries a vehicle's shared sensor data to its edge server
	// (step ④).
	KindUpload Kind = "upload"
	// KindDelivery distributes collected sensor data back to a vehicle
	// (step ⑤).
	KindDelivery Kind = "delivery"
	// KindAck is a generic acknowledgement carrying an optional error.
	KindAck Kind = "ack"
	// KindLease renews an edge server's membership lease with the cloud
	// (answered with an Ack). Edges whose lease lapses are evicted from the
	// round-barrier quorum until they renew.
	KindLease Kind = "lease"
	// KindRatioCorrection re-announces a corrected sharing ratio after the
	// cloud's fixed-lag window rewinds and re-folds completed rounds. Edges
	// adopt corrections monotonically by Seq.
	KindRatioCorrection Kind = "ratio_correction"
	// KindCensusBatch carries many regions' censuses for one round in a
	// single frame (step ① batched): a shard coordinator forwarding its
	// region group to the aggregation tier, or an edge process multiplexing
	// several regions over one connection.
	KindCensusBatch Kind = "census_batch"
	// KindRatioBatch answers a census batch with each region's next sharing
	// ratio (step ② batched).
	KindRatioBatch Kind = "ratio_batch"
	// KindDigest is a gossip neighborhood's compacted escalation to the
	// control plane: every local consensus round the neighborhood folded
	// since its last acknowledged escalation, in round order. Answered with
	// a RatioBatch carrying the control plane's current ratios for the
	// neighborhood's members.
	KindDigest Kind = "digest"
	// KindHoodBeat is a gossip leader's liveness heartbeat to its
	// neighborhood peers (answered with an Ack). While beats for the current
	// leadership epoch keep arriving within their TTL, followers hold their
	// promotion timers; when the beats lapse every member deterministically
	// promotes the rendezvous-ring successor of the next epoch.
	KindHoodBeat Kind = "hood_beat"
)

// Message is the wire envelope. A message carries its payload in one of two
// forms: Body holds the typed struct (the fast path Encode produces — no
// serialization until a codec needs bytes), Payload holds the JSON form
// (produced by the JSON codec's decoder and by hand-crafted test frames).
// Decode accepts either.
type Message struct {
	Kind    Kind            `json:"kind"`
	Payload json.RawMessage `json:"payload,omitempty"`
	// Body is the typed payload (one of Hello, Census, Ratio, Policy,
	// Upload, Delivery, Ack — value or pointer). It is never serialized by
	// the envelope itself; codecs consume it directly.
	Body interface{} `json:"-"`
}

// Hello registers a vehicle with an edge server.
type Hello struct {
	Vehicle int `json:"vehicle"`
}

// Census is an edge server's per-round decision report to the cloud:
// Counts[k] vehicles currently take decision k+1.
type Census struct {
	Edge   int   `json:"edge"`
	Round  int   `json:"round"`
	Counts []int `json:"counts"`
}

// Ratio is the cloud's policy answer for one edge server.
type Ratio struct {
	Round int     `json:"round"`
	X     float64 `json:"x"`
}

// Policy is the policy forwarded from an edge server to its vehicles. In
// addition to the sharing ratio it carries the cell's anonymized decision
// distribution from the previous round, which vehicles use to evaluate the
// expected fitness of each decision (the micro-level analogue of Eq. 4).
type Policy struct {
	Round int     `json:"round"`
	X     float64 `json:"x"`
	// Shares[k] is the observed proportion of vehicles on decision k+1.
	Shares []float64 `json:"shares,omitempty"`
}

// Item is one shared sensor datum: the owning vehicle and the modality.
// Payloads are abstract (the simulation exercises the policy mechanics, not
// perception itself), identified by a sequence number.
type Item struct {
	Owner    int         `json:"owner"`
	Modality sensor.Type `json:"modality"`
	Seq      int         `json:"seq"`
}

// Upload is a vehicle's step-④ message: its decision index (1-based) and
// the items it shares under that decision.
type Upload struct {
	Vehicle  int    `json:"vehicle"`
	Round    int    `json:"round"`
	Decision int    `json:"decision"`
	Items    []Item `json:"items"`
}

// Delivery is the edge server's step-⑤ answer: the items the vehicle may
// access this exchange.
type Delivery struct {
	Round int    `json:"round"`
	Items []Item `json:"items"`
}

// Ack acknowledges a message; Err is empty on success.
type Ack struct {
	Err string `json:"err,omitempty"`
}

// Lease is an edge server's membership heartbeat: while renewed within
// TTLMillis, the edge counts toward the cloud's round-barrier quorum; when
// the lease lapses the cloud evicts the edge instead of waiting out the
// round deadline, and re-admits it on the next renewal.
type Lease struct {
	Edge      int   `json:"edge"`
	TTLMillis int64 `json:"ttl_ms"`
}

// RatioCorrection supersedes a previously published Ratio after a fixed-lag
// rewind: the cloud re-folded Round (and everything after it) with a late
// census, and X is the corrected current ratio for the receiving edge. Seq
// totally orders corrections; receivers must ignore any correction whose Seq
// is not greater than the last one adopted, which makes redelivery and
// reordering harmless.
type RatioCorrection struct {
	Edge  int     `json:"edge"`
	Round int     `json:"round"`
	Seq   int64   `json:"seq"`
	X     float64 `json:"x"`
}

// CensusBatch is many regions' step-① censuses in one frame, all for the
// same Round. Shard identifies the submitting coordinator (informational —
// routing is by the censuses' Edge ids). Batching collapses a region group's
// per-round uploads into one frame and one reply, the wire-level win that
// lets a connection multiplex hundreds of regions.
type CensusBatch struct {
	Shard    int      `json:"shard"`
	Round    int      `json:"round"`
	Censuses []Census `json:"censuses"`
}

// RatioBatch is the step-② answer to a CensusBatch: X[i] is the next-round
// sharing ratio for region Edges[i]. Round is the batch's round + 1,
// mirroring the single-census Ratio convention (a late batch is answered
// with the regions' current ratios under the same Round).
type RatioBatch struct {
	Round int       `json:"round"`
	Edges []int     `json:"edges"`
	X     []float64 `json:"x"`
}

// DigestRound is one locally folded gossip round inside a Digest: the full
// census set the neighborhood's fold ran over (each census carries the same
// Round) and whether the local barrier completed degraded. Replaying the
// rounds of a digest stream through the control plane's fold in order
// reproduces the neighborhood's local state bit-identically.
type DigestRound struct {
	Round    int      `json:"round"`
	Degraded bool     `json:"degraded,omitempty"`
	Censuses []Census `json:"censuses"`
}

// Digest is a gossip neighborhood's escalation frame (KindDigest): the
// neighborhood's identity within the deployment (index Neighborhood of Of,
// member regions Members) and the contiguous run of local rounds folded
// since the last acknowledged escalation. The control plane reconciles the
// rounds through its own fold — completing a round once every one of the Of
// neighborhoods has reported it — and answers with a RatioBatch of current
// ratios for Members. Digests are idempotent: a retried frame whose rounds
// were already folded is absorbed by the duplicate/late-census machinery.
type Digest struct {
	Neighborhood int           `json:"neighborhood"`
	Of           int           `json:"of"`
	Members      []int         `json:"members"`
	Rounds       []DigestRound `json:"rounds"`
}

// HoodBeat is a gossip leadership heartbeat (KindHoodBeat): Leader asserts
// it leads neighborhood Hood for leadership epoch Epoch, and promises the
// next beat within TTLMillis. Escalated is the leader's escalation
// watermark — the first local round not yet compacted into a
// cloud-acknowledged digest — which followers use to prune their own
// standby backlogs. Beats carrying an older epoch than the receiver's are
// acked but otherwise ignored; beats carrying a newer epoch demote a stale
// leader back to follower.
type HoodBeat struct {
	Hood      int   `json:"hood"`
	Epoch     int   `json:"epoch"`
	Leader    int   `json:"leader"`
	Escalated int   `json:"escalated"`
	TTLMillis int64 `json:"ttl_ms"`
}

// Encode wraps a payload struct in a Message envelope. Encoding is lazy:
// the payload is carried typed and only serialized when a wire codec needs
// bytes, so the in-process transport and the binary codec never pay a JSON
// marshal. The payload — and everything it references — must not be mutated
// after Send: receivers on the in-process transport may alias it.
func Encode(kind Kind, payload interface{}) (Message, error) {
	return Message{Kind: kind, Body: payload}, nil
}

// Decode unmarshals the payload into out, verifying the expected kind. A
// typed Body is copied directly (no serialization); a JSON Payload is
// unmarshaled.
func Decode(m Message, kind Kind, out interface{}) error {
	if m.Kind != kind {
		return fmt.Errorf("transport: expected %s message, got %s", kind, m.Kind)
	}
	if err := decodePayload(m, out); err != nil {
		return fmt.Errorf("transport: decoding %s payload: %w", kind, err)
	}
	return nil
}

// decodePayload extracts m's payload into out without a kind check: typed
// copy when Body matches out's type, JSON otherwise.
func decodePayload(m Message, out interface{}) error {
	if m.Body != nil {
		if copyTyped(m.Body, out) {
			return nil
		}
		// Mismatched typed body (e.g. hand-crafted message): round-trip
		// through JSON, preserving the old error surface.
		raw, err := json.Marshal(m.Body)
		if err != nil {
			return err
		}
		return json.Unmarshal(raw, out)
	}
	return json.Unmarshal(m.Payload, out)
}

// copyTyped copies a typed payload body into out when their types line up
// (body may be the value or a pointer). It returns false on any mismatch so
// the caller can fall back to JSON.
func copyTyped(body, out interface{}) bool {
	switch dst := out.(type) {
	case *Hello:
		switch src := body.(type) {
		case Hello:
			*dst = src
			return true
		case *Hello:
			*dst = *src
			return true
		}
	case *Census:
		switch src := body.(type) {
		case Census:
			*dst = src
			return true
		case *Census:
			*dst = *src
			return true
		}
	case *Ratio:
		switch src := body.(type) {
		case Ratio:
			*dst = src
			return true
		case *Ratio:
			*dst = *src
			return true
		}
	case *Policy:
		switch src := body.(type) {
		case Policy:
			*dst = src
			return true
		case *Policy:
			*dst = *src
			return true
		}
	case *Upload:
		switch src := body.(type) {
		case Upload:
			*dst = src
			return true
		case *Upload:
			*dst = *src
			return true
		}
	case *Delivery:
		switch src := body.(type) {
		case Delivery:
			*dst = src
			return true
		case *Delivery:
			*dst = *src
			return true
		}
	case *Ack:
		switch src := body.(type) {
		case Ack:
			*dst = src
			return true
		case *Ack:
			*dst = *src
			return true
		}
	case *Lease:
		switch src := body.(type) {
		case Lease:
			*dst = src
			return true
		case *Lease:
			*dst = *src
			return true
		}
	case *RatioCorrection:
		switch src := body.(type) {
		case RatioCorrection:
			*dst = src
			return true
		case *RatioCorrection:
			*dst = *src
			return true
		}
	case *CensusBatch:
		switch src := body.(type) {
		case CensusBatch:
			*dst = src
			return true
		case *CensusBatch:
			*dst = *src
			return true
		}
	case *RatioBatch:
		switch src := body.(type) {
		case RatioBatch:
			*dst = src
			return true
		case *RatioBatch:
			*dst = *src
			return true
		}
	case *Digest:
		switch src := body.(type) {
		case Digest:
			*dst = src
			return true
		case *Digest:
			*dst = *src
			return true
		}
	case *HoodBeat:
		switch src := body.(type) {
		case HoodBeat:
			*dst = src
			return true
		case *HoodBeat:
			*dst = *src
			return true
		}
	}
	return false
}
