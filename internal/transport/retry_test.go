package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// TestBackoffDeterministic: for a fixed seed the jittered schedule is a
// reproducible sequence, and every delay stays inside the jitter envelope of
// the capped exponential.
func TestBackoffDeterministic(t *testing.T) {
	cases := []struct {
		name string
		seed int64
		base time.Duration
		max  time.Duration
	}{
		{"defaults", 1, 0, 0},
		{"fast", 7, 2 * time.Millisecond, 50 * time.Millisecond},
		{"slow", 42, 100 * time.Millisecond, time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d1 := &Dialer{Seed: tc.seed, BaseDelay: tc.base, MaxDelay: tc.max}
			d2 := &Dialer{Seed: tc.seed, BaseDelay: tc.base, MaxDelay: tc.max}
			base, max := tc.base, tc.max
			if base <= 0 {
				base = 10 * time.Millisecond
			}
			if max <= 0 {
				max = 2 * time.Second
			}
			for a := 0; a < 12; a++ {
				b1, b2 := d1.Backoff(a), d2.Backoff(a)
				if b1 != b2 {
					t.Fatalf("attempt %d: schedules diverged, %v vs %v", a, b1, b2)
				}
				nominal := base
				for i := 0; i < a && nominal < max; i++ {
					nominal *= 2
				}
				if nominal > max {
					nominal = max
				}
				lo := time.Duration(float64(nominal) * 0.8)
				hi := time.Duration(float64(nominal) * 1.2)
				if b1 < lo || b1 > hi {
					t.Errorf("attempt %d: delay %v outside jitter envelope [%v, %v]", a, b1, lo, hi)
				}
			}
		})
	}
}

func TestBackoffNoJitterSchedule(t *testing.T) {
	d := &Dialer{BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Jitter: -1}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		100 * time.Millisecond, // capped
		100 * time.Millisecond,
	}
	for a, w := range want {
		if got := d.Backoff(a); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", a, got, w)
		}
	}
	if got := d.Backoff(-3); got != 10*time.Millisecond {
		t.Errorf("negative attempt = %v, want base delay", got)
	}
}

func TestDialRetryRecovers(t *testing.T) {
	a, _ := Pipe()
	calls := 0
	var sleeps []time.Duration
	d := &Dialer{
		Dial: func() (Conn, error) {
			calls++
			if calls < 3 {
				return nil, errors.New("connection refused")
			}
			return a, nil
		},
		Seed:  1,
		Sleep: func(t time.Duration) { sleeps = append(sleeps, t) },
	}
	c, err := d.DialRetry()
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Error("DialRetry returned the wrong conn")
	}
	if calls != 3 {
		t.Errorf("dialed %d times, want 3", calls)
	}
	if len(sleeps) != 2 {
		t.Errorf("slept %d times between attempts, want 2", len(sleeps))
	}
	// The recorded sleeps follow the dialer's own schedule.
	check := &Dialer{Seed: 1}
	for i, s := range sleeps {
		if want := check.Backoff(i); s != want {
			t.Errorf("sleep %d = %v, want %v", i, s, want)
		}
	}
}

func TestDialRetryExhausts(t *testing.T) {
	d := &Dialer{
		Dial:        func() (Conn, error) { return nil, errors.New("host down") },
		MaxAttempts: 4,
		Sleep:       func(time.Duration) {},
	}
	_, err := d.DialRetry()
	if err == nil {
		t.Fatal("exhausted dialer must error")
	}
	if !strings.Contains(err.Error(), "after 4 attempts") || !strings.Contains(err.Error(), "host down") {
		t.Errorf("error should report attempts and wrap the last failure: %v", err)
	}
	if _, err := (&Dialer{}).DialRetry(); err == nil {
		t.Error("dialer without Dial func must error")
	}
}

func TestRecvTimeoutClosesConn(t *testing.T) {
	a, b := Pipe()
	_, err := RecvTimeout(a, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("RecvTimeout = %v, want ErrTimeout", err)
	}
	// The timed-out conn is dead and must be discarded.
	m, _ := Encode(KindAck, Ack{})
	if err := a.Send(m); !errors.Is(err, ErrClosed) {
		t.Errorf("Send on timed-out conn = %v, want ErrClosed", err)
	}
	_ = b.Close()
}

func TestRecvTimeoutPassesMessages(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	want, _ := Encode(KindAck, Ack{})
	if err := b.Send(want); err != nil {
		t.Fatal(err)
	}
	if _, err := RecvTimeout(a, time.Second); err != nil {
		t.Fatalf("RecvTimeout with a queued message: %v", err)
	}
	// d <= 0 falls through to a plain blocking Recv.
	if err := b.Send(want); err != nil {
		t.Fatal(err)
	}
	if _, err := RecvTimeout(a, 0); err != nil {
		t.Fatalf("RecvTimeout(0): %v", err)
	}
}

func TestIsConnError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"eof", io.EOF, true},
		{"wrapped eof", fmt.Errorf("recv: %w", io.EOF), true},
		{"closed", ErrClosed, true},
		{"timeout", ErrTimeout, true},
		{"injected", ErrInjected, true},
		{"net closed", net.ErrClosed, true},
		{"net op error", &net.OpError{Op: "read", Err: errors.New("reset")}, true},
		{"protocol", errors.New("unexpected message kind"), false},
	}
	for _, tc := range cases {
		if got := IsConnError(tc.err); got != tc.want {
			t.Errorf("%s: IsConnError = %v, want %v", tc.name, got, tc.want)
		}
	}
}
