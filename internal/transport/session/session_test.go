package session

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/transport"
)

// pair returns wrapped ends of an in-proc pipe plus a cleanup.
func pair(t *testing.T) (*Session, *Session) {
	t.Helper()
	a, b := transport.Pipe()
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return Wrap(a), Wrap(b)
}

// serveDone runs sess.Serve on its own goroutine and returns the result
// channel.
func serveDone(sess *Session, handlers map[transport.Kind]Handler, unknown Handler) <-chan error {
	done := make(chan error, 1)
	go func() { done <- sess.Serve(handlers, unknown) }()
	return done
}

func TestAck(t *testing.T) {
	a, b := pair(t)
	go func() {
		_ = a.Ack(nil)
		_ = a.Ack(errors.New("refused"))
	}()
	for i, wantErr := range []string{"", "refused"} {
		m, err := b.Conn().Recv()
		if err != nil {
			t.Fatal(err)
		}
		var ack transport.Ack
		if err := transport.Decode(m, transport.KindAck, &ack); err != nil {
			t.Fatal(err)
		}
		if ack.Err != wantErr {
			t.Errorf("ack %d err = %q, want %q", i, ack.Err, wantErr)
		}
	}
}

func TestServeDispatchAndCleanClose(t *testing.T) {
	a, b := pair(t)
	got := make(chan transport.Ratio, 1)
	done := serveDone(b, map[transport.Kind]Handler{
		transport.KindRatio: func(m transport.Message) error {
			var r transport.Ratio
			if err := transport.Decode(m, transport.KindRatio, &r); err != nil {
				return err
			}
			got <- r
			return nil
		},
	}, nil)
	if err := a.Send(transport.KindRatio, transport.Ratio{Round: 4, X: 0.25}); err != nil {
		t.Fatal(err)
	}
	r := <-got
	if r.Round != 4 || r.X != 0.25 {
		t.Errorf("handler saw %+v", r)
	}
	_ = a.Close()
	if err := <-done; err != nil {
		t.Errorf("Serve after clean close = %v, want nil", err)
	}
}

func TestServeUnknownKindAcksAndContinues(t *testing.T) {
	a, b := pair(t)
	done := serveDone(b, nil, nil)
	if err := a.Send(transport.KindPolicy, transport.Policy{Round: 1}); err != nil {
		t.Fatal(err)
	}
	m, err := a.Conn().Recv()
	if err != nil {
		t.Fatal(err)
	}
	var ack transport.Ack
	if err := transport.Decode(m, transport.KindAck, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err == "" {
		t.Error("unknown kind must be acked with an error")
	}
	// The loop survived the unknown message.
	_ = a.Close()
	if err := <-done; err != nil {
		t.Errorf("Serve = %v, want nil", err)
	}
}

func TestServeHandlerErrorStopsLoop(t *testing.T) {
	a, b := pair(t)
	boom := errors.New("boom")
	done := serveDone(b, map[transport.Kind]Handler{
		transport.KindAck: func(transport.Message) error { return boom },
	}, nil)
	if err := a.Ack(nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, boom) {
		t.Errorf("Serve = %v, want boom", err)
	}
}

func TestRegisterAccepted(t *testing.T) {
	a, b := pair(t)
	go func() {
		hello, err := b.AcceptRegistration()
		if err != nil || hello.Vehicle != 11 {
			panic(fmt.Sprintf("accept: %+v %v", hello, err))
		}
		_ = b.Ack(nil)
	}()
	pending, err := a.Register(11, time.Second)
	if err != nil {
		t.Fatalf("Register = %v", err)
	}
	if pending != nil {
		t.Errorf("pending = %+v, want nil", pending)
	}
}

func TestRegisterRejected(t *testing.T) {
	a, b := pair(t)
	go func() {
		_, _ = b.AcceptRegistration()
		_ = b.Ack(errors.New("already registered"))
	}()
	_, err := a.Register(11, time.Second)
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("Register = %v, want RejectedError", err)
	}
	if rej.Reason != "already registered" {
		t.Errorf("reason = %q", rej.Reason)
	}
	if transport.IsConnError(err) {
		t.Error("a rejection must not classify as a connection error")
	}
}

// TestRegisterAckLostBroadcastArrives: on a lossy link the registration ack
// can vanish while the round's policy broadcast still arrives; the handshake
// must hand that message back instead of failing.
func TestRegisterAckLostBroadcastArrives(t *testing.T) {
	a, b := pair(t)
	go func() {
		_, _ = b.AcceptRegistration()
		// Ack "lost": the server goes straight to the round broadcast.
		_ = b.Send(transport.KindPolicy, transport.Policy{Round: 3, X: 0.5})
	}()
	pending, err := a.Register(11, time.Second)
	if err != nil {
		t.Fatalf("Register = %v", err)
	}
	if pending == nil || pending.Kind != transport.KindPolicy {
		t.Fatalf("pending = %+v, want policy broadcast", pending)
	}
	var pol transport.Policy
	if err := transport.Decode(*pending, transport.KindPolicy, &pol); err != nil {
		t.Fatal(err)
	}
	if pol.Round != 3 {
		t.Errorf("pending round = %d", pol.Round)
	}
}

func TestAcceptRegistrationMalformedAcksError(t *testing.T) {
	a, b := pair(t)
	go func() {
		_ = a.Send(transport.KindCensus, transport.Census{Edge: 1})
	}()
	_, err := b.AcceptRegistration()
	if err == nil {
		t.Fatal("AcceptRegistration accepted a census frame")
	}
	// The peer was told why before the error returned.
	m, recvErr := a.Conn().Recv()
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	var ack transport.Ack
	if err := transport.Decode(m, transport.KindAck, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Err == "" {
		t.Error("malformed hello must be acked with an error")
	}
}

func TestRequestSkipsStaleReplies(t *testing.T) {
	a, b := pair(t)
	go func() {
		if _, err := b.Conn().Recv(); err != nil {
			return
		}
		// A stale ratio from a previous round, then the real answer.
		_ = b.Send(transport.KindRatio, transport.Ratio{Round: 5, X: 0.1})
		_ = b.Send(transport.KindRatio, transport.Ratio{Round: 6, X: 0.9})
	}()
	x, err := ReportCensus(a.Conn(), 2, 5, []int{1, 2}, time.Second)
	if err != nil {
		t.Fatalf("ReportCensus = %v", err)
	}
	if x != 0.9 {
		t.Errorf("x = %v, want 0.9 (stale reply must be skipped)", x)
	}
}

func TestRequestRejected(t *testing.T) {
	a, b := pair(t)
	go func() {
		if _, err := b.Conn().Recv(); err != nil {
			return
		}
		_ = b.Ack(errors.New("round abandoned"))
	}()
	_, err := ReportCensus(a.Conn(), 2, 5, []int{1, 2}, time.Second)
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("ReportCensus = %v, want RejectedError", err)
	}
	if rej.Reason != "round abandoned" {
		t.Errorf("reason = %q", rej.Reason)
	}
}

func TestRequestTimeoutClosesConn(t *testing.T) {
	a, b := pair(t)
	_ = b // peer never answers
	err := a.Request(transport.KindCensus, transport.Census{}, transport.KindRatio,
		&transport.Ratio{}, 20*time.Millisecond, nil)
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("Request = %v, want ErrTimeout", err)
	}
	if !transport.IsConnError(err) {
		t.Error("timeout must classify as a connection error so callers redial")
	}
}

// TestRequestWithHandlesInterleavedFrames: the cloud can push asynchronous
// ratio-correction frames on the connection a census reply is awaited on;
// RequestWith must hand them to onOther and keep waiting instead of failing.
func TestRequestWithHandlesInterleavedFrames(t *testing.T) {
	a, b := pair(t)
	go func() {
		if _, err := b.Conn().Recv(); err != nil {
			return
		}
		_ = b.Send(transport.KindRatioCorrection, transport.RatioCorrection{Edge: 2, Round: 4, Seq: 1, X: 0.3})
		_ = b.Send(transport.KindRatio, transport.Ratio{Round: 6, X: 0.9})
	}()
	var corrected []transport.RatioCorrection
	x, err := ReportCensusWith(a.Conn(), 2, 5, []int{1, 2}, time.Second,
		func(m transport.Message) error {
			var rc transport.RatioCorrection
			if err := transport.Decode(m, transport.KindRatioCorrection, &rc); err != nil {
				return err
			}
			corrected = append(corrected, rc)
			return nil
		})
	if err != nil {
		t.Fatalf("ReportCensusWith = %v", err)
	}
	if x != 0.9 {
		t.Errorf("x = %v, want 0.9", x)
	}
	if len(corrected) != 1 || corrected[0].Seq != 1 || corrected[0].X != 0.3 {
		t.Errorf("corrections = %+v, want one with seq 1", corrected)
	}
}

// TestRequestWithoutHandlerStillStrict: a nil onOther preserves the old
// behavior — an unexpected kind fails the exchange.
func TestRequestWithoutHandlerStillStrict(t *testing.T) {
	a, b := pair(t)
	go func() {
		if _, err := b.Conn().Recv(); err != nil {
			return
		}
		_ = b.Send(transport.KindRatioCorrection, transport.RatioCorrection{Edge: 2, Round: 4, Seq: 1, X: 0.3})
	}()
	_, err := ReportCensus(a.Conn(), 2, 5, []int{1, 2}, time.Second)
	if err == nil {
		t.Fatal("ReportCensus accepted an unexpected frame kind")
	}
}

func TestRenewLeaseAckedAndRejected(t *testing.T) {
	a, b := pair(t)
	// Server side: grant the first renewal, refuse the second.
	go func() {
		for _, reject := range []bool{false, true} {
			m, err := b.Conn().Recv()
			if err != nil {
				return
			}
			var lease transport.Lease
			if err := transport.Decode(m, transport.KindLease, &lease); err != nil {
				_ = b.Ack(err)
				continue
			}
			if reject {
				_ = b.Ack(fmt.Errorf("unknown edge %d", lease.Edge))
			} else if lease.Edge != 3 || lease.TTLMillis != 250 {
				_ = b.Ack(fmt.Errorf("bad lease %+v", lease))
			} else {
				_ = b.Ack(nil)
			}
		}
	}()
	if err := RenewLease(a.Conn(), 3, 250*time.Millisecond, time.Second); err != nil {
		t.Fatalf("first renewal: %v", err)
	}
	err := RenewLease(a.Conn(), 3, 250*time.Millisecond, time.Second)
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("second renewal = %v, want *RejectedError", err)
	}
}

func TestRenewLeaseTimeoutClosesConn(t *testing.T) {
	a, _ := pair(t)
	err := RenewLease(a.Conn(), 1, time.Second, 20*time.Millisecond)
	if err == nil {
		t.Fatal("RenewLease with silent peer succeeded")
	}
	if !transport.IsConnError(err) {
		t.Fatalf("timeout error %v is not a conn error", err)
	}
}
