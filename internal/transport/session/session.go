// Package session is the shared control-plane session layer above
// transport.Conn: the hello registration handshake, ack construction, the
// kind-dispatch read loop, and typed request/reply. Cloud, edge, and
// vehicle all run their connections through it, so protocol plumbing —
// who acks what, how stale replies are skipped, what a clean close looks
// like — lives in exactly one place.
package session

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/transport"
)

// RejectedError is a peer's application-level refusal: an Ack frame with a
// non-empty error, answering a request or a registration. It is not a
// connection failure (transport.IsConnError returns false), so retry loops
// do not heal it by redialing.
type RejectedError struct {
	// Reason is the peer's error text from the Ack frame.
	Reason string
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("peer rejected request: %s", e.Reason)
}

// Session wraps a Conn with the control-plane protocol helpers. It adds no
// state beyond the conn: wrapping is free and a conn may be wrapped more
// than once.
type Session struct {
	conn transport.Conn
}

// Wrap returns the session view of conn.
func Wrap(conn transport.Conn) *Session {
	return &Session{conn: conn}
}

// Conn returns the underlying connection.
func (s *Session) Conn() transport.Conn { return s.conn }

// Close closes the underlying connection.
func (s *Session) Close() error { return s.conn.Close() }

// Send encodes payload under kind and sends it.
func (s *Session) Send(kind transport.Kind, payload interface{}) error {
	m, err := transport.Encode(kind, payload)
	if err != nil {
		return err
	}
	return s.conn.Send(m)
}

// Ack answers the last inbound message: a nil err acknowledges success,
// a non-nil err carries its text to the peer (surfacing there as a
// RejectedError where a reply was awaited).
func (s *Session) Ack(err error) error {
	ack := transport.Ack{}
	if err != nil {
		ack.Err = err.Error()
	}
	return s.Send(transport.KindAck, ack)
}

// Handler processes one inbound message. A non-nil error stops the Serve
// loop and is returned to the caller.
type Handler func(m transport.Message) error

// Serve dispatches inbound messages by kind until the connection closes or
// a handler fails. A clean close (io.EOF) returns nil; other receive
// failures are returned as-is, so transport.IsConnError classification
// still works on them. Messages with no handler go to unknown; a nil
// unknown acks an "unexpected message kind" error back and keeps serving.
func (s *Session) Serve(handlers map[transport.Kind]Handler, unknown Handler) error {
	for {
		m, err := s.conn.Recv()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		h, ok := handlers[m.Kind]
		if !ok {
			h = unknown
		}
		if h == nil {
			if err := s.Ack(fmt.Errorf("unexpected message kind %s", m.Kind)); err != nil {
				return err
			}
			continue
		}
		if err := h(m); err != nil {
			return err
		}
	}
}

// Register performs the client side of the hello handshake: send Hello,
// await the Ack. A rejection surfaces as *RejectedError. On a lossy link
// the ack can vanish while a round's broadcast still arrives (servers
// register before acking); such a message proves the session is live, so
// it is returned for the caller's main loop to process instead of failing
// the handshake. timeout bounds the ack wait (0 = forever); on expiry the
// conn is closed (see transport.RecvTimeout) and must be redialed.
func (s *Session) Register(vehicle int, timeout time.Duration) (*transport.Message, error) {
	if err := s.Send(transport.KindHello, transport.Hello{Vehicle: vehicle}); err != nil {
		return nil, fmt.Errorf("sending hello: %w", err)
	}
	m, err := transport.RecvTimeout(s.conn, timeout)
	if err != nil {
		return nil, fmt.Errorf("waiting for registration ack: %w", err)
	}
	if m.Kind != transport.KindAck {
		return &m, nil // ack lost in transit; the session is live anyway
	}
	var ack transport.Ack
	if err := transport.Decode(m, transport.KindAck, &ack); err != nil {
		return nil, err
	}
	if ack.Err != "" {
		return nil, &RejectedError{Reason: ack.Err}
	}
	return nil, nil
}

// AcceptRegistration performs the server side of the hello handshake: it
// reads the first message and decodes the Hello. A malformed first message
// is answered with an error ack before the error is returned, so the peer
// learns why the session died. The caller acks success itself — after it
// has registered the connection — via Ack(nil), preserving the
// register-before-ack ordering lossy-link clients rely on.
func (s *Session) AcceptRegistration() (transport.Hello, error) {
	m, err := s.conn.Recv()
	if err != nil {
		return transport.Hello{}, err
	}
	var hello transport.Hello
	if err := transport.Decode(m, transport.KindHello, &hello); err != nil {
		_ = s.Ack(err)
		return transport.Hello{}, err
	}
	return hello, nil
}

// Request sends payload under kind and waits for a reply of replyKind,
// decoding it into out. An Ack reply is a refusal and surfaces as
// *RejectedError. Replies of replyKind for which accept returns false are
// skipped (stale answers left over from duplicated or re-submitted
// requests); a nil accept takes the first. timeout bounds each wait (0 =
// forever); on expiry the conn is closed and must be redialed.
func (s *Session) Request(kind transport.Kind, payload interface{},
	replyKind transport.Kind, out interface{}, timeout time.Duration,
	accept func() bool) error {
	return s.RequestWith(kind, payload, replyKind, out, timeout, accept, nil)
}

// RequestWith is Request with a handler for interleaved frames: any reply
// that is neither an Ack nor of replyKind is passed to onOther (when
// non-nil) and the wait continues, instead of failing the exchange. The
// cloud pushes asynchronous frames — e.g. ratio corrections after a
// fixed-lag rewind — on the same connection a census reply is awaited on,
// so request loops must tolerate them. An onOther error aborts the request.
func (s *Session) RequestWith(kind transport.Kind, payload interface{},
	replyKind transport.Kind, out interface{}, timeout time.Duration,
	accept func() bool, onOther Handler) error {
	if err := s.Send(kind, payload); err != nil {
		return err
	}
	for {
		reply, err := transport.RecvTimeout(s.conn, timeout)
		if err != nil {
			return err
		}
		if reply.Kind == transport.KindAck {
			var ack transport.Ack
			if err := transport.Decode(reply, transport.KindAck, &ack); err != nil {
				return err
			}
			return &RejectedError{Reason: ack.Err}
		}
		if reply.Kind != replyKind && onOther != nil {
			if err := onOther(reply); err != nil {
				return err
			}
			continue
		}
		if err := transport.Decode(reply, replyKind, out); err != nil {
			return err
		}
		if accept != nil && !accept() {
			continue
		}
		return nil
	}
}

// RenewLease sends one membership-lease renewal on conn and waits for the
// cloud's ack. The heartbeat must run on a connection of its own: on a
// shared conn the ack would race with census/ratio replies (Request treats
// any Ack as a refusal). A cloud refusal — e.g. an unknown edge id —
// surfaces as *RejectedError. timeout bounds the ack wait (0 = forever);
// on expiry the conn is closed and must be redialed.
func RenewLease(conn transport.Conn, edgeID int, ttl, timeout time.Duration) error {
	s := Wrap(conn)
	if err := s.Send(transport.KindLease, transport.Lease{Edge: edgeID, TTLMillis: ttl.Milliseconds()}); err != nil {
		return fmt.Errorf("sending lease renewal: %w", err)
	}
	m, err := transport.RecvTimeout(conn, timeout)
	if err != nil {
		return fmt.Errorf("waiting for lease ack: %w", err)
	}
	var ack transport.Ack
	if err := transport.Decode(m, transport.KindAck, &ack); err != nil {
		return err
	}
	if ack.Err != "" {
		return &RejectedError{Reason: ack.Err}
	}
	return nil
}

// ReportCensus submits one round's census on conn (step ①) and waits for
// the cloud's matching next-round ratio (step ②), skipping stale replies.
// A cloud refusal surfaces as *RejectedError. It is the one census/ratio
// exchange shared by edge.Server.ReportCensus and edge.CloudLink.
func ReportCensus(conn transport.Conn, edgeID, round int, counts []int,
	replyTimeout time.Duration) (float64, error) {
	return ReportCensusWith(conn, edgeID, round, counts, replyTimeout, nil)
}

// ReportCensusBatch submits one round's censuses for a whole region group in
// a single frame (step ① batched) and waits for the matching RatioBatch
// (step ② batched), skipping stale replies from re-submitted batches. Frames
// the coordinator pushes asynchronously on the same connection — ratio
// corrections after a fixed-lag rewind — go to onOther (nil fails on them).
// A refusal surfaces as *RejectedError.
func ReportCensusBatch(conn transport.Conn, batch transport.CensusBatch,
	replyTimeout time.Duration, onOther Handler) (transport.RatioBatch, error) {
	var reply transport.RatioBatch
	err := Wrap(conn).RequestWith(
		transport.KindCensusBatch, batch,
		transport.KindRatioBatch, &reply, replyTimeout,
		func() bool {
			// Round alone is not enough: a duplicated frame (or an exchange
			// for the same round with a different census subset, e.g. a
			// shard's main batch vs a late straggler) also answers round+1.
			// The receiver echoes the request's edges in order, so the edge
			// list is the exchange's identity.
			if reply.Round != batch.Round+1 || len(reply.Edges) != len(batch.Censuses) {
				return false
			}
			for i, cs := range batch.Censuses {
				if reply.Edges[i] != cs.Edge {
					return false
				}
			}
			return true
		},
		onOther,
	)
	if err != nil {
		return transport.RatioBatch{}, err
	}
	return reply, nil
}

// GossipCensus pushes one round's census to a gossip peer on conn and waits
// for the peer's ack. Unlike ReportCensus there is no ratio reply: peers
// fold each other's censuses into their own local engines, so the exchange
// is census → ack. A peer refusal (e.g. a census for a region outside the
// neighborhood) surfaces as *RejectedError. timeout bounds the ack wait
// (0 = forever); on expiry the conn is closed and must be redialed.
func GossipCensus(conn transport.Conn, edgeID, round int, counts []int,
	timeout time.Duration) error {
	s := Wrap(conn)
	if err := s.Send(transport.KindCensus,
		transport.Census{Edge: edgeID, Round: round, Counts: counts}); err != nil {
		return fmt.Errorf("sending gossip census: %w", err)
	}
	m, err := transport.RecvTimeout(conn, timeout)
	if err != nil {
		return fmt.Errorf("waiting for gossip ack: %w", err)
	}
	var ack transport.Ack
	if err := transport.Decode(m, transport.KindAck, &ack); err != nil {
		return err
	}
	if ack.Err != "" {
		return &RejectedError{Reason: ack.Err}
	}
	return nil
}

// SendHoodBeat pushes one gossip leadership heartbeat to a neighborhood
// peer on conn and waits for the peer's ack, mirroring the lease-renewal
// exchange (beat → ack on a connection the sender owns). Receivers ack
// every well-formed beat — including stale-epoch ones, which they ignore
// after acking — so a beat refusal (*RejectedError) means the frame itself
// was malformed, not that the peer disputes the leadership. timeout bounds
// the ack wait (0 = forever); on expiry the conn is closed and must be
// redialed.
func SendHoodBeat(conn transport.Conn, beat transport.HoodBeat,
	timeout time.Duration) error {
	s := Wrap(conn)
	if err := s.Send(transport.KindHoodBeat, beat); err != nil {
		return fmt.Errorf("sending hood beat: %w", err)
	}
	m, err := transport.RecvTimeout(conn, timeout)
	if err != nil {
		return fmt.Errorf("waiting for hood-beat ack: %w", err)
	}
	var ack transport.Ack
	if err := transport.Decode(m, transport.KindAck, &ack); err != nil {
		return err
	}
	if ack.Err != "" {
		return &RejectedError{Reason: ack.Err}
	}
	return nil
}

// EscalateDigest submits a neighborhood's compacted round digest to the
// cloud control plane and waits for the matching RatioBatch reply (the
// cloud's current view of the digest members' ratios, round = the digest's
// last round + 1). Stale replies from re-submitted digests are skipped by
// the same edge-list identity rule batched censuses use. A cloud refusal
// surfaces as *RejectedError.
func EscalateDigest(conn transport.Conn, d transport.Digest,
	replyTimeout time.Duration) (transport.RatioBatch, error) {
	if len(d.Rounds) == 0 {
		return transport.RatioBatch{}, fmt.Errorf("escalating empty digest")
	}
	last := d.Rounds[len(d.Rounds)-1].Round
	var reply transport.RatioBatch
	err := Wrap(conn).Request(
		transport.KindDigest, d,
		transport.KindRatioBatch, &reply, replyTimeout,
		func() bool {
			if reply.Round != last+1 || len(reply.Edges) != len(d.Members) {
				return false
			}
			for i, e := range d.Members {
				if reply.Edges[i] != e {
					return false
				}
			}
			return true
		},
	)
	if err != nil {
		return transport.RatioBatch{}, err
	}
	return reply, nil
}

// ReportCensusWith is ReportCensus with an onOther handler for frames the
// cloud pushes asynchronously on the census connection (ratio corrections
// after a fixed-lag rewind). A nil onOther keeps the strict behavior.
func ReportCensusWith(conn transport.Conn, edgeID, round int, counts []int,
	replyTimeout time.Duration, onOther Handler) (float64, error) {
	var ratio transport.Ratio
	err := Wrap(conn).RequestWith(
		transport.KindCensus,
		transport.Census{Edge: edgeID, Round: round, Counts: counts},
		transport.KindRatio, &ratio, replyTimeout,
		func() bool { return ratio.Round == round+1 },
		onOther,
	)
	if err != nil {
		return 0, err
	}
	return ratio.X, nil
}
