package transport

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/obs"
)

// instrumented builds a fault injector with a fresh shared registry installed
// before anything is wrapped (Instrument does not carry over earlier counts)
// and returns a reader for its transport_fault_* series.
func instrumented(cfg FaultConfig) (*Fault, func(name string) int64) {
	o := obs.New()
	f := NewFault(cfg)
	f.Instrument(o)
	return f, func(name string) int64 {
		for _, p := range o.Registry().Snapshot() {
			if p.Name == name && len(p.Labels) == 0 {
				return int64(p.Value)
			}
		}
		return 0
	}
}

func ratioMsg(t *testing.T, round int) Message {
	t.Helper()
	m, err := Encode(KindRatio, Ratio{Round: round, X: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// countUntilEOF drains conn, returning how many messages arrived.
func countUntilEOF(conn Conn) int {
	n := 0
	for {
		if _, err := conn.Recv(); err != nil {
			return n
		}
		n++
	}
}

func TestFaultDropStatsConsistent(t *testing.T) {
	f, ctr := instrumented(FaultConfig{Seed: 1, DropProb: 0.3})
	a, b := Pipe()
	fa := f.WrapConn(a)

	const n = 200
	got := make(chan int, 1)
	go func() { got <- countUntilEOF(b) }()
	for i := 0; i < n; i++ {
		if err := fa.Send(ratioMsg(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fa.Close(); err != nil {
		t.Fatal(err)
	}
	received := <-got

	sent := ctr("transport_fault_sent_total")
	dropped := ctr("transport_fault_dropped_total")
	if sent != n {
		t.Errorf("transport_fault_sent_total = %d, want %d", sent, n)
	}
	if dropped == 0 || dropped == n {
		t.Errorf("transport_fault_dropped_total = %d of %d, want some but not all", dropped, n)
	}
	if want := sent - dropped; int64(received) != want {
		t.Errorf("receiver got %d messages, want sent-dropped = %d", received, want)
	}
}

func TestFaultDeterministicUnderSeed(t *testing.T) {
	series := []string{
		"transport_fault_sent_total",
		"transport_fault_dropped_total",
		"transport_fault_duplicated_total",
		"transport_fault_delayed_total",
		"transport_fault_disconnects_total",
		"transport_fault_accept_failures_total",
	}
	run := func() [6]int64 {
		f, ctr := instrumented(FaultConfig{Seed: 99, DropProb: 0.25, DupProb: 0.2})
		a, b := Pipe()
		fa := f.WrapConn(a)
		done := make(chan int, 1)
		go func() { done <- countUntilEOF(b) }()
		for i := 0; i < 150; i++ {
			if err := fa.Send(ratioMsg(t, i)); err != nil {
				t.Fatal(err)
			}
		}
		_ = fa.Close()
		<-done
		var out [6]int64
		for i, name := range series {
			out[i] = ctr(name)
		}
		return out
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("fault sequences diverged for the same seed:\n  %v\n  %v\n  (series %v)", first, second, series)
	}
}

func TestFaultDuplicates(t *testing.T) {
	f, ctr := instrumented(FaultConfig{Seed: 3, DupProb: 1})
	a, b := Pipe()
	fa := f.WrapConn(a)
	if err := fa.Send(ratioMsg(t, 1)); err != nil {
		t.Fatal(err)
	}
	_ = fa.Close()
	if got := countUntilEOF(b); got != 2 {
		t.Errorf("received %d copies, want 2", got)
	}
	if got := ctr("transport_fault_duplicated_total"); got != 1 {
		t.Errorf("transport_fault_duplicated_total = %d, want 1", got)
	}
}

func TestFaultDelayDelivers(t *testing.T) {
	f, ctr := instrumented(FaultConfig{Seed: 4, MinDelay: 20 * time.Millisecond, MaxDelay: 40 * time.Millisecond})
	a, b := Pipe()
	fa := f.WrapConn(a)
	start := time.Now()
	if err := fa.Send(ratioMsg(t, 7)); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("message arrived after %v, want >= ~20ms of injected delay", elapsed)
	}
	var r Ratio
	if err := Decode(m, KindRatio, &r); err != nil || r.Round != 7 {
		t.Errorf("delayed message corrupted: %+v, %v", r, err)
	}
	if got := ctr("transport_fault_delayed_total"); got != 1 {
		t.Errorf("transport_fault_delayed_total = %d, want 1", got)
	}
}

func TestFaultDisconnectAfter(t *testing.T) {
	f, ctr := instrumented(FaultConfig{Seed: 5, DisconnectAfter: 2})
	a, b := Pipe()
	fa := f.WrapConn(a)
	for i := 0; i < 2; i++ {
		if err := fa.Send(ratioMsg(t, i)); err != nil {
			t.Fatalf("send %d within budget: %v", i, err)
		}
	}
	if err := fa.Send(ratioMsg(t, 2)); !errors.Is(err, ErrClosed) {
		t.Errorf("send past budget = %v, want ErrClosed", err)
	}
	if _, err := fa.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("recv after trip = %v, want EOF", err)
	}
	// The peer sees the forced close after draining what got through.
	if got := countUntilEOF(b); got != 2 {
		t.Errorf("peer received %d messages, want 2", got)
	}
	if got := ctr("transport_fault_disconnects_total"); got != 1 {
		t.Errorf("transport_fault_disconnects_total = %d, want 1", got)
	}
}

func TestFaultyListenerAcceptFailure(t *testing.T) {
	f, ctr := instrumented(FaultConfig{Seed: 6, AcceptFailProb: 1})
	n := NewInprocNetwork()
	inner, err := n.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	l := f.WrapListener(inner)
	if l.Addr() != "cloud" {
		t.Errorf("Addr = %q, want passthrough", l.Addr())
	}
	dialed := make(chan Conn, 1)
	go func() {
		c, err := n.Dial("cloud")
		if err != nil {
			return
		}
		dialed <- c
	}()
	if _, err := l.Accept(); !errors.Is(err, ErrInjected) {
		t.Errorf("Accept = %v, want ErrInjected", err)
	}
	if got := ctr("transport_fault_accept_failures_total"); got != 1 {
		t.Errorf("transport_fault_accept_failures_total = %d, want 1", got)
	}
	// The rejected dialer's conn was closed server-side: its Recv sees EOF.
	select {
	case c := <-dialed:
		if _, err := c.Recv(); !errors.Is(err, io.EOF) {
			t.Errorf("rejected conn Recv = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dial did not complete")
	}
	_ = l.Close()
}
