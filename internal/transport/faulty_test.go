package transport

import (
	"errors"
	"io"
	"testing"
	"time"
)

func ratioMsg(t *testing.T, round int) Message {
	t.Helper()
	m, err := Encode(KindRatio, Ratio{Round: round, X: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// countUntilEOF drains conn, returning how many messages arrived.
func countUntilEOF(conn Conn) int {
	n := 0
	for {
		if _, err := conn.Recv(); err != nil {
			return n
		}
		n++
	}
}

func TestFaultDropStatsConsistent(t *testing.T) {
	f := NewFault(FaultConfig{Seed: 1, DropProb: 0.3})
	a, b := Pipe()
	fa := f.WrapConn(a)

	const n = 200
	got := make(chan int, 1)
	go func() { got <- countUntilEOF(b) }()
	for i := 0; i < n; i++ {
		if err := fa.Send(ratioMsg(t, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fa.Close(); err != nil {
		t.Fatal(err)
	}
	received := <-got

	st := f.Stats()
	if st.Sent != n {
		t.Errorf("Sent = %d, want %d", st.Sent, n)
	}
	if st.Dropped == 0 || st.Dropped == n {
		t.Errorf("Dropped = %d of %d, want some but not all", st.Dropped, n)
	}
	if want := st.Sent - st.Dropped; int64(received) != want {
		t.Errorf("receiver got %d messages, want Sent-Dropped = %d", received, want)
	}
}

func TestFaultDeterministicUnderSeed(t *testing.T) {
	run := func() FaultStats {
		f := NewFault(FaultConfig{Seed: 99, DropProb: 0.25, DupProb: 0.2})
		a, b := Pipe()
		fa := f.WrapConn(a)
		done := make(chan int, 1)
		go func() { done <- countUntilEOF(b) }()
		for i := 0; i < 150; i++ {
			if err := fa.Send(ratioMsg(t, i)); err != nil {
				t.Fatal(err)
			}
		}
		_ = fa.Close()
		<-done
		return f.Stats()
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("fault sequences diverged for the same seed:\n  %+v\n  %+v", first, second)
	}
}

func TestFaultDuplicates(t *testing.T) {
	f := NewFault(FaultConfig{Seed: 3, DupProb: 1})
	a, b := Pipe()
	fa := f.WrapConn(a)
	if err := fa.Send(ratioMsg(t, 1)); err != nil {
		t.Fatal(err)
	}
	_ = fa.Close()
	if got := countUntilEOF(b); got != 2 {
		t.Errorf("received %d copies, want 2", got)
	}
	if st := f.Stats(); st.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", st.Duplicated)
	}
}

func TestFaultDelayDelivers(t *testing.T) {
	f := NewFault(FaultConfig{Seed: 4, MinDelay: 20 * time.Millisecond, MaxDelay: 40 * time.Millisecond})
	a, b := Pipe()
	fa := f.WrapConn(a)
	start := time.Now()
	if err := fa.Send(ratioMsg(t, 7)); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("message arrived after %v, want >= ~20ms of injected delay", elapsed)
	}
	var r Ratio
	if err := Decode(m, KindRatio, &r); err != nil || r.Round != 7 {
		t.Errorf("delayed message corrupted: %+v, %v", r, err)
	}
	if st := f.Stats(); st.Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", st.Delayed)
	}
}

func TestFaultDisconnectAfter(t *testing.T) {
	f := NewFault(FaultConfig{Seed: 5, DisconnectAfter: 2})
	a, b := Pipe()
	fa := f.WrapConn(a)
	for i := 0; i < 2; i++ {
		if err := fa.Send(ratioMsg(t, i)); err != nil {
			t.Fatalf("send %d within budget: %v", i, err)
		}
	}
	if err := fa.Send(ratioMsg(t, 2)); !errors.Is(err, ErrClosed) {
		t.Errorf("send past budget = %v, want ErrClosed", err)
	}
	if _, err := fa.Recv(); !errors.Is(err, io.EOF) {
		t.Errorf("recv after trip = %v, want EOF", err)
	}
	// The peer sees the forced close after draining what got through.
	if got := countUntilEOF(b); got != 2 {
		t.Errorf("peer received %d messages, want 2", got)
	}
	if st := f.Stats(); st.Disconnects != 1 {
		t.Errorf("Disconnects = %d, want 1", st.Disconnects)
	}
}

func TestFaultyListenerAcceptFailure(t *testing.T) {
	f := NewFault(FaultConfig{Seed: 6, AcceptFailProb: 1})
	n := NewInprocNetwork()
	inner, err := n.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	l := f.WrapListener(inner)
	if l.Addr() != "cloud" {
		t.Errorf("Addr = %q, want passthrough", l.Addr())
	}
	dialed := make(chan Conn, 1)
	go func() {
		c, err := n.Dial("cloud")
		if err != nil {
			return
		}
		dialed <- c
	}()
	if _, err := l.Accept(); !errors.Is(err, ErrInjected) {
		t.Errorf("Accept = %v, want ErrInjected", err)
	}
	if st := f.Stats(); st.AcceptFailures != 1 {
		t.Errorf("AcceptFailures = %d, want 1", st.AcceptFailures)
	}
	// The rejected dialer's conn was closed server-side: its Recv sees EOF.
	select {
	case c := <-dialed:
		if _, err := c.Recv(); !errors.Is(err, io.EOF) {
			t.Errorf("rejected conn Recv = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dial did not complete")
	}
	_ = l.Close()
}
