package transport

import (
	"errors"
	"io"
	"net"
	"time"
)

// Accept-loop backoff bounds: the first non-injected transient failure
// retries after acceptBackoffMin, doubling up to acceptBackoffMax.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = time.Second
)

// AcceptLoop runs l.Accept until the listener is torn down, handing every
// connection to handle (which must not block; spawn per-connection work in
// a goroutine). Injected fault failures retry immediately; any other
// transient error retries with bounded exponential backoff, so one bad
// accept — a transient EMFILE, a half-open TCP reset — cannot permanently
// kill a server's accept loop. The loop returns only on listener teardown
// (ErrClosed, net.ErrClosed, io.EOF) or when stop closes; stop may be nil.
func AcceptLoop(l Listener, stop <-chan struct{}, handle func(Conn)) {
	var backoff time.Duration
	for {
		conn, err := l.Accept()
		if err == nil {
			backoff = 0
			handle(conn)
			continue
		}
		if errors.Is(err, ErrClosed) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
			return
		}
		if errors.Is(err, ErrInjected) {
			continue
		}
		if backoff == 0 {
			backoff = acceptBackoffMin
		} else if backoff < acceptBackoffMax {
			backoff *= 2
		}
		t := time.NewTimer(backoff)
		select {
		case <-stop:
			t.Stop()
			return
		case <-t.C:
		}
	}
}
