package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Conn is a bidirectional, message-oriented connection.
type Conn interface {
	// Send writes one message. Safe for one concurrent sender.
	Send(Message) error
	// Recv blocks for the next message; it returns io.EOF after the peer
	// closes.
	Recv() (Message, error)
	// Close releases the connection; pending Recv calls unblock with
	// io.EOF.
	Close() error
}

// Listener accepts incoming connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the address peers dial.
	Addr() string
}

// ErrClosed is returned by operations on a closed transport endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// MaxFrameBytes bounds a single wire frame (1 MiB), protecting both ends
// from corrupt length prefixes.
const MaxFrameBytes = 1 << 20

// --- In-process transport ---

// chanConn is one side of an in-memory duplex channel pair.
type chanConn struct {
	send chan<- Message
	recv <-chan Message

	closed chan struct{}
	once   sync.Once
	peer   *chanConn
}

// Pipe returns two connected in-process Conns. Each side's Send delivers to
// the other's Recv with a small buffer; Close unblocks both sides.
func Pipe() (Conn, Conn) {
	ab := make(chan Message, 64)
	ba := make(chan Message, 64)
	a := &chanConn{send: ab, recv: ba, closed: make(chan struct{})}
	b := &chanConn{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *chanConn) Send(m Message) error {
	// Check closure first: a ready buffered channel would otherwise race
	// the closed cases in a combined select.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	case c.send <- m:
		return nil
	}
}

func (c *chanConn) Recv() (Message, error) {
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.closed:
		// Drain anything already queued before reporting EOF.
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return Message{}, io.EOF
		}
	case <-c.peer.closed:
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return Message{}, io.EOF
		}
	}
}

func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// InprocNetwork is a registry of in-process listeners addressable by name,
// so the same cloud/edge/vehicle code runs unchanged over channels or TCP.
type InprocNetwork struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

// NewInprocNetwork returns an empty network.
func NewInprocNetwork() *InprocNetwork {
	return &InprocNetwork{listeners: make(map[string]*inprocListener)}
}

type inprocListener struct {
	name string
	net  *InprocNetwork
	backlog
}

type backlog struct {
	queue  chan Conn
	closed chan struct{}
	once   sync.Once
}

// Listen registers a named endpoint.
func (n *InprocNetwork) Listen(name string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[name]; exists {
		return nil, fmt.Errorf("transport: inproc address %q already in use", name)
	}
	l := &inprocListener{
		name: name,
		net:  n,
		backlog: backlog{
			queue:  make(chan Conn, 64),
			closed: make(chan struct{}),
		},
	}
	n.listeners[name] = l
	return l, nil
}

// Dial connects to a named endpoint.
func (n *InprocNetwork) Dial(name string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[name]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no inproc listener at %q", name)
	}
	client, server := Pipe()
	select {
	case <-l.closed:
		return nil, ErrClosed
	case l.queue <- server:
		return client, nil
	}
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.queue:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		delete(l.net.listeners, l.name)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.name }

// --- TCP transport ---

// tcpConn frames messages as a 4-byte big-endian length followed by the
// JSON-encoded envelope.
type tcpConn struct {
	c       net.Conn
	timeout time.Duration
	wr      sync.Mutex
	rd      sync.Mutex
	closed  chan struct{}
	once    sync.Once
}

// TCPOption configures a tcpConn.
type TCPOption func(*tcpConn)

// WithTimeout sets a per-operation read/write deadline, so a stalled peer
// cannot wedge Send or Recv forever: each Send arms a write deadline and
// each Recv a read deadline of d. Expiry surfaces as an error wrapping
// ErrTimeout. Zero keeps blocking semantics.
func WithTimeout(d time.Duration) TCPOption {
	return func(t *tcpConn) { t.timeout = d }
}

// NewTCPConn wraps an established net.Conn in the framing codec.
func NewTCPConn(c net.Conn, opts ...TCPOption) Conn {
	t := &tcpConn{c: c, closed: make(chan struct{})}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// DialTCP connects to a TCP endpoint.
func DialTCP(addr string, opts ...TCPOption) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	return NewTCPConn(c, opts...), nil
}

// opErr maps a raw net.Conn failure to the transport's error vocabulary:
// operations on a conn we closed ourselves report ErrClosed (io.EOF for
// reads), and deadline expiries wrap ErrTimeout.
func (t *tcpConn) opErr(op string, err error) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("transport: %s deadline exceeded: %w", op, ErrTimeout)
	}
	return fmt.Errorf("transport: %s: %w", op, err)
}

func (t *tcpConn) Send(m Message) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("transport: marshaling message: %w", err)
	}
	if len(raw) > MaxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(raw), MaxFrameBytes)
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(raw)))
	t.wr.Lock()
	defer t.wr.Unlock()
	if t.timeout > 0 {
		_ = t.c.SetWriteDeadline(time.Now().Add(t.timeout))
	}
	if _, err := t.c.Write(header[:]); err != nil {
		return t.opErr("writing frame header", err)
	}
	if _, err := t.c.Write(raw); err != nil {
		return t.opErr("writing frame body", err)
	}
	return nil
}

func (t *tcpConn) Recv() (Message, error) {
	t.rd.Lock()
	defer t.rd.Unlock()
	if t.timeout > 0 {
		_ = t.c.SetReadDeadline(time.Now().Add(t.timeout))
	}
	var header [4]byte
	if _, err := io.ReadFull(t.c, header[:]); err != nil {
		select {
		case <-t.closed:
			// Our own Close unblocked the read: report a clean EOF.
			return Message{}, io.EOF
		default:
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return Message{}, io.EOF
		}
		return Message{}, t.opErr("reading frame header", err)
	}
	size := binary.BigEndian.Uint32(header[:])
	if size > MaxFrameBytes {
		return Message{}, fmt.Errorf("transport: incoming frame of %d bytes exceeds limit %d", size, MaxFrameBytes)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(t.c, body); err != nil {
		select {
		case <-t.closed:
			return Message{}, io.EOF
		default:
		}
		return Message{}, t.opErr("reading frame body", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return Message{}, fmt.Errorf("transport: unmarshaling message: %w", err)
	}
	return m, nil
}

// Close releases the connection; an in-flight Recv unblocks with io.EOF.
func (t *tcpConn) Close() error {
	t.once.Do(func() { close(t.closed) })
	return t.c.Close()
}

// tcpListener adapts net.Listener.
type tcpListener struct{ l net.Listener }

// ListenTCP opens a TCP listener on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewTCPConn(c), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }
