package transport

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Conn is a bidirectional, message-oriented connection.
type Conn interface {
	// Send writes one message. Safe for one concurrent sender.
	Send(Message) error
	// Recv blocks for the next message; it returns io.EOF after the peer
	// closes.
	Recv() (Message, error)
	// Close releases the connection; pending Recv calls unblock with
	// io.EOF.
	Close() error
}

// Listener accepts incoming connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the address peers dial.
	Addr() string
}

// ErrClosed is returned by operations on a closed transport endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// MaxFrameBytes bounds a single wire frame (1 MiB), protecting both ends
// from corrupt length prefixes.
const MaxFrameBytes = 1 << 20

// --- In-process transport ---

// chanConn is one side of an in-memory duplex channel pair.
type chanConn struct {
	send chan<- Message
	recv <-chan Message

	closed chan struct{}
	once   sync.Once
	peer   *chanConn
}

// Pipe returns two connected in-process Conns. Each side's Send delivers to
// the other's Recv with a small buffer; Close unblocks both sides.
func Pipe() (Conn, Conn) {
	ab := make(chan Message, 64)
	ba := make(chan Message, 64)
	a := &chanConn{send: ab, recv: ba, closed: make(chan struct{})}
	b := &chanConn{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *chanConn) Send(m Message) error {
	// Check closure first: a ready buffered channel would otherwise race
	// the closed cases in a combined select.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	case c.send <- m:
		return nil
	}
}

func (c *chanConn) Recv() (Message, error) {
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.closed:
		// Drain anything already queued before reporting EOF.
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return Message{}, io.EOF
		}
	case <-c.peer.closed:
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return Message{}, io.EOF
		}
	}
}

func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// InprocNetwork is a registry of in-process listeners addressable by name,
// so the same cloud/edge/vehicle code runs unchanged over channels or TCP.
type InprocNetwork struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

// NewInprocNetwork returns an empty network.
func NewInprocNetwork() *InprocNetwork {
	return &InprocNetwork{listeners: make(map[string]*inprocListener)}
}

type inprocListener struct {
	name string
	net  *InprocNetwork
	backlog
}

type backlog struct {
	queue  chan Conn
	closed chan struct{}
	once   sync.Once
}

// Listen registers a named endpoint.
func (n *InprocNetwork) Listen(name string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[name]; exists {
		return nil, fmt.Errorf("transport: inproc address %q already in use", name)
	}
	l := &inprocListener{
		name: name,
		net:  n,
		backlog: backlog{
			queue:  make(chan Conn, 64),
			closed: make(chan struct{}),
		},
	}
	n.listeners[name] = l
	return l, nil
}

// Dial connects to a named endpoint.
func (n *InprocNetwork) Dial(name string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[name]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no inproc listener at %q", name)
	}
	client, server := Pipe()
	select {
	case <-l.closed:
		return nil, ErrClosed
	case l.queue <- server:
		return client, nil
	}
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.queue:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		delete(l.net.listeners, l.name)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.name }

// --- TCP transport ---

// tcpConn frames messages as a 4-byte big-endian length followed by the
// JSON-encoded envelope.
type tcpConn struct {
	c  net.Conn
	wr sync.Mutex
	rd sync.Mutex
}

// NewTCPConn wraps an established net.Conn in the framing codec.
func NewTCPConn(c net.Conn) Conn { return &tcpConn{c: c} }

// DialTCP connects to a TCP endpoint.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	return NewTCPConn(c), nil
}

func (t *tcpConn) Send(m Message) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("transport: marshaling message: %w", err)
	}
	if len(raw) > MaxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit %d", len(raw), MaxFrameBytes)
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(raw)))
	t.wr.Lock()
	defer t.wr.Unlock()
	if _, err := t.c.Write(header[:]); err != nil {
		return fmt.Errorf("transport: writing frame header: %w", err)
	}
	if _, err := t.c.Write(raw); err != nil {
		return fmt.Errorf("transport: writing frame body: %w", err)
	}
	return nil
}

func (t *tcpConn) Recv() (Message, error) {
	t.rd.Lock()
	defer t.rd.Unlock()
	var header [4]byte
	if _, err := io.ReadFull(t.c, header[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Message{}, io.EOF
		}
		return Message{}, err
	}
	size := binary.BigEndian.Uint32(header[:])
	if size > MaxFrameBytes {
		return Message{}, fmt.Errorf("transport: incoming frame of %d bytes exceeds limit %d", size, MaxFrameBytes)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(t.c, body); err != nil {
		return Message{}, fmt.Errorf("transport: reading frame body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return Message{}, fmt.Errorf("transport: unmarshaling message: %w", err)
	}
	return m, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }

// tcpListener adapts net.Listener.
type tcpListener struct{ l net.Listener }

// ListenTCP opens a TCP listener on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewTCPConn(c), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }
