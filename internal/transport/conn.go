package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Conn is a bidirectional, message-oriented connection.
type Conn interface {
	// Send writes one message. Safe for one concurrent sender.
	Send(Message) error
	// Recv blocks for the next message; it returns io.EOF after the peer
	// closes.
	Recv() (Message, error)
	// Close releases the connection; pending Recv calls unblock with
	// io.EOF.
	Close() error
}

// Listener accepts incoming connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr returns the address peers dial.
	Addr() string
}

// ErrClosed is returned by operations on a closed transport endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// MaxFrameBytes bounds a single wire frame (1 MiB), protecting both ends
// from corrupt length prefixes.
const MaxFrameBytes = 1 << 20

// codecNamer is implemented by conns that know their wire codec; see
// CodecOf.
type codecNamer interface{ codecName() string }

// CodecOf reports the wire codec a Conn speaks: the negotiated codec name
// for TCP conns (running the handshake if it has not happened yet), the
// pipe's codec for codec pipes, "inproc" for typed in-process conns, and ""
// when the codec is unknown (foreign Conn implementations, failed
// negotiation).
func CodecOf(c Conn) string {
	if cn, ok := c.(codecNamer); ok {
		return cn.codecName()
	}
	return ""
}

// --- In-process transport ---

// chanConn is one side of an in-memory duplex channel pair.
type chanConn struct {
	send chan<- Message
	recv <-chan Message

	closed chan struct{}
	once   sync.Once
	peer   *chanConn
}

// Pipe returns two connected in-process Conns. Each side's Send delivers to
// the other's Recv with a small buffer; Close unblocks both sides. Messages
// cross typed (no serialization); use CodecPipe to exercise a wire codec
// in-process.
func Pipe() (Conn, Conn) {
	ab := make(chan Message, 64)
	ba := make(chan Message, 64)
	a := &chanConn{send: ab, recv: ba, closed: make(chan struct{})}
	b := &chanConn{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *chanConn) codecName() string { return "inproc" }

func (c *chanConn) Send(m Message) error {
	// Check closure first: a ready buffered channel would otherwise race
	// the closed cases in a combined select.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	case c.send <- m:
		return nil
	}
}

func (c *chanConn) Recv() (Message, error) {
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.closed:
		// Drain anything already queued before reporting EOF.
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return Message{}, io.EOF
		}
	case <-c.peer.closed:
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return Message{}, io.EOF
		}
	}
}

func (c *chanConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// codecConn is one side of an in-memory duplex pair whose messages cross as
// encoded wire frames, so the in-process transport exercises the same codec
// path (and the same decode hardening) as TCP.
type codecConn struct {
	codec Codec
	send  chan<- []byte
	recv  <-chan []byte

	closed chan struct{}
	once   sync.Once
	peer   *codecConn
}

// CodecPipe returns two connected in-process Conns that serialize every
// message through codec — byte-for-byte the TCP wire format minus the
// length prefix. Oversized frames are rejected with ErrFrameTooLarge just
// like the TCP transport.
func CodecPipe(codec Codec) (Conn, Conn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	a := &codecConn{codec: codec, send: ab, recv: ba, closed: make(chan struct{})}
	b := &codecConn{codec: codec, send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (c *codecConn) codecName() string { return c.codec.Name() }

func (c *codecConn) Send(m Message) error {
	frame, err := encodeFrame(c.codec, m)
	if err != nil {
		return err
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	case c.send <- frame:
		return nil
	}
}

func (c *codecConn) Recv() (Message, error) {
	var frame []byte
	select {
	case frame = <-c.recv:
	case <-c.closed:
		select {
		case frame = <-c.recv:
		default:
			return Message{}, io.EOF
		}
	case <-c.peer.closed:
		select {
		case frame = <-c.recv:
		default:
			return Message{}, io.EOF
		}
	}
	m, err := decodeFrame(c.codec, frame)
	if wm := wireMetrics(); wm != nil && err == nil {
		wm.bytesRecv.With(c.codec.Name()).Add(int64(len(frame)))
	}
	return m, err
}

func (c *codecConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

// encodeFrame runs one codec encode with instrumentation and the shared
// frame-size check.
func encodeFrame(codec Codec, m Message) ([]byte, error) {
	var (
		frame []byte
		err   error
	)
	if wm := wireMetrics(); wm != nil {
		start := time.Now()
		frame, err = codec.AppendEncode(nil, m)
		wm.encodeSeconds.With(codec.Name()).Observe(time.Since(start).Seconds())
		if err == nil {
			wm.bytesSent.With(codec.Name()).Add(int64(len(frame)))
		}
	} else {
		frame, err = codec.AppendEncode(nil, m)
	}
	if err != nil {
		return nil, err
	}
	if len(frame) > MaxFrameBytes {
		return nil, fmt.Errorf("transport: outgoing frame of %d bytes exceeds limit %d: %w",
			len(frame), MaxFrameBytes, ErrFrameTooLarge)
	}
	return frame, nil
}

// decodeFrame runs one codec decode with instrumentation.
func decodeFrame(codec Codec, frame []byte) (Message, error) {
	if wm := wireMetrics(); wm != nil {
		start := time.Now()
		m, err := codec.Decode(frame)
		wm.decodeSeconds.With(codec.Name()).Observe(time.Since(start).Seconds())
		return m, err
	}
	return codec.Decode(frame)
}

// InprocNetwork is a registry of in-process listeners addressable by name,
// so the same cloud/edge/vehicle code runs unchanged over channels or TCP.
type InprocNetwork struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
	codec     Codec // nil: typed pipes (no serialization)
}

// NewInprocNetwork returns an empty network.
func NewInprocNetwork() *InprocNetwork {
	return &InprocNetwork{listeners: make(map[string]*inprocListener)}
}

// SetCodec makes every subsequently dialed connection serialize its
// messages through codec (see CodecPipe), so an in-process run exercises
// the real wire format. Nil restores typed pipes.
func (n *InprocNetwork) SetCodec(codec Codec) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.codec = codec
}

type inprocListener struct {
	name string
	net  *InprocNetwork
	backlog
}

type backlog struct {
	queue  chan Conn
	closed chan struct{}
	once   sync.Once
}

// Listen registers a named endpoint.
func (n *InprocNetwork) Listen(name string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[name]; exists {
		return nil, fmt.Errorf("transport: inproc address %q already in use", name)
	}
	l := &inprocListener{
		name: name,
		net:  n,
		backlog: backlog{
			queue:  make(chan Conn, 64),
			closed: make(chan struct{}),
		},
	}
	n.listeners[name] = l
	return l, nil
}

// Dial connects to a named endpoint.
func (n *InprocNetwork) Dial(name string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[name]
	codec := n.codec
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no inproc listener at %q", name)
	}
	var client, server Conn
	if codec != nil {
		client, server = CodecPipe(codec)
	} else {
		client, server = Pipe()
	}
	select {
	case <-l.closed:
		return nil, ErrClosed
	case l.queue <- server:
		return client, nil
	}
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.queue:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		delete(l.net.listeners, l.name)
		l.net.mu.Unlock()
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.name }

// --- TCP transport ---

// framePool recycles frame buffers across Send and Recv calls on every TCP
// conn, so the steady-state hot path allocates nothing for framing.
var framePool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// tcpConn frames messages as a 4-byte big-endian length followed by the
// negotiated codec's encoding. The first bytes on the wire are a version
// negotiation (see negotiate); frame buffers come from a shared pool.
type tcpConn struct {
	c       net.Conn
	timeout time.Duration
	pref    Codec // preferred (maximum) codec; nil = JSON
	dialer  bool  // dialing side proposes, accepting side answers

	hs    sync.Once
	hsErr error
	codec Codec
	pre   []byte // bytes sniffed during negotiation, replayed to Recv

	wr     sync.Mutex
	rd     sync.Mutex
	closed chan struct{}
	once   sync.Once
}

// TCPOption configures a tcpConn.
type TCPOption func(*tcpConn)

// WithTimeout sets a per-operation read/write deadline, so a stalled peer
// cannot wedge Send or Recv forever: each Send arms a write deadline and
// each Recv a read deadline of d. Expiry surfaces as an error wrapping
// ErrTimeout. Zero keeps blocking semantics.
func WithTimeout(d time.Duration) TCPOption {
	return func(t *tcpConn) { t.timeout = d }
}

// WithCodec sets the wire codec a dialed connection declares (default
// JSON). Accepted conns ignore it: the accepting side adopts whatever
// version the dialer declared, so mixed-codec deployments interoperate
// regardless of either side's default.
func WithCodec(c Codec) TCPOption {
	return func(t *tcpConn) { t.pref = c }
}

// NewTCPConn wraps an established net.Conn in the framing codec, in the
// accepting (server) role of version negotiation. Dialed conns come from
// DialTCP, which takes the proposing role.
func NewTCPConn(c net.Conn, opts ...TCPOption) Conn {
	t := &tcpConn{c: c, pref: JSON, closed: make(chan struct{})}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// DialTCP connects to a TCP endpoint.
func DialTCP(addr string, opts ...TCPOption) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dialing %s: %w", addr, err)
	}
	t := NewTCPConn(c, opts...).(*tcpConn)
	t.dialer = true
	return t, nil
}

// codecName reports the negotiated codec, forcing the handshake.
func (t *tcpConn) codecName() string {
	if err := t.handshake(); err != nil {
		return ""
	}
	return t.codec.Name()
}

// handshake runs version negotiation exactly once; every Send and Recv
// funnels through it.
func (t *tcpConn) handshake() error {
	t.hs.Do(func() { t.hsErr = t.negotiate() })
	return t.hsErr
}

// negotiate settles the connection's codec. The dialing side declares its
// codec by writing [magic, version] ahead of its first frame and proceeds
// immediately (no reply round-trip, so negotiation never deadlocks a
// half-duplex exchange); the accepting side reads the declaration and
// adopts the version, failing with ErrCodecVersion on one it does not
// implement. A first byte that is not the magic marks a legacy peer that
// sends JSON frames with no preamble: the acceptor falls back to JSON and
// replays the sniffed byte into the first frame's header (a legacy length
// prefix for a frame ≤ MaxFrameBytes always starts 0x00, so the magic can
// never be mistaken for one).
func (t *tcpConn) negotiate() error {
	if t.timeout > 0 {
		deadline := time.Now().Add(t.timeout)
		_ = t.c.SetWriteDeadline(deadline)
		_ = t.c.SetReadDeadline(deadline)
	}
	if t.dialer {
		pref := t.pref
		if pref == nil {
			pref = JSON
		}
		if _, err := t.c.Write([]byte{codecMagic, pref.Version()}); err != nil {
			return t.opErr("codec negotiation", err)
		}
		t.codec = pref
		return nil
	}
	var first [1]byte
	if _, err := io.ReadFull(t.c, first[:]); err != nil {
		return t.headerErr("codec negotiation", err)
	}
	if first[0] != codecMagic {
		// Legacy peer: no declaration, frames are JSON v1 and the sniffed
		// byte is the first header byte.
		t.codec = JSON
		t.pre = []byte{first[0]}
		return nil
	}
	var declared [1]byte
	if _, err := io.ReadFull(t.c, declared[:]); err != nil {
		return t.headerErr("codec negotiation", err)
	}
	codec, ok := codecByVersion(declared[0])
	if !ok {
		return fmt.Errorf("%w: peer declared version %d", ErrCodecVersion, declared[0])
	}
	t.codec = codec
	return nil
}

// opErr maps a raw net.Conn failure to the transport's error vocabulary:
// operations on a conn we closed ourselves report ErrClosed (io.EOF for
// reads), and deadline expiries wrap ErrTimeout.
func (t *tcpConn) opErr(op string, err error) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("transport: %s deadline exceeded: %w", op, ErrTimeout)
	}
	return fmt.Errorf("transport: %s: %w", op, err)
}

// headerErr maps read failures at a frame boundary: our own Close and a
// peer that hung up cleanly both surface as io.EOF (session teardown, not
// an error).
func (t *tcpConn) headerErr(op string, err error) error {
	select {
	case <-t.closed:
		return io.EOF
	default:
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return io.EOF
	}
	return t.opErr(op, err)
}

// readFull fills p, draining bytes sniffed during negotiation first.
// Callers hold t.rd.
func (t *tcpConn) readFull(p []byte) error {
	for len(t.pre) > 0 && len(p) > 0 {
		p[0] = t.pre[0]
		t.pre = t.pre[1:]
		p = p[1:]
	}
	if len(p) == 0 {
		return nil
	}
	_, err := io.ReadFull(t.c, p)
	return err
}

func (t *tcpConn) Send(m Message) error {
	if err := t.handshake(); err != nil {
		if err == io.EOF {
			return fmt.Errorf("transport: %w", ErrClosed)
		}
		return err
	}
	wm := wireMetrics()
	bufp := framePool.Get().(*[]byte)
	buf := append((*bufp)[:0], 0, 0, 0, 0) // length prefix placeholder
	var err error
	if wm != nil {
		start := time.Now()
		buf, err = t.codec.AppendEncode(buf, m)
		wm.encodeSeconds.With(t.codec.Name()).Observe(time.Since(start).Seconds())
	} else {
		buf, err = t.codec.AppendEncode(buf, m)
	}
	if err != nil {
		framePool.Put(bufp)
		return err
	}
	// Frame-size check and header fixup happen before the write lock, so a
	// rejected frame never serializes behind a slow peer.
	body := len(buf) - 4
	if body > MaxFrameBytes {
		*bufp = buf
		framePool.Put(bufp)
		return fmt.Errorf("transport: outgoing frame of %d bytes exceeds limit %d: %w",
			body, MaxFrameBytes, ErrFrameTooLarge)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(body))
	t.wr.Lock()
	if t.timeout > 0 {
		_ = t.c.SetWriteDeadline(time.Now().Add(t.timeout))
	}
	_, werr := t.c.Write(buf) // header + body in one write
	t.wr.Unlock()
	*bufp = buf
	framePool.Put(bufp)
	if werr != nil {
		return t.opErr("writing frame", werr)
	}
	if wm != nil {
		wm.bytesSent.With(t.codec.Name()).Add(int64(body) + 4)
	}
	return nil
}

func (t *tcpConn) Recv() (Message, error) {
	t.rd.Lock()
	defer t.rd.Unlock()
	if err := t.handshake(); err != nil {
		return Message{}, err
	}
	if t.timeout > 0 {
		_ = t.c.SetReadDeadline(time.Now().Add(t.timeout))
	}
	var header [4]byte
	if err := t.readFull(header[:]); err != nil {
		return Message{}, t.headerErr("reading frame header", err)
	}
	size := int(binary.BigEndian.Uint32(header[:]))
	if size > MaxFrameBytes {
		return Message{}, fmt.Errorf("transport: incoming frame of %d bytes exceeds limit %d: %w",
			size, MaxFrameBytes, ErrFrameTooLarge)
	}
	bufp := framePool.Get().(*[]byte)
	buf := *bufp
	if cap(buf) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if err := t.readFull(buf); err != nil {
		*bufp = buf
		framePool.Put(bufp)
		select {
		case <-t.closed:
			return Message{}, io.EOF
		default:
		}
		return Message{}, t.opErr("reading frame body", err)
	}
	m, err := decodeFrame(t.codec, buf)
	*bufp = buf
	framePool.Put(bufp)
	if err != nil {
		return Message{}, err
	}
	if wm := wireMetrics(); wm != nil {
		wm.bytesRecv.With(t.codec.Name()).Add(int64(size) + 4)
	}
	return m, nil
}

// Close releases the connection; an in-flight Recv unblocks with io.EOF.
func (t *tcpConn) Close() error {
	t.once.Do(func() { close(t.closed) })
	return t.c.Close()
}

// tcpListener adapts net.Listener, handing every accepted conn the
// listener's options.
type tcpListener struct {
	l    net.Listener
	opts []TCPOption
}

// ListenTCP opens a TCP listener on addr (e.g. "127.0.0.1:0"). The options
// — timeouts, preferred codec — are applied to every accepted connection,
// so server-side conns honor the same deadlines as dialed ones.
func ListenTCP(addr string, opts ...TCPOption) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %s: %w", addr, err)
	}
	return &tcpListener{l: l, opts: opts}, nil
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewTCPConn(c, t.opts...), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }
