package transport

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrTimeout is returned when a transport operation exceeds its deadline.
var ErrTimeout = errors.New("transport: operation timed out")

// Dialer dials with capped exponential backoff and deterministic jitter.
// The zero value plus a Dial func is usable; unset knobs take defaults.
type Dialer struct {
	// Dial establishes one connection attempt (required).
	Dial func() (Conn, error)
	// MaxAttempts bounds one DialRetry call (default 8).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential schedule (default 2s).
	MaxDelay time.Duration
	// Jitter spreads each delay over [d*(1-Jitter), d*(1+Jitter)]
	// (default 0.2; negative disables).
	Jitter float64
	// Seed drives the jitter sequence deterministically.
	Seed int64
	// Sleep is the wait hook (default time.Sleep; tests override it).
	Sleep func(time.Duration)

	mu  sync.Mutex
	rng *rand.Rand
}

func (d *Dialer) attempts() int {
	if d.MaxAttempts > 0 {
		return d.MaxAttempts
	}
	return 8
}

// Backoff returns the delay to wait after the given 0-based failed attempt.
// For a fixed Seed the schedule is a deterministic sequence: each call
// consumes one jitter draw.
func (d *Dialer) Backoff(attempt int) time.Duration {
	base := d.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := d.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	if attempt < 0 {
		attempt = 0
	}
	delay := base
	for i := 0; i < attempt && delay < max; i++ {
		delay *= 2
	}
	if delay > max {
		delay = max
	}
	jitter := d.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter < 0 {
		return delay
	}
	d.mu.Lock()
	if d.rng == nil {
		d.rng = rand.New(rand.NewSource(d.Seed))
	}
	u := d.rng.Float64()
	d.mu.Unlock()
	return time.Duration(float64(delay) * (1 - jitter + 2*jitter*u))
}

func (d *Dialer) sleep(t time.Duration) {
	if d.Sleep != nil {
		d.Sleep(t)
		return
	}
	time.Sleep(t)
}

// DialRetry dials until an attempt succeeds or MaxAttempts is exhausted,
// sleeping the backoff schedule between attempts. The returned error wraps
// the last dial failure.
func (d *Dialer) DialRetry() (Conn, error) {
	if d.Dial == nil {
		return nil, fmt.Errorf("transport: dialer has no Dial func")
	}
	attempts := d.attempts()
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			d.sleep(d.Backoff(a - 1))
		}
		c, err := d.Dial()
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("transport: dial failed after %d attempts: %w", attempts, lastErr)
}

// IsConnError reports whether err is a connection-level failure (peer gone,
// link dropped, deadline hit, injected fault) — the class a reconnecting
// client should heal by redialing, as opposed to a protocol violation.
func IsConnError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, ErrClosed) ||
		errors.Is(err, ErrTimeout) || errors.Is(err, ErrInjected) ||
		errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// RecvTimeout waits up to d for the next message on conn. On timeout it
// closes conn (a blocked Recv cannot otherwise be cancelled on every
// transport) and returns an error wrapping ErrTimeout, so a timed-out conn
// must be discarded and redialed. d <= 0 blocks like a plain Recv.
func RecvTimeout(conn Conn, d time.Duration) (Message, error) {
	if d <= 0 {
		return conn.Recv()
	}
	type result struct {
		m   Message
		err error
	}
	ch := make(chan result, 1)
	go func() {
		m, err := conn.Recv()
		ch <- result{m, err}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.m, r.err
	case <-timer.C:
		_ = conn.Close()
		return Message{}, fmt.Errorf("transport: no message within %v: %w", d, ErrTimeout)
	}
}
