package transport

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/sensor"
)

// binaryCodec is wire version 2: a compact tag+varint encoding of the seven
// protocol payloads, with no intermediate JSON pass.
//
// Frame layout (after the 4-byte big-endian length prefix):
//
//	frame   := kindTag payload
//	kindTag := 1 hello | 2 census | 3 ratio | 4 policy
//	         | 5 upload | 6 delivery | 7 ack | 8 lease
//	         | 9 ratio_correction | 10 census_batch | 11 ratio_batch
//	         | 12 digest | 13 hood_beat
//	int     := zigzag varint            (encoding/binary PutVarint)
//	len     := uvarint                  (encoding/binary PutUvarint)
//	f64     := 8-byte little-endian IEEE-754 bits
//	str     := len bytes
//
//	hello    := int(vehicle)
//	census   := int(edge) int(round) len [int(count)]...
//	ratio    := int(round) f64(x)
//	policy   := int(round) f64(x) len [f64(share)]...
//	item     := int(owner) int(modality) int(seq)
//	upload   := int(vehicle) int(round) int(decision) len [item]...
//	delivery := int(round) len [item]...
//	ack      := str(err)
//	lease    := int(edge) int(ttl_ms)
//	ratio_correction := int(edge) int(round) int(seq) f64(x)
//	census_batch := int(shard) int(round) len [census]...
//	ratio_batch  := int(round) len [int(edge)]... [f64(x)]...
//	digest_round := int(round) int(degraded 0|1) len [census]...
//	digest       := int(neighborhood) int(of) len [int(member)]... len [digest_round]...
//	hood_beat    := int(hood) int(epoch) int(leader) int(escalated) int(ttl_ms)
//
// Decoding is strict: truncated fields, lengths that cannot fit in the
// remaining bytes (which also caps decode allocations), unknown kind tags,
// and trailing garbage all fail.
type binaryCodec struct{}

// Binary kind tags (wire stable — append only).
const (
	tagHello byte = iota + 1
	tagCensus
	tagRatio
	tagPolicy
	tagUpload
	tagDelivery
	tagAck
	tagLease
	tagRatioCorrection
	tagCensusBatch
	tagRatioBatch
	tagDigest
	tagHoodBeat
)

// censusScratch and ratioScratch recycle the payload structs the per-round
// hot path (census up, ratio down) extracts typed bodies into, so encoding
// a frame costs zero heap allocations. Structs are zeroed before Put: a
// JSON-fallback decode merges into whatever the struct holds, and a pooled
// census must not pin the previous caller's Counts slice.
var (
	censusScratch = sync.Pool{New: func() interface{} { return new(Census) }}
	ratioScratch  = sync.Pool{New: func() interface{} { return new(Ratio) }}
)

func (binaryCodec) Name() string  { return "binary" }
func (binaryCodec) Version() byte { return VersionBinary }

func (binaryCodec) AppendEncode(dst []byte, m Message) ([]byte, error) {
	switch m.Kind {
	case KindHello:
		var h Hello
		if err := payloadFor(m, &h); err != nil {
			return nil, err
		}
		dst = append(dst, tagHello)
		return appendInt(dst, int64(h.Vehicle)), nil
	case KindCensus:
		c := censusScratch.Get().(*Census)
		err := payloadFor(m, c)
		if err == nil {
			dst = append(dst, tagCensus)
			dst = appendCensus(dst, c)
		}
		*c = Census{}
		censusScratch.Put(c)
		if err != nil {
			return nil, err
		}
		return dst, nil
	case KindRatio:
		r := ratioScratch.Get().(*Ratio)
		err := payloadFor(m, r)
		if err == nil {
			dst = append(dst, tagRatio)
			dst = appendInt(dst, int64(r.Round))
			dst = appendFloat(dst, r.X)
		}
		*r = Ratio{}
		ratioScratch.Put(r)
		if err != nil {
			return nil, err
		}
		return dst, nil
	case KindPolicy:
		var p Policy
		if err := payloadFor(m, &p); err != nil {
			return nil, err
		}
		dst = append(dst, tagPolicy)
		dst = appendInt(dst, int64(p.Round))
		dst = appendFloat(dst, p.X)
		dst = appendLen(dst, len(p.Shares))
		for _, s := range p.Shares {
			dst = appendFloat(dst, s)
		}
		return dst, nil
	case KindUpload:
		var u Upload
		if err := payloadFor(m, &u); err != nil {
			return nil, err
		}
		dst = append(dst, tagUpload)
		dst = appendInt(dst, int64(u.Vehicle))
		dst = appendInt(dst, int64(u.Round))
		dst = appendInt(dst, int64(u.Decision))
		return appendItems(dst, u.Items), nil
	case KindDelivery:
		var d Delivery
		if err := payloadFor(m, &d); err != nil {
			return nil, err
		}
		dst = append(dst, tagDelivery)
		dst = appendInt(dst, int64(d.Round))
		return appendItems(dst, d.Items), nil
	case KindAck:
		var a Ack
		if err := payloadFor(m, &a); err != nil {
			return nil, err
		}
		dst = append(dst, tagAck)
		dst = appendLen(dst, len(a.Err))
		return append(dst, a.Err...), nil
	case KindLease:
		var l Lease
		if err := payloadFor(m, &l); err != nil {
			return nil, err
		}
		dst = append(dst, tagLease)
		dst = appendInt(dst, int64(l.Edge))
		return appendInt(dst, l.TTLMillis), nil
	case KindRatioCorrection:
		var rc RatioCorrection
		if err := payloadFor(m, &rc); err != nil {
			return nil, err
		}
		dst = append(dst, tagRatioCorrection)
		dst = appendInt(dst, int64(rc.Edge))
		dst = appendInt(dst, int64(rc.Round))
		dst = appendInt(dst, rc.Seq)
		return appendFloat(dst, rc.X), nil
	case KindCensusBatch:
		var cb CensusBatch
		if err := payloadFor(m, &cb); err != nil {
			return nil, err
		}
		dst = append(dst, tagCensusBatch)
		dst = appendInt(dst, int64(cb.Shard))
		dst = appendInt(dst, int64(cb.Round))
		dst = appendLen(dst, len(cb.Censuses))
		for i := range cb.Censuses {
			dst = appendCensus(dst, &cb.Censuses[i])
		}
		return dst, nil
	case KindRatioBatch:
		var rb RatioBatch
		if err := payloadFor(m, &rb); err != nil {
			return nil, err
		}
		if len(rb.Edges) != len(rb.X) {
			return nil, fmt.Errorf("transport: ratio batch has %d edges but %d ratios", len(rb.Edges), len(rb.X))
		}
		dst = append(dst, tagRatioBatch)
		dst = appendInt(dst, int64(rb.Round))
		dst = appendLen(dst, len(rb.Edges))
		for _, e := range rb.Edges {
			dst = appendInt(dst, int64(e))
		}
		for _, x := range rb.X {
			dst = appendFloat(dst, x)
		}
		return dst, nil
	case KindDigest:
		var d Digest
		if err := payloadFor(m, &d); err != nil {
			return nil, err
		}
		dst = append(dst, tagDigest)
		dst = appendInt(dst, int64(d.Neighborhood))
		dst = appendInt(dst, int64(d.Of))
		dst = appendLen(dst, len(d.Members))
		for _, member := range d.Members {
			dst = appendInt(dst, int64(member))
		}
		dst = appendLen(dst, len(d.Rounds))
		for _, dr := range d.Rounds {
			dst = appendInt(dst, int64(dr.Round))
			degraded := int64(0)
			if dr.Degraded {
				degraded = 1
			}
			dst = appendInt(dst, degraded)
			dst = appendLen(dst, len(dr.Censuses))
			for i := range dr.Censuses {
				dst = appendCensus(dst, &dr.Censuses[i])
			}
		}
		return dst, nil
	case KindHoodBeat:
		var hb HoodBeat
		if err := payloadFor(m, &hb); err != nil {
			return nil, err
		}
		dst = append(dst, tagHoodBeat)
		dst = appendInt(dst, int64(hb.Hood))
		dst = appendInt(dst, int64(hb.Epoch))
		dst = appendInt(dst, int64(hb.Leader))
		dst = appendInt(dst, int64(hb.Escalated))
		return appendInt(dst, hb.TTLMillis), nil
	default:
		return nil, fmt.Errorf("transport: binary codec cannot encode kind %q", m.Kind)
	}
}

func (binaryCodec) Decode(frame []byte) (Message, error) {
	if len(frame) == 0 {
		return Message{}, fmt.Errorf("transport: empty binary frame")
	}
	r := byteReader{buf: frame[1:]}
	var (
		kind Kind
		body interface{}
	)
	switch frame[0] {
	case tagHello:
		kind = KindHello
		body = Hello{Vehicle: int(r.int())}
	case tagCensus:
		c := Census{Edge: int(r.int()), Round: int(r.int())}
		n := r.len(1)
		if n > 0 {
			c.Counts = make([]int, n)
			for i := range c.Counts {
				c.Counts[i] = int(r.int())
			}
		}
		kind, body = KindCensus, c
	case tagRatio:
		kind = KindRatio
		body = Ratio{Round: int(r.int()), X: r.float()}
	case tagPolicy:
		p := Policy{Round: int(r.int()), X: r.float()}
		n := r.len(8)
		if n > 0 {
			p.Shares = make([]float64, n)
			for i := range p.Shares {
				p.Shares[i] = r.float()
			}
		}
		kind, body = KindPolicy, p
	case tagUpload:
		u := Upload{Vehicle: int(r.int()), Round: int(r.int()), Decision: int(r.int())}
		u.Items = r.items()
		kind, body = KindUpload, u
	case tagDelivery:
		d := Delivery{Round: int(r.int())}
		d.Items = r.items()
		kind, body = KindDelivery, d
	case tagAck:
		kind = KindAck
		body = Ack{Err: r.str()}
	case tagLease:
		kind = KindLease
		body = Lease{Edge: int(r.int()), TTLMillis: r.int()}
	case tagRatioCorrection:
		kind = KindRatioCorrection
		body = RatioCorrection{Edge: int(r.int()), Round: int(r.int()), Seq: r.int(), X: r.float()}
	case tagCensusBatch:
		cb := CensusBatch{Shard: int(r.int()), Round: int(r.int())}
		cb.Censuses = r.censuses()
		kind, body = KindCensusBatch, cb
	case tagRatioBatch:
		rb := RatioBatch{Round: int(r.int())}
		// Each entry is at least 9 bytes (1-byte edge varint + 8-byte float).
		if n := r.len(9); n > 0 {
			rb.Edges = make([]int, n)
			for i := range rb.Edges {
				rb.Edges[i] = int(r.int())
			}
			rb.X = make([]float64, n)
			for i := range rb.X {
				rb.X[i] = r.float()
			}
		}
		kind, body = KindRatioBatch, rb
	case tagDigest:
		d := Digest{Neighborhood: int(r.int()), Of: int(r.int())}
		if n := r.len(1); n > 0 {
			d.Members = make([]int, n)
			for i := range d.Members {
				d.Members[i] = int(r.int())
			}
		}
		// Each digest round is at least 3 bytes (round, degraded, empty list).
		if n := r.len(3); n > 0 {
			d.Rounds = make([]DigestRound, n)
			for i := range d.Rounds {
				dr := DigestRound{Round: int(r.int()), Degraded: r.int() != 0}
				dr.Censuses = r.censuses()
				d.Rounds[i] = dr
			}
		}
		kind, body = KindDigest, d
	case tagHoodBeat:
		kind = KindHoodBeat
		body = HoodBeat{
			Hood:      int(r.int()),
			Epoch:     int(r.int()),
			Leader:    int(r.int()),
			Escalated: int(r.int()),
			TTLMillis: r.int(),
		}
	default:
		return Message{}, fmt.Errorf("transport: unknown binary kind tag 0x%02x", frame[0])
	}
	if r.err != nil {
		return Message{}, fmt.Errorf("transport: decoding binary %s frame: %w", kind, r.err)
	}
	if len(r.buf) != 0 {
		return Message{}, fmt.Errorf("transport: binary %s frame has %d trailing bytes", kind, len(r.buf))
	}
	return Message{Kind: kind, Body: body}, nil
}

// payloadFor extracts m's payload into out regardless of which form
// (typed Body or JSON Payload) the message carries.
func payloadFor(m Message, out interface{}) error {
	if err := decodePayload(m, out); err != nil {
		return fmt.Errorf("transport: encoding %s payload: %w", m.Kind, err)
	}
	return nil
}

// --- encode helpers ---

func appendInt(dst []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func appendLen(dst []byte, n int) []byte {
	var tmp [binary.MaxVarintLen64]byte
	w := binary.PutUvarint(tmp[:], uint64(n))
	return append(dst, tmp[:w]...)
}

func appendFloat(dst []byte, f float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	return append(dst, tmp[:]...)
}

// appendCensus appends one census body (edge, round, counts) — the shared
// tail of the census, census_batch, and digest encodings.
func appendCensus(dst []byte, c *Census) []byte {
	dst = appendInt(dst, int64(c.Edge))
	dst = appendInt(dst, int64(c.Round))
	dst = appendLen(dst, len(c.Counts))
	for _, n := range c.Counts {
		dst = appendInt(dst, int64(n))
	}
	return dst
}

func appendItems(dst []byte, items []Item) []byte {
	dst = appendLen(dst, len(items))
	for _, it := range items {
		dst = appendInt(dst, int64(it.Owner))
		dst = appendInt(dst, int64(it.Modality))
		dst = appendInt(dst, int64(it.Seq))
	}
	return dst
}

// --- decode helpers ---

// byteReader consumes a binary frame with sticky errors, so decode paths
// read fields unconditionally and check once at the end.
type byteReader struct {
	buf []byte
	err error
}

func (r *byteReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *byteReader) int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail(fmt.Errorf("truncated varint"))
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// len reads a collection length and bounds it by the bytes remaining given
// a minimum encoded size per element, so a corrupt length can never drive a
// huge allocation.
func (r *byteReader) len(minElemBytes int) int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail(fmt.Errorf("truncated length"))
		return 0
	}
	r.buf = r.buf[n:]
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if v > uint64(len(r.buf)/minElemBytes) {
		r.fail(fmt.Errorf("length %d exceeds remaining %d bytes", v, len(r.buf)))
		return 0
	}
	return int(v)
}

func (r *byteReader) float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail(fmt.Errorf("truncated float64"))
		return 0
	}
	bits := binary.LittleEndian.Uint64(r.buf[:8])
	r.buf = r.buf[8:]
	return math.Float64frombits(bits)
}

func (r *byteReader) str() string {
	n := r.len(1)
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.buf[:n]) // copies: the frame buffer is pooled
	r.buf = r.buf[n:]
	return s
}

// censuses reads a census list — the shared tail of the census_batch and
// digest encodings. Each census is at least 3 bytes (edge, round, empty
// counts).
func (r *byteReader) censuses() []Census {
	n := r.len(3)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]Census, n)
	for i := range out {
		c := Census{Edge: int(r.int()), Round: int(r.int())}
		if k := r.len(1); k > 0 {
			c.Counts = make([]int, k)
			for j := range c.Counts {
				c.Counts[j] = int(r.int())
			}
		}
		out[i] = c
	}
	return out
}

func (r *byteReader) items() []Item {
	n := r.len(3)
	if r.err != nil || n == 0 {
		return nil
	}
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Owner:    int(r.int()),
			Modality: sensor.Type(r.int()),
			Seq:      int(r.int()),
		}
	}
	return items
}
