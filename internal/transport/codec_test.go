package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/sensor"
)

// allKindsMessages is one representative message per protocol kind, used to
// exercise both codecs over every encode/decode path.
func allKindsMessages(t *testing.T) []Message {
	t.Helper()
	payloads := []struct {
		kind Kind
		body interface{}
	}{
		{KindHello, Hello{Vehicle: 42}},
		{KindCensus, Census{Edge: 1, Round: 3, Counts: []int{4, 2, 0}}},
		{KindRatio, Ratio{Round: 2, X: 0.5}},
		{KindPolicy, Policy{Round: 5, X: 0.75, Shares: []float64{0.25, 0.5, 0.25}}},
		{KindUpload, Upload{Vehicle: 7, Round: 5, Decision: 3, Items: []Item{
			{Owner: 7, Modality: sensor.LiDAR, Seq: 1},
			{Owner: 7, Modality: sensor.Radar, Seq: 2},
		}}},
		{KindDelivery, Delivery{Round: 5, Items: []Item{{Owner: 9, Modality: sensor.Camera, Seq: 3}}}},
		{KindAck, Ack{Err: "nope"}},
		{KindLease, Lease{Edge: 2, TTLMillis: 1500}},
		{KindRatioCorrection, RatioCorrection{Edge: 2, Round: 7, Seq: 3, X: 0.5}},
		{KindCensusBatch, CensusBatch{Shard: 1, Round: 3, Censuses: []Census{
			{Edge: 0, Round: 3, Counts: []int{2, 1}},
			{Edge: 1, Round: 3, Counts: []int{0, 4}},
		}}},
		{KindRatioBatch, RatioBatch{Round: 4, Edges: []int{0, 1}, X: []float64{0.5, 0.25}}},
		{KindDigest, Digest{Neighborhood: 1, Of: 2, Members: []int{2, 3}, Rounds: []DigestRound{
			{Round: 6, Censuses: []Census{
				{Edge: 2, Round: 6, Counts: []int{3, 1}},
				{Edge: 3, Round: 6, Counts: []int{0, 5}},
			}},
			{Round: 7, Degraded: true, Censuses: []Census{
				{Edge: 2, Round: 7, Counts: []int{2, 2}},
			}},
		}}},
		{KindHoodBeat, HoodBeat{Hood: 1, Epoch: 2, Leader: 3, Escalated: 6, TTLMillis: 750}},
	}
	out := make([]Message, len(payloads))
	for i, p := range payloads {
		m, err := Encode(p.kind, p.body)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

func TestCodecRoundTripAllKinds(t *testing.T) {
	for _, codec := range []Codec{JSON, Binary} {
		t.Run(codec.Name(), func(t *testing.T) {
			for _, m := range allKindsMessages(t) {
				frame, err := codec.AppendEncode(nil, m)
				if err != nil {
					t.Fatalf("%s: encode: %v", m.Kind, err)
				}
				got, err := codec.Decode(frame)
				if err != nil {
					t.Fatalf("%s: decode: %v", m.Kind, err)
				}
				if got.Kind != m.Kind {
					t.Fatalf("kind = %s, want %s", got.Kind, m.Kind)
				}
				// Round-trip the payload through the typed Decode helper and
				// compare via a second encode: byte equality is type
				// equality for the binary format.
				if codec == Binary {
					again, err := codec.AppendEncode(nil, got)
					if err != nil {
						t.Fatalf("%s: re-encode: %v", m.Kind, err)
					}
					if !bytes.Equal(frame, again) {
						t.Errorf("%s: re-encode differs:\n  %x\n  %x", m.Kind, frame, again)
					}
				}
			}
		})
	}
}

// TestCodecRoundTripPayloads checks field-level fidelity through the
// decode-into-struct path (the one role handlers use).
func TestCodecRoundTripPayloads(t *testing.T) {
	for _, codec := range []Codec{JSON, Binary} {
		t.Run(codec.Name(), func(t *testing.T) {
			in, err := Encode(KindUpload, Upload{Vehicle: -3, Round: 9, Decision: 4, Items: []Item{
				{Owner: -3, Modality: sensor.Camera, Seq: 17},
			}})
			if err != nil {
				t.Fatal(err)
			}
			frame, err := codec.AppendEncode(nil, in)
			if err != nil {
				t.Fatal(err)
			}
			m, err := codec.Decode(frame)
			if err != nil {
				t.Fatal(err)
			}
			var up Upload
			if err := Decode(m, KindUpload, &up); err != nil {
				t.Fatal(err)
			}
			if up.Vehicle != -3 || up.Round != 9 || up.Decision != 4 || len(up.Items) != 1 ||
				up.Items[0] != (Item{Owner: -3, Modality: sensor.Camera, Seq: 17}) {
				t.Errorf("round trip = %+v", up)
			}
		})
	}
}

// TestBinaryGoldenBytes pins the wire format byte-for-byte (the same
// examples appear in DESIGN.md §9); a change here is a wire protocol break.
func TestBinaryGoldenBytes(t *testing.T) {
	cases := []struct {
		name string
		kind Kind
		body interface{}
		want []byte
	}{
		{
			name: "census",
			kind: KindCensus,
			body: Census{Edge: 1, Round: 3, Counts: []int{4, 2, 0}},
			want: []byte{0x02, 0x02, 0x06, 0x03, 0x08, 0x04, 0x00},
		},
		{
			name: "ratio",
			kind: KindRatio,
			body: Ratio{Round: 2, X: 0.5},
			want: []byte{0x03, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xE0, 0x3F},
		},
		{
			name: "lease",
			kind: KindLease,
			body: Lease{Edge: 2, TTLMillis: 1500},
			want: []byte{0x08, 0x04, 0xB8, 0x17},
		},
		{
			name: "ratio_correction",
			kind: KindRatioCorrection,
			body: RatioCorrection{Edge: 2, Round: 7, Seq: 3, X: 0.5},
			want: []byte{0x09, 0x04, 0x0E, 0x06, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xE0, 0x3F},
		},
		{
			name: "census_batch",
			kind: KindCensusBatch,
			body: CensusBatch{Shard: 1, Round: 3, Censuses: []Census{
				{Edge: 0, Round: 3, Counts: []int{2, 1}},
				{Edge: 1, Round: 3, Counts: []int{0, 4}},
			}},
			want: []byte{0x0A, 0x02, 0x06, 0x02,
				0x00, 0x06, 0x02, 0x04, 0x02,
				0x02, 0x06, 0x02, 0x00, 0x08},
		},
		{
			name: "ratio_batch",
			kind: KindRatioBatch,
			body: RatioBatch{Round: 4, Edges: []int{0, 1}, X: []float64{0.5, 0.25}},
			want: []byte{0x0B, 0x08, 0x02, 0x00, 0x02,
				0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xE0, 0x3F,
				0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD0, 0x3F},
		},
		{
			name: "digest",
			kind: KindDigest,
			body: Digest{Neighborhood: 1, Of: 2, Members: []int{2, 3}, Rounds: []DigestRound{
				{Round: 6, Censuses: []Census{{Edge: 2, Round: 6, Counts: []int{3, 1}}}},
			}},
			want: []byte{0x0C, 0x02, 0x04, 0x02, 0x04, 0x06,
				0x01, 0x0C, 0x00, 0x01, 0x04, 0x0C, 0x02, 0x06, 0x02},
		},
		{
			name: "hood_beat",
			kind: KindHoodBeat,
			body: HoodBeat{Hood: 1, Epoch: 2, Leader: 3, Escalated: 6, TTLMillis: 750},
			want: []byte{0x0D, 0x02, 0x04, 0x06, 0x0C, 0xDC, 0x0B},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := Encode(c.kind, c.body)
			if err != nil {
				t.Fatal(err)
			}
			frame, err := Binary.AppendEncode(nil, m)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(frame, c.want) {
				t.Errorf("frame = %x, want %x", frame, c.want)
			}
		})
	}
}

// TestBinaryFramesSmaller asserts the headline perf claim: binary Census
// and Ratio frames are at least 5x smaller than the JSON envelope.
func TestBinaryFramesSmaller(t *testing.T) {
	for _, c := range []struct {
		name string
		kind Kind
		body interface{}
	}{
		{"census", KindCensus, Census{Edge: 1, Round: 12, Counts: []int{10, 4, 3, 2, 1, 0, 0, 0}}},
		{"ratio", KindRatio, Ratio{Round: 12, X: 0.8125}},
	} {
		m, err := Encode(c.kind, c.body)
		if err != nil {
			t.Fatal(err)
		}
		jf, err := JSON.AppendEncode(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := Binary.AppendEncode(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(jf) < 5*len(bf) {
			t.Errorf("%s: json %d bytes vs binary %d bytes — want >= 5x reduction",
				c.name, len(jf), len(bf))
		}
		t.Logf("%s: json=%dB binary=%dB (%.1fx)", c.name, len(jf), len(bf), float64(len(jf))/float64(len(bf)))
	}
}

func TestBinaryDecodeHardening(t *testing.T) {
	ratio := func() []byte {
		m, _ := Encode(KindRatio, Ratio{Round: 2, X: 0.5})
		f, _ := Binary.AppendEncode(nil, m)
		return f
	}()
	cases := []struct {
		name  string
		frame []byte
	}{
		{"empty frame", nil},
		{"unknown kind tag", []byte{0x7F, 0x01}},
		{"truncated varint", []byte{0x02, 0x80}},                                 // census, endless continuation bit
		{"truncated float", ratio[:len(ratio)-3]},                                // ratio missing float tail
		{"length exceeds remaining", []byte{0x02, 0x02, 0x06, 0xFF, 0xFF, 0x03}}, // census claiming ~65k counts
		{"trailing garbage", append(append([]byte{}, ratio...), 0xAA)},
		{"items length overflow", []byte{0x05, 0x0E, 0x0A, 0x06, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}},
		{"truncated ratio_correction", []byte{0x09, 0x04, 0x0E, 0x06, 0x00, 0x00}},
		{"census_batch length overflow", []byte{0x0A, 0x02, 0x06, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}},
		{"census_batch truncated census", []byte{0x0A, 0x02, 0x06, 0x02, 0x00, 0x06, 0x02, 0x04}},
		{"ratio_batch length exceeds remaining", []byte{0x0B, 0x08, 0x7F, 0x00}},
		{"ratio_batch truncated float", []byte{0x0B, 0x08, 0x01, 0x00, 0x00, 0x00, 0xE0, 0x3F}},
		{"digest members length overflow", []byte{0x0C, 0x02, 0x04, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}},
		{"digest rounds length overflow", []byte{0x0C, 0x02, 0x04, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}},
		{"digest truncated round", []byte{0x0C, 0x02, 0x04, 0x00, 0x01, 0x0C, 0x00}},
		{"digest census counts overflow", []byte{0x0C, 0x02, 0x04, 0x00, 0x01, 0x0C, 0x00, 0x01, 0x04, 0x0C, 0xFF, 0xFF, 0x03}},
		{"digest trailing garbage", []byte{0x0C, 0x02, 0x04, 0x00, 0x00, 0xAA}},
		{"hood_beat truncated", []byte{0x0D, 0x02, 0x04}},
		{"hood_beat trailing garbage", []byte{0x0D, 0x02, 0x04, 0x06, 0x0C, 0x00, 0xAA}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Binary.Decode(c.frame); err == nil {
				t.Errorf("Decode(%x) succeeded, want error", c.frame)
			}
		})
	}
	// The JSON codec must also reject garbage.
	if _, err := JSON.Decode([]byte("{broken")); err == nil {
		t.Error("JSON.Decode accepted garbage")
	}
}

func TestCodecByName(t *testing.T) {
	for name, want := range map[string]Codec{"json": JSON, "binary": Binary} {
		c, err := CodecByName(name)
		if err != nil || c != want {
			t.Errorf("CodecByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := CodecByName("protobuf"); err == nil {
		t.Error("unknown codec name must error")
	}
}

func TestCodecPipe(t *testing.T) {
	for _, codec := range []Codec{JSON, Binary} {
		t.Run(codec.Name(), func(t *testing.T) {
			a, b := CodecPipe(codec)
			if CodecOf(a) != codec.Name() || CodecOf(b) != codec.Name() {
				t.Errorf("CodecOf = %q/%q, want %q", CodecOf(a), CodecOf(b), codec.Name())
			}
			exerciseConnPair(t, a, b)
		})
	}
}

func TestCodecPipeOversizeFrameRejected(t *testing.T) {
	a, b := CodecPipe(Binary)
	defer a.Close()
	defer b.Close()
	m, err := Encode(KindAck, Ack{Err: strings.Repeat("x", MaxFrameBytes+1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(m); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize frame = %v, want ErrFrameTooLarge", err)
	}
}

// acceptOne returns a listener's next accepted conn via channel.
func acceptOne(t *testing.T, l Listener) <-chan Conn {
	t.Helper()
	ch := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			close(ch)
			return
		}
		ch <- c
	}()
	return ch
}

func TestTCPCodecNegotiation(t *testing.T) {
	cases := []struct {
		name   string
		dial   []TCPOption
		listen []TCPOption
		want   string
	}{
		{"binary both", []TCPOption{WithCodec(Binary)}, []TCPOption{WithCodec(Binary)}, "binary"},
		{"json dialer to binary server", nil, []TCPOption{WithCodec(Binary)}, "json"},
		{"binary dialer to json server", []TCPOption{WithCodec(Binary)}, nil, "binary"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l, err := ListenTCP("127.0.0.1:0", c.listen...)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			accepted := acceptOne(t, l)
			client, err := DialTCP(l.Addr(), c.dial...)
			if err != nil {
				t.Fatal(err)
			}
			server := <-accepted
			if server == nil {
				t.Fatal("accept failed")
			}
			exerciseConnPair(t, client, server)
			// exerciseConnPair closed client; the negotiated codec is still
			// recorded.
			if got := CodecOf(client); got != c.want {
				t.Errorf("client codec = %q, want %q", got, c.want)
			}
			if got := CodecOf(server); got != c.want {
				t.Errorf("server codec = %q, want %q", got, c.want)
			}
		})
	}
}

// TestTCPLegacyPeerInterop: a peer that predates version negotiation sends
// length-prefixed JSON frames with no preamble; the acceptor must sniff
// this, fall back to JSON, and not lose the sniffed byte.
func TestTCPLegacyPeerInterop(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0", WithCodec(Binary))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := acceptOne(t, l)

	raw, err := net.Dial("tcp", l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	body := []byte(`{"kind":"hello","payload":{"vehicle":42}}`)
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(body)))
	if _, err := raw.Write(append(header[:], body...)); err != nil {
		t.Fatal(err)
	}

	server := <-accepted
	if server == nil {
		t.Fatal("accept failed")
	}
	defer server.Close()
	m, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var hello Hello
	if err := Decode(m, KindHello, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Vehicle != 42 {
		t.Errorf("vehicle = %d, want 42", hello.Vehicle)
	}
	if got := CodecOf(server); got != "json" {
		t.Errorf("legacy conn codec = %q, want json", got)
	}

	// The acceptor's replies are plain length-prefixed JSON the legacy peer
	// can parse.
	reply, err := Encode(KindAck, Ack{})
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Send(reply); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(raw, header[:]); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, binary.BigEndian.Uint32(header[:]))
	if _, err := io.ReadFull(raw, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := JSON.Decode(buf); err != nil {
		t.Errorf("legacy peer cannot parse reply %q: %v", buf, err)
	}
}

// TestTCPRecvHardening drives the acceptor's frame reader with crafted raw
// byte streams.
func TestTCPRecvHardening(t *testing.T) {
	oversize := func() []byte {
		var h [4]byte
		binary.BigEndian.PutUint32(h[:], MaxFrameBytes+1)
		return h[:]
	}()
	garbage := func() []byte {
		body := []byte("ab{c!")
		var h [4]byte
		binary.BigEndian.PutUint32(h[:], uint32(len(body)))
		return append(h[:], body...)
	}()
	truncatedBody := func() []byte {
		var h [4]byte
		binary.BigEndian.PutUint32(h[:], 100)
		return append(h[:], []byte("only ten b")...)
	}()
	badBinaryFrame := func() []byte {
		body := []byte{0x7F, 0x01} // unknown kind tag under the binary codec
		var h [4]byte
		binary.BigEndian.PutUint32(h[:], uint32(len(body)))
		return append([]byte{codecMagic, VersionBinary}, append(h[:], body...)...)
	}()
	cases := []struct {
		name    string
		raw     []byte
		wantEOF bool // truncated-at-boundary closes read as EOF
		wantErr error
	}{
		{"truncated header", []byte{0x00, 0x00}, true, nil},
		{"oversized frame", oversize, false, ErrFrameTooLarge},
		{"garbage json payload", garbage, false, nil},
		{"truncated body", truncatedBody, false, nil},
		{"unknown codec version", []byte{codecMagic, 0x7F}, false, ErrCodecVersion},
		{"unknown binary kind tag", badBinaryFrame, false, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l, err := ListenTCP("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			accepted := acceptOne(t, l)
			raw, err := net.Dial("tcp", l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := raw.Write(c.raw); err != nil {
				t.Fatal(err)
			}
			_ = raw.Close() // writer done: reader must fail, not block
			server := <-accepted
			if server == nil {
				t.Fatal("accept failed")
			}
			defer server.Close()
			_, err = server.Recv()
			switch {
			case c.wantEOF:
				if !errors.Is(err, io.EOF) {
					t.Errorf("Recv = %v, want io.EOF", err)
				}
			case c.wantErr != nil:
				if !errors.Is(err, c.wantErr) {
					t.Errorf("Recv = %v, want %v", err, c.wantErr)
				}
			default:
				if err == nil || errors.Is(err, io.EOF) {
					t.Errorf("Recv = %v, want a decode error", err)
				}
			}
		})
	}
}

// TestTCPConcurrentSendersNegotiateOnce: the lazy handshake must be safe
// when many goroutines race the first Send.
func TestTCPConcurrentSendersNegotiateOnce(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := acceptOne(t, l)
	client, err := DialTCP(l.Addr(), WithCodec(Binary))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	if server == nil {
		t.Fatal("accept failed")
	}
	defer server.Close()

	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, _ := Encode(KindRatio, Ratio{Round: i, X: 0.5})
			if err := client.Send(m); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	seen := 0
	for seen < n {
		m, err := server.Recv()
		if err != nil {
			t.Fatalf("recv after %d: %v", seen, err)
		}
		if m.Kind != KindRatio {
			t.Fatalf("kind = %s", m.Kind)
		}
		seen++
	}
	wg.Wait()
}

func FuzzDecodeFrame(f *testing.F) {
	// Seed with every valid frame of both codecs plus the hardening cases.
	var seeds [][]byte
	payloads := []struct {
		kind Kind
		body interface{}
	}{
		{KindHello, Hello{Vehicle: 42}},
		{KindCensus, Census{Edge: 1, Round: 3, Counts: []int{4, 2, 0}}},
		{KindRatio, Ratio{Round: 2, X: 0.5}},
		{KindPolicy, Policy{Round: 5, X: 0.75, Shares: []float64{0.25, 0.5, 0.25}}},
		{KindUpload, Upload{Vehicle: 7, Round: 5, Decision: 3, Items: []Item{{Owner: 7, Modality: sensor.LiDAR, Seq: 1}}}},
		{KindDelivery, Delivery{Round: 5, Items: []Item{{Owner: 9, Modality: sensor.Camera, Seq: 3}}}},
		{KindAck, Ack{Err: "nope"}},
		{KindCensusBatch, CensusBatch{Shard: 1, Round: 3, Censuses: []Census{{Edge: 0, Round: 3, Counts: []int{2, 1}}}}},
		{KindRatioBatch, RatioBatch{Round: 4, Edges: []int{0, 1}, X: []float64{0.5, 0.25}}},
		{KindLease, Lease{Edge: 2, TTLMillis: 1500}},
		{KindRatioCorrection, RatioCorrection{Edge: 2, Round: 7, Seq: 3, X: 0.5}},
		{KindDigest, Digest{Neighborhood: 1, Of: 2, Members: []int{2, 3}, Rounds: []DigestRound{
			{Round: 6, Censuses: []Census{{Edge: 2, Round: 6, Counts: []int{3, 1}}}},
			{Round: 7, Degraded: true, Censuses: []Census{{Edge: 3, Round: 7, Counts: []int{0, 5}}}},
		}}},
		{KindHoodBeat, HoodBeat{Hood: 1, Epoch: 2, Leader: 3, Escalated: 6, TTLMillis: 750}},
	}
	for _, p := range payloads {
		m, err := Encode(p.kind, p.body)
		if err != nil {
			f.Fatal(err)
		}
		for _, codec := range []Codec{JSON, Binary} {
			frame, err := codec.AppendEncode(nil, m)
			if err != nil {
				f.Fatal(err)
			}
			seeds = append(seeds, frame)
		}
	}
	seeds = append(seeds,
		nil,
		[]byte{0x7F},
		[]byte{0x02, 0x80},
		[]byte{0x02, 0x02, 0x06, 0xFF, 0xFF, 0x03},
		[]byte{0x0C, 0x02, 0x04, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, // digest claiming huge member list
		[]byte{0x0C, 0x02, 0x04, 0x00, 0x01, 0x0C, 0x00},       // digest with a truncated round
		[]byte{0x0D, 0x02, 0x04},                               // truncated hood_beat
	)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		// Decoding arbitrary bytes must never panic or over-allocate; a
		// frame that decodes must re-encode deterministically.
		m, err := Binary.Decode(frame)
		if err == nil {
			again, err := Binary.AppendEncode(nil, m)
			if err != nil {
				t.Fatalf("decoded frame %x failed to re-encode: %v", frame, err)
			}
			back, err := Binary.Decode(again)
			if err != nil {
				t.Fatalf("re-encoded frame %x failed to decode: %v", again, err)
			}
			if back.Kind != m.Kind {
				t.Fatalf("kind drift: %s -> %s", m.Kind, back.Kind)
			}
		}
		_, _ = JSON.Decode(frame)
	})
}
