package transport

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrInjected marks a failure produced by the fault-injection layer rather
// than the real network. Accept loops should treat it as transient and keep
// accepting.
var ErrInjected = errors.New("transport: injected fault")

// FaultConfig parameterizes deterministic fault injection over a Conn or
// Listener. All probabilities are per message in [0,1]; the zero value
// injects nothing.
type FaultConfig struct {
	// Seed drives every fault decision. Each wrapped conn derives its own
	// rng from Seed plus a wrap counter, so a single conn's fault sequence
	// is reproducible regardless of scheduling across conns.
	Seed int64
	// DropProb is the probability a sent message is silently discarded.
	DropProb float64
	// DupProb is the probability a sent message is delivered twice.
	DupProb float64
	// MinDelay and MaxDelay bound the injected per-message delivery delay;
	// both zero disables delays. Delayed messages are delivered
	// asynchronously, so closely spaced messages may reorder.
	MinDelay, MaxDelay time.Duration
	// DisconnectAfter force-closes the connection after this many messages
	// (sends plus receives) have passed through it; 0 disables.
	DisconnectAfter int
	// AcceptFailProb is the probability a FaultyListener's Accept closes
	// the new connection and returns ErrInjected.
	AcceptFailProb float64
}

// faultMetrics are the injector's registry-backed instruments.
type faultMetrics struct {
	sent           *obs.Counter // transport_fault_sent_total
	dropped        *obs.Counter // transport_fault_dropped_total
	duplicated     *obs.Counter // transport_fault_duplicated_total
	delayed        *obs.Counter // transport_fault_delayed_total
	disconnects    *obs.Counter // transport_fault_disconnects_total
	acceptFailures *obs.Counter // transport_fault_accept_failures_total
}

func newFaultMetrics(o *obs.Observer) faultMetrics {
	return faultMetrics{
		sent:           o.Counter("transport_fault_sent_total", "messages offered to Send on fault-wrapped conns"),
		dropped:        o.Counter("transport_fault_dropped_total", "messages silently discarded by fault injection"),
		duplicated:     o.Counter("transport_fault_duplicated_total", "messages delivered twice by fault injection"),
		delayed:        o.Counter("transport_fault_delayed_total", "messages delivered late by fault injection"),
		disconnects:    o.Counter("transport_fault_disconnects_total", "forced disconnects tripped by fault injection"),
		acceptFailures: o.Counter("transport_fault_accept_failures_total", "injected Accept failures on fault-wrapped listeners"),
	}
}

// Fault is a shared fault injector: one instance wraps any number of conns
// and listeners, accumulating joint statistics while keeping per-conn
// decision sequences deterministic under the configured seed.
type Fault struct {
	cfg FaultConfig
	seq atomic.Int64

	mu      sync.Mutex // guards metrics swap; counters update lock-free
	metrics faultMetrics
}

// NewFault builds a fault injector from the config, reporting through a
// private registry until Instrument installs a shared one.
func NewFault(cfg FaultConfig) *Fault {
	return &Fault{cfg: cfg, metrics: newFaultMetrics(obs.New())}
}

// Instrument re-points the injector's counters at the given observer so the
// transport_fault_* series appear on a shared registry. Call before wrapping
// conns; counts already accumulated are not carried over.
func (f *Fault) Instrument(o *obs.Observer) {
	f.mu.Lock()
	f.metrics = newFaultMetrics(o)
	f.mu.Unlock()
}

// m snapshots the current instrument set.
func (f *Fault) m() faultMetrics {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.metrics
}

// Config returns the injector's configuration.
func (f *Fault) Config() FaultConfig { return f.cfg }

// WrapConn wraps c so that sends are subject to drops, duplicates, and
// delays, and the whole connection to a forced disconnect after N messages.
func (f *Fault) WrapConn(c Conn) Conn {
	return &FaultyConn{
		f:     f,
		inner: c,
		rng:   rand.New(rand.NewSource(f.cfg.Seed + f.seq.Add(1))),
	}
}

// WrapListener wraps l so that Accept is subject to injected failures and
// every accepted conn is wrapped with WrapConn.
func (f *Fault) WrapListener(l Listener) Listener {
	return &FaultyListener{
		f:     f,
		inner: l,
		rng:   rand.New(rand.NewSource(f.cfg.Seed + f.seq.Add(1))),
	}
}

// FaultyConn injects faults into the send path of an inner Conn (the
// receive path of the peer's wrapper covers the other direction).
type FaultyConn struct {
	f     *Fault
	inner Conn

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	msgs    atomic.Int64
	tripped atomic.Bool
	once    sync.Once
}

// roll draws fault decisions for one message under the conn's rng.
func (c *FaultyConn) roll() (drop, dup bool, delay time.Duration) {
	cfg := &c.f.cfg
	c.mu.Lock()
	defer c.mu.Unlock()
	if cfg.DropProb > 0 && c.rng.Float64() < cfg.DropProb {
		drop = true
	}
	if cfg.DupProb > 0 && c.rng.Float64() < cfg.DupProb {
		dup = true
	}
	if cfg.MaxDelay > 0 {
		span := cfg.MaxDelay - cfg.MinDelay
		delay = cfg.MinDelay
		if span > 0 {
			delay += time.Duration(c.rng.Int63n(int64(span)))
		}
	}
	return drop, dup, delay
}

// tick counts one message through the conn and trips the forced disconnect
// when the configured budget is exhausted.
func (c *FaultyConn) tick() bool {
	if c.tripped.Load() {
		return true
	}
	limit := c.f.cfg.DisconnectAfter
	if limit <= 0 {
		c.msgs.Add(1)
		return false
	}
	if c.msgs.Add(1) <= int64(limit) {
		return false
	}
	c.once.Do(func() {
		c.tripped.Store(true)
		c.f.m().disconnects.Inc()
		_ = c.inner.Close()
	})
	return true
}

// Send applies the configured faults to one outgoing message.
func (c *FaultyConn) Send(m Message) error {
	if c.tick() {
		return fmt.Errorf("%w: forced disconnect", ErrClosed)
	}
	c.f.m().sent.Inc()
	drop, dup, delay := c.roll()
	if drop {
		c.f.m().dropped.Inc()
		return nil // silently lost in transit
	}
	copies := 1
	if dup {
		copies = 2
		c.f.m().duplicated.Inc()
	}
	if delay > 0 {
		c.f.m().delayed.Inc()
		for i := 0; i < copies; i++ {
			time.AfterFunc(delay, func() { _ = c.inner.Send(m) })
		}
		return nil
	}
	var err error
	for i := 0; i < copies; i++ {
		if e := c.inner.Send(m); e != nil {
			err = e
		}
	}
	return err
}

// Recv passes through to the inner conn, charging the message against the
// forced-disconnect budget.
func (c *FaultyConn) Recv() (Message, error) {
	if c.tick() {
		return Message{}, io.EOF
	}
	return c.inner.Recv()
}

// Close closes the inner conn.
func (c *FaultyConn) Close() error { return c.inner.Close() }

// FaultyListener injects accept failures and wraps accepted conns.
type FaultyListener struct {
	f     *Fault
	inner Listener

	mu  sync.Mutex
	rng *rand.Rand
}

// Accept accepts from the inner listener; with AcceptFailProb it closes the
// new conn and reports ErrInjected (a transient failure).
func (l *FaultyListener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	fail := l.f.cfg.AcceptFailProb > 0 && l.rng.Float64() < l.f.cfg.AcceptFailProb
	l.mu.Unlock()
	if fail {
		_ = c.Close()
		l.f.m().acceptFailures.Inc()
		return nil, fmt.Errorf("%w: accept failure", ErrInjected)
	}
	return l.f.WrapConn(c), nil
}

// Close closes the inner listener.
func (l *FaultyListener) Close() error { return l.inner.Close() }

// Addr returns the inner listener's address.
func (l *FaultyListener) Addr() string { return l.inner.Addr() }
