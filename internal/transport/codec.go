package transport

import (
	"encoding/json"
	"errors"
	"fmt"
)

// ErrFrameTooLarge is returned (wrapped) when a frame — outgoing or
// incoming, under either codec — exceeds MaxFrameBytes.
var ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")

// ErrCodecVersion is returned (wrapped) when version negotiation meets a
// codec version byte this binary does not implement.
var ErrCodecVersion = errors.New("transport: unknown codec version")

// Codec versions. The dialing side of a TCP connection declares one of
// these in its negotiation preamble and the accepting side adopts it, so a
// peer that only speaks JSON always gets JSON.
const (
	// VersionJSON is wire version 1: the length-prefixed JSON envelope
	// (debug/compat default; human-readable, used by golden tests).
	VersionJSON byte = 1
	// VersionBinary is wire version 2: the compact tag+varint encoding.
	VersionBinary byte = 2
)

// codecMagic opens a version-negotiation exchange. A legacy (pre-v2) frame
// starts with the top byte of a 4-byte big-endian length ≤ MaxFrameBytes,
// which is always 0x00, so the magic can never be mistaken for one.
const codecMagic byte = 0xCB

// Codec serializes Messages to wire frames and back. Implementations must
// be safe for concurrent use and must not retain or alias the frame slices
// they are handed (frames come from a shared buffer pool).
type Codec interface {
	// Name is the codec's flag/metric label ("json", "binary").
	Name() string
	// Version is the codec's negotiation byte.
	Version() byte
	// AppendEncode appends m's wire frame (excluding the length prefix) to
	// dst and returns the extended slice.
	AppendEncode(dst []byte, m Message) ([]byte, error)
	// Decode parses one wire frame. The returned Message must not alias
	// frame.
	Decode(frame []byte) (Message, error)
}

// The two built-in codecs.
var (
	// JSON is the debug/compat codec: a JSON envelope with a JSON payload.
	JSON Codec = jsonCodec{}
	// Binary is the compact tag+varint codec (see binary.go).
	Binary Codec = binaryCodec{}
)

// CodecByName resolves a -codec flag value.
func CodecByName(name string) (Codec, error) {
	switch name {
	case "json":
		return JSON, nil
	case "binary":
		return Binary, nil
	default:
		return nil, fmt.Errorf("transport: unknown codec %q (want json or binary)", name)
	}
}

// codecByVersion resolves a negotiated version byte.
func codecByVersion(v byte) (Codec, bool) {
	switch v {
	case VersionJSON:
		return JSON, true
	case VersionBinary:
		return Binary, true
	default:
		return nil, false
	}
}

// jsonCodec frames messages as the JSON envelope {"kind":...,"payload":...}.
// It is the wire format every peer speaks (version 1) and the one legacy
// peers send without negotiation.
type jsonCodec struct{}

func (jsonCodec) Name() string  { return "json" }
func (jsonCodec) Version() byte { return VersionJSON }

func (jsonCodec) AppendEncode(dst []byte, m Message) ([]byte, error) {
	if m.Payload == nil && m.Body != nil {
		raw, err := json.Marshal(m.Body)
		if err != nil {
			return nil, fmt.Errorf("transport: encoding %s payload: %w", m.Kind, err)
		}
		m.Payload = raw
	}
	raw, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("transport: marshaling message: %w", err)
	}
	return append(dst, raw...), nil
}

func (jsonCodec) Decode(frame []byte) (Message, error) {
	var m Message
	if err := json.Unmarshal(frame, &m); err != nil {
		return Message{}, fmt.Errorf("transport: unmarshaling message: %w", err)
	}
	return m, nil
}
