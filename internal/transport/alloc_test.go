package transport

import "testing"

// TestBinaryEncodeHotPathZeroAlloc pins the per-frame heap cost of the two
// messages every consensus round sends (census up, ratio down) at zero: the
// scratch structs the encoder extracts typed bodies into come from a pool,
// and the destination buffer is reused the way tcpConn.Send reuses its own.
// BenchmarkEncodeCensus reports the same number as allocs/op; this test
// makes the regression a hard failure instead of a bench diff.
func TestBinaryEncodeHotPathZeroAlloc(t *testing.T) {
	census, err := Encode(KindCensus, Census{Edge: 3, Round: 117, Counts: []int{12, 40, 7, 3, 0, 9, 1, 28}})
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := Encode(KindRatio, Ratio{Round: 118, X: 0.7125})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 512)
	for _, tc := range []struct {
		name string
		m    Message
	}{
		{"census", census},
		{"ratio", ratio},
	} {
		allocs := testing.AllocsPerRun(1000, func() {
			if _, err := Binary.AppendEncode(buf[:0], tc.m); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("binary %s encode: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}
