package transport

import (
	"errors"
	"io"
	"testing"
	"time"
)

// TestTCPRecvTimeout: a TCP conn built with WithTimeout reports ErrTimeout
// when the peer goes silent, instead of blocking forever.
func TestTCPRecvTimeout(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		// Hold the conn open without ever sending.
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = c.Recv()
	}()
	client, err := DialTCP(l.Addr(), WithTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	start := time.Now()
	_, err = client.Recv()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Recv on a silent peer = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v, want ~50ms", elapsed)
	}
}

// TestTCPCloseUnblocksRecv: closing our own side of a TCP conn unblocks an
// in-flight Recv with io.EOF (session teardown, not an error).
func TestTCPCloseUnblocksRecv(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = c.Recv()
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := client.Recv()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let Recv block on the socket
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, io.EOF) {
			t.Errorf("Recv after own close = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock after Close")
	}
}
