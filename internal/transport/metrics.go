package transport

import (
	"sync/atomic"

	"repro/internal/obs"
)

// wireInstruments groups the transport's wire-level metrics. It is swapped
// in atomically by Instrument so the Send/Recv hot paths pay a single
// pointer load when observability is off.
type wireInstruments struct {
	bytesSent     *obs.CounterVec   // transport_bytes_sent_total{codec}
	bytesRecv     *obs.CounterVec   // transport_bytes_received_total{codec}
	encodeSeconds *obs.HistogramVec // transport_codec_encode_seconds{codec}
	decodeSeconds *obs.HistogramVec // transport_codec_decode_seconds{codec}
}

// codecBuckets resolve encode/decode latencies, which sit in the hundreds
// of nanoseconds to tens of microseconds — far below obs.DefBuckets.
var codecBuckets = []float64{1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 1e-3, 1e-2}

var wireObs atomic.Pointer[wireInstruments]

// Instrument points the package's wire metrics at o: bytes sent/received
// and encode/decode duration, each labeled by codec. Passing nil disables
// them again. Counting is package-global rather than per-conn so short-
// lived connections aggregate into one set of series.
func Instrument(o *obs.Observer) {
	if o == nil {
		wireObs.Store(nil)
		return
	}
	wireObs.Store(&wireInstruments{
		bytesSent: o.CounterVec("transport_bytes_sent_total",
			"Wire bytes sent, including frame headers.", "codec"),
		bytesRecv: o.CounterVec("transport_bytes_received_total",
			"Wire bytes received, including frame headers.", "codec"),
		encodeSeconds: o.HistogramVec("transport_codec_encode_seconds",
			"Time to encode one message frame.", codecBuckets, "codec"),
		decodeSeconds: o.HistogramVec("transport_codec_decode_seconds",
			"Time to decode one message frame.", codecBuckets, "codec"),
	})
}

// wireMetrics returns the active instruments, or nil when uninstrumented.
func wireMetrics() *wireInstruments {
	return wireObs.Load()
}
