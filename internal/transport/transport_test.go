package transport

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/sensor"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	up := Upload{
		Vehicle:  7,
		Round:    3,
		Decision: 4,
		Items: []Item{
			{Owner: 7, Modality: sensor.LiDAR, Seq: 1},
			{Owner: 7, Modality: sensor.Radar, Seq: 2},
		},
	}
	m, err := Encode(KindUpload, up)
	if err != nil {
		t.Fatal(err)
	}
	var got Upload
	if err := Decode(m, KindUpload, &got); err != nil {
		t.Fatal(err)
	}
	if got.Vehicle != 7 || got.Round != 3 || got.Decision != 4 || len(got.Items) != 2 {
		t.Errorf("round trip = %+v", got)
	}
	if got.Items[1].Modality != sensor.Radar {
		t.Errorf("item modality = %v", got.Items[1].Modality)
	}
	var wrong Census
	if err := Decode(m, KindCensus, &wrong); err == nil {
		t.Error("kind mismatch must error")
	}
}

func TestEncodeRejectsUnmarshalable(t *testing.T) {
	// Encode is lazy, so the error surfaces when a codec serializes the
	// payload, not at Encode time.
	m, err := Encode(KindAck, make(chan int))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := JSON.AppendEncode(nil, m); err == nil {
		t.Error("unmarshalable payload must error at encode time")
	}
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := a.Send(m); err != nil {
		t.Fatalf("typed pipe send: %v", err)
	}
	got, _ := b.Recv()
	var ack Ack
	if err := Decode(got, KindAck, &ack); err == nil {
		t.Error("decoding a channel-typed body into Ack must error")
	}
}

func exerciseConnPair(t *testing.T, a, b Conn) {
	t.Helper()
	want, err := Encode(KindPolicy, Policy{Round: 1, X: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var p Policy
	if err := Decode(got, KindPolicy, &p); err != nil {
		t.Fatal(err)
	}
	if p.Round != 1 || p.X != 0.5 {
		t.Errorf("policy = %+v", p)
	}

	// Reverse direction.
	back, err := Encode(KindAck, Ack{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send(back); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(); err != nil {
		t.Fatal(err)
	}

	// Close unblocks the peer with EOF.
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, io.EOF) {
			t.Errorf("Recv after close = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock after peer close")
	}
}

func TestPipe(t *testing.T) {
	a, b := Pipe()
	exerciseConnPair(t, a, b)
}

func TestPipeSendAfterCloseFails(t *testing.T) {
	a, b := Pipe()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	m, _ := Encode(KindAck, Ack{})
	if err := a.Send(m); !errors.Is(err, ErrClosed) {
		t.Errorf("Send on closed conn = %v, want ErrClosed", err)
	}
	if err := b.Send(m); !errors.Is(err, ErrClosed) {
		t.Errorf("Send to closed peer = %v, want ErrClosed", err)
	}
}

func TestInprocNetwork(t *testing.T) {
	n := NewInprocNetwork()
	l, err := n.Listen("edge-1")
	if err != nil {
		t.Fatal(err)
	}
	if l.Addr() != "edge-1" {
		t.Errorf("Addr = %q", l.Addr())
	}
	if _, err := n.Listen("edge-1"); err == nil {
		t.Error("duplicate listen must error")
	}
	if _, err := n.Dial("nowhere"); err == nil {
		t.Error("dialing unknown address must error")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var server Conn
	go func() {
		defer wg.Done()
		server, _ = l.Accept()
	}()
	client, err := n.Dial("edge-1")
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if server == nil {
		t.Fatal("accept returned nil conn")
	}
	exerciseConnPair(t, client, server)

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Errorf("Accept after close = %v", err)
	}
	if _, err := n.Dial("edge-1"); err == nil {
		t.Error("dial after listener close must error")
	}
	// The name is free again.
	if _, err := n.Listen("edge-1"); err != nil {
		t.Errorf("relisten after close: %v", err)
	}
}

func TestTCPTransport(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var server Conn
	go func() {
		defer wg.Done()
		server, _ = l.Accept()
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if server == nil {
		t.Fatal("accept returned nil conn")
	}
	exerciseConnPair(t, client, server)
}

func TestTCPManyMessages(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	go func() {
		server, err := l.Accept()
		if err != nil {
			return
		}
		defer server.Close()
		for {
			m, err := server.Recv()
			if err != nil {
				return
			}
			// Echo.
			if err := server.Send(m); err != nil {
				return
			}
		}
	}()

	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for i := 0; i < 200; i++ {
		m, err := Encode(KindRatio, Ratio{Round: i, X: float64(i) / 200})
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Send(m); err != nil {
			t.Fatal(err)
		}
		got, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		var r Ratio
		if err := Decode(got, KindRatio, &r); err != nil {
			t.Fatal(err)
		}
		if r.Round != i {
			t.Fatalf("echo %d came back as %d", i, r.Round)
		}
	}
}

func TestTCPOversizeFrameRejected(t *testing.T) {
	a, b := Pipe()
	_ = a
	_ = b
	// Oversize check is in the TCP codec; craft directly.
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = c.Recv()
	}()
	client, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	huge := Message{Kind: KindUpload, Payload: make([]byte, MaxFrameBytes+1)}
	for i := range huge.Payload {
		huge.Payload[i] = '1'
	}
	if err := client.Send(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize frame = %v, want ErrFrameTooLarge", err)
	}
}
