package transport

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// scriptListener plays back a fixed sequence of Accept results, then
// reports teardown.
type scriptListener struct {
	script []func() (Conn, error)
	pos    int
}

func (l *scriptListener) Accept() (Conn, error) {
	if l.pos >= len(l.script) {
		return nil, ErrClosed
	}
	step := l.script[l.pos]
	l.pos++
	return step()
}

func (l *scriptListener) Close() error { return nil }
func (l *scriptListener) Addr() string { return "script" }

// A flaky listener must not kill the accept loop: transient errors —
// injected or otherwise — are retried and every real connection is still
// handled.
func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	conn := func() (Conn, error) {
		a, _ := Pipe()
		return a, nil
	}
	fail := func(err error) func() (Conn, error) {
		return func() (Conn, error) { return nil, err }
	}
	l := &scriptListener{script: []func() (Conn, error){
		conn,
		fail(ErrInjected),
		fail(fmt.Errorf("accept tcp: too many open files")),
		conn,
		fail(errors.New("transient reset")),
		fail(errors.New("transient reset again")),
		conn,
	}}
	var handled atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		AcceptLoop(l, nil, func(c Conn) {
			handled.Add(1)
			c.Close()
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("AcceptLoop did not return on listener teardown")
	}
	if got := handled.Load(); got != 3 {
		t.Fatalf("handled %d connections, want 3", got)
	}
}

// Teardown errors terminate the loop promptly, whichever form they take.
func TestAcceptLoopReturnsOnTeardown(t *testing.T) {
	for name, err := range map[string]error{
		"transport-closed": ErrClosed,
		"net-closed":       net.ErrClosed,
		"wrapped-closed":   fmt.Errorf("accept: %w", net.ErrClosed),
	} {
		t.Run(name, func(t *testing.T) {
			l := &scriptListener{script: []func() (Conn, error){
				func() (Conn, error) { return nil, err },
			}}
			done := make(chan struct{})
			go func() {
				defer close(done)
				AcceptLoop(l, nil, func(c Conn) { c.Close() })
			}()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatalf("AcceptLoop did not return on %v", err)
			}
		})
	}
}

// The stop channel interrupts backoff sleeps, so a server shutting down
// mid-error-burst does not linger for the cumulative backoff (which for
// the scripted 20-error burst would exceed ten seconds).
func TestAcceptLoopStopDuringBackoff(t *testing.T) {
	script := make([]func() (Conn, error), 20)
	for i := range script {
		script[i] = func() (Conn, error) { return nil, errors.New("transient") }
	}
	l := &scriptListener{script: script}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		AcceptLoop(l, stop, func(c Conn) { c.Close() })
	}()
	close(stop)
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("AcceptLoop ignored stop during backoff")
	}
}
