package policy

import (
	"math"
	"testing"

	"repro/internal/game"
	"repro/internal/lattice"
	"repro/internal/optimize"
)

// fullGraph mirrors the test graph used in package game.
type fullGraph struct {
	m     int
	selfW float64
}

func (g fullGraph) M() int { return g.m }
func (g fullGraph) Gamma(i, j int) float64 {
	if i < 0 || i >= g.m || j < 0 || j >= g.m {
		return 0
	}
	if i == j {
		return g.selfW
	}
	if g.m == 1 {
		return 0
	}
	return (1 - g.selfW) / float64(g.m-1)
}
func (g fullGraph) Neighbors(i int) []int {
	var out []int
	for j := 0; j < g.m; j++ {
		if j != i {
			out = append(out, j)
		}
	}
	return out
}

func testModel(t *testing.T, regions int, beta float64) *game.Model {
	t.Helper()
	selfW := 1.0
	if regions > 1 {
		selfW = 0.8
	}
	betas := make([]float64, regions)
	for i := range betas {
		betas[i] = beta
	}
	m, err := game.NewModel(lattice.PaperPayoffs(), fullGraph{m: regions, selfW: selfW}, betas)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewUniformFieldValidation(t *testing.T) {
	if _, err := NewUniformField(0, []float64{1}, 0.01); err == nil {
		t.Error("zero regions must error")
	}
	if _, err := NewUniformField(1, []float64{-0.1}, 0.01); err == nil {
		t.Error("negative target must error")
	}
	if _, err := NewUniformField(1, []float64{0.8, 0.8}, 0.01); err == nil {
		t.Error("targets summing beyond 1 must error")
	}
	if _, err := NewUniformField(1, []float64{0.5}, -0.1); err == nil {
		t.Error("negative eps must error")
	}
	f, err := NewUniformField(2, []float64{0.65, 0, 0, 0, 0.25, 0, 0.05, 0.05}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if f.M() != 2 || f.K() != 8 {
		t.Errorf("field shape %dx%d", f.M(), f.K())
	}
	iv := f.P[0][0]
	if math.Abs(iv.Lo-0.63) > 1e-12 || math.Abs(iv.Hi-0.67) > 1e-12 {
		t.Errorf("interval for p1 = %v", iv)
	}
	// Clamping at the boundary: target 0 with eps gives [0, eps].
	if f.P[0][1].Lo != 0 || math.Abs(f.P[0][1].Hi-0.02) > 1e-12 {
		t.Errorf("interval for p2 = %v", f.P[0][1])
	}
}

func TestFieldConverged(t *testing.T) {
	f, err := NewUniformField(1, []float64{0.5, 0.5, 0, 0, 0, 0, 0, 0}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s := game.NewUniformState(1, 8, 0.5)
	ok, short := f.Converged(s)
	if ok {
		t.Error("uniform distribution should not satisfy a 50/50 target")
	}
	if short <= 0 {
		t.Error("shortfall must be positive when unconverged")
	}
	copy(s.P[0], []float64{0.52, 0.47, 0.01, 0, 0, 0, 0, 0})
	ok, short = f.Converged(s)
	if !ok || short != 0 {
		t.Errorf("state within tolerance reported unconverged (short %f)", short)
	}
}

func TestFreeFieldAlwaysConverged(t *testing.T) {
	f := NewFreeField(2, 8)
	s := game.NewUniformState(2, 8, 0.3)
	if ok, _ := f.Converged(s); !ok {
		t.Error("free field must always be converged")
	}
	m := testModel(t, 2, 2)
	if err := f.Validate(m); err != nil {
		t.Fatal(err)
	}
}

func TestFieldValidate(t *testing.T) {
	m := testModel(t, 2, 2)
	short := NewFreeField(1, 8)
	if err := short.Validate(m); err == nil {
		t.Error("region count mismatch must error")
	}
	wrongK := NewFreeField(2, 5)
	if err := wrongK.Validate(m); err == nil {
		t.Error("decision count mismatch must error")
	}
	empty := NewFreeField(2, 8)
	empty.P[0][0] = optimize.EmptyInterval()
	if err := empty.Validate(m); err == nil {
		t.Error("empty interval must error")
	}
}

func TestNewFDSValidation(t *testing.T) {
	m := testModel(t, 1, 2)
	f := NewFreeField(1, 8)
	if _, err := NewFDS(nil, f, 0.1); err == nil {
		t.Error("nil model must error")
	}
	if _, err := NewFDS(m, f, 0); err == nil {
		t.Error("zero lambda must error")
	}
	if _, err := NewFDS(m, f, 1.5); err == nil {
		t.Error("lambda > 1 must error")
	}
	if _, err := NewFDS(m, NewFreeField(3, 8), 0.1); err == nil {
		t.Error("mismatched field must error")
	}
}

// logitEquilibriumAt computes the equilibrium distribution of a model at a
// fixed sharing ratio — used to construct reachable targets.
func logitEquilibriumAt(t *testing.T, m *game.Model, x float64) *game.State {
	t.Helper()
	d, err := game.NewLogitDynamics(m, 0.15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s := game.NewUniformState(m.M(), m.K(), x)
	if _, err := d.Equilibrium(s, 1e-10, 10000); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFDSSteersToReachableTarget is the core closed-loop scenario: the
// target field is the logit equilibrium at x* = 0.85; the system starts at
// the x = 0.15 equilibrium. FDS must raise the ratio and converge the
// distribution into the field.
func TestFDSSteersToReachableTarget(t *testing.T) {
	m := testModel(t, 1, 4)
	targetState := logitEquilibriumAt(t, m, 0.85)
	eps := 0.03
	field, err := NewUniformField(1, targetState.P[0], eps)
	if err != nil {
		t.Fatal(err)
	}

	fds, err := NewFDS(m, field, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := game.NewLogitDynamics(m, 0.15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	start := logitEquilibriumAt(t, m, 0.15)
	res, err := fds.Shape(d, start, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("FDS failed to converge in 500 rounds; shortfall %f, final x %f, final p %v",
			res.Shortfall, start.X[0], start.P[0])
	}
	if start.X[0] <= 0.15 {
		t.Errorf("FDS should have raised the sharing ratio, final x = %f", start.X[0])
	}
	if res.Rounds <= 0 {
		t.Errorf("convergence cannot be instant from the wrong equilibrium, rounds = %d", res.Rounds)
	}
}

// TestFDSLambdaLimitsRatioSpeed: per-round ratio change never exceeds
// Lambda.
func TestFDSLambdaLimitsRatioSpeed(t *testing.T) {
	m := testModel(t, 1, 4)
	targetState := logitEquilibriumAt(t, m, 0.9)
	field, err := NewUniformField(1, targetState.P[0], 0.03)
	if err != nil {
		t.Fatal(err)
	}
	lambda := 0.05
	fds, err := NewFDS(m, field, lambda)
	if err != nil {
		t.Fatal(err)
	}
	d, err := game.NewLogitDynamics(m, 0.15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	start := logitEquilibriumAt(t, m, 0.1)
	res, err := fds.Shape(d, start, 300)
	if err != nil {
		t.Fatal(err)
	}
	for tIdx := 1; tIdx < len(res.RatioTrace); tIdx++ {
		dx := math.Abs(res.RatioTrace[tIdx][0] - res.RatioTrace[tIdx-1][0])
		if dx > lambda+1e-9 {
			t.Fatalf("round %d ratio jumped %f > lambda %f", tIdx, dx, lambda)
		}
	}
}

// TestFDSBeatsWrongFixedRatio: from the same start, the fixed-ratio
// baseline at the wrong x never converges while FDS does — the Fig. 10
// contrast.
func TestFDSBeatsWrongFixedRatio(t *testing.T) {
	m := testModel(t, 1, 4)
	targetState := logitEquilibriumAt(t, m, 0.85)
	field, err := NewUniformField(1, targetState.P[0], 0.02)
	if err != nil {
		t.Fatal(err)
	}

	mkDyn := func() *game.LogitDynamics {
		d, err := game.NewLogitDynamics(m, 0.15, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	baselineStart := logitEquilibriumAt(t, m, 0.15)
	baseRes, err := RunFixedRatio(mkDyn(), baselineStart, field, 200)
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.Converged {
		t.Fatal("baseline at x=0.15 should not reach the x=0.85 equilibrium field")
	}

	fds, err := NewFDS(m, field, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	fdsStart := logitEquilibriumAt(t, m, 0.15)
	fdsRes, err := fds.Shape(mkDyn(), fdsStart, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !fdsRes.Converged {
		t.Fatalf("FDS should converge; shortfall %f", fdsRes.Shortfall)
	}
}

// TestFDSConvergenceTimeDecreasesWithEps reproduces the Fig. 9 monotonicity
// on a small instance: looser fields converge no slower.
func TestFDSConvergenceTimeDecreasesWithEps(t *testing.T) {
	m := testModel(t, 1, 4)
	targetState := logitEquilibriumAt(t, m, 0.85)

	rounds := func(eps float64) int {
		field, err := NewUniformField(1, targetState.P[0], eps)
		if err != nil {
			t.Fatal(err)
		}
		fds, err := NewFDS(m, field, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		d, err := game.NewLogitDynamics(m, 0.15, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		start := logitEquilibriumAt(t, m, 0.15)
		res, err := fds.Shape(d, start, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("eps=%f did not converge", eps)
		}
		return res.Rounds
	}

	r1 := rounds(0.01)
	r3 := rounds(0.03)
	r5 := rounds(0.05)
	if r3 > r1 || r5 > r3 {
		t.Errorf("convergence time should be non-increasing in eps: %d, %d, %d", r1, r3, r5)
	}
}

func TestShapeValidation(t *testing.T) {
	m := testModel(t, 1, 2)
	field := NewFreeField(1, 8)
	fds, err := NewFDS(m, field, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := game.NewDynamics(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := game.NewUniformState(1, 8, 0.5)
	if _, err := fds.Shape(d, s, 0); err == nil {
		t.Error("zero budget must error")
	}
	other := testModel(t, 1, 2)
	dOther, err := game.NewDynamics(other, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fds.Shape(dOther, s, 10); err == nil {
		t.Error("mismatched models must error")
	}
	// Free field converges instantly.
	res, err := fds.Shape(d, s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Rounds != 0 {
		t.Errorf("free field should converge in 0 rounds, got %+v", res)
	}
}

func TestRunFixedRatioValidation(t *testing.T) {
	m := testModel(t, 1, 2)
	d, err := game.NewDynamics(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := game.NewUniformState(1, 8, 0.5)
	if _, err := RunFixedRatio(d, s, NewFreeField(1, 8), 0); err == nil {
		t.Error("zero budget must error")
	}
	if _, err := RunFixedRatio(d, s, NewFreeField(2, 8), 10); err == nil {
		t.Error("mismatched field must error")
	}
}

// TestAnalyticLowerBoundProperties: zero for converged states, positive for
// distant targets, and never above the FDS round count (it is a lower
// bound).
func TestAnalyticLowerBound(t *testing.T) {
	m := testModel(t, 1, 4)
	targetState := logitEquilibriumAt(t, m, 0.85)
	field, err := NewUniformField(1, targetState.P[0], 0.02)
	if err != nil {
		t.Fatal(err)
	}

	// Converged state: bound 0.
	lb, capped, err := AnalyticLowerBound(m, field, targetState.Clone(), 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if capped || lb != 0 {
		t.Errorf("bound at target = %d (capped %v), want 0", lb, capped)
	}

	// Distant start: bound positive and below the achieved rounds.
	start := logitEquilibriumAt(t, m, 0.15)
	lb, capped, err = AnalyticLowerBound(m, field, start.Clone(), 0.1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if capped {
		t.Fatal("bound search capped unexpectedly")
	}
	if lb <= 0 {
		t.Error("bound from a distant start must be positive")
	}

	fds, err := NewFDS(m, field, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := game.NewLogitDynamics(m, 0.15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fds.Shape(d, start, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("FDS did not converge")
	}
	if lb > res.Rounds {
		t.Errorf("lower bound %d exceeds achieved rounds %d", lb, res.Rounds)
	}
}

func TestAnalyticLowerBoundValidation(t *testing.T) {
	m := testModel(t, 1, 2)
	field := NewFreeField(1, 8)
	s := game.NewUniformState(1, 8, 0.5)
	if _, _, err := AnalyticLowerBound(m, field, s, 0, 10); err == nil {
		t.Error("zero lambda must error")
	}
	if _, _, err := AnalyticLowerBound(m, field, s, 0.1, 0); err == nil {
		t.Error("zero budget must error")
	}
	if _, _, err := AnalyticLowerBound(m, NewFreeField(2, 8), s, 0.1, 10); err == nil {
		t.Error("mismatched field must error")
	}
}

// TestSubgradientLowerBound on a tiny instance: it must be >= 1 for an
// unconverged start, and <= the analytic bound's achieved trajectory... we
// check consistency: subgradient LB <= FDS rounds.
func TestSubgradientLowerBound(t *testing.T) {
	m := testModel(t, 1, 4)
	targetState := logitEquilibriumAt(t, m, 0.85)
	field, err := NewUniformField(1, targetState.P[0], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	start := logitEquilibriumAt(t, m, 0.15)

	lb, capped, err := SubgradientLowerBound(m, field, start.Clone(), 0.1, 15, optimize.Options{MaxIters: 800})
	if err != nil {
		t.Fatal(err)
	}
	if capped {
		t.Skip("subgradient search capped; instance harder than expected")
	}
	if lb < 1 {
		t.Errorf("unconverged start must need at least 1 round, got %d", lb)
	}

	fds, err := NewFDS(m, field, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := game.NewLogitDynamics(m, 0.15, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fds.Shape(d, start, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged && lb > res.Rounds {
		t.Errorf("subgradient bound %d exceeds achieved rounds %d", lb, res.Rounds)
	}

	// Converged start short-circuits to 0.
	lb0, _, err := SubgradientLowerBound(m, field, targetState.Clone(), 0.1, 5, optimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lb0 != 0 {
		t.Errorf("bound at target = %d, want 0", lb0)
	}
}
