package policy

import (
	"fmt"
	"math"

	"repro/internal/game"
	"repro/internal/optimize"
)

// Lower bound of the optimal convergence time (Section IV-B). Two methods:
//
//  1. AnalyticLowerBound: Proposition 4.1 bounds each per-round movement
//     |delta p_{i,k}| by a closed-form envelope that is increasing in the
//     sharing ratio; with the ratio itself limited to move Lambda per round
//     (Eq. 13), the cumulative reachable displacement after T rounds is
//     maximized by the x-trajectory that saturates the Lambda constraint.
//     The smallest T whose cumulative envelope covers the share's distance
//     to its target interval is a valid lower bound, and the maximum over
//     all (i,k) bounds the whole problem.
//
//  2. SubgradientLowerBound: the paper's relaxed feasibility program
//     (Eq. 22) solved for increasing T with the projected-subgradient
//     checker; the first feasible T is the bound. Exact on the relaxation
//     but costly, so it is intended for small instances and as a
//     cross-check of method 1.

// envelopes returns, per decision k of region i, the quantities of
// Prop. 4.1 that do not depend on the round: F_k = sum_{l in Acc(k)} f_l,
// Fmax = max_l F_l, Gamma_i = sum_{j in N_i} gamma_{j,i}, and gmax.
type envelope struct {
	fK     float64 // sum of f over decisions accessible from k
	fMax   float64 // max over l of fK(l)
	gammaN float64 // sum of neighbour gamma_{j,i}
	gSelf  float64 // gamma_{i,i}
	gK     float64 // g_k
	gMax   float64 // max_l g_l
	beta   float64
}

// maxUpStep bounds delta p from above at share p and ratio x (Eq. 20):
//
//	delta p <= beta*(1-p)*F_k*(gamma_ii*x + Gamma)*p - (g_k - sum p_l g_l)*p
//	        <= [beta*(1-p)*F_k*(gamma_ii*x + Gamma) + max(0, gmax - g_k)] * p.
//
// The multiplicative factor p is what makes the bound informative when the
// share starts near extinction: growth is at most geometric.
func (m envelope) maxUpStep(p, x float64) float64 {
	return (m.beta*(1-p)*m.fK*(m.gSelf*x+m.gammaN) + math.Max(0, m.gMax-m.gK)) * p
}

// maxDownStep bounds -delta p from above at share p and ratio x (Eq. 21):
//
//	-delta p <= [beta*Fmax*(gamma_ii*x + Gamma) + g_k] * p.
func (m envelope) maxDownStep(p, x float64) float64 {
	return (m.beta*m.fMax*(m.gSelf*x+m.gammaN) + m.gK) * p
}

func buildEnvelope(mod *game.Model, i, k int) envelope {
	pay := mod.Payoffs()
	ones := make([]float64, mod.K())
	for l := range ones {
		ones[l] = 1
	}
	fK := mod.AccessibleValue(k, ones) // sum_{l in Acc(k)} f_l
	fMax := 0.0
	for l := 0; l < mod.K(); l++ {
		if v := mod.AccessibleValue(l, ones); v > fMax {
			fMax = v
		}
	}
	gammaN := 0.0
	for _, j := range mod.Graph().Neighbors(i) {
		gammaN += mod.Graph().Gamma(j, i)
	}
	gMax := 0.0
	for l := 0; l < mod.K(); l++ {
		if pay.Cost[l] > gMax {
			gMax = pay.Cost[l]
		}
	}
	return envelope{
		fK:     fK,
		fMax:   fMax,
		gammaN: gammaN,
		gSelf:  mod.Graph().Gamma(i, i),
		gK:     pay.Cost[k],
		gMax:   gMax,
		beta:   mod.Beta(i),
	}
}

// AnalyticLowerBound returns a lower bound on the number of rounds any
// policy respecting the Lambda constraint needs to move the state s into
// the field f, under the model's dynamics envelope (Prop. 4.1). maxRounds
// caps the search; if even maxRounds cannot cover the distance the bound is
// reported as maxRounds with capped=true.
func AnalyticLowerBound(mod *game.Model, f *Field, s *game.State, lambda float64, maxRounds int) (bound int, capped bool, err error) {
	if err := f.Validate(mod); err != nil {
		return 0, false, err
	}
	if lambda <= 0 || lambda > 1 {
		return 0, false, fmt.Errorf("policy: lambda %f outside (0,1]", lambda)
	}
	if maxRounds <= 0 {
		return 0, false, fmt.Errorf("policy: maxRounds must be positive")
	}
	worst := 0
	for i := 0; i < mod.M(); i++ {
		for k := 0; k < mod.K(); k++ {
			want := f.P[i][k]
			p := s.P[i][k]
			up := p < want.Lo
			if !up && p <= want.Hi {
				continue
			}
			env := buildEnvelope(mod, i, k)
			x := s.X[i]
			t := 0
			// Integrate the fastest-possible envelope trajectory: the ratio
			// saturates its Lambda budget toward the favorable extreme and
			// the share takes the extreme step every round. The bound is
			// one-sided reachability — the first round the envelope touches
			// the near edge of the desired interval — because the envelope
			// is an upper bound on progress, not a trajectory.
			for (up && p < want.Lo) || (!up && p > want.Hi) {
				if t >= maxRounds {
					return maxRounds, true, nil
				}
				if up {
					p += env.maxUpStep(p, x)
					x = math.Min(1, x+lambda)
				} else {
					p -= env.maxDownStep(p, x)
					if p < 0 {
						p = 0
					}
					x = math.Max(0, x-lambda)
				}
				t++
			}
			if t > worst {
				worst = t
			}
		}
	}
	return worst, false, nil
}

// RevisionLowerBound is the lower bound matching the logit
// (smoothed-best-response) dynamic. Two envelopes constrain any policy:
//
//  1. Revision rate: only a fraction mu of the population revises per
//     round, so delta p <= mu*(sigma - p) rising and -delta p <= mu*p
//     falling.
//  2. Choice probability: the softmax target sigma_k cannot exceed
//     1/(1 + exp(-q_k^max(x)/tau)), because the empty decision always has
//     fitness exactly 0 (f and g are both zero for it) and
//     q_k <= beta*(gamma_ii*x + Gamma_i)*maxf_k - g_k with maxf_k the best
//     utility value accessible from k. The ratio x itself can rise by at
//     most lambda per round (Eq. 13), so early rounds cap sigma well below
//     1 — this is what makes the bound track the Lambda-limited ramp.
//
// The bound integrates the joint envelope per (region, decision) from the
// current state; the maximum over pairs bounds the whole problem.
func RevisionLowerBound(mod *game.Model, f *Field, s *game.State, mu, tau, lambda float64, maxRounds int) (bound int, capped bool, err error) {
	if err := f.Validate(mod); err != nil {
		return 0, false, err
	}
	if mu <= 0 || mu > 1 {
		return 0, false, fmt.Errorf("policy: mu %f outside (0,1]", mu)
	}
	if tau <= 0 {
		return 0, false, fmt.Errorf("policy: tau %f must be positive", tau)
	}
	if lambda <= 0 || lambda > 1 {
		return 0, false, fmt.Errorf("policy: lambda %f outside (0,1]", lambda)
	}
	if maxRounds <= 0 {
		return 0, false, fmt.Errorf("policy: maxRounds must be positive")
	}

	// maxf[k] = max_{l in Acc(k)} f_l.
	maxf := make([]float64, mod.K())
	oneHot := make([]float64, mod.K())
	for k := 0; k < mod.K(); k++ {
		for l := 0; l < mod.K(); l++ {
			oneHot[l] = 1
			if v := mod.AccessibleValue(k, oneHot); v > maxf[k] {
				maxf[k] = v
			}
			oneHot[l] = 0
		}
	}

	worst := 0
	for i := 0; i < mod.M(); i++ {
		gammaN := 0.0
		for _, j := range mod.Graph().Neighbors(i) {
			gammaN += mod.Graph().Gamma(j, i)
		}
		gSelf := mod.Graph().Gamma(i, i)
		beta := mod.Beta(i)
		for k := 0; k < mod.K(); k++ {
			want := f.P[i][k]
			p := s.P[i][k]
			up := p < want.Lo
			if !up && p <= want.Hi {
				continue
			}
			x := s.X[i]
			t := 0
			// One-sided reachability: first round the envelope touches the
			// near edge of the band (a narrow band could otherwise be
			// jumped over forever, which would not be a valid bound).
			for (up && p < want.Lo) || (!up && p > want.Hi) {
				if t >= maxRounds {
					return maxRounds, true, nil
				}
				if up {
					qMax := beta*(gSelf*x+gammaN)*maxf[k] - mod.Payoffs().Cost[k]
					sigmaMax := 1 / (1 + math.Exp(-qMax/tau))
					if sigmaMax > p {
						p += mu * (sigmaMax - p)
					}
					x = math.Min(1, x+lambda)
				} else {
					p -= mu * p
					x = math.Max(0, x-lambda)
				}
				t++
				// A share capped below its target by the sigma envelope
				// even at x = 1 can never arrive under this relaxation;
				// report the search as capped.
				if up && x >= 1 && p < want.Lo {
					qMax := beta*(gSelf+gammaN)*maxf[k] - mod.Payoffs().Cost[k]
					if sig := 1 / (1 + math.Exp(-qMax/tau)); sig <= p+1e-15 {
						return maxRounds, true, nil
					}
				}
			}
			if t > worst {
				worst = t
			}
		}
	}
	return worst, false, nil
}

// SubgradientLowerBound solves the relaxed program (Eq. 22) for T = 1, 2,
// ... maxRounds: variables are the per-round sharing ratios and decision
// shares, constrained by the Prop. 4.1 movement band, the per-round Lambda
// limit, the simplex conditions, and the terminal desired field. The first
// feasible T is returned. Intended for small instances (M*K*T up to a few
// hundred variables).
func SubgradientLowerBound(mod *game.Model, f *Field, s *game.State, lambda float64, maxRounds int, opts optimize.Options) (bound int, capped bool, err error) {
	if err := f.Validate(mod); err != nil {
		return 0, false, err
	}
	if lambda <= 0 || lambda > 1 {
		return 0, false, fmt.Errorf("policy: lambda %f outside (0,1]", lambda)
	}
	if ok, _ := f.Converged(s); ok {
		return 0, false, nil
	}
	for T := 1; T <= maxRounds; T++ {
		prob := buildRelaxedProblem(mod, f, s, lambda, T)
		res, err := prob.Solve(opts)
		if err != nil {
			return 0, false, fmt.Errorf("policy: relaxed problem T=%d: %w", T, err)
		}
		if res.Feasible {
			return T, false, nil
		}
	}
	return maxRounds, true, nil
}

// Variable layout for the relaxed problem with horizon T:
//
//	x[i][t]   at index i*T + t                      (t = 0..T-1), M*T vars
//	p[i][k][t] at index M*T + (i*K+k)*(T+1) + t     (t = 0..T),  M*K*(T+1) vars
func buildRelaxedProblem(mod *game.Model, f *Field, s *game.State, lambda float64, T int) *optimize.Problem {
	M, K := mod.M(), mod.K()
	nx := M * T
	np := M * K * (T + 1)
	lower := make([]float64, nx+np)
	upper := make([]float64, nx+np)

	xIdx := func(i, t int) int { return i*T + t }
	pIdx := func(i, k, t int) int { return nx + (i*K+k)*(T+1) + t }

	for i := 0; i < M; i++ {
		for t := 0; t < T; t++ {
			lower[xIdx(i, t)] = 0
			upper[xIdx(i, t)] = 1
		}
		// x at t=0 is the current ratio.
		lower[xIdx(i, 0)] = s.X[i]
		upper[xIdx(i, 0)] = s.X[i]
		for k := 0; k < K; k++ {
			for t := 0; t <= T; t++ {
				lower[pIdx(i, k, t)] = 0
				upper[pIdx(i, k, t)] = 1
			}
			// p at t=0 is the current distribution.
			lower[pIdx(i, k, 0)] = s.P[i][k]
			upper[pIdx(i, k, 0)] = s.P[i][k]
			// p at t=T must lie in the desired field.
			want := f.P[i][k]
			lower[pIdx(i, k, T)] = math.Max(lower[pIdx(i, k, T)], want.Lo)
			upper[pIdx(i, k, T)] = math.Min(upper[pIdx(i, k, T)], want.Hi)
		}
	}

	var cons []optimize.Constraint
	for i := 0; i < M; i++ {
		i := i
		// Lambda constraints between consecutive ratios.
		for t := 0; t+1 < T; t++ {
			t := t
			cons = append(cons,
				func(z []float64) float64 { return z[xIdx(i, t+1)] - z[xIdx(i, t)] - lambda },
				func(z []float64) float64 { return z[xIdx(i, t)] - z[xIdx(i, t+1)] - lambda },
			)
		}
		// Simplex: sum_k p = 1 at every round.
		for t := 1; t <= T; t++ {
			t := t
			cons = append(cons,
				func(z []float64) float64 {
					total := 0.0
					for k := 0; k < K; k++ {
						total += z[pIdx(i, k, t)]
					}
					return total - 1
				},
				func(z []float64) float64 {
					total := 0.0
					for k := 0; k < K; k++ {
						total += z[pIdx(i, k, t)]
					}
					return 1 - total
				},
			)
		}
		// Movement band from Prop. 4.1. fAll[l] = sum_{k_a in Acc(l)} f_{k_a}
		// as needed by the Eq. (21) lower envelope.
		ones := make([]float64, K)
		for l := range ones {
			ones[l] = 1
		}
		fAll := make([]float64, K)
		for l := 0; l < K; l++ {
			fAll[l] = mod.AccessibleValue(l, ones)
		}
		for k := 0; k < K; k++ {
			k := k
			env := buildEnvelope(mod, i, k)
			pay := mod.Payoffs()
			for t := 0; t < T; t++ {
				t := t
				cons = append(cons,
					// Upper: p_{t+1} - p_t <= UB(p_t, x_t).
					func(z []float64) float64 {
						p := z[pIdx(i, k, t)]
						x := z[xIdx(i, t)]
						sumPG := 0.0
						for l := 0; l < K; l++ {
							sumPG += z[pIdx(i, l, t)] * pay.Cost[l]
						}
						ub := env.beta*(1-p)*env.fK*(env.gSelf*x+env.gammaN)*p - (env.gK-sumPG)*p
						return z[pIdx(i, k, t+1)] - p - ub
					},
					// Lower: p_{t+1} - p_t >= LB(p_t, x_t).
					func(z []float64) float64 {
						p := z[pIdx(i, k, t)]
						x := z[xIdx(i, t)]
						sumPG := 0.0
						sumOtherF := 0.0
						for l := 0; l < K; l++ {
							sumPG += z[pIdx(i, l, t)] * pay.Cost[l]
							if l != k {
								sumOtherF += z[pIdx(i, l, t)] * fAll[l]
							}
						}
						lb := -env.beta*sumOtherF*(env.gSelf*x+env.gammaN)*p - (env.gK-sumPG)*p
						return lb - (z[pIdx(i, k, t+1)] - p)
					},
				)
			}
		}
	}
	return &optimize.Problem{Lower: lower, Upper: upper, Constraints: cons}
}
