package policy

import (
	"fmt"

	"repro/internal/game"
)

// RunFixedRatio is the baseline the paper contrasts FDS against in Fig. 10:
// the sharing ratios stay at their initial values (e.g. 0.2 or 1.0) while
// the decision dynamics run. It records the same trajectory data as Shape
// and reports whether the uncontrolled dynamics happened to reach the field.
func RunFixedRatio(d game.Stepper, s *game.State, f *Field, maxRounds int) (*ShapeResult, error) {
	if maxRounds <= 0 {
		return nil, fmt.Errorf("policy: maxRounds must be positive, got %d", maxRounds)
	}
	if err := f.Validate(d.Model()); err != nil {
		return nil, err
	}
	res := &ShapeResult{}
	snapshot := func() {
		res.RatioTrace = append(res.RatioTrace, append([]float64(nil), s.X...))
		pt := make([][]float64, len(s.P))
		for i := range s.P {
			pt[i] = append([]float64(nil), s.P[i]...)
		}
		res.Trajectory = append(res.Trajectory, pt)
	}
	snapshot()
	for t := 0; t < maxRounds; t++ {
		if ok, short := f.Converged(s); ok {
			res.Converged = true
			res.Rounds = t
			res.Shortfall = short
			return res, nil
		}
		if err := d.Step(s); err != nil {
			return nil, err
		}
		snapshot()
	}
	ok, short := f.Converged(s)
	res.Converged = ok
	res.Rounds = maxRounds
	res.Shortfall = short
	return res, nil
}
