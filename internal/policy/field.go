// Package policy implements the paper's policy optimization (Section IV-B):
// desired decision fields, the Fast Decision Shaping (FDS) algorithm
// (Algorithm 2) that steers each region's sharing ratio so the decision
// distribution converges to its desired field, fixed-ratio baselines, and
// the lower bound on convergence time obtained from the relaxed problem
// (Eq. 22, Proposition 4.1).
package policy

import (
	"fmt"

	"repro/internal/game"
	"repro/internal/optimize"
)

// Field holds the desired decision field P*_{i,k} for every region and
// decision: an interval of acceptable proportions. An interval of [0,1]
// leaves that share unconstrained.
type Field struct {
	// P[i][k] is the acceptable interval for region i, decision k (0-based).
	P [][]optimize.Interval
}

// NewUniformField builds a field that applies the same per-decision target
// proportions (with tolerance eps) to every region — the form used in the
// paper's experiments, e.g. p1* = 65%, p5* = 25%, p7* = p8* = 5% with all
// others 0%.
func NewUniformField(mRegions int, target []float64, eps float64) (*Field, error) {
	if mRegions <= 0 {
		return nil, fmt.Errorf("policy: need at least one region, got %d", mRegions)
	}
	if eps < 0 || eps > 1 {
		return nil, fmt.Errorf("policy: eps %f outside [0,1]", eps)
	}
	total := 0.0
	for k, v := range target {
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("policy: target[%d] = %f outside [0,1]", k, v)
		}
		total += v
	}
	if total > 1+1e-9 {
		return nil, fmt.Errorf("policy: target proportions sum to %f > 1", total)
	}
	f := &Field{P: make([][]optimize.Interval, mRegions)}
	for i := range f.P {
		row := make([]optimize.Interval, len(target))
		for k, v := range target {
			row[k] = optimize.Interval{Lo: max0(v - eps), Hi: min1(v + eps)}
		}
		f.P[i] = row
	}
	return f, nil
}

// NewFreeField builds a field with every share unconstrained.
func NewFreeField(mRegions, k int) *Field {
	f := &Field{P: make([][]optimize.Interval, mRegions)}
	for i := range f.P {
		row := make([]optimize.Interval, k)
		for j := range row {
			row[j] = optimize.Unit()
		}
		f.P[i] = row
	}
	return f
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// M returns the number of regions in the field.
func (f *Field) M() int { return len(f.P) }

// K returns the number of decisions (0 for an empty field).
func (f *Field) K() int {
	if len(f.P) == 0 {
		return 0
	}
	return len(f.P[0])
}

// Validate checks the field shape against a model.
func (f *Field) Validate(m *game.Model) error {
	if f.M() != m.M() {
		return fmt.Errorf("policy: field has %d regions, model %d", f.M(), m.M())
	}
	for i, row := range f.P {
		if len(row) != m.K() {
			return fmt.Errorf("policy: field region %d has %d decisions, model %d", i, len(row), m.K())
		}
		for k, iv := range row {
			if iv.Empty() {
				return fmt.Errorf("policy: field region %d decision %d is empty", i, k)
			}
		}
	}
	return nil
}

// Converged reports whether every share lies in its desired interval, and,
// when it does not, the worst shortfall (largest distance from a share to
// its interval).
func (f *Field) Converged(s *game.State) (bool, float64) {
	worst := 0.0
	for i, row := range f.P {
		for k, iv := range row {
			p := s.P[i][k]
			var d float64
			switch {
			case p < iv.Lo:
				d = iv.Lo - p
			case p > iv.Hi:
				d = p - iv.Hi
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst == 0, worst
}
