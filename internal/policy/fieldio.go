package policy

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/optimize"
)

// Desired-field JSON format. Operators describe fields declaratively (for
// cmd/cpnode or their own tooling) instead of constructing intervals in
// code:
//
//	{
//	  "regions": 4,
//	  "decisions": 8,
//	  "defaults": [{"decision": 1, "min": 0.2}],
//	  "overrides": [{"region": 2, "decision": 1, "min": 0.5, "max": 1}]
//	}
//
// `defaults` apply to every region; `overrides` refine single regions.
// Omitted min/max default to 0 and 1 — a bound-only entry is the common
// one-sided operational constraint.

// FieldSpec is the serializable description of a desired decision field.
type FieldSpec struct {
	// Regions and Decisions fix the field shape (required).
	Regions   int `json:"regions"`
	Decisions int `json:"decisions"`
	// Defaults are per-decision constraints applied to every region.
	Defaults []FieldBound `json:"defaults,omitempty"`
	// Overrides are region-specific constraints applied after Defaults.
	Overrides []FieldBound `json:"overrides,omitempty"`
}

// FieldBound is one constraint: decision indices are 1-based (P1..PK) as in
// the paper; Region is ignored for Defaults entries.
type FieldBound struct {
	Region   int      `json:"region,omitempty"`
	Decision int      `json:"decision"`
	Min      *float64 `json:"min,omitempty"`
	Max      *float64 `json:"max,omitempty"`
}

// interval converts the bound's min/max into an interval.
func (b FieldBound) interval() optimize.Interval {
	iv := optimize.Unit()
	if b.Min != nil {
		iv.Lo = *b.Min
	}
	if b.Max != nil {
		iv.Hi = *b.Max
	}
	return iv
}

func (b FieldBound) validate(regions, decisions int, requireRegion bool) error {
	if b.Decision < 1 || b.Decision > decisions {
		return fmt.Errorf("policy: decision %d out of range [1,%d]", b.Decision, decisions)
	}
	if requireRegion && (b.Region < 0 || b.Region >= regions) {
		return fmt.Errorf("policy: region %d out of range [0,%d)", b.Region, regions)
	}
	iv := b.interval()
	if iv.Lo < 0 || iv.Hi > 1 || iv.Empty() {
		return fmt.Errorf("policy: bound for decision %d yields invalid interval %v", b.Decision, iv)
	}
	return nil
}

// Build materializes the spec into a Field.
func (spec FieldSpec) Build() (*Field, error) {
	if spec.Regions < 1 {
		return nil, fmt.Errorf("policy: field spec needs at least one region, got %d", spec.Regions)
	}
	if spec.Decisions < 1 {
		return nil, fmt.Errorf("policy: field spec needs at least one decision, got %d", spec.Decisions)
	}
	f := NewFreeField(spec.Regions, spec.Decisions)
	for _, b := range spec.Defaults {
		if err := b.validate(spec.Regions, spec.Decisions, false); err != nil {
			return nil, fmt.Errorf("policy: defaults: %w", err)
		}
		for i := 0; i < spec.Regions; i++ {
			f.P[i][b.Decision-1] = f.P[i][b.Decision-1].Intersect(b.interval())
		}
	}
	for _, b := range spec.Overrides {
		if err := b.validate(spec.Regions, spec.Decisions, true); err != nil {
			return nil, fmt.Errorf("policy: overrides: %w", err)
		}
		f.P[b.Region][b.Decision-1] = f.P[b.Region][b.Decision-1].Intersect(b.interval())
	}
	for i := range f.P {
		for k, iv := range f.P[i] {
			if iv.Empty() {
				return nil, fmt.Errorf("policy: combined bounds empty for region %d decision %d", i, k+1)
			}
		}
	}
	return f, nil
}

// ReadFieldSpec parses a FieldSpec from JSON and builds the field.
func ReadFieldSpec(r io.Reader) (*Field, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec FieldSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("policy: parsing field spec: %w", err)
	}
	return spec.Build()
}

// WriteFieldSpec serializes a Field back into the spec format (every
// non-free interval becomes an override entry).
func WriteFieldSpec(w io.Writer, f *Field) error {
	spec := FieldSpec{Regions: f.M(), Decisions: f.K()}
	for i, row := range f.P {
		for k, iv := range row {
			if iv.Lo <= 0 && iv.Hi >= 1 {
				continue
			}
			b := FieldBound{Region: i, Decision: k + 1}
			if iv.Lo > 0 {
				lo := iv.Lo
				b.Min = &lo
			}
			if iv.Hi < 1 {
				hi := iv.Hi
				b.Max = &hi
			}
			spec.Overrides = append(spec.Overrides, b)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(spec); err != nil {
		return fmt.Errorf("policy: writing field spec: %w", err)
	}
	return nil
}
